// I/O-scheduler ablation: FIFO vs C-LOOK elevator under concurrent
// random readers.
//
// The paper names the I/O scheduler among the internal components whose
// behaviour latency profiles expose (§3.3, §3.5).  This bench drives the
// same workload against both disk-queue policies and shows how the
// driver-level latency profiles shift: the elevator cuts mean seek
// distance (higher throughput, tighter service times) at the cost of a
// longer queue-latency tail for unlucky requests -- precisely the kind of
// redistribution OSprof's histograms make visible.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/fs/ext2fs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/workloads.h"

namespace {

struct RunResult {
  osprof::ProfileSet driver_profiles{1};
  double elapsed_s = 0.0;
};

RunResult RunReaders(osim::DiskSchedPolicy policy) {
  osim::KernelConfig kcfg;
  kcfg.num_cpus = 4;
  kcfg.seed = 9;
  osim::Kernel kernel(kcfg);
  osim::DiskConfig dcfg;
  dcfg.sched = policy;
  osim::SimDisk disk(&kernel, dcfg);
  osfs::Ext2SimFs fs(&kernel, &disk);
  // One file per reader: shared-file O_DIRECT readers would serialize on
  // the inode semaphore and the disk queue would never see concurrency.
  for (int p = 0; p < 4; ++p) {
    fs.AddFile("/data" + std::to_string(p), 512ull << 20);
  }
  osprofilers::DriverProfiler driver(&kernel, &disk);
  for (int p = 0; p < 4; ++p) {
    kernel.Spawn("reader" + std::to_string(p),
                 osworkloads::RandomReadWorkload(&kernel, &fs,
                                                 "/data" + std::to_string(p),
                                                 600, 300 + p));
  }
  kernel.RunUntilThreadsFinish();
  RunResult r;
  r.driver_profiles = driver.profiles();
  r.elapsed_s = static_cast<double>(kernel.now()) / osprof::kPaperCpuHz;
  return r;
}

}  // namespace

int main() {
  osbench::Header("I/O scheduler ablation: FIFO vs C-LOOK elevator");
  osbench::JsonReport report("tab_disk_scheduler");

  const RunResult fifo = RunReaders(osim::DiskSchedPolicy::kFifo);
  const RunResult elevator = RunReaders(osim::DiskSchedPolicy::kElevator);
  report.AddOps(fifo.driver_profiles.TotalOperations() +
                elevator.driver_profiles.TotalOperations());
  report.WriteProfileSet(fifo.driver_profiles, "fifo");
  report.WriteProfileSet(elevator.driver_profiles, "elevator");

  osbench::Section("Driver-level disk_read profiles (total latency)");
  osbench::ShowProfile(osprof::Profile(
      "disk_read-FIFO", fifo.driver_profiles.Find("disk_read")->histogram()));
  osbench::ShowProfile(
      osprof::Profile("disk_read-ELEVATOR",
                      elevator.driver_profiles.Find("disk_read")->histogram()));

  osbench::Section("Results");
  const double fifo_mean =
      fifo.driver_profiles.Find("disk_read")->histogram().MeanLatency() /
      osprof::kPaperCpuHz * 1e3;
  const double elev_mean =
      elevator.driver_profiles.Find("disk_read")->histogram().MeanLatency() /
      osprof::kPaperCpuHz * 1e3;
  std::printf("  mean disk_read latency: FIFO %.2fms vs elevator %.2fms\n",
              fifo_mean, elev_mean);
  std::printf("  workload elapsed:       FIFO %.2fs vs elevator %.2fs "
              "(%+.1f%%)\n",
              fifo.elapsed_s, elevator.elapsed_s,
              100.0 * (elevator.elapsed_s - fifo.elapsed_s) / fifo.elapsed_s);
  std::printf("  expected shape: elevator wins on elapsed/mean by cutting\n"
              "  seeks; its queue-latency distribution grows a right tail.\n");
  report.Check("elevator_faster_elapsed",
               elevator.elapsed_s < fifo.elapsed_s);
  report.Check("elevator_lower_mean_latency", elev_mean < fifo_mean);
  report.Metric("fifo_mean_ms", fifo_mean);
  report.Metric("elevator_mean_ms", elev_mean);
  report.Metric("fifo_elapsed_s", fifo.elapsed_s);
  report.Metric("elevator_elapsed_s", elevator.elapsed_s);
  return report.Finish();
}
