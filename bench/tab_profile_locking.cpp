// §3.4 "Profile Locking": lost updates vs. update cost across the three
// histogram policies, measured with REAL threads on the host.
//
// The paper: bucket increments are not atomic; on a dual-CPU worst case
// (two threads hammering the same bucket) fewer than 1% of updates were
// lost, so they used no locking on small SMP; on many CPUs they switched
// to per-thread profiles.  This bench measures the loss rate of the
// unlocked histogram (caught by the checksum machinery), shows that the
// atomic and sharded policies lose nothing, and times all three.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/histogram.h"

namespace {

struct Result {
  std::uint64_t attempted = 0;
  std::uint64_t recorded = 0;
  double ns_per_add = 0.0;
};

template <typename Fn>
Result RunThreads(int threads, std::uint64_t per_thread, Fn add,
                  std::uint64_t (*count)(void*), void* hist) {
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  const osprof::WallTimer timer;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&go, per_thread, add, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        add(t, i);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : pool) {
    t.join();
  }
  const double elapsed_ns = timer.Nanos();
  Result r;
  r.attempted = static_cast<std::uint64_t>(threads) * per_thread;
  r.recorded = count(hist);
  r.ns_per_add = elapsed_ns / static_cast<double>(r.attempted);
  return r;
}

void PrintRow(const char* name, const Result& r) {
  const double lost = 100.0 *
                      static_cast<double>(r.attempted - r.recorded) /
                      static_cast<double>(r.attempted);
  std::printf("  %-22s %12llu %12llu %8.3f%% %10.1f\n", name,
              static_cast<unsigned long long>(r.attempted),
              static_cast<unsigned long long>(r.recorded), lost,
              r.ns_per_add);
}

}  // namespace

int main() {
  osbench::Header("§3.4: histogram update policies under real threads");
  osbench::JsonReport report("tab_profile_locking");
  const int kThreads =
      std::max(2u, std::thread::hardware_concurrency());
  constexpr std::uint64_t kPerThread = 2'000'000;
  std::printf("%d threads x %llu updates, all into the same bucket "
              "(worst case)\n\n",
              kThreads, static_cast<unsigned long long>(kPerThread));
  std::printf("  %-22s %12s %12s %9s %10s\n", "policy", "attempted",
              "recorded", "lost", "ns/add");

  {
    osprof::Histogram h(1);
    const Result r = RunThreads(
        kThreads, kPerThread,
        [&h](int, std::uint64_t) { h.Add(128); },
        [](void* p) {
          return static_cast<osprof::Histogram*>(p)->TotalOperations();
        },
        &h);
    PrintRow("unlocked (paper SMP<=2)", r);
    // Both the buckets and the checksum counter race; a mismatch between
    // them is exactly what the paper's verification catches.
    std::printf("    bucket sum %llu vs checksum counter %llu -> "
                "CheckConsistency() = %s\n",
                static_cast<unsigned long long>(h.TotalOperations()),
                static_cast<unsigned long long>(h.recorded()),
                h.CheckConsistency() ? "true" : "false (loss detected)");
    report.AddOps(r.attempted);
    report.Metric("unlocked_ns_per_add", r.ns_per_add);
    report.Metric("unlocked_lost_pct",
                  100.0 * static_cast<double>(r.attempted - r.recorded) /
                      static_cast<double>(r.attempted));
  }
  {
    osprof::AtomicHistogram h(1);
    static osprof::AtomicHistogram* hp = &h;
    const Result r = RunThreads(
        kThreads, kPerThread,
        [](int, std::uint64_t) { hp->Add(128); },
        [](void*) { return hp->Snapshot().TotalOperations(); }, nullptr);
    PrintRow("atomic increments", r);
    report.AddOps(r.attempted);
    report.Check("atomic_loses_nothing", r.recorded == r.attempted);
    report.Metric("atomic_ns_per_add", r.ns_per_add);
  }
  {
    osprof::ShardedHistogram h(1);
    static osprof::ShardedHistogram* hp = &h;
    const Result r = RunThreads(
        kThreads, kPerThread,
        [](int, std::uint64_t) { hp->Local()->Add(128); },
        [](void*) { return hp->Merge().TotalOperations(); }, nullptr);
    PrintRow("per-thread shards", r);
    report.AddOps(r.attempted);
    report.Check("sharded_loses_nothing", r.recorded == r.attempted);
    report.Metric("sharded_ns_per_add", r.ns_per_add);
  }

  std::printf("\n  paper: <1%% lost on a dual-CPU worst case -> no locking\n"
              "  on few CPUs; per-thread profiles on many CPUs.  The\n"
              "  atomic and sharded policies must lose exactly nothing.\n");
  return report.Finish();
}
