// §5.2: CPU-time overheads of file-system-level instrumentation, measured
// with a Postmark workload.
//
// Four configurations isolate the per-probe components exactly like the
// paper's three extra file systems: uninstrumented Ext2, empty probe
// bodies (function-call cost only), TSC reads without sorting/storing,
// and full profiling.  The paper's decomposition: +1.5% system time from
// calls, +0.5% from TSC reads, +2.0% from sorting/storing = 4.0% total;
// wait and user times unaffected; the measured floor between the TSC
// reads is ~40 cycles, so the smallest populated bucket is 5.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/fs/ext2fs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/workloads.h"

namespace {

enum class Mode { kOff, kCallsOnly, kCallsAndTsc, kFull };

struct RunTimes {
  double elapsed_s = 0.0;
  double user_s = 0.0;
  double sys_s = 0.0;
  double wait_s = 0.0;
  int min_bucket = -1;
};

RunTimes RunPostmark(Mode mode) {
  osim::KernelConfig kcfg;
  kcfg.num_cpus = 1;
  kcfg.seed = 31;
  osim::Kernel kernel(kcfg);
  osim::SimDisk disk(&kernel);
  osfs::Ext2Config fcfg;
  // Match the paper's setup: the working set exceeds the page cache so
  // I/O reaches the disk, and per-op system costs reflect a full kernel
  // VFS stack (our minimal model's ops are ~2.5x cheaper than 2.6.11's,
  // which would overstate the relative probe overhead).
  fcfg.cache_pages = 3'000;
  fcfg.costs.open_base *= 3;
  fcfg.costs.lookup_per_component *= 3;
  fcfg.costs.close_base *= 3;
  fcfg.costs.read_base *= 3;
  fcfg.costs.read_copy_per_page *= 3;
  fcfg.costs.write_base *= 3;
  fcfg.costs.write_per_page *= 3;
  fcfg.costs.create_base *= 3;
  fcfg.costs.unlink_base *= 3;
  fcfg.costs.stat_base *= 3;
  fcfg.costs.fsync_base *= 3;
  osfs::Ext2SimFs fs(&kernel, &disk, fcfg);
  fs.AddDir("/postmark");
  osprofilers::SimProfiler profiler(&kernel);
  if (mode != Mode::kOff) {
    profiler.set_charge_overhead(true);
    osprofilers::InstrumentationCosts& costs = profiler.costs();
    if (mode == Mode::kCallsOnly) {
      costs.tsc_inside_pre = 0;
      costs.tsc_inside_post = 0;
      costs.tsc_outside = 0;
      costs.store = 0;
    } else if (mode == Mode::kCallsAndTsc) {
      costs.store = 0;
    }
    fs.SetProfiler(&profiler);
  }

  osworkloads::PostmarkConfig pcfg;
  pcfg.initial_files = 2'000;
  pcfg.transactions = 20'000;
  osworkloads::PostmarkStats stats;
  kernel.Spawn("postmark",
               osworkloads::PostmarkWorkload(&kernel, &fs, pcfg, &stats));
  kernel.RunUntilThreadsFinish();

  RunTimes t;
  const osim::SimThread* pm = kernel.threads()[0].get();
  t.elapsed_s = static_cast<double>(kernel.now()) / osprof::kPaperCpuHz;
  t.user_s = static_cast<double>(pm->user_time()) / osprof::kPaperCpuHz;
  t.sys_s = static_cast<double>(pm->system_time()) / osprof::kPaperCpuHz;
  t.wait_s = t.elapsed_s - t.user_s - t.sys_s;
  if (mode == Mode::kFull) {
    for (const auto& [name, profile] : profiler.profiles()) {
      const int first = profile.histogram().FirstNonEmpty();
      if (first >= 0 && (t.min_bucket < 0 || first < t.min_bucket)) {
        t.min_bucket = first;
      }
    }
  }
  return t;
}

}  // namespace

int main() {
  osbench::Header("§5.2: instrumentation CPU-time overheads (Postmark)");
  osbench::JsonReport report("tab_overheads");

  const RunTimes base = RunPostmark(Mode::kOff);
  const RunTimes calls = RunPostmark(Mode::kCallsOnly);
  const RunTimes tsc = RunPostmark(Mode::kCallsAndTsc);
  const RunTimes full = RunPostmark(Mode::kFull);

  auto row = [&](const char* name, const RunTimes& t) {
    std::printf("  %-22s %8.3fs %8.3fs %8.3fs %8.3fs %+7.2f%%\n", name,
                t.elapsed_s, t.user_s, t.sys_s, t.wait_s,
                100.0 * (t.sys_s - base.sys_s) / base.sys_s);
  };
  std::printf("  %-22s %9s %9s %9s %9s %8s\n", "configuration", "elapsed",
              "user", "system", "wait", "sys ovh");
  row("uninstrumented", base);
  row("empty probe bodies", calls);
  row("probes + TSC reads", tsc);
  row("full profiling", full);

  osbench::Section("Decomposition (increments over the previous row)");
  const double call_pct = 100.0 * (calls.sys_s - base.sys_s) / base.sys_s;
  const double tsc_pct = 100.0 * (tsc.sys_s - calls.sys_s) / base.sys_s;
  const double store_pct = 100.0 * (full.sys_s - tsc.sys_s) / base.sys_s;
  const double total_pct = 100.0 * (full.sys_s - base.sys_s) / base.sys_s;
  std::printf("  function calls:   %+5.2f%% of system time (paper: +1.5%%)\n",
              call_pct);
  std::printf("  TSC reads:        %+5.2f%% of system time (paper: +0.5%%)\n",
              tsc_pct);
  std::printf("  sorting/storing:  %+5.2f%% of system time (paper: +2.0%%)\n",
              store_pct);
  std::printf("  total:            %+5.2f%% of system time (paper: +4.0%%)\n",
              total_pct);
  std::printf("  ratio calls:tsc:store = %.1f : %.1f : %.1f "
              "(paper: 3 : 1 : 4)\n",
              call_pct / tsc_pct, 1.0, store_pct / tsc_pct);

  osbench::Section("Other checks");
  std::printf("  user time unaffected: base %.3fs vs full %.3fs (%+.2f%%)\n",
              base.user_s, full.user_s,
              100.0 * (full.user_s - base.user_s) / base.user_s);
  std::printf("  wait time change: %+.2f%% (paper: unaffected)\n",
              100.0 * (full.wait_s - base.wait_s) / base.wait_s);
  std::printf("  elapsed overhead: %+.2f%% (paper: <1%% for I/O-bound runs)\n",
              100.0 * (full.elapsed_s - base.elapsed_s) / base.elapsed_s);
  std::printf("  smallest populated bucket under full profiling: %d\n"
              "  (paper saw 5 because some VFS ops do near-zero work; the\n"
              "   40-cycle floor itself -> bucket 5 is asserted by the unit\n"
              "   test SimProfiler.OverheadChargingAddsCostsAndFloor)\n",
              full.min_bucket);
  report.Check("overhead_components_positive",
               call_pct > 0.0 && tsc_pct > 0.0 && store_pct > 0.0);
  report.Check("total_sys_overhead_single_digit",
               total_pct > 0.0 && total_pct < 10.0);
  report.Check("user_time_unaffected",
               std::abs(full.user_s - base.user_s) / base.user_s < 0.01);
  report.Metric("sys_overhead_calls_pct", call_pct);
  report.Metric("sys_overhead_tsc_pct", tsc_pct);
  report.Metric("sys_overhead_store_pct", store_pct);
  report.Metric("sys_overhead_total_pct", total_pct);
  return report.Finish();
}
