// The cluster FS + DLM scenarios (ROADMAP item 4): runs the shared-write
// ping-pong and the read-mostly contrast, prints the DLM traffic
// summary, and checks the headline attribution criterion -- the slowest
// write peak of cluster_write_shared decomposes >= 80% into lock_wait +
// net, i.e. the stall is the revoke protocol, not the write's own work.

#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "src/core/layered.h"
#include "src/core/peaks.h"
#include "src/runner/runner.h"
#include "src/runner/scenario.h"

namespace {

void ShowDlmTraffic(const osrunner::RunResult& result) {
  std::printf(
      "  %llu acquires (%llu cache hits), %llu remote requests, %llu "
      "queued\n  %llu BASTs, %llu downgrades, %llu fabric messages, %llu "
      "pages flushed\n",
      static_cast<unsigned long long>(result.TotalCounter("dlm_acquires")),
      static_cast<unsigned long long>(result.TotalCounter("dlm_cache_hits")),
      static_cast<unsigned long long>(
          result.TotalCounter("dlm_remote_requests")),
      static_cast<unsigned long long>(
          result.TotalCounter("dlm_queued_waits")),
      static_cast<unsigned long long>(result.TotalCounter("dlm_basts")),
      static_cast<unsigned long long>(result.TotalCounter("dlm_downgrades")),
      static_cast<unsigned long long>(result.TotalCounter("net_messages")),
      static_cast<unsigned long long>(result.TotalCounter("pages_flushed")));
}

// Fraction of the slowest write peak's cycles attributed to lock_wait +
// net in the "cluster" layer; -1.0 if the decomposition is missing.
double SlowestWritePeakLockNetShare(const osrunner::RunResult& result) {
  const auto it = result.layers.find("cluster");
  if (it == result.layers.end()) {
    return -1.0;
  }
  const osprof::Histogram* histogram = nullptr;
  for (const auto& [op, profile] : it->second.merged) {
    if (op == "write") {
      histogram = &profile.histogram();
    }
  }
  const osprof::LayeredProfile* layered = it->second.layered.Find("write");
  if (histogram == nullptr || layered == nullptr) {
    return -1.0;
  }
  const auto peaks = osprof::FindPeaks(*histogram);
  if (peaks.empty()) {
    return -1.0;
  }
  const osprof::Peak& slowest = peaks.back();
  osprof::Cycles lock_net = 0;
  osprof::Cycles total = 0;
  for (const auto& [bucket, lb] : layered->buckets()) {
    if (bucket < slowest.first_bucket || bucket > slowest.last_bucket) {
      continue;
    }
    lock_net += lb.cycles[osprof::kLayerLockWait];
    lock_net += lb.cycles[osprof::kLayerNet];
    total += lb.TotalCycles();
  }
  return total == 0 ? -1.0
                    : static_cast<double>(lock_net) /
                          static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  osbench::Header("Cluster FS over a DLM: lock ping-pong attribution");
  osbench::JsonReport report("cluster");
  const osrunner::RunOptions options = osbench::ParseRunCli(argc, argv);

  osbench::Section("cluster_write_shared: 2 nodes, pure shared writes");
  const osrunner::Scenario* write_shared =
      osrunner::BuiltinScenarios().Find("cluster_write_shared");
  const osrunner::RunResult ws = osrunner::RunScenario(*write_shared, options);
  report.RecordRun(ws);
  osbench::ShowRunSummary(ws);
  ShowDlmTraffic(ws);

  const double share = SlowestWritePeakLockNetShare(ws);
  std::printf("  slowest write peak: %.1f%% lock_wait+net (want >= 80%%)\n",
              100.0 * share);
  report.Metric("slowest_write_peak_lock_net_share", share);
  report.Check("slowest_write_peak_lock_net_share", share >= 0.8);
  report.Check("write_shared_ping_pongs",
               ws.TotalCounter("dlm_basts") > 0 &&
                   ws.TotalCounter("dlm_downgrades") > 0 &&
                   ws.TotalCounter("pages_flushed") > 0);
  report.Check("write_shared_race_free", ws.RaceReports().empty());

  osbench::Section("cluster_read_mostly: cached PR grants, rare revokes");
  const osrunner::Scenario* read_mostly =
      osrunner::BuiltinScenarios().Find("cluster_read_mostly");
  const osrunner::RunResult rm = osrunner::RunScenario(*read_mostly, options);
  report.RecordRun(rm);
  osbench::ShowRunSummary(rm);
  ShowDlmTraffic(rm);

  const std::uint64_t rm_acquires = rm.TotalCounter("dlm_acquires");
  const std::uint64_t rm_hits = rm.TotalCounter("dlm_cache_hits");
  std::printf("  cache-hit rate %.1f%% (reads ride the cached PR grant)\n",
              rm_acquires > 0
                  ? 100.0 * static_cast<double>(rm_hits) /
                        static_cast<double>(rm_acquires)
                  : 0.0);
  report.Check("read_mostly_grants_stay_cached",
               rm_hits * 2 > rm_acquires);
  report.Check("read_mostly_race_free", rm.RaceReports().empty());
  return report.Finish();
}
