// §3 bucket-resolution ablation: r = 1 vs higher resolutions.
//
// The paper: "r = 2, for example, would double the profile resolution
// (bucket density) with a negligible increase in CPU overheads and
// doubled (yet small overall) memory overheads."  This bench shows the
// payoff: two execution paths whose latencies differ by ~1.7x land in
// the SAME r=1 bucket (one peak, the second mode invisible); at r=4 a
// gap bucket opens between them and the modes separate.  (Two modes
// inside one r=1 bucket are at most 2x apart, so they occupy adjacent
// r=2 buckets -- separation with an empty bucket between needs r>=4.)
// The cost side of the claim is quantified below.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/clock.h"
#include "src/core/histogram.h"
#include "src/core/peaks.h"
#include "src/core/probe.h"
#include "src/sim/rng.h"

namespace {

// A bimodal operation: a fast path at ~1050 cycles and a slow path at
// ~1800 cycles (e.g. an occasional retry) -- both inside bucket 10 at
// r = 1 (1024..2047), but separated by empty buckets at r = 4.
osprof::Cycles SampleLatency(osim::Rng* rng) {
  const bool slow = rng->Chance(0.3);
  const double median = slow ? 1'800.0 : 1'050.0;
  const double v = rng->LogNormal(median, 0.03);
  return static_cast<osprof::Cycles>(v);
}

}  // namespace

int main() {
  osbench::Header("Bucket resolution ablation: r=1 vs r=4 (§3)");
  osbench::JsonReport report("tab_resolution");

  osim::Rng rng(4242);
  osprof::Histogram r1(1);
  osprof::Histogram r4(4);
  for (int i = 0; i < 200'000; ++i) {
    const osprof::Cycles latency = SampleLatency(&rng);
    r1.Add(latency);
    r4.Add(latency);
  }

  osbench::Section("r = 1: the two paths merge");
  osbench::ShowProfile(osprof::Profile("bimodal-r1", r1));
  osbench::Section("r = 4: the paths separate");
  osbench::ShowProfile(osprof::Profile("bimodal-r4", r4));

  const auto peaks1 = osprof::FindPeaks(r1);
  const auto peaks4 = osprof::FindPeaks(r4);
  osbench::Section("Verdict");
  std::printf("  peaks detected at r=1: %zu; at r=4: %zu\n", peaks1.size(),
              peaks4.size());
  std::printf("  resolving power: %s\n",
              peaks4.size() > peaks1.size() ? "r=4 reveals the hidden mode"
                                            : "no difference on this data");
  report.AddOps(r1.TotalOperations());
  report.Check("r4_reveals_hidden_mode", peaks4.size() > peaks1.size());
  report.Metric("peaks_r1", static_cast<double>(peaks1.size()));
  report.Metric("peaks_r4", static_cast<double>(peaks4.size()));

  osbench::Section("Costs (the 'negligible increase' claim)");
  // Memory: bucket arrays scale linearly with r.
  std::printf("  memory: %d buckets (r=1) vs %d buckets (r=4): %zu B vs %zu B\n",
              r1.num_buckets(), r4.num_buckets(),
              static_cast<std::size_t>(r1.num_buckets()) * sizeof(std::uint64_t),
              static_cast<std::size_t>(r4.num_buckets()) * sizeof(std::uint64_t));
  // CPU: time the Add path at several resolutions on the host.
  for (const int r : {1, 2, 4}) {
    osprof::Histogram h(r);
    const osprof::Cycles t0 = osprof::ReadTsc();
    osprof::Cycles latency = 1;
    constexpr int kOps = 2'000'000;
    for (int i = 0; i < kOps; ++i) {
      h.Add(latency);
      latency = latency * 5 / 3 + 1;
    }
    const osprof::Cycles t1 = osprof::ReadTsc();
    std::printf("  CPU: r=%d Add() ~%.1f cycles/op (host TSC)\n", r,
                static_cast<double>(t1 - t0) / kOps);
    report.Metric("add_cycles_per_op_r" + std::to_string(r),
                  static_cast<double>(t1 - t0) / kOps);
  }
  return report.Finish();
}
