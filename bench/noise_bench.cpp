// The OS-noise profiling mode (ROADMAP item 3): runs the `noise` scenario,
// prints the rtla/osnoise-style per-task interference table, and checks
// §3.3 Equation 3 -- the measured forced-preemption count must agree with
// the model's prediction from the sample budget.  The default burst is
// bucket 16's exact mid-latency, so the prediction is free of
// bucket-rounding error and the tolerance can stay tight.

#include <cmath>
#include <cstdio>
#include <string>
#include <variant>

#include "bench/bench_util.h"
#include "src/core/histogram.h"
#include "src/core/preemption.h"
#include "src/profilers/noise_profiler.h"
#include "src/runner/runner.h"
#include "src/runner/scenario.h"
#include "src/sim/kernel.h"

namespace {

double PredictedPreemptions(const osrunner::Scenario& scenario,
                            const osrunner::NoiseSpec& spec, int trials) {
  if (spec.tasks <= scenario.kernel.num_cpus) {
    return 0.0;  // No oversubscription, no waiting competitor (Eq. 3).
  }
  osprof::Histogram samples;
  samples.set_bucket(osprof::BucketIndex(spec.burst),
                     static_cast<std::uint64_t>(spec.tasks) * spec.samples *
                         static_cast<std::uint64_t>(trials));
  return osprof::ExpectedPreemptedRequests(
      samples, static_cast<double>(scenario.kernel.quantum));
}

}  // namespace

int main(int argc, char** argv) {
  osbench::Header("OS-noise profiling mode: Equation 3 validation (§3.3)");
  osbench::JsonReport report("noise");
  const osrunner::RunOptions options = osbench::ParseRunCli(argc, argv);

  const osrunner::Scenario* scenario =
      osrunner::BuiltinScenarios().Find("noise");
  const auto* spec = std::get_if<osrunner::NoiseSpec>(&scenario->workload);
  std::printf("%s\n", scenario->description.c_str());

  osbench::Section("Per-task interference table (one machine, base seed)");
  {
    osim::Kernel kernel(scenario->kernel);
    osprofilers::NoiseProfiler profiler(&kernel,
                                        scenario->profilers.resolution);
    for (int i = 0; i < spec->tasks; ++i) {
      kernel.Spawn("noise" + std::to_string(i),
                   profiler.NoiseTask(i, spec->samples, spec->burst));
    }
    kernel.RunUntilThreadsFinish();
    std::printf("%s", profiler.RenderSummary().c_str());
    const double runtime = static_cast<double>(profiler.TotalRuntime());
    const double noise = static_cast<double>(profiler.TotalNoise());
    const double available =
        runtime > 0.0 ? 100.0 * (1.0 - noise / runtime) : 100.0;
    report.Metric("percent_available", available);
    report.Check("noise_dominated_by_interference",
                 profiler.TotalPreemptions() > 0 &&
                     profiler.TotalRunQueue() > 0);
  }

  osbench::Section("Equation 3 agreement over independently-seeded trials");
  const osrunner::RunResult result = osrunner::RunScenario(*scenario, options);
  report.RecordRun(result);
  osbench::ShowRunSummary(result);
  const double predicted =
      PredictedPreemptions(*scenario, *spec, result.options.trials);
  const double measured =
      static_cast<double>(result.TotalCounter("noise_preemptions"));
  const double rel_err =
      predicted > 0.0 ? std::abs(measured - predicted) / predicted
                      : (measured > 0.0 ? 1.0 : 0.0);
  std::printf("  predicted %.1f forced preemptions, measured %.0f\n"
              "  rel err %.4f (tolerance %.2f); preempted samples surface "
              "near bucket %d\n",
              predicted, measured, rel_err, spec->eq3_tolerance,
              osprof::PreemptionBucket(
                  static_cast<double>(scenario->kernel.quantum)));
  report.Metric("eq3_predicted_preemptions", predicted);
  report.Metric("eq3_measured_preemptions", measured);
  report.Metric("eq3_rel_err", rel_err);
  report.Check("eq3_agreement_within_tolerance",
               rel_err <= spec->eq3_tolerance);

  osbench::Section("Idle baseline (noise_idle: 1 task, 1 CPU)");
  const osrunner::Scenario* idle =
      osrunner::BuiltinScenarios().Find("noise_idle");
  const osrunner::RunResult idle_result =
      osrunner::RunScenario(*idle, options);
  report.RecordRun(idle_result);
  const std::uint64_t idle_preempts =
      idle_result.TotalCounter("noise_preemptions");
  const std::uint64_t idle_stolen =
      idle_result.TotalCounter("noise_stolen_cycles");
  std::printf("  preemptions %llu (want 0), timer-stolen cycles %llu "
              "(the residual noise)\n",
              static_cast<unsigned long long>(idle_preempts),
              static_cast<unsigned long long>(idle_stolen));
  report.Check("idle_baseline_has_no_preemptions", idle_preempts == 0);
  report.Check("idle_noise_is_timer_service_only",
               idle_result.TotalCounter("noise_cycles") == idle_stolen);
  return report.Finish();
}
