// Figure 7: Ext2 readdir and readpage profiles for one run of grep -r
// over a kernel-source-like tree (§6.2).
//
// Four readdir peaks: (1) past-EOF fast returns (buckets 6-7), (2)
// page-cache hits (9-14), (3) disk-cache (readahead) hits (16-17), and
// (4) mechanical disk accesses (18-23).  The paper's cross-check is also
// reproduced: the number of readpage operations equals the number of
// readdir+read operations in peaks 3+4 (the ones that initiated I/O).
//
// Runs on the multi-trial runner (--trials=N --jobs=J); the cross-check
// is per-trial bookkeeping that survives merging, so it must hold on the
// merged profile too.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/analysis.h"
#include "src/fs/ext2fs.h"
#include "src/profilers/callgraph_profiler.h"
#include "src/runner/runner.h"
#include "src/runner/scenario.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/workloads.h"

int main(int argc, char** argv) {
  osbench::Header("Figure 7: readdir/readpage under grep -r (§6.2)");
  osbench::JsonReport report("fig07_readdir_peaks");
  const osrunner::RunOptions options = osbench::ParseRunCli(argc, argv);

  const osrunner::Scenario* scenario =
      osrunner::BuiltinScenarios().Find("fig07");
  const osrunner::RunResult result = osrunner::RunScenario(*scenario, options);
  const osprof::ProfileSet& profiles = result.layers.at("fs").merged;
  report.RecordRun(result);
  report.WriteProfileSet(profiles, "fs");
  const std::uint64_t directories = result.TotalCounter("directories_visited");
  std::printf("grep: read %llu files (%.1f MB) over %llu directories\n",
              static_cast<unsigned long long>(result.TotalCounter("files_read")),
              static_cast<double>(result.TotalCounter("bytes_read")) / 1e6,
              static_cast<unsigned long long>(directories));
  osbench::ShowRunSummary(result);

  osbench::Section("READDIR");
  osbench::ShowProfile(*profiles.Find("readdir"));
  osbench::Section("READPAGE");
  osbench::ShowProfile(*profiles.Find("readpage"));
  osbench::ShowDispersion(result, "fs");

  // Second run with function-granularity profiling (§3.1's gcc -p mode):
  // the readdir -> readpage call edge, captured directly.  Kept as a
  // bespoke single run; the call-graph report has no merge story yet.
  {
    const auto* grep = std::get_if<osrunner::GrepSpec>(&scenario->workload);
    osim::KernelConfig kcfg2 = scenario->kernel;
    osim::Kernel kernel2(kcfg2);
    osim::SimDisk disk2(&kernel2);
    osfs::Ext2SimFs fs2(&kernel2, &disk2);
    osworkloads::BuildSourceTree(&fs2, grep->root, grep->tree);
    osprofilers::CallGraphProfiler callgraph(&kernel2);
    fs2.SetCallGraphProfiler(&callgraph);
    osworkloads::GrepStats stats2;
    kernel2.Spawn("grep",
                  osworkloads::GrepWorkload(&kernel2, &fs2, grep->root,
                                            grep->per_byte_cpu, &stats2));
    kernel2.RunUntilThreadsFinish();
    osbench::Section("Function-granularity layered profile (§3.1)");
    std::printf("%s", callgraph.Report(osprof::kPaperCpuHz).c_str());
  }

  osbench::Section("Profile preprocessing: ops by total latency (§3.1)");
  for (const osprof::RankedOp& op : osprof::RankByLatency(profiles)) {
    std::printf("  %-10s %8llu ops  %6.1f%% of latency (cum %5.1f%%)\n",
                op.op_name.c_str(),
                static_cast<unsigned long long>(op.total_ops),
                op.latency_fraction * 100.0, op.cumulative_fraction * 100.0);
  }

  osbench::Section("Paper-vs-measured checks");
  const osprof::Histogram& rd = profiles.Find("readdir")->histogram();
  const osprof::Histogram& rp = profiles.Find("read")->histogram();
  std::uint64_t readdir_eof = 0;
  std::uint64_t cached = 0;
  std::uint64_t io_zone = 0;
  for (int b = 5; b <= 8; ++b) {
    readdir_eof += rd.bucket(b);
  }
  for (int b = 9; b <= 14; ++b) {
    cached += rd.bucket(b);
  }
  std::uint64_t read_io = 0;
  for (int b = 15; b < rd.num_buckets(); ++b) {
    io_zone += rd.bucket(b);
    read_io += rp.bucket(b);
  }
  const std::uint64_t readpages =
      profiles.Find("readpage")->total_operations();
  std::printf("  peak 1 (past-EOF,   buckets ~6-7):  %llu ops\n",
              static_cast<unsigned long long>(readdir_eof));
  std::printf("  peak 2 (page cache, buckets ~9-14): %llu ops\n",
              static_cast<unsigned long long>(cached));
  std::printf("  peaks 3+4 (disk,    buckets >=15):  %llu ops (readdir) + %llu (read)\n",
              static_cast<unsigned long long>(io_zone),
              static_cast<unsigned long long>(read_io));
  std::printf("  readpage operations:                %llu\n",
              static_cast<unsigned long long>(readpages));
  std::printf("  paper cross-check (#readpage == #I/O-latency callers): %s\n",
              report.Check("readpage_equals_io_callers",
                           readpages == io_zone + read_io)
                  ? "HOLDS"
                  : "differs");
  std::printf("  one past-EOF readdir per directory: %s (%llu dirs)\n",
              report.Check("past_eof_readdir_per_directory",
                           readdir_eof >= directories)
                  ? "HOLDS"
                  : "differs",
              static_cast<unsigned long long>(directories));
  report.Check("four_peak_zones_populated",
               readdir_eof > 0 && cached > 0 && io_zone > 0);
  report.Metric("readdir_past_eof_ops", static_cast<double>(readdir_eof));
  report.Metric("readdir_cached_ops", static_cast<double>(cached));
  report.Metric("readdir_io_ops", static_cast<double>(io_zone));
  return report.Finish();
}
