// Figure 3: the zero-byte read profile with kernel preemption enabled vs
// disabled (paper §3.3).  Preempted requests surface in the bucket of the
// scheduling quantum; timer interrupts leave a small peak at the IRQ
// service time.  The measured count of preempted requests is compared
// against the Equation 3 expectation.
//
// Scale note: the paper issues 2e8 requests against Q = 2^26.  The
// simulation shrinks the quantum to 2^20 and the request count to 1e6;
// the expectation sum_b n_b * mid(b) / Q scales identically, so the model
// validation is unchanged (see EXPERIMENTS.md).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/preemption.h"
#include "src/fs/ext2fs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/workloads.h"

namespace {

constexpr osprof::Cycles kQuantum = osprof::Cycles{1} << 20;
constexpr std::uint64_t kRequestsPerProcess = 500'000;

osprof::Histogram RunZeroByteReads(bool kernel_preemption) {
  osim::KernelConfig cfg;
  cfg.num_cpus = 1;
  cfg.quantum = kQuantum;
  cfg.kernel_preemption = kernel_preemption;
  cfg.seed = 7;
  osim::Kernel kernel(cfg);
  osim::SimDisk disk(&kernel);
  osfs::Ext2Config fs_cfg;
  fs_cfg.cpu_noise_sigma = 0.15;
  osfs::Ext2SimFs fs(&kernel, &disk, fs_cfg);
  fs.AddFile("/probe", 4096);
  osprofilers::SimProfiler profiler(&kernel);
  fs.SetProfiler(&profiler);
  for (int p = 0; p < 2; ++p) {
    kernel.Spawn("proc" + std::to_string(p),
                 osworkloads::ZeroByteReadWorkload(
                     &kernel, &fs, "/probe", kRequestsPerProcess,
                     /*user_cycles=*/120));
  }
  kernel.RunUntilThreadsFinish();
  std::printf("  [%s] forced preemptions (all modes): %llu\n",
              kernel_preemption ? "preemptive" : "non-preemptive",
              static_cast<unsigned long long>(kernel.total_forced_preemptions()));
  return profiler.profiles().Find("read")->histogram();
}

std::uint64_t TailCount(const osprof::Histogram& h, int from_bucket) {
  std::uint64_t n = 0;
  for (int b = from_bucket; b < h.num_buckets(); ++b) {
    n += h.bucket(b);
  }
  return n;
}

}  // namespace

int main() {
  osbench::Header("Figure 3: zero-byte read, preemptive vs non-preemptive kernel");
  std::printf("quantum Q = 2^20 cycles, 2 processes x %llu requests, 1 CPU\n",
              static_cast<unsigned long long>(kRequestsPerProcess));

  const osprof::Histogram preemptive = RunZeroByteReads(true);
  const osprof::Histogram nonpreemptive = RunZeroByteReads(false);

  osbench::Section("READ (preemptive kernel)");
  osbench::ShowProfile(osprof::Profile("READ-preemptive", preemptive));
  osbench::Section("READ (non-preemptive kernel)");
  osbench::ShowProfile(osprof::Profile("READ-nonpreemptive", nonpreemptive));

  osbench::Section("Equation 3 validation");
  const int q_bucket = osprof::PreemptionBucket(static_cast<double>(kQuantum));
  const std::uint64_t measured = TailCount(preemptive, q_bucket - 1);
  const std::uint64_t measured_np = TailCount(nonpreemptive, q_bucket - 1);
  // The Eq. 3 expectation needs the pure tcpu distribution, which is what
  // the non-preemptive profile records.
  const double expected = osprof::ExpectedPreemptedRequests(
      nonpreemptive, static_cast<double>(kQuantum));
  std::printf("  quantum bucket: %d\n", q_bucket);
  std::printf("  expected preempted requests (Eq. 3 sum): %.1f\n", expected);
  std::printf("  measured in quantum-bucket tail (preemptive):     %llu\n",
              static_cast<unsigned long long>(measured));
  std::printf("  measured in quantum-bucket tail (non-preemptive): %llu\n",
              static_cast<unsigned long long>(measured_np));
  std::printf("  paper shape: tail present only with preemption "
              "(observed 278 vs expected 388 +- 33%% at their scale)\n");
  std::printf("  shape holds: %s\n",
              (measured > 0 && measured_np == 0 &&
               measured < 4 * (expected + 1) &&
               4 * measured > static_cast<std::uint64_t>(expected / 4))
                  ? "YES"
                  : "NO");
  return 0;
}
