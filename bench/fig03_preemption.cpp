// Figure 3: the zero-byte read profile with kernel preemption enabled vs
// disabled (paper §3.3).  Preempted requests surface in the bucket of the
// scheduling quantum; timer interrupts leave a small peak at the IRQ
// service time.  The measured count of preempted requests is compared
// against the Equation 3 expectation.
//
// Scale note: the paper issues 2e8 requests against Q = 2^26.  The
// simulation shrinks the quantum to 2^20 and the request count to 1e6;
// the expectation sum_b n_b * mid(b) / Q scales identically, so the model
// validation is unchanged (see EXPERIMENTS.md).
//
// Runs on the multi-trial runner (--trials=N --jobs=J); both the tail
// count and the Eq. 3 expectation scale linearly with the trial count,
// so the validation holds at any N.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/preemption.h"
#include "src/runner/runner.h"
#include "src/runner/scenario.h"

namespace {

constexpr osprof::Cycles kQuantum = osprof::Cycles{1} << 20;

osrunner::RunResult RunZeroByteReads(const char* scenario_name,
                                     const osrunner::RunOptions& options) {
  const osrunner::Scenario* scenario =
      osrunner::BuiltinScenarios().Find(scenario_name);
  const osrunner::RunResult result = osrunner::RunScenario(*scenario, options);
  std::printf("  [%s] forced preemptions (all modes): %llu\n", scenario_name,
              static_cast<unsigned long long>(
                  result.TotalCounter("forced_preemptions")));
  return result;
}

std::uint64_t TailCount(const osprof::Histogram& h, int from_bucket) {
  std::uint64_t n = 0;
  for (int b = from_bucket; b < h.num_buckets(); ++b) {
    n += h.bucket(b);
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  osbench::Header(
      "Figure 3: zero-byte read, preemptive vs non-preemptive kernel");
  osbench::JsonReport report("fig03_preemption");
  const osrunner::RunOptions options = osbench::ParseRunCli(argc, argv);
  std::printf("quantum Q = 2^20 cycles, 2 processes x 500000 requests, 1 CPU\n");

  const osrunner::RunResult preemptive_run =
      RunZeroByteReads("fig03", options);
  const osrunner::RunResult nonpreemptive_run =
      RunZeroByteReads("fig03_nonpreempt", options);
  const osprof::Histogram& preemptive =
      preemptive_run.layers.at("fs").merged.Find("read")->histogram();
  const osprof::Histogram& nonpreemptive =
      nonpreemptive_run.layers.at("fs").merged.Find("read")->histogram();

  osbench::Section("READ (preemptive kernel)");
  osbench::ShowProfile(osprof::Profile("READ-preemptive", preemptive));
  osbench::Section("READ (non-preemptive kernel)");
  osbench::ShowProfile(osprof::Profile("READ-nonpreemptive", nonpreemptive));
  osbench::ShowRunSummary(preemptive_run);
  osbench::ShowDispersion(preemptive_run, "fs");
  report.RecordRun(preemptive_run);
  report.RecordRun(nonpreemptive_run);
  report.WriteProfileSet(preemptive_run.layers.at("fs").merged, "fs");

  osbench::Section("Equation 3 validation");
  const int q_bucket = osprof::PreemptionBucket(static_cast<double>(kQuantum));
  const std::uint64_t measured = TailCount(preemptive, q_bucket - 1);
  const std::uint64_t measured_np = TailCount(nonpreemptive, q_bucket - 1);
  // The Eq. 3 expectation needs the pure tcpu distribution, which is what
  // the non-preemptive profile records.
  const double expected = osprof::ExpectedPreemptedRequests(
      nonpreemptive, static_cast<double>(kQuantum));
  std::printf("  quantum bucket: %d\n", q_bucket);
  std::printf("  expected preempted requests (Eq. 3 sum): %.1f\n", expected);
  std::printf("  measured in quantum-bucket tail (preemptive):     %llu\n",
              static_cast<unsigned long long>(measured));
  std::printf("  measured in quantum-bucket tail (non-preemptive): %llu\n",
              static_cast<unsigned long long>(measured_np));
  std::printf("  paper shape: tail present only with preemption "
              "(observed 278 vs expected 388 +- 33%% at their scale)\n");
  const bool shape_holds =
      measured > 0 && measured_np == 0 && measured < 4 * (expected + 1) &&
      4 * measured > static_cast<std::uint64_t>(expected / 4);
  std::printf("  shape holds: %s\n", shape_holds ? "YES" : "NO");
  report.Check("preemption_tail_shape", shape_holds);
  report.Check("no_tail_without_preemption", measured_np == 0);
  report.Metric("expected_preempted", expected);
  report.Metric("measured_preempted", static_cast<double>(measured));
  return report.Finish();
}
