// Network file system comparison: NFS-style RPC vs CIFS/SMB transactions
// under the same grep workload (paper Figure 2 shows both stacks; §6.4
// profiles CIFS -- this bench runs the direct comparison the
// infrastructure enables).
//
// Expected contrasts, all visible as latency-profile shape:
//  * CIFS/Windows grows Find peaks at buckets 26-30 (delayed-ACK stalls);
//    NFS never does -- each RPC reply is acked by the next call.
//  * NFS pays a lookup storm: one LOOKUP RPC per cold path component, a
//    dedicated ~RTT-latency mode with very high operation counts.
//  * CIFS amortizes metadata via Find batches carrying attributes, so
//    its stat/open profiles are mostly client-local.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/analysis.h"
#include "src/fs/ext2fs.h"
#include "src/net/cifs.h"
#include "src/net/nfs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/workloads.h"

namespace {

struct RunResult {
  osprof::ProfileSet profiles{1};
  double elapsed_s = 0.0;
  std::uint64_t rpcs = 0;
};

template <typename MountT, typename ConfigT>
RunResult RunGrep(ConfigT mount_config) {
  osim::KernelConfig kcfg;
  kcfg.num_cpus = 4;
  kcfg.seed = 55;
  osim::Kernel kernel(kcfg);
  osim::SimDisk disk(&kernel);
  osfs::Ext2SimFs server_fs(&kernel, &disk);
  osworkloads::TreeSpec spec;
  spec.top_dirs = 6;
  spec.subdirs_per_dir = 2;
  spec.depth = 1;
  spec.files_per_dir = 60;
  osworkloads::BuildSourceTree(&server_fs, "/export", spec);

  MountT mount(&kernel, &server_fs, mount_config);
  osprofilers::SimProfiler profiler(&kernel);
  mount.SetProfiler(&profiler);
  osworkloads::GrepStats stats;
  kernel.Spawn("grep", osworkloads::GrepWorkload(&kernel, &mount, "/export",
                                                 0.5, &stats));
  kernel.RunUntilThreadsFinish();
  RunResult r;
  r.profiles = profiler.profiles();
  r.elapsed_s = static_cast<double>(kernel.now()) / osprof::kPaperCpuHz;
  if constexpr (std::is_same_v<MountT, osnet::NfsMount>) {
    r.rpcs = mount.rpcs_sent();
  } else {
    r.rpcs = mount.server_requests();
  }
  return r;
}

int MaxBucket(const osprof::ProfileSet& set, const char* op) {
  const osprof::Profile* p = set.Find(op);
  return p == nullptr ? -1 : p->histogram().LastNonEmpty();
}

}  // namespace

int main() {
  osbench::Header("NFS (RPC) vs CIFS (SMB transactions) under grep");
  osbench::JsonReport report("tab_nfs_vs_cifs");

  osnet::CifsConfig cifs_cfg;
  cifs_cfg.client_os = osnet::ClientOs::kWindows;
  const RunResult cifs = RunGrep<osnet::CifsMount>(cifs_cfg);
  const RunResult nfs = RunGrep<osnet::NfsMount>(osnet::NfsConfig{});
  report.AddOps(cifs.profiles.TotalOperations() +
                nfs.profiles.TotalOperations());
  report.WriteProfileSet(cifs.profiles, "cifs");
  report.WriteProfileSet(nfs.profiles, "nfs");

  osbench::Section("NFS per-RPC profiles");
  for (const char* op : {"lookup", "nfs_readdir", "nfs_read"}) {
    const osprof::Profile* p = nfs.profiles.Find(op);
    if (p != nullptr) {
      osbench::ShowProfile(*p);
    }
  }

  osbench::Section("Head-to-head");
  std::printf("  %-34s %12s %12s\n", "", "CIFS(Win)", "NFS");
  std::printf("  %-34s %12.2f %12.2f\n", "grep elapsed (s)", cifs.elapsed_s,
              nfs.elapsed_s);
  std::printf("  %-34s %12llu %12llu\n", "server requests / RPCs",
              static_cast<unsigned long long>(cifs.rpcs),
              static_cast<unsigned long long>(nfs.rpcs));
  std::printf("  %-34s %12d %12d\n", "max Find/readdir-RPC bucket",
              MaxBucket(cifs.profiles, "findfirst"),
              MaxBucket(nfs.profiles, "nfs_readdir"));
  const osprof::Profile* lookup = nfs.profiles.Find("lookup");
  std::printf("  %-34s %12s %12llu\n", "LOOKUP RPCs (the lookup storm)", "-",
              static_cast<unsigned long long>(
                  lookup == nullptr ? 0 : lookup->total_operations()));

  osbench::Section("Shape checks");
  const bool cifs_stalls = MaxBucket(cifs.profiles, "findfirst") >= 26;
  const bool nfs_no_stalls = MaxBucket(nfs.profiles, "nfs_readdir") < 26;
  std::printf("  CIFS Find ops reach the 200ms buckets:       %s\n",
              cifs_stalls ? "YES (delayed-ACK pathology)" : "no");
  std::printf("  NFS readdir RPCs stay below bucket 26:       %s\n",
              nfs_no_stalls ? "YES (request/reply never stalls)" : "no");
  std::printf("  NFS issues more server round trips overall:  %s\n",
              nfs.rpcs > cifs.rpcs ? "YES (per-component lookups)" : "no");
  report.Check("cifs_find_reaches_stall_buckets", cifs_stalls);
  report.Check("nfs_readdir_never_stalls", nfs_no_stalls);
  report.Check("nfs_more_round_trips", nfs.rpcs > cifs.rpcs);
  report.Metric("cifs_elapsed_s", cifs.elapsed_s);
  report.Metric("nfs_elapsed_s", nfs.elapsed_s);
  report.Metric("cifs_server_requests", static_cast<double>(cifs.rpcs));
  report.Metric("nfs_rpcs", static_cast<double>(nfs.rpcs));
  return report.Finish();
}
