// Page-cache sweep: how the readdir/read peak structure responds to
// cache pressure.
//
// The paper's multi-modal profiles are images of the cache hierarchy
// (Figure 7): peak 2 is the page cache, peak 3 the disk's readahead
// cache, peak 4 the mechanics.  Sweeping the page-cache capacity under a
// two-pass grep moves mass between those peaks in a way the profiles
// make directly visible -- the second pass is all peak-2 with a big
// cache and regresses to peaks 3/4 as the cache shrinks below the
// working set.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/fs/ext2fs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/workloads.h"

namespace {

struct SweepRow {
  std::uint64_t cache_pages;
  double second_pass_s = 0.0;
  double cached_mass = 0.0;  // Read ops in buckets <= 14 (CPU/page cache).
  double io_mass = 0.0;      // Read ops in buckets >= 15 (disk involved).
};

SweepRow RunTwoPassGrep(std::uint64_t cache_pages) {
  osim::KernelConfig kcfg;
  kcfg.num_cpus = 1;
  kcfg.seed = 12;
  osim::Kernel kernel(kcfg);
  osim::SimDisk disk(&kernel);
  osfs::Ext2Config fcfg;
  fcfg.cache_pages = cache_pages;
  osfs::Ext2SimFs fs(&kernel, &disk, fcfg);
  osworkloads::TreeSpec spec;
  spec.top_dirs = 8;
  spec.files_per_dir = 20;
  osworkloads::BuildSourceTree(&fs, "/src", spec);

  // Pass 1: populate the caches (unprofiled).
  osworkloads::GrepStats warm;
  kernel.Spawn("warm",
               osworkloads::GrepWorkload(&kernel, &fs, "/src", 0.5, &warm));
  kernel.RunUntilThreadsFinish();

  // Pass 2: profiled.
  osprofilers::SimProfiler prof(&kernel);
  fs.SetProfiler(&prof);
  const osprof::Cycles start = kernel.now();
  osworkloads::GrepStats stats;
  kernel.Spawn("grep",
               osworkloads::GrepWorkload(&kernel, &fs, "/src", 0.5, &stats));
  kernel.RunUntilThreadsFinish();

  SweepRow row;
  row.cache_pages = cache_pages;
  row.second_pass_s =
      static_cast<double>(kernel.now() - start) / osprof::kPaperCpuHz;
  const osprof::Histogram& h = prof.profiles().Find("read")->histogram();
  std::uint64_t cached = 0;
  std::uint64_t io = 0;
  for (int b = 0; b < h.num_buckets(); ++b) {
    (b <= 14 ? cached : io) += h.bucket(b);
  }
  const double total = static_cast<double>(cached + io);
  row.cached_mass = static_cast<double>(cached) / total;
  row.io_mass = static_cast<double>(io) / total;
  return row;
}

}  // namespace

int main() {
  osbench::Header("Page-cache sweep: peak masses vs cache capacity");
  osbench::JsonReport report("tab_cache_sweep");
  std::printf("two-pass grep; pass 2 profiled; working set ~10k pages.\n\n");
  std::printf("  %-12s %-14s %-14s %-12s\n", "cache pages", "pass-2 elapsed",
              "cached mass", "I/O mass");
  double first_cached = -1.0;
  double last_cached = -1.0;
  for (const std::uint64_t pages : {256u, 2'048u, 8'192u, 12'288u, 16'384u, 65'536u}) {
    const SweepRow row = RunTwoPassGrep(pages);
    if (first_cached < 0) {
      first_cached = row.cached_mass;
    }
    last_cached = row.cached_mass;
    std::printf("  %-12llu %-14.3f %-14.3f %-12.3f\n",
                static_cast<unsigned long long>(row.cache_pages),
                row.second_pass_s, row.cached_mass, row.io_mass);
    report.Metric("cached_mass_" + std::to_string(pages) + "_pages",
                  row.cached_mass);
  }
  std::printf("\n  expected shape: below the working set the second pass\n"
              "  scan-thrashes LRU (pages evicted just before re-use, so\n"
              "  extra capacity buys nothing -- the flat plateau); once the\n"
              "  working set fits, the I/O peaks drain into the page-cache\n"
              "  peak and elapsed time collapses.  Shape holds: %s\n",
              last_cached > first_cached ? "YES" : "NO");
  report.Check("cache_drains_io_peaks", last_cached > first_cached);
  report.Metric("cached_mass_smallest_cache", first_cached);
  report.Metric("cached_mass_largest_cache", last_cached);
  return report.Finish();
}
