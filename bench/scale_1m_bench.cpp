// Million-task scale bench: the scale_1m scenario under a hard wall-clock
// budget and peak-RSS ceiling.
//
// scale_1m drives >= 1,000,000 open-loop requests across 64 simulated
// CPUs (src/workloads/traffic.h): sessions arrive on a ramp / plateau /
// ramp-down curve, issue a short heavy-tailed request loop against Ext2,
// and die; the kernel reaps their frames, and per-CPU profile shards
// absorb the record traffic.
//
// Unlike the figure benches -- reproductions whose checks are advisory --
// this bench is a CI gate: it exits nonzero when any check fails, so the
// `scale` job fails on a scale regression.  The budget and ceiling are
// overridable for slower machines:
//
//   OSPROF_SCALE_WALL_BUDGET_S   wall-clock budget in seconds (default 120)
//   OSPROF_SCALE_RSS_CEILING_MB  peak-RSS ceiling in MiB     (default 2048)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

#include "bench/bench_util.h"
#include "src/core/layered.h"
#include "src/runner/runner.h"
#include "src/runner/scenario.h"

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr || value[0] == '\0' ? fallback : std::atof(value);
}

}  // namespace

int main(int argc, char** argv) {
  osbench::Header("scale_1m: million-request open-loop traffic on 64 CPUs");
  osbench::JsonReport report("scale_1m");
  const osrunner::RunOptions options = osbench::ParseRunCli(argc, argv);
  const double wall_budget_s = EnvDouble("OSPROF_SCALE_WALL_BUDGET_S", 120.0);
  const double rss_ceiling_mb =
      EnvDouble("OSPROF_SCALE_RSS_CEILING_MB", 2048.0);

  const osrunner::Scenario* scenario =
      osrunner::BuiltinScenarios().Find("scale_1m");
  const auto* traffic =
      std::get_if<osrunner::TrafficSpec>(&scenario->workload);
  const osrunner::RunResult result = osrunner::RunScenario(*scenario, options);
  report.RecordRun(result);

  const std::uint64_t requests = result.TotalCounter("requests");
  const std::uint64_t sessions = result.TotalCounter("sessions");
  const std::uint64_t planned =
      osworkloads::PlannedRequests(traffic->config) *
      static_cast<std::uint64_t>(result.options.trials);
  const double peak_rss_mb =
      static_cast<double>(osbench::PeakRssBytes()) / (1024.0 * 1024.0);
  const double requests_per_sec =
      result.wall_seconds > 0.0
          ? static_cast<double>(requests) / result.wall_seconds
          : 0.0;

  std::printf(
      "%llu requests over %llu sessions in %.2f s wall (%.0f req/s), "
      "peak RSS %.0f MiB\n",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(sessions), result.wall_seconds,
      requests_per_sec, peak_rss_mb);
  std::printf(
      "kernel: %llu threads spawned, %llu reaped, run-queue peak %llu, "
      "sim heap %.1f MiB; %llu shard flushes, peak %llu live sessions\n",
      static_cast<unsigned long long>(result.TotalCounter("spawned_threads")),
      static_cast<unsigned long long>(result.TotalCounter("reaped_threads")),
      static_cast<unsigned long long>(result.TotalCounter("run_queue_peak")),
      static_cast<double>(result.TotalCounter("sim_heap_bytes")) /
          (1024.0 * 1024.0),
      static_cast<unsigned long long>(result.TotalCounter("shard_flushes")),
      static_cast<unsigned long long>(
          result.TotalCounter("peak_live_sessions")));
  osbench::ShowRunSummary(result);

  // The merged profile and its layered decomposition must come out of the
  // sharded profiler intact: serialized like any gate scenario's.
  const osrunner::LayerResult& fs = result.layers.at("fs");
  const std::string prof_path = report.WriteProfileSet(fs.merged, "fs");
  bool layers_ok = false;
  {
    const char* dir = std::getenv("OSPROF_BENCH_JSON_DIR");
    std::string layers_path =
        (dir == nullptr || dir[0] == '\0') ? "" : std::string(dir) + "/";
    layers_path += "BENCH_scale_1m.layers";
    std::map<std::string, osprof::LayeredProfileSet> layered;
    if (!fs.layered.empty()) {
      layered.emplace("fs", fs.layered);
    }
    std::ofstream out(layers_path);
    if (out && !layered.empty()) {
      osprof::SerializeLayers(layered, out);
      layers_ok = out.good();
      std::printf("[layered decomposition: %s]\n", layers_path.c_str());
    }
  }

  osbench::Section("Dispersion (merged fs layer)");
  std::printf("%s",
              osrunner::RenderDispersion(fs, result.options.trials).c_str());

  osbench::Section("Checks");
  bool all_ok = true;
  const auto check = [&](const char* name, bool pass) {
    all_ok &= report.Check(name, pass);
    std::printf("  %-34s %s\n", name, pass ? "PASS" : "FAIL");
  };
  check("requests_at_least_1m", requests >= 1'000'000u);
  check("requests_match_plan", requests == planned);
  check("all_sessions_finished",
        sessions == result.TotalCounter("spawned_threads") -
                        static_cast<std::uint64_t>(result.options.trials));
  check("cpus_at_least_64", scenario->kernel.num_cpus >= 64);
  check("wall_within_budget", result.wall_seconds <= wall_budget_s);
  check("peak_rss_within_ceiling", peak_rss_mb <= rss_ceiling_mb);
  check("profile_set_written", !prof_path.empty());
  check("layered_decomposition_written", layers_ok);
  check("reaping_engaged", result.TotalCounter("reaped_threads") >= sessions);

  report.Metric("requests", static_cast<double>(requests));
  report.Metric("requests_per_sec", requests_per_sec);
  report.Metric("wall_budget_s", wall_budget_s);
  report.Metric("peak_rss_mb", peak_rss_mb);
  report.Metric("rss_ceiling_mb", rss_ceiling_mb);
  report.Metric("peak_live_sessions",
                static_cast<double>(result.TotalCounter("peak_live_sessions")));
  report.Metric("run_queue_peak",
                static_cast<double>(result.TotalCounter("run_queue_peak")));
  report.Metric("sim_heap_mb",
                static_cast<double>(result.TotalCounter("sim_heap_bytes")) /
                    (1024.0 * 1024.0));
  report.Metric("shard_flushes",
                static_cast<double>(result.TotalCounter("shard_flushes")));
  report.Metric("dispersion_ops", static_cast<double>(fs.dispersion.size()));

  const int finish = report.Finish();
  if (finish != 0) {
    return finish;
  }
  return all_ok ? 0 : 1;
}
