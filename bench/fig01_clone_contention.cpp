// Figure 1: a profile of clone operations concurrently issued by four
// processes on a dual-CPU SMP system.  The left peak is the lock-free
// path; the right peak is contention on the process-table lock.  With a
// single process the right peak disappears (the differential-analysis
// observation of §3.1).
//
// Runs on the multi-trial runner: pass --trials=N --jobs=J to merge N
// independently-seeded runs (the peak structure must survive merging).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/analysis.h"
#include "src/runner/runner.h"
#include "src/runner/scenario.h"

namespace {

osrunner::RunResult RunClone(const char* scenario_name,
                             const osrunner::RunOptions& options) {
  const osrunner::Scenario* scenario =
      osrunner::BuiltinScenarios().Find(scenario_name);
  const osrunner::RunResult result = osrunner::RunScenario(*scenario, options);
  std::printf("  [%s] contended acquisitions: %llu of %llu\n", scenario_name,
              static_cast<unsigned long long>(
                  result.TotalCounter("contended_acquisitions")),
              static_cast<unsigned long long>(
                  result.TotalCounter("acquisitions")));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  osbench::Header(
      "Figure 1: FreeBSD-style clone() profile, 4 processes on 2 CPUs");
  osbench::JsonReport report("fig01_clone_contention");
  const osrunner::RunOptions options = osbench::ParseRunCli(argc, argv);

  const osrunner::RunResult four = RunClone("fig01", options);
  const osprof::ProfileSet& four_set = four.layers.at("user").merged;
  osbench::Section("CLONE, 4 concurrent processes");
  osbench::ShowProfile(*four_set.Find("clone"));
  osbench::ShowRunSummary(four);
  osbench::ShowDispersion(four, "user");

  const osrunner::RunResult one = RunClone("fig01_single", options);
  const osprof::ProfileSet& one_set = one.layers.at("user").merged;
  osbench::Section("CLONE, 1 process (differential analysis control)");
  osbench::ShowProfile(*one_set.Find("clone"));
  report.RecordRun(four);
  report.RecordRun(one);
  report.WriteProfileSet(four_set, "user");

  const auto peaks4 = osprof::FindPeaks(four_set.Find("clone")->histogram());
  const auto peaks1 = osprof::FindPeaks(one_set.Find("clone")->histogram());
  osbench::Section("Paper-vs-measured checks");
  std::printf("  1 process  -> %zu peak(s)   (paper: 1)\n", peaks1.size());
  std::printf("  4 processes -> %zu peak(s)  (paper: 2, right = contention)\n",
              peaks4.size());
  report.Check("single_process_one_peak", peaks1.size() == 1);
  report.Check("four_processes_two_peaks", peaks4.size() >= 2);
  report.Metric("peaks_1proc", static_cast<double>(peaks1.size()));
  report.Metric("peaks_4proc", static_cast<double>(peaks4.size()));
  if (peaks4.size() >= 2) {
    // §3.1's derivation: the fraction of clone executed under the lock is
    // estimated from the right/left element ratio.
    const double ratio = static_cast<double>(peaks4.back().count) /
                         static_cast<double>(peaks4.front().count);
    std::printf("  contended/lock-free ratio: %.3f\n", ratio);
    report.Metric("contended_lockfree_ratio", ratio);
    std::printf("  lock-free mean: %s, contended mean: %s\n",
                osprof::FormatSeconds(peaks4.front().mean_latency /
                                      osprof::kPaperCpuHz)
                    .c_str(),
                osprof::FormatSeconds(peaks4.back().mean_latency /
                                      osprof::kPaperCpuHz)
                    .c_str());
  }
  return report.Finish();
}
