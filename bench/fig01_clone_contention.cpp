// Figure 1: a profile of clone operations concurrently issued by four
// processes on a dual-CPU SMP system.  The left peak is the lock-free
// path; the right peak is contention on the process-table lock.  With a
// single process the right peak disappears (the differential-analysis
// observation of §3.1).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/analysis.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/kernel.h"
#include "src/sim/sync.h"
#include "src/workloads/workloads.h"

namespace {

osprof::ProfileSet RunClone(int processes, int iterations) {
  osim::KernelConfig cfg;
  cfg.num_cpus = 2;  // The paper's dual-CPU SMP machine.
  cfg.seed = 42;
  osim::Kernel kernel(cfg);
  osim::SimSemaphore process_table_lock(&kernel, 1, "proc_table");
  osprofilers::SimProfiler profiler(&kernel);
  for (int p = 0; p < processes; ++p) {
    kernel.Spawn("proc" + std::to_string(p),
                 osworkloads::CloneWorkload(&kernel, &process_table_lock,
                                            &profiler, iterations,
                                            /*lock_free_cpu=*/4'000,
                                            /*locked_cpu=*/2'000,
                                            /*user_think_cpu=*/60'000));
  }
  kernel.RunUntilThreadsFinish();
  std::printf("  [%d process(es)] contended acquisitions: %llu of %llu\n",
              processes,
              static_cast<unsigned long long>(
                  process_table_lock.contended_acquisitions()),
              static_cast<unsigned long long>(process_table_lock.acquisitions()));
  return profiler.profiles();
}

}  // namespace

int main() {
  osbench::Header(
      "Figure 1: FreeBSD-style clone() profile, 4 processes on 2 CPUs");

  const osprof::ProfileSet four = RunClone(4, 4'000);
  osbench::Section("CLONE, 4 concurrent processes");
  osbench::ShowProfile(*four.Find("clone"));

  const osprof::ProfileSet one = RunClone(1, 4'000);
  osbench::Section("CLONE, 1 process (differential analysis control)");
  osbench::ShowProfile(*one.Find("clone"));

  const auto peaks4 = osprof::FindPeaks(four.Find("clone")->histogram());
  const auto peaks1 = osprof::FindPeaks(one.Find("clone")->histogram());
  osbench::Section("Paper-vs-measured checks");
  std::printf("  1 process  -> %zu peak(s)   (paper: 1)\n", peaks1.size());
  std::printf("  4 processes -> %zu peak(s)  (paper: 2, right = contention)\n",
              peaks4.size());
  if (peaks4.size() >= 2) {
    // §3.1's derivation: the fraction of clone executed under the lock is
    // estimated from the right/left element ratio.
    const double ratio = static_cast<double>(peaks4.back().count) /
                         static_cast<double>(peaks4.front().count);
    std::printf("  contended/lock-free ratio: %.3f\n", ratio);
    std::printf("  lock-free mean: %s, contended mean: %s\n",
                osprof::FormatSeconds(peaks4.front().mean_latency /
                                      osprof::kPaperCpuHz)
                    .c_str(),
                osprof::FormatSeconds(peaks4.back().mean_latency /
                                      osprof::kPaperCpuHz)
                    .c_str());
  }
  return 0;
}
