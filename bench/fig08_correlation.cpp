// Figure 8: direct profile and value correlation (§3.1, §6.2).
//
// After Figure 7 reveals the readdir peaks, the profiling macros are
// re-armed: instead of only bucketing latency, each readdir records
// readdir_past_EOF * 1024 into a separate histogram per latency peak.
// The first peak's value histogram sits entirely at bucket 10 (value
// 1024: past EOF) and every other peak's sits at bucket 0 -- proving the
// first peak is the past-EOF fast path.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/correlate.h"
#include "src/fs/ext2fs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/workloads.h"

namespace {

osworkloads::BuiltTree BuildTree(osfs::Ext2SimFs* fs) {
  osworkloads::TreeSpec spec;
  spec.top_dirs = 10;
  spec.subdirs_per_dir = 3;
  spec.depth = 2;
  spec.files_per_dir = 12;
  return osworkloads::BuildSourceTree(fs, "/usr/src/linux", spec);
}

}  // namespace

int main() {
  osbench::Header("Figure 8: correlating readdir_past_EOF*1024 with the peaks");
  osbench::JsonReport report("fig08_correlation");

  // Pass 1: capture the plain latency profile to locate the peaks.
  std::vector<osprof::Peak> peaks;
  {
    osim::KernelConfig kcfg;
    kcfg.seed = 99;
    osim::Kernel kernel(kcfg);
    osim::SimDisk disk(&kernel);
    osfs::Ext2SimFs fs(&kernel, &disk);
    BuildTree(&fs);
    osprofilers::SimProfiler profiler(&kernel);
    fs.SetProfiler(&profiler);
    osworkloads::GrepStats stats;
    kernel.Spawn("grep", osworkloads::GrepWorkload(&kernel, &fs,
                                                   "/usr/src/linux", 0.5,
                                                   &stats));
    kernel.RunUntilThreadsFinish();
    peaks = osprof::FindPeaks(profiler.profiles().Find("readdir")->histogram());
    std::printf("pass 1 (latency profile): readdir %s\n",
                osprof::DescribePeaks(peaks).c_str());
  }

  // Pass 2: same workload, profiler re-armed with a ValueCorrelator.
  osprof::ValueCorrelator correlator("readdir_past_EOF*1024", peaks);
  {
    osim::KernelConfig kcfg;
    kcfg.seed = 99;
    osim::Kernel kernel(kcfg);
    osim::SimDisk disk(&kernel);
    osfs::Ext2SimFs fs(&kernel, &disk);
    BuildTree(&fs);
    osprofilers::SimProfiler profiler(&kernel);
    profiler.AttachCorrelator("readdir", &correlator);
    fs.SetProfiler(&profiler);
    osworkloads::GrepStats stats;
    kernel.Spawn("grep", osworkloads::GrepWorkload(&kernel, &fs,
                                                   "/usr/src/linux", 0.5,
                                                   &stats));
    kernel.RunUntilThreadsFinish();
  }

  osbench::Section("Value histograms per latency peak");
  for (int i = 0; i < correlator.num_peaks(); ++i) {
    const osprof::Histogram& values = correlator.peak_values(i);
    std::printf("  latency peak %d [buckets %d-%d]: %llu ops, value buckets:",
                i + 1, correlator.peak(i).first_bucket,
                correlator.peak(i).last_bucket,
                static_cast<unsigned long long>(values.TotalOperations()));
    for (int b = 0; b < values.num_buckets(); ++b) {
      if (values.bucket(b) != 0) {
        std::printf(" [%d]=%llu", b,
                    static_cast<unsigned long long>(values.bucket(b)));
      }
    }
    std::printf("\n");
  }

  osbench::Section("Paper-vs-measured checks");
  const osprof::Histogram& first = correlator.peak_values(0);
  const osprof::Histogram others = correlator.OtherPeaksValues(0);
  const bool first_all_eof =
      first.bucket(10) == first.TotalOperations() && !first.empty();
  const bool others_none_eof = others.bucket(10) == 0;
  std::printf("  first peak: all values at bucket 10 (1024 = past EOF): %s\n",
              first_all_eof ? "YES" : "NO");
  std::printf("  other peaks: no past-EOF values:                       %s\n",
              others_none_eof ? "YES" : "NO");
  std::printf("  hypothesis 'first peak == past-EOF reads' %s (paper: proved)\n",
              first_all_eof && others_none_eof ? "PROVED" : "NOT proved");
  report.Check("first_peak_all_past_eof", first_all_eof);
  report.Check("other_peaks_no_past_eof", others_none_eof);
  report.AddOps(first.TotalOperations() + others.TotalOperations());
  report.Metric("latency_peaks", static_cast<double>(peaks.size()));
  return report.Finish();
}
