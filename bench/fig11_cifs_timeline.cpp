// Figure 11: packet timelines of a FindFirst transaction -- Windows
// client vs Linux client against a Windows server -- plus the paper's
// registry-key experiment: disabling delayed ACKs improves grep elapsed
// time by ~20%.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fs/ext2fs.h"
#include "src/net/cifs.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/sim/task.h"
#include "src/workloads/workloads.h"

namespace {

osim::Task<void> EnumerateOnce(osfs::Vfs* vfs, std::string path) {
  const int fd = co_await vfs->Open(path, false);
  while (true) {
    const osfs::DirentBatch batch = co_await vfs->Readdir(fd);
    if (batch.names.empty()) {
      break;
    }
  }
  co_await vfs->Close(fd);
}

// Runs one directory enumeration and prints the packet trace.
void TraceOneTransaction(osnet::ClientOs client_os, const char* title) {
  osim::KernelConfig kcfg;
  kcfg.num_cpus = 4;
  kcfg.seed = 11;
  osim::Kernel kernel(kcfg);
  osim::SimDisk disk(&kernel);
  osfs::Ext2SimFs server_fs(&kernel, &disk);
  server_fs.AddDir("/export");
  for (int i = 0; i < 100; ++i) {
    server_fs.AddFile("/export/f" + std::to_string(i), 2'000);
  }
  osnet::CifsConfig ccfg;
  ccfg.client_os = client_os;
  osnet::CifsMount mount(&kernel, &server_fs, ccfg);
  kernel.Spawn("client", EnumerateOnce(&mount, "/export"));
  kernel.RunUntilThreadsFinish();

  osbench::Section(title);
  std::printf("%s", mount.trace().Render(osprof::kPaperCpuHz).c_str());
  std::printf("  total elapsed: %s\n",
              osprof::FormatSeconds(static_cast<double>(kernel.now()) /
                                    osprof::kPaperCpuHz)
                  .c_str());
}

double GrepElapsed(bool delayed_ack) {
  osim::KernelConfig kcfg;
  kcfg.num_cpus = 4;
  kcfg.seed = 13;
  osim::Kernel kernel(kcfg);
  osim::SimDisk disk(&kernel);
  osfs::Ext2SimFs server_fs(&kernel, &disk);
  osworkloads::TreeSpec spec;
  spec.top_dirs = 6;
  spec.subdirs_per_dir = 2;
  spec.depth = 1;
  spec.files_per_dir = 100;
  spec.median_file_bytes = 30'000;
  osworkloads::BuildSourceTree(&server_fs, "/export", spec);
  osnet::CifsConfig ccfg;
  ccfg.client_os = osnet::ClientOs::kWindows;
  ccfg.client_delayed_ack = delayed_ack;
  osnet::CifsMount mount(&kernel, &server_fs, ccfg);
  osworkloads::GrepStats stats;
  kernel.Spawn("grep", osworkloads::GrepWorkload(&kernel, &mount, "/export",
                                                 0.5, &stats));
  kernel.RunUntilThreadsFinish();
  return static_cast<double>(kernel.now()) / osprof::kPaperCpuHz;
}

}  // namespace

int main() {
  osbench::Header("Figure 11: FindFirst packet timelines (§6.4)");
  osbench::JsonReport report("fig11_cifs_timeline");

  TraceOneTransaction(osnet::ClientOs::kWindows,
                      "Windows client <-> Windows server (note the 200ms gap)");
  TraceOneTransaction(osnet::ClientOs::kLinux,
                      "Linux client <-> Windows server (FIND_NEXT carries the ACK)");

  osbench::Section("Registry-key experiment: delayed ACKs off");
  const double with_delay = GrepElapsed(/*delayed_ack=*/true);
  const double without_delay = GrepElapsed(/*delayed_ack=*/false);
  const double improvement = 100.0 * (1.0 - without_delay / with_delay);
  std::printf("  grep elapsed, delayed ACKs on:  %.2fs\n", with_delay);
  std::printf("  grep elapsed, delayed ACKs off: %.2fs\n", without_delay);
  std::printf("  improvement: %.1f%%  (paper: ~20%%)\n", improvement);
  report.Check("registry_key_improves_elapsed", improvement > 0.0);
  report.Check("improvement_in_paper_ballpark",
               improvement > 5.0 && improvement < 60.0);
  report.Metric("elapsed_delayed_ack_s", with_delay);
  report.Metric("elapsed_no_delayed_ack_s", without_delay);
  report.Metric("improvement_pct", improvement);
  return report.Finish();
}
