// §3.3, Equation 3: the forced-preemption probability model.  Reproduces
// the paper's headline number (Y=0.01, tperiod=2^10, tcpu=tperiod/2,
// Q=2^26 -> ~1e-280), sweeps the parameter space, and validates the model
// against simulated runs across quantum sizes.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/preemption.h"
#include "src/fs/ext2fs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/workloads.h"

namespace {

struct SimResult {
  double expected = 0.0;
  std::uint64_t measured = 0;
};

osprof::Histogram RunReads(osprof::Cycles quantum, std::uint64_t requests,
                           bool preemptive) {
  osim::KernelConfig cfg;
  cfg.num_cpus = 1;
  cfg.quantum = quantum;
  cfg.kernel_preemption = preemptive;
  cfg.timer_tick_period = 0;  // Isolate pure preemption effects.
  osim::Kernel kernel(cfg);
  osim::SimDisk disk(&kernel);
  osfs::Ext2Config fs_cfg;
  fs_cfg.cpu_noise_sigma = 0.1;
  osfs::Ext2SimFs fs(&kernel, &disk, fs_cfg);
  fs.AddFile("/probe", 4096);
  osprofilers::SimProfiler profiler(&kernel);
  fs.SetProfiler(&profiler);
  for (int p = 0; p < 2; ++p) {
    kernel.Spawn("p" + std::to_string(p),
                 osworkloads::ZeroByteReadWorkload(&kernel, &fs, "/probe",
                                                   requests, 120));
  }
  kernel.RunUntilThreadsFinish();
  return profiler.profiles().Find("read")->histogram();
}

SimResult ValidateAgainstSim(osprof::Cycles quantum, std::uint64_t requests) {
  // The Eq. 3 expectation needs the pure tcpu distribution: compute it
  // from a non-preemptive twin run (at the paper's scale the preempted
  // tail is negligible in the sum; at ours it is not).
  const osprof::Histogram baseline = RunReads(quantum, requests, false);
  const osprof::Histogram h = RunReads(quantum, requests, true);
  SimResult r;
  r.expected = osprof::ExpectedPreemptedRequests(baseline,
                                                 static_cast<double>(quantum));
  const int q_bucket = osprof::PreemptionBucket(static_cast<double>(quantum));
  for (int b = q_bucket - 1; b < h.num_buckets(); ++b) {
    r.measured += h.bucket(b);
  }
  return r;
}

}  // namespace

int main() {
  osbench::Header("Equation 3: forced-preemption probability model (§3.3)");
  osbench::JsonReport report("tab_preemption_model");

  osbench::Section("The paper's headline configuration");
  {
    osprof::PreemptionParams p;
    p.tperiod = std::exp2(10);
    p.tcpu = std::exp2(9);
    p.yield_probability = 0.01;
    p.quantum = std::exp2(26);
    const double pr = osprof::ForcedPreemptionProbability(p);
    std::printf("  Y=0.01, tperiod=2^10, tcpu=2^9, Q=2^26\n");
    std::printf("  Pr(fp) = %.3g  (paper: ~2.3e-280)\n", pr);
    report.Check("headline_probability_astronomically_small",
                 pr > 0.0 && pr < 1e-200);
    report.Metric("headline_pr_fp_log10", std::log10(pr));
  }

  osbench::Section("Sweep: Pr(fp) vs yield probability Y (tperiod=2^10, Q=2^26)");
  std::printf("  %-8s %-14s\n", "Y", "Pr(fp)");
  for (double y : {0.0, 1e-4, 1e-3, 0.01, 0.05, 0.1}) {
    osprof::PreemptionParams p;
    p.tperiod = std::exp2(10);
    p.tcpu = std::exp2(9);
    p.yield_probability = y;
    p.quantum = std::exp2(26);
    std::printf("  %-8.4f %-14.4g\n", y,
                osprof::ForcedPreemptionProbability(p));
  }

  osbench::Section("Sweep: Pr(fp) vs tperiod (Y=0.01, Q=2^26)");
  std::printf("  %-12s %-14s %-14s\n", "tperiod", "Q*Y/tperiod", "Pr(fp)");
  for (int log2_tp = 8; log2_tp <= 24; log2_tp += 4) {
    osprof::PreemptionParams p;
    p.tperiod = std::exp2(log2_tp);
    p.tcpu = p.tperiod / 2;
    p.yield_probability = 0.01;
    p.quantum = std::exp2(26);
    std::printf("  2^%-10d %-14.3g %-14.4g\n", log2_tp,
                p.quantum * p.yield_probability / p.tperiod,
                osprof::ForcedPreemptionProbability(p));
  }

  osbench::Section("Model vs simulation (Y=0, 2 processes, varying Q)");
  std::printf("  %-8s %-12s %-12s %-8s\n", "Q", "expected", "measured",
              "ratio");
  bool all_within_factor = true;
  for (int log2_q : {18, 19, 20, 21}) {
    const SimResult r = ValidateAgainstSim(osprof::Cycles{1} << log2_q,
                                           120'000);
    const double ratio =
        r.expected > 0 ? static_cast<double>(r.measured) / r.expected : 0.0;
    all_within_factor = all_within_factor && ratio > 0.2 && ratio < 5.0;
    report.Metric("sim_ratio_q2e" + std::to_string(log2_q), ratio);
    std::printf("  2^%-6d %-12.1f %-12llu %-8.2f\n", log2_q, r.expected,
                static_cast<unsigned long long>(r.measured), ratio);
  }
  std::printf("\n  paper shape: measured within a small factor of the Eq. 3\n"
              "  expectation, scaling ~linearly with 1/Q (they saw 278 vs\n"
              "  388 +- 33%%).\n");
  report.Check("measured_within_small_factor_of_eq3", all_within_factor);
  return report.Finish();
}
