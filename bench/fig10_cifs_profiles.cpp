// Figure 10: FindFirst, FindNext and read profiles on a Windows client
// over CIFS (§6.4), with the Linux-over-SMB client as the layered-
// profiling comparison.
//
// The Windows client's Find operations show peaks in buckets 26-30 (the
// 200ms delayed-ACK stalls); the Linux client has none.  Reads split at
// the local/remote boundary (~168us -> bucket 18).  The automated
// analyzer picks the interesting operations out of the full set, as the
// paper reports (6 of 51 profiles selected by total latency).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/analysis.h"
#include "src/fs/ext2fs.h"
#include "src/net/cifs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/workloads.h"

namespace {

struct RunResult {
  osprof::ProfileSet profiles{1};
  double elapsed_s = 0.0;
  std::uint64_t stalls = 0;
};

RunResult RunGrepOverCifs(osnet::ClientOs client_os, bool delayed_ack) {
  osim::KernelConfig kcfg;
  kcfg.num_cpus = 4;  // Client and server machines.
  kcfg.seed = 77;
  osim::Kernel kernel(kcfg);
  osim::SimDisk disk(&kernel);
  osfs::Ext2SimFs server_fs(&kernel, &disk);
  osworkloads::TreeSpec spec;
  spec.top_dirs = 6;
  spec.subdirs_per_dir = 2;
  spec.depth = 1;
  spec.files_per_dir = 100;
  spec.median_file_bytes = 30'000;
  osworkloads::BuildSourceTree(&server_fs, "/export", spec);

  osnet::CifsConfig ccfg;
  ccfg.client_os = client_os;
  ccfg.client_delayed_ack = delayed_ack;
  osnet::CifsMount mount(&kernel, &server_fs, ccfg);
  osprofilers::SimProfiler profiler(&kernel);
  mount.SetProfiler(&profiler);

  osworkloads::GrepStats stats;
  const osprof::Cycles start = kernel.now();
  kernel.Spawn("grep", osworkloads::GrepWorkload(&kernel, &mount, "/export",
                                                 0.5, &stats));
  kernel.RunUntilThreadsFinish();
  RunResult r;
  r.profiles = profiler.profiles();
  r.elapsed_s =
      static_cast<double>(kernel.now() - start) / osprof::kPaperCpuHz;
  r.stalls = mount.client_ack_policy().delayed_acks_fired();
  return r;
}

}  // namespace

int main() {
  osbench::Header("Figure 10: CIFS client profiles under grep (§6.4)");
  osbench::JsonReport report("fig10_cifs_profiles");

  const RunResult windows =
      RunGrepOverCifs(osnet::ClientOs::kWindows, /*delayed_ack=*/true);
  const RunResult linux =
      RunGrepOverCifs(osnet::ClientOs::kLinux, /*delayed_ack=*/true);
  report.AddOps(windows.profiles.TotalOperations() +
                linux.profiles.TotalOperations());
  report.WriteProfileSet(windows.profiles, "windows");
  report.WriteProfileSet(linux.profiles, "linux");

  osbench::Section("Windows client: FIND_FIRST / FIND_NEXT / READ");
  for (const char* op : {"findfirst", "findnext", "read"}) {
    const osprof::Profile* p = windows.profiles.Find(op);
    if (p != nullptr) {
      osbench::ShowProfile(*p);
    }
  }

  osbench::Section("Linux client (layered comparison): FIND ops");
  for (const char* op : {"findfirst", "findnext"}) {
    const osprof::Profile* p = linux.profiles.Find(op);
    if (p != nullptr) {
      osbench::ShowProfile(*p);
    }
  }

  osbench::Section("Automated analysis: Windows vs Linux client profile sets");
  const osprof::AnalysisReport report_analysis =
      osprof::CompareProfileSets(windows.profiles, linux.profiles);
  std::printf("%s", report_analysis.Summary().c_str());

  osbench::Section("Paper-vs-measured checks");
  const osprof::Histogram& ff = windows.profiles.Find("findfirst")->histogram();
  std::uint64_t stall_peak = 0;
  for (int b = 26; b <= 30; ++b) {
    stall_peak += ff.bucket(b);
  }
  std::printf("  Windows FindFirst ops in buckets 26-30: %llu of %llu "
              "(paper: the dominant Find peaks live there)\n",
              static_cast<unsigned long long>(stall_peak),
              static_cast<unsigned long long>(ff.TotalOperations()));
  const osprof::Profile* lff = linux.profiles.Find("findfirst");
  std::printf("  Linux FindFirst max bucket: %d (paper: no 26-30 peaks)\n",
              lff->histogram().LastNonEmpty());

  // The local/remote boundary for reads.
  const osprof::Histogram& rd = windows.profiles.Find("read")->histogram();
  std::uint64_t local = 0;
  std::uint64_t remote = 0;
  for (int b = 0; b < rd.num_buckets(); ++b) {
    (b < 18 ? local : remote) += rd.bucket(b);
  }
  std::printf("  reads local (<168us, bucket <18): %llu; via server: %llu "
              "(paper: boundary at bucket 18)\n",
              static_cast<unsigned long long>(local),
              static_cast<unsigned long long>(remote));
  std::printf("  Windows 200ms stalls: %llu; Linux: %llu (paper: only the "
              "Windows client stalls)\n",
              static_cast<unsigned long long>(windows.stalls),
              static_cast<unsigned long long>(linux.stalls));
  std::printf("  elapsed: Windows %.2fs vs Linux %.2fs\n", windows.elapsed_s,
              linux.elapsed_s);
  report.Check("windows_find_stall_peak", stall_peak > 0);
  report.Check("linux_no_stall_peak", lff->histogram().LastNonEmpty() < 26);
  report.Check("only_windows_client_stalls",
               windows.stalls > 0 && linux.stalls == 0);
  report.Metric("windows_elapsed_s", windows.elapsed_s);
  report.Metric("linux_elapsed_s", linux.elapsed_s);
  report.Metric("windows_delayed_acks", static_cast<double>(windows.stalls));
  return report.Finish();
}
