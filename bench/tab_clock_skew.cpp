// §3.4 "Clock Skew": per-CPU TSC offsets and their effect on profiles.
//
// A request that starts on one CPU and finishes on another (after a
// migration) observes the counter difference.  The paper: logarithmic
// filtering makes profiles insensitive to skews smaller than the
// scheduling time; machines show ~20ns offsets after power-up, and Linux
// software synchronization achieves ~130ns.  This bench profiles the
// same migrating workload under zero, realistic (~20ns/130ns) and
// pathological skew and rates the distortion with EMD.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/compare.h"
#include "src/fs/ext2fs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/workloads.h"

namespace {

// Three CPU-bound processes on two CPUs with a small quantum: constant
// migrations, so probe start/end regularly land on different CPUs.
osprof::Histogram RunWithSkew(std::int64_t skew_cycles) {
  osim::KernelConfig kcfg;
  kcfg.num_cpus = 2;
  kcfg.quantum = 10'000;  // Aggressive rescheduling: frequent migrations.
  kcfg.tsc_skew = {0, skew_cycles};
  kcfg.seed = 21;
  osim::Kernel kernel(kcfg);
  osim::SimDisk disk(&kernel);
  osfs::Ext2Config fcfg;
  fcfg.cpu_noise_sigma = 0.15;
  osfs::Ext2SimFs fs(&kernel, &disk, fcfg);
  fs.AddFile("/probe", 4096);
  osprofilers::SimProfiler profiler(&kernel);
  fs.SetProfiler(&profiler);
  for (int p = 0; p < 3; ++p) {
    kernel.Spawn("p" + std::to_string(p),
                 osworkloads::ZeroByteReadWorkload(&kernel, &fs, "/probe",
                                                   60'000, 600));
  }
  kernel.RunUntilThreadsFinish();
  return profiler.profiles().Find("read")->histogram();
}

}  // namespace

int main() {
  osbench::Header("§3.4: per-CPU TSC skew and profile sensitivity");
  osbench::JsonReport report("tab_clock_skew");

  const osprof::Histogram baseline = RunWithSkew(0);
  report.AddOps(baseline.TotalOperations());
  struct Case {
    const char* name;
    std::int64_t cycles;
  };
  const Case cases[] = {
      {"power-up offset (~20ns)", 34},
      {"Linux boot sync (~130ns)", 221},
      {"pathological (~0.5ms)", 850'000},
  };

  std::printf("  %-28s %10s %12s %s\n", "skew", "cycles", "EMD vs 0",
              "verdict");
  std::printf("  %-28s %10d %12.4f %s\n", "none (baseline)", 0, 0.0, "-");
  for (const Case& c : cases) {
    const osprof::Histogram skewed = RunWithSkew(c.cycles);
    const double emd = osprof::EarthMoversDistance(baseline, skewed);
    const bool insensitive = emd < 0.05;
    std::printf("  %-28s %10lld %12.4f %s\n", c.name,
                static_cast<long long>(c.cycles), emd,
                insensitive ? "indistinguishable" : "DISTORTED");
    // Realistic skews must vanish; the pathological one must not.
    report.Check(c.cycles < 1'000
                     ? std::string("insensitive_to_") +
                           std::to_string(c.cycles) + "_cycles"
                     : "pathological_skew_visible",
                 c.cycles < 1'000 ? insensitive : !insensitive);
    report.Metric(std::string("emd_skew_") + std::to_string(c.cycles),
                  emd);
  }
  std::printf("\n  paper: log filtering makes profiles insensitive to\n"
              "  counter differences smaller than the scheduling time;\n"
              "  realistic skews (tens to hundreds of ns) vanish, while a\n"
              "  grossly unsynchronized counter visibly distorts the\n"
              "  profile of migrated requests.\n");
  return report.Finish();
}
