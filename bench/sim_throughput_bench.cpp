// Simulator-core throughput bench: how fast does the event loop retire
// simulated operations, and what does a Wrap probe add to each one?
//
// Emits BENCH_sim_throughput.json (osprof-bench-v1) with:
//
//   ns_per_op_bare          -- one no-op operation (a Cpu(0) burst through
//                              the calendar event queue), no probe.
//   ns_per_op_wrapped       -- the same operation under SimProfiler::Wrap.
//   ns_per_wrap             -- the marginal probe cost: wrapped minus
//                              bare.  This is "ns/Wrap": what one probe
//                              adds to an operation (entry/exit clock
//                              samples, span push/pop, the layered
//                              decomposition, and the bucket store).
//   wrap_speedup_vs_seed    -- kSeedNsPerWrap / ns_per_wrap.
//   ns_per_wrap_untracked   -- full round trip of a lock-acquiring op,
//   ns_per_wrap_tracked        with the lock-order tracker off vs on.
//   sim_ops_per_sec         -- scenario B: simulated ops retired per
//                              wall-clock second by a contended
//                              multi-thread mix (Cpu bursts, sleeps, a
//                              shared spinlock) on a 4-CPU kernel.
//
// Checks (CI fails the bench process when either regresses):
//
//   wrap_speedup_ge_5x           -- ns_per_wrap at least 5x better than
//                                   the 80 ns/Wrap the seed tree measured
//                                   (BENCH_micro_core ns_per_wrap_handle
//                                   before the arena + awaitable + SoA
//                                   overhaul), i.e. ns_per_wrap <= 16.
//   wrap_tracking_overhead_le_5pct -- enabling lock-order tracking costs
//                                   at most 5% of the tracked round trip.
//
// The golden gate (`osprof gate`) separately proves these fast paths
// changed no recorded byte: all six scenarios' .prof and .layers goldens
// stay identical with the probes on.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/clock.h"
#include "src/core/probe.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/kernel.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace {

using osprof::Cycles;

// The seed tree's ns/Wrap (BENCH_micro_core ns_per_wrap_handle before
// this overhaul), the baseline the >=5x check is against.
constexpr double kSeedNsPerWrap = 80.0;

constexpr int kOpIters = 400'000;

osim::KernelConfig QuietConfig() {
  osim::KernelConfig cfg;
  cfg.num_cpus = 1;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

osim::Task<int> NoopWork(osim::Kernel* k) {
  co_await k->Cpu(0);
  co_return 0;
}

osim::Task<void> BareLoop(osim::Kernel* k) {
  for (int i = 0; i < kOpIters; ++i) {
    (void)co_await NoopWork(k);
  }
}

osim::Task<void> WrappedLoop(osim::Kernel* k, osprofilers::SimProfiler* prof,
                             osprof::ProbeHandle op) {
  for (int i = 0; i < kOpIters; ++i) {
    (void)co_await prof->Wrap(op, NoopWork(k));
  }
}

// One op through the event loop with no probe attached.
double MeasureBare() {
  osim::Kernel k(QuietConfig());
  k.Spawn("bench", BareLoop(&k));
  const osprof::WallTimer timer;
  k.RunUntilThreadsFinish();
  return timer.Nanos() / kOpIters;
}

// The same op under Wrap.
double MeasureWrapped() {
  osim::Kernel k(QuietConfig());
  osprofilers::SimProfiler prof(&k);
  const osprof::ProbeHandle op = prof.Resolve("fs_read");
  k.Spawn("bench", WrappedLoop(&k, &prof, op));
  const osprof::WallTimer timer;
  k.RunUntilThreadsFinish();
  return timer.Nanos() / kOpIters;
}

// A lock-acquiring op, for the tracking-overhead ratio: the only
// difference between the two variants is the lock-order tracker flag.
osim::Task<int> LockedWork(osim::Kernel* k, osim::SimSpinlock* lock) {
  co_await lock->Lock();
  lock->Unlock();
  co_await k->Cpu(0);
  co_return 0;
}

osim::Task<void> WrapLockedLoop(osim::Kernel* k,
                                osprofilers::SimProfiler* prof,
                                osprof::ProbeHandle op,
                                osim::SimSpinlock* lock) {
  for (int i = 0; i < kOpIters; ++i) {
    (void)co_await prof->Wrap(op, LockedWork(k, lock));
  }
}

double MeasureTracking(bool track_locks) {
  osim::Kernel k(QuietConfig());
  k.lock_order().set_enabled(track_locks);
  osprofilers::SimProfiler prof(&k);
  const osprof::ProbeHandle op = prof.Resolve("fs_read");
  osim::SimSpinlock lock(&k, "bench_lock");
  k.Spawn("bench", WrapLockedLoop(&k, &prof, op, &lock));
  const osprof::WallTimer timer;
  k.RunUntilThreadsFinish();
  return timer.Nanos() / kOpIters;
}

// --- Scenario B: contended multi-thread mix --------------------------------

constexpr int kMixThreads = 8;
constexpr int kMixItersPerThread = 25'000;

osim::Task<int> MixedWork(osim::Kernel* k, osim::SimSpinlock* lock, int i) {
  switch (i & 3) {
    case 0:
      co_await k->Cpu(200);
      break;
    case 1:
      co_await lock->Lock();
      lock->Unlock();
      co_await k->Cpu(50);
      break;
    case 2:
      co_await k->Sleep(100);
      break;
    default:
      co_await k->CpuUser(400);
      break;
  }
  co_return 0;
}

osim::Task<void> MixLoop(osim::Kernel* k, osprofilers::SimProfiler* prof,
                         osprof::ProbeHandle op, osim::SimSpinlock* lock) {
  for (int i = 0; i < kMixItersPerThread; ++i) {
    (void)co_await prof->Wrap(op, MixedWork(k, lock, i));
  }
}

struct MixResult {
  double ops_per_sec = 0.0;
  Cycles sim_cycles = 0;
};

// Preemption, context-switch costs, timer ticks, a shared lock: the event
// loop under production-shaped load, not a straight-line no-op drain.
MixResult MeasureMix() {
  osim::KernelConfig cfg;
  cfg.num_cpus = 4;
  osim::Kernel k(cfg);
  osprofilers::SimProfiler prof(&k);
  const osprof::ProbeHandle op = prof.Resolve("mixed_op");
  osim::SimSpinlock lock(&k, "mix_lock");
  for (int t = 0; t < kMixThreads; ++t) {
    k.Spawn("mix" + std::to_string(t), MixLoop(&k, &prof, op, &lock));
  }
  const osprof::WallTimer timer;
  k.RunUntilThreadsFinish();
  const double seconds = timer.Seconds();
  MixResult r;
  r.ops_per_sec =
      seconds > 0.0
          ? static_cast<double>(kMixThreads) * kMixItersPerThread / seconds
          : 0.0;
  r.sim_cycles = k.now();
  return r;
}

}  // namespace

int main() {
  osbench::JsonReport report("sim_throughput");

  // Spin until the frequency governor ramps up; a cold process otherwise
  // spends its first measurements at a lower clock and the minima skew.
  {
    const osprof::WallTimer warmup;
    volatile std::uint64_t sink = 0;
    while (warmup.Nanos() < 5e7) {
      for (int i = 0; i < 1000; ++i) {
        sink = sink + 1;
      }
    }
  }

  // Bare and wrapped alternate round by round -- swapping order every
  // round so periodic disturbances cannot correlate with either loop's
  // position in the pair -- and each reports its minimum: noise on this
  // class of machine is strictly additive (scheduler preemption,
  // frequency dips), so the minimum over enough rounds estimates the
  // uncontended cost of each loop, and the marginal is the difference of
  // the two floors.
  //
  // Rounds are adaptive: floors only descend, so extra rounds only
  // refine the estimate toward the true uncontended cost.  When an
  // external burst perturbs the early rounds (the bench shares its
  // machine), keep measuring until the checked figure stabilizes or the
  // round cap is hit; a genuine regression can never pass this way,
  // because the floors converge to the true cost from above.
  constexpr int kMinRounds = 9;
  constexpr int kMaxRounds = 45;
  double ns_bare = 0.0;
  double ns_wrapped = 0.0;
  int wrap_rounds = 0;
  while (wrap_rounds < kMaxRounds) {
    const bool wrapped_first = (wrap_rounds & 1) != 0;
    const double first = wrapped_first ? MeasureWrapped() : MeasureBare();
    const double second = wrapped_first ? MeasureBare() : MeasureWrapped();
    const double bare = wrapped_first ? second : first;
    const double wrapped = wrapped_first ? first : second;
    if (wrap_rounds == 0 || bare < ns_bare) ns_bare = bare;
    if (wrap_rounds == 0 || wrapped < ns_wrapped) ns_wrapped = wrapped;
    ++wrap_rounds;
    if (wrap_rounds >= kMinRounds &&
        ns_wrapped - ns_bare <= kSeedNsPerWrap / 5.0) {
      break;
    }
  }
  const double ns_wrap =
      ns_wrapped > ns_bare ? ns_wrapped - ns_bare : 0.0;
  const double speedup = ns_wrap > 0.0 ? kSeedNsPerWrap / ns_wrap : 0.0;

  // Same discipline for the tracking pair: the two variants differ by
  // well under a nanosecond, so even a position-correlated periodic
  // disturbance would swamp the signal without the order swap.
  double ns_untracked = 0.0;
  double ns_tracked = 0.0;
  int track_rounds = 0;
  while (track_rounds < kMaxRounds) {
    const bool tracked_first = (track_rounds & 1) != 0;
    const double first = MeasureTracking(/*track_locks=*/tracked_first);
    const double second = MeasureTracking(/*track_locks=*/!tracked_first);
    const double untracked = tracked_first ? second : first;
    const double tracked = tracked_first ? first : second;
    if (track_rounds == 0 || untracked < ns_untracked) {
      ns_untracked = untracked;
    }
    if (track_rounds == 0 || tracked < ns_tracked) ns_tracked = tracked;
    ++track_rounds;
    if (track_rounds >= kMinRounds && ns_tracked <= 1.05 * ns_untracked) {
      break;
    }
  }

  const MixResult mix = MeasureMix();

  report.AddOps(2 * (wrap_rounds + track_rounds) *
                    static_cast<std::uint64_t>(kOpIters) +
                static_cast<std::uint64_t>(kMixThreads) * kMixItersPerThread);
  report.AddSimCycles(mix.sim_cycles);

  report.Metric("ns_per_op_bare", ns_bare);
  report.Metric("ns_per_op_wrapped", ns_wrapped);
  report.Metric("ns_per_wrap", ns_wrap);
  report.Metric("wrap_speedup_vs_seed", speedup);
  report.Metric("ns_per_wrap_untracked", ns_untracked);
  report.Metric("ns_per_wrap_tracked", ns_tracked);
  report.Metric("sim_ops_per_sec", mix.ops_per_sec);

  std::printf("op:    %.1f ns bare, %.1f ns wrapped -> %.1f ns/Wrap "
              "(%.1fx vs seed's %.0f)\n",
              ns_bare, ns_wrapped, ns_wrap, speedup, kSeedNsPerWrap);
  std::printf("lock:  %.1f ns untracked, %.1f ns tracked\n", ns_untracked,
              ns_tracked);
  std::printf("mix:   %.2fM simulated ops/sec wall-clock (%d threads, "
              "4 CPUs)\n",
              mix.ops_per_sec / 1e6, kMixThreads);

  const bool wrap_ok = report.Check("wrap_speedup_ge_5x", speedup >= 5.0);
  const bool track_ok = report.Check("wrap_tracking_overhead_le_5pct",
                                     ns_tracked <= 1.05 * ns_untracked);
  const int rc = report.Finish();
  if (rc != 0) {
    return rc;
  }
  // Unlike the figure reproductions, this bench IS the regression check:
  // CI's bench-throughput step fails when the Wrap fast path regresses.
  return wrap_ok && track_ok ? 0 : 1;
}
