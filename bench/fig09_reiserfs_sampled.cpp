// Figure 9: Reiserfs 3.6 write_super / read profiles sampled at 2.5s
// intervals (§6.3).
//
// The journaling fs flushes its superblock/journal every 5 seconds while
// holding a coarse lock the read path also takes.  Sampling the profiles
// in 2.5-second epochs shows write_super activity in alternating epochs
// and the contending reads right-shifted in exactly those epochs -- the
// vertical stripes of the paper's figure.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/sampling.h"
#include "src/fs/journalfs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/sim/task.h"

namespace {

osim::Task<void> ReaderLoop(osim::Kernel* kernel, osfs::Vfs* vfs) {
  const int fd = co_await vfs->Open("/data", /*direct_io=*/false);
  std::uint64_t pos = 0;
  while (true) {
    (void)co_await vfs->Llseek(fd, pos % (1u << 20));
    (void)co_await vfs->Read(fd, 4096);
    pos += 4096;
    co_await kernel->CpuUser(30'000);
  }
}

}  // namespace

int main() {
  osbench::Header("Figure 9: Reiserfs write_super vs read, sampled profiles");
  osbench::JsonReport report("fig09_reiserfs_sampled");

  osim::KernelConfig kcfg;
  kcfg.num_cpus = 2;
  kcfg.seed = 5;
  osim::Kernel kernel(kcfg);
  osim::SimDisk disk(&kernel);
  osfs::Ext2Config fcfg;
  osfs::JournalConfig jcfg;  // 5s write_super interval.
  osfs::JournalFs fs(&kernel, &disk, fcfg, jcfg);
  fs.AddFile("/data", 1u << 20);

  osprofilers::SimProfiler profiler(&kernel);
  const auto epoch = static_cast<osprof::Cycles>(2.5 * osprof::kPaperCpuHz);
  profiler.EnableSampling(epoch);
  fs.SetProfiler(&profiler);
  fs.SpawnSuperDaemon();
  // Two readers (one per CPU): each flush stalls their reads without
  // oversubscribing the CPUs, which would add quantum-preemption noise.
  for (int r = 0; r < 2; ++r) {
    kernel.Spawn("reader" + std::to_string(r), ReaderLoop(&kernel, &fs));
  }

  // ~11 simulated seconds, like the figure's 0..9.6s span.
  kernel.RunFor(static_cast<osprof::Cycles>(11.0 * osprof::kPaperCpuHz));

  std::printf("simulated 11s; write_super ran %llu times\n",
              static_cast<unsigned long long>(fs.write_super_count()));

  osbench::Section("Sampled grids (rows = 2.5s epochs, cols = buckets 5..30)");
  std::printf("%s\n", profiler.sampled()->RenderGrid("write_super", 5, 30).c_str());
  std::printf("%s\n", profiler.sampled()->RenderGrid("read", 5, 30).c_str());

  osbench::Section("Offline tooling path");
  // The sampled set serializes like flat profiles; the osprof_tool 'grid'
  // and 'plot3d' subcommands consume this format.
  const std::string wire = profiler.sampled()->ToString();
  const osprof::SampledProfileSet reparsed =
      osprof::SampledProfileSet::ParseString(wire);
  std::printf("  serialized sampled set: %zu bytes; round-trip %s\n",
              wire.size(),
              reparsed.ToString() == wire ? "EXACT" : "DIFFERS");
  const std::string plot =
      reparsed.RenderGnuplot3D("read", osprof::kPaperCpuHz);
  std::printf("  gnuplot 3-D script: %zu bytes (plot with gnuplot -p)\n",
              plot.size());

  osbench::Section("Flattened profiles");
  const osprof::SampledProfile* ws = profiler.sampled()->Find("write_super");
  const osprof::SampledProfile* rd = profiler.sampled()->Find("read");
  osbench::ShowProfile(osprof::Profile("WRITE_SUPER", ws->Flatten()));
  osbench::ShowProfile(osprof::Profile("READ", rd->Flatten()));

  osbench::Section("Paper-vs-measured checks");
  int ws_epochs = 0;
  int stalled_read_epochs = 0;
  const int epochs = rd->num_epochs();
  for (int e = 0; e < epochs; ++e) {
    const bool has_ws =
        e < ws->num_epochs() && ws->epoch(e).TotalOperations() > 0;
    ws_epochs += has_ws ? 1 : 0;
    std::uint64_t slow_reads = 0;
    for (int b = 21; b < rd->epoch(e).num_buckets(); ++b) {
      slow_reads += rd->epoch(e).bucket(b);
    }
    if (slow_reads > 0) {
      ++stalled_read_epochs;
      if (!has_ws && e > 0) {
        // A stall can spill into the next epoch boundary; tolerate.
      }
    }
  }
  std::printf("  epochs: %d, epochs with write_super: %d (paper: every other)\n",
              epochs, ws_epochs);
  std::printf("  epochs with stalled reads (>= bucket 21): %d\n",
              stalled_read_epochs);
  const bool stripes = ws_epochs >= 2 &&
                       ws_epochs <= (epochs + 1) / 2 + 1 &&
                       stalled_read_epochs >= 1;
  std::printf("  periodic stripes present: %s\n", stripes ? "YES" : "NO");
  report.Check("periodic_stripes_present", stripes);
  report.Check("sampled_roundtrip_exact", reparsed.ToString() == wire);
  report.AddSimCycles(kernel.now());
  report.AddOps(ws->Flatten().TotalOperations() +
                rd->Flatten().TotalOperations());
  report.Metric("write_super_epochs", ws_epochs);
  report.Metric("stalled_read_epochs", stalled_read_epochs);
  return report.Finish();
}
