// §5.1: memory and cache footprint of the profiler.
//
// The paper reports: hot instrumentation/sorting functions of 231 bytes
// (below 1% of any modern CPU cache), under 9KB of added code per
// instrumented file system, and a fixed profile memory area of usually
// less than 1KB per operation profile.  This bench reports the
// corresponding numbers for this implementation's data structures and a
// live profile set captured from a grep run.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/histogram.h"
#include "src/core/probe.h"
#include "src/core/profile.h"
#include "src/core/sampling.h"
#include "src/fs/ext2fs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/workloads.h"

int main() {
  osbench::Header("§5.1: memory usage of the aggregate-stats structures");
  osbench::JsonReport report("tab_memory_usage");

  osbench::Section("Static structure sizes");
  const std::size_t bucket_bytes = osprof::kMaxLog2Buckets * sizeof(std::uint64_t);
  std::printf("  Histogram object:        %4zu B + %zu B bucket array (r=1)\n",
              sizeof(osprof::Histogram), bucket_bytes);
  std::printf("  Histogram (r=2):         %4zu B + %zu B bucket array\n",
              sizeof(osprof::Histogram), 2 * bucket_bytes);
  std::printf("  AtomicHistogram:         %4zu B + %zu B bucket array\n",
              sizeof(osprof::AtomicHistogram), bucket_bytes);
  std::printf("  Profile:                 %4zu B + buckets\n",
              sizeof(osprof::Profile));
  std::printf("  LatencyProbe (on-stack): %4zu B\n",
              sizeof(osprof::LatencyProbe));
  const std::size_t per_profile = sizeof(osprof::Profile) + bucket_bytes;
  std::printf("  => one operation profile occupies ~%zu B "
              "(paper: usually < 1KB)  %s\n",
              per_profile,
              report.Check("profile_under_1kb", per_profile < 1024)
                  ? "HOLDS"
                  : "differs");
  report.Metric("bytes_per_profile", static_cast<double>(per_profile));

  osbench::Section("Live profile set from a grep run");
  osim::KernelConfig kcfg;
  kcfg.seed = 3;
  osim::Kernel kernel(kcfg);
  osim::SimDisk disk(&kernel);
  osfs::Ext2SimFs fs(&kernel, &disk);
  osworkloads::TreeSpec spec;
  spec.top_dirs = 6;
  osworkloads::BuildSourceTree(&fs, "/src", spec);
  osprofilers::SimProfiler profiler(&kernel);
  fs.SetProfiler(&profiler);
  osworkloads::GrepStats stats;
  kernel.Spawn("grep",
               osworkloads::GrepWorkload(&kernel, &fs, "/src", 0.5, &stats));
  kernel.RunUntilThreadsFinish();

  const osprof::ProfileSet& set = profiler.profiles();
  std::size_t resident = 0;
  for (const auto& [name, profile] : set) {
    resident += sizeof(profile) + bucket_bytes + name.size();
  }
  std::printf("  operations profiled: %zu\n", set.size());
  std::printf("  resident profile memory: ~%zu B total (~%zu B/op)\n",
              resident, resident / set.size());
  const std::string serialized = set.ToString();
  std::printf("  serialized (text /proc format): %zu B\n", serialized.size());
  std::printf("  operations recorded: %llu; checksum consistency: %s\n",
              static_cast<unsigned long long>(set.TotalOperations()),
              report.Check("live_set_checksum_consistent",
                           set.CheckConsistency())
                  ? "OK"
                  : "BROKEN");
  report.AddSimCycles(kernel.now());
  report.AddOps(set.TotalOperations());
  report.Metric("resident_profile_bytes", static_cast<double>(resident));

  osbench::Section("Sampled (3-D) profiles stay small too (Figure 9 mode)");
  osprof::SampledProfileSet sampled(1'000'000, 1);
  for (osprof::Cycles t = 0; t < 100'000'000; t += 100'000) {
    sampled.Add("read", t, 100 + t % 1'000);
  }
  const osprof::SampledProfile* sp = sampled.Find("read");
  std::printf("  100 epochs of one op: ~%zu B (%d epochs x %zu B)\n",
              static_cast<std::size_t>(sp->num_epochs()) *
                  (sizeof(osprof::Histogram) + bucket_bytes),
              sp->num_epochs(), sizeof(osprof::Histogram) + bucket_bytes);
  std::printf("\n  (The paper's 231-byte hot-function / <9KB code-size\n"
              "  figures are properties of their C instrumentation; the\n"
              "  analogous hot path here is Histogram::Add -- a handful of\n"
              "  instructions -- measured by micro_core_bench.)\n");
  return report.Finish();
}
