// Shared helpers for the figure/table reproduction benches.

#ifndef OSPROF_BENCH_BENCH_UTIL_H_
#define OSPROF_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "src/core/clock.h"
#include "src/core/jsonw.h"
#include "src/core/peaks.h"
#include "src/core/prior.h"
#include "src/core/report.h"
#include "src/runner/runner.h"

namespace osbench {

// Benches ported onto the multi-trial runner accept `--trials=N` and
// `--jobs=J` (defaults 1/1 keep the single-run figure output).
inline osrunner::RunOptions ParseRunCli(int argc, char** argv) {
  osrunner::RunOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trials=", 0) == 0) {
      options.trials = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = std::atoi(arg.c_str() + 7);
    }
  }
  return options;
}

inline void ShowRunSummary(const osrunner::RunResult& result) {
  std::printf("%d trial(s) on %d job(s), %.3f s wall\n",
              result.options.trials, result.options.jobs,
              result.wall_seconds);
}

// Cross-trial dispersion for one layer, only worth printing for trials > 1.
inline void ShowDispersion(const osrunner::RunResult& result,
                           const std::string& layer) {
  if (result.options.trials < 2) {
    return;
  }
  const auto it = result.layers.find(layer);
  if (it == result.layers.end()) {
    return;
  }
  std::printf("\n--- Cross-trial dispersion [%s] ---\n%s", layer.c_str(),
              osrunner::RenderDispersion(it->second, result.options.trials)
                  .c_str());
}

// Peak resident set size of this process, in bytes (0 where the platform
// offers no getrusage).  Linux reports ru_maxrss in KiB, macOS in bytes.
inline std::uint64_t PeakRssBytes() {
#if defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#elif defined(__unix__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#else
  return 0;
#endif
}

inline void Header(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void Section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

// Prints a profile the way the paper's figures show them, plus detected
// peaks annotated with prior-knowledge hypotheses.
inline void ShowProfile(const osprof::Profile& profile,
                        const osprof::RenderOptions& options = {}) {
  std::printf("%s\n", osprof::RenderAscii(profile, options).c_str());
  const auto peaks = osprof::FindPeaks(profile.histogram());
  std::printf("  %s\n", osprof::DescribePeaks(peaks).c_str());
  static const osprof::PriorKnowledge kPrior =
      osprof::PriorKnowledge::PaperTestbed();
  for (const auto& annotated : kPrior.Annotate(peaks)) {
    if (!annotated.hypotheses.empty()) {
      std::string names;
      for (const std::string& h : annotated.hypotheses) {
        if (!names.empty()) {
          names += ", ";
        }
        names += h;
      }
      std::printf("  peak @%d: characteristic time match: %s\n",
                  annotated.peak.mode_bucket, names.c_str());
    }
  }
  std::printf("  %s\n", osprof::SummarizeProfile(profile).c_str());
}

// --- Machine-readable bench reports ----------------------------------------
//
// Every fig*/tab_* binary emits a BENCH_<name>.json next to its human
// output so CI (and the regression gate job) can consume the run without
// scraping stdout.  The document records wall-clock time, simulated
// cycles, operation throughput, every paper-vs-measured check as a
// pass/fail entry, free-form numeric metrics, and the paths of any
// serialized merged ProfileSets the bench wrote.
//
// Output directory: $OSPROF_BENCH_JSON_DIR if set, else the working
// directory.  Construction starts the wall clock; Finish() writes the
// file and returns the bench's exit code (0 even when checks differ --
// the figures are reproductions, and the *gate* is what enforces
// regressions; CI reads the per-check booleans from the JSON instead).
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  // Not copyable: one report per bench process.
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  // Accumulates the run's scale numbers.  Callable repeatedly (benches
  // that execute several configurations sum them).
  void AddSimCycles(osprof::Cycles cycles) { sim_cycles_ += cycles; }
  void AddOps(std::uint64_t ops) { total_ops_ += ops; }

  // Folds in a multi-trial runner result: simulated cycles over all
  // trials plus the merged operation count of every layer.
  void RecordRun(const osrunner::RunResult& result) {
    for (const osrunner::TrialResult& t : result.trials) {
      AddSimCycles(t.sim_cycles);
    }
    for (const auto& [layer, lr] : result.layers) {
      AddOps(lr.merged.TotalOperations());
    }
  }

  // Records one pass/fail check and returns `pass` so call sites can keep
  // printing their human verdict from the same expression.
  bool Check(const std::string& check_name, bool pass) {
    checks_.emplace_back(check_name, pass);
    return pass;
  }

  // Records a free-form numeric result (a table cell worth keeping).
  void Metric(const std::string& metric_name, double value) {
    metrics_.emplace_back(metric_name, value);
  }

  // Serializes a merged profile set to BENCH_<name>.<tag>.prof in the
  // JSON output directory and records the path; returns the path ("" on
  // I/O failure, which is also recorded in the JSON).
  std::string WriteProfileSet(const osprof::ProfileSet& set,
                              const std::string& tag) {
    const std::string path = OutDir() + "BENCH_" + name_ + "." + tag +
                             ".prof";
    std::ofstream out(path);
    if (out) {
      set.Serialize(out);
    }
    profile_sets_.emplace_back(tag, out ? path : std::string());
    return out ? path : std::string();
  }

  // Writes BENCH_<name>.json.  Returns the process exit code: 0 normally,
  // 1 only if the report itself cannot be written.
  int Finish() {
    const double wall_seconds = timer_.Seconds();
    osjson::Value doc = osjson::Value::Object();
    doc.Set("schema", osjson::Value::Str("osprof-bench-v1"));
    doc.Set("bench", osjson::Value::Str(name_));
    doc.Set("wall_seconds", osjson::Value::Double(wall_seconds));
    doc.Set("sim_cycles", osjson::Value::Uint(sim_cycles_));
    doc.Set("total_ops", osjson::Value::Uint(total_ops_));
    doc.Set("ops_per_sec",
            osjson::Value::Double(wall_seconds > 0.0
                                      ? static_cast<double>(total_ops_) /
                                            wall_seconds
                                      : 0.0));
    osjson::Value checks = osjson::Value::Array();
    int failed = 0;
    for (const auto& [check_name, pass] : checks_) {
      osjson::Value entry = osjson::Value::Object();
      entry.Set("name", osjson::Value::Str(check_name));
      entry.Set("pass", osjson::Value::Bool(pass));
      checks.Append(std::move(entry));
      failed += pass ? 0 : 1;
    }
    doc.Set("checks", std::move(checks));
    doc.Set("checks_failed", osjson::Value::Int(failed));
    osjson::Value metrics = osjson::Value::Object();
    for (const auto& [metric_name, value] : metrics_) {
      metrics.Set(metric_name, osjson::Value::Double(value));
    }
    doc.Set("metrics", std::move(metrics));
    osjson::Value sets = osjson::Value::Object();
    for (const auto& [tag, path] : profile_sets_) {
      sets.Set(tag, path.empty() ? osjson::Value()
                                 : osjson::Value::Str(path));
    }
    doc.Set("profile_sets", std::move(sets));

    const std::string path = OutDir() + "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << doc.Dump();
    std::printf("\n[bench json: %s]\n", path.c_str());
    return 0;
  }

 private:
  static std::string OutDir() {
    const char* dir = std::getenv("OSPROF_BENCH_JSON_DIR");
    if (dir == nullptr || dir[0] == '\0') {
      return "";
    }
    std::string d(dir);
    if (d.back() != '/') {
      d.push_back('/');
    }
    return d;
  }

  std::string name_;
  // Construction starts the wall clock.
  osprof::WallTimer timer_;
  osprof::Cycles sim_cycles_ = 0;
  std::uint64_t total_ops_ = 0;
  std::vector<std::pair<std::string, bool>> checks_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::string>> profile_sets_;
};

}  // namespace osbench

#endif  // OSPROF_BENCH_BENCH_UTIL_H_
