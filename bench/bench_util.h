// Shared helpers for the figure/table reproduction benches.

#ifndef OSPROF_BENCH_BENCH_UTIL_H_
#define OSPROF_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/peaks.h"
#include "src/core/prior.h"
#include "src/core/report.h"
#include "src/runner/runner.h"

namespace osbench {

// Benches ported onto the multi-trial runner accept `--trials=N` and
// `--jobs=J` (defaults 1/1 keep the single-run figure output).
inline osrunner::RunOptions ParseRunCli(int argc, char** argv) {
  osrunner::RunOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trials=", 0) == 0) {
      options.trials = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = std::atoi(arg.c_str() + 7);
    }
  }
  return options;
}

inline void ShowRunSummary(const osrunner::RunResult& result) {
  std::printf("%d trial(s) on %d job(s), %.3f s wall\n",
              result.options.trials, result.options.jobs,
              result.wall_seconds);
}

// Cross-trial dispersion for one layer, only worth printing for trials > 1.
inline void ShowDispersion(const osrunner::RunResult& result,
                           const std::string& layer) {
  if (result.options.trials < 2) {
    return;
  }
  const auto it = result.layers.find(layer);
  if (it == result.layers.end()) {
    return;
  }
  std::printf("\n--- Cross-trial dispersion [%s] ---\n%s", layer.c_str(),
              osrunner::RenderDispersion(it->second, result.options.trials)
                  .c_str());
}

inline void Header(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void Section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

// Prints a profile the way the paper's figures show them, plus detected
// peaks annotated with prior-knowledge hypotheses.
inline void ShowProfile(const osprof::Profile& profile,
                        const osprof::RenderOptions& options = {}) {
  std::printf("%s\n", osprof::RenderAscii(profile, options).c_str());
  const auto peaks = osprof::FindPeaks(profile.histogram());
  std::printf("  %s\n", osprof::DescribePeaks(peaks).c_str());
  static const osprof::PriorKnowledge kPrior =
      osprof::PriorKnowledge::PaperTestbed();
  for (const auto& annotated : kPrior.Annotate(peaks)) {
    if (!annotated.hypotheses.empty()) {
      std::string names;
      for (const std::string& h : annotated.hypotheses) {
        if (!names.empty()) {
          names += ", ";
        }
        names += h;
      }
      std::printf("  peak @%d: characteristic time match: %s\n",
                  annotated.peak.mode_bucket, names.c_str());
    }
  }
  std::printf("  %s\n", osprof::SummarizeProfile(profile).c_str());
}

}  // namespace osbench

#endif  // OSPROF_BENCH_BENCH_UTIL_H_
