// Shared helpers for the figure/table reproduction benches.

#ifndef OSPROF_BENCH_BENCH_UTIL_H_
#define OSPROF_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/core/peaks.h"
#include "src/core/prior.h"
#include "src/core/report.h"

namespace osbench {

inline void Header(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void Section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

// Prints a profile the way the paper's figures show them, plus detected
// peaks annotated with prior-knowledge hypotheses.
inline void ShowProfile(const osprof::Profile& profile,
                        const osprof::RenderOptions& options = {}) {
  std::printf("%s\n", osprof::RenderAscii(profile, options).c_str());
  const auto peaks = osprof::FindPeaks(profile.histogram());
  std::printf("  %s\n", osprof::DescribePeaks(peaks).c_str());
  static const osprof::PriorKnowledge kPrior =
      osprof::PriorKnowledge::PaperTestbed();
  for (const auto& annotated : kPrior.Annotate(peaks)) {
    if (!annotated.hypotheses.empty()) {
      std::string names;
      for (const std::string& h : annotated.hypotheses) {
        if (!names.empty()) {
          names += ", ";
        }
        names += h;
      }
      std::printf("  peak @%d: characteristic time match: %s\n",
                  annotated.peak.mode_bucket, names.c_str());
    }
  }
  std::printf("  %s\n", osprof::SummarizeProfile(profile).c_str());
}

}  // namespace osbench

#endif  // OSPROF_BENCH_BENCH_UTIL_H_
