// Real-hardware micro-benchmarks of the aggregate-stats library
// (google-benchmark).  The honest counterpart to the paper's "about 200
// CPU cycles per profiled OS entry point": what does a probe cost today?
// Also covers the DESIGN.md ablations: bucket resolution r=1 vs r=2,
// histogram locking policies, EMD vs bin-by-bin raters, and the
// string-keyed vs pre-resolved-handle record paths (ISSUE 3).
//
// Besides the google-benchmark suite, main() times the record and Wrap
// hot paths directly and emits BENCH_micro_core.json (osprof-bench-v1)
// with ns_per_record_{string,handle}, ns_per_wrap_{string,handle}, and
// ns_per_wrap_{untracked,tracked} so CI can assert the handle path's
// speedup (record_handle_speedup_ge_5x) and the lock-order tracker's
// bound (wrap_tracking_overhead_le_5pct) without scraping stdout.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>

#include "bench/bench_util.h"
#include "src/core/compare.h"
#include "src/core/histogram.h"
#include "src/core/op_table.h"
#include "src/core/peaks.h"
#include "src/core/probe.h"
#include "src/core/profile.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/kernel.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace {

using osprof::Cycles;
using osprof::Histogram;

// A realistic per-layer operation population: the ten VFS ops under two
// layer prefixes plus the four driver keys, so the string-keyed lookup
// walks a name index of production depth rather than a toy one.
constexpr const char* kLayerOps[] = {
    "fs_open",        "fs_close",       "fs_read",    "fs_write",
    "fs_llseek",      "fs_readdir",     "fs_fsync",   "fs_create",
    "fs_unlink",      "fs_stat",        "user_open",  "user_close",
    "user_read",      "user_write",     "user_llseek", "user_readdir",
    "user_fsync",     "user_create",    "user_unlink", "user_stat",
    "disk_read",      "disk_write",     "disk_read_queue",
    "disk_write_queue",
};

osprof::ProfileSet PopulatedLayerSet() {
  osprof::ProfileSet set(1);
  for (const char* op : kLayerOps) {
    (void)set.Resolve(op);
  }
  return set;
}

void BM_BucketIndexR1(benchmark::State& state) {
  Cycles latency = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(osprof::BucketIndex(latency));
    latency = latency * 3 + 1;
  }
}
BENCHMARK(BM_BucketIndexR1);

void BM_BucketIndexR2(benchmark::State& state) {
  Cycles latency = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(osprof::BucketIndex(latency, 2));
    latency = latency * 3 + 1;
  }
}
BENCHMARK(BM_BucketIndexR2);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h(static_cast<int>(state.range(0)));
  Cycles latency = 1;
  for (auto _ : state) {
    h.Add(latency);
    latency = latency * 5 / 3 + 1;
  }
  benchmark::DoNotOptimize(h.TotalOperations());
}
BENCHMARK(BM_HistogramAdd)->Arg(1)->Arg(2)->ArgName("resolution");

void BM_AtomicHistogramAdd(benchmark::State& state) {
  osprof::AtomicHistogram h(1);
  Cycles latency = 1;
  for (auto _ : state) {
    h.Add(latency);
    latency = latency * 5 / 3 + 1;
  }
}
BENCHMARK(BM_AtomicHistogramAdd)->Threads(1)->Threads(4);

void BM_ShardedHistogramAdd(benchmark::State& state) {
  static osprof::ShardedHistogram h(1);
  Histogram* local = h.Local();
  Cycles latency = 1;
  for (auto _ : state) {
    local->Add(latency);
    latency = latency * 5 / 3 + 1;
  }
}
BENCHMARK(BM_ShardedHistogramAdd)->Threads(1)->Threads(4);

void BM_LatencyProbeRoundTrip(benchmark::State& state) {
  // The full probe: two TSC reads plus a bucket sort -- the paper's
  // per-operation overhead.
  Histogram h(1);
  for (auto _ : state) {
    osprof::LatencyProbe probe(&h);
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(h.TotalOperations());
}
BENCHMARK(BM_LatencyProbeRoundTrip);

Histogram MultiModal(int peaks, std::uint64_t seed) {
  Histogram h(1);
  std::uint64_t s = seed;
  for (int p = 0; p < peaks; ++p) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const int center = 5 + static_cast<int>((s >> 33) % 24);
    h.set_bucket(center, 1'000 + (s & 0xFFFF));
    h.set_bucket(center + 1, 100 + (s & 0xFF));
  }
  return h;
}

void BM_EarthMoversDistance(benchmark::State& state) {
  const Histogram a = MultiModal(3, 1);
  const Histogram b = MultiModal(3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(osprof::EarthMoversDistance(a, b));
  }
}
BENCHMARK(BM_EarthMoversDistance);

void BM_ChiSquareDistance(benchmark::State& state) {
  const Histogram a = MultiModal(3, 1);
  const Histogram b = MultiModal(3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(osprof::ChiSquareDistance(a, b));
  }
}
BENCHMARK(BM_ChiSquareDistance);

void BM_FindPeaks(benchmark::State& state) {
  const Histogram h = MultiModal(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(osprof::FindPeaks(h));
  }
}
BENCHMARK(BM_FindPeaks)->Arg(1)->Arg(4)->ArgName("peaks");

// The pre-ISSUE-3 record path: build the layer-prefixed key per call
// (exactly what ProfiledVfs did with `prefix_ + "read"`), then look it
// up in the sorted name index.
void BM_ProfileSetRecordStringKey(benchmark::State& state) {
  osprof::ProfileSet set = PopulatedLayerSet();
  const std::string prefix = "fs_";
  Cycles latency = 1;
  for (auto _ : state) {
    set.Add(prefix + "read", latency);
    latency = latency * 5 / 3 + 1;
  }
  benchmark::DoNotOptimize(set.TotalOperations());
}
BENCHMARK(BM_ProfileSetRecordStringKey);

// The handle path: the key was interned at attach time, the record is an
// indexed load + bucket increment.
void BM_ProfileSetRecordHandle(benchmark::State& state) {
  osprof::ProfileSet set = PopulatedLayerSet();
  const osprof::ProbeHandle read = set.Resolve("fs_read");
  Cycles latency = 1;
  for (auto _ : state) {
    set.AddById(read.id(), latency);
    latency = latency * 5 / 3 + 1;
  }
  benchmark::DoNotOptimize(set.TotalOperations());
}
BENCHMARK(BM_ProfileSetRecordHandle);

void BM_ProfileSetSerialize(benchmark::State& state) {
  osprof::ProfileSet set(1);
  for (const char* op : {"read", "write", "llseek", "readdir", "open"}) {
    for (int i = 0; i < 1'000; ++i) {
      set.Add(op, static_cast<Cycles>(100 + i * 37));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.ToString());
  }
}
BENCHMARK(BM_ProfileSetSerialize);

void BM_ProfileSetParse(benchmark::State& state) {
  osprof::ProfileSet set(1);
  for (const char* op : {"read", "write", "llseek", "readdir", "open"}) {
    for (int i = 0; i < 1'000; ++i) {
      set.Add(op, static_cast<Cycles>(100 + i * 37));
    }
  }
  const std::string text = set.ToString();
  for (auto _ : state) {
    benchmark::DoNotOptimize(osprof::ProfileSet::ParseString(text));
  }
}
BENCHMARK(BM_ProfileSetParse);

// --- BENCH_micro_core.json hot-path measurements ---------------------------

constexpr int kRecordIters = 2'000'000;

double MeasureRecordString(osprof::ProfileSet* set) {
  const std::string prefix = "fs_";
  Cycles latency = 1;
  const osprof::WallTimer timer;
  for (int i = 0; i < kRecordIters; ++i) {
    set->Add(prefix + "read", latency);
    latency = latency * 5 / 3 + 1;
  }
  return timer.Nanos() / kRecordIters;
}

double MeasureRecordHandle(osprof::ProfileSet* set) {
  const osprof::ProbeHandle read = set->Resolve("fs_read");
  Cycles latency = 1;
  const osprof::WallTimer timer;
  for (int i = 0; i < kRecordIters; ++i) {
    set->AddById(read.id(), latency);
    latency = latency * 5 / 3 + 1;
  }
  return timer.Nanos() / kRecordIters;
}

constexpr int kWrapIters = 200'000;

osim::Task<int> NoopWork(osim::Kernel* k) {
  co_await k->Cpu(0);
  co_return 0;
}

// The string-keyed baseline: resolve-per-call, exactly what the removed
// deprecated shims did internally (build the key, walk the name map).
osim::Task<void> WrapStringLoop(osim::Kernel* k,
                                osprofilers::SimProfiler* prof) {
  const std::string prefix = "fs_";
  for (int i = 0; i < kWrapIters; ++i) {
    // osprof-lint: allow(probe-discipline)
    (void)co_await prof->Wrap(prof->Resolve(prefix + "read"), NoopWork(k));
  }
}

osim::Task<void> WrapHandleLoop(osim::Kernel* k,
                                osprofilers::SimProfiler* prof,
                                osprof::ProbeHandle op) {
  for (int i = 0; i < kWrapIters; ++i) {
    (void)co_await prof->Wrap(op, NoopWork(k));
  }
}

// Times one simulated thread driving kWrapIters Wrap'd no-op operations;
// the sim-kernel scheduling cost is identical for both variants, so the
// delta isolates the per-Wrap key handling.
double MeasureWrap(bool use_handle) {
  osim::KernelConfig cfg;
  cfg.num_cpus = 1;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  osim::Kernel k(cfg);
  osprofilers::SimProfiler prof(&k);
  const osprof::ProbeHandle op = prof.Resolve("fs_read");
  k.Spawn("bench", use_handle ? WrapHandleLoop(&k, &prof, op)
                              : WrapStringLoop(&k, &prof));
  const osprof::WallTimer timer;
  k.RunUntilThreadsFinish();
  return timer.Nanos() / kWrapIters;
}

osim::Task<int> LockedWork(osim::Kernel* k, osim::SimSpinlock* lock) {
  co_await lock->Lock();
  lock->Unlock();
  co_await k->Cpu(0);
  co_return 0;
}

osim::Task<void> WrapLockedLoop(osim::Kernel* k,
                                osprofilers::SimProfiler* prof,
                                osprof::ProbeHandle op,
                                osim::SimSpinlock* lock) {
  for (int i = 0; i < kWrapIters; ++i) {
    (void)co_await prof->Wrap(op, LockedWork(k, lock));
  }
}

// ns/Wrap with the lock-order tracker on vs off.  Each op acquires one
// spinlock.  Held-lock stacks are maintained unconditionally (they are
// sync-primitive state, so enabling the tracker mid-run is sound); the
// enabled flag gates only edge recording at nested acquisitions, of
// which this op has none, so the check bounds what *enabling* the
// tracker adds to a flat lock op at 5% of the Wrap round trip.
double MeasureWrapTracking(bool track_locks) {
  osim::KernelConfig cfg;
  cfg.num_cpus = 1;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  osim::Kernel k(cfg);
  k.lock_order().set_enabled(track_locks);
  osprofilers::SimProfiler prof(&k);
  const osprof::ProbeHandle op = prof.Resolve("fs_read");
  osim::SimSpinlock lock(&k, "bench_lock");
  k.Spawn("bench", WrapLockedLoop(&k, &prof, op, &lock));
  const osprof::WallTimer timer;
  k.RunUntilThreadsFinish();
  return timer.Nanos() / kWrapIters;
}

// Wall-clock timing jitters badly in CI; each checked metric is the
// minimum over several runs, which estimates the uncontended cost and
// keeps a 5% bound honest.
template <typename F>
double BestOf(int n, F measure) {
  double best = measure();
  for (int i = 1; i < n; ++i) {
    best = std::min(best, measure());
  }
  return best;
}

int EmitJsonReport() {
  osbench::JsonReport report("micro_core");

  osprof::ProfileSet by_string = PopulatedLayerSet();
  osprof::ProfileSet by_handle = PopulatedLayerSet();
  // Warm both paths once, then measure.
  (void)MeasureRecordString(&by_string);
  (void)MeasureRecordHandle(&by_handle);
  const double ns_record_string =
      BestOf(3, [&] { return MeasureRecordString(&by_string); });
  const double ns_record_handle =
      BestOf(3, [&] { return MeasureRecordHandle(&by_handle); });
  const double record_speedup =
      ns_record_handle > 0.0 ? ns_record_string / ns_record_handle : 0.0;
  report.AddOps(8 * static_cast<std::uint64_t>(kRecordIters));

  const double ns_wrap_string =
      BestOf(3, [] { return MeasureWrap(/*use_handle=*/false); });
  const double ns_wrap_handle =
      BestOf(3, [] { return MeasureWrap(/*use_handle=*/true); });
  report.AddOps(6 * static_cast<std::uint64_t>(kWrapIters));

  report.Metric("ns_per_record_string", ns_record_string);
  report.Metric("ns_per_record_handle", ns_record_handle);
  report.Metric("record_handle_speedup", record_speedup);
  report.Metric("ns_per_wrap_string", ns_wrap_string);
  report.Metric("ns_per_wrap_handle", ns_wrap_handle);
  report.Metric("wrap_handle_speedup",
                ns_wrap_handle > 0.0 ? ns_wrap_string / ns_wrap_handle
                                     : 0.0);

  // The two variants alternate round by round -- and swap order every
  // round, so periodic machine noise cannot correlate with either one's
  // position in the pair.  Each reports its minimum (noise here is
  // strictly additive), and the check compares the floors.  Rounds are
  // adaptive: floors only descend, so when an external burst perturbs
  // the early rounds the bench keeps measuring until the ratio
  // stabilizes or the cap is hit; a genuine regression converges to its
  // true (failing) value instead.
  constexpr int kMinTrackRounds = 9;
  constexpr int kMaxTrackRounds = 45;
  double ns_wrap_untracked = 0.0;
  double ns_wrap_tracked = 0.0;
  int track_rounds = 0;
  while (track_rounds < kMaxTrackRounds) {
    const bool tracked_first = (track_rounds & 1) != 0;
    const double first = MeasureWrapTracking(/*track_locks=*/tracked_first);
    const double second = MeasureWrapTracking(/*track_locks=*/!tracked_first);
    const double untracked = tracked_first ? second : first;
    const double tracked = tracked_first ? first : second;
    if (track_rounds == 0 || untracked < ns_wrap_untracked) {
      ns_wrap_untracked = untracked;
    }
    if (track_rounds == 0 || tracked < ns_wrap_tracked) {
      ns_wrap_tracked = tracked;
    }
    ++track_rounds;
    if (track_rounds >= kMinTrackRounds &&
        ns_wrap_tracked <= 1.05 * ns_wrap_untracked) {
      break;
    }
  }
  report.AddOps(2 * track_rounds * static_cast<std::uint64_t>(kWrapIters));
  report.Metric("ns_per_wrap_untracked", ns_wrap_untracked);
  report.Metric("ns_per_wrap_tracked", ns_wrap_tracked);

  std::printf("record: %.1f ns string-keyed, %.1f ns handle (%.1fx)\n",
              ns_record_string, ns_record_handle, record_speedup);
  std::printf("wrap:   %.1f ns string-keyed, %.1f ns handle\n",
              ns_wrap_string, ns_wrap_handle);
  std::printf("wrap:   %.1f ns untracked, %.1f ns lock-order tracked\n",
              ns_wrap_untracked, ns_wrap_tracked);
  const bool record_ok =
      report.Check("record_handle_speedup_ge_5x", record_speedup >= 5.0);
  const bool track_ok =
      report.Check("wrap_tracking_overhead_le_5pct",
                   ns_wrap_tracked <= 1.05 * ns_wrap_untracked);
  const int rc = report.Finish();
  if (rc != 0) {
    return rc;
  }
  // This bench carries regression checks; a failed check must fail the
  // process (CI's bench step relies on the exit code).
  return record_ok && track_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return EmitJsonReport();
}
