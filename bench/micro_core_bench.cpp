// Real-hardware micro-benchmarks of the aggregate-stats library
// (google-benchmark).  The honest counterpart to the paper's "about 200
// CPU cycles per profiled OS entry point": what does a probe cost today?
// Also covers the DESIGN.md ablations: bucket resolution r=1 vs r=2,
// histogram locking policies, EMD vs bin-by-bin raters.

#include <benchmark/benchmark.h>

#include "src/core/compare.h"
#include "src/core/histogram.h"
#include "src/core/peaks.h"
#include "src/core/probe.h"
#include "src/core/profile.h"

namespace {

using osprof::Cycles;
using osprof::Histogram;

void BM_BucketIndexR1(benchmark::State& state) {
  Cycles latency = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(osprof::BucketIndex(latency));
    latency = latency * 3 + 1;
  }
}
BENCHMARK(BM_BucketIndexR1);

void BM_BucketIndexR2(benchmark::State& state) {
  Cycles latency = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(osprof::BucketIndex(latency, 2));
    latency = latency * 3 + 1;
  }
}
BENCHMARK(BM_BucketIndexR2);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h(static_cast<int>(state.range(0)));
  Cycles latency = 1;
  for (auto _ : state) {
    h.Add(latency);
    latency = latency * 5 / 3 + 1;
  }
  benchmark::DoNotOptimize(h.TotalOperations());
}
BENCHMARK(BM_HistogramAdd)->Arg(1)->Arg(2)->ArgName("resolution");

void BM_AtomicHistogramAdd(benchmark::State& state) {
  osprof::AtomicHistogram h(1);
  Cycles latency = 1;
  for (auto _ : state) {
    h.Add(latency);
    latency = latency * 5 / 3 + 1;
  }
}
BENCHMARK(BM_AtomicHistogramAdd)->Threads(1)->Threads(4);

void BM_ShardedHistogramAdd(benchmark::State& state) {
  static osprof::ShardedHistogram h(1);
  Histogram* local = h.Local();
  Cycles latency = 1;
  for (auto _ : state) {
    local->Add(latency);
    latency = latency * 5 / 3 + 1;
  }
}
BENCHMARK(BM_ShardedHistogramAdd)->Threads(1)->Threads(4);

void BM_LatencyProbeRoundTrip(benchmark::State& state) {
  // The full probe: two TSC reads plus a bucket sort -- the paper's
  // per-operation overhead.
  Histogram h(1);
  for (auto _ : state) {
    osprof::LatencyProbe probe(&h);
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(h.TotalOperations());
}
BENCHMARK(BM_LatencyProbeRoundTrip);

Histogram MultiModal(int peaks, std::uint64_t seed) {
  Histogram h(1);
  std::uint64_t s = seed;
  for (int p = 0; p < peaks; ++p) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const int center = 5 + static_cast<int>((s >> 33) % 24);
    h.set_bucket(center, 1'000 + (s & 0xFFFF));
    h.set_bucket(center + 1, 100 + (s & 0xFF));
  }
  return h;
}

void BM_EarthMoversDistance(benchmark::State& state) {
  const Histogram a = MultiModal(3, 1);
  const Histogram b = MultiModal(3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(osprof::EarthMoversDistance(a, b));
  }
}
BENCHMARK(BM_EarthMoversDistance);

void BM_ChiSquareDistance(benchmark::State& state) {
  const Histogram a = MultiModal(3, 1);
  const Histogram b = MultiModal(3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(osprof::ChiSquareDistance(a, b));
  }
}
BENCHMARK(BM_ChiSquareDistance);

void BM_FindPeaks(benchmark::State& state) {
  const Histogram h = MultiModal(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(osprof::FindPeaks(h));
  }
}
BENCHMARK(BM_FindPeaks)->Arg(1)->Arg(4)->ArgName("peaks");

void BM_ProfileSetSerialize(benchmark::State& state) {
  osprof::ProfileSet set(1);
  for (const char* op : {"read", "write", "llseek", "readdir", "open"}) {
    for (int i = 0; i < 1'000; ++i) {
      set.Add(op, static_cast<Cycles>(100 + i * 37));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.ToString());
  }
}
BENCHMARK(BM_ProfileSetSerialize);

void BM_ProfileSetParse(benchmark::State& state) {
  osprof::ProfileSet set(1);
  for (const char* op : {"read", "write", "llseek", "readdir", "open"}) {
    for (int i = 0; i < 1'000; ++i) {
      set.Add(op, static_cast<Cycles>(100 + i * 37));
    }
  }
  const std::string text = set.ToString();
  for (auto _ : state) {
    benchmark::DoNotOptimize(osprof::ProfileSet::ParseString(text));
  }
}
BENCHMARK(BM_ProfileSetParse);

}  // namespace

BENCHMARK_MAIN();
