// Figure 6: the llseek operation under random reads (§6.1).
//
// Two processes randomly read the same file with O_DIRECT.  The unpatched
// generic_file_llseek takes the inode's i_sem, which the other process's
// direct read holds across its disk I/O -- so llseek grows a second peak
// aligned with the READ profile.  One process shows no such peak; the
// patched llseek (f_pos-only update) eliminates the semaphore entirely and
// drops the mean from ~400 to ~120 cycles (a 70% reduction).  The
// automated analyzer is also run, as in the paper, to show it flags
// llseek on its own.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/analysis.h"
#include "src/fs/ext2fs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/workloads.h"

namespace {

constexpr int kIterations = 2'000;

osprof::ProfileSet RunRandomRead(int processes, bool patched) {
  osim::KernelConfig kcfg;
  kcfg.num_cpus = 2;
  kcfg.seed = 1234;
  osim::Kernel kernel(kcfg);
  osim::SimDisk disk(&kernel);
  osfs::Ext2Config fcfg;
  fcfg.llseek_takes_i_sem = !patched;
  osfs::Ext2SimFs fs(&kernel, &disk, fcfg);
  fs.AddFile("/data", 64ull << 20);
  osprofilers::SimProfiler profiler(&kernel);
  fs.SetProfiler(&profiler);
  for (int p = 0; p < processes; ++p) {
    kernel.Spawn("proc" + std::to_string(p),
                 osworkloads::RandomReadWorkload(&kernel, &fs, "/data",
                                                 kIterations,
                                                 /*seed=*/100 + p));
  }
  kernel.RunUntilThreadsFinish();
  return profiler.profiles();
}

double ContentionRate(const osprof::Histogram& llseek) {
  // Contended seeks wait for a disk I/O: bucket 17 and up.
  std::uint64_t slow = 0;
  for (int b = 17; b < llseek.num_buckets(); ++b) {
    slow += llseek.bucket(b);
  }
  return static_cast<double>(slow) /
         static_cast<double>(llseek.TotalOperations());
}

}  // namespace

int main() {
  osbench::Header("Figure 6: llseek under random O_DIRECT reads (§6.1)");
  osbench::JsonReport report("fig06_llseek");

  const osprof::ProfileSet two = RunRandomRead(2, /*patched=*/false);
  const osprof::ProfileSet one = RunRandomRead(1, /*patched=*/false);
  const osprof::ProfileSet patched = RunRandomRead(2, /*patched=*/true);
  report.AddOps(two.TotalOperations());
  report.AddOps(one.TotalOperations());
  report.AddOps(patched.TotalOperations());
  report.WriteProfileSet(two, "fs");

  osbench::Section("READ (2 processes, unpatched)");
  osbench::ShowProfile(*two.Find("read"));
  osbench::Section("LLSEEK-UNPATCHED (2 processes vs 1 process)");
  osbench::ShowProfile(*two.Find("llseek"));
  osbench::ShowProfile(*one.Find("llseek"));
  osbench::Section("LLSEEK-PATCHED (2 processes)");
  osbench::ShowProfile(*patched.Find("llseek"));

  osbench::Section("Automated analysis: 1 process vs 2 processes");
  const osprof::AnalysisReport report_analysis =
      osprof::CompareProfileSets(one, two);
  std::printf("%s", report_analysis.Summary().c_str());

  osbench::Section("Paper-vs-measured checks");
  const double contention = ContentionRate(two.Find("llseek")->histogram());
  const double contention1 = ContentionRate(one.Find("llseek")->histogram());
  const double unpatched_fast_mean = [&] {
    // Mean of the CPU-only mode (exclude contended waits).
    const osprof::Histogram& h = one.Find("llseek")->histogram();
    return h.MeanLatency();
  }();
  const double patched_mean = patched.Find("llseek")->histogram().MeanLatency();
  std::printf("  llseek contention rate, 2 processes: %.1f%%  (paper: ~25%%)\n",
              contention * 100.0);
  std::printf("  llseek contention rate, 1 process:   %.1f%%  (paper: 0%%)\n",
              contention1 * 100.0);
  std::printf("  unpatched uncontended mean: %.0f cycles (paper: ~400)\n",
              unpatched_fast_mean);
  std::printf("  patched mean:               %.0f cycles (paper: ~120)\n",
              patched_mean);
  std::printf("  reduction: %.0f%%  (paper: ~70%%)\n",
              100.0 * (1.0 - patched_mean / unpatched_fast_mean));
  report.Check("contention_with_two_processes", contention > 0.05);
  report.Check("no_contention_single_process", contention1 < 0.01);
  report.Check("patched_llseek_faster", patched_mean < unpatched_fast_mean);
  report.Check("analyzer_flags_llseek", [&] {
    for (const osprof::PairReport* p : report_analysis.Interesting()) {
      if (p->op_name == "llseek") {
        return true;
      }
    }
    return false;
  }());
  report.Metric("contention_rate_2proc", contention);
  report.Metric("patched_mean_cycles", patched_mean);
  report.Metric("unpatched_mean_cycles", unpatched_fast_mean);
  return report.Finish();
}
