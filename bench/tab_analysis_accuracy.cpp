// §5.3: accuracy of the automated profile analysis methods.
//
// The paper had three file-system graduate students label over 250
// profile pairs as important/unimportant, then scored four raters against
// those labels: Chi-square 5% misclassification, total-operations 4%,
// total-latency 3%, Earth Mover's Distance 2% (best).
//
// Here the labelled corpus is synthetic: "unimportant" pairs differ only
// by sampling noise and small count drift; "important" pairs contain a
// new peak, a shifted peak, a mass redistribution, or an op-count blowup
// -- the kinds of differences the humans judged.  The same four raters
// (plus the extra bin-by-bin baselines) are scored against the labels.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/analysis.h"
#include "src/core/compare.h"
#include "src/sim/rng.h"

namespace {

using osprof::Histogram;

struct LabelledPair {
  Histogram a{1};
  Histogram b{1};
  bool important = false;
};

// A multi-modal base profile: 1-3 peaks with log-spread heights.
Histogram RandomProfile(osim::Rng* rng) {
  Histogram h(1);
  const int peaks = 1 + static_cast<int>(rng->Below(3));
  for (int p = 0; p < peaks; ++p) {
    const int center = 6 + static_cast<int>(rng->Below(20));
    const auto height =
        static_cast<std::uint64_t>(rng->LogNormal(3'000.0, 1.2)) + 50;
    h.set_bucket(center, h.bucket(center) + height);
    h.set_bucket(center + 1, h.bucket(center + 1) + height / 8 + 1);
    if (center > 0) {
      h.set_bucket(center - 1, h.bucket(center - 1) + height / 10 + 1);
    }
  }
  return h;
}

// Sampling noise for a RE-RUN OF THE SAME BEHAVIOUR: per-bucket count
// jitter (~10%), small total drift (~8%), and boundary drift -- latencies
// near a bucket edge flip to the adjacent bucket between runs.  Boundary
// drift is the classic trap for bin-by-bin raters: the profile is
// behaviourally identical, but individual bins differ a lot.
Histogram WithNoise(const Histogram& base, osim::Rng* rng) {
  Histogram out(1);
  const double scale = rng->Uniform(0.92, 1.08);
  for (int b = 0; b < base.num_buckets(); ++b) {
    if (base.bucket(b) == 0) {
      continue;
    }
    const double jitter = rng->Uniform(0.9, 1.1);
    const auto count = static_cast<std::uint64_t>(
                           static_cast<double>(base.bucket(b)) * jitter *
                           scale) +
                       1;
    // Up to ~35% of the mass drifts one bucket left or right.
    const auto drift =
        static_cast<std::uint64_t>(rng->Uniform(0.0, 0.35) *
                                   static_cast<double>(count));
    const int neighbour = rng->Chance(0.5) && b > 0 ? b - 1 : b + 1;
    out.set_bucket(b, out.bucket(b) + count - drift);
    if (neighbour < out.num_buckets()) {
      out.set_bucket(neighbour, out.bucket(neighbour) + drift);
    }
  }
  return out;
}

int TallestBucket(const Histogram& h) {
  int tallest = 0;
  for (int b = 0; b < h.num_buckets(); ++b) {
    if (h.bucket(b) > h.bucket(tallest)) {
      tallest = b;
    }
  }
  return tallest;
}

// A BEHAVIOURAL change.  Real regressions change both the shape and the
// totals (a contention path executes extra operations and adds latency),
// so every perturbation moves significant mass across buckets AND scales
// the operation count by 1.5-2.5x (or its inverse).
Histogram WithImportantChange(const Histogram& base, osim::Rng* rng) {
  Histogram out = WithNoise(base, rng);
  switch (rng->Below(3)) {
    case 0: {  // A new peak appeared (e.g. lock contention).
      int center = 6 + static_cast<int>(rng->Below(22));
      while (out.bucket(center) != 0) {
        center = 6 + static_cast<int>(rng->Below(22));
      }
      const auto height = static_cast<std::uint64_t>(
          rng->Uniform(0.5, 1.5) *
          static_cast<double>(base.TotalOperations())) + 10;
      out.set_bucket(center, height);
      break;
    }
    case 1: {  // The dominant path moved >= 4 buckets.
      const int from = TallestBucket(out);
      const std::uint64_t mass = out.bucket(from);
      out.set_bucket(from, 0);
      const int to = std::min(from + 4 + static_cast<int>(rng->Below(6)),
                              out.num_buckets() - 1);
      out.set_bucket(to, out.bucket(to) + mass);
      break;
    }
    default: {  // Mass redistribution between distant modes.
      const int tallest = TallestBucket(out);
      const std::uint64_t moved = out.bucket(tallest) / 2;
      out.set_bucket(tallest, out.bucket(tallest) - moved);
      const int to = std::min(tallest + 5 + static_cast<int>(rng->Below(4)),
                              out.num_buckets() - 1);
      out.set_bucket(to, out.bucket(to) + moved);
      break;
    }
  }
  // The op-count change that accompanies any real behavioural change.
  const double factor =
      rng->Chance(0.5) ? rng->Uniform(1.5, 2.5) : rng->Uniform(0.4, 0.67);
  Histogram scaled(1);
  for (int b = 0; b < out.num_buckets(); ++b) {
    if (out.bucket(b) != 0) {
      scaled.set_bucket(
          b, static_cast<std::uint64_t>(
                 static_cast<double>(out.bucket(b)) * factor) + 1);
    }
  }
  return scaled;
}

}  // namespace

int main() {
  osbench::Header("§5.3: automated analysis accuracy on 250 labelled pairs");
  osbench::JsonReport report("tab_analysis_accuracy");

  osim::Rng rng(20060101);
  std::vector<LabelledPair> corpus;
  for (int i = 0; i < 250; ++i) {
    LabelledPair pair;
    const Histogram base = RandomProfile(&rng);
    pair.a = WithNoise(base, &rng);
    pair.important = rng.Chance(0.5);
    pair.b = pair.important ? WithImportantChange(base, &rng)
                            : WithNoise(base, &rng);
    corpus.push_back(std::move(pair));
  }
  int important = 0;
  for (const LabelledPair& p : corpus) {
    important += p.important ? 1 : 0;
  }
  std::printf("corpus: %zu pairs, %d labelled important\n", corpus.size(),
              important);

  osbench::Section("Misclassification per method (paper order of merit)");
  std::printf("  %-16s %-10s %-8s %-8s %-10s\n", "method", "threshold",
              "falsePos", "falseNeg", "error rate");
  struct Row {
    osprof::CompareMethod method;
    const char* paper;
  };
  const Row rows[] = {
      {osprof::CompareMethod::kEarthMovers, "2% (best)"},
      {osprof::CompareMethod::kTotalLatency, "3%"},
      {osprof::CompareMethod::kTotalOps, "4%"},
      {osprof::CompareMethod::kChiSquare, "5%"},
      {osprof::CompareMethod::kIntersection, "-"},
      {osprof::CompareMethod::kJeffrey, "-"},
      {osprof::CompareMethod::kMinkowskiL1, "-"},
      {osprof::CompareMethod::kMinkowskiL2, "-"},
  };
  double emd_error = -1.0;
  double chi_error = -1.0;
  for (const Row& row : rows) {
    const double threshold = osprof::DefaultThreshold(row.method);
    int false_pos = 0;
    int false_neg = 0;
    for (const LabelledPair& p : corpus) {
      const bool flagged =
          osprof::Distance(row.method, p.a, p.b) >= threshold;
      false_pos += (flagged && !p.important) ? 1 : 0;
      false_neg += (!flagged && p.important) ? 1 : 0;
    }
    const double error =
        100.0 * static_cast<double>(false_pos + false_neg) /
        static_cast<double>(corpus.size());
    if (row.method == osprof::CompareMethod::kEarthMovers) {
      emd_error = error;
    }
    if (row.method == osprof::CompareMethod::kChiSquare) {
      chi_error = error;
    }
    std::printf("  %-16s %-10.2f %-8d %-8d %5.1f%%   (paper: %s)\n",
                osprof::CompareMethodName(row.method).c_str(), threshold,
                false_pos, false_neg, error, row.paper);
    report.Metric("error_pct_" + osprof::CompareMethodName(row.method),
                  error);
  }

  osbench::Section("Paper-vs-measured check");
  std::printf("  EMD error %.1f%% vs Chi-square %.1f%%: cross-bin rater wins: %s\n",
              emd_error, chi_error, emd_error < chi_error ? "YES" : "NO");
  report.Check("emd_beats_chi_square", emd_error < chi_error);
  report.Check("emd_error_single_digit", emd_error >= 0.0 && emd_error < 10.0);
  report.AddOps(static_cast<std::uint64_t>(corpus.size()));
  return report.Finish();
}
