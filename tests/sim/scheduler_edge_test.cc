// Scheduler and synchronization edge cases: fairness, counters, timer
// boundaries, spin/quantum interactions.

#include <gtest/gtest.h>

#include "src/sim/kernel.h"
#include "src/sim/sync.h"

namespace osim {
namespace {

KernelConfig QuietConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 1;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  cfg.quantum = 1'000'000;
  return cfg;
}

Task<void> UserLoop(Kernel& k, Cycles total, Cycles per_iter) {
  for (Cycles done = 0; done < total; done += per_iter) {
    co_await k.CpuUser(per_iter);
  }
}

TEST(SchedulerEdge, RoundRobinSharesCpuFairly) {
  KernelConfig cfg = QuietConfig();
  cfg.quantum = 10'000;
  Kernel k(cfg);
  SimThread* a = k.Spawn("a", UserLoop(k, 1'000'000, 1'000));
  SimThread* b = k.Spawn("b", UserLoop(k, 1'000'000, 1'000));
  SimThread* c = k.Spawn("c", UserLoop(k, 1'000'000, 1'000));
  // Halfway through, each thread has made roughly equal progress.
  k.RunFor(1'500'000);
  const Cycles ta = a->cpu_time();
  const Cycles tb = b->cpu_time();
  const Cycles tc = c->cpu_time();
  const Cycles mx = std::max({ta, tb, tc});
  const Cycles mn = std::min({ta, tb, tc});
  EXPECT_LE(mx - mn, cfg.quantum * 2);
  k.RunUntilThreadsFinish();
  EXPECT_EQ(k.now(), 3'000'000u);
}

TEST(SchedulerEdge, ContextSwitchCounterTracksDispatches) {
  KernelConfig cfg = QuietConfig();
  cfg.context_switch_cost = 100;
  Kernel k(cfg);
  k.Spawn("a", UserLoop(k, 1'000, 1'000));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(k.context_switches(), 1u);  // One dispatch, no preemption.
  EXPECT_EQ(k.now(), 1'100u);
}

TEST(SchedulerEdge, TimerTickExactlyAtBurstBoundary) {
  KernelConfig cfg = QuietConfig();
  cfg.timer_tick_period = 1'000;
  cfg.timer_irq_cost = 50;
  Kernel k(cfg);
  // A burst that ends exactly on the tick: the tick at t=1000 lands at
  // the burst's last cycle and is charged to it.
  k.Spawn("t", UserLoop(k, 1'000, 1'000));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(k.now(), 1'050u);
  EXPECT_EQ(k.timer_interrupts_delivered(), 1u);
}

TEST(SchedulerEdge, ZeroCycleBurstIsFree) {
  Kernel k(QuietConfig());
  auto body = [](Kernel* kk) -> Task<void> {
    co_await kk->Cpu(0);
    co_await kk->CpuUser(0);
    co_await kk->Cpu(7);
  };
  k.Spawn("t", body(&k));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(k.now(), 7u);
}

Task<void> SpinThenWork(Kernel& k, SimSpinlock& lock, Cycles hold) {
  co_await lock.Lock();
  co_await k.Cpu(hold);
  lock.Unlock();
}

TEST(SchedulerEdge, SpinTimeChargesTheWaitersQuantum) {
  // A thread that spun for most of its quantum gets preempted soon after.
  KernelConfig cfg = QuietConfig();
  cfg.num_cpus = 2;
  cfg.quantum = 10'000;
  Kernel k(cfg);
  SimSpinlock lock(&k);
  SimThread* holder = k.Spawn("holder", SpinThenWork(k, lock, 9'000));
  SimThread* spinner = k.Spawn("spinner", SpinThenWork(k, lock, 100));
  // A third thread competing for the spinner's CPU.
  k.Spawn("compete", UserLoop(k, 30'000, 500));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(spinner->spin_wait_time(), 9'000u);
  EXPECT_GT(holder->cpu_time(), 0u);
}

TEST(SchedulerEdge, ManyThreadsManyCpusAllFinish) {
  KernelConfig cfg = QuietConfig();
  cfg.num_cpus = 8;
  cfg.quantum = 5'000;
  cfg.context_switch_cost = 50;
  Kernel k(cfg);
  for (int i = 0; i < 64; ++i) {
    k.Spawn("t" + std::to_string(i), UserLoop(k, 100'000, 777));
  }
  k.RunUntilThreadsFinish();
  for (const auto& t : k.threads()) {
    EXPECT_EQ(t->state(), ThreadState::kFinished);
    EXPECT_GE(t->cpu_time(), 100'000u);
  }
  // 64 threads x 100k cycles over 8 CPUs: at least 800k cycles of wall.
  EXPECT_GE(k.now(), 800'000u);
}

Task<void> SleepSandwich(Kernel& k, Cycles* woke_at) {
  co_await k.Cpu(100);
  co_await k.Sleep(5'000);
  *woke_at = k.now();
  co_await k.Cpu(100);
}

TEST(SchedulerEdge, SleepWakesAtExactDeadlineWhenCpuIdle) {
  Kernel k(QuietConfig());
  Cycles woke_at = 0;
  k.Spawn("s", SleepSandwich(k, &woke_at));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(woke_at, 5'100u);
  EXPECT_EQ(k.now(), 5'200u);
}

class QuantumSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantumSweepTest, TotalCpuTimeIsConservedAcrossQuanta) {
  // Property: the scheduler never loses or invents CPU time, whatever the
  // quantum.
  KernelConfig cfg = QuietConfig();
  cfg.quantum = Cycles{1} << GetParam();
  cfg.context_switch_cost = 0;
  Kernel k(cfg);
  k.Spawn("a", UserLoop(k, 500'000, 313));
  k.Spawn("b", UserLoop(k, 500'000, 711));
  k.RunUntilThreadsFinish();
  Cycles total = 0;
  for (const auto& t : k.threads()) {
    total += t->cpu_time();
  }
  // UserLoop overshoots each target by < one iteration.
  EXPECT_GE(total, 1'000'000u);
  EXPECT_LE(total, 1'002'100u);
  EXPECT_EQ(k.now(), total);  // 1 CPU, no switch cost, no idle gaps.
}

INSTANTIATE_TEST_SUITE_P(Quanta, QuantumSweepTest,
                         ::testing::Values(10, 12, 14, 16, 20, 26));

}  // namespace
}  // namespace osim
