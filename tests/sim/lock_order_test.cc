#include "src/sim/lock_order.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/profilers/sim_profiler.h"
#include "src/sim/kernel.h"
#include "src/sim/sync.h"

namespace osim {
namespace {

KernelConfig QuietConfig(int cpus = 1) {
  KernelConfig cfg;
  cfg.num_cpus = cpus;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

// Acquires `first` then `second` after an optional start delay; the delay
// staggers threads so both acquisition orders are observed without the
// run actually deadlocking (the tracker flags what *could* deadlock).
Task<void> LockPair(Kernel* k, SimSemaphore* first, SimSemaphore* second,
                    Cycles delay) {
  if (delay > 0) {
    co_await k->Sleep(delay);
  }
  co_await first->Acquire();
  co_await k->Cpu(100);
  co_await second->Acquire();
  co_await k->Cpu(100);
  second->Release();
  first->Release();
}

TEST(LockOrder, AbbaOrderIsDeadlockCapable) {
  Kernel k(QuietConfig());
  k.lock_order().set_enabled(true);
  SimSemaphore a(&k, 1, "a_lock");
  SimSemaphore b(&k, 1, "b_lock");
  k.Spawn("t1", LockPair(&k, &a, &b, 0));
  k.Spawn("t2", LockPair(&k, &b, &a, 100'000));
  k.RunUntilThreadsFinish();

  ASSERT_TRUE(k.lock_order().DeadlockCapable());
  const auto cycles = k.lock_order().FindCycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], (std::vector<std::string>{"a_lock", "b_lock"}));

  const auto inversions = k.lock_order().Inversions();
  ASSERT_EQ(inversions.size(), 1u);
  EXPECT_EQ(inversions[0].from, "a_lock");
  EXPECT_EQ(inversions[0].to, "b_lock");
  EXPECT_EQ(inversions[0].count, 2u);

  const auto described = k.lock_order().CycleDescriptions();
  ASSERT_EQ(described.size(), 1u);
  EXPECT_NE(described[0].find("a_lock -> b_lock -> a_lock"),
            std::string::npos);
}

TEST(LockOrder, ConsistentOrderIsClean) {
  Kernel k(QuietConfig());
  k.lock_order().set_enabled(true);
  SimSemaphore a(&k, 1, "a_lock");
  SimSemaphore b(&k, 1, "b_lock");
  k.Spawn("t1", LockPair(&k, &a, &b, 0));
  k.Spawn("t2", LockPair(&k, &a, &b, 50'000));
  k.RunUntilThreadsFinish();

  EXPECT_FALSE(k.lock_order().DeadlockCapable());
  EXPECT_TRUE(k.lock_order().Inversions().empty());
  const auto edges = k.lock_order().Edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, "a_lock");
  EXPECT_EQ(edges[0].to, "b_lock");
  EXPECT_EQ(edges[0].count, 2u);
  EXPECT_NE(k.lock_order().Report().find("no deadlock-capable cycles"),
            std::string::npos);
}

TEST(LockOrder, DisabledTrackerRecordsNothing) {
  Kernel k(QuietConfig());
  ASSERT_FALSE(k.lock_order().enabled());  // Off by default.
  SimSemaphore a(&k, 1, "a_lock");
  SimSemaphore b(&k, 1, "b_lock");
  k.Spawn("t1", LockPair(&k, &a, &b, 0));
  k.Spawn("t2", LockPair(&k, &b, &a, 100'000));
  k.RunUntilThreadsFinish();
  EXPECT_TRUE(k.lock_order().Edges().empty());
  EXPECT_FALSE(k.lock_order().DeadlockCapable());
}

TEST(LockOrder, TrackingDoesNotPerturbSimulatedTime) {
  // Byte-identical goldens require that enabling the tracker never
  // advances the clock: same workload, same end time, either way.
  Cycles end_times[2];
  for (int enabled = 0; enabled < 2; ++enabled) {
    Kernel k(QuietConfig());
    k.lock_order().set_enabled(enabled == 1);
    SimSemaphore a(&k, 1, "a_lock");
    SimSemaphore b(&k, 1, "b_lock");
    k.Spawn("t1", LockPair(&k, &a, &b, 0));
    k.Spawn("t2", LockPair(&k, &b, &a, 100'000));
    k.RunUntilThreadsFinish();
    end_times[enabled] = k.now();
  }
  EXPECT_EQ(end_times[0], end_times[1]);
}

Task<void> WrappedNested(Kernel* k, osprofilers::SimProfiler* prof,
                         osprof::ProbeHandle op, SimSemaphore* a,
                         SimSemaphore* b) {
  co_await prof->Wrap(op, LockPair(k, a, b, 0));
}

TEST(LockOrder, EdgesCarryProfiledOpContext) {
  Kernel k(QuietConfig());
  k.lock_order().set_enabled(true);
  osprofilers::SimProfiler prof(&k);
  const osprof::ProbeHandle op = prof.Resolve("nested_write");
  SimSemaphore a(&k, 1, "a_lock");
  SimSemaphore b(&k, 1, "b_lock");
  k.Spawn("t1", WrappedNested(&k, &prof, op, &a, &b));
  k.RunUntilThreadsFinish();

  const auto edges = k.lock_order().Edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].ops.count("nested_write"), 1u)
      << "edge should name the op in whose extent the lock was taken";
  // The op also recorded normally.
  ASSERT_NE(prof.profiles().Find("nested_write"), nullptr);
}

Task<void> SpinThenSem(Kernel* k, SimSpinlock* spin, SimSemaphore* sem) {
  co_await spin->Lock();
  co_await sem->Acquire();
  co_await k->Cpu(1'000);
  sem->Release();
  spin->Unlock();
}

TEST(LockOrder, SpinlockHandoffAttributesToWaiter) {
  // Two CPUs so the second thread really spins while the first holds the
  // lock; the Unlock handoff must credit the acquisition to the waiter,
  // whose subsequent semaphore acquire then adds the spin -> sem edge.
  Kernel k(QuietConfig(/*cpus=*/2));
  k.lock_order().set_enabled(true);
  SimSpinlock spin(&k, "super_lock");
  SimSemaphore sem(&k, 1, "i_sem:1");
  k.Spawn("t1", SpinThenSem(&k, &spin, &sem));
  k.Spawn("t2", SpinThenSem(&k, &spin, &sem));
  k.RunUntilThreadsFinish();

  ASSERT_EQ(spin.contended_acquisitions(), 1u)
      << "test needs real contention to exercise the handoff path";
  const auto edges = k.lock_order().Edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, "super_lock");
  EXPECT_EQ(edges[0].to, "i_sem:1");
  EXPECT_EQ(edges[0].count, 2u);  // Both threads, one via handoff.
  EXPECT_FALSE(k.lock_order().DeadlockCapable());
}

TEST(LockOrder, HostContextAcquisitionsAreIgnored) {
  // TryAcquire/Release outside thread context (as tests do for setup)
  // must not be tracked and must not crash.
  Kernel k(QuietConfig());
  k.lock_order().set_enabled(true);
  SimSemaphore sem(&k, 1, "host_sem");
  ASSERT_TRUE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(k.lock_order().Edges().empty());
}

TEST(LockOrder, ResetDropsStateKeepsEnabled) {
  Kernel k(QuietConfig());
  k.lock_order().set_enabled(true);
  SimSemaphore a(&k, 1, "a_lock");
  SimSemaphore b(&k, 1, "b_lock");
  k.Spawn("t1", LockPair(&k, &a, &b, 0));
  k.RunUntilThreadsFinish();
  ASSERT_FALSE(k.lock_order().Edges().empty());
  k.lock_order().Reset();
  EXPECT_TRUE(k.lock_order().Edges().empty());
  EXPECT_TRUE(k.lock_order().enabled());
}

}  // namespace
}  // namespace osim
