#include "src/sim/run_queue.h"

#include <gtest/gtest.h>

#include <deque>

#include "src/sim/kernel.h"
#include "src/sim/rng.h"

namespace osim {
namespace {

// Small chunks so a short test crosses many chunk boundaries.
using SmallQueue = ChunkedQueue<int, 8>;

TEST(ChunkedQueue, MatchesDequeUnderRandomizedOps) {
  SmallQueue queue;
  std::deque<int> reference;
  Rng rng(404);
  for (int step = 0; step < 20'000; ++step) {
    if (reference.empty() || rng.Chance(0.55)) {
      queue.push_back(step);
      reference.push_back(step);
    } else {
      ASSERT_EQ(queue.front(), reference.front()) << "step " << step;
      queue.pop_front();
      reference.pop_front();
    }
    ASSERT_EQ(queue.size(), reference.size());
  }
  while (!reference.empty()) {
    ASSERT_EQ(queue.front(), reference.front());
    queue.pop_front();
    reference.pop_front();
  }
  EXPECT_TRUE(queue.empty());
}

TEST(ChunkedQueue, PeakSizeIsTheHighWaterMark) {
  SmallQueue queue;
  for (int i = 0; i < 100; ++i) {
    queue.push_back(i);
  }
  for (int i = 0; i < 100; ++i) {
    queue.pop_front();
  }
  for (int i = 0; i < 10; ++i) {
    queue.push_back(i);
  }
  EXPECT_EQ(queue.peak_size(), 100u);
  EXPECT_EQ(queue.size(), 10u);
}

TEST(ChunkedQueue, RecyclesChunksInsteadOfAllocating) {
  SmallQueue queue;
  // Fill to the high-water mark once...
  for (int i = 0; i < 64; ++i) {
    queue.push_back(i);
  }
  const std::size_t chunks_at_peak = queue.chunk_count();
  EXPECT_EQ(chunks_at_peak, 8u);  // 64 elements / 8 per chunk.
  // ...then churn through many times that volume at the same depth.  The
  // window straddles one extra partial chunk (head and tail both mid-way),
  // after which the free list feeds every new chunk: the allocation count
  // freezes no matter how long the churn runs.
  for (int i = 0; i < 640; ++i) {
    queue.pop_front();
    queue.push_back(i);
  }
  const std::size_t chunks_steady = queue.chunk_count();
  EXPECT_LE(chunks_steady, chunks_at_peak + 1);
  for (int i = 0; i < 6'400; ++i) {
    queue.pop_front();
    queue.push_back(i);
  }
  EXPECT_EQ(queue.chunk_count(), chunks_steady);
  EXPECT_GT(queue.ApproxBytes(), 0u);
}

TEST(ChunkedQueue, SingleChunkRewindsInPlace) {
  SmallQueue queue;
  // Stay below one chunk's capacity forever: no second chunk is ever
  // allocated because a drained solo chunk rewinds instead of recycling.
  for (int round = 0; round < 1'000; ++round) {
    queue.push_back(round);
    queue.push_back(round + 1);
    queue.pop_front();
    queue.pop_front();
  }
  EXPECT_EQ(queue.chunk_count(), 1u);
}

}  // namespace
}  // namespace osim
