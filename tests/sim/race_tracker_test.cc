// SimRace unit tests: the FastTrack-style happens-before engine over
// simulated tasks.  Each test builds a tiny kernel, runs coroutines that
// touch a Shared<T> cell across await points, and asserts on the deduped
// report set -- true positives for unsynchronized cross-await protocols,
// zero reports when a spawn edge, lock hand-off, exit-to-root join, or
// adopted causality token orders the accesses.

#include "src/sim/race_tracker.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/kernel.h"
#include "src/sim/sync.h"

namespace osim {
namespace {

KernelConfig QuietConfig(int cpus = 2) {
  KernelConfig cfg;
  cfg.num_cpus = cpus;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  cfg.seed = 7;
  return cfg;
}

// The canonical racy protocol: read, await, write-back.  The await is the
// point where another task's turn can interleave.
Task<void> RacyIncrement(Kernel* k, Shared<std::uint64_t>* cell, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    const std::uint64_t seen = OSIM_SHARED_RO(*cell);
    co_await k->Cpu(1'000);
    OSIM_SHARED_RW(*cell) = seen + 1;
    co_await k->Sleep(500);
  }
}

// The same protocol with the read-modify-write under a semaphore: the
// release->acquire clock hand-off must order every pair of accesses.
Task<void> LockedIncrement(Kernel* k, Shared<std::uint64_t>* cell,
                           SimSemaphore* lock, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await lock->Acquire();
    const std::uint64_t seen = OSIM_SHARED_RO(*cell);
    co_await k->Cpu(1'000);
    OSIM_SHARED_RW(*cell) = seen + 1;
    lock->Release();
    co_await k->Sleep(500);
  }
}

Task<void> WriteOnce(Shared<std::uint64_t>* cell, std::uint64_t value) {
  OSIM_SHARED_RW(*cell) = value;
  co_return;
}

Task<void> ReadOnce(Shared<std::uint64_t>* cell, std::uint64_t* out) {
  *out = OSIM_SHARED_RO(*cell);
  co_return;
}

// Writes the cell, exports a causality token, then parks -- the simulated
// analogue of a task that issued an async request and is waiting on it.
Task<void> WriteCaptureAndPark(Kernel* k, Shared<std::uint64_t>* cell,
                               RaceClock* token) {
  OSIM_SHARED_RW(*cell) = 42;
  *token = k->races().Capture();
  co_await k->Sleep(1'000'000);
}

bool AnyReportMentions(const std::vector<std::string>& reports,
                       const std::string& needle) {
  for (const std::string& report : reports) {
    if (report.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(RaceTracker, DisabledTrackerIsInert) {
  Kernel k(QuietConfig());
  ASSERT_FALSE(k.races().enabled());
  Shared<std::uint64_t> cell(k, "inert.cell");
  k.Spawn("a", RacyIncrement(&k, &cell, 3));
  k.Spawn("b", RacyIncrement(&k, &cell, 3));
  k.RunUntilThreadsFinish();
  EXPECT_FALSE(k.races().RacesFound());
  EXPECT_EQ(k.races().accesses_checked(), 0u);
  EXPECT_EQ(k.races().cells_tracked(), 0u);
  EXPECT_TRUE(k.races().Capture().empty());
}

TEST(RaceTracker, UnsynchronizedCrossAwaitIncrementRaces) {
  Kernel k(QuietConfig());
  k.races().set_enabled(true);
  Shared<std::uint64_t> cell(k, "counter.cell");
  k.Spawn("a", RacyIncrement(&k, &cell, 2));
  k.Spawn("b", RacyIncrement(&k, &cell, 2));
  k.RunUntilThreadsFinish();

  const std::vector<std::string> reports = k.races().ReportDescriptions();
  ASSERT_TRUE(k.races().RacesFound());
  // Every report names the cell and the access site; with no profiler
  // attached the op annotation degrades to "(no op)".
  for (const std::string& report : reports) {
    EXPECT_NE(report.find("counter.cell@RacyIncrement"), std::string::npos)
        << report;
    EXPECT_NE(report.find("(no op)"), std::string::npos) << report;
  }
  // The racy loop repeats, but the (site, op) dedupe key collapses the
  // repetitions: far fewer reports than racy access pairs.
  EXPECT_GE(k.races().racy_accesses(), k.races().report_count());
  EXPECT_GT(k.races().accesses_checked(), 0u);
  EXPECT_EQ(k.races().cells_tracked(), 1u);
}

TEST(RaceTracker, SemaphoreHandoffOrdersTheSameProtocol) {
  Kernel k(QuietConfig());
  k.races().set_enabled(true);
  Shared<std::uint64_t> cell(k, "locked.cell");
  SimSemaphore lock(&k, 1, "cell_lock");
  k.Spawn("a", LockedIncrement(&k, &cell, &lock, 3));
  k.Spawn("b", LockedIncrement(&k, &cell, &lock, 3));
  k.RunUntilThreadsFinish();
  EXPECT_FALSE(k.races().RacesFound())
      << k.races().ReportDescriptions().front();
  EXPECT_GT(k.races().accesses_checked(), 0u);
}

// A spawn edge orders the parent's *prior* accesses before the child, but
// deliberately not the parent's later ones (the spawn is a send).
Task<void> SpawnThenWriteAgain(Kernel* k, Shared<std::uint64_t>* cell,
                               std::uint64_t* child_saw) {
  OSIM_SHARED_RW(*cell) = 1;  // Ordered before the child via the spawn.
  k->Spawn("child", ReadOnce(cell, child_saw));
  co_await k->Cpu(10'000);
  OSIM_SHARED_RW(*cell) = 2;  // Concurrent with the child's read.
}

TEST(RaceTracker, SpawnOrdersPriorWorkButNotLaterWork) {
  Kernel k(QuietConfig());
  k.races().set_enabled(true);
  Shared<std::uint64_t> cell(k, "spawn.cell");
  std::uint64_t child_saw = 0;
  k.Spawn("parent", SpawnThenWriteAgain(&k, &cell, &child_saw));
  k.RunUntilThreadsFinish();

  const std::vector<std::string> reports = k.races().ReportDescriptions();
  // Exactly one deduped race: the child's read against the parent's
  // post-spawn write.  The pre-spawn write is happens-before ordered.
  ASSERT_EQ(reports.size(), 1u) << (reports.empty() ? "" : reports[0]);
  EXPECT_TRUE(AnyReportMentions(reports, "read spawn.cell@ReadOnce"));
  EXPECT_TRUE(
      AnyReportMentions(reports, "write spawn.cell@SpawnThenWriteAgain"));
}

TEST(RaceTracker, ExitJoinsRootSoSequentialPhasesAreOrdered) {
  Kernel k(QuietConfig());
  k.races().set_enabled(true);
  Shared<std::uint64_t> cell(k, "phase.cell");
  k.Spawn("writer", WriteOnce(&cell, 7));
  k.RunUntilThreadsFinish();
  // The writer exited, so its history lives in the root clock: a task
  // spawned from host context afterwards is ordered after it.
  std::uint64_t saw = 0;
  k.Spawn("reader", ReadOnce(&cell, &saw));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(saw, 7u);
  EXPECT_FALSE(k.races().RacesFound())
      << k.races().ReportDescriptions().front();
}

TEST(RaceTracker, HostSpawnWithoutTokenRacesAgainstParkedWriter) {
  Kernel k(QuietConfig());
  k.races().set_enabled(true);
  Shared<std::uint64_t> cell(k, "token.cell");
  RaceClock token;
  k.Spawn("writer", WriteCaptureAndPark(&k, &cell, &token));
  k.RunUntil(10'000);  // Writer has written and parked, not exited.
  ASSERT_FALSE(token.empty());

  // No token adopted: the host-context spawn joins only the (empty)
  // root clock, so the reader appears causally detached from the writer.
  std::uint64_t saw = 0;
  k.Spawn("reader", ReadOnce(&cell, &saw));
  k.RunUntilThreadsFinish();
  EXPECT_TRUE(k.races().RacesFound());
  EXPECT_TRUE(AnyReportMentions(k.races().ReportDescriptions(),
                                "write token.cell@WriteCaptureAndPark"));
}

TEST(RaceTracker, AdoptedTokenOrdersCompletionWork) {
  Kernel k(QuietConfig());
  k.races().set_enabled(true);
  Shared<std::uint64_t> cell(k, "token.cell");
  RaceClock token;
  k.Spawn("writer", WriteCaptureAndPark(&k, &cell, &token));
  k.RunUntil(10'000);
  ASSERT_FALSE(token.empty());

  // The disk/net completion pattern: adopt the submitter's captured
  // history around the callback, and everything spawned inside inherits
  // it -- the reader is now ordered after the parked writer's write.
  k.races().Adopt(token);
  std::uint64_t saw = 0;
  k.Spawn("reader", ReadOnce(&cell, &saw));
  k.races().Drop();
  k.RunUntilThreadsFinish();
  EXPECT_EQ(saw, 42u);
  EXPECT_FALSE(k.races().RacesFound())
      << k.races().ReportDescriptions().front();
}

TEST(RaceTracker, ResetClearsStateAndInvalidatesCellsLazily) {
  Kernel k(QuietConfig());
  k.races().set_enabled(true);
  Shared<std::uint64_t> cell(k, "reset.cell");
  k.Spawn("a", RacyIncrement(&k, &cell, 2));
  k.Spawn("b", RacyIncrement(&k, &cell, 2));
  k.RunUntilThreadsFinish();
  ASSERT_TRUE(k.races().RacesFound());

  k.races().Reset();
  EXPECT_FALSE(k.races().RacesFound());
  EXPECT_EQ(k.races().report_count(), 0u);
  EXPECT_EQ(k.races().racy_accesses(), 0u);
  EXPECT_EQ(k.races().accesses_checked(), 0u);
  EXPECT_EQ(k.races().cells_tracked(), 0u);
  EXPECT_TRUE(k.races().enabled()) << "Reset must not flip the enable bit";

  // The same cell is usable after Reset: the generation bump clears its
  // stale epochs on next touch, and an ordered access stays silent.
  std::uint64_t saw = 0;
  k.Spawn("writer", WriteOnce(&cell, 9));
  k.RunUntilThreadsFinish();
  k.Spawn("reader", ReadOnce(&cell, &saw));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(saw, 9u);
  EXPECT_FALSE(k.races().RacesFound())
      << k.races().ReportDescriptions().front();
  EXPECT_EQ(k.races().cells_tracked(), 1u);
}

TEST(RaceTracker, KernelContextAccessesAreExempt) {
  Kernel k(QuietConfig());
  k.races().set_enabled(true);
  Shared<std::uint64_t> cell(k, "host.cell");
  // Host-side setup and introspection (mkfs-style code) run with no
  // current task: never checked, never reported.
  OSIM_SHARED_RW(cell) = 5;
  EXPECT_EQ(OSIM_SHARED_RO(cell), 5u);
  EXPECT_EQ(k.races().accesses_checked(), 0u);
  EXPECT_EQ(k.races().cells_tracked(), 0u);
  EXPECT_FALSE(k.races().RacesFound());
}

}  // namespace
}  // namespace osim
