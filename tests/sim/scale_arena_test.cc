// Million-task arena-growth tests (the scale tentpole's substrate claims):
//
//  * RequestContext's frame pool grows past 10^6 simultaneously open
//    spans without invalidating anything -- handles are pool indices, so
//    the data read back after every reallocation must be exact.
//  * The kernel sustains over 10^6 concurrently live tasks: spawn them
//    all, verify the early tasks' identities survived the arena growth,
//    then drain to completion with reaping on.
//
// These run minutes-scale memory footprints (hundreds of MB), so they
// live in the `slow` ctest label, excluded from the quick PR tier.

#include <gtest/gtest.h>

#include "src/core/layered.h"
#include "src/core/op_table.h"
#include "src/sim/kernel.h"
#include "src/sim/request_context.h"

namespace osim {
namespace {

constexpr int kMillion = 1'000'000;

TEST(ScaleArena, RequestContextGrowsPastMillionLiveFramesIntact) {
  RequestContext context;
  osprof::OpTable ops;
  SpanOwner owner;
  owner.ops = &ops;

  // A deep stack of distinct frames across many simulated threads: 1024
  // threads x 1024 nested spans each, entry times encoding (tid, depth).
  constexpr int kThreads = 1024;
  constexpr int kDepth = 1024;  // 1024 * 1024 > 10^6 live frames.
  for (int depth = 0; depth < kDepth; ++depth) {
    for (int tid = 0; tid < kThreads; ++tid) {
      const auto stamp =
          static_cast<Cycles>(tid) * kDepth + static_cast<Cycles>(depth);
      context.Push(tid, &owner, osprof::OpId{0}, stamp);
    }
  }
  ASSERT_GE(context.pool_frames(), static_cast<std::size_t>(kMillion));

  // Pop everything back in LIFO order per thread.  Every duration is
  // computed from the frame's stored entry stamp: exact results prove the
  // pool's many reallocations invalidated no frame (handles are indices,
  // not pointers).
  const auto now = static_cast<Cycles>(kThreads) * kDepth;
  for (int depth = kDepth - 1; depth >= 0; --depth) {
    for (int tid = 0; tid < kThreads; ++tid) {
      const auto stamp =
          static_cast<Cycles>(tid) * kDepth + static_cast<Cycles>(depth);
      const RequestContext::PopResult r = context.Pop(tid, now, 0);
      ASSERT_EQ(r.duration, now - stamp)
          << "frame (tid " << tid << ", depth " << depth
          << ") corrupted by pool growth";
    }
  }
  // The pool holds the high-water mark, reusable for the next run.
  EXPECT_GE(context.pool_frames(), static_cast<std::size_t>(kMillion));
}

TEST(ScaleArena, KernelSustainsMillionLiveTasks) {
  KernelConfig cfg;
  cfg.num_cpus = 8;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  cfg.reap_finished = true;
  Kernel kernel(cfg);

  // Every task parks immediately for a long simulated sleep, so the whole
  // population is concurrently live before anyone finishes.  Wakeups are
  // staggered: a million events on one timestamp would degenerate the
  // calendar queue into a single always-rescanned day, which is an event
  // scheduling pattern no open-loop workload produces.
  constexpr int kTasks = kMillion + 50'000;
  const auto body = [](Kernel* k, Cycles nap) -> Task<void> {
    co_await k->Sleep(nap);
  };
  SimThread* first = nullptr;
  for (int i = 0; i < kTasks; ++i) {
    SimThread* t = kernel.Spawn(
        "s", body(&kernel, 1'000'000'000 + static_cast<Cycles>(i) * 137));
    if (i == 0) {
      first = t;
    }
  }
  // Run up to (but not past) the mass wakeup: all tasks parked, all live.
  kernel.RunFor(1'000'000);
  EXPECT_EQ(kernel.live_threads(), kTasks);
  // The first task's identity survived a million subsequent spawns (the
  // thread table grew by orders of magnitude around it).
  ASSERT_EQ(kernel.threads().size(), static_cast<std::size_t>(kTasks));
  EXPECT_EQ(kernel.threads()[0].get(), first);
  EXPECT_EQ(first->id(), 0);

  const KernelMemoryStats at_peak = kernel.MemoryStats();
  EXPECT_EQ(at_peak.live_threads, kTasks);
  EXPECT_GE(at_peak.events_pending, static_cast<std::size_t>(kTasks));
  EXPECT_GT(at_peak.TotalBytes(), 0u);

  // Drain: everyone wakes, runs to completion, and is reaped.
  kernel.RunUntilThreadsFinish();
  EXPECT_EQ(kernel.live_threads(), 0);
  EXPECT_EQ(kernel.reaped_threads(), static_cast<std::uint64_t>(kTasks));
  // The run queue absorbed the mass wakeup in chunks, not one flat array.
  EXPECT_GE(kernel.MemoryStats().run_queue_peak_depth, 1u);
}

}  // namespace
}  // namespace osim
