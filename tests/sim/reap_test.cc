// KernelConfig::reap_finished: finished threads fold their stats into
// kernel aggregates and free their SimThread + coroutine frame, leaving a
// null id slot.  Off by default -- post-mortem inspection of threads() is
// part of many tests' contract -- so these tests cover both modes.

#include <gtest/gtest.h>

#include "src/sim/kernel.h"

namespace osim {
namespace {

KernelConfig ReapConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 2;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  cfg.reap_finished = true;
  return cfg;
}

Task<void> Work(Kernel* k, Cycles cycles) { co_await k->Cpu(cycles); }

TEST(ThreadReaping, FreesFinishedThreadsAndKeepsIdsMonotonic) {
  Kernel kernel(ReapConfig());
  for (int i = 0; i < 50; ++i) {
    kernel.Spawn("w", Work(&kernel, 100));
  }
  kernel.RunUntilThreadsFinish();
  EXPECT_EQ(kernel.live_threads(), 0);
  EXPECT_EQ(kernel.spawned_threads(), 50u);
  EXPECT_EQ(kernel.reaped_threads(), 50u);
  // Slots stay (ids are stable and monotonic) but hold nothing.
  ASSERT_EQ(kernel.threads().size(), 50u);
  for (const auto& slot : kernel.threads()) {
    EXPECT_EQ(slot, nullptr);
  }
  // New spawns continue the id sequence past the reaped range.
  SimThread* next = kernel.Spawn("w", Work(&kernel, 100));
  EXPECT_EQ(next->id(), 50);
}

TEST(ThreadReaping, StatsFoldIntoKernelAggregates) {
  // Two competing threads on one CPU with a tiny quantum force
  // preemptions; the counts must survive the threads' destruction.
  KernelConfig cfg = ReapConfig();
  cfg.num_cpus = 1;
  cfg.quantum = 64;
  Kernel kernel(cfg);
  kernel.Spawn("a", Work(&kernel, 10'000));
  kernel.Spawn("b", Work(&kernel, 10'000));
  kernel.RunUntilThreadsFinish();
  EXPECT_GT(kernel.total_forced_preemptions(), 0u);
  const KernelMemoryStats stats = kernel.MemoryStats();
  EXPECT_EQ(stats.reaped_threads, 2u);
  EXPECT_EQ(stats.live_threads, 0);
}

TEST(ThreadReaping, MemoryStaysFlatUnderChurn) {
  // The scale property reaping exists for: thread_bytes tracks the live
  // set, not history.  10x the spawns must not grow the footprint beyond
  // the (slot-table) baseline of the smaller run.
  const auto churn = [](int count) {
    Kernel kernel(ReapConfig());
    for (int i = 0; i < count; ++i) {
      kernel.Spawn("w", Work(&kernel, 10));
    }
    kernel.RunUntilThreadsFinish();
    // Live SimThread payload: total minus the id-slot table.
    const KernelMemoryStats stats = kernel.MemoryStats();
    return stats.thread_bytes -
           kernel.threads().capacity() * sizeof(std::unique_ptr<SimThread>);
  };
  EXPECT_EQ(churn(100), 0u);
  EXPECT_EQ(churn(1'000), 0u);
}

TEST(ThreadReaping, OffByDefaultKeepsThreadsInspectable) {
  KernelConfig cfg = ReapConfig();
  cfg.reap_finished = false;
  Kernel kernel(cfg);
  kernel.Spawn("w", Work(&kernel, 100));
  kernel.RunUntilThreadsFinish();
  ASSERT_EQ(kernel.threads().size(), 1u);
  ASSERT_NE(kernel.threads()[0], nullptr);
  EXPECT_EQ(kernel.reaped_threads(), 0u);
}

}  // namespace
}  // namespace osim
