// Multi-node topology tests: the Kernel partitions its CPUs into
// contiguous per-node slices, SpawnOn pins threads to a node's run queue,
// and children inherit their spawner's node (src/sim/kernel.h).

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/sim/kernel.h"

namespace osim {
namespace {

KernelConfig NodeConfig(int cpus, int nodes) {
  KernelConfig cfg;
  cfg.num_cpus = cpus;
  cfg.num_nodes = nodes;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

TEST(NodeTopology, ContiguousEvenPartition) {
  Kernel k(NodeConfig(8, 4));
  ASSERT_EQ(k.num_nodes(), 4);
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(k.node(n).id(), n);
    EXPECT_EQ(k.node(n).first_cpu(), 2 * n);
    EXPECT_EQ(k.node(n).num_cpus(), 2);
  }
  for (int c = 0; c < 8; ++c) {
    EXPECT_EQ(k.node_of_cpu(c), c / 2);
  }
}

TEST(NodeTopology, SingleNodeIsTheDefault) {
  KernelConfig cfg;
  cfg.num_cpus = 4;
  Kernel k(cfg);
  ASSERT_EQ(k.num_nodes(), 1);
  EXPECT_EQ(k.node(0).num_cpus(), 4);
  EXPECT_EQ(k.node_of_cpu(3), 0);
}

TEST(NodeTopology, RejectsUnevenPartition) {
  EXPECT_THROW(Kernel(NodeConfig(3, 2)), std::invalid_argument);
  EXPECT_THROW(Kernel(NodeConfig(2, 4)), std::invalid_argument);
  EXPECT_THROW(Kernel(NodeConfig(2, 0)), std::invalid_argument);
}

TEST(NodeTopology, CurrentNodeIsMinusOneInKernelContext) {
  Kernel k(NodeConfig(4, 2));
  EXPECT_EQ(k.current_node(), -1);
}

Task<void> RecordNode(Kernel* k, int* node_seen, int* cpu_seen) {
  co_await k->Cpu(100);
  *node_seen = k->current_node();
  *cpu_seen = k->current()->cpu();
}

TEST(NodeTopology, SpawnOnPinsToTheNodesCpus) {
  Kernel k(NodeConfig(4, 2));
  int node_seen[2] = {-2, -2};
  int cpu_seen[2] = {-2, -2};
  k.SpawnOn(0, "n0", RecordNode(&k, &node_seen[0], &cpu_seen[0]));
  k.SpawnOn(1, "n1", RecordNode(&k, &node_seen[1], &cpu_seen[1]));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(node_seen[0], 0);
  EXPECT_EQ(node_seen[1], 1);
  // Node 0 owns CPUs {0,1}, node 1 owns {2,3}: pinning is by slice.
  EXPECT_EQ(k.node_of_cpu(cpu_seen[0]), 0);
  EXPECT_EQ(k.node_of_cpu(cpu_seen[1]), 1);
}

TEST(NodeTopology, SpawnOnRejectsUnknownNode) {
  Kernel k(NodeConfig(4, 2));
  EXPECT_THROW(
      k.SpawnOn(2, "x", [](Kernel* kk) -> Task<void> {
        co_await kk->Yield();
      }(&k)),
      std::invalid_argument);
}

Task<void> RecordNodeOnly(Kernel* k, int* node_seen) {
  co_await k->Cpu(100);
  *node_seen = k->current_node();
}

Task<void> SpawnChildOnMyNode(Kernel* k, int* child_node) {
  co_await k->Cpu(100);
  k->Spawn("child", RecordNodeOnly(k, child_node));
}

TEST(NodeTopology, SpawnInheritsTheSpawnersNode) {
  Kernel k(NodeConfig(4, 2));
  int child_node = -2;
  k.SpawnOn(1, "parent", SpawnChildOnMyNode(&k, &child_node));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(child_node, 1);
}

Task<void> SpinOnNode(Kernel* k, int rounds, std::vector<int>* cpus) {
  for (int i = 0; i < rounds; ++i) {
    co_await k->Cpu(5'000);
    cpus->push_back(k->current()->cpu());
    co_await k->Yield();
  }
}

TEST(NodeTopology, SchedulerNeverMigratesAcrossNodes) {
  // Four always-runnable threads on node 0 of a two-node box: they
  // contend for node 0's two CPUs and must never run on node 1's.
  Kernel k(NodeConfig(4, 2));
  std::vector<int> cpus[4];
  for (int t = 0; t < 4; ++t) {
    k.SpawnOn(0, "spin" + std::to_string(t), SpinOnNode(&k, 50, &cpus[t]));
  }
  k.RunUntilThreadsFinish();
  for (int t = 0; t < 4; ++t) {
    ASSERT_EQ(cpus[t].size(), 50u);
    for (const int c : cpus[t]) {
      EXPECT_EQ(k.node_of_cpu(c), 0);
    }
  }
}

}  // namespace
}  // namespace osim
