// Unit tests for the kernel-owned span stack: frame lifecycle, exact
// wait decomposition, opaque vs transparent child charging, and the
// per-owner lineage that CallGraphProfiler derives its edges from.
// This file is on the probe-discipline allowlist: it is the one place
// outside the profiling spine that drives RequestContext by hand.

#include "src/sim/request_context.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/core/op_table.h"

namespace osim {
namespace {

using osprof::Cycles;
using osprof::kInvalidOpId;
using osprof::OpId;
using osprof::OpTable;

class RequestContextTest : public ::testing::Test {
 protected:
  OpTable ops_;
  RequestContext ctx_;
  // Two distinct owner descriptors (one per profiler in production):
  // owner_a is transparent, owner_b charges parents as an FS layer.
  const SpanOwner owner_a_{&ops_, osprof::kLayerSelf};
  const SpanOwner owner_b_{&ops_, osprof::kLayerFs};
};

TEST_F(RequestContextTest, PureSelfSpan) {
  const OpId read = ops_.Intern("read");
  ctx_.Push(0, &owner_a_, read, 100);
  const auto r = ctx_.Pop(0, 350, 250);
  EXPECT_EQ(r.duration, 250u);
  EXPECT_EQ(r.components[osprof::kLayerSelf], 250u);
  for (int c = osprof::kLayerSelf + 1; c < osprof::kNumLayerComponents; ++c) {
    EXPECT_EQ(r.components[c], 0u) << c;
  }
  EXPECT_EQ(r.caller, kInvalidOpId);
  EXPECT_EQ(r.owner_children, 0u);
}

TEST_F(RequestContextTest, WaitsSubtractFromSelfExactly) {
  const OpId read = ops_.Intern("read");
  ctx_.Push(0, &owner_a_, read, 0);
  ctx_.AttributeWait(0, osprof::kLayerDriver, 600);
  ctx_.AttributeWait(0, osprof::kLayerRunQueue, 100);
  const auto r = ctx_.Pop(0, 1000, 1000);
  EXPECT_EQ(r.components[osprof::kLayerDriver], 600u);
  EXPECT_EQ(r.components[osprof::kLayerRunQueue], 100u);
  EXPECT_EQ(r.components[osprof::kLayerSelf], 300u);
  Cycles sum = 0;
  for (int c = 0; c < osprof::kNumLayerComponents; ++c) {
    sum += r.components[c];
  }
  EXPECT_EQ(sum, r.duration);
}

TEST_F(RequestContextTest, SelfClampsAtZeroWhenWaitsExceedDuration) {
  // An untagged park can leave attributed waits larger than the clocked
  // duration; self must clamp, never wrap.
  const OpId op = ops_.Intern("op");
  ctx_.Push(0, &owner_a_, op, 500);
  ctx_.AttributeWait(0, osprof::kLayerLockWait, 900);
  const auto r = ctx_.Pop(0, 1000, 500);
  EXPECT_EQ(r.duration, 500u);
  EXPECT_EQ(r.components[osprof::kLayerSelf], 0u);
  EXPECT_EQ(r.components[osprof::kLayerLockWait], 900u);
}

TEST_F(RequestContextTest, WaitsBubbleUpToParentVerbatim) {
  const OpId user_read = ops_.Intern("user_read");
  const OpId fs_read = ops_.Intern("fs_read");
  ctx_.Push(0, &owner_a_, user_read, 0);
  ctx_.Push(0, &owner_a_, fs_read, 100);
  ctx_.AttributeWait(0, osprof::kLayerDriver, 300);
  (void)ctx_.Pop(0, 500, 400);
  const auto parent = ctx_.Pop(0, 600, 600);
  // The child's driver wait is the parent's driver wait; the child's
  // transparent self (100) merges into the parent's self.
  EXPECT_EQ(parent.components[osprof::kLayerDriver], 300u);
  EXPECT_EQ(parent.components[osprof::kLayerSelf], 300u);
  EXPECT_EQ(parent.duration, 600u);
}

TEST_F(RequestContextTest, OpaqueChildChargesSelfToItsLayerClass) {
  // An FS-layer op under a user-layer op: the child's own CPU shows up
  // as the parent's `fs` component, not as parent self.
  const OpId user_read = ops_.Intern("user_read");
  const OpId fs_read = ops_.Intern("fs_read");
  ctx_.Push(0, &owner_a_, user_read, 0);
  ctx_.Push(0, &owner_b_, fs_read, 100);
  ctx_.AttributeWait(0, osprof::kLayerDriver, 250);
  const auto child = ctx_.Pop(0, 500, 400);
  EXPECT_EQ(child.components[osprof::kLayerSelf], 150u);
  const auto parent = ctx_.Pop(0, 600, 600);
  EXPECT_EQ(parent.components[osprof::kLayerFs], 150u);
  EXPECT_EQ(parent.components[osprof::kLayerDriver], 250u);
  EXPECT_EQ(parent.components[osprof::kLayerSelf], 200u);
}

TEST_F(RequestContextTest, CallerIsNearestSameOwnerAncestor) {
  const OpId grep = ops_.Intern("grep");
  const OpId fs_read = ops_.Intern("fs_read");
  const OpId disk = ops_.Intern("disk_read");
  // owner_a wraps grep and disk_read; owner_b interleaves fs_read.
  ctx_.Push(0, &owner_a_, grep, 0);
  ctx_.Push(0, &owner_b_, fs_read, 10);
  ctx_.Push(0, &owner_a_, disk, 20);
  const auto leaf = ctx_.Pop(0, 50, 30);
  EXPECT_EQ(leaf.caller, grep) << "must skip the other owner's frame";
  const auto mid = ctx_.Pop(0, 80, 70);
  EXPECT_EQ(mid.caller, kInvalidOpId) << "no same-owner ancestor";
  const auto root = ctx_.Pop(0, 100, 100);
  EXPECT_EQ(root.caller, kInvalidOpId);
  // Child time is per-owner too: grep saw disk_read's 30, not fs_read's.
  EXPECT_EQ(root.owner_children, 30u);
  EXPECT_EQ(mid.owner_children, 0u);
}

TEST_F(RequestContextTest, ThreadsHaveIndependentStacks) {
  const OpId a = ops_.Intern("a");
  const OpId b = ops_.Intern("b");
  ctx_.Push(3, &owner_a_, a, 0);
  ctx_.Push(7, &owner_a_, b, 0);
  ctx_.AttributeWait(7, osprof::kLayerNet, 40);
  const auto r3 = ctx_.Pop(3, 100, 100);
  EXPECT_EQ(r3.components[osprof::kLayerNet], 0u);
  const auto r7 = ctx_.Pop(7, 100, 100);
  EXPECT_EQ(r7.components[osprof::kLayerNet], 40u);
}

TEST_F(RequestContextTest, TopOpSeesInnermostActiveSpan) {
  const OpTable* ops = nullptr;
  OpId op = kInvalidOpId;
  EXPECT_FALSE(ctx_.TopOp(0, &ops, &op));
  const OpId outer = ops_.Intern("outer");
  const OpId inner = ops_.Intern("inner");
  ctx_.Push(0, &owner_a_, outer, 0);
  ctx_.Push(0, &owner_a_, inner, 0);
  ASSERT_TRUE(ctx_.TopOp(0, &ops, &op));
  EXPECT_EQ(op, inner);
  EXPECT_EQ(&ops->Name(op), &ops_.Name(inner));
  (void)ctx_.Pop(0, 10, 10);
  ASSERT_TRUE(ctx_.TopOp(0, &ops, &op));
  EXPECT_EQ(op, outer);
}

TEST_F(RequestContextTest, NegativeTidIsIgnoredAndEmptyPopThrows) {
  const OpId op = ops_.Intern("op");
  ctx_.Push(-1, &owner_a_, op, 0);  // No-op.
  const OpTable* ops = nullptr;
  OpId top = kInvalidOpId;
  EXPECT_FALSE(ctx_.TopOp(-1, &ops, &top));
  EXPECT_THROW(ctx_.Pop(0, 10, 10), std::logic_error);
  EXPECT_THROW(ctx_.Pop(-1, 10, 10), std::logic_error);
}

TEST_F(RequestContextTest, ResetDropsAllFrames) {
  const OpId op = ops_.Intern("op");
  ctx_.Push(0, &owner_a_, op, 0);
  ctx_.Reset();
  const OpTable* ops = nullptr;
  OpId top = kInvalidOpId;
  EXPECT_FALSE(ctx_.TopOp(0, &ops, &top));
  EXPECT_THROW(ctx_.Pop(0, 10, 10), std::logic_error);
}

}  // namespace
}  // namespace osim
