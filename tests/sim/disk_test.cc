#include "src/sim/disk.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/histogram.h"

namespace osim {
namespace {

KernelConfig QuietConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 1;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

Task<void> ReadBlocks(Kernel& k, SimDisk& disk, std::uint64_t lba,
                      std::uint64_t count, DiskRequestInfo* out) {
  *out = co_await disk.SyncRead(lba, count);
  (void)k;
}

TEST(SimDisk, ColdReadIsMechanical) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  DiskRequestInfo info;
  k.Spawn("r", ReadBlocks(k, disk, 500'000, 8, &info));
  k.RunUntilThreadsFinish();
  EXPECT_FALSE(info.cache_hit);
  // Must include a seek (head starts at 0) plus some rotation.
  EXPECT_GT(info.service_latency(), disk.config().track_to_track_seek);
  EXPECT_EQ(disk.mechanical_accesses(), 1u);
}

Task<void> TwoSequentialReads(Kernel& k, SimDisk& disk,
                              std::vector<DiskRequestInfo>* out) {
  out->push_back(co_await disk.SyncRead(1'000'000, 8));
  out->push_back(co_await disk.SyncRead(1'000'008, 8));
  (void)k;
}

TEST(SimDisk, ReadaheadMakesSequentialSuccessorCheap) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  std::vector<DiskRequestInfo> infos;
  k.Spawn("r", TwoSequentialReads(k, disk, &infos));
  k.RunUntilThreadsFinish();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_FALSE(infos[0].cache_hit);
  EXPECT_TRUE(infos[1].cache_hit);
  // The cache hit pays only controller + transfer: orders of magnitude
  // cheaper than the mechanical access (Figure 7's peak 3 vs peak 4).
  EXPECT_LT(infos[1].service_latency() * 4, infos[0].service_latency());
  const Cycles expected = disk.config().controller_overhead +
                          8 * disk.config().transfer_per_block;
  EXPECT_EQ(infos[1].service_latency(), expected);
}

TEST(SimDisk, CacheHitLandsInPaperBuckets) {
  // At the paper's constants a disk-cache hit is ~46us: bucket 16-17.
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  std::vector<DiskRequestInfo> infos;
  k.Spawn("r", TwoSequentialReads(k, disk, &infos));
  k.RunUntilThreadsFinish();
  const int bucket = osprof::BucketIndex(infos[1].service_latency());
  EXPECT_GE(bucket, 16);
  EXPECT_LE(bucket, 17);
}

TEST(SimDisk, MechanicalAccessLandsInPaperBuckets) {
  // Seek + rotation + transfer: 0.3..12ms -> buckets 18-24.
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  osprof::Histogram h(1);
  auto reader = [](Kernel& kk, SimDisk& d, osprof::Histogram* hist) -> Task<void> {
    for (int i = 0; i < 200; ++i) {
      // Far-apart random-ish locations: always mechanical.
      const std::uint64_t lba = (static_cast<std::uint64_t>(i) * 997'003) %
                                (d.config().num_blocks - 8);
      const DiskRequestInfo info = co_await d.SyncRead(lba, 8);
      hist->Add(info.service_latency());
    }
    (void)kk;
  };
  k.Spawn("r", reader(k, disk, &h));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(h.TotalOperations(), 200u);
  EXPECT_GE(h.FirstNonEmpty(), 17);
  EXPECT_LE(h.LastNonEmpty(), 24);
}

TEST(SimDisk, FifoQueueingDelaysConcurrentRequests) {
  KernelConfig cfg = QuietConfig();
  cfg.num_cpus = 2;
  Kernel k(cfg);
  SimDisk disk(&k);
  DiskRequestInfo a;
  DiskRequestInfo b;
  k.Spawn("a", ReadBlocks(k, disk, 100'000, 8, &a));
  k.Spawn("b", ReadBlocks(k, disk, 3'000'000, 8, &b));
  k.RunUntilThreadsFinish();
  // The second submission waits for the first to finish service.
  const bool a_first = a.started_at <= b.started_at;
  const DiskRequestInfo& later = a_first ? b : a;
  const DiskRequestInfo& earlier = a_first ? a : b;
  EXPECT_GE(later.started_at, earlier.completed_at);
  EXPECT_GT(later.queue_latency(), 0u);
}

TEST(SimDisk, ObserverSeesEveryRequest) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  int observed = 0;
  disk.SetRequestObserver([&observed](const DiskRequestInfo&) { ++observed; });
  std::vector<DiskRequestInfo> infos;
  k.Spawn("r", TwoSequentialReads(k, disk, &infos));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(observed, 2);
  EXPECT_EQ(disk.requests_completed(), 2u);
}

TEST(SimDisk, AsyncWriteCompletesWithoutBlockingThreads) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  bool completed = false;
  disk.Submit(DiskOp::kWrite, 10'000, 16,
              [&completed](const DiskRequestInfo& info) {
                completed = true;
                EXPECT_EQ(info.op, DiskOp::kWrite);
                EXPECT_GT(info.service_latency(), 0u);
              });
  k.RunFor(Cycles{1} << 30);
  EXPECT_TRUE(completed);
}

TEST(SimDisk, DropCacheForcesMechanicalAgain) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  std::vector<DiskRequestInfo> first;
  k.Spawn("r1", TwoSequentialReads(k, disk, &first));
  k.RunUntilThreadsFinish();
  EXPECT_TRUE(first[1].cache_hit);
  disk.DropCache();
  // Note: a fresh kernel cannot reuse the old disk (head position is kept,
  // but threads finished); reuse the same kernel with a new thread.
  std::vector<DiskRequestInfo> second;
  k.Spawn("r2", TwoSequentialReads(k, disk, &second));
  k.RunUntilThreadsFinish();
  EXPECT_FALSE(second[0].cache_hit);
}

TEST(SimDisk, ElevatorServesUpwardSweepFirst) {
  Kernel k(QuietConfig());
  DiskConfig cfg;
  cfg.sched = DiskSchedPolicy::kElevator;
  SimDisk disk(&k, cfg);
  // Park the head high by reading there first, then queue requests on
  // both sides while the disk is busy.
  std::vector<std::uint64_t> service_order;
  auto track = [&service_order](const osim::DiskRequestInfo& info) {
    service_order.push_back(info.lba);
  };
  disk.Submit(DiskOp::kRead, 2'000'000, 8, track);  // Head -> 2'000'008.
  disk.Submit(DiskOp::kRead, 100'000, 8, track);    // Below the head.
  disk.Submit(DiskOp::kRead, 3'000'000, 8, track);  // Above the head.
  disk.Submit(DiskOp::kRead, 2'500'000, 8, track);  // Above, closer.
  k.RunFor(Cycles{1} << 34);
  // C-LOOK: finish 2.0M, then sweep up (2.5M, 3.0M), then wrap to 100k.
  ASSERT_EQ(service_order.size(), 4u);
  EXPECT_EQ(service_order[0], 2'000'000u);
  EXPECT_EQ(service_order[1], 2'500'000u);
  EXPECT_EQ(service_order[2], 3'000'000u);
  EXPECT_EQ(service_order[3], 100'000u);
}

TEST(SimDisk, FifoKeepsArrivalOrder) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);  // Default FIFO.
  std::vector<std::uint64_t> service_order;
  auto track = [&service_order](const osim::DiskRequestInfo& info) {
    service_order.push_back(info.lba);
  };
  disk.Submit(DiskOp::kRead, 2'000'000, 8, track);
  disk.Submit(DiskOp::kRead, 100'000, 8, track);
  disk.Submit(DiskOp::kRead, 3'000'000, 8, track);
  k.RunFor(Cycles{1} << 34);
  EXPECT_EQ(service_order,
            (std::vector<std::uint64_t>{2'000'000, 100'000, 3'000'000}));
}

TEST(SimDisk, ElevatorReducesTotalSeekTimeOnScatteredLoad) {
  auto run = [](DiskSchedPolicy policy) {
    Kernel k(QuietConfig());
    DiskConfig cfg;
    cfg.sched = policy;
    SimDisk disk(&k, cfg);
    Cycles batch_done = 0;
    disk.SetRequestObserver([&batch_done, &k](const osim::DiskRequestInfo&) {
      batch_done = k.now();
    });
    // A scattered batch submitted at once.
    std::uint64_t lba = 12345;
    for (int i = 0; i < 64; ++i) {
      lba = (lba * 1103515245 + 12345) % (cfg.num_blocks - 8);
      disk.Submit(DiskOp::kRead, lba, 8, nullptr);
    }
    k.RunFor(Cycles{1} << 36);
    EXPECT_EQ(disk.requests_completed(), 64u);
    return batch_done;
  };
  const Cycles fifo = run(DiskSchedPolicy::kFifo);
  const Cycles elevator = run(DiskSchedPolicy::kElevator);
  EXPECT_LT(elevator, fifo);  // The sweep amortizes seeks.
}

TEST(SimDisk, RejectsOutOfRangeRequests) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  EXPECT_THROW(disk.Submit(DiskOp::kRead, disk.config().num_blocks, 1, nullptr),
               std::out_of_range);
  EXPECT_THROW(disk.Submit(DiskOp::kRead, 0, 0, nullptr), std::out_of_range);
}

TEST(SimDisk, CacheEvictsOldRunsAtCapacity) {
  Kernel k(QuietConfig());
  DiskConfig cfg;
  cfg.cache_blocks = 128;
  cfg.readahead_blocks = 64;
  SimDisk disk(&k, cfg);
  auto reader = [](Kernel& kk, SimDisk& d) -> Task<void> {
    // Touch three distinct segments: the first must be evicted.
    (void)co_await d.SyncRead(0, 8);
    (void)co_await d.SyncRead(100'000, 8);
    (void)co_await d.SyncRead(200'000, 8);
    const DiskRequestInfo again = co_await d.SyncRead(0, 8);
    EXPECT_FALSE(again.cache_hit);
    (void)kk;
  };
  k.Spawn("r", reader(k, disk));
  k.RunUntilThreadsFinish();
}

}  // namespace
}  // namespace osim
