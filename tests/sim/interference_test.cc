// The interference channel: subscription-order determinism, idempotent
// subscribe/unsubscribe, stable kind names, and -- the refactor's core
// claim -- that attaching an observer does not perturb the simulation.

#include "src/sim/interference.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/kernel.h"

namespace osim {
namespace {

struct RecordingSubscriber : InterferenceSubscriber {
  RecordingSubscriber(std::string tag, std::vector<std::string>* log)
      : tag(std::move(tag)), log(log) {}
  void OnInterference(const InterferenceEvent& event) override {
    log->push_back(tag + ":" + InterferenceKindName(event.kind) + "@" +
                   std::to_string(event.now));
    events.push_back(event);
  }
  std::string tag;
  std::vector<std::string>* log;
  std::vector<InterferenceEvent> events;
};

// Context-free emits (Park/Preempt/TimerTicks) need no Bind, so a bare
// channel exercises the fan-out machinery in isolation.
void EmitThree(InterferenceChannel& channel) {
  channel.Park(7, osprof::kLayerLockWait, 50);
  channel.Preempt(7, 0, 100);
  channel.TimerTicks(7, 3, 30, 200);
}

TEST(InterferenceChannel, DeliversInSubscriptionOrder) {
  InterferenceChannel ab;
  std::vector<std::string> log_ab;
  RecordingSubscriber a("A", &log_ab);
  RecordingSubscriber b("B", &log_ab);
  ab.Subscribe(&a);
  ab.Subscribe(&b);
  EmitThree(ab);
  EXPECT_EQ(log_ab, (std::vector<std::string>{
                        "A:park@50", "B:park@50", "A:preempt@100",
                        "B:preempt@100", "A:timer_tick@200",
                        "B:timer_tick@200"}));

  InterferenceChannel ba;
  std::vector<std::string> log_ba;
  RecordingSubscriber a2("A", &log_ba);
  RecordingSubscriber b2("B", &log_ba);
  ba.Subscribe(&b2);
  ba.Subscribe(&a2);
  EmitThree(ba);
  EXPECT_EQ(log_ba, (std::vector<std::string>{
                        "B:park@50", "A:park@50", "B:preempt@100",
                        "A:preempt@100", "B:timer_tick@200",
                        "A:timer_tick@200"}));

  // Only the interleaving depends on subscription order; every subscriber
  // observes the identical event sequence either way.
  ASSERT_EQ(a.events.size(), a2.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, a2.events[i].kind) << i;
    EXPECT_EQ(a.events[i].now, a2.events[i].now) << i;
    EXPECT_EQ(a.events[i].thread_id, a2.events[i].thread_id) << i;
    EXPECT_EQ(a.events[i].cycles, a2.events[i].cycles) << i;
    EXPECT_EQ(a.events[i].count, a2.events[i].count) << i;
  }
}

TEST(InterferenceChannel, SubscribeIsIdempotentAndUnsubscribeRemoves) {
  InterferenceChannel channel;
  std::vector<std::string> log;
  RecordingSubscriber a("A", &log);
  EXPECT_FALSE(channel.has_subscribers());
  channel.Subscribe(&a);
  channel.Subscribe(&a);  // Idempotent: no double delivery.
  EXPECT_TRUE(channel.has_subscribers());
  channel.Preempt(1, 0, 10);
  EXPECT_EQ(log.size(), 1u);
  channel.Unsubscribe(&a);
  EXPECT_FALSE(channel.has_subscribers());
  channel.Preempt(1, 0, 20);
  EXPECT_EQ(log.size(), 1u);
  channel.Unsubscribe(&a);  // Removing twice is harmless.
}

TEST(InterferenceChannel, KindNamesAreStable) {
  EXPECT_STREQ(InterferenceKindName(InterferenceKind::kPark), "park");
  EXPECT_STREQ(InterferenceKindName(InterferenceKind::kWakeup), "wakeup");
  EXPECT_STREQ(InterferenceKindName(InterferenceKind::kDispatch), "dispatch");
  EXPECT_STREQ(InterferenceKindName(InterferenceKind::kMigrate), "migrate");
  EXPECT_STREQ(InterferenceKindName(InterferenceKind::kPreempt), "preempt");
  EXPECT_STREQ(InterferenceKindName(InterferenceKind::kTimerTick),
               "timer_tick");
  EXPECT_STREQ(InterferenceKindName(InterferenceKind::kLockHandoff),
               "lock_handoff");
}

// A subscriber with a programmable callback, for the mutation-during-
// publish contract below.
struct HookSubscriber : InterferenceSubscriber {
  explicit HookSubscriber(std::string tag, std::vector<std::string>* log)
      : tag(std::move(tag)), log(log) {}
  void OnInterference(const InterferenceEvent& event) override {
    log->push_back(tag + "@" + std::to_string(event.now));
    if (hook) {
      hook(event);
    }
  }
  std::string tag;
  std::vector<std::string>* log;
  std::function<void(const InterferenceEvent&)> hook;
};

// The documented mutation-during-publish contract (interference.h):
// unsubscribing from inside a callback -- yourself or a peer -- takes
// effect immediately and never disturbs delivery to the survivors.
TEST(InterferenceChannel, UnsubscribeSelfDuringPublishIsImmediate) {
  InterferenceChannel channel;
  std::vector<std::string> log;
  HookSubscriber a("A", &log);
  HookSubscriber b("B", &log);
  channel.Subscribe(&a);
  channel.Subscribe(&b);
  a.hook = [&](const InterferenceEvent&) { channel.Unsubscribe(&a); };
  channel.Preempt(1, 0, 10);  // A sees it (and drops out), B sees it.
  channel.Preempt(1, 0, 20);  // Only B.
  EXPECT_EQ(log, (std::vector<std::string>{"A@10", "B@10", "B@20"}));
  EXPECT_TRUE(channel.has_subscribers());
}

TEST(InterferenceChannel, UnsubscribePeerDuringPublishSkipsCurrentEvent) {
  InterferenceChannel channel;
  std::vector<std::string> log;
  HookSubscriber a("A", &log);
  HookSubscriber b("B", &log);
  channel.Subscribe(&a);
  channel.Subscribe(&b);
  // A removes B before B's slot is reached: B must not see the in-flight
  // event, and the tombstone must not disturb later delivery.
  a.hook = [&](const InterferenceEvent&) { channel.Unsubscribe(&b); };
  channel.Preempt(1, 0, 10);
  EXPECT_EQ(log, (std::vector<std::string>{"A@10"}));
  a.hook = nullptr;
  channel.Preempt(1, 0, 20);  // Compacted: A alone, no null slots.
  EXPECT_EQ(log, (std::vector<std::string>{"A@10", "A@20"}));
}

TEST(InterferenceChannel, SubscribeDuringPublishMissesCurrentEvent) {
  InterferenceChannel channel;
  std::vector<std::string> log;
  HookSubscriber a("A", &log);
  HookSubscriber c("C", &log);
  channel.Subscribe(&a);
  // A adds C mid-publish: the fan-out bound is the subscriber count at
  // entry, so C first hears the *next* event.
  a.hook = [&](const InterferenceEvent&) { channel.Subscribe(&c); };
  channel.Preempt(1, 0, 10);
  EXPECT_EQ(log, (std::vector<std::string>{"A@10"}));
  a.hook = nullptr;
  channel.Preempt(1, 0, 20);
  EXPECT_EQ(log, (std::vector<std::string>{"A@10", "A@20", "C@20"}));
}

TEST(InterferenceChannel, NestedMutationsCompactOnlyAtOutermostReturn) {
  InterferenceChannel channel;
  std::vector<std::string> log;
  HookSubscriber a("A", &log);
  HookSubscriber b("B", &log);
  HookSubscriber c("C", &log);
  channel.Subscribe(&a);
  channel.Subscribe(&b);
  channel.Subscribe(&c);
  // A's callback publishes a nested event and unsubscribes C from inside
  // it; the outer fan-out must still skip C's tombstone cleanly.
  a.hook = [&](const InterferenceEvent& event) {
    if (event.now == 10) {
      b.hook = [&](const InterferenceEvent& inner) {
        if (inner.now == 15) {
          channel.Unsubscribe(&c);
        }
      };
      channel.Preempt(2, 0, 15);
    }
  };
  channel.Preempt(1, 0, 10);
  // Outer @10 reaches A; A nests @15 to A, B (B removes C), back out the
  // outer @10 reaches B but no longer C.
  EXPECT_EQ(log, (std::vector<std::string>{"A@10", "A@15", "B@15", "B@10"}));
  a.hook = nullptr;
  b.hook = nullptr;
  channel.Preempt(1, 0, 30);
  EXPECT_EQ(log, (std::vector<std::string>{"A@10", "A@15", "B@15", "B@10",
                                           "A@30", "B@30"}));
}

Task<void> BurnLoop(Kernel& k, int iterations, Cycles per_iter) {
  for (int i = 0; i < iterations; ++i) {
    co_await k.Cpu(per_iter);
  }
}

KernelConfig ContendedConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 1;
  cfg.quantum = 1'000;
  cfg.seed = 9;
  return cfg;
}

// Publishing consumes no simulated time, so a run with an observer
// attached must replay the bare run event for event: same end time, same
// preemption count -- and the observer's preempt tally must equal the
// kernel's own counter.
TEST(InterferenceChannel, ObserverDoesNotPerturbTheSimulation) {
  Kernel bare(ContendedConfig());
  bare.Spawn("a", BurnLoop(bare, 40, 100));
  bare.Spawn("b", BurnLoop(bare, 40, 100));
  bare.RunUntilThreadsFinish();
  const Cycles bare_end = bare.now();
  const std::uint64_t bare_preemptions = bare.total_forced_preemptions();
  EXPECT_GT(bare_preemptions, 0u);

  Kernel observed(ContendedConfig());
  std::vector<std::string> log;
  RecordingSubscriber spy("S", &log);
  observed.channel().Subscribe(&spy);
  observed.Spawn("a", BurnLoop(observed, 40, 100));
  observed.Spawn("b", BurnLoop(observed, 40, 100));
  observed.RunUntilThreadsFinish();

  EXPECT_EQ(observed.now(), bare_end);
  EXPECT_EQ(observed.total_forced_preemptions(), bare_preemptions);
  std::uint64_t preempts_seen = 0;
  std::uint64_t dispatches_seen = 0;
  for (const InterferenceEvent& event : spy.events) {
    preempts_seen += event.kind == InterferenceKind::kPreempt ? 1 : 0;
    dispatches_seen += event.kind == InterferenceKind::kDispatch ? 1 : 0;
  }
  EXPECT_EQ(preempts_seen, bare_preemptions);
  // Every preemption re-dispatches the victim, plus each thread's first
  // dispatch: the channel saw the scheduler's full decision stream.
  EXPECT_GE(dispatches_seen, preempts_seen + 2);
  observed.channel().Unsubscribe(&spy);
}

}  // namespace
}  // namespace osim
