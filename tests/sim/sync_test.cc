#include "src/sim/sync.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/histogram.h"

namespace osim {
namespace {

KernelConfig QuietConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 2;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  cfg.quantum = 1'000'000'000;
  return cfg;
}

Task<void> CriticalSection(Kernel& k, SimSemaphore& sem, Cycles hold,
                           std::vector<int>* log, int id) {
  co_await sem.Acquire();
  log->push_back(id);
  co_await k.Cpu(hold);
  sem.Release();
}

TEST(SimSemaphore, MutualExclusionSerializesHolders) {
  Kernel k(QuietConfig());
  SimSemaphore sem(&k, 1, "i_sem");
  std::vector<int> log;
  k.Spawn("a", CriticalSection(k, sem, 1000, &log, 1));
  k.Spawn("b", CriticalSection(k, sem, 1000, &log, 2));
  k.Spawn("c", CriticalSection(k, sem, 1000, &log, 3));
  k.RunUntilThreadsFinish();
  // Three 1000-cycle critical sections on 2 CPUs: still serialized.
  EXPECT_EQ(k.now(), 3000u);
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));  // FIFO handoff.
  EXPECT_EQ(sem.acquisitions(), 3u);
  EXPECT_EQ(sem.contended_acquisitions(), 2u);
  EXPECT_EQ(sem.total_wait_time(), 1000u + 2000u);
}

TEST(SimSemaphore, CountAboveOneAdmitsConcurrency) {
  Kernel k(QuietConfig());
  SimSemaphore sem(&k, 2);
  std::vector<int> log;
  k.Spawn("a", CriticalSection(k, sem, 1000, &log, 1));
  k.Spawn("b", CriticalSection(k, sem, 1000, &log, 2));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(k.now(), 1000u);  // Both ran concurrently on the 2 CPUs.
  EXPECT_EQ(sem.contended_acquisitions(), 0u);
}

TEST(SimSemaphore, TryAcquireNeverBlocks) {
  Kernel k(QuietConfig());
  SimSemaphore sem(&k, 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

TEST(SimSemaphore, WaitTimeChargedToThreadStats) {
  Kernel k(QuietConfig());
  SimSemaphore sem(&k, 1);
  std::vector<int> log;
  SimThread* a = k.Spawn("a", CriticalSection(k, sem, 5000, &log, 1));
  SimThread* b = k.Spawn("b", CriticalSection(k, sem, 0, &log, 2));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(a->sem_wait_time(), 0u);
  EXPECT_EQ(b->sem_wait_time(), 5000u);
}

Task<void> ScopedHolder(Kernel& k, SimSemaphore& sem, Cycles hold) {
  ScopedSemaphore guard(&sem);
  co_await guard.Lock();
  co_await k.Cpu(hold);
  // Released by the guard destructor at coroutine end.
}

TEST(ScopedSemaphore, ReleasesOnScopeExit) {
  Kernel k(QuietConfig());
  SimSemaphore sem(&k, 1);
  std::vector<int> log;
  k.Spawn("a", ScopedHolder(k, sem, 1000));
  k.Spawn("b", CriticalSection(k, sem, 0, &log, 2));
  k.RunUntilThreadsFinish();  // Deadlocks (throws) if the guard leaks.
  EXPECT_EQ(sem.count(), 1);
}

Task<void> SpinUser(Kernel& k, SimSpinlock& lock, Cycles hold) {
  co_await lock.Lock();
  co_await k.Cpu(hold);
  lock.Unlock();
}

TEST(SimSpinlock, ContendedWaiterBurnsCpu) {
  Kernel k(QuietConfig());
  SimSpinlock lock(&k);
  SimThread* a = k.Spawn("a", SpinUser(k, lock, 10'000));
  SimThread* b = k.Spawn("b", SpinUser(k, lock, 100));
  k.RunUntilThreadsFinish();
  // b spun for ~10'000 cycles while a held the lock; spinning burns CPU.
  EXPECT_EQ(b->spin_wait_time(), 10'000u);
  EXPECT_GE(b->cpu_time(), 10'100u);
  EXPECT_EQ(a->spin_wait_time(), 0u);
  EXPECT_EQ(lock.contended_acquisitions(), 1u);
  EXPECT_EQ(lock.total_spin_time(), 10'000u);
  EXPECT_EQ(k.now(), 10'100u);
}

TEST(SimSpinlock, UncontendedLockIsFree) {
  Kernel k(QuietConfig());
  SimSpinlock lock(&k);
  k.Spawn("a", SpinUser(k, lock, 100));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(lock.acquisitions(), 1u);
  EXPECT_EQ(lock.contended_acquisitions(), 0u);
  EXPECT_EQ(k.now(), 100u);
}

TEST(SimSpinlock, UnlockingFreeLockThrows) {
  Kernel k(QuietConfig());
  SimSpinlock lock(&k);
  EXPECT_THROW(lock.Unlock(), std::logic_error);
}

Task<void> FifoSpinners(Kernel& k, SimSpinlock& lock, std::vector<int>* order,
                        int id) {
  co_await k.Cpu(static_cast<Cycles>(id));  // Stagger arrival.
  co_await lock.Lock();
  order->push_back(id);
  co_await k.Cpu(1000);
  lock.Unlock();
}

TEST(SimSpinlock, HandoffIsFifo) {
  KernelConfig cfg = QuietConfig();
  cfg.num_cpus = 4;
  Kernel k(cfg);
  SimSpinlock lock(&k);
  std::vector<int> order;
  for (int id = 1; id <= 4; ++id) {
    k.Spawn("t" + std::to_string(id), FifoSpinners(k, lock, &order, id));
  }
  k.RunUntilThreadsFinish();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

Task<void> Consumer(Kernel& k, WaitQueue& wq, const bool& ready, int* observed) {
  while (!ready) {
    co_await wq.Wait();
  }
  *observed = 1;
  co_await k.Cpu(1);
}

Task<void> Producer(Kernel& k, WaitQueue& wq, bool& ready) {
  co_await k.Sleep(5000);
  ready = true;
  wq.WakeAll();
}

TEST(WaitQueue, WakeAllReleasesWaiters) {
  Kernel k(QuietConfig());
  WaitQueue wq(&k);
  bool ready = false;
  int observed = 0;
  k.Spawn("consumer", Consumer(k, wq, ready, &observed));
  k.Spawn("producer", Producer(k, wq, ready));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(observed, 1);
  EXPECT_GE(k.now(), 5000u);
}

TEST(WaitQueue, WakeOneReleasesOneWaiter) {
  KernelConfig cfg = QuietConfig();
  cfg.num_cpus = 4;
  Kernel k(cfg);
  WaitQueue wq(&k);
  // Spawn two waiters that exit after one wait; wake one, then the other,
  // asserting the intermediate state.
  int done = 0;
  auto waiter = [](Kernel& kk, WaitQueue& q, int* d) -> Task<void> {
    co_await q.Wait();
    ++*d;
    co_await kk.Cpu(1);
  };
  k.Spawn("w1", waiter(k, wq, &done));
  k.Spawn("w2", waiter(k, wq, &done));
  k.RunFor(100);
  EXPECT_EQ(wq.waiters(), 2);
  wq.WakeOne();
  k.RunFor(100);
  EXPECT_EQ(done, 1);
  wq.WakeOne();
  k.RunFor(100);
  EXPECT_EQ(done, 2);
}

// The Figure 1 scenario in miniature: concurrent clone-like operations
// contending on a sleeping lock produce a second latency mode.
Task<void> CloneLoop(Kernel& k, SimSemaphore& proc_sem, osprof::Histogram* h,
                     int iterations) {
  for (int i = 0; i < iterations; ++i) {
    const Cycles start = k.ReadTsc();
    co_await k.Cpu(4000);  // Lock-free part of clone.
    co_await proc_sem.Acquire();
    co_await k.Cpu(4000);  // Critical section.
    proc_sem.Release();
    h->Add(k.ReadTsc() - start);
    co_await k.CpuUser(1000);
  }
}

TEST(SimSemaphore, ContentionCreatesSecondLatencyMode) {
  // One process: a single peak at ~8000 cycles (bucket 12).
  {
    Kernel k(QuietConfig());
    SimSemaphore sem(&k, 1);
    osprof::Histogram h(1);
    k.Spawn("p0", CloneLoop(k, sem, &h, 200));
    k.RunUntilThreadsFinish();
    EXPECT_EQ(h.bucket(12), 200u);
    EXPECT_EQ(h.TotalOperations(), 200u);
  }
  // Four processes on two CPUs: a contended mode appears to the right.
  {
    Kernel k(QuietConfig());
    SimSemaphore sem(&k, 1);
    osprof::Histogram h(1);
    for (int p = 0; p < 4; ++p) {
      k.Spawn("p" + std::to_string(p), CloneLoop(k, sem, &h, 200));
    }
    k.RunUntilThreadsFinish();
    EXPECT_GT(sem.contended_acquisitions(), 0u);
    std::uint64_t right_of_base = 0;
    for (int b = 13; b < h.num_buckets(); ++b) {
      right_of_base += h.bucket(b);
    }
    EXPECT_GT(right_of_base, 0u);  // The contention mode.
    EXPECT_GT(h.bucket(12), 0u);   // The lock-free mode survives.
  }
}

}  // namespace
}  // namespace osim
