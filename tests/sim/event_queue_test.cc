#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace osim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.At(30, [&] { order.push_back(3); });
  q.At(10, [&] { order.push_back(1); });
  q.At(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTimestampRunsInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.At(5, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, EventsScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) {
      q.After(10, chain);
    }
  };
  q.After(10, chain);
  q.RunAll();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, NowSchedulesAfterPendingSameTimeEvents) {
  EventQueue q;
  std::vector<int> order;
  q.At(10, [&] {
    order.push_back(1);
    q.Now([&] { order.push_back(3); });
  });
  q.At(10, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue q;
  int fired = 0;
  q.At(10, [&] { ++fired; });
  q.At(100, [&] { ++fired; });
  const std::uint64_t n = q.RunUntil(50);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 50u);
  q.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilIncludesBoundaryEvents) {
  EventQueue q;
  int fired = 0;
  q.At(50, [&] { ++fired; });
  q.RunUntil(50);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, SchedulingIntoThePastThrows) {
  EventQueue q;
  q.At(100, [] {});
  q.RunAll();
  EXPECT_THROW(q.At(50, [] {}), std::logic_error);
}

// The calendar queue must be observationally identical to the
// std::priority_queue scheduler it replaced: ascending `when`, ties in
// ascending insertion order.  A reference model with exactly the old
// comparator runs in lockstep over a million randomly seeded events --
// timestamps drawn across twenty binary orders of magnitude (so day
// buckets see dense ties, sparse far-future years, and everything
// between), plus follow-up events scheduled mid-run the way simulated
// threads schedule wakeups.
TEST(EventQueue, MatchesReferencePriorityQueueOnRandomLoad) {
  struct Ref {
    Cycles when;
    std::uint64_t seq;
  };
  struct LaterFirst {
    bool operator()(const Ref& a, const Ref& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };
  std::priority_queue<Ref, std::vector<Ref>, LaterFirst> ref;

  constexpr int kInitialEvents = 1'000'000;
  constexpr int kFollowUps = 200'000;

  EventQueue q;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;  // Deterministic LCG.
  const auto next_random = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  std::uint64_t seq = 0;
  std::uint64_t executed = 0;
  std::uint64_t mismatches = 0;
  int follow_ups_left = kFollowUps;

  std::function<void(Cycles)> schedule = [&](Cycles when) {
    const std::uint64_t id = seq++;
    ref.push(Ref{when, id});
    q.At(when, [&, when, id] {
      if (ref.empty() || ref.top().when != when || ref.top().seq != id) {
        ++mismatches;
      } else {
        ref.pop();
      }
      ++executed;
      if (follow_ups_left > 0 && (id & 3u) == 0) {
        --follow_ups_left;
        // Mixed-magnitude gap, sometimes exactly zero: a same-timestamp
        // follow-up must still run after everything already queued for
        // `now`.
        const Cycles gap =
            (id & 31u) == 0
                ? 0
                : next_random() & ((1ull << (8 + id % 21)) - 1);
        schedule(q.now() + gap);
      }
    });
  };

  // Times come from a random walk of mixed-magnitude gaps: zero gaps
  // make exact ties, small gaps make dense micro-bursts, 2^20-cycle
  // jumps make sparse stretches -- the local-density shape a simulated
  // kernel produces, at every magnitude.  The walk is then inserted in
  // LCG-shuffled order so arrival order and time order are unrelated.
  std::vector<Cycles> times(kInitialEvents);
  Cycles t = 0;
  for (int i = 0; i < kInitialEvents; ++i) {
    t += next_random() & ((Cycles{1} << (i % 21)) - 1);
    times[static_cast<std::size_t>(i)] = t;
  }
  for (std::size_t i = times.size() - 1; i > 0; --i) {
    std::swap(times[i], times[next_random() % (i + 1)]);
  }
  for (const Cycles when : times) {
    schedule(when);
  }
  q.RunAll();

  EXPECT_EQ(executed, static_cast<std::uint64_t>(kInitialEvents) + kFollowUps);
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(mismatches, 0u);
}

TEST(EventQueue, MillionSameTimestampEventsExtractLinearly) {
  // Every event hashes to one day no matter the calendar width, the
  // degenerate load PR 7 flagged: scan-on-extract rescanned the full
  // million-entry day per event (~10^12 comparisons, hours).  The bucket
  // flips to a min-heap past kHeapThreshold, so this must finish well
  // inside the quick-tier timeout -- while preserving exact insertion
  // order across the pileup and correct ordering for events scheduled
  // after it.
  constexpr std::uint64_t kEvents = 1'000'000;
  constexpr Cycles kWhen = 123'456;

  EventQueue q;
  std::uint64_t executed = 0;
  std::uint64_t out_of_order = 0;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    q.At(kWhen, [&executed, &out_of_order, i] {
      if (executed != i) {
        ++out_of_order;
      }
      ++executed;
    });
  }
  // A straggler after the pileup, in the same bucket's next year.
  bool straggler_ran = false;
  q.At(kWhen + (Cycles{1} << 40), [&] {
    straggler_ran = executed == kEvents;
  });
  q.RunAll();

  EXPECT_EQ(executed, kEvents);
  EXPECT_EQ(out_of_order, 0u);
  EXPECT_TRUE(straggler_ran);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.Step());
  q.At(1, [] {});
  EXPECT_TRUE(q.Step());
  EXPECT_FALSE(q.Step());
}

}  // namespace
}  // namespace osim
