#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace osim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.At(30, [&] { order.push_back(3); });
  q.At(10, [&] { order.push_back(1); });
  q.At(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTimestampRunsInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.At(5, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, EventsScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) {
      q.After(10, chain);
    }
  };
  q.After(10, chain);
  q.RunAll();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, NowSchedulesAfterPendingSameTimeEvents) {
  EventQueue q;
  std::vector<int> order;
  q.At(10, [&] {
    order.push_back(1);
    q.Now([&] { order.push_back(3); });
  });
  q.At(10, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue q;
  int fired = 0;
  q.At(10, [&] { ++fired; });
  q.At(100, [&] { ++fired; });
  const std::uint64_t n = q.RunUntil(50);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 50u);
  q.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilIncludesBoundaryEvents) {
  EventQueue q;
  int fired = 0;
  q.At(50, [&] { ++fired; });
  q.RunUntil(50);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, SchedulingIntoThePastThrows) {
  EventQueue q;
  q.At(100, [] {});
  q.RunAll();
  EXPECT_THROW(q.At(50, [] {}), std::logic_error);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.Step());
  q.At(1, [] {});
  EXPECT_TRUE(q.Step());
  EXPECT_FALSE(q.Step());
}

}  // namespace
}  // namespace osim
