#include "src/sim/kernel.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/histogram.h"
#include "src/sim/sync.h"

namespace osim {
namespace {

KernelConfig QuietConfig() {
  // No timer interrupts, free context switches: exact time arithmetic.
  KernelConfig cfg;
  cfg.num_cpus = 1;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  cfg.quantum = 1'000'000;
  return cfg;
}

Task<void> BurnCpu(Kernel& k, Cycles cycles) { co_await k.Cpu(cycles); }

TEST(Kernel, SingleBurstAdvancesTimeExactly) {
  Kernel k(QuietConfig());
  k.Spawn("t", BurnCpu(k, 500));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(k.now(), 500u);
  EXPECT_EQ(k.threads()[0]->cpu_time(), 500u);
  EXPECT_EQ(k.threads()[0]->state(), ThreadState::kFinished);
}

TEST(Kernel, ContextSwitchCostDelaysFirstDispatch) {
  KernelConfig cfg = QuietConfig();
  cfg.context_switch_cost = 100;
  Kernel k(cfg);
  k.Spawn("t", BurnCpu(k, 500));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(k.now(), 600u);
}

TEST(Kernel, TwoCpusRunThreadsInParallel) {
  KernelConfig cfg = QuietConfig();
  cfg.num_cpus = 2;
  Kernel k(cfg);
  k.Spawn("a", BurnCpu(k, 1000));
  k.Spawn("b", BurnCpu(k, 1000));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(k.now(), 1000u);  // Not 2000: true parallelism.
}

TEST(Kernel, OneCpuSerializesThreads) {
  Kernel k(QuietConfig());
  k.Spawn("a", BurnCpu(k, 1000));
  k.Spawn("b", BurnCpu(k, 1000));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(k.now(), 2000u);
}

Task<void> UserLoop(Kernel& k, int iterations, Cycles per_iter) {
  for (int i = 0; i < iterations; ++i) {
    co_await k.CpuUser(per_iter);
  }
}

TEST(Kernel, QuantumRoundRobinsCpuBoundThreads) {
  KernelConfig cfg = QuietConfig();
  cfg.quantum = 1000;
  Kernel k(cfg);
  SimThread* a = k.Spawn("a", UserLoop(k, 100, 100));
  SimThread* b = k.Spawn("b", UserLoop(k, 100, 100));
  k.RunUntilThreadsFinish();
  // Both threads get preempted repeatedly: 10k cycles each in 1k quanta.
  EXPECT_GT(a->forced_preemptions(), 5u);
  EXPECT_GT(b->forced_preemptions(), 5u);
  EXPECT_EQ(k.now(), 20'000u);
}

Task<void> OneKernelBurst(Kernel& k, Cycles user_before, Cycles kernel_burst) {
  co_await k.CpuUser(user_before);
  co_await k.Cpu(kernel_burst);
}

TEST(Kernel, KernelPreemptionConfigGatesForcedPreemptionInKernelMode) {
  for (const bool preemptive : {true, false}) {
    KernelConfig cfg = QuietConfig();
    cfg.quantum = 1000;
    cfg.kernel_preemption = preemptive;
    Kernel k(cfg);
    // Thread a: long kernel burst that exceeds the quantum.
    SimThread* a = k.Spawn("a", OneKernelBurst(k, 0, 10'000));
    // Thread b: competitor that keeps the run queue non-empty.
    k.Spawn("b", UserLoop(k, 20, 500));
    k.RunUntilThreadsFinish();
    if (preemptive) {
      EXPECT_GT(a->forced_preemptions(), 0u) << "preemptive kernel";
    } else {
      EXPECT_EQ(a->forced_preemptions(), 0u) << "non-preemptive kernel";
    }
  }
}

TEST(Kernel, NoPreemptionWhenRunQueueEmpty) {
  KernelConfig cfg = QuietConfig();
  cfg.quantum = 100;
  Kernel k(cfg);
  SimThread* a = k.Spawn("a", BurnCpu(k, 100'000));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(a->forced_preemptions(), 0u);
  EXPECT_EQ(k.now(), 100'000u);
}

TEST(Kernel, TimerInterruptsStretchWallClock) {
  KernelConfig cfg = QuietConfig();
  cfg.timer_tick_period = 1000;
  cfg.timer_irq_cost = 50;
  Kernel k(cfg);
  k.Spawn("t", BurnCpu(k, 10'000));
  k.RunUntilThreadsFinish();
  // 10 ticks land inside the burst (at 1000, 2000, ... 10000); the last
  // one may or may not be inside depending on stretching; allow 10-11.
  EXPECT_GE(k.now(), 10'000u + 10 * 50u);
  EXPECT_LE(k.now(), 10'000u + 11 * 50u);
  EXPECT_GE(k.timer_interrupts_delivered(), 10u);
  // CPU-time accounting excludes interrupt service time.
  EXPECT_EQ(k.threads()[0]->cpu_time(), 10'000u);
}

Task<void> SleepThenBurn(Kernel& k, Cycles sleep, Cycles burn) {
  co_await k.Sleep(sleep);
  co_await k.Cpu(burn);
}

TEST(Kernel, SleepBlocksWithoutConsumingCpu) {
  Kernel k(QuietConfig());
  k.Spawn("sleeper", SleepThenBurn(k, 10'000, 100));
  k.Spawn("worker", BurnCpu(k, 5'000));
  k.RunUntilThreadsFinish();
  // The worker runs during the sleeper's sleep; total = 10'000 + 100.
  EXPECT_EQ(k.now(), 10'100u);
  EXPECT_EQ(k.threads()[0]->cpu_time(), 100u);
}

Task<void> YieldingLoop(Kernel& k, std::vector<int>* log, int id, int n) {
  for (int i = 0; i < n; ++i) {
    log->push_back(id);
    co_await k.CpuUser(10);
    co_await k.Yield();
  }
}

TEST(Kernel, YieldAlternatesThreads) {
  Kernel k(QuietConfig());
  std::vector<int> log;
  k.Spawn("a", YieldingLoop(k, &log, 1, 3));
  k.Spawn("b", YieldingLoop(k, &log, 2, 3));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 1, 2, 1, 2}));
  EXPECT_EQ(k.threads()[0]->voluntary_switches(), 3u);
}

Task<void> RecordTsc(Kernel& k, std::vector<Cycles>* out) {
  out->push_back(k.ReadTsc());
  co_await k.Cpu(100);
  out->push_back(k.ReadTsc());
}

TEST(Kernel, TscSkewIsPerCpu) {
  KernelConfig cfg = QuietConfig();
  cfg.num_cpus = 2;
  cfg.tsc_skew = {0, 34};
  Kernel k(cfg);
  std::vector<Cycles> a;
  std::vector<Cycles> b;
  k.Spawn("a", RecordTsc(k, &a));  // Lands on CPU 0.
  k.Spawn("b", RecordTsc(k, &b));  // Lands on CPU 1.
  k.RunUntilThreadsFinish();
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(a[0], 0u);
  EXPECT_EQ(b[0], 34u);  // Skewed counter.
  EXPECT_EQ(a[1] - a[0], 100u);
  EXPECT_EQ(b[1] - b[0], 100u);  // Skew cancels when staying on one CPU.
}

Task<void> WaitsForever(Kernel& k) {
  WaitQueue never(&k);
  co_await never.Wait();
}

TEST(Kernel, DeadlockIsDetected) {
  Kernel k(QuietConfig());
  k.Spawn("stuck", WaitsForever(k));
  EXPECT_THROW(k.RunUntilThreadsFinish(), std::logic_error);
}

Task<void> ThrowingThread(Kernel& k) {
  co_await k.Cpu(10);
  throw std::runtime_error("scenario bug");
}

TEST(Kernel, ThreadExceptionsPropagateToDriver) {
  Kernel k(QuietConfig());
  k.Spawn("bad", ThrowingThread(k));
  EXPECT_THROW(k.RunUntilThreadsFinish(), std::runtime_error);
}

TEST(Kernel, RunForAdvancesIdleTime) {
  Kernel k(QuietConfig());
  k.RunFor(12'345);
  EXPECT_EQ(k.now(), 12'345u);
}

TEST(Kernel, ValidatesConfig) {
  KernelConfig cfg;
  cfg.num_cpus = 0;
  EXPECT_THROW(Kernel{cfg}, std::invalid_argument);
  KernelConfig cfg2;
  cfg2.quantum = 0;
  EXPECT_THROW(Kernel{cfg2}, std::invalid_argument);
}

// Paper Figure 3 in miniature: preempted zero-work requests surface near
// bucket log2(quantum).
Task<void> ZeroByteReadLoop(Kernel& k, osprof::Histogram* hist, int requests,
                            Cycles user_time, Cycles syscall_time) {
  for (int i = 0; i < requests; ++i) {
    co_await k.CpuUser(user_time);
    const Cycles start = k.ReadTsc();
    co_await k.Cpu(syscall_time);
    hist->Add(k.ReadTsc() - start);
  }
}

TEST(Kernel, PreemptedRequestsLandNearQuantumBucket) {
  KernelConfig cfg = QuietConfig();
  cfg.quantum = Cycles{1} << 16;
  cfg.kernel_preemption = true;
  Kernel k(cfg);
  osprof::Histogram h1(1);
  osprof::Histogram h2(1);
  k.Spawn("p1", ZeroByteReadLoop(k, &h1, 3000, 100, 100));
  k.Spawn("p2", ZeroByteReadLoop(k, &h2, 3000, 100, 100));
  k.RunUntilThreadsFinish();
  EXPECT_GT(k.total_forced_preemptions(), 0u);
  // Some requests must have been hit and carry ~quantum latency.
  std::uint64_t right_tail = 0;
  for (int b = 15; b <= 18; ++b) {
    right_tail += h1.bucket(b) + h2.bucket(b);
  }
  EXPECT_GT(right_tail, 0u);
}

}  // namespace
}  // namespace osim
