#include "src/sim/task.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

// AddressSanitizer's stack instrumentation defeats the symmetric-transfer
// tail call on GCC, so deep co_await chains genuinely recurse there.
#if defined(__SANITIZE_ADDRESS__)
#define OSPROF_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define OSPROF_ASAN 1
#endif
#endif

namespace osim {
namespace {

Task<int> ReturnsValue() { co_return 42; }

Task<int> AwaitsChild() {
  const int v = co_await ReturnsValue();
  co_return v + 1;
}

Task<int> DeepChain(int depth) {
  if (depth == 0) {
    co_return 0;
  }
  const int below = co_await DeepChain(depth - 1);
  co_return below + 1;
}

Task<void> SideEffect(std::vector<std::string>* log) {
  log->push_back("ran");
  co_return;
}

Task<int> Throws() {
  throw std::runtime_error("boom");
  co_return 0;  // Unreachable.
}

Task<int> AwaitsThrower() {
  const int v = co_await Throws();
  co_return v;
}

// Drives a task to completion synchronously (no kernel involved; tasks that
// only await other tasks never actually suspend externally).
template <typename T>
T Drive(Task<T> task) {
  task.handle().resume();
  EXPECT_TRUE(task.done());
  task.RethrowIfFailed();
  if constexpr (!std::is_void_v<T>) {
    return std::move(task.handle().promise().value);
  }
}

TEST(Task, IsLazyUntilResumed) {
  std::vector<std::string> log;
  Task<void> t = SideEffect(&log);
  EXPECT_TRUE(log.empty());
  EXPECT_FALSE(t.done());
  Drive(std::move(t));
  EXPECT_EQ(log.size(), 1u);
}

TEST(Task, ReturnsValueThroughPromise) { EXPECT_EQ(Drive(ReturnsValue()), 42); }

TEST(Task, NestedAwaitPropagatesValue) { EXPECT_EQ(Drive(AwaitsChild()), 43); }

TEST(Task, SymmetricTransferSurvivesDeepChains) {
  // 100k frames would overflow the native stack without symmetric
  // transfer; this is the property that lets simulated VFS stacks nest.
  // Under asan the tail call is gone (see OSPROF_ASAN above), so only the
  // plain build stresses the full depth.
#ifdef OSPROF_ASAN
  constexpr int kDepth = 1'000;
#else
  constexpr int kDepth = 100'000;
#endif
  EXPECT_EQ(Drive(DeepChain(kDepth)), kDepth);
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Task<int> t = AwaitsThrower();
  t.handle().resume();
  EXPECT_TRUE(t.done());
  EXPECT_THROW(t.RethrowIfFailed(), std::runtime_error);
}

TEST(Task, MoveTransfersOwnership) {
  Task<int> a = ReturnsValue();
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(Drive(std::move(b)), 42);
}

TEST(Task, DefaultConstructedIsDone) {
  Task<int> t;
  EXPECT_FALSE(t.valid());
  EXPECT_TRUE(t.done());
}

TEST(Task, DestroyingUnstartedTaskDoesNotLeakOrCrash) {
  std::vector<std::string> log;
  {
    Task<void> t = SideEffect(&log);
    (void)t;
  }
  EXPECT_TRUE(log.empty());
}

}  // namespace
}  // namespace osim
