// Cross-cutting invariants: determinism, accounting conservation, and
// metric properties that every module combination must preserve.

#include <gtest/gtest.h>

#include "src/core/compare.h"
#include "src/fs/ext2fs.h"
#include "src/net/cifs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/sim/rng.h"
#include "src/workloads/workloads.h"

namespace {

using osfs::Ext2SimFs;
using osim::Kernel;
using osim::KernelConfig;
using osim::SimDisk;

// Runs a mixed workload and returns the serialized profile set plus the
// final simulated time.
std::pair<std::string, osprof::Cycles> RunScenario(std::uint64_t seed) {
  KernelConfig kcfg;
  kcfg.num_cpus = 2;
  kcfg.seed = seed;
  Kernel kernel(kcfg);
  SimDisk disk(&kernel);
  Ext2SimFs fs(&kernel, &disk);
  osworkloads::TreeSpec spec;
  spec.top_dirs = 3;
  spec.files_per_dir = 8;
  osworkloads::BuildSourceTree(&fs, "/src", spec);
  fs.AddFile("/db", 8u << 20);
  osprofilers::SimProfiler prof(&kernel);
  fs.SetProfiler(&prof);
  osworkloads::GrepStats stats;
  kernel.Spawn("grep",
               osworkloads::GrepWorkload(&kernel, &fs, "/src", 0.5, &stats));
  kernel.Spawn("rand",
               osworkloads::RandomReadWorkload(&kernel, &fs, "/db", 150, 5));
  kernel.RunUntilThreadsFinish();
  return {prof.profiles().ToString(), kernel.now()};
}

TEST(Determinism, SameSeedSameProfilesBitForBit) {
  const auto first = RunScenario(42);
  const auto second = RunScenario(42);
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST(Determinism, DifferentSeedsDiffer) {
  const auto first = RunScenario(42);
  const auto second = RunScenario(43);
  EXPECT_NE(first.first, second.first);
}

TEST(Accounting, CpuTimeNeverExceedsWallTimesCpus) {
  KernelConfig kcfg;
  kcfg.num_cpus = 2;
  kcfg.seed = 9;
  Kernel kernel(kcfg);
  SimDisk disk(&kernel);
  Ext2SimFs fs(&kernel, &disk);
  osworkloads::TreeSpec spec;
  spec.top_dirs = 2;
  osworkloads::BuildSourceTree(&fs, "/src", spec);
  osworkloads::GrepStats g1;
  osworkloads::GrepStats g2;
  kernel.Spawn("g1", osworkloads::GrepWorkload(&kernel, &fs, "/src", 0.5, &g1));
  kernel.Spawn("g2", osworkloads::GrepWorkload(&kernel, &fs, "/src", 0.5, &g2));
  kernel.RunUntilThreadsFinish();
  osprof::Cycles total_cpu = 0;
  for (const auto& t : kernel.threads()) {
    total_cpu += t->cpu_time();
    EXPECT_EQ(t->cpu_time(), t->user_time() + t->system_time());
  }
  EXPECT_LE(total_cpu, kernel.now() * 2);
  EXPECT_GT(total_cpu, 0u);
}

TEST(Accounting, ProfiledLatencyCoversAllOperations) {
  // Checksum invariants hold for every profile after a busy run.
  KernelConfig kcfg;
  kcfg.seed = 3;
  Kernel kernel(kcfg);
  SimDisk disk(&kernel);
  Ext2SimFs fs(&kernel, &disk);
  fs.AddDir("/postmark");
  osprofilers::SimProfiler prof(&kernel);
  fs.SetProfiler(&prof);
  osworkloads::PostmarkConfig pcfg;
  pcfg.initial_files = 80;
  pcfg.transactions = 300;
  osworkloads::PostmarkStats stats;
  kernel.Spawn("pm", osworkloads::PostmarkWorkload(&kernel, &fs, pcfg, &stats));
  kernel.RunUntilThreadsFinish();
  EXPECT_TRUE(prof.profiles().CheckConsistency());
  EXPECT_GT(prof.profiles().TotalOperations(), 1'000u);
}

// EMD on normalized histograms is a pseudometric; spot-check the axioms
// on pseudo-random data.
class EmdMetricTest : public ::testing::TestWithParam<int> {};

osprof::Histogram RandomHistogram(osim::Rng* rng) {
  osprof::Histogram h(1);
  const int peaks = 1 + static_cast<int>(rng->Below(4));
  for (int p = 0; p < peaks; ++p) {
    h.set_bucket(5 + static_cast<int>(rng->Below(25)), 1 + rng->Below(10'000));
  }
  return h;
}

TEST_P(EmdMetricTest, SymmetryIdentityAndTriangle) {
  osim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const osprof::Histogram a = RandomHistogram(&rng);
  const osprof::Histogram b = RandomHistogram(&rng);
  const osprof::Histogram c = RandomHistogram(&rng);
  // Identity and symmetry.
  EXPECT_DOUBLE_EQ(osprof::EarthMoversWork(a, a), 0.0);
  EXPECT_DOUBLE_EQ(osprof::EarthMoversWork(a, b), osprof::EarthMoversWork(b, a));
  // Triangle inequality on the raw transport work.
  const double ab = osprof::EarthMoversWork(a, b);
  const double bc = osprof::EarthMoversWork(b, c);
  const double ac = osprof::EarthMoversWork(a, c);
  EXPECT_LE(ac, ab + bc + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmdMetricTest, ::testing::Range(0, 16));

// Serialization round-trips arbitrary histograms exactly.
class SerializationFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializationFuzzTest, RoundTripIsExact) {
  osim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  osprof::ProfileSet set(1 + static_cast<int>(rng.Below(3)));
  const int ops = 1 + static_cast<int>(rng.Below(6));
  for (int o = 0; o < ops; ++o) {
    const std::string name = "op" + std::to_string(o);
    const int samples = static_cast<int>(rng.Below(200));
    for (int s = 0; s < samples; ++s) {
      set.Add(name, rng.Next() >> (rng.Below(50)));
    }
  }
  const osprof::ProfileSet parsed = osprof::ProfileSet::ParseString(set.ToString());
  EXPECT_EQ(parsed.ToString(), set.ToString());
  EXPECT_TRUE(parsed.CheckConsistency());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationFuzzTest, ::testing::Range(0, 12));

TEST(Integration, CifsDeterministicAcrossRuns) {
  auto run = [] {
    KernelConfig kcfg;
    kcfg.num_cpus = 4;
    kcfg.seed = 5;
    Kernel kernel(kcfg);
    SimDisk disk(&kernel);
    Ext2SimFs server_fs(&kernel, &disk);
    server_fs.AddDir("/share");
    for (int i = 0; i < 120; ++i) {
      server_fs.AddFile("/share/f" + std::to_string(i), 3'000);
    }
    osnet::CifsMount mount(&kernel, &server_fs, osnet::CifsConfig{});
    osprofilers::SimProfiler prof(&kernel);
    mount.SetProfiler(&prof);
    osworkloads::GrepStats stats;
    kernel.Spawn("grep", osworkloads::GrepWorkload(&kernel, &mount, "/share",
                                                   0.5, &stats));
    kernel.RunUntilThreadsFinish();
    return prof.profiles().ToString();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
