// osprof_lint rule-by-rule tests against the seeded-violation fixture
// corpus in tests/lint/fixtures/, plus the self-check that the real tree
// lints clean.  Fixtures use the .src extension precisely so the
// directory walker (which lints .h/.cc/.cpp) never scans the seeded
// violations when CI lints tests/.

#include "src/lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/lint/lexer.h"

namespace oslint {
namespace {

std::string FixtureDir() {
  return std::string(OSPROF_SOURCE_DIR) + "/tests/lint/fixtures/";
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixtureDir() + name);
  EXPECT_TRUE(in) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<int> LinesOfRule(const std::vector<Finding>& findings,
                             const std::string& rule) {
  std::vector<int> lines;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, rule) << f.file << ":" << f.line << ": " << f.message;
    if (f.rule == rule) {
      lines.push_back(f.line);
    }
  }
  return lines;
}

// --- Lexer ----------------------------------------------------------------

TEST(LintLexer, SeparatesCommentsStringsAndIdentifiers) {
  const LexResult lexed = Lex(
      "int x = 1; // trailing rand()\n"
      "const char* s = \"rand()\";\n"
      "/* block\n   spans lines */ int y;\n");
  for (const Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "rand") << "banned name leaked from comment/string";
  }
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_EQ(lexed.comments[0].line, 1);
  EXPECT_EQ(lexed.comments[1].line, 3);
  EXPECT_EQ(lexed.comments[1].end_line, 4);
}

TEST(LintLexer, DirectivesAreWholeLineTokens) {
  const LexResult lexed = Lex("#include <mutex>\n#pragma once\nint x;\n");
  ASSERT_GE(lexed.tokens.size(), 2u);
  EXPECT_EQ(lexed.tokens[0].kind, TokKind::kDirective);
  EXPECT_EQ(lexed.tokens[0].text, "include <mutex>");
  EXPECT_EQ(lexed.tokens[1].kind, TokKind::kDirective);
  EXPECT_EQ(lexed.tokens[1].text, "pragma once");
}

TEST(LintLexer, RawStringsDoNotLeakContents) {
  const LexResult lexed = Lex("auto s = R\"(time( rand( )\"; int z;\n");
  for (const Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "time");
    EXPECT_NE(t.text, "rand");
  }
}

TEST(LintLexer, CrlfLineCommentsDropTheCarriageReturn) {
  const LexResult lexed =
      Lex("int x;  // osprof-lint: allow(locking)\r\nint y;\r\n");
  ASSERT_EQ(lexed.comments.size(), 1u);
  // The '\r' belongs to the line ending, not the comment text; a stray
  // trailing '\r' would break suppression parsing on CRLF sources.
  EXPECT_EQ(lexed.comments[0].text.back(), ')');
  EXPECT_EQ(lexed.comments[0].line, 1);
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_EQ(lexed.tokens.back().line, 2);
}

TEST(LintLexer, DirectiveContinuationsSpanLfAndCrlfLines) {
  const LexResult lf = Lex("#define ADD(a, b) \\\n  ((a) + (b))\nint x;\n");
  ASSERT_GE(lf.tokens.size(), 2u);
  EXPECT_EQ(lf.tokens[0].kind, TokKind::kDirective);
  EXPECT_EQ(lf.tokens[1].text, "int");
  EXPECT_EQ(lf.tokens[1].line, 3);

  const LexResult crlf =
      Lex("#define ADD(a, b) \\\r\n  ((a) + (b))\r\nint x;\r\n");
  ASSERT_GE(crlf.tokens.size(), 2u);
  EXPECT_EQ(crlf.tokens[0].kind, TokKind::kDirective);
  EXPECT_EQ(crlf.tokens[1].text, "int");
  EXPECT_EQ(crlf.tokens[1].line, 3);
}

// --- determinism ----------------------------------------------------------

TEST(LintRules, DeterminismFlagsWallClockAndRandomness) {
  const std::string src = ReadFixture("determinism_violation.src");
  const std::vector<Finding> findings = LintText("src/fs/bad.cc", src);
  EXPECT_EQ(LinesOfRule(findings, kRuleDeterminism),
            (std::vector<int>{9, 14, 18}));
}

TEST(LintRules, DeterminismAllowlistsRngAndClock) {
  const std::string src = ReadFixture("determinism_violation.src");
  LintConfig only_determinism;
  only_determinism.rules = {kRuleDeterminism};
  EXPECT_TRUE(LintText("src/core/clock.h", src, only_determinism).empty());
  EXPECT_TRUE(LintText("src/sim/rng.h", src, only_determinism).empty());
  EXPECT_TRUE(LintText("src/core/clock.cc", src, only_determinism).empty());
}

// --- probe-discipline -----------------------------------------------------

TEST(LintRules, ProbeDisciplineFlagsStringLiteralOpNames) {
  const std::string src = ReadFixture("probe_discipline_violation.src");
  const std::vector<Finding> findings = LintText("src/fs/bad.cc", src);
  EXPECT_EQ(LinesOfRule(findings, kRuleProbeDiscipline),
            (std::vector<int>{5, 6, 10, 14, 21}));
}

// The deprecated string shims are gone, and with them the tests/
// carve-out: the string-key subcheck applies tree-wide, so a test file
// gets exactly the findings a src/ file does.
TEST(LintRules, ProbeDisciplineAppliesToTests) {
  const std::string src = ReadFixture("probe_discipline_violation.src");
  const std::vector<Finding> findings = LintText("tests/profilers/bad.cc", src);
  EXPECT_EQ(LinesOfRule(findings, kRuleProbeDiscipline),
            (std::vector<int>{5, 6, 10, 14, 21}));
}

TEST(LintRules, ProbeDisciplineFlagsManualRequestContextFrames) {
  const std::string src = ReadFixture("request_context_violation.src");
  const std::vector<Finding> findings = LintText("src/fs/bad.cc", src);
  EXPECT_EQ(LinesOfRule(findings, kRuleProbeDiscipline),
            (std::vector<int>{5, 6, 7, 11}));
}

TEST(LintRules, ProbeDisciplineAllowsRequestContextOnTheSpine) {
  const std::string src = ReadFixture("request_context_violation.src");
  LintConfig only_probe;
  only_probe.rules = {kRuleProbeDiscipline};
  for (const char* spine : {"src/sim/request_context.cc", "src/sim/kernel.h",
                            "src/profilers/sim_profiler.h",
                            "src/profilers/callgraph_profiler.cc",
                            "src/sim/lock_order.cc"}) {
    EXPECT_TRUE(LintText(spine, src, only_probe).empty()) << spine;
  }
}

// --- locking --------------------------------------------------------------

TEST(LintRules, LockingFlagsRealPrimitivesInScopedDirs) {
  const std::string src = ReadFixture("locking_violation.src");
  const std::vector<Finding> findings = LintText("src/sim/bad.cc", src);
  EXPECT_EQ(LinesOfRule(findings, kRuleLocking),
            (std::vector<int>{4, 5, 8, 12, 12, 16}));
}

TEST(LintRules, LockingIsScopedToSimFsNet) {
  const std::string src = ReadFixture("locking_violation.src");
  // The runner and core are allowed real threads (trial pool, sharded
  // histograms) -- the same source is clean outside the scoped dirs.
  EXPECT_TRUE(LintText("src/runner/bad.cc", src).empty());
  EXPECT_TRUE(LintText("src/core/bad.cc", src).empty());
  EXPECT_FALSE(LintText("src/fs/bad.cc", src).empty());
  EXPECT_FALSE(LintText("src/net/bad.cc", src).empty());
}

// --- header-hygiene -------------------------------------------------------

TEST(LintRules, HeaderHygieneFlagsMissingGuardAndUsingNamespace) {
  const std::string src = ReadFixture("header_hygiene_violation.src");
  const std::vector<Finding> findings = LintText("bad.h", src);
  EXPECT_EQ(LinesOfRule(findings, kRuleHeaderHygiene),
            (std::vector<int>{1, 5}));
  // The same content as a .cc file is fine.
  EXPECT_TRUE(LintText("bad.cc", src).empty());
}

// --- shared-state ---------------------------------------------------------

TEST(LintRules, SharedStateFlagsMutableStaticsOnly) {
  const std::string src = ReadFixture("shared_state_violation.src");
  const std::vector<Finding> findings = LintText("src/sim/bad.cc", src);
  // const/constexpr data, function declarations, Shared cells and the
  // allow()ed registry are all exempt.
  EXPECT_EQ(LinesOfRule(findings, kRuleSharedState),
            (std::vector<int>{6, 7}));
}

TEST(LintRules, SharedStateIsScopedToSimFsNet) {
  const std::string src = ReadFixture("shared_state_violation.src");
  LintConfig only_shared;
  only_shared.rules = {kRuleSharedState};
  EXPECT_TRUE(LintText("src/tools/bad.cc", src, only_shared).empty());
  EXPECT_TRUE(LintText("src/runner/bad.cc", src, only_shared).empty());
  EXPECT_FALSE(LintText("src/fs/bad.cc", src, only_shared).empty());
  EXPECT_FALSE(LintText("src/net/bad.cc", src, only_shared).empty());
}

// --- suppression-hygiene --------------------------------------------------

TEST(LintRules, SuppressionHygieneFlagsUnknownRules) {
  const std::vector<Finding> findings = LintText(
      "src/fs/bad.cc",
      "// osprof-lint: allow(determinsm)\n"
      "long T() { return time(nullptr); }\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, kRuleSuppressionHygiene);
  EXPECT_NE(findings[0].message.find("unknown rule"), std::string::npos);
  // The misspelled allow suppresses nothing: determinism still fires.
  EXPECT_EQ(findings[1].rule, kRuleDeterminism);
}

TEST(LintRules, SuppressionHygieneCannotSuppressItself) {
  const std::vector<Finding> findings =
      LintText("src/fs/bad.cc",
               "// osprof-lint: allow(suppression-hygiene)\nint x = 0;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kRuleSuppressionHygiene);
  EXPECT_NE(findings[0].message.find("cannot be suppressed"),
            std::string::npos);
}

TEST(LintRules, SuppressionHygieneIgnoresDocumentationPlaceholders) {
  // Prose that *shows* the comment form (like lint.h's own header) is
  // not a suppression: placeholder names are not kebab-case identifiers.
  EXPECT_TRUE(
      LintText("src/fs/doc.cc",
               "// Suppress via osprof-lint: allow(rule[, rule...]).\n"
               "// osprof-lint: allow(...)\n"
               "int x = 0;\n")
          .empty());
}

TEST(LintRules, SuppressionHygieneSurvivesRuleFiltering) {
  // A stale allow is reported even when only the hygiene rule runs: raw
  // findings are computed for every rule before the config filter.
  LintConfig only_hygiene;
  only_hygiene.rules = {kRuleSuppressionHygiene};
  const std::vector<Finding> findings =
      LintText("src/sim/bad.cc", "// osprof-lint: allow(locking)\nint x = 0;\n",
               only_hygiene);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kRuleSuppressionHygiene);
  EXPECT_NE(findings[0].message.find("suppresses nothing"), std::string::npos);
}

// --- suppressions ---------------------------------------------------------

TEST(LintRules, SuppressionsCoverOwnLineAndNextAndAreRuleSpecific) {
  const std::string src = ReadFixture("suppressed.src");
  const std::vector<Finding> findings = LintText("src/fs/bad.cc", src);
  // Everything is suppressed except the wrong-rule allow at the bottom:
  // it fails to cover the determinism finding on the next line, and the
  // stale allow(locking) itself draws a suppression-hygiene finding.
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, kRuleSuppressionHygiene);
  EXPECT_EQ(findings[0].line, 22);
  EXPECT_NE(findings[0].message.find("suppresses nothing"),
            std::string::npos);
  EXPECT_EQ(findings[1].rule, kRuleDeterminism);
  EXPECT_EQ(findings[1].line, 23);
}

// --- clean file -----------------------------------------------------------

TEST(LintRules, CleanFileHasNoFindingsUnderAnyPath) {
  const std::string src = ReadFixture("clean.src");
  EXPECT_TRUE(LintText("src/sim/clean.h", src).empty());
  EXPECT_TRUE(LintText("src/fs/clean.cc", src).empty());
  EXPECT_TRUE(LintText("clean.h", src).empty());
}

// --- rule filtering -------------------------------------------------------

TEST(LintConfigTest, RuleFilterRunsOnlySelectedRules) {
  const std::string src = ReadFixture("locking_violation.src");
  LintConfig only_headers;
  only_headers.rules = {kRuleHeaderHygiene};
  // The locking violations are invisible to a header-hygiene-only run
  // (the .cc path also has no header findings).
  EXPECT_TRUE(LintText("src/sim/bad.cc", src, only_headers).empty());
  LintConfig only_locking;
  only_locking.rules = {kRuleLocking};
  EXPECT_EQ(LintText("src/sim/bad.cc", src, only_locking).size(), 6u);
}

// --- JSON and text rendering ----------------------------------------------

TEST(LintOutput, JsonReportCarriesSchemaCountsAndFindings) {
  LintRun run;
  run.files_scanned = 3;
  run.findings.push_back(
      Finding{kRuleDeterminism, "a.cc", 7, "call to wall-clock"});
  const std::string json = FindingsJson(run).Dump();
  EXPECT_NE(json.find("\"osprof-lint-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"determinism\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"a.cc\""), std::string::npos);
}

TEST(LintOutput, TextRenderingIsFileLineRuleMessage) {
  const std::string text = RenderFindings(
      {Finding{kRuleLocking, "src/sim/x.cc", 12, "std::mutex in sim"}});
  EXPECT_EQ(text, "src/sim/x.cc:12: [locking] std::mutex in sim\n");
}

// --- walker and self-check ------------------------------------------------

TEST(LintPathsTest, WalkerSkipsNonSourceExtensions) {
  // The fixture directory holds only .src files; the walker must scan
  // nothing there.
  const LintRun run = LintPaths({FixtureDir()});
  EXPECT_EQ(run.files_scanned, 0);
  EXPECT_TRUE(run.findings.empty());
}

TEST(LintPathsTest, MissingPathIsAnIoError) {
  const LintRun run = LintPaths({"no/such/path"});
  ASSERT_EQ(run.findings.size(), 1u);
  EXPECT_EQ(run.findings[0].rule, "io-error");
}

// The linter's own acceptance criterion: the real tree is clean.  Any
// regression that reintroduces a wall clock, a string-literal op name, a
// real mutex in simulated code or an unguarded header fails here first.
TEST(LintSelfCheck, RepositorySourcesLintClean) {
  const std::string root = std::string(OSPROF_SOURCE_DIR);
  const LintRun run =
      LintPaths({root + "/src", root + "/tests", root + "/bench"});
  EXPECT_GT(run.files_scanned, 100);
  EXPECT_TRUE(run.findings.empty()) << RenderFindings(run.findings);
}

}  // namespace
}  // namespace oslint
