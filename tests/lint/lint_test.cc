// osprof_lint rule-by-rule tests against the seeded-violation fixture
// corpus in tests/lint/fixtures/, plus the self-check that the real tree
// lints clean.  Fixtures use the .src extension precisely so the
// directory walker (which lints .h/.cc/.cpp) never scans the seeded
// violations when CI lints tests/.

#include "src/lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/lint/lexer.h"

namespace oslint {
namespace {

std::string FixtureDir() {
  return std::string(OSPROF_SOURCE_DIR) + "/tests/lint/fixtures/";
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixtureDir() + name);
  EXPECT_TRUE(in) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<int> LinesOfRule(const std::vector<Finding>& findings,
                             const std::string& rule) {
  std::vector<int> lines;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, rule) << f.file << ":" << f.line << ": " << f.message;
    if (f.rule == rule) {
      lines.push_back(f.line);
    }
  }
  return lines;
}

// --- Lexer ----------------------------------------------------------------

TEST(LintLexer, SeparatesCommentsStringsAndIdentifiers) {
  const LexResult lexed = Lex(
      "int x = 1; // trailing rand()\n"
      "const char* s = \"rand()\";\n"
      "/* block\n   spans lines */ int y;\n");
  for (const Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "rand") << "banned name leaked from comment/string";
  }
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_EQ(lexed.comments[0].line, 1);
  EXPECT_EQ(lexed.comments[1].line, 3);
  EXPECT_EQ(lexed.comments[1].end_line, 4);
}

TEST(LintLexer, DirectivesAreWholeLineTokens) {
  const LexResult lexed = Lex("#include <mutex>\n#pragma once\nint x;\n");
  ASSERT_GE(lexed.tokens.size(), 2u);
  EXPECT_EQ(lexed.tokens[0].kind, TokKind::kDirective);
  EXPECT_EQ(lexed.tokens[0].text, "include <mutex>");
  EXPECT_EQ(lexed.tokens[1].kind, TokKind::kDirective);
  EXPECT_EQ(lexed.tokens[1].text, "pragma once");
}

TEST(LintLexer, RawStringsDoNotLeakContents) {
  const LexResult lexed = Lex("auto s = R\"(time( rand( )\"; int z;\n");
  for (const Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "time");
    EXPECT_NE(t.text, "rand");
  }
}

// --- determinism ----------------------------------------------------------

TEST(LintRules, DeterminismFlagsWallClockAndRandomness) {
  const std::string src = ReadFixture("determinism_violation.src");
  const std::vector<Finding> findings = LintText("src/fs/bad.cc", src);
  EXPECT_EQ(LinesOfRule(findings, kRuleDeterminism),
            (std::vector<int>{9, 14, 18}));
}

TEST(LintRules, DeterminismAllowlistsRngAndClock) {
  const std::string src = ReadFixture("determinism_violation.src");
  LintConfig only_determinism;
  only_determinism.rules = {kRuleDeterminism};
  EXPECT_TRUE(LintText("src/core/clock.h", src, only_determinism).empty());
  EXPECT_TRUE(LintText("src/sim/rng.h", src, only_determinism).empty());
  EXPECT_TRUE(LintText("src/core/clock.cc", src, only_determinism).empty());
}

// --- probe-discipline -----------------------------------------------------

TEST(LintRules, ProbeDisciplineFlagsStringLiteralOpNames) {
  const std::string src = ReadFixture("probe_discipline_violation.src");
  const std::vector<Finding> findings = LintText("src/fs/bad.cc", src);
  EXPECT_EQ(LinesOfRule(findings, kRuleProbeDiscipline),
            (std::vector<int>{5, 6, 10, 14, 21}));
}

// The deprecated string shims are gone, and with them the tests/
// carve-out: the string-key subcheck applies tree-wide, so a test file
// gets exactly the findings a src/ file does.
TEST(LintRules, ProbeDisciplineAppliesToTests) {
  const std::string src = ReadFixture("probe_discipline_violation.src");
  const std::vector<Finding> findings = LintText("tests/profilers/bad.cc", src);
  EXPECT_EQ(LinesOfRule(findings, kRuleProbeDiscipline),
            (std::vector<int>{5, 6, 10, 14, 21}));
}

TEST(LintRules, ProbeDisciplineFlagsManualRequestContextFrames) {
  const std::string src = ReadFixture("request_context_violation.src");
  const std::vector<Finding> findings = LintText("src/fs/bad.cc", src);
  EXPECT_EQ(LinesOfRule(findings, kRuleProbeDiscipline),
            (std::vector<int>{5, 6, 7, 11}));
}

TEST(LintRules, ProbeDisciplineAllowsRequestContextOnTheSpine) {
  const std::string src = ReadFixture("request_context_violation.src");
  LintConfig only_probe;
  only_probe.rules = {kRuleProbeDiscipline};
  for (const char* spine : {"src/sim/request_context.cc", "src/sim/kernel.h",
                            "src/profilers/sim_profiler.h",
                            "src/profilers/callgraph_profiler.cc",
                            "src/sim/lock_order.cc"}) {
    EXPECT_TRUE(LintText(spine, src, only_probe).empty()) << spine;
  }
}

// --- locking --------------------------------------------------------------

TEST(LintRules, LockingFlagsRealPrimitivesInScopedDirs) {
  const std::string src = ReadFixture("locking_violation.src");
  const std::vector<Finding> findings = LintText("src/sim/bad.cc", src);
  EXPECT_EQ(LinesOfRule(findings, kRuleLocking),
            (std::vector<int>{4, 5, 8, 12, 12, 16}));
}

TEST(LintRules, LockingIsScopedToSimFsNet) {
  const std::string src = ReadFixture("locking_violation.src");
  // The runner and core are allowed real threads (trial pool, sharded
  // histograms) -- the same source is clean outside the scoped dirs.
  EXPECT_TRUE(LintText("src/runner/bad.cc", src).empty());
  EXPECT_TRUE(LintText("src/core/bad.cc", src).empty());
  EXPECT_FALSE(LintText("src/fs/bad.cc", src).empty());
  EXPECT_FALSE(LintText("src/net/bad.cc", src).empty());
}

// --- header-hygiene -------------------------------------------------------

TEST(LintRules, HeaderHygieneFlagsMissingGuardAndUsingNamespace) {
  const std::string src = ReadFixture("header_hygiene_violation.src");
  const std::vector<Finding> findings = LintText("bad.h", src);
  EXPECT_EQ(LinesOfRule(findings, kRuleHeaderHygiene),
            (std::vector<int>{1, 5}));
  // The same content as a .cc file is fine.
  EXPECT_TRUE(LintText("bad.cc", src).empty());
}

// --- suppressions ---------------------------------------------------------

TEST(LintRules, SuppressionsCoverOwnLineAndNextAndAreRuleSpecific) {
  const std::string src = ReadFixture("suppressed.src");
  const std::vector<Finding> findings = LintText("src/fs/bad.cc", src);
  // Everything is suppressed except the wrong-rule allow at the bottom.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kRuleDeterminism);
  EXPECT_EQ(findings[0].line, 22);
}

// --- clean file -----------------------------------------------------------

TEST(LintRules, CleanFileHasNoFindingsUnderAnyPath) {
  const std::string src = ReadFixture("clean.src");
  EXPECT_TRUE(LintText("src/sim/clean.h", src).empty());
  EXPECT_TRUE(LintText("src/fs/clean.cc", src).empty());
  EXPECT_TRUE(LintText("clean.h", src).empty());
}

// --- rule filtering -------------------------------------------------------

TEST(LintConfigTest, RuleFilterRunsOnlySelectedRules) {
  const std::string src = ReadFixture("locking_violation.src");
  LintConfig only_headers;
  only_headers.rules = {kRuleHeaderHygiene};
  // The locking violations are invisible to a header-hygiene-only run
  // (the .cc path also has no header findings).
  EXPECT_TRUE(LintText("src/sim/bad.cc", src, only_headers).empty());
  LintConfig only_locking;
  only_locking.rules = {kRuleLocking};
  EXPECT_EQ(LintText("src/sim/bad.cc", src, only_locking).size(), 6u);
}

// --- JSON and text rendering ----------------------------------------------

TEST(LintOutput, JsonReportCarriesSchemaCountsAndFindings) {
  LintRun run;
  run.files_scanned = 3;
  run.findings.push_back(
      Finding{kRuleDeterminism, "a.cc", 7, "call to wall-clock"});
  const std::string json = FindingsJson(run).Dump();
  EXPECT_NE(json.find("\"osprof-lint-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"determinism\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"a.cc\""), std::string::npos);
}

TEST(LintOutput, TextRenderingIsFileLineRuleMessage) {
  const std::string text = RenderFindings(
      {Finding{kRuleLocking, "src/sim/x.cc", 12, "std::mutex in sim"}});
  EXPECT_EQ(text, "src/sim/x.cc:12: [locking] std::mutex in sim\n");
}

// --- walker and self-check ------------------------------------------------

TEST(LintPathsTest, WalkerSkipsNonSourceExtensions) {
  // The fixture directory holds only .src files; the walker must scan
  // nothing there.
  const LintRun run = LintPaths({FixtureDir()});
  EXPECT_EQ(run.files_scanned, 0);
  EXPECT_TRUE(run.findings.empty());
}

TEST(LintPathsTest, MissingPathIsAnIoError) {
  const LintRun run = LintPaths({"no/such/path"});
  ASSERT_EQ(run.findings.size(), 1u);
  EXPECT_EQ(run.findings[0].rule, "io-error");
}

// The linter's own acceptance criterion: the real tree is clean.  Any
// regression that reintroduces a wall clock, a string-literal op name, a
// real mutex in simulated code or an unguarded header fails here first.
TEST(LintSelfCheck, RepositorySourcesLintClean) {
  const std::string root = std::string(OSPROF_SOURCE_DIR);
  const LintRun run =
      LintPaths({root + "/src", root + "/tests", root + "/bench"});
  EXPECT_GT(run.files_scanned, 100);
  EXPECT_TRUE(run.findings.empty()) << RenderFindings(run.findings);
}

}  // namespace
}  // namespace oslint
