#include "src/core/sampling.h"

#include <gtest/gtest.h>

namespace osprof {
namespace {

TEST(SampledProfile, SplitsByEpoch) {
  SampledProfile p("read", 1000, 1);
  p.Add(10, 100);     // Epoch 0.
  p.Add(999, 100);    // Epoch 0.
  p.Add(1000, 5000);  // Epoch 1.
  p.Add(2500, 100);   // Epoch 2.
  ASSERT_EQ(p.num_epochs(), 3);
  EXPECT_EQ(p.epoch(0).TotalOperations(), 2u);
  EXPECT_EQ(p.epoch(1).TotalOperations(), 1u);
  EXPECT_EQ(p.epoch(1).bucket(12), 1u);
  EXPECT_EQ(p.epoch(2).TotalOperations(), 1u);
}

TEST(SampledProfile, FlattenMergesAllEpochs) {
  SampledProfile p("read", 1000, 1);
  for (Cycles t = 0; t < 10'000; t += 100) {
    p.Add(t, 128);
  }
  const Histogram flat = p.Flatten();
  EXPECT_EQ(flat.TotalOperations(), 100u);
  EXPECT_EQ(flat.bucket(7), 100u);
  EXPECT_TRUE(flat.CheckConsistency());
}

TEST(SampledProfile, SkippedEpochsAreEmpty) {
  SampledProfile p("read", 1000, 1);
  p.Add(0, 100);
  p.Add(5500, 100);  // Epochs 1-4 never saw an op.
  ASSERT_EQ(p.num_epochs(), 6);
  for (int e = 1; e <= 4; ++e) {
    EXPECT_TRUE(p.epoch(e).empty());
  }
}

TEST(SampledProfile, ZeroEpochLengthThrows) {
  SampledProfile p("x", 0, 1);
  EXPECT_THROW(p.Add(0, 1), std::invalid_argument);
}

TEST(SampledProfileSet, TracksMultipleOperations) {
  SampledProfileSet set(1000, 1);
  set.Add("read", 0, 100);
  set.Add("write_super", 2500, 1 << 20);
  EXPECT_NE(set.Find("read"), nullptr);
  EXPECT_NE(set.Find("write_super"), nullptr);
  EXPECT_EQ(set.Find("nope"), nullptr);
  EXPECT_EQ(set.OperationNames().size(), 2u);
}

TEST(SampledProfileSet, RenderGridShowsDensityClasses) {
  SampledProfileSet set(1000, 1);
  // Epoch 0: 500 ops in bucket 7 -> '#'; epoch 1: 50 ops -> '2';
  // epoch 2: 5 ops -> '1'.
  for (int i = 0; i < 500; ++i) {
    set.Add("read", 0, 128);
  }
  for (int i = 0; i < 50; ++i) {
    set.Add("read", 1500, 128);
  }
  for (int i = 0; i < 5; ++i) {
    set.Add("read", 2500, 128);
  }
  const std::string grid = set.RenderGrid("read", 7, 7);
  EXPECT_NE(grid.find("epoch 0 |#|"), std::string::npos);
  EXPECT_NE(grid.find("epoch 1 |2|"), std::string::npos);
  EXPECT_NE(grid.find("epoch 2 |1|"), std::string::npos);
}

TEST(SampledProfileSet, RenderGridHandlesMissingOp) {
  SampledProfileSet set(1000, 1);
  EXPECT_NE(set.RenderGrid("ghost", 0, 5).find("no data"), std::string::npos);
}

TEST(FindEpochChanges, FlagsBehaviourShifts) {
  SampledProfile p("read", 1'000, 1);
  // Epochs 0-2: fast mode; epochs 3-5: slow mode; epochs 6-7: fast again.
  for (int e = 0; e < 8; ++e) {
    const bool slow = e >= 3 && e <= 5;
    for (int i = 0; i < 100; ++i) {
      p.Add(static_cast<Cycles>(e) * 1'000 + 5,
            slow ? (1 << 20) : 128);
    }
  }
  const auto changes = FindEpochChanges(p);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].epoch, 3);  // Fast -> slow.
  EXPECT_EQ(changes[1].epoch, 6);  // Slow -> fast.
  EXPECT_GT(changes[0].score, 0.5);
}

TEST(FindEpochChanges, SteadyBehaviourIsQuiet) {
  SampledProfile p("read", 1'000, 1);
  for (int e = 0; e < 10; ++e) {
    for (int i = 0; i < 100; ++i) {
      p.Add(static_cast<Cycles>(e) * 1'000 + 5, 128 + (i % 32));
    }
  }
  EXPECT_TRUE(FindEpochChanges(p).empty());
}

TEST(FindEpochChanges, SkipsEmptyEpochs) {
  SampledProfile p("read", 1'000, 1);
  p.Add(500, 128);
  // Epochs 1-3 empty; epoch 4 same behaviour as epoch 0.
  p.Add(4'500, 128);
  EXPECT_TRUE(FindEpochChanges(p).empty());
  // Epoch 6: different behaviour -> one change.
  p.Add(6'500, 1 << 20);
  const auto changes = FindEpochChanges(p);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].epoch, 6);
}

TEST(SampledProfileSet, SerializeParseRoundTrip) {
  SampledProfileSet set(2'500, 1);
  for (Cycles t = 0; t < 20'000; t += 37) {
    set.Add("read", t, 100 + t % 5'000);
    if (t % 5'000 == 0) {
      set.Add("write_super", t, 1 << 21);
    }
  }
  const std::string text = set.ToString();
  const SampledProfileSet parsed = SampledProfileSet::ParseString(text);
  EXPECT_EQ(parsed.ToString(), text);
  EXPECT_EQ(parsed.epoch_cycles(), 2'500u);
  const SampledProfile* rd = parsed.Find("read");
  ASSERT_NE(rd, nullptr);
  EXPECT_EQ(rd->num_epochs(), set.Find("read")->num_epochs());
  EXPECT_EQ(rd->Flatten().TotalOperations(),
            set.Find("read")->Flatten().TotalOperations());
  EXPECT_TRUE(rd->Flatten().CheckConsistency());
}

TEST(SampledProfileSet, ParsePreservesEmptyMiddleEpochs) {
  SampledProfileSet set(1'000, 1);
  set.Add("op", 0, 100);
  set.Add("op", 5'500, 100);
  const SampledProfileSet parsed = SampledProfileSet::ParseString(set.ToString());
  const SampledProfile* p = parsed.Find("op");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->num_epochs(), 6);
  EXPECT_TRUE(p->epoch(3).empty());
}

TEST(SampledProfileSet, ParseRejectsGarbage) {
  EXPECT_THROW(SampledProfileSet::ParseString("nonsense\n"),
               std::runtime_error);
  EXPECT_THROW(SampledProfileSet::ParseString("sampled op\nend\n"),
               std::runtime_error);  // Missing epoch=.
  EXPECT_THROW(
      SampledProfileSet::ParseString("sampled op epoch=0\nbucket 1 1\n"),
      std::runtime_error);  // Unterminated.
}

TEST(SampledProfileSet, RenderGnuplot3DEmitsClassedPoints) {
  SampledProfileSet set(1000, 1);
  for (int i = 0; i < 500; ++i) {
    set.Add("read", 0, 128);  // Epoch 0, bucket 7: class ">100".
  }
  for (int i = 0; i < 50; ++i) {
    set.Add("read", 1500, 1 << 20);  // Epoch 1, bucket 20: class "11-100".
  }
  set.Add("read", 2500, 128);  // Epoch 2: class "1-10".
  const std::string script = set.RenderGnuplot3D("read", 1.7e9);
  EXPECT_NE(script.find("> 100 Operations"), std::string::npos);
  EXPECT_NE(script.find("11-100 Operations"), std::string::npos);
  // Bucket 7 at t=0 in the >100 block; bucket 20 in the 11-100 block.
  EXPECT_NE(script.find("\n7 0\n"), std::string::npos);
  EXPECT_NE(script.find("\n20 "), std::string::npos);
  // Three data blocks terminated by 'e'.
  std::size_t blocks = 0;
  for (std::size_t pos = script.find("\ne\n"); pos != std::string::npos;
       pos = script.find("\ne\n", pos + 1)) {
    ++blocks;
  }
  EXPECT_EQ(blocks, 3u);
}

TEST(SampledProfileSet, RenderGnuplot3DHandlesMissingOp) {
  SampledProfileSet set(1000, 1);
  EXPECT_NE(set.RenderGnuplot3D("ghost", 1.7e9).find("no data"),
            std::string::npos);
}

// A periodic disturbance shows up in alternating epochs -- the Figure 9
// pattern, distilled.
TEST(SampledProfileSet, RevealsPeriodicContention) {
  SampledProfileSet set(1000, 1);
  for (Cycles t = 0; t < 10'000; t += 10) {
    const bool disturbed = (t / 1000) % 2 == 1;  // Every other epoch.
    set.Add("read", t, disturbed ? (1 << 21) : 128);
  }
  const SampledProfile* p = set.Find("read");
  ASSERT_NE(p, nullptr);
  for (int e = 0; e < p->num_epochs(); ++e) {
    const bool disturbed = e % 2 == 1;
    EXPECT_EQ(p->epoch(e).bucket(21) > 0, disturbed) << "epoch " << e;
    EXPECT_EQ(p->epoch(e).bucket(7) > 0, !disturbed) << "epoch " << e;
  }
}

}  // namespace
}  // namespace osprof
