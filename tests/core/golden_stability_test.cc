// Serialization stability of the committed golden corpus: every
// tests/golden/*.prof file must survive a Parse -> Serialize round trip
// through the (vector + OpTable backed) ProfileSet byte-for-byte.  This
// is the direct guard against interning-order or iteration-order changes
// silently rewriting baselines the regression gate depends on.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/profile.h"

namespace osprof {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class GoldenStabilityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenStabilityTest, ReserializesByteIdentically) {
  const std::string path =
      std::string(OSPROF_SOURCE_DIR) + "/tests/golden/" + GetParam();
  const std::string original = ReadFileBytes(path);
  ASSERT_FALSE(original.empty());

  const ProfileSet set = ProfileSet::ParseString(original);
  EXPECT_TRUE(set.CheckConsistency());
  EXPECT_GT(set.size(), 0u);
  EXPECT_EQ(set.ToString(), original)
      << GetParam() << " does not round-trip byte-identically";
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenStabilityTest,
                         ::testing::Values("fig01.user.prof", "fig03.fs.prof",
                                           "fig06.fs.prof", "fig07.fs.prof",
                                           "fig07_cifs.cifs.prof",
                                           "postmark.fs.prof"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace osprof
