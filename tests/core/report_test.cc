#include "src/core/report.h"

#include <gtest/gtest.h>

namespace osprof {
namespace {

Profile SampleProfile() {
  Profile p("READ", 1);
  for (int i = 0; i < 10'000; ++i) {
    p.Add(100);  // Bucket 6.
  }
  for (int i = 0; i < 50; ++i) {
    p.Add(1 << 20);  // Bucket 20.
  }
  return p;
}

TEST(RenderAscii, ContainsNameBarsAndAxis) {
  const std::string plot = RenderAscii(SampleProfile());
  EXPECT_NE(plot.find("READ"), std::string::npos);
  EXPECT_NE(plot.find('#'), std::string::npos);
  EXPECT_NE(plot.find('+'), std::string::npos);
}

TEST(RenderAscii, AutoRangeCoversOccupiedBuckets) {
  const std::string plot = RenderAscii(SampleProfile());
  // Ticks for buckets 5..20 must appear in the axis labels.
  EXPECT_NE(plot.find("5"), std::string::npos);
  EXPECT_NE(plot.find("20"), std::string::npos);
}

TEST(RenderAscii, TallerPeakGetsMoreInk) {
  const std::string plot = RenderAscii(SampleProfile());
  // Count '#' per column: bucket 6 has 10k ops, bucket 20 has 50; the
  // bucket-6 column must be strictly taller.  Count total '#' occurrences
  // in lines as proxy: find columns via per-line character positions.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < plot.size()) {
    const std::size_t eol = plot.find('\n', pos);
    lines.push_back(plot.substr(pos, eol - pos));
    pos = eol + 1;
  }
  // Locate bar rows (start with "10^").
  int col6 = 0;
  int col20 = 0;
  for (const std::string& line : lines) {
    if (line.rfind("10^", 0) == 0) {
      const std::size_t bar_start = line.find('|') + 1;
      // Auto-fit makes bucket 5 the first column.
      const std::size_t c6 = bar_start + (6 - 5);
      const std::size_t c20 = bar_start + (20 - 5);
      if (c6 < line.size() && line[c6] == '#') {
        ++col6;
      }
      if (c20 < line.size() && line[c20] == '#') {
        ++col20;
      }
    }
  }
  EXPECT_GT(col6, col20);
  EXPECT_GT(col20, 0);
}

TEST(RenderAscii, EmptyProfileDoesNotCrash) {
  Profile p("EMPTY", 1);
  const std::string plot = RenderAscii(p);
  EXPECT_NE(plot.find("EMPTY"), std::string::npos);
}

TEST(RenderAscii, ExplicitRangeIsHonored) {
  RenderOptions opts;
  opts.first_bucket = 0;
  opts.last_bucket = 30;
  const std::string plot = RenderAscii(SampleProfile(), opts);
  EXPECT_NE(plot.find("30"), std::string::npos);
}

TEST(RenderAsciiSet, OrdersByTotalLatency) {
  ProfileSet set(1);
  for (int i = 0; i < 100; ++i) {
    set.Add("cheap", 100);
    set.Add("costly", 1 << 22);
  }
  const std::string plots = RenderAsciiSet(set);
  EXPECT_LT(plots.find("costly"), plots.find("cheap"));
}

TEST(RenderGnuplot, EmitsValidScriptSkeleton) {
  const std::string script = RenderGnuplot(SampleProfile());
  EXPECT_NE(script.find("set logscale y"), std::string::npos);
  EXPECT_NE(script.find("with boxes"), std::string::npos);
  EXPECT_NE(script.find("6 10000"), std::string::npos);
  EXPECT_NE(script.find("20 50"), std::string::npos);
  EXPECT_NE(script.find("\ne\n"), std::string::npos);
}

TEST(SummarizeProfile, MentionsOpsMeanAndRange) {
  const std::string s = SummarizeProfile(SampleProfile());
  EXPECT_NE(s.find("READ"), std::string::npos);
  EXPECT_NE(s.find("10050 ops"), std::string::npos);
  EXPECT_NE(s.find("buckets 6-20"), std::string::npos);
}

}  // namespace
}  // namespace osprof
