#include "src/core/prior.h"

#include <gtest/gtest.h>

namespace osprof {
namespace {

TEST(PriorKnowledge, PaperTestbedHasTheDocumentedTimes) {
  const PriorKnowledge pk = PriorKnowledge::PaperTestbed();
  bool saw_rotation = false;
  bool saw_quantum = false;
  for (const CharacteristicTime& ct : pk.entries()) {
    if (ct.name == "full disk rotation") {
      saw_rotation = true;
      EXPECT_NEAR(static_cast<double>(ct.cycles), 4e-3 * kPaperCpuHz, 1.0);
    }
    if (ct.name == "scheduling quantum") {
      saw_quantum = true;
    }
  }
  EXPECT_TRUE(saw_rotation);
  EXPECT_TRUE(saw_quantum);
}

TEST(PriorKnowledge, MatchBucketFindsNearbyTimes) {
  PriorKnowledge pk;
  pk.Add("context switch", 9520);  // Bucket 13.
  EXPECT_EQ(pk.MatchBucket(13).size(), 1u);
  EXPECT_EQ(pk.MatchBucket(12).size(), 1u);  // Within default tolerance 1.
  EXPECT_EQ(pk.MatchBucket(14).size(), 1u);
  EXPECT_TRUE(pk.MatchBucket(16).empty());
  EXPECT_TRUE(pk.MatchBucket(5).empty());
}

TEST(PriorKnowledge, ToleranceIsConfigurable) {
  PriorKnowledge pk;
  pk.Add("exact", 1 << 10, 0);
  EXPECT_EQ(pk.MatchBucket(10).size(), 1u);
  EXPECT_TRUE(pk.MatchBucket(11).empty());
}

TEST(PriorKnowledge, AnnotatePairsPeaksWithHypotheses) {
  const PriorKnowledge pk = PriorKnowledge::PaperTestbed();
  Histogram h(1);
  // A peak at the disk-rotation time (4ms = 6.8M cycles -> bucket 22) and
  // one at 100 cycles (bucket 6, no characteristic time).
  h.set_bucket(22, 1000);
  h.set_bucket(6, 5000);
  const auto annotated = pk.Annotate(FindPeaks(h));
  ASSERT_EQ(annotated.size(), 2u);
  EXPECT_TRUE(annotated[0].hypotheses.empty());  // Bucket 6.
  bool rotation_hypothesis = false;
  for (const std::string& name : annotated[1].hypotheses) {
    if (name == "full disk rotation" || name == "timer tick") {
      rotation_hypothesis = true;
    }
  }
  EXPECT_TRUE(rotation_hypothesis);
}

TEST(PriorKnowledge, MatchScalesWithResolution) {
  PriorKnowledge pk;
  pk.Add("t", 1024, 1);
  // At resolution 2 the characteristic bucket is 20; tolerance scales to 2.
  EXPECT_FALSE(pk.MatchBucket(20, 2).empty());
  EXPECT_FALSE(pk.MatchBucket(22, 2).empty());
  EXPECT_TRUE(pk.MatchBucket(23, 2).empty());
}

}  // namespace
}  // namespace osprof
