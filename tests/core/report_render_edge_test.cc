// Rendering and reporting edge cases across resolutions and degenerate
// inputs.

#include <gtest/gtest.h>

#include "src/core/report.h"

namespace osprof {
namespace {

TEST(RenderAscii, HighResolutionProfilesRender) {
  Profile p("fine", 4);
  for (int i = 0; i < 1'000; ++i) {
    p.Add(1'050);
    p.Add(1'800);
  }
  const std::string plot = RenderAscii(p);
  EXPECT_NE(plot.find("fine"), std::string::npos);
  EXPECT_NE(plot.find('#'), std::string::npos);
  // At r=4, 1050 lands in bucket 40 and 1800 in bucket 43.
  EXPECT_EQ(BucketIndex(1'050, 4), 40);
  EXPECT_EQ(BucketIndex(1'800, 4), 43);
}

TEST(RenderAscii, SingleBucketProfileLabelsItsEndpoints) {
  Profile p("narrow", 1);
  for (int i = 0; i < 10; ++i) {
    p.Add(100);  // Bucket 6 only.
  }
  const std::string plot = RenderAscii(p);
  // Narrow auto-fitted ranges label their endpoints instead of silence.
  EXPECT_NE(plot.find(":"), std::string::npos);
}

TEST(RenderGnuplot, EmptyProfileStillEmitsValidScript) {
  Profile p("empty", 1);
  const std::string script = RenderGnuplot(p);
  EXPECT_NE(script.find("set logscale y"), std::string::npos);
  EXPECT_NE(script.find("\ne\n"), std::string::npos);
}

TEST(RenderAscii, CustomCpuHzChangesLabels) {
  Profile p("op", 1);
  p.Add(1'700'000);  // 1ms at 1.7GHz; 0.5ms at 3.4GHz.
  RenderOptions slow;
  slow.cpu_hz = 1.7e9;
  RenderOptions fast;
  fast.cpu_hz = 3.4e9;
  const std::string a = RenderAscii(p, slow);
  const std::string b = RenderAscii(p, fast);
  EXPECT_NE(a, b);
}

TEST(SummarizeProfile, EmptyProfileOmitsBucketRange) {
  Profile p("none", 1);
  const std::string s = SummarizeProfile(p);
  EXPECT_NE(s.find("0 ops"), std::string::npos);
  EXPECT_EQ(s.find("buckets"), std::string::npos);
}

TEST(RenderAsciiSet, EmptySetRendersNothing) {
  ProfileSet set(1);
  EXPECT_TRUE(RenderAsciiSet(set).empty());
}

class ResolutionRenderTest : public ::testing::TestWithParam<int> {};

TEST_P(ResolutionRenderTest, RoundTripThroughSerializationAndRender) {
  const int r = GetParam();
  ProfileSet set(r);
  for (int i = 0; i < 500; ++i) {
    set.Add("op", static_cast<Cycles>(100 + i * 7));
  }
  const ProfileSet parsed = ProfileSet::ParseString(set.ToString());
  EXPECT_EQ(parsed.resolution(), r);
  const std::string plot = RenderAscii(*parsed.Find("op"));
  EXPECT_NE(plot.find('#'), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, ResolutionRenderTest,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace osprof
