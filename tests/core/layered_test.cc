// Invariants of the layered-decomposition containers and their
// serialization: merge algebra (associative, commutative, resolution
// checked), byte-stable round trips, and the renderer's stacked view.

#include "src/core/layered.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

namespace osprof {
namespace {

LayeredProfileSet MakeSet(int seed) {
  LayeredProfileSet set(1);
  // Two ops, overlapping buckets, components varied by seed so merges of
  // distinct sets are distinguishable.
  for (int b = 4; b < 8; ++b) {
    Cycles comp[kNumLayerComponents] = {};
    comp[kLayerSelf] = static_cast<Cycles>(10 * seed + b);
    comp[kLayerDriver] = static_cast<Cycles>(100 * seed);
    set.Slot("readdir")->Add(b, comp);
  }
  Cycles comp[kNumLayerComponents] = {};
  comp[kLayerSelf] = static_cast<Cycles>(seed);
  comp[kLayerNet] = static_cast<Cycles>(7 * seed);
  set.Slot("read")->Add(12 + seed, comp);
  return set;
}

std::string Text(const LayeredProfileSet& set) {
  std::map<std::string, LayeredProfileSet> layers;
  layers.emplace("fs", set);
  return LayersToString(layers);
}

TEST(LayeredProfileTest, AddAccumulatesCountAndComponents) {
  LayeredProfile p(1);
  Cycles comp[kNumLayerComponents] = {};
  comp[kLayerSelf] = 30;
  comp[kLayerDriver] = 70;
  p.Add(5, comp);
  p.Add(5, comp);
  const LayeredBucket bucket = p.buckets().at(5);
  EXPECT_EQ(bucket.count, 2u);
  EXPECT_EQ(bucket.cycles[kLayerSelf], 60u);
  EXPECT_EQ(bucket.cycles[kLayerDriver], 140u);
  EXPECT_EQ(bucket.TotalCycles(), 200u);
  EXPECT_EQ(p.total_count(), 2u);
}

TEST(LayeredMergeTest, MergeIsCommutative) {
  LayeredProfileSet ab = MakeSet(1);
  ab.Merge(MakeSet(2));
  LayeredProfileSet ba = MakeSet(2);
  ba.Merge(MakeSet(1));
  EXPECT_EQ(Text(ab), Text(ba));
}

TEST(LayeredMergeTest, MergeIsAssociative) {
  LayeredProfileSet left = MakeSet(1);  // (A + B) + C
  left.Merge(MakeSet(2));
  left.Merge(MakeSet(3));
  LayeredProfileSet bc = MakeSet(2);    // A + (B + C)
  bc.Merge(MakeSet(3));
  LayeredProfileSet right = MakeSet(1);
  right.Merge(bc);
  EXPECT_EQ(Text(left), Text(right));
}

TEST(LayeredMergeTest, ResolutionMismatchThrows) {
  LayeredProfileSet r1(1);
  LayeredProfileSet r2(2);
  EXPECT_THROW(r1.Merge(r2), std::invalid_argument);
}

TEST(LayeredSetTest, SlotPointersAreStableAndEmptyTracksBuckets) {
  LayeredProfileSet set(1);
  EXPECT_TRUE(set.empty());
  LayeredProfile* readdir = set.Slot("readdir");
  LayeredProfile* read = set.Slot("read");
  EXPECT_TRUE(set.empty()) << "ops without buckets do not count";
  EXPECT_EQ(set.Slot("readdir"), readdir) << "same op, same slot";
  Cycles comp[kNumLayerComponents] = {};
  comp[kLayerSelf] = 1;
  read->Add(3, comp);
  EXPECT_FALSE(set.empty());
  set.ClearCounts();
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.Slot("read"), read) << "ClearCounts keeps slots alive";
}

TEST(LayeredSerializationTest, RoundTripIsByteIdentical) {
  std::map<std::string, LayeredProfileSet> layers;
  layers.emplace("fs", MakeSet(3));
  layers.emplace("driver", MakeSet(1));
  const std::string text = LayersToString(layers);
  EXPECT_NE(text.find("# osprof layers v1"), std::string::npos);
  const auto parsed = ParseLayersString(text);
  EXPECT_EQ(LayersToString(parsed), text);
}

TEST(LayeredSerializationTest, MalformedInputThrowsWithLineNumber) {
  EXPECT_THROW(ParseLayersString("not a layers file\n"), std::runtime_error);
  try {
    ParseLayersString(
        "# osprof layers v1\n"
        "layer fs resolution 1\n"
        "op readdir\n"
        "  bucket five count 1 self 1 fs 0 driver 0 net 0 lock 0 runq 0\n");
    FAIL() << "malformed bucket line must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("4"), std::string::npos)
        << "message should carry the line number: " << e.what();
  }
}

TEST(LayeredRenderTest, StackedViewCarriesSharesAndLegend) {
  std::map<std::string, LayeredProfileSet> layers;
  LayeredProfileSet set(1);
  Cycles comp[kNumLayerComponents] = {};
  comp[kLayerSelf] = 10;
  comp[kLayerDriver] = 90;
  set.Slot("readdir")->Add(23, comp);
  layers.emplace("fs", set);
  const std::string view = RenderLayers(layers);
  EXPECT_NE(view.find("readdir"), std::string::npos);
  EXPECT_NE(view.find("driver=90%"), std::string::npos);
  EXPECT_NE(view.find("self=10%"), std::string::npos);
  // The bar is dominated by the driver glyph.
  EXPECT_NE(view.find("DDDD"), std::string::npos);
}

}  // namespace
}  // namespace osprof
