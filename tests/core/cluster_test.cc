#include "src/core/cluster.h"

#include <gtest/gtest.h>

namespace osprof {
namespace {

ProfileSet MakeSet(int read_bucket, std::uint64_t n = 1'000) {
  ProfileSet set(1);
  for (std::uint64_t i = 0; i < n; ++i) {
    set.Add("read", BucketLowerBound(read_bucket) + 1);
    set.Add("write", BucketLowerBound(12) + 1);
  }
  return set;
}

TEST(MergeCluster, SumsHistogramsAcrossMachines) {
  std::vector<MachineProfile> fleet;
  fleet.push_back({"a", MakeSet(10)});
  fleet.push_back({"b", MakeSet(10)});
  fleet.push_back({"c", MakeSet(10)});
  const ProfileSet merged = MergeCluster(fleet);
  EXPECT_EQ(merged.Find("read")->total_operations(), 3'000u);
  EXPECT_EQ(merged.Find("read")->histogram().bucket(10), 3'000u);
  EXPECT_TRUE(merged.CheckConsistency());
}

TEST(MergeCluster, EmptyFleetYieldsEmptySet) {
  EXPECT_TRUE(MergeCluster({}).empty());
}

TEST(MergeCluster, HandlesDisjointOperations) {
  ProfileSet only_a(1);
  only_a.Add("fsync", 1'000);
  std::vector<MachineProfile> fleet;
  fleet.push_back({"a", std::move(only_a)});
  fleet.push_back({"b", MakeSet(10)});
  const ProfileSet merged = MergeCluster(fleet);
  EXPECT_NE(merged.Find("fsync"), nullptr);
  EXPECT_NE(merged.Find("read"), nullptr);
}

TEST(MergeCluster, RejectsMixedResolutions) {
  std::vector<MachineProfile> fleet;
  fleet.push_back({"a", ProfileSet(1)});
  fleet.push_back({"b", ProfileSet(2)});
  fleet[0].profiles.Add("x", 10);
  fleet[1].profiles.Add("x", 10);
  EXPECT_THROW(MergeCluster(fleet), std::invalid_argument);
}

TEST(PrefixOperations, RenamesEveryOp) {
  const ProfileSet prefixed = PrefixOperations(MakeSet(10), "web03.");
  EXPECT_NE(prefixed.Find("web03.read"), nullptr);
  EXPECT_NE(prefixed.Find("web03.write"), nullptr);
  EXPECT_EQ(prefixed.Find("read"), nullptr);
  EXPECT_EQ(prefixed.Find("web03.read")->total_operations(), 1'000u);
}

TEST(FindOutliers, FlagsTheMachineWithTheShiftedDistribution) {
  std::vector<MachineProfile> fleet;
  fleet.push_back({"web01", MakeSet(10)});
  fleet.push_back({"web02", MakeSet(10)});
  fleet.push_back({"web03", MakeSet(22)});  // Failing disk: reads 4000x slower.
  fleet.push_back({"web04", MakeSet(10)});
  const auto deviations = FindOutliers(fleet);
  ASSERT_FALSE(deviations.empty());
  // The top deviation is web03's read profile.
  EXPECT_EQ(deviations[0].machine, "web03");
  EXPECT_EQ(deviations[0].op_name, "read");
  EXPECT_TRUE(deviations[0].outlier);
  // Healthy machines' read profiles are not outliers.
  for (const MachineDeviation& d : deviations) {
    if (d.machine != "web03" && d.op_name == "read") {
      EXPECT_FALSE(d.outlier) << d.machine;
    }
    // Write profiles are identical fleet-wide.
    if (d.op_name == "write") {
      EXPECT_FALSE(d.outlier) << d.machine;
    }
  }
}

TEST(FindOutliers, IdenticalFleetHasNoOutliers) {
  std::vector<MachineProfile> fleet;
  for (const char* name : {"a", "b", "c"}) {
    fleet.push_back({name, MakeSet(10)});
  }
  for (const MachineDeviation& d : FindOutliers(fleet)) {
    EXPECT_FALSE(d.outlier) << d.machine << "/" << d.op_name;
    EXPECT_DOUBLE_EQ(d.score, 0.0);
  }
}

TEST(FindOutliers, MissingOperationScoresOne) {
  std::vector<MachineProfile> fleet;
  fleet.push_back({"a", MakeSet(10)});
  fleet.push_back({"b", MakeSet(10)});
  ProfileSet no_write(1);
  no_write.Add("read", BucketLowerBound(10) + 1);
  fleet.push_back({"c", std::move(no_write)});
  const auto deviations = FindOutliers(fleet);
  bool found = false;
  for (const MachineDeviation& d : deviations) {
    if (d.machine == "c" && d.op_name == "write") {
      found = true;
      EXPECT_DOUBLE_EQ(d.score, 1.0);
      EXPECT_TRUE(d.outlier);
    }
  }
  EXPECT_TRUE(found);
}

TEST(FindOutliers, NeedsAtLeastTwoMachines) {
  std::vector<MachineProfile> fleet;
  fleet.push_back({"solo", MakeSet(10)});
  EXPECT_TRUE(FindOutliers(fleet).empty());
}

TEST(FindOutliers, SupportsAlternativeMethods) {
  std::vector<MachineProfile> fleet;
  fleet.push_back({"a", MakeSet(10)});
  fleet.push_back({"b", MakeSet(22)});
  const auto by_chi = FindOutliers(fleet, CompareMethod::kChiSquare);
  ASSERT_FALSE(by_chi.empty());
  EXPECT_TRUE(by_chi[0].outlier);
}

}  // namespace
}  // namespace osprof
