#include "src/core/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace osprof {
namespace {

TEST(BucketMath, IndexMatchesFloorLog2) {
  EXPECT_EQ(BucketIndex(0), 0);
  EXPECT_EQ(BucketIndex(1), 0);
  EXPECT_EQ(BucketIndex(2), 1);
  EXPECT_EQ(BucketIndex(3), 1);
  EXPECT_EQ(BucketIndex(4), 2);
  EXPECT_EQ(BucketIndex(1023), 9);
  EXPECT_EQ(BucketIndex(1024), 10);
  EXPECT_EQ(BucketIndex((Cycles{1} << 26)), 26);
  EXPECT_EQ(BucketIndex((Cycles{1} << 26) - 1), 25);
  EXPECT_EQ(BucketIndex(~Cycles{0}), 63);
}

TEST(BucketMath, BoundsInvertIndex) {
  for (int b = 0; b < 40; ++b) {
    const Cycles lo = BucketLowerBound(b);
    const Cycles hi = BucketUpperBound(b);
    EXPECT_EQ(BucketIndex(lo == 0 ? 1 : lo), b == 0 ? 0 : b);
    EXPECT_EQ(BucketIndex(hi - 1), b);
    EXPECT_EQ(BucketIndex(hi), b + 1);
  }
}

TEST(BucketMath, MidLatencyIsArithmeticMidOfRange) {
  // For r = 1, the representative latency of bucket b is 3/2 * 2^b,
  // exactly the value the paper's Eq. 3 validation uses.
  EXPECT_DOUBLE_EQ(BucketMidLatency(10), 1.5 * 1024.0);
  EXPECT_DOUBLE_EQ(BucketMidLatency(0), 1.5);
}

TEST(BucketMath, HigherResolutionDoublesBucketDensity) {
  // r = 2 doubles bucket density (paper §3).
  EXPECT_EQ(BucketIndex(1024, 2), 20);
  EXPECT_EQ(BucketIndex(1449, 2), 21);  // 2^10.5 ~ 1448.2
  EXPECT_EQ(BucketIndex(2048, 2), 22);
}

class BucketResolutionTest : public ::testing::TestWithParam<int> {};

TEST_P(BucketResolutionTest, IndexIsMonotoneAndConsistentWithBounds) {
  const int r = GetParam();
  int last = -1;
  for (Cycles latency = 1; latency < (Cycles{1} << 34); latency = latency * 5 / 3 + 1) {
    const int b = BucketIndex(latency, r);
    EXPECT_GE(b, last);
    EXPECT_LE(BucketLowerBound(b, r), latency);
    EXPECT_LT(latency, BucketUpperBound(b, r) + 1);
    last = b;
  }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, BucketResolutionTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Histogram, AddSortsIntoCorrectBucket) {
  Histogram h(1);
  h.Add(1);
  h.Add(100);
  h.Add(100);
  h.Add(1 << 20);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(6), 2u);  // 100 -> bucket 6.
  EXPECT_EQ(h.bucket(20), 1u);
  EXPECT_EQ(h.TotalOperations(), 4u);
  EXPECT_EQ(h.recorded(), 4u);
  EXPECT_TRUE(h.CheckConsistency());
}

TEST(Histogram, TotalLatencyIsExact) {
  Histogram h(1);
  h.Add(100);
  h.Add(200);
  h.Add(300);
  EXPECT_EQ(h.total_latency(), 600u);
  EXPECT_DOUBLE_EQ(h.MeanLatency(), 200.0);
}

TEST(Histogram, BucketedMeanApproximatesTrueMean) {
  Histogram h(1);
  for (Cycles c = 1000; c < 2000; c += 10) {
    h.Add(c);
  }
  // All values land in bucket 9/10; the bucketed mean must be within a
  // factor of 2 of the true mean (log filtering's resolution guarantee).
  const double truth = h.MeanLatency();
  const double approx = h.BucketedMeanLatency();
  EXPECT_GT(approx, truth / 2.0);
  EXPECT_LT(approx, truth * 2.0);
}

TEST(Histogram, MergeAddsCountsAndChecksums) {
  Histogram a(1);
  Histogram b(1);
  a.Add(10);
  b.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.TotalOperations(), 3u);
  EXPECT_EQ(a.bucket(3), 2u);
  EXPECT_EQ(a.bucket(9), 1u);
  EXPECT_TRUE(a.CheckConsistency());
}

TEST(Histogram, MergeRejectsDifferentResolution) {
  Histogram a(1);
  Histogram b(2);
  EXPECT_THROW(a.Merge(b), std::invalid_argument);
}

TEST(Histogram, FirstLastNonEmpty) {
  Histogram h(1);
  EXPECT_EQ(h.FirstNonEmpty(), -1);
  EXPECT_EQ(h.LastNonEmpty(), -1);
  h.Add(100);
  h.Add(1 << 22);
  EXPECT_EQ(h.FirstNonEmpty(), 6);
  EXPECT_EQ(h.LastNonEmpty(), 22);
}

TEST(Histogram, NormalizedSumsToOne) {
  Histogram h(1);
  for (int i = 0; i < 100; ++i) {
    h.Add(static_cast<Cycles>(1) << (i % 10));
  }
  double sum = 0.0;
  for (double d : h.Normalized()) {
    sum += d;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, SetBucketMaintainsChecksum) {
  Histogram h(1);
  h.set_bucket(5, 10);
  h.set_bucket(8, 3);
  EXPECT_EQ(h.recorded(), 13u);
  EXPECT_TRUE(h.CheckConsistency());
  h.set_bucket(5, 4);  // Shrink: checksum follows.
  EXPECT_EQ(h.recorded(), 7u);
  EXPECT_TRUE(h.CheckConsistency());
}

TEST(Histogram, ClearResetsEverything) {
  Histogram h(1);
  h.Add(500);
  h.Clear();
  EXPECT_EQ(h.TotalOperations(), 0u);
  EXPECT_EQ(h.recorded(), 0u);
  EXPECT_EQ(h.total_latency(), 0u);
  EXPECT_TRUE(h.empty());
}

TEST(Histogram, RejectsBadResolution) {
  EXPECT_THROW(Histogram(0), std::invalid_argument);
  EXPECT_THROW(Histogram(-1), std::invalid_argument);
  EXPECT_THROW(Histogram(17), std::invalid_argument);
}

TEST(AtomicHistogram, SnapshotMatchesPlainSemantics) {
  AtomicHistogram h(1);
  h.Add(100);
  h.Add(100);
  h.Add(4096);
  const Histogram snap = h.Snapshot();
  EXPECT_EQ(snap.bucket(6), 2u);
  EXPECT_EQ(snap.bucket(12), 1u);
  EXPECT_EQ(snap.recorded(), 3u);
  EXPECT_EQ(snap.total_latency(), 100u + 100u + 4096u);
  EXPECT_TRUE(snap.CheckConsistency());
}

// §3.4: atomic updates never lose counts, even under heavy contention.
TEST(AtomicHistogram, NoLostUpdatesUnderContention) {
  AtomicHistogram h(1);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Add(128);  // Everyone hammers the same bucket.
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const Histogram snap = h.Snapshot();
  EXPECT_EQ(snap.TotalOperations(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_TRUE(snap.CheckConsistency());
}

// §3.4: per-thread shards also lose nothing, without atomics.
TEST(ShardedHistogram, NoLostUpdatesAcrossThreads) {
  ShardedHistogram h(1);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      Histogram* local = h.Local();
      for (int i = 0; i < kPerThread; ++i) {
        local->Add(128);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const Histogram merged = h.Merge();
  EXPECT_EQ(merged.TotalOperations(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_TRUE(merged.CheckConsistency());
  EXPECT_EQ(h.shard_count(), kThreads);
}

TEST(ShardedHistogram, LocalIsStablePerThread) {
  ShardedHistogram h(1);
  Histogram* a = h.Local();
  Histogram* b = h.Local();
  EXPECT_EQ(a, b);
  EXPECT_EQ(h.shard_count(), 1);
}

// The unlocked histogram CAN lose updates under contention -- and the
// checksum is designed to catch exactly that (§3.4 + §4).  We cannot force
// a loss deterministically, but whatever happens the consistency check
// must account for it: sum(buckets) <= recorded is not guaranteed under
// racing ++recorded either, so we only verify the checksum *mechanism* on
// a single thread here and accept the policy tradeoff.
TEST(Histogram, ChecksumDetectsManualTampering) {
  Histogram h(1);
  h.Add(100);
  h.Add(100);
  EXPECT_TRUE(h.CheckConsistency());
  h.SetTotals(h.recorded() + 1, h.total_latency());  // Simulate a lost update.
  EXPECT_FALSE(h.CheckConsistency());
}

}  // namespace
}  // namespace osprof
