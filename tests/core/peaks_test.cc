#include "src/core/peaks.h"

#include <gtest/gtest.h>

namespace osprof {
namespace {

TEST(FindPeaks, EmptyHistogramHasNoPeaks) {
  Histogram h(1);
  EXPECT_TRUE(FindPeaks(h).empty());
}

TEST(FindPeaks, SinglePeak) {
  Histogram h(1);
  h.set_bucket(6, 10);
  h.set_bucket(7, 100);
  h.set_bucket(8, 12);
  const auto peaks = FindPeaks(h);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].first_bucket, 6);
  EXPECT_EQ(peaks[0].last_bucket, 8);
  EXPECT_EQ(peaks[0].mode_bucket, 7);
  EXPECT_EQ(peaks[0].count, 122u);
  EXPECT_DOUBLE_EQ(peaks[0].mass, 1.0);
}

TEST(FindPeaks, TwoPeaksSeparatedByEmptyBuckets) {
  // The clone profile of Figure 1: an uncontended peak and a contended one.
  Histogram h(1);
  h.set_bucket(13, 9000);
  h.set_bucket(14, 2000);
  h.set_bucket(20, 500);
  h.set_bucket(21, 800);
  h.set_bucket(22, 300);
  const auto peaks = FindPeaks(h);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].mode_bucket, 13);
  EXPECT_EQ(peaks[1].mode_bucket, 21);
  EXPECT_NEAR(peaks[0].mass, 11000.0 / 12600.0, 1e-9);
  EXPECT_NEAR(peaks[1].mass, 1600.0 / 12600.0, 1e-9);
}

TEST(FindPeaks, SplitsAtDeepInteriorValley) {
  // Two modes connected by a shallow floor of counts: still two peaks.
  Histogram h(1);
  h.set_bucket(8, 10'000);
  h.set_bucket(9, 1'000);
  h.set_bucket(10, 20);   // Valley, ~2.7 decades below left, 1.7 below right.
  h.set_bucket(11, 1'000);
  h.set_bucket(12, 5'000);
  const auto peaks = FindPeaks(h);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].mode_bucket, 8);
  EXPECT_EQ(peaks[1].mode_bucket, 12);
}

TEST(FindPeaks, KeepsShallowDipAsOnePeak) {
  Histogram h(1);
  h.set_bucket(8, 1000);
  h.set_bucket(9, 800);  // Dip of ~0.1 decades: not a valley.
  h.set_bucket(10, 1000);
  const auto peaks = FindPeaks(h);
  ASSERT_EQ(peaks.size(), 1u);
}

TEST(FindPeaks, MinCountFiltersTinyPeaks) {
  Histogram h(1);
  h.set_bucket(6, 100'000);
  h.set_bucket(26, 3);  // A few preempted requests.
  PeakOptions opts;
  opts.min_count = 10;
  EXPECT_EQ(FindPeaks(h, opts).size(), 1u);
  opts.min_count = 1;
  EXPECT_EQ(FindPeaks(h, opts).size(), 2u);
}

TEST(FindPeaks, NoiseFloorSuppressssLoneSpecks) {
  Histogram h(1);
  h.set_bucket(6, 100'000);
  h.set_bucket(30, 1);
  PeakOptions opts;
  opts.noise_floor_fraction = 1e-4;
  const auto peaks = FindPeaks(h, opts);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].mode_bucket, 6);
}

TEST(FindPeaks, MeanLatencyUsesBucketMidpoints) {
  Histogram h(1);
  h.set_bucket(10, 100);
  const auto peaks = FindPeaks(h);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_DOUBLE_EQ(peaks[0].mean_latency, 1.5 * 1024.0);
}

TEST(Peak, ContainsChecksRange) {
  Peak p;
  p.first_bucket = 5;
  p.last_bucket = 9;
  EXPECT_TRUE(p.Contains(5));
  EXPECT_TRUE(p.Contains(9));
  EXPECT_FALSE(p.Contains(4));
  EXPECT_FALSE(p.Contains(10));
}

TEST(DiffPeaks, IdenticalStructureMatches) {
  Histogram h(1);
  h.set_bucket(6, 1000);
  h.set_bucket(20, 200);
  const auto pa = FindPeaks(h);
  const auto pb = FindPeaks(h);
  const PeakDiff d = DiffPeaks(pa, pb);
  EXPECT_TRUE(d.SameStructure());
  EXPECT_EQ(d.max_matched_mass_delta, 0.0);
}

TEST(DiffPeaks, DetectsNewPeak) {
  Histogram a(1);
  a.set_bucket(6, 1000);
  Histogram b(1);
  b.set_bucket(6, 1000);
  b.set_bucket(22, 300);  // Contention appeared.
  const PeakDiff d = DiffPeaks(FindPeaks(a), FindPeaks(b));
  EXPECT_FALSE(d.SameStructure());
  ASSERT_EQ(d.only_in_b.size(), 1u);
  EXPECT_EQ(d.only_in_b[0], 22);
  EXPECT_TRUE(d.only_in_a.empty());
}

TEST(DiffPeaks, ToleratesSmallModeShift) {
  Histogram a(1);
  a.set_bucket(10, 1000);
  Histogram b(1);
  b.set_bucket(11, 1000);
  EXPECT_TRUE(DiffPeaks(FindPeaks(a), FindPeaks(b), 1).SameStructure());
  EXPECT_FALSE(DiffPeaks(FindPeaks(a), FindPeaks(b), 0).SameStructure());
}

TEST(DiffPeaks, ReportsMassDelta) {
  Histogram a(1);
  a.set_bucket(10, 900);
  a.set_bucket(20, 100);
  Histogram b(1);
  b.set_bucket(10, 500);
  b.set_bucket(20, 500);
  const PeakDiff d = DiffPeaks(FindPeaks(a), FindPeaks(b));
  EXPECT_TRUE(d.SameStructure());
  EXPECT_NEAR(d.max_matched_mass_delta, 0.4, 1e-9);
}

TEST(DescribePeaks, FormatsHumanReadably) {
  Histogram h(1);
  h.set_bucket(6, 100);
  const std::string s = DescribePeaks(FindPeaks(h));
  EXPECT_NE(s.find("1 peak"), std::string::npos);
  EXPECT_NE(s.find("[6-6]@6"), std::string::npos);
}

// Property sweep: segmentation must cover every non-empty bucket exactly
// once when no filters are active.
class PeakCoverageTest : public ::testing::TestWithParam<int> {};

TEST_P(PeakCoverageTest, PeaksPartitionOccupiedBuckets) {
  const int seed = GetParam();
  Histogram h(1);
  // Deterministic pseudo-random multi-modal histogram.
  std::uint64_t state = static_cast<std::uint64_t>(seed) * 0x9E3779B97F4A7C15ULL + 1;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int m = 0; m < 3 + seed % 3; ++m) {
    const int center = 5 + static_cast<int>(next() % 25);
    const std::uint64_t height = 10 + next() % 100000;
    h.set_bucket(center, h.bucket(center) + height);
    if (center + 1 < h.num_buckets()) {
      h.set_bucket(center + 1, h.bucket(center + 1) + height / 10 + 1);
    }
  }
  const auto peaks = FindPeaks(h);
  std::uint64_t covered = 0;
  int last_end = -1;
  for (const Peak& p : peaks) {
    EXPECT_GT(p.first_bucket, last_end);  // Disjoint and ordered.
    last_end = p.last_bucket;
    covered += p.count;
  }
  EXPECT_EQ(covered, h.TotalOperations());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeakCoverageTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace osprof
