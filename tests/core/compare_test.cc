#include "src/core/compare.h"

#include <gtest/gtest.h>

namespace osprof {
namespace {

Histogram MakePeakAt(int bucket, std::uint64_t count = 1000) {
  Histogram h(1);
  h.set_bucket(bucket, count);
  return h;
}

class AllMethodsTest : public ::testing::TestWithParam<CompareMethod> {};

TEST_P(AllMethodsTest, IdenticalProfilesScoreZero) {
  Histogram a(1);
  for (int i = 0; i < 100; ++i) {
    a.Add(static_cast<Cycles>(100 + i * 37));
  }
  EXPECT_DOUBLE_EQ(Distance(GetParam(), a, a), 0.0);
}

TEST_P(AllMethodsTest, EmptyVsEmptyScoreZero) {
  Histogram a(1);
  Histogram b(1);
  EXPECT_DOUBLE_EQ(Distance(GetParam(), a, b), 0.0);
}

TEST_P(AllMethodsTest, DistanceIsSymmetric) {
  Histogram a = MakePeakAt(5);
  Histogram b = MakePeakAt(12, 400);
  b.set_bucket(6, 100);
  EXPECT_DOUBLE_EQ(Distance(GetParam(), a, b), Distance(GetParam(), b, a));
}

TEST_P(AllMethodsTest, DisjointPeaksScorePositive) {
  Histogram a = MakePeakAt(5);
  // Different location AND different magnitude, so shape raters and the
  // total-ops/total-latency raters all see a difference.
  Histogram b = MakePeakAt(20, 900);
  EXPECT_GT(Distance(GetParam(), a, b), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AllMethodsTest,
    ::testing::Values(CompareMethod::kChiSquare, CompareMethod::kTotalOps,
                      CompareMethod::kTotalLatency, CompareMethod::kEarthMovers,
                      CompareMethod::kIntersection, CompareMethod::kJeffrey,
                      CompareMethod::kMinkowskiL1, CompareMethod::kMinkowskiL2),
    [](const ::testing::TestParamInfo<CompareMethod>& info) {
      std::string name = CompareMethodName(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

// The key property from §3.2: bin-by-bin methods cannot tell a small peak
// shift from a large one, but EMD (cross-bin) can.
TEST(EarthMovers, GrowsWithShiftDistanceUnlikeChiSquare) {
  Histogram base = MakePeakAt(10);
  Histogram near = MakePeakAt(11);
  Histogram far = MakePeakAt(25);

  const double emd_near = EarthMoversDistance(base, near);
  const double emd_far = EarthMoversDistance(base, far);
  EXPECT_LT(emd_near, emd_far);

  // Chi-square saturates: disjoint is disjoint, regardless of distance.
  const double chi_near = ChiSquareDistance(base, near);
  const double chi_far = ChiSquareDistance(base, far);
  EXPECT_DOUBLE_EQ(chi_near, chi_far);
}

TEST(EarthMovers, WorkMatchesHandComputedTransport) {
  // Two unit masses one bucket apart: work = 1 * 1 bucket over normalized
  // mass 1.
  Histogram a = MakePeakAt(10, 100);
  Histogram b = MakePeakAt(11, 100);
  EXPECT_NEAR(EarthMoversWork(a, b), 1.0, 1e-12);

  // Half the mass moves two buckets: work = 0.5 * 2 = 1.
  Histogram c(1);
  c.set_bucket(10, 50);
  c.set_bucket(12, 50);
  Histogram d = MakePeakAt(10, 100);
  EXPECT_NEAR(EarthMoversWork(c, d), 1.0, 1e-12);
}

TEST(EarthMovers, NormalizedIsScaleInvariant) {
  Histogram small = MakePeakAt(10, 10);
  Histogram small2 = MakePeakAt(12, 10);
  Histogram big = MakePeakAt(10, 1'000'000);
  Histogram big2 = MakePeakAt(12, 1'000'000);
  EXPECT_NEAR(EarthMoversDistance(small, small2),
              EarthMoversDistance(big, big2), 1e-12);
}

TEST(ChiSquare, BoundedByTwo) {
  Histogram a = MakePeakAt(5);
  Histogram b = MakePeakAt(30);
  const double d = ChiSquareDistance(a, b);
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 2.0);
}

TEST(Intersection, FullOverlapZeroNoOverlapOne) {
  Histogram a = MakePeakAt(8);
  EXPECT_DOUBLE_EQ(IntersectionDistance(a, a), 0.0);
  Histogram b = MakePeakAt(20);
  EXPECT_DOUBLE_EQ(IntersectionDistance(a, b), 1.0);
}

TEST(Jeffrey, NonNegativeAndZeroOnIdentical) {
  Histogram a = MakePeakAt(8);
  Histogram b = MakePeakAt(9, 500);
  EXPECT_GE(JeffreyDivergence(a, b), 0.0);
  EXPECT_NEAR(JeffreyDivergence(a, a), 0.0, 1e-9);
}

TEST(Minkowski, L1DominatesL2) {
  Histogram a(1);
  a.set_bucket(5, 50);
  a.set_bucket(9, 50);
  Histogram b(1);
  b.set_bucket(6, 50);
  b.set_bucket(12, 50);
  EXPECT_GE(MinkowskiDistance(a, b, 1.0), MinkowskiDistance(a, b, 2.0));
}

TEST(Minkowski, RejectsOrderBelowOne) {
  Histogram a = MakePeakAt(5);
  EXPECT_THROW(MinkowskiDistance(a, a, 0.5), std::invalid_argument);
}

TEST(TotalRaters, SeeMagnitudeNotShape) {
  Histogram a = MakePeakAt(10, 1000);
  Histogram b = MakePeakAt(10, 4000);  // Same shape, 4x the ops.
  EXPECT_DOUBLE_EQ(EarthMoversDistance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(TotalOpsDifference(a, b), 0.75);
  EXPECT_GT(TotalLatencyDifference(a, b), 0.5);
}

TEST(Compare, RejectsResolutionMismatch) {
  Histogram a(1);
  Histogram b(2);
  EXPECT_THROW(ChiSquareDistance(a, b), std::invalid_argument);
  EXPECT_THROW(EarthMoversDistance(a, b), std::invalid_argument);
}

TEST(Compare, MethodNamesAreUnique) {
  EXPECT_EQ(CompareMethodName(CompareMethod::kEarthMovers), "earth-movers");
  EXPECT_EQ(CompareMethodName(CompareMethod::kChiSquare), "chi-square");
  EXPECT_NE(CompareMethodName(CompareMethod::kTotalOps),
            CompareMethodName(CompareMethod::kTotalLatency));
}

}  // namespace
}  // namespace osprof
