#include "src/core/preemption.h"

#include <gtest/gtest.h>

#include <cmath>

namespace osprof {
namespace {

TEST(ForcedPreemption, PaperNumbersAreAstronomicallySmall) {
  // §3.3: Y = 0.01, tperiod = 2^10, tcpu = tperiod/2, Q = 2^26 gives a
  // probability around 1e-280 (the paper reports 2.3e-280 with the same
  // first-order approximation of ln(0.99)).
  PreemptionParams p;
  p.tperiod = std::exp2(10);
  p.tcpu = std::exp2(9);
  p.yield_probability = 0.01;
  p.quantum = std::exp2(26);
  const double pr = ForcedPreemptionProbability(p);
  EXPECT_GT(pr, 0.0);
  EXPECT_LT(pr, 1e-270);
  EXPECT_NEAR(std::log10(pr), -286.0, 8.0);
}

TEST(ForcedPreemption, ZeroYieldReducesToBusyFraction) {
  PreemptionParams p;
  p.tperiod = 200.0;
  p.tcpu = 100.0;
  p.yield_probability = 0.0;
  p.quantum = 1e6;
  EXPECT_DOUBLE_EQ(ForcedPreemptionProbability(p), 0.5);
}

TEST(ForcedPreemption, MonotoneInYieldProbability) {
  PreemptionParams p;
  p.tperiod = 1000.0;
  p.tcpu = 500.0;
  p.quantum = 100'000.0;
  double last = 1.0;
  for (double y : {0.0, 0.001, 0.01, 0.1, 0.5}) {
    p.yield_probability = y;
    const double pr = ForcedPreemptionProbability(p);
    EXPECT_LE(pr, last);
    last = pr;
  }
}

TEST(ForcedPreemption, DeclinesRapidlyWhenTperiodBelowQY) {
  // The paper's differential analysis: the function collapses once
  // tperiod << Q * Y.
  PreemptionParams p;
  p.tcpu = 100.0;
  p.yield_probability = 0.01;
  p.quantum = 1e6;  // Q * Y = 1e4.
  p.tperiod = 1e5;  // Above QY: mild attenuation.
  const double above = ForcedPreemptionProbability(p);
  p.tperiod = 1e3;  // Below QY: severe attenuation.
  p.tcpu = 1.0;     // Keep busy fraction comparable (1e-3 vs 1e-3).
  const double below = ForcedPreemptionProbability(p);
  EXPECT_LT(below, above * 1e-3);
}

TEST(ForcedPreemption, ValidatesArguments) {
  PreemptionParams p;
  p.tcpu = 1;
  p.tperiod = 0;
  p.quantum = 10;
  EXPECT_THROW(ForcedPreemptionProbability(p), std::invalid_argument);
  p.tperiod = 10;
  p.quantum = 0;
  EXPECT_THROW(ForcedPreemptionProbability(p), std::invalid_argument);
  p.quantum = 10;
  p.yield_probability = 1.5;
  EXPECT_THROW(ForcedPreemptionProbability(p), std::invalid_argument);
}

TEST(ExpectedPreempted, MatchesHandComputation) {
  // The paper's formula: expected = sum_b n_b * (3/2 * 2^b) / Q.
  Histogram h(1);
  h.set_bucket(6, 1'000'000);   // tcpu = 96 cycles each.
  h.set_bucket(10, 1'000);      // tcpu = 1536 cycles each.
  const double q = std::exp2(26);
  const double expected = ExpectedPreemptedRequests(h, q);
  const double hand =
      (1e6 * 1.5 * 64.0 + 1e3 * 1.5 * 1024.0) / q;
  EXPECT_NEAR(expected, hand, hand * 1e-12);
}

TEST(ExpectedPreempted, EmptyProfileExpectsZero) {
  Histogram h(1);
  EXPECT_DOUBLE_EQ(ExpectedPreemptedRequests(h, 1e6), 0.0);
}

TEST(ExpectedPreempted, RejectsNonPositiveQuantum) {
  Histogram h(1);
  EXPECT_THROW(ExpectedPreemptedRequests(h, 0.0), std::invalid_argument);
}

TEST(PreemptionBucket, IsLogOfQuantum) {
  EXPECT_EQ(PreemptionBucket(std::exp2(26)), 26);
  EXPECT_EQ(PreemptionBucket(std::exp2(20)), 20);
  EXPECT_EQ(PreemptionBucket(std::exp2(26), 2), 52);
}

// Paper cross-check: Linux profile with 2e8 requests in bucket 6-ish CPU
// time and Q = 2^26 expects a few hundred preemptions -- i.e. observable
// only with enormous request counts, which is the paper's whole point.
TEST(ForcedPreemption, Figure3ScaleExpectation) {
  Histogram h(1);
  h.set_bucket(6, 200'000'000);
  const double expected = ExpectedPreemptedRequests(h, std::exp2(26));
  EXPECT_GT(expected, 100.0);
  EXPECT_LT(expected, 1000.0);
}

}  // namespace
}  // namespace osprof
