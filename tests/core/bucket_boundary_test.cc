// Satellite fix: BucketIndex vs BucketLowerBound agreement at resolutions
// above 1.  The old float-only BucketIndex could disagree with the log2
// boundary by one bucket exactly at powers of 2^(b/r); these tests pin the
// exact-integer semantics: bucket(x) = floor(r * log2 x), with boundaries
// computed by the big-integer predicate x^r >= 2^b.

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/histogram.h"

namespace osprof {
namespace {

// Independent oracle for small powers: computes floor(r log2 x) by exact
// 128-bit arithmetic, valid while x^r fits in __int128 (x < 2^(128/r)).
int OracleBucket128(Cycles x, int r) {
  if (x <= 1) {
    return 0;
  }
  unsigned __int128 pow = 1;
  for (int i = 0; i < r; ++i) {
    pow *= x;
  }
  int bits = 0;
  while (pow > 1) {
    pow >>= 1;
    ++bits;
  }
  return bits;  // floor(log2(x^r)) == floor(r log2 x).
}

TEST(BucketBoundaryTest, Resolution1MatchesClzPath) {
  for (int b = 0; b < kMaxLog2Buckets; ++b) {
    const Cycles lo = BucketLowerBound(b, 1);
    EXPECT_EQ(BucketIndex(lo, 1), b) << "bucket " << b;
    if (lo > 1) {
      EXPECT_EQ(BucketIndex(lo - 1, 1), b - 1) << "bucket " << b;
    }
  }
  // The last bucket's upper bound saturates instead of shifting by 64 (UB).
  EXPECT_EQ(BucketUpperBound(63, 1), ~Cycles{0});
  EXPECT_EQ(BucketIndex(~Cycles{0}, 1), 63);
}

// The ISSUE's boundary sweep: for r in {1, 2, 4, 16}, every bucket's lower
// bound must land in its own bucket and the preceding integer must land
// strictly below.  Degenerate buckets (no integer latency of their own;
// only possible at high resolution in the lowest buckets) are skipped.
TEST(BucketBoundaryTest, BoundarySweep) {
  for (int r : {1, 2, 4, 16}) {
    const std::vector<Cycles>& bounds = BucketBounds(r);
    ASSERT_EQ(bounds.size(), static_cast<std::size_t>(kMaxLog2Buckets * r + 1));
    const int max_bucket = kMaxLog2Buckets * r - 1;
    for (int b = 1; b <= max_bucket; ++b) {
      const Cycles lo = BucketLowerBound(b, r);
      const Cycles next = BucketUpperBound(b, r);
      ASSERT_GE(next, lo) << "r=" << r << " b=" << b;
      if (next == lo) {
        continue;  // Degenerate: bucket b owns no integer latency.
      }
      EXPECT_EQ(BucketIndex(lo, r), b) << "r=" << r << " b=" << b;
      if (lo > 1) {
        EXPECT_LT(BucketIndex(lo - 1, r), b) << "r=" << r << " b=" << b;
      }
      if (next != ~Cycles{0}) {
        EXPECT_GT(BucketIndex(next, r), b) << "r=" << r << " b=" << b;
      }
    }
  }
}

TEST(BucketBoundaryTest, Resolution2FullRangeAgainstOracle) {
  // x^2 fits in __int128 for every 64-bit x: check widely spread samples
  // including the exact boundary neighborhoods.
  std::vector<Cycles> samples;
  for (Cycles x = 2; x < 100; ++x) {
    samples.push_back(x);
  }
  for (int shift = 7; shift < 64; ++shift) {
    const Cycles base = Cycles{1} << shift;
    for (Cycles d : {Cycles{0}, Cycles{1}, base / 3, base / 2}) {
      samples.push_back(base + d);
      samples.push_back(base - 1 - d % (base / 2));
    }
  }
  samples.push_back(~Cycles{0});
  for (Cycles x : samples) {
    EXPECT_EQ(BucketIndex(x, 2), OracleBucket128(x, 2)) << "x=" << x;
  }
}

TEST(BucketBoundaryTest, Resolution4BelowThirtyTwoBitsAgainstOracle) {
  // x^4 fits in __int128 for x < 2^32.
  for (Cycles x = 2; x < 70'000; x += (x < 4096 ? 1 : 997)) {
    EXPECT_EQ(BucketIndex(x, 4), OracleBucket128(x, 4)) << "x=" << x;
  }
  for (int shift = 17; shift < 32; ++shift) {
    for (Cycles x :
         {(Cycles{1} << shift) - 1, Cycles{1} << shift,
          (Cycles{1} << shift) + 1}) {
      EXPECT_EQ(BucketIndex(x, 4), OracleBucket128(x, 4)) << "x=" << x;
    }
  }
}

TEST(BucketBoundaryTest, Resolution16SmallValuesExhaustive) {
  // x^16 fits in __int128 for x <= 255: exhaustive check of the range where
  // buckets are densest and float drift was most likely.
  for (Cycles x = 0; x <= 255; ++x) {
    EXPECT_EQ(BucketIndex(x, 16), OracleBucket128(x, 16)) << "x=" << x;
  }
}

TEST(BucketBoundaryTest, PowAtLeastMatchesOracle) {
  EXPECT_FALSE(internal::PowAtLeast(0, 3, 0));
  EXPECT_TRUE(internal::PowAtLeast(1, 5, 0));
  EXPECT_FALSE(internal::PowAtLeast(1, 5, 1));
  EXPECT_TRUE(internal::PowAtLeast(2, 16, 16));
  EXPECT_FALSE(internal::PowAtLeast(2, 16, 17));
  // 3^4 = 81: >= 2^6 (64), < 2^7 (128).
  EXPECT_TRUE(internal::PowAtLeast(3, 4, 6));
  EXPECT_FALSE(internal::PowAtLeast(3, 4, 7));
  // Max latency at r=16 must clear the top exponent used by the tables.
  EXPECT_TRUE(internal::PowAtLeast(~Cycles{0}, 16, 16 * 64 - 1));
}

TEST(BucketBoundaryTest, HistogramUsesExactBuckets) {
  Histogram h(2);
  // 2^(13/2) = 90.5...: 90 -> bucket 12, 91 -> bucket 13.
  h.Add(90);
  h.Add(91);
  EXPECT_EQ(h.bucket(12), 1u);
  EXPECT_EQ(h.bucket(13), 1u);
  EXPECT_TRUE(h.CheckConsistency());
}

}  // namespace
}  // namespace osprof
