// Algebraic properties of Histogram::Merge and ProfileSet::Merge: the
// multi-trial runner depends on merge being associative and commutative
// (so merged totals are independent of the worker count) and on the empty
// set being an identity.

#include <sstream>
#include <stdexcept>

#include "gtest/gtest.h"
#include "src/core/profile.h"

namespace osprof {
namespace {

std::string Serialized(const ProfileSet& set) {
  std::ostringstream os;
  set.Serialize(os);
  return os.str();
}

ProfileSet MakeSet(int resolution, std::uint64_t salt) {
  ProfileSet set(resolution);
  for (std::uint64_t i = 1; i <= 40; ++i) {
    set.Add("read", salt + i * i);
    if (i % 3 == 0) {
      set.Add("write", salt * 7 + i * 1000);
    }
  }
  if (salt % 2 == 0) {
    set.Add("fsync", salt + 5);  // Op present in only some operands.
  }
  return set;
}

TEST(MergePropertyTest, Commutative) {
  for (int r : {1, 2, 4}) {
    ProfileSet ab = MakeSet(r, 3);
    ab.Merge(MakeSet(r, 8));
    ProfileSet ba = MakeSet(r, 8);
    ba.Merge(MakeSet(r, 3));
    EXPECT_EQ(Serialized(ab), Serialized(ba)) << "resolution " << r;
  }
}

TEST(MergePropertyTest, Associative) {
  for (int r : {1, 2, 4}) {
    // (a + b) + c
    ProfileSet left = MakeSet(r, 3);
    left.Merge(MakeSet(r, 8));
    left.Merge(MakeSet(r, 21));
    // a + (b + c)
    ProfileSet bc = MakeSet(r, 8);
    bc.Merge(MakeSet(r, 21));
    ProfileSet right = MakeSet(r, 3);
    right.Merge(bc);
    EXPECT_EQ(Serialized(left), Serialized(right)) << "resolution " << r;
  }
}

TEST(MergePropertyTest, EmptySetIsIdentity) {
  ProfileSet a = MakeSet(2, 4);
  const std::string before = Serialized(a);
  a.Merge(ProfileSet(2));
  EXPECT_EQ(Serialized(a), before);

  ProfileSet empty(2);
  empty.Merge(a);
  EXPECT_EQ(Serialized(empty), before);
}

TEST(MergePropertyTest, MergePreservesTotalsAndChecksum) {
  ProfileSet a = MakeSet(1, 3);
  ProfileSet b = MakeSet(1, 8);
  const std::uint64_t ops_a = a.Find("read")->total_operations();
  const std::uint64_t ops_b = b.Find("read")->total_operations();
  const Cycles lat_a = a.Find("read")->total_latency();
  const Cycles lat_b = b.Find("read")->total_latency();
  a.Merge(b);
  EXPECT_EQ(a.Find("read")->total_operations(), ops_a + ops_b);
  EXPECT_EQ(a.Find("read")->total_latency(), lat_a + lat_b);
  EXPECT_TRUE(a.Find("read")->histogram().CheckConsistency());
}

TEST(MergePropertyTest, ResolutionMismatchThrows) {
  ProfileSet a(1);
  ProfileSet b(2);
  b.Add("read", 100);
  EXPECT_THROW(a.Merge(b), std::invalid_argument);
}

TEST(MergePropertyTest, ProfileMergeKeepsOwnName) {
  Profile a("alpha", Histogram(1));
  Profile b("beta", Histogram(1));
  a.Merge(b);
  EXPECT_EQ(a.op_name(), "alpha");
}

}  // namespace
}  // namespace osprof
