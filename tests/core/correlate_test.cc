#include "src/core/correlate.h"

#include <gtest/gtest.h>

namespace osprof {
namespace {

std::vector<Peak> TwoPeaks() {
  Peak first;
  first.first_bucket = 6;
  first.last_bucket = 7;
  Peak second;
  second.first_bucket = 16;
  second.last_bucket = 23;
  return {first, second};
}

TEST(ValueCorrelator, RoutesValuesByLatencyPeak) {
  ValueCorrelator c("readdir_past_EOF", TwoPeaks());
  // Figure 8's scheme: value is past_EOF * 1024, so 0 -> bucket 0 and
  // 1024 -> bucket 10.
  c.Record(100, 1024);     // Latency bucket 6 -> first peak, past EOF.
  c.Record(90, 1024);      // First peak again.
  c.Record(100'000, 0);    // Bucket 16 -> second peak, not past EOF.
  c.Record(2'000'000, 0);  // Bucket 20 -> second peak.

  EXPECT_EQ(c.peak_values(0).TotalOperations(), 2u);
  EXPECT_EQ(c.peak_values(0).bucket(10), 2u);  // All past-EOF.
  EXPECT_EQ(c.peak_values(1).TotalOperations(), 2u);
  EXPECT_EQ(c.peak_values(1).bucket(0), 2u);  // None past-EOF.
  EXPECT_EQ(c.unmatched_values().TotalOperations(), 0u);
}

TEST(ValueCorrelator, UnmatchedLatenciesGoToOverflow) {
  ValueCorrelator c("v", TwoPeaks());
  c.Record(1 << 30, 7);  // Bucket 30: outside both peaks.
  EXPECT_EQ(c.unmatched_values().TotalOperations(), 1u);
  EXPECT_EQ(c.peak_values(0).TotalOperations(), 0u);
  EXPECT_EQ(c.peak_values(1).TotalOperations(), 0u);
}

TEST(ValueCorrelator, FirstMatchingPeakWinsOnOverlap) {
  Peak a;
  a.first_bucket = 5;
  a.last_bucket = 10;
  Peak b;
  b.first_bucket = 8;
  b.last_bucket = 12;
  ValueCorrelator c("v", {a, b});
  c.Record(512, 1);  // Bucket 9, in both; must go to the first.
  EXPECT_EQ(c.peak_values(0).TotalOperations(), 1u);
  EXPECT_EQ(c.peak_values(1).TotalOperations(), 0u);
}

TEST(ValueCorrelator, OtherPeaksValuesMergesComplement) {
  ValueCorrelator c("v", TwoPeaks());
  c.Record(100, 1024);
  c.Record(100'000, 0);
  c.Record(2'000'000, 0);
  const Histogram others = c.OtherPeaksValues(0);
  EXPECT_EQ(others.TotalOperations(), 2u);
  EXPECT_EQ(others.bucket(0), 2u);
}

TEST(ValueCorrelator, ExposesConfiguredPeaks) {
  ValueCorrelator c("v", TwoPeaks());
  EXPECT_EQ(c.num_peaks(), 2);
  EXPECT_EQ(c.peak(0).first_bucket, 6);
  EXPECT_EQ(c.peak(1).last_bucket, 23);
  EXPECT_EQ(c.value_name(), "v");
}

// The Figure 8 demonstration end to end: when every first-peak request is
// past-EOF and no other request is, the correlation separates perfectly.
TEST(ValueCorrelator, Figure8SeparationProperty) {
  ValueCorrelator c("readdir_past_EOF", TwoPeaks());
  for (int i = 0; i < 1000; ++i) {
    const bool past_eof = i % 3 == 0;
    const Cycles latency = past_eof ? 100 : 200'000;
    c.Record(latency, past_eof ? 1024 : 0);
  }
  // First peak: all values at bucket 10 (1024), none at 0.
  EXPECT_EQ(c.peak_values(0).bucket(0), 0u);
  EXPECT_GT(c.peak_values(0).bucket(10), 0u);
  // Other peaks: all values at bucket 0.
  const Histogram others = c.OtherPeaksValues(0);
  EXPECT_EQ(others.bucket(10), 0u);
  EXPECT_GT(others.bucket(0), 0u);
}

}  // namespace
}  // namespace osprof
