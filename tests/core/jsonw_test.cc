#include "src/core/jsonw.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace osjson {
namespace {

TEST(JsonwTest, Scalars) {
  EXPECT_EQ(Value().Dump(), "null\n");
  EXPECT_EQ(Value::Bool(true).Dump(), "true\n");
  EXPECT_EQ(Value::Bool(false).Dump(), "false\n");
  EXPECT_EQ(Value::Int(-42).Dump(), "-42\n");
  EXPECT_EQ(Value::Uint(7).Dump(), "7\n");
  EXPECT_EQ(Value::Str("hi").Dump(), "\"hi\"\n");
  EXPECT_EQ(Value::Double(1.5).Dump(), "1.5\n");
}

TEST(JsonwTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Value::Double(std::numeric_limits<double>::infinity()).Dump(),
            "null\n");
  EXPECT_EQ(Value::Double(std::nan("")).Dump(), "null\n");
}

TEST(JsonwTest, StringEscaping) {
  EXPECT_EQ(Value::Str("a\"b\\c\nd\te\rf").Dump(),
            "\"a\\\"b\\\\c\\nd\\te\\rf\"\n");
  // Control characters use \u00xx.
  EXPECT_EQ(Value::Str(std::string(1, '\x01')).Dump(), "\"\\u0001\"\n");
}

TEST(JsonwTest, EmptyContainers) {
  EXPECT_EQ(Value::Array().Dump(), "[]\n");
  EXPECT_EQ(Value::Object().Dump(), "{}\n");
}

TEST(JsonwTest, ArrayIndentation) {
  Value a = Value::Array();
  a.Append(Value::Int(1));
  a.Append(Value::Str("two"));
  EXPECT_EQ(a.Dump(), "[\n  1,\n  \"two\"\n]\n");
}

TEST(JsonwTest, ObjectKeepsInsertionOrder) {
  Value o = Value::Object();
  o.Set("zebra", Value::Int(1));
  o.Set("apple", Value::Int(2));
  const std::string dump = o.Dump();
  EXPECT_LT(dump.find("zebra"), dump.find("apple"));
}

TEST(JsonwTest, SetReplacesInPlace) {
  Value o = Value::Object();
  o.Set("k", Value::Int(1));
  o.Set("other", Value::Int(2));
  o.Set("k", Value::Int(3));
  const std::string dump = o.Dump();
  EXPECT_NE(dump.find("\"k\": 3"), std::string::npos);
  EXPECT_EQ(dump.find("\"k\": 1"), std::string::npos);
  // Replacement keeps the original position.
  EXPECT_LT(dump.find("\"k\""), dump.find("\"other\""));
}

TEST(JsonwTest, NestedDocument) {
  Value doc = Value::Object();
  Value arr = Value::Array();
  Value inner = Value::Object();
  inner.Set("pass", Value::Bool(true));
  arr.Append(std::move(inner));
  doc.Set("checks", std::move(arr));
  EXPECT_EQ(doc.Dump(),
            "{\n"
            "  \"checks\": [\n"
            "    {\n"
            "      \"pass\": true\n"
            "    }\n"
            "  ]\n"
            "}\n");
}

}  // namespace
}  // namespace osjson
