#include "src/core/clock.h"

#include <gtest/gtest.h>

namespace osprof {
namespace {

TEST(ReadTsc, IsMonotonicNonDecreasing) {
  Cycles last = ReadTsc();
  for (int i = 0; i < 1000; ++i) {
    const Cycles now = ReadTsc();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(ReadTsc, AdvancesOverBusyWork) {
  const Cycles start = ReadTsc();
  volatile double sink = 1.0;
  for (int i = 0; i < 100'000; ++i) {
    sink = sink * 1.0000001 + 0.1;
  }
  EXPECT_GT(ReadTsc(), start);
}

TEST(EstimateTscHz, ReturnsPlausibleFrequency) {
  const double hz = EstimateTscHz(5);
  // Anything between 100 MHz and 10 GHz is a working clock.
  EXPECT_GT(hz, 1e8);
  EXPECT_LT(hz, 1e10);
}

TEST(FormatSeconds, MatchesPaperFigureLabels) {
  EXPECT_EQ(FormatSeconds(28e-9), "28ns");
  EXPECT_EQ(FormatSeconds(903e-9), "903ns");
  EXPECT_EQ(FormatSeconds(28e-6), "28us");
  EXPECT_EQ(FormatSeconds(925e-6), "925us");
  EXPECT_EQ(FormatSeconds(29e-3), "29ms");
  EXPECT_EQ(FormatSeconds(947e-3), "947ms");
  EXPECT_EQ(FormatSeconds(30.0), "30s");
}

TEST(FormatSeconds, SubNanosecondUsesNs) {
  const std::string s = FormatSeconds(0.4e-9);
  EXPECT_NE(s.find("ns"), std::string::npos);
}

TEST(CyclesConversions, RoundTrip) {
  const double hz = kPaperCpuHz;
  EXPECT_EQ(SecondsToCycles(1.0, hz), static_cast<Cycles>(hz));
  EXPECT_DOUBLE_EQ(CyclesToSeconds(SecondsToCycles(0.004, hz), hz), 0.004);
}

TEST(FormatCycles, UsesFrequency) {
  // 1.7e9 cycles at 1.7 GHz is one second.
  EXPECT_EQ(FormatCycles(static_cast<Cycles>(1.7e9), kPaperCpuHz), "1s");
}

TEST(FakeClock, AdvancesManually) {
  FakeClock clock(100);
  EXPECT_EQ(clock.Now(), 100u);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150u);
  clock.Set(7);
  EXPECT_EQ(clock.Now(), 7u);
}

}  // namespace
}  // namespace osprof
