#include "src/core/op_table.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/profile.h"

namespace osprof {
namespace {

TEST(OpTable, InternAssignsDenseStableIds) {
  OpTable table;
  const OpId read = table.Intern("read");
  const OpId write = table.Intern("write");
  const OpId llseek = table.Intern("llseek");
  EXPECT_EQ(read, 0u);
  EXPECT_EQ(write, 1u);
  EXPECT_EQ(llseek, 2u);
  // Re-interning returns the original id.
  EXPECT_EQ(table.Intern("read"), read);
  EXPECT_EQ(table.Intern("write"), write);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.Name(read), "read");
  EXPECT_EQ(table.Name(llseek), "llseek");
}

TEST(OpTable, FindDoesNotIntern) {
  OpTable table;
  EXPECT_EQ(table.Find("read"), kInvalidOpId);
  EXPECT_TRUE(table.empty());
  const OpId id = table.Intern("read");
  EXPECT_EQ(table.Find("read"), id);
  EXPECT_EQ(table.Find("write"), kInvalidOpId);
  EXPECT_EQ(table.size(), 1u);
}

TEST(OpTable, ByNameIteratesLexicographically) {
  OpTable table;
  table.Intern("write");
  table.Intern("llseek");
  table.Intern("read");
  std::vector<std::string> names;
  for (const auto& [name, id] : table.by_name()) {
    names.push_back(name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"llseek", "read", "write"}));
}

TEST(ProbeHandle, DefaultIsInvalid) {
  ProbeHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_EQ(handle.id(), kInvalidOpId);
  EXPECT_TRUE(ProbeHandle(0).valid());
}

// The interning-order independence guarantee: two sets whose operations
// were first recorded in different orders serialize byte-identically.
TEST(ProfileSetInterning, RecordOrderDoesNotChangeSerialization) {
  ProfileSet forward(1);
  forward.Add("open", 100);
  forward.Add("read", 2'000);
  forward.Add("write", 3'000);
  forward.Add("read", 2'100);

  ProfileSet reversed(1);
  reversed.Add("write", 3'000);
  reversed.Add("read", 2'100);
  reversed.Add("read", 2'000);
  reversed.Add("open", 100);

  EXPECT_EQ(forward.ToString(), reversed.ToString());
  EXPECT_EQ(forward.OperationNames(), reversed.OperationNames());
}

TEST(ProfileSetInterning, HandleRecordMatchesStringRecord) {
  ProfileSet by_string(1);
  ProfileSet by_handle(1);
  const ProbeHandle read = by_handle.Resolve("read");
  const ProbeHandle write = by_handle.Resolve("write");
  for (int i = 0; i < 100; ++i) {
    const Cycles latency = static_cast<Cycles>(50 + i * 37);
    by_string.Add("read", latency);
    by_handle.AddById(read.id(), latency);
  }
  by_string.Add("write", 12'345);
  by_handle.AddById(write.id(), 12'345);
  EXPECT_EQ(by_string.ToString(), by_handle.ToString());
}

// Pre-resolving a probe that never fires must not perturb any observable
// view of the set -- this is what keeps attach-time resolution (ten
// ProfiledVfs handles, four DriverProfiler disk keys) from leaking empty
// profiles into golden outputs.
TEST(ProfileSetInterning, ResolvedButUnrecordedOpsStayInvisible) {
  ProfileSet set(1);
  const ProbeHandle never_fired = set.Resolve("mmap");
  EXPECT_TRUE(never_fired.valid());
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.Find("mmap"), nullptr);
  EXPECT_TRUE(set.OperationNames().empty());
  EXPECT_EQ(set.ToString(), "# osprof profile set v1\nresolution 1\n");

  set.Add("read", 500);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.OperationNames(), std::vector<std::string>{"read"});
  EXPECT_EQ(set.Find("mmap"), nullptr);

  // Once the probe fires, the op appears exactly like a declared one.
  set.AddById(never_fired.id(), 700);
  EXPECT_EQ(set.size(), 2u);
  ASSERT_NE(set.Find("mmap"), nullptr);
  EXPECT_EQ(set.Find("mmap")->total_operations(), 1u);
}

TEST(ProfileSetInterning, ClearCountsKeepsHandlesValid) {
  ProfileSet set(1);
  const ProbeHandle read = set.Resolve("read");
  set.AddById(read.id(), 1'000);
  set.AddById(read.id(), 2'000);
  ASSERT_NE(set.Find("read"), nullptr);
  EXPECT_EQ(set.Find("read")->total_operations(), 2u);

  set.ClearCounts();
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.Find("read"), nullptr);
  // Same handle, same id, still records into the same op.
  EXPECT_EQ(set.Resolve("read").id(), read.id());
  set.AddById(read.id(), 3'000);
  ASSERT_NE(set.Find("read"), nullptr);
  EXPECT_EQ(set.Find("read")->total_operations(), 1u);
  EXPECT_EQ(set.Find("read")->total_latency(), 3'000u);
}

TEST(ProfileSetInterning, MergeAndParseDeclareOps) {
  // Parse round-trips profiles with recorded=0 (declared via operator[]).
  ProfileSet declared(1);
  declared["touched_never_recorded"];
  const std::string text = declared.ToString();
  EXPECT_NE(text.find("profile touched_never_recorded"), std::string::npos);
  const ProfileSet reparsed = ProfileSet::ParseString(text);
  EXPECT_EQ(reparsed.ToString(), text);

  // Merge carries visible ops (even empty ones) into the target.
  ProfileSet target(1);
  target.Merge(declared);
  EXPECT_EQ(target.size(), 1u);
}

}  // namespace
}  // namespace osprof
