#include "src/core/analysis.h"

#include <gtest/gtest.h>

namespace osprof {
namespace {

void FillPeak(ProfileSet* set, const std::string& op, int bucket,
              std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    set->Add(op, BucketLowerBound(bucket) + 1);
  }
}

TEST(CompareProfileSets, IdenticalSetsSelectNothing) {
  ProfileSet a(1);
  FillPeak(&a, "read", 10, 1000);
  FillPeak(&a, "write", 14, 500);
  const AnalysisReport report = CompareProfileSets(a, a);
  EXPECT_TRUE(report.Interesting().empty());
  EXPECT_EQ(report.pairs.size(), 2u);
}

TEST(CompareProfileSets, NewPeakIsInteresting) {
  // The llseek scenario: one process vs two -- a contention peak appears.
  ProfileSet one(1);
  FillPeak(&one, "llseek", 8, 10'000);
  FillPeak(&one, "read", 20, 10'000);
  ProfileSet two(1);
  FillPeak(&two, "llseek", 8, 7'500);
  FillPeak(&two, "llseek", 21, 2'500);  // Contended path.
  FillPeak(&two, "read", 20, 10'000);

  const AnalysisReport report = CompareProfileSets(one, two);
  const auto interesting = report.Interesting();
  ASSERT_EQ(interesting.size(), 1u);
  EXPECT_EQ(interesting[0]->op_name, "llseek");
  EXPECT_FALSE(interesting[0]->peak_diff.SameStructure());
}

TEST(CompareProfileSets, VanishedOperationIsInteresting) {
  ProfileSet a(1);
  FillPeak(&a, "read", 10, 1000);
  FillPeak(&a, "fsync", 22, 800);
  ProfileSet b(1);
  FillPeak(&b, "read", 10, 1000);
  const AnalysisReport report = CompareProfileSets(a, b);
  const auto interesting = report.Interesting();
  ASSERT_EQ(interesting.size(), 1u);
  EXPECT_EQ(interesting[0]->op_name, "fsync");
  EXPECT_EQ(interesting[0]->reason, "only in first set");
}

TEST(CompareProfileSets, InsignificantOperationsAreDropped) {
  ProfileSet a(1);
  FillPeak(&a, "read", 10, 1'000'000);
  FillPeak(&a, "rare", 10, 3);
  ProfileSet b(1);
  FillPeak(&b, "read", 10, 1'000'000);
  FillPeak(&b, "rare", 12, 3);  // Shape changed, but negligible weight.
  const AnalysisReport report = CompareProfileSets(a, b);
  for (const PairReport& p : report.pairs) {
    if (p.op_name == "rare") {
      EXPECT_FALSE(p.interesting);
      EXPECT_NE(p.reason.find("insignificant"), std::string::npos);
    }
  }
}

TEST(CompareProfileSets, InterestingPairsSortFirst) {
  ProfileSet a(1);
  FillPeak(&a, "calm", 10, 10'000);
  FillPeak(&a, "wild", 10, 10'000);
  ProfileSet b(1);
  FillPeak(&b, "calm", 10, 10'000);
  FillPeak(&b, "wild", 24, 10'000);
  const AnalysisReport report = CompareProfileSets(a, b);
  ASSERT_GE(report.pairs.size(), 2u);
  EXPECT_EQ(report.pairs[0].op_name, "wild");
  EXPECT_TRUE(report.pairs[0].interesting);
}

TEST(CompareProfileSets, MethodIsConfigurable) {
  ProfileSet a(1);
  FillPeak(&a, "op", 10, 1000);
  ProfileSet b(1);
  FillPeak(&b, "op", 10, 4000);  // Same shape, more ops.
  AnalysisOptions emd_opts;
  emd_opts.method = CompareMethod::kEarthMovers;
  emd_opts.score_threshold = DefaultThreshold(CompareMethod::kEarthMovers);
  const AnalysisReport by_shape = CompareProfileSets(a, b, emd_opts);
  EXPECT_TRUE(by_shape.Interesting().empty());  // Shape is identical.

  AnalysisOptions ops_opts;
  ops_opts.method = CompareMethod::kTotalOps;
  ops_opts.score_threshold = DefaultThreshold(CompareMethod::kTotalOps);
  const AnalysisReport by_ops = CompareProfileSets(a, b, ops_opts);
  ASSERT_EQ(by_ops.Interesting().size(), 1u);  // 4x the operations.
}

TEST(CompareProfileSets, SummaryMentionsSelectedOps) {
  ProfileSet a(1);
  FillPeak(&a, "findfirst", 12, 1000);
  ProfileSet b(1);
  FillPeak(&b, "findfirst", 28, 1000);
  const AnalysisReport report = CompareProfileSets(a, b);
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("findfirst"), std::string::npos);
  EXPECT_NE(summary.find("selected 1 of 1"), std::string::npos);
}

TEST(RankByLatency, OrdersAndAccumulates) {
  ProfileSet set(1);
  FillPeak(&set, "big", 20, 100);     // 100 * ~1.5M cycles.
  FillPeak(&set, "small", 10, 100);   // 100 * ~1.5K cycles.
  const auto ranked = RankByLatency(set);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].op_name, "big");
  EXPECT_GT(ranked[0].latency_fraction, 0.99);
  EXPECT_NEAR(ranked.back().cumulative_fraction, 1.0, 1e-9);
}

TEST(RankByLatency, EmptySet) {
  ProfileSet set(1);
  EXPECT_TRUE(RankByLatency(set).empty());
}

TEST(DefaultThreshold, DefinedForAllMethods) {
  for (CompareMethod m :
       {CompareMethod::kChiSquare, CompareMethod::kTotalOps,
        CompareMethod::kTotalLatency, CompareMethod::kEarthMovers,
        CompareMethod::kIntersection, CompareMethod::kJeffrey,
        CompareMethod::kMinkowskiL1, CompareMethod::kMinkowskiL2}) {
    EXPECT_GT(DefaultThreshold(m), 0.0);
    EXPECT_LT(DefaultThreshold(m), 1.0);
  }
}

}  // namespace
}  // namespace osprof
