#include "src/core/profile.h"

#include <gtest/gtest.h>

#include <sstream>

namespace osprof {
namespace {

TEST(Profile, RecordsOperationsUnderName) {
  Profile p("read", 1);
  p.Add(100);
  p.Add(200);
  EXPECT_EQ(p.op_name(), "read");
  EXPECT_EQ(p.total_operations(), 2u);
  EXPECT_EQ(p.total_latency(), 300u);
}

TEST(ProfileSet, CreatesProfilesOnDemand) {
  ProfileSet set(1);
  set.Add("read", 100);
  set.Add("write", 5000);
  set.Add("read", 120);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.Find("read")->total_operations(), 2u);
  EXPECT_EQ(set.Find("write")->total_operations(), 1u);
  EXPECT_EQ(set.Find("unknown"), nullptr);
}

TEST(ProfileSet, ByTotalLatencyOrdersDescending) {
  ProfileSet set(1);
  set.Add("cheap", 10);
  set.Add("expensive", 1'000'000);
  set.Add("middle", 1'000);
  const auto order = set.ByTotalLatency();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "expensive");
  EXPECT_EQ(order[1], "middle");
  EXPECT_EQ(order[2], "cheap");
}

TEST(ProfileSet, TotalsAggregateAcrossOperations) {
  ProfileSet set(1);
  set.Add("a", 100);
  set.Add("b", 200);
  EXPECT_EQ(set.TotalLatency(), 300u);
  EXPECT_EQ(set.TotalOperations(), 2u);
}

TEST(ProfileSet, SerializeParseRoundTrip) {
  ProfileSet set(1);
  for (int i = 0; i < 1000; ++i) {
    set.Add("read", static_cast<Cycles>(100 + i));
    set.Add("llseek", static_cast<Cycles>(400));
  }
  set.Add("weird/name.op", 12345);

  const std::string text = set.ToString();
  const ProfileSet parsed = ProfileSet::ParseString(text);

  EXPECT_EQ(parsed.size(), set.size());
  for (const auto& [name, profile] : set) {
    const Profile* q = parsed.Find(name);
    ASSERT_NE(q, nullptr) << name;
    EXPECT_EQ(q->total_operations(), profile.total_operations());
    EXPECT_EQ(q->total_latency(), profile.total_latency());
    for (int b = 0; b < profile.histogram().num_buckets(); ++b) {
      EXPECT_EQ(q->histogram().bucket(b), profile.histogram().bucket(b));
    }
  }
  EXPECT_TRUE(parsed.CheckConsistency());
}

TEST(ProfileSet, RoundTripPreservesResolution) {
  ProfileSet set(2);
  set.Add("op", 1000);
  const ProfileSet parsed = ProfileSet::ParseString(set.ToString());
  EXPECT_EQ(parsed.resolution(), 2);
  EXPECT_EQ(parsed.Find("op")->histogram().resolution(), 2);
}

TEST(ProfileSet, ParseRejectsMalformedInput) {
  EXPECT_THROW(ProfileSet::ParseString("bogus directive\n"), std::runtime_error);
  EXPECT_THROW(ProfileSet::ParseString("bucket 1 2\n"), std::runtime_error);
  EXPECT_THROW(
      ProfileSet::ParseString("profile x\nbucket notanumber 3\nend\n"),
      std::runtime_error);
  EXPECT_THROW(ProfileSet::ParseString("profile x recorded=1\n"),
               std::runtime_error);  // Unterminated block.
  EXPECT_THROW(ProfileSet::ParseString("profile x\nbucket 9999 1\nend\n"),
               std::runtime_error);  // Bucket out of range.
}

TEST(ProfileSet, ParseIgnoresCommentsAndBlankLines) {
  const ProfileSet parsed = ProfileSet::ParseString(
      "# comment\n\nresolution 1\nprofile read recorded=2 total_latency=300\n"
      "  bucket 6 2\nend\n");
  ASSERT_NE(parsed.Find("read"), nullptr);
  EXPECT_EQ(parsed.Find("read")->total_operations(), 2u);
  EXPECT_EQ(parsed.Find("read")->total_latency(), 300u);
}

TEST(ProfileSet, EmptySetSerializes) {
  ProfileSet set(1);
  const ProfileSet parsed = ProfileSet::ParseString(set.ToString());
  EXPECT_TRUE(parsed.empty());
}

}  // namespace
}  // namespace osprof
