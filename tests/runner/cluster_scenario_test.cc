// Runner-level acceptance tests for the cluster scenarios (ROADMAP item
// 4): byte-identical serialization across jobs values and reruns, zero
// SimRace reports, the DLM ping-pong visible in the counters, and the
// headline attribution criterion -- the slowest write peak decomposes
// almost entirely into lock_wait + net.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "src/core/layered.h"
#include "src/core/peaks.h"
#include "src/runner/runner.h"
#include "src/runner/scenario.h"

namespace osrunner {
namespace {

const Scenario& Builtin(const std::string& name) {
  const Scenario* s = BuiltinScenarios().Find(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

// Everything the goldens pin: every layer's merged profiles plus the
// layered decomposition, in their on-disk serialization.
std::string Serialized(const RunResult& result) {
  std::ostringstream os;
  for (const auto& [layer, lr] : result.layers) {
    os << "== " << layer << " ==\n";
    lr.merged.Serialize(os);
  }
  std::map<std::string, osprof::LayeredProfileSet> layered;
  for (const auto& [layer, lr] : result.layers) {
    if (!lr.layered.empty()) {
      layered.emplace(layer, lr.layered);
    }
  }
  os << osprof::LayersToString(layered);
  return os.str();
}

TEST(ClusterScenario, ParallelRunsAreByteIdenticalToSerial) {
  RunOptions serial;
  serial.trials = 3;
  serial.jobs = 1;
  RunOptions parallel = serial;
  parallel.jobs = 8;
  for (const std::string name :
       {"cluster_write_shared", "cluster_read_mostly"}) {
    const std::string a = Serialized(RunScenario(Builtin(name), serial));
    const std::string b = Serialized(RunScenario(Builtin(name), parallel));
    EXPECT_FALSE(a.empty()) << name;
    EXPECT_EQ(a, b) << name;
  }
}

TEST(ClusterScenario, RerunsAreByteIdentical) {
  RunOptions options;
  options.trials = 2;
  const std::string a =
      Serialized(RunScenario(Builtin("cluster_write_shared"), options));
  const std::string b =
      Serialized(RunScenario(Builtin("cluster_write_shared"), options));
  EXPECT_EQ(a, b);
}

TEST(ClusterScenario, RaceFreeUnderSimRace) {
  RunOptions options;
  options.trials = 1;
  for (const std::string name :
       {"cluster_write_shared", "cluster_read_mostly"}) {
    const RunResult result = RunScenario(Builtin(name), options);
    EXPECT_TRUE(result.RaceReports().empty())
        << name << ": " << result.RaceReports().size() << " race report(s)";
  }
}

TEST(ClusterScenario, WriteSharedPingPongsTheLock) {
  RunOptions options;
  options.trials = 1;
  const RunResult result =
      RunScenario(Builtin("cluster_write_shared"), options);
  // Both nodes write the one shared file: every handoff is a revoke.
  EXPECT_GT(result.TotalCounter("dlm_basts"), 0u);
  EXPECT_GT(result.TotalCounter("dlm_downgrades"), 0u);
  EXPECT_GT(result.TotalCounter("dlm_queued_waits"), 0u);
  EXPECT_GT(result.TotalCounter("net_messages"), 0u);
  EXPECT_GT(result.TotalCounter("pages_flushed"), 0u);
  EXPECT_GT(result.TotalCounter("cache_invalidations"), 0u);
  EXPECT_EQ(result.TotalCounter("writes"), 600u);  // 2 nodes x 300 iters.
}

TEST(ClusterScenario, ReadMostlyKeepsGrantsCached) {
  RunOptions options;
  options.trials = 1;
  const RunResult result =
      RunScenario(Builtin("cluster_read_mostly"), options);
  const std::uint64_t acquires = result.TotalCounter("dlm_acquires");
  const std::uint64_t hits = result.TotalCounter("dlm_cache_hits");
  ASSERT_GT(acquires, 0u);
  // Reads dominate, so most acquires are PR cache hits between the
  // occasional revoking writes.
  EXPECT_GT(hits * 2, acquires);
  EXPECT_LT(result.TotalCounter("dlm_downgrades"),
            result.TotalCounter("dlm_acquires"));
}

// The acceptance criterion the cluster_write_shared golden pins: the
// slowest write peak is >= 80% lock_wait + net -- the stall is the DLM
// ping-pong (wire round trip + waiting out the peer's flush), not the
// write's own work.
TEST(ClusterScenario, SlowestWritePeakIsLockWaitPlusNet) {
  RunOptions options;
  options.trials = 1;
  const RunResult result =
      RunScenario(Builtin("cluster_write_shared"), options);
  const auto cluster = result.layers.find("cluster");
  ASSERT_NE(cluster, result.layers.end());

  const osprof::Histogram* histogram = nullptr;
  for (const auto& [op, profile] : cluster->second.merged) {
    if (op == "write") {
      histogram = &profile.histogram();
    }
  }
  ASSERT_NE(histogram, nullptr);
  const auto peaks = osprof::FindPeaks(*histogram);
  ASSERT_GE(peaks.size(), 2u) << "expected a fast peak and the ping-pong "
                                 "peak";
  const osprof::Peak& slowest = peaks.back();

  const osprof::LayeredProfile* layered =
      cluster->second.layered.Find("write");
  ASSERT_NE(layered, nullptr);
  const std::map<int, osprof::LayeredBucket> buckets = layered->buckets();
  osprof::Cycles lock_net = 0;
  osprof::Cycles total = 0;
  for (const auto& [bucket, lb] : buckets) {
    if (bucket < slowest.first_bucket || bucket > slowest.last_bucket) {
      continue;
    }
    lock_net += lb.cycles[osprof::kLayerLockWait];
    lock_net += lb.cycles[osprof::kLayerNet];
    total += lb.TotalCycles();
  }
  ASSERT_GT(total, 0u);
  EXPECT_GE(static_cast<double>(lock_net), 0.8 * static_cast<double>(total))
      << "slowest write peak is only "
      << 100.0 * static_cast<double>(lock_net) / static_cast<double>(total)
      << "% lock_wait+net";
}

}  // namespace
}  // namespace osrunner
