// The multi-trial scenario runner: registry behaviour, cross-job
// determinism, dispersion statistics, the unified ProfilerSink interface
// and the `osprof_tool run` subcommand.

#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "gtest/gtest.h"
#include "src/profilers/callgraph_profiler.h"
#include "src/profilers/posix_profiler.h"
#include "src/profilers/profiler_sink.h"
#include "src/profilers/sim_profiler.h"
#include "src/runner/runner.h"
#include "src/runner/scenario.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/tools/profile_tool.h"

namespace osrunner {
namespace {

// A scenario small enough to run many trials inside a unit test.
Scenario TinyGrep() {
  Scenario s;
  s.name = "tiny_grep";
  s.kernel.num_cpus = 1;
  s.kernel.seed = 99;
  GrepSpec grep;
  grep.tree.top_dirs = 2;
  grep.tree.subdirs_per_dir = 1;
  grep.tree.depth = 1;
  grep.tree.files_per_dir = 4;
  s.workload = grep;
  return s;
}

Scenario TinyClone() {
  Scenario s;
  s.name = "tiny_clone";
  s.kernel.num_cpus = 2;
  s.kernel.seed = 17;
  CloneSpec clone;
  clone.processes = 2;
  clone.iterations = 50;
  s.workload = clone;
  return s;
}

std::string SerializedLayers(const RunResult& result) {
  std::ostringstream os;
  for (const auto& [layer, lr] : result.layers) {
    os << "### " << layer << "\n";
    lr.merged.Serialize(os);
  }
  return os.str();
}

TEST(ScenarioRegistryTest, RegisterFindAndReject) {
  ScenarioRegistry registry;
  Scenario s = TinyGrep();
  registry.Register(s);
  ASSERT_NE(registry.Find("tiny_grep"), nullptr);
  EXPECT_EQ(registry.Find("missing"), nullptr);
  EXPECT_THROW(registry.Register(s), std::invalid_argument);  // Duplicate.
  Scenario unnamed;
  unnamed.name = "";
  EXPECT_THROW(registry.Register(unnamed), std::invalid_argument);
}

TEST(ScenarioRegistryTest, BuiltinsContainThePortedFigures) {
  const ScenarioRegistry& registry = BuiltinScenarios();
  for (const char* name : {"fig01", "fig03", "fig07"}) {
    EXPECT_NE(registry.Find(name), nullptr) << name;
  }
}

TEST(RunnerTest, RejectsNonPositiveTrials) {
  RunOptions options;
  options.trials = 0;
  EXPECT_THROW(RunScenario(TinyGrep(), options), std::invalid_argument);
}

TEST(RunnerTest, TrialSeedsAreDistinctAndDerived) {
  RunOptions options;
  options.trials = 4;
  const RunResult result = RunScenario(TinyGrep(), options);
  std::set<std::uint64_t> seeds;
  for (const TrialResult& t : result.trials) {
    EXPECT_EQ(t.seed, 99u + static_cast<std::uint64_t>(t.trial));
    seeds.insert(t.seed);
  }
  EXPECT_EQ(seeds.size(), 4u);
}

// Satellite 4: the same scenario + seed run twice serializes identically.
TEST(RunnerTest, SameSeedRunsAreByteIdentical) {
  RunOptions options;
  options.trials = 3;
  const RunResult a = RunScenario(TinyGrep(), options);
  const RunResult b = RunScenario(TinyGrep(), options);
  const std::string sa = SerializedLayers(a);
  EXPECT_FALSE(sa.empty());
  EXPECT_EQ(sa, SerializedLayers(b));
}

// Acceptance criterion: the worker count must not affect the merge.
TEST(RunnerTest, JobCountDoesNotChangeMergedProfiles) {
  RunOptions serial;
  serial.trials = 4;
  serial.jobs = 1;
  RunOptions parallel = serial;
  parallel.jobs = 4;
  const RunResult a = RunScenario(TinyGrep(), serial);
  const RunResult b = RunScenario(TinyGrep(), parallel);
  EXPECT_EQ(SerializedLayers(a), SerializedLayers(b));
  EXPECT_EQ(a.TotalCounter("files_read"), b.TotalCounter("files_read"));
}

TEST(RunnerTest, MergedProfileIsTheSumOfTrialProfiles) {
  RunOptions options;
  options.trials = 3;
  const RunResult result = RunScenario(TinyGrep(), options);
  const auto& fs_layer = result.layers.at("fs");
  for (const std::string& op : fs_layer.merged.OperationNames()) {
    std::uint64_t sum = 0;
    for (const TrialResult& t : result.trials) {
      const osprof::Profile* p = t.layers.at("fs").Find(op);
      sum += p == nullptr ? 0 : p->total_operations();
    }
    EXPECT_EQ(fs_layer.merged.Find(op)->total_operations(), sum) << op;
  }
}

TEST(RunnerTest, DispersionIsOrderedAndCoversTheMergedRange) {
  RunOptions options;
  options.trials = 5;
  const RunResult result = RunScenario(TinyGrep(), options);
  const LayerResult& fs_layer = result.layers.at("fs");
  ASSERT_FALSE(fs_layer.dispersion.empty());
  for (const OpDispersion& d : fs_layer.dispersion) {
    ASSERT_GE(d.first_bucket, 0) << d.op;
    const std::size_t width =
        static_cast<std::size_t>(d.last_bucket - d.first_bucket + 1);
    ASSERT_EQ(d.min_count.size(), width);
    ASSERT_EQ(d.median_count.size(), width);
    ASSERT_EQ(d.max_count.size(), width);
    for (std::size_t i = 0; i < width; ++i) {
      EXPECT_LE(d.min_count[i], d.median_count[i]) << d.op << " @" << i;
      EXPECT_LE(d.median_count[i], d.max_count[i]) << d.op << " @" << i;
    }
    EXPECT_GE(d.modal_peak_count, 0);
    EXPECT_GE(d.stable_peak_trials, 1);
    EXPECT_LE(d.stable_peak_trials, 5);
  }
  const std::string report = RenderDispersion(fs_layer, options.trials);
  EXPECT_NE(report.find("readdir"), std::string::npos);
}

TEST(RunnerTest, CloneScenarioRecordsUserLayerAndCounters) {
  RunOptions options;
  options.trials = 2;
  const RunResult result = RunScenario(TinyClone(), options);
  ASSERT_EQ(result.layers.count("user"), 1u);
  EXPECT_NE(result.layers.at("user").merged.Find("clone"), nullptr);
  // 2 trials x 2 processes x 50 iterations.
  EXPECT_EQ(result.TotalCounter("acquisitions"), 200u);
  EXPECT_EQ(result.TotalCounter("missing_counter"), 0u);
}

TEST(RunnerTest, DriverLayerAppearsWhenRequested) {
  Scenario s = TinyGrep();
  s.profilers.driver = true;
  RunOptions options;
  options.trials = 1;
  const RunResult result = RunScenario(s, options);
  EXPECT_EQ(result.layers.count("fs"), 1u);
  EXPECT_EQ(result.layers.count("driver"), 1u);
}

TEST(RunnerTest, CallgraphReplacesTheFsLayer) {
  Scenario s = TinyGrep();
  s.profilers.callgraph = true;
  RunOptions options;
  const RunResult result = RunScenario(s, options);
  EXPECT_EQ(result.layers.count("fs"), 0u);
  ASSERT_EQ(result.layers.count("callgraph"), 1u);
  EXPECT_NE(result.layers.at("callgraph").merged.Find("readdir"), nullptr);
}

// Satellite 2: every profiler presents the same sink surface.
TEST(ProfilerSinkTest, AllFourProfilersImplementTheInterface) {
  osim::KernelConfig kcfg;
  osim::Kernel kernel(kcfg);
  osim::SimDisk disk(&kernel);

  osprofilers::SimProfiler sim(&kernel, 2);
  osprofilers::DriverProfiler driver(&kernel, &disk, 2);
  osprofilers::PosixProfiler posix(2);
  osprofilers::CallGraphProfiler callgraph(&kernel, 2);

  const std::vector<osprofilers::ProfilerSink*> sinks = {&sim, &driver, &posix,
                                                         &callgraph};
  const std::vector<std::string> layers = {"fs", "driver", "posix",
                                           "callgraph"};
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    EXPECT_EQ(sinks[i]->layer(), layers[i]);
    EXPECT_EQ(sinks[i]->resolution(), 2);
    EXPECT_TRUE(sinks[i]->Collect().empty());
    sinks[i]->Reset();  // Reset on an idle profiler is a no-op.
    EXPECT_TRUE(sinks[i]->Collect().empty());
  }

  // Collect() snapshots; Reset() clears.
  posix.Measure("noop", [] { return 0; });
  EXPECT_EQ(posix.Collect().TotalOperations(), 1u);
  posix.Reset();
  EXPECT_TRUE(posix.Collect().empty());

  sim.set_layer("user");
  EXPECT_EQ(sim.layer(), "user");
}

TEST(RunCommandTest, ListAndErrorsAndSmoke) {
  {
    std::ostringstream out, err;
    EXPECT_EQ(ostools::RunProfileTool({"run", "--list"}, out, err), 0);
    EXPECT_NE(out.str().find("fig07"), std::string::npos);
  }
  {
    std::ostringstream out, err;
    EXPECT_EQ(ostools::RunProfileTool({"run", "no_such_scenario"}, out, err),
              1);
    EXPECT_NE(err.str().find("unknown scenario"), std::string::npos);
  }
  {
    std::ostringstream out, err;
    EXPECT_EQ(
        ostools::RunProfileTool({"run", "fig07", "--trials=abc"}, out, err),
        1);
  }
  {
    // A real (small) run through the CLI path: fig01_single at 2 trials.
    std::ostringstream out, err;
    EXPECT_EQ(ostools::RunProfileTool(
                  {"run", "fig01_single", "--trials=2", "--jobs=2"}, out, err),
              0)
        << err.str();
    EXPECT_NE(out.str().find("2 trial(s) on 2 job(s)"), std::string::npos);
    EXPECT_NE(out.str().find("clone"), std::string::npos);
  }
}

}  // namespace
}  // namespace osrunner
