// Runner-level properties of the layered decomposition: parallel merges
// are bit-identical, layered counts agree with the profile histograms,
// and the fig07 acceptance criterion -- the readdir peaks decompose into
// pure self-CPU (peak 1) vs driver-dominated (peak 4) -- holds.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/layered.h"
#include "src/core/peaks.h"
#include "src/runner/runner.h"
#include "src/runner/scenario.h"

namespace osrunner {
namespace {

const Scenario& Builtin(const std::string& name) {
  const Scenario* s = BuiltinScenarios().Find(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

std::map<std::string, osprof::LayeredProfileSet> LayeredOf(
    const RunResult& result) {
  std::map<std::string, osprof::LayeredProfileSet> layers;
  for (const auto& [layer, lr] : result.layers) {
    if (!lr.layered.empty()) {
      layers.emplace(layer, lr.layered);
    }
  }
  return layers;
}

TEST(LayeredRunnerTest, ParallelMergeIsByteIdenticalToSerial) {
  RunOptions serial;
  serial.trials = 4;
  serial.jobs = 1;
  RunOptions parallel = serial;
  parallel.jobs = 8;
  const std::string a =
      osprof::LayersToString(LayeredOf(RunScenario(Builtin("fig06"), serial)));
  const std::string b = osprof::LayersToString(
      LayeredOf(RunScenario(Builtin("fig06"), parallel)));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// Every layer's merged ProfileSet in .prof serialization form -- what
// `osprof run` writes to disk.
std::string ProfilesToString(const RunResult& result) {
  std::ostringstream os;
  for (const auto& [layer, lr] : result.layers) {
    os << "== " << layer << " ==\n";
    lr.merged.Serialize(os);
  }
  return os.str();
}

// The .prof counterpart of the .layers identity above: trial profiles
// are merged in trial order regardless of which worker finished first,
// so the serialized bytes cannot depend on the jobs value.
TEST(LayeredRunnerTest, ParallelProfSerializationIsByteIdenticalToSerial) {
  RunOptions serial;
  serial.trials = 4;
  serial.jobs = 1;
  RunOptions parallel = serial;
  parallel.jobs = 8;
  const std::string a =
      ProfilesToString(RunScenario(Builtin("fig06"), serial));
  const std::string b =
      ProfilesToString(RunScenario(Builtin("fig06"), parallel));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(LayeredRunnerTest, LayeredCountsMatchProfileHistograms) {
  RunOptions options;
  options.trials = 2;
  const RunResult result = RunScenario(Builtin("fig06"), options);
  int checked_ops = 0;
  for (const auto& [layer, lr] : result.layers) {
    if (lr.layered.empty()) {
      continue;
    }
    for (const auto& [op, profile] : lr.merged) {
      const osprof::LayeredProfile* lp = lr.layered.Find(op);
      if (lp == nullptr || lp->empty()) {
        continue;
      }
      ++checked_ops;
      const osprof::Histogram& h = profile.histogram();
      const std::map<int, osprof::LayeredBucket> lbuckets = lp->buckets();
      std::uint64_t histogram_total = 0;
      for (int b = 0; b < h.num_buckets(); ++b) {
        histogram_total += h.bucket(b);
        const auto it = lbuckets.find(b);
        const std::uint64_t layered_count =
            it == lbuckets.end() ? 0 : it->second.count;
        EXPECT_EQ(layered_count, h.bucket(b))
            << layer << "/" << op << " bucket " << b;
      }
      EXPECT_EQ(lp->total_count(), histogram_total) << layer << "/" << op;
    }
  }
  EXPECT_GT(checked_ops, 0) << "no layered data collected at all";
}

// Figure 7's acceptance criterion: the four readdir peaks are not just
// visible in the latency histogram, the decomposition explains them --
// the first (fastest) peak is pure in-memory directory walking, the last
// (slowest) peak is almost entirely disk-driver time.
TEST(LayeredRunnerTest, Fig07ReaddirPeaksSplitIntoSelfAndDriver) {
  RunOptions options;
  options.trials = 1;
  const RunResult result =
      RunScenario(Builtin("fig07_readdir_peaks"), options);
  const auto fs = result.layers.find("fs");
  ASSERT_NE(fs, result.layers.end());
  const osprof::LayeredProfile* layered = fs->second.layered.Find("readdir");
  ASSERT_NE(layered, nullptr);

  const osprof::Histogram* histogram = nullptr;
  for (const auto& [op, profile] : fs->second.merged) {
    if (op == "readdir") {
      histogram = &profile.histogram();
    }
  }
  ASSERT_NE(histogram, nullptr);
  const std::vector<osprof::Peak> peaks = osprof::FindPeaks(*histogram);
  ASSERT_GE(peaks.size(), 2u) << "readdir should be multi-modal";

  // Share of one component over a peak's bucket range.
  const auto share = [&](const osprof::Peak& peak, osprof::LayerComponent c) {
    osprof::Cycles component = 0;
    osprof::Cycles total = 0;
    for (const auto& [bucket, data] : layered->buckets()) {
      if (peak.Contains(bucket)) {
        component += data.cycles[c];
        total += data.TotalCycles();
      }
    }
    EXPECT_GT(total, 0u);
    return static_cast<double>(component) / static_cast<double>(total);
  };

  EXPECT_GE(share(peaks.front(), osprof::kLayerSelf), 0.90)
      << "peak 1 must be pure self-CPU";
  EXPECT_GE(share(peaks.back(), osprof::kLayerDriver), 0.90)
      << "the slowest peak must be driver-dominated";
}

}  // namespace
}  // namespace osrunner
