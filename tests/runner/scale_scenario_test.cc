// The scale scenarios (open-loop traffic + per-CPU shards) through the
// multi-trial runner: the sharded profiler's serialized output must be
// byte-identical to unsharded recording for any CPU count, any epoch
// length and any --jobs value, and the traffic generator must deliver
// exactly its planned request count.

#include <map>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "src/core/layered.h"
#include "src/runner/runner.h"
#include "src/runner/scenario.h"
#include "src/workloads/traffic.h"

namespace osrunner {
namespace {

// scale_smoke's shape shrunk further: a few hundred requests, so a dozen
// full runs stay inside a unit test's budget.
Scenario TinyTraffic(int num_cpus) {
  Scenario s;
  s.name = "tiny_traffic";
  s.kernel.num_cpus = num_cpus;
  s.kernel.seed = 71;
  s.kernel.reap_finished = true;
  TrafficSpec t;
  t.config.phases = {{12, osim::Cycles{1'500'000}},
                     {24, osim::Cycles{3'000'000}}};
  t.config.requests_per_session = 10;
  t.config.file_pool = 16;
  s.workload = t;
  return s;
}

std::string SerializedOutput(const RunResult& result) {
  std::ostringstream os;
  std::map<std::string, osprof::LayeredProfileSet> layered;
  for (const auto& [layer, lr] : result.layers) {
    os << "### " << layer << "\n";
    lr.merged.Serialize(os);
    if (!lr.layered.empty()) {
      layered.emplace(layer, lr.layered);
    }
  }
  osprof::SerializeLayers(layered, os);
  return os.str();
}

TEST(ScaleScenario, ShardingIsByteInvisibleForAnyCpuCountAndEpoch) {
  RunOptions options;
  options.trials = 2;
  for (const int cpus : {1, 4, 64}) {
    Scenario unsharded = TinyTraffic(cpus);
    const std::string reference =
        SerializedOutput(RunScenario(unsharded, options));
    EXPECT_FALSE(reference.empty());
    for (const osim::Cycles epoch :
         {osim::Cycles{0}, osim::Cycles{1} << 18, osim::Cycles{1} << 22}) {
      Scenario sharded = TinyTraffic(cpus);
      sharded.profilers.per_cpu_shards = true;
      sharded.profilers.shard_epoch = epoch;
      EXPECT_EQ(SerializedOutput(RunScenario(sharded, options)), reference)
          << cpus << " CPUs, epoch " << epoch;
    }
  }
}

TEST(ScaleScenario, ShardedOutputIsJobsInvariant) {
  Scenario scenario = TinyTraffic(4);
  scenario.profilers.per_cpu_shards = true;
  scenario.profilers.shard_epoch = osim::Cycles{1} << 20;
  RunOptions serial;
  serial.trials = 4;
  serial.jobs = 1;
  RunOptions parallel;
  parallel.trials = 4;
  parallel.jobs = 4;
  EXPECT_EQ(SerializedOutput(RunScenario(scenario, serial)),
            SerializedOutput(RunScenario(scenario, parallel)));
}

TEST(ScaleScenario, TrafficDeliversExactlyThePlannedRequests) {
  const Scenario scenario = TinyTraffic(4);
  const auto* traffic = std::get_if<TrafficSpec>(&scenario.workload);
  RunOptions options;
  options.trials = 2;
  const RunResult result = RunScenario(scenario, options);
  const std::uint64_t planned =
      osworkloads::PlannedRequests(traffic->config) * 2u;
  EXPECT_EQ(result.TotalCounter("requests"), planned);
  EXPECT_EQ(result.TotalCounter("sessions"), 36u * 2u);
  EXPECT_EQ(result.TotalCounter("reads") + result.TotalCounter("writes"),
            planned);
  // Churn engaged the reaper: every session (plus each trial's driver
  // thread) was reaped.
  EXPECT_EQ(result.TotalCounter("reaped_threads"), (36u + 1u) * 2u);
  EXPECT_GT(result.TotalCounter("peak_live_sessions"), 0u);
}

TEST(ScaleScenario, BuiltinScaleScenariosAreRegistered) {
  const Scenario* big = BuiltinScenarios().Find("scale_1m");
  ASSERT_NE(big, nullptr);
  const auto* traffic = std::get_if<TrafficSpec>(&big->workload);
  ASSERT_NE(traffic, nullptr);
  // The acceptance floor: the curve plans at least a million requests on
  // at least 64 CPUs, with reaping and sharding on.
  EXPECT_GE(osworkloads::PlannedRequests(traffic->config), 1'000'000u);
  EXPECT_GE(big->kernel.num_cpus, 64);
  EXPECT_TRUE(big->kernel.reap_finished);
  EXPECT_TRUE(big->profilers.per_cpu_shards);
  ASSERT_NE(BuiltinScenarios().Find("scale_smoke"), nullptr);
}

}  // namespace
}  // namespace osrunner
