// Thread-safety targets for the ThreadSanitizer preset (-DOSPROF_SANITIZE=
// thread, ctest -L tsan): the sharded histogram hammered from real host
// threads, and the runner's trial pool itself.

#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/histogram.h"
#include "src/runner/runner.h"
#include "src/runner/scenario.h"

namespace osrunner {
namespace {

TEST(ParallelMergeTest, ShardedHistogramUnderConcurrentWriters) {
  osprof::ShardedHistogram sharded(2);
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sharded, t] {
      osprof::Histogram* local = sharded.Local();
      for (int i = 0; i < kAddsPerThread; ++i) {
        local->Add(static_cast<osprof::Cycles>(t * 1000 + i + 1));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const osprof::Histogram merged = sharded.Merge();
  EXPECT_TRUE(merged.CheckConsistency());
  EXPECT_EQ(merged.TotalOperations(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(sharded.shard_count(), kThreads);
}

TEST(ParallelMergeTest, ConcurrentShardRegistration) {
  // Many instances, many threads registering their shard at once: stresses
  // the id assignment and the mutex-guarded shard list.
  std::vector<std::unique_ptr<osprof::ShardedHistogram>> histograms;
  for (int i = 0; i < 4; ++i) {
    histograms.push_back(std::make_unique<osprof::ShardedHistogram>(1));
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < 6; ++t) {
    writers.emplace_back([&histograms] {
      for (auto& h : histograms) {
        for (int i = 1; i <= 5'000; ++i) {
          h->Local()->Add(static_cast<osprof::Cycles>(i));
        }
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  for (auto& h : histograms) {
    EXPECT_EQ(h->Merge().TotalOperations(), 30'000u);
    EXPECT_TRUE(h->Merge().CheckConsistency());
  }
}

TEST(ParallelMergeTest, RunnerTrialsOnManyWorkers) {
  Scenario s;
  s.name = "tsan_grep";
  s.kernel.seed = 5;
  GrepSpec grep;
  grep.tree.top_dirs = 2;
  grep.tree.subdirs_per_dir = 1;
  grep.tree.depth = 1;
  grep.tree.files_per_dir = 3;
  s.workload = grep;

  RunOptions options;
  options.trials = 8;
  options.jobs = 8;
  const RunResult result = RunScenario(s, options);
  ASSERT_EQ(result.trials.size(), 8u);
  EXPECT_TRUE(result.layers.at("fs").merged.CheckConsistency());

  RunOptions serial;
  serial.trials = 8;
  serial.jobs = 1;
  const RunResult reference = RunScenario(s, serial);
  EXPECT_EQ(result.layers.at("fs").merged.ToString(),
            reference.layers.at("fs").merged.ToString());
}

}  // namespace
}  // namespace osrunner
