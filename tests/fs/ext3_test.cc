#include "src/fs/ext3.h"

#include <gtest/gtest.h>

#include "src/profilers/sim_profiler.h"

namespace osfs {
namespace {

using osim::Kernel;
using osim::KernelConfig;
using osim::SimDisk;
using osim::Task;

KernelConfig QuietConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 1;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

Task<void> WriteAndFsync(Vfs* vfs, std::string path, std::uint64_t bytes) {
  const int fd = co_await vfs->Create(path);
  EXPECT_GE(fd, 0);
  (void)co_await vfs->Write(fd, bytes);
  co_await vfs->Fsync(fd);
  co_await vfs->Close(fd);
}

TEST(Ext3SimFs, FsyncCommitsTheJournal) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  Ext3SimFs fs(&k, &disk);
  fs.AddDir("/d");
  k.Spawn("w", WriteAndFsync(&fs, "/d/f", 8'192));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(fs.commits(), 1u);
  // Data pages + the journal commit record both reached the disk.
  EXPECT_GE(disk.requests_completed(), 3u);
}

TEST(Ext3SimFs, FsyncCostsMoreThanExt2s) {
  auto run = [](bool ext3) {
    Kernel k(QuietConfig());
    SimDisk disk(&k);
    std::unique_ptr<Ext2SimFs> fs;
    if (ext3) {
      fs = std::make_unique<Ext3SimFs>(&k, &disk);
    } else {
      fs = std::make_unique<Ext2SimFs>(&k, &disk);
    }
    fs->AddDir("/d");
    osprofilers::SimProfiler prof(&k);
    fs->SetProfiler(&prof);
    k.Spawn("w", WriteAndFsync(fs.get(), "/d/f", 8'192));
    k.RunUntilThreadsFinish();
    return prof.profiles().Find("fsync")->histogram().MeanLatency();
  };
  const double ext2 = run(false);
  const double ext3 = run(true);
  // The journal commit adds real I/O: Ext3's fsync mode sits to the right.
  EXPECT_GT(ext3, ext2);
}

TEST(Ext3SimFs, SequentialCommitsAdvanceTheJournalHead) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  Ext3SimFs fs(&k, &disk);
  fs.AddDir("/d");
  auto body = [](Vfs* vfs) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await WriteAndFsync(vfs, "/d/f" + std::to_string(i), 4'096);
    }
  };
  k.Spawn("w", body(&fs));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(fs.commits(), 5u);
}

TEST(Ext3SimFs, ConcurrentFsyncsSerializeOnTheTransactionLock) {
  KernelConfig cfg = QuietConfig();
  cfg.num_cpus = 2;
  Kernel k(cfg);
  SimDisk disk(&k);
  Ext3SimFs fs(&k, &disk);
  fs.AddDir("/d");
  k.Spawn("w1", WriteAndFsync(&fs, "/d/a", 4'096));
  k.Spawn("w2", WriteAndFsync(&fs, "/d/b", 4'096));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(fs.commits(), 2u);  // Both committed, one at a time.
}

TEST(Ext3SimFs, InheritsEverythingElseFromExt2) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  Ext3SimFs fs(&k, &disk);
  fs.AddDir("/d");
  fs.AddFile("/d/f", 10'000);
  auto body = [](Vfs* vfs) -> Task<void> {
    const int fd = co_await vfs->Open("/d/f", false);
    std::int64_t total = 0;
    std::int64_t got = 0;
    do {
      got = co_await vfs->Read(fd, 4096);
      total += got;
    } while (got > 0);
    EXPECT_EQ(total, 10'000);
    co_await vfs->Close(fd);
  };
  k.Spawn("r", body(&fs));
  k.RunUntilThreadsFinish();
}

}  // namespace
}  // namespace osfs
