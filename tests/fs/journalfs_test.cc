#include "src/fs/journalfs.h"

#include <gtest/gtest.h>

#include "src/core/sampling.h"

namespace osfs {
namespace {

using osim::Cycles;
using osim::Kernel;
using osim::KernelConfig;
using osim::SimDisk;
using osim::Task;
using osprofilers::SimProfiler;

KernelConfig QuietConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 1;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

TEST(JournalFs, WriteSuperHoldsLockForMilliseconds) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  JournalFs fs(&k, &disk);
  SimProfiler prof(&k);
  fs.SetProfiler(&prof);
  auto body = [](JournalFs* f) -> Task<void> { co_await f->WriteSuper(); };
  k.Spawn("flush", body(&fs));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(fs.write_super_count(), 1u);
  const osprof::Profile* ws = prof.profiles().Find("write_super");
  ASSERT_NE(ws, nullptr);
  // 8 journal pages: several ms of synchronous I/O (>= bucket 22 ~ 2.5ms).
  EXPECT_GE(ws->histogram().FirstNonEmpty(), 21);
}

TEST(JournalFs, ReadsStallBehindWriteSuper) {
  Kernel k([] {
    KernelConfig cfg = QuietConfig();
    cfg.num_cpus = 2;
    return cfg;
  }());
  SimDisk disk(&k);
  JournalFs fs(&k, &disk);
  fs.AddFile("/data", 1u << 22);
  SimProfiler prof(&k);
  fs.SetProfiler(&prof);

  // Warm the page cache so reads are CPU-only when uncontended.
  auto warm = [](Vfs* vfs) -> Task<void> {
    const int fd = co_await vfs->Open("/data", false);
    std::int64_t got = 0;
    do {
      got = co_await vfs->Read(fd, 65'536);
    } while (got > 0);
    co_await vfs->Close(fd);
  };
  k.Spawn("warm", warm(&fs));
  k.RunUntilThreadsFinish();

  prof.Reset();
  // Reader loop + a concurrent write_super.
  auto reader = [](Kernel* kk, Vfs* vfs, int iters) -> Task<void> {
    const int fd = co_await vfs->Open("/data", false);
    for (int i = 0; i < iters; ++i) {
      (void)co_await vfs->Llseek(fd, 0);
      (void)co_await vfs->Read(fd, 4096);
      co_await kk->CpuUser(2'000);
    }
    co_await vfs->Close(fd);
  };
  auto flusher = [](Kernel* kk, JournalFs* f) -> Task<void> {
    co_await kk->Sleep(1'000'000);  // Let some uncontended reads happen.
    co_await f->WriteSuper();
  };
  k.Spawn("reader", reader(&k, &fs, 400));
  k.Spawn("flusher", flusher(&k, &fs));
  k.RunUntilThreadsFinish();

  const osprof::Histogram& h = prof.profiles().Find("read")->histogram();
  // Fast mode: cached reads (~buckets 10-13).  Stalled mode: reads that
  // waited for the journal commit (>= bucket 21).
  std::uint64_t fast = 0;
  std::uint64_t stalled = 0;
  for (int b = 0; b <= 14; ++b) {
    fast += h.bucket(b);
  }
  for (int b = 21; b < h.num_buckets(); ++b) {
    stalled += h.bucket(b);
  }
  EXPECT_GT(fast, 300u);
  EXPECT_GE(stalled, 1u);
}

TEST(JournalFs, SuperDaemonProducesPeriodicStripes) {
  // Figure 9 in miniature: sample profiles in epochs of half the flush
  // interval; write_super activity appears in alternating epochs.
  Kernel k([] {
    KernelConfig cfg = QuietConfig();
    cfg.num_cpus = 2;
    return cfg;
  }());
  SimDisk disk(&k);
  Ext2Config ecfg;
  JournalConfig jcfg;
  jcfg.super_interval = 100'000'000;  // Shrunk for test speed.
  JournalFs fs(&k, &disk, ecfg, jcfg);
  fs.AddFile("/data", 1u << 20);
  SimProfiler prof(&k);
  prof.EnableSampling(jcfg.super_interval / 2);
  fs.SetProfiler(&prof);
  fs.SpawnSuperDaemon();

  auto reader = [](Kernel* kk, Vfs* vfs) -> Task<void> {
    const int fd = co_await vfs->Open("/data", false);
    while (true) {
      (void)co_await vfs->Llseek(fd, 0);
      (void)co_await vfs->Read(fd, 4096);
      co_await kk->CpuUser(20'000);
    }
  };
  k.Spawn("reader", reader(&k, &fs));
  k.RunFor(jcfg.super_interval * 4);

  EXPECT_GE(fs.write_super_count(), 3u);
  const osprof::SampledProfile* ws = prof.sampled()->Find("write_super");
  ASSERT_NE(ws, nullptr);
  // write_super fires once per interval = every other epoch.
  int epochs_with_ws = 0;
  for (int e = 0; e < ws->num_epochs(); ++e) {
    epochs_with_ws += ws->epoch(e).TotalOperations() > 0 ? 1 : 0;
  }
  EXPECT_GE(epochs_with_ws, 3);
  EXPECT_LE(epochs_with_ws, ws->num_epochs() / 2 + 1);
}

}  // namespace
}  // namespace osfs
