// The mmap / page-fault path: demand paging, minor vs major faults, and
// the nopage latency profile.

#include <gtest/gtest.h>

#include "src/core/peaks.h"
#include "src/fs/ext2fs.h"
#include "src/profilers/sim_profiler.h"

namespace osfs {
namespace {

using osim::Kernel;
using osim::KernelConfig;
using osim::SimDisk;
using osim::Task;

KernelConfig QuietConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 1;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

struct Fixture {
  Fixture() : kernel(QuietConfig()), disk(&kernel), fs(&kernel, &disk) {}
  Kernel kernel;
  SimDisk disk;
  Ext2SimFs fs;
};

TEST(Mmap, DemandPagingFaultsOncePerPage) {
  Fixture fx;
  fx.fs.AddFile("/f", 16'384);  // 4 pages.
  auto body = [](Ext2SimFs* fs) -> Task<void> {
    const int fd = co_await fs->Open("/f", false);
    const int map = co_await fs->Mmap(fd);
    EXPECT_GE(map, 0);
    // Touch every byte stride: only the first touch of a page faults.
    for (std::uint64_t off = 0; off < 16'384; off += 512) {
      co_await fs->MemAccess(map, off);
    }
    co_await fs->Close(fd);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(fx.fs.major_faults(), 4u);
  EXPECT_EQ(fx.fs.minor_faults(), 0u);
}

TEST(Mmap, CachedPagesMinorFault) {
  Fixture fx;
  fx.fs.AddFile("/f", 8'192);
  auto body = [](Ext2SimFs* fs) -> Task<void> {
    // Read the file first: pages land in the page cache.
    const int fd = co_await fs->Open("/f", false);
    std::int64_t got = 0;
    do {
      got = co_await fs->Read(fd, 4'096);
    } while (got > 0);
    const int map = co_await fs->Mmap(fd);
    co_await fs->MemAccess(map, 0);
    co_await fs->MemAccess(map, 4'096);
    co_await fs->Close(fd);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(fx.fs.minor_faults(), 2u);
  EXPECT_EQ(fx.fs.major_faults(), 0u);
}

TEST(Mmap, NopageProfileIsBimodal) {
  // Minor faults are microseconds; major faults are milliseconds: the
  // nopage profile shows both modes, like any other two-path operation.
  Fixture fx;
  fx.fs.AddFile("/f", 64u << 10);  // 16 pages.
  osprofilers::SimProfiler prof(&fx.kernel);
  fx.fs.SetProfiler(&prof);
  auto body = [](Ext2SimFs* fs) -> Task<void> {
    const int fd = co_await fs->Open("/f", false);
    // Warm half the file through read().
    (void)co_await fs->Read(fd, 32u << 10);
    const int map = co_await fs->Mmap(fd);
    for (std::uint64_t page = 0; page < 16; ++page) {
      co_await fs->MemAccess(map, page * 4'096);
    }
    co_await fs->Close(fd);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(fx.fs.minor_faults(), 8u);
  EXPECT_EQ(fx.fs.major_faults(), 8u);
  const osprof::Profile* nopage = prof.profiles().Find("nopage");
  ASSERT_NE(nopage, nullptr);
  EXPECT_EQ(nopage->total_operations(), 16u);
  const auto peaks = osprof::FindPeaks(nopage->histogram());
  ASSERT_GE(peaks.size(), 2u);
  // Minor mode ~1.5k cycles (bucket ~10-11); major mode in disk range.
  EXPECT_LE(peaks.front().mode_bucket, 12);
  EXPECT_GE(peaks.back().mode_bucket, 15);
  // The mmap op itself was profiled too.
  EXPECT_EQ(prof.profiles().Find("mmap")->total_operations(), 1u);
}

TEST(Mmap, PresentPagesCostAlmostNothing) {
  Fixture fx;
  fx.fs.AddFile("/f", 4'096);
  osim::Cycles hot_access_time = 0;
  auto body = [](Ext2SimFs* fs, Kernel* k, osim::Cycles* out) -> Task<void> {
    const int fd = co_await fs->Open("/f", false);
    const int map = co_await fs->Mmap(fd);
    co_await fs->MemAccess(map, 0);  // Fault once.
    const osim::Cycles t0 = k->now();
    for (int i = 0; i < 100; ++i) {
      co_await fs->MemAccess(map, 0);
    }
    *out = k->now() - t0;
    co_await fs->Close(fd);
  };
  fx.kernel.Spawn("t", body(&fx.fs, &fx.kernel, &hot_access_time));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(hot_access_time, 400u);  // 100 accesses x 4 cycles.
}

TEST(Mmap, MappingDirectoryFails) {
  Fixture fx;
  fx.fs.AddDir("/d");
  auto body = [](Ext2SimFs* fs) -> Task<void> {
    const int fd = co_await fs->Open("/d", false);
    EXPECT_EQ(co_await fs->Mmap(fd), -1);
    co_await fs->Close(fd);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
}

TEST(Mmap, BadMappingIdThrows) {
  Fixture fx;
  auto body = [](Ext2SimFs* fs) -> Task<void> {
    co_await fs->MemAccess(7, 0);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  EXPECT_THROW(fx.kernel.RunUntilThreadsFinish(), std::invalid_argument);
}

}  // namespace
}  // namespace osfs
