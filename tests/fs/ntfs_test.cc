#include "src/fs/ntfs.h"

#include <gtest/gtest.h>

#include "src/core/peaks.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/rng.h"

namespace osfs {
namespace {

using osim::Kernel;
using osim::KernelConfig;
using osim::SimDisk;
using osim::Task;
using osprofilers::SimProfiler;

KernelConfig QuietConfig(int cpus = 1) {
  KernelConfig cfg;
  cfg.num_cpus = cpus;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

struct Fixture {
  explicit Fixture(int cpus = 1)
      : kernel(QuietConfig(cpus)), disk(&kernel), fs(&kernel, &disk) {}
  Kernel kernel;
  SimDisk disk;
  NtfsSimFs fs;
};

Task<void> ReadWhole(Vfs* vfs, std::string path) {
  const int fd = co_await vfs->Open(path, false);
  std::int64_t got = 0;
  do {
    got = co_await vfs->Read(fd, 4096);
  } while (got > 0);
  co_await vfs->Close(fd);
}

TEST(NtfsSimFs, ColdReadsUseIrpsWarmReadsUseFastIo) {
  Fixture fx;
  fx.fs.AddFile("/f", 16'384);
  fx.kernel.Spawn("cold", ReadWhole(&fx.fs, "/f"));
  fx.kernel.RunUntilThreadsFinish();
  const std::uint64_t irps_after_cold = fx.fs.irp_reads();
  EXPECT_GT(irps_after_cold, 0u);
  const std::uint64_t fast_after_cold = fx.fs.fast_io_reads();

  fx.kernel.Spawn("warm", ReadWhole(&fx.fs, "/f"));
  fx.kernel.RunUntilThreadsFinish();
  // The warm pass adds only Fast I/O reads (plus the EOF probes).
  EXPECT_EQ(fx.fs.irp_reads(), irps_after_cold);
  EXPECT_GT(fx.fs.fast_io_reads(), fast_after_cold);
}

TEST(NtfsSimFs, FastIoIsCheaperThanIrpPathEvenWhenCached) {
  // Compare warm-read latency on NTFS (Fast I/O) vs the IRP constants.
  Fixture fx;
  fx.fs.AddFile("/f", 4'096);
  SimProfiler prof(&fx.kernel);
  fx.fs.SetProfiler(&prof);
  fx.kernel.Spawn("cold", ReadWhole(&fx.fs, "/f"));
  fx.kernel.RunUntilThreadsFinish();
  prof.Reset();
  fx.kernel.Spawn("warm", ReadWhole(&fx.fs, "/f"));
  fx.kernel.RunUntilThreadsFinish();
  const osprof::Histogram& h = prof.profiles().Find("read")->histogram();
  // Warm single-page read: fast_io_read + copy, well under the IRP
  // build+complete constants alone.
  EXPECT_LT(h.MeanLatency(), 2.0 * (900 + 1400));
}

TEST(NtfsSimFs, MixedWorkloadShowsBimodalReadProfile) {
  Fixture fx;
  for (int i = 0; i < 40; ++i) {
    fx.fs.AddFile("/f" + std::to_string(i), 8'192);
  }
  SimProfiler prof(&fx.kernel);
  fx.fs.SetProfiler(&prof);
  auto body = [](Vfs* vfs) -> Task<void> {
    // Two passes: cold (IRP + disk) then warm (Fast I/O).
    for (int pass = 0; pass < 2; ++pass) {
      for (int i = 0; i < 40; ++i) {
        co_await ReadWhole(vfs, "/f" + std::to_string(i));
      }
    }
  };
  fx.kernel.Spawn("reader", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
  const auto peaks =
      osprof::FindPeaks(prof.profiles().Find("read")->histogram());
  EXPECT_GE(peaks.size(), 2u);  // Fast I/O mode + IRP/disk mode.
}

TEST(NtfsSimFs, LlseekNeverContendsUnderRandomDirectReads) {
  // §6.1's NTFS control experiment: same workload as Figure 6, no lock
  // contention, because the file position is per-handle.
  Fixture fx(2);
  fx.fs.AddFile("/data", 16u << 20);
  SimProfiler prof(&fx.kernel);
  fx.fs.SetProfiler(&prof);
  auto proc = [](Kernel* k, Vfs* vfs, std::uint64_t seed) -> Task<void> {
    osim::Rng rng(seed);
    const int fd = co_await vfs->Open("/data", /*direct_io=*/true);
    for (int i = 0; i < 150; ++i) {
      (void)co_await vfs->Llseek(fd, rng.Below(32'000) * 512);
      (void)co_await vfs->Read(fd, 512);
      co_await k->CpuUser(10'000);
    }
    co_await vfs->Close(fd);
  };
  fx.kernel.Spawn("p1", proc(&fx.kernel, &fx.fs, 1));
  fx.kernel.Spawn("p2", proc(&fx.kernel, &fx.fs, 2));
  fx.kernel.RunUntilThreadsFinish();
  const osprof::Histogram& h = prof.profiles().Find("llseek")->histogram();
  // Every llseek stays in the CPU-cost range; no disk-latency mode.
  EXPECT_LT(h.LastNonEmpty(), 14);
  EXPECT_EQ(h.TotalOperations(), 300u);
}

TEST(NtfsSimFs, DirectReadsRunConcurrentlyAtTheDisk) {
  // Without the i_sem both processes' reads queue at the disk together.
  Fixture fx(2);
  fx.fs.AddFile("/data", 16u << 20);
  std::uint64_t max_queue_latency = 0;
  fx.disk.SetRequestObserver(
      [&max_queue_latency](const osim::DiskRequestInfo& info) {
        max_queue_latency = std::max(max_queue_latency, info.queue_latency());
      });
  auto proc = [](Vfs* vfs, std::uint64_t start) -> Task<void> {
    const int fd = co_await vfs->Open("/data", /*direct_io=*/true);
    for (int i = 0; i < 20; ++i) {
      (void)co_await vfs->Llseek(fd, (start + i * 997) % 30'000 * 512);
      (void)co_await vfs->Read(fd, 512);
    }
    co_await vfs->Close(fd);
  };
  fx.kernel.Spawn("p1", proc(&fx.fs, 3));
  fx.kernel.Spawn("p2", proc(&fx.fs, 7777));
  fx.kernel.RunUntilThreadsFinish();
  // Concurrency at the disk: somebody had to queue.
  EXPECT_GT(max_queue_latency, 0u);
}

TEST(NtfsSimFs, ZeroByteReadStaysOnFastPath) {
  Fixture fx;
  fx.fs.AddFile("/f", 4096);
  auto body = [](Vfs* vfs) -> Task<void> {
    const int fd = co_await vfs->Open("/f", false);
    EXPECT_EQ(co_await vfs->Read(fd, 0), 0);
    co_await vfs->Close(fd);
  };
  fx.kernel.Spawn("r", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(fx.fs.irp_reads(), 0u);
  EXPECT_EQ(fx.fs.fast_io_reads(), 1u);
  EXPECT_EQ(fx.disk.requests_completed(), 0u);
}

}  // namespace
}  // namespace osfs
