#include "src/fs/ext2fs.h"

#include <gtest/gtest.h>

#include "src/core/peaks.h"
#include "src/fs/profiled_vfs.h"

namespace osfs {
namespace {

using osim::Cycles;
using osim::Kernel;
using osim::KernelConfig;
using osim::SimDisk;
using osim::Task;
using osprofilers::SimProfiler;

KernelConfig QuietConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 1;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

struct Fixture {
  explicit Fixture(Ext2Config fs_config = {},
                   KernelConfig kcfg = QuietConfig())
      : kernel(kcfg), disk(&kernel), fs(&kernel, &disk, fs_config) {}
  Kernel kernel;
  SimDisk disk;
  Ext2SimFs fs;
};

TEST(Ext2Image, AddDirAndFileBuildNamespace) {
  Fixture fx;
  fx.fs.AddDir("/src");
  fx.fs.AddFile("/src/a.c", 10'000);
  EXPECT_TRUE(fx.fs.Exists("/src"));
  EXPECT_TRUE(fx.fs.Exists("/src/a.c"));
  EXPECT_FALSE(fx.fs.Exists("/src/b.c"));
  EXPECT_EQ(fx.fs.FileSize("/src/a.c"), 10'000u);
  EXPECT_EQ(fx.fs.FileSize("/src"), kDirentBytes);
}

TEST(Ext2Image, RejectsDuplicatesAndOrphans) {
  Fixture fx;
  fx.fs.AddDir("/src");
  EXPECT_THROW(fx.fs.AddDir("/src"), std::invalid_argument);
  EXPECT_THROW(fx.fs.AddFile("/nodir/a.c", 1), std::invalid_argument);
}

Task<void> ReadWholeFile(osfs::Vfs* vfs, std::string path,
                         std::int64_t* total) {
  const int fd = co_await vfs->Open(path, false);
  EXPECT_GE(fd, 0);
  std::int64_t got = 0;
  do {
    got = co_await vfs->Read(fd, 4096);
    *total += got;
  } while (got > 0);
  co_await vfs->Close(fd);
}

TEST(Ext2Read, ReturnsExactFileSize) {
  Fixture fx;
  fx.fs.AddDir("/d");
  fx.fs.AddFile("/d/f", 10'000);
  std::int64_t total = 0;
  fx.kernel.Spawn("r", ReadWholeFile(&fx.fs, "/d/f", &total));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(total, 10'000);
}

TEST(Ext2Read, SecondReadIsServedFromPageCache) {
  Fixture fx;
  fx.fs.AddFile("/f", 8'192);
  std::int64_t total = 0;
  fx.kernel.Spawn("r1", ReadWholeFile(&fx.fs, "/f", &total));
  fx.kernel.RunUntilThreadsFinish();
  const std::uint64_t disk_reads = fx.disk.requests_completed();
  EXPECT_GT(disk_reads, 0u);
  fx.kernel.Spawn("r2", ReadWholeFile(&fx.fs, "/f", &total));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(fx.disk.requests_completed(), disk_reads);  // No new I/O.
}

TEST(Ext2Read, ZeroByteReadTouchesNoDisk) {
  Fixture fx;
  fx.fs.AddFile("/f", 4096);
  auto body = [](osfs::Vfs* vfs) -> Task<void> {
    const int fd = co_await vfs->Open("/f", false);
    const std::int64_t got = co_await vfs->Read(fd, 0);
    EXPECT_EQ(got, 0);
    co_await vfs->Close(fd);
  };
  fx.kernel.Spawn("r", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(fx.disk.requests_completed(), 0u);
}

Task<void> ReaddirAll(osfs::Vfs* vfs, std::string path,
                      std::vector<std::string>* names, int* calls) {
  const int fd = co_await vfs->Open(path, false);
  while (true) {
    ++*calls;
    const DirentBatch batch = co_await vfs->Readdir(fd);
    if (batch.names.empty()) {
      break;
    }
    names->insert(names->end(), batch.names.begin(), batch.names.end());
  }
  co_await vfs->Close(fd);
}

TEST(Ext2Readdir, EnumeratesAllEntriesThenEof) {
  Fixture fx;
  fx.fs.AddDir("/d");
  for (int i = 0; i < 100; ++i) {
    fx.fs.AddFile("/d/f" + std::to_string(i), 100);
  }
  std::vector<std::string> names;
  int calls = 0;
  fx.kernel.Spawn("r", ReaddirAll(&fx.fs, "/d", &names, &calls));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(names.size(), 100u);
  // 100 entries at 16 per getdents call -> 7 data calls + 1 past-EOF call.
  EXPECT_EQ(calls, 8);
}

TEST(Ext2Readdir, PastEofIsCheapCachedIsMidDiskIsSlow) {
  // The Figure 7 structure, asserted end to end on one directory.
  Fixture fx;
  fx.fs.AddDir("/d");
  for (int i = 0; i < 60; ++i) {
    fx.fs.AddFile("/d/f" + std::to_string(i), 100);
  }
  SimProfiler prof(&fx.kernel);
  fx.fs.SetProfiler(&prof);
  std::vector<std::string> names;
  int calls = 0;
  // Two passes: first cold (disk), then warm (page cache) + two EOF probes.
  fx.kernel.Spawn("r", ReaddirAll(&fx.fs, "/d", &names, &calls));
  fx.kernel.RunUntilThreadsFinish();
  fx.kernel.Spawn("r2", ReaddirAll(&fx.fs, "/d", &names, &calls));
  fx.kernel.RunUntilThreadsFinish();

  const osprof::Profile* readdir = prof.profiles().Find("readdir");
  ASSERT_NE(readdir, nullptr);
  // 60 entries at 16/call: per pass 4 data calls + 1 EOF probe; only the
  // very first call pays disk I/O.
  EXPECT_EQ(readdir->total_operations(), 10u);
  const osprof::Histogram& h = readdir->histogram();
  // EOF probes: bucket 6-7.  Cached calls: ~bucket 9-14.  Cold call: >= 16.
  std::uint64_t eof_zone = 0;
  std::uint64_t warm_zone = 0;
  std::uint64_t disk_zone = 0;
  for (int b = 5; b <= 8; ++b) {
    eof_zone += h.bucket(b);
  }
  for (int b = 9; b <= 14; ++b) {
    warm_zone += h.bucket(b);
  }
  for (int b = 16; b <= 25; ++b) {
    disk_zone += h.bucket(b);
  }
  EXPECT_EQ(eof_zone, 2u);
  EXPECT_EQ(warm_zone, 7u);
  EXPECT_EQ(disk_zone, 1u);

  // And the paper's cross-check: readpage ops == disk-zone readdir ops.
  const osprof::Profile* readpage = prof.profiles().Find("readpage");
  ASSERT_NE(readpage, nullptr);
  EXPECT_EQ(readpage->total_operations(), disk_zone);
}

TEST(Ext2Llseek, UnpatchedTakesSemaphorePatchedDoesNot) {
  for (const bool unpatched : {true, false}) {
    Ext2Config cfg;
    cfg.llseek_takes_i_sem = unpatched;
    cfg.cpu_noise_sigma = 0.0;  // Exact cost assertions.
    Fixture fx(cfg);
    fx.fs.AddFile("/f", 1 << 20);
    SimProfiler prof(&fx.kernel);
    fx.fs.SetProfiler(&prof);
    auto body = [](osfs::Vfs* vfs) -> Task<void> {
      const int fd = co_await vfs->Open("/f", false);
      for (int i = 0; i < 100; ++i) {
        (void)co_await vfs->Llseek(fd, static_cast<std::uint64_t>(i) * 512);
      }
      co_await vfs->Close(fd);
    };
    fx.kernel.Spawn("s", body(&fx.fs));
    fx.kernel.RunUntilThreadsFinish();
    const osprof::Profile* llseek = prof.profiles().Find("llseek");
    ASSERT_NE(llseek, nullptr);
    const double mean = llseek->histogram().MeanLatency();
    if (unpatched) {
      EXPECT_NEAR(mean, 400.0, 40.0);  // The paper's 400 cycles.
    } else {
      EXPECT_NEAR(mean, 120.0, 15.0);  // The paper's 120 cycles.
    }
  }
}

TEST(Ext2DirectIo, LlseekContendsWithDirectRead) {
  // §6.1: with two processes random-reading the same file with O_DIRECT,
  // llseek collides with the i_sem held across the other's disk I/O.
  Ext2Config cfg;
  Fixture fx(cfg, [] {
    KernelConfig k = QuietConfig();
    k.num_cpus = 2;
    return k;
  }());
  fx.fs.AddFile("/data", 16u << 20);
  SimProfiler prof(&fx.kernel);
  fx.fs.SetProfiler(&prof);

  auto proc = [](Kernel* k, osfs::Vfs* vfs, std::uint64_t seed) -> Task<void> {
    osim::Rng rng(seed);
    const int fd = co_await vfs->Open("/data", /*direct_io=*/true);
    for (int i = 0; i < 150; ++i) {
      (void)co_await vfs->Llseek(fd, rng.Below(32'000) * 512);
      (void)co_await vfs->Read(fd, 512);
      co_await k->CpuUser(500);
    }
    co_await vfs->Close(fd);
  };
  fx.kernel.Spawn("p1", proc(&fx.kernel, &fx.fs, 11));
  fx.kernel.Spawn("p2", proc(&fx.kernel, &fx.fs, 22));
  fx.kernel.RunUntilThreadsFinish();

  const osprof::Profile* llseek = prof.profiles().Find("llseek");
  ASSERT_NE(llseek, nullptr);
  // Two modes: the CPU-only path (bucket ~8-9) and the contended path in
  // the disk-latency range (>= bucket 17).
  const osprof::Histogram& h = llseek->histogram();
  std::uint64_t fast = 0;
  std::uint64_t slow = 0;
  for (int b = 0; b <= 12; ++b) {
    fast += h.bucket(b);
  }
  for (int b = 17; b < h.num_buckets(); ++b) {
    slow += h.bucket(b);
  }
  EXPECT_GT(fast, 0u);
  EXPECT_GT(slow, 0u);
  // Single process: no contended mode.
  SimProfiler prof1(&fx.kernel);
  fx.fs.SetProfiler(&prof1);
  fx.kernel.Spawn("solo", proc(&fx.kernel, &fx.fs, 33));
  fx.kernel.RunUntilThreadsFinish();
  const osprof::Histogram& h1 = prof1.profiles().Find("llseek")->histogram();
  std::uint64_t solo_slow = 0;
  for (int b = 17; b < h1.num_buckets(); ++b) {
    solo_slow += h1.bucket(b);
  }
  EXPECT_EQ(solo_slow, 0u);
}

Task<void> WriteFileBody(osfs::Vfs* vfs, std::string path, std::uint64_t bytes,
                         bool fsync) {
  const int fd = co_await vfs->Create(path);
  EXPECT_GE(fd, 0);
  (void)co_await vfs->Write(fd, bytes);
  if (fsync) {
    co_await vfs->Fsync(fd);
  }
  co_await vfs->Close(fd);
}

TEST(Ext2Write, BufferedWriteDefersDiskIo) {
  Fixture fx;
  fx.fs.AddDir("/w");
  fx.kernel.Spawn("w", WriteFileBody(&fx.fs, "/w/f", 8192, /*fsync=*/false));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(fx.disk.requests_completed(), 0u);  // All in the page cache.
  EXPECT_EQ(fx.fs.FileSize("/w/f"), 8192u);
}

TEST(Ext2Write, FsyncForcesWriteback) {
  Fixture fx;
  fx.fs.AddDir("/w");
  fx.kernel.Spawn("w", WriteFileBody(&fx.fs, "/w/f", 8192, /*fsync=*/true));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_GE(fx.disk.requests_completed(), 2u);  // Two pages written.
}

TEST(Ext2Write, ExtendsFileAcrossExtentGrowth) {
  Fixture fx;
  fx.fs.AddDir("/w");
  auto body = [](osfs::Vfs* vfs) -> Task<void> {
    const int fd = co_await vfs->Create("/w/big");
    for (int i = 0; i < 100; ++i) {
      (void)co_await vfs->Write(fd, 4096);
    }
    co_await vfs->Close(fd);
  };
  fx.kernel.Spawn("w", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(fx.fs.FileSize("/w/big"), 409'600u);
}

TEST(Ext2Namespace, CreateUnlinkLifecycle) {
  Fixture fx;
  fx.fs.AddDir("/d");
  auto body = [](osfs::Vfs* vfs) -> Task<void> {
    const int fd = co_await vfs->Create("/d/new");
    EXPECT_GE(fd, 0);
    co_await vfs->Close(fd);
    const FileAttr attr = co_await vfs->Stat("/d/new");
    EXPECT_FALSE(attr.is_dir);
    co_await vfs->Unlink("/d/new");
    const int fd2 = co_await vfs->Open("/d/new", false);
    EXPECT_EQ(fd2, -1);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
}

TEST(Ext2Namespace, CreateInMissingParentFails) {
  Fixture fx;
  auto body = [](osfs::Vfs* vfs) -> Task<void> {
    const int fd = co_await vfs->Create("/missing/f");
    EXPECT_EQ(fd, -1);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
}

TEST(Ext2Fds, BadDescriptorThrows) {
  Fixture fx;
  auto body = [](osfs::Vfs* vfs) -> Task<void> {
    (void)co_await vfs->Read(42, 100);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  EXPECT_THROW(fx.kernel.RunUntilThreadsFinish(), std::invalid_argument);
}

TEST(ProfiledVfs, LayeredProfilingSeesBoundaryOps) {
  Fixture fx;
  fx.fs.AddFile("/f", 4096);
  SimProfiler fs_prof(&fx.kernel);
  SimProfiler user_prof(&fx.kernel);
  fx.fs.SetProfiler(&fs_prof);
  ProfiledVfs user_layer(&fx.fs, &user_prof, "user.");
  std::int64_t total = 0;
  fx.kernel.Spawn("r", ReadWholeFile(&user_layer, "/f", &total));
  fx.kernel.RunUntilThreadsFinish();
  // Both layers saw the read; only the fs layer saw readpage.
  EXPECT_NE(user_prof.profiles().Find("user.read"), nullptr);
  EXPECT_NE(fs_prof.profiles().Find("read"), nullptr);
  EXPECT_NE(fs_prof.profiles().Find("readpage"), nullptr);
  EXPECT_EQ(user_prof.profiles().Find("user.readpage"), nullptr);
  // The user layer's read latency must be >= the fs layer's (it includes
  // the boundary crossing).
  EXPECT_GE(user_prof.profiles().Find("user.read")->total_latency(),
            fs_prof.profiles().Find("read")->total_latency());
}

}  // namespace
}  // namespace osfs
