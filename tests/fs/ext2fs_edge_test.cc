// Ext2SimFs edge cases: seeks past EOF, partial pages, reopening,
// direct-I/O corners, cache interactions.

#include <gtest/gtest.h>

#include "src/fs/ext2fs.h"

namespace osfs {
namespace {

using osim::Kernel;
using osim::KernelConfig;
using osim::SimDisk;
using osim::Task;

KernelConfig QuietConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 1;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

struct Fixture {
  Fixture() : kernel(QuietConfig()), disk(&kernel), fs(&kernel, &disk) {}
  Kernel kernel;
  SimDisk disk;
  Ext2SimFs fs;
};

TEST(Ext2Edge, ReadAfterSeekPastEofReturnsZero) {
  Fixture fx;
  fx.fs.AddFile("/f", 4'096);
  auto body = [](Vfs* vfs) -> Task<void> {
    const int fd = co_await vfs->Open("/f", false);
    (void)co_await vfs->Llseek(fd, 1u << 20);
    EXPECT_EQ(co_await vfs->Read(fd, 4096), 0);
    co_await vfs->Close(fd);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(fx.disk.requests_completed(), 0u);
}

TEST(Ext2Edge, PartialTrailingPageReadsExactly) {
  Fixture fx;
  fx.fs.AddFile("/f", 4'096 + 123);
  auto body = [](Vfs* vfs) -> Task<void> {
    const int fd = co_await vfs->Open("/f", false);
    EXPECT_EQ(co_await vfs->Read(fd, 4'096), 4'096);
    EXPECT_EQ(co_await vfs->Read(fd, 4'096), 123);
    EXPECT_EQ(co_await vfs->Read(fd, 4'096), 0);
    co_await vfs->Close(fd);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
}

TEST(Ext2Edge, UnalignedReadSpanningTwoPages) {
  Fixture fx;
  fx.fs.AddFile("/f", 12'288);
  auto body = [](Vfs* vfs) -> Task<void> {
    const int fd = co_await vfs->Open("/f", false);
    (void)co_await vfs->Llseek(fd, 4'000);
    EXPECT_EQ(co_await vfs->Read(fd, 1'000), 1'000);  // Pages 0 and 1.
    co_await vfs->Close(fd);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
  // Both spanned pages were faulted in.
  EXPECT_EQ(fx.fs.page_cache().reads_started(), 2u);
}

TEST(Ext2Edge, FdsAreRecycledAfterClose) {
  Fixture fx;
  fx.fs.AddFile("/f", 4'096);
  auto body = [](Vfs* vfs) -> Task<void> {
    const int fd1 = co_await vfs->Open("/f", false);
    co_await vfs->Close(fd1);
    const int fd2 = co_await vfs->Open("/f", false);
    EXPECT_EQ(fd2, fd1);  // Slot reuse.
    co_await vfs->Close(fd2);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(fx.fs.open_files(), 0);
}

TEST(Ext2Edge, PositionIsPerDescriptorNotPerInode) {
  Fixture fx;
  fx.fs.AddFile("/f", 8'192);
  auto body = [](Vfs* vfs) -> Task<void> {
    const int a = co_await vfs->Open("/f", false);
    const int b = co_await vfs->Open("/f", false);
    (void)co_await vfs->Llseek(a, 8'000);
    // b's position is untouched.
    EXPECT_EQ(co_await vfs->Read(b, 4'096), 4'096);
    EXPECT_EQ(co_await vfs->Read(a, 4'096), 192);
    co_await vfs->Close(a);
    co_await vfs->Close(b);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
}

TEST(Ext2Edge, DirectReadBypassesPageCache) {
  Fixture fx;
  fx.fs.AddFile("/f", 1u << 20);
  auto body = [](Vfs* vfs) -> Task<void> {
    const int fd = co_await vfs->Open("/f", /*direct_io=*/true);
    EXPECT_EQ(co_await vfs->Read(fd, 512), 512);
    EXPECT_EQ(co_await vfs->Read(fd, 512), 512);
    co_await vfs->Close(fd);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(fx.fs.page_cache().resident_pages(), 0u);
  EXPECT_EQ(fx.disk.requests_completed(), 2u);  // Every read hits the disk.
}

TEST(Ext2Edge, WriteThenReadBackThroughCache) {
  Fixture fx;
  fx.fs.AddDir("/d");
  auto body = [](Vfs* vfs) -> Task<void> {
    const int fd = co_await vfs->Create("/d/f");
    (void)co_await vfs->Write(fd, 10'000);
    (void)co_await vfs->Llseek(fd, 0);
    std::int64_t total = 0;
    std::int64_t got = 0;
    do {
      got = co_await vfs->Read(fd, 4'096);
      total += got;
    } while (got > 0);
    EXPECT_EQ(total, 10'000);
    co_await vfs->Close(fd);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
  // The dirty pages satisfied the reads; nothing was read from disk.
  EXPECT_EQ(fx.fs.page_cache().reads_started(), 0u);
}

TEST(Ext2Edge, StatMissingPathGivesZeroAttr) {
  Fixture fx;
  auto body = [](Vfs* vfs) -> Task<void> {
    const FileAttr attr = co_await vfs->Stat("/missing");
    EXPECT_EQ(attr.size, 0u);
    EXPECT_FALSE(attr.is_dir);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
}

TEST(Ext2Edge, UnlinkNonexistentIsANoOp) {
  Fixture fx;
  fx.fs.AddDir("/d");
  auto body = [](Vfs* vfs) -> Task<void> {
    co_await vfs->Unlink("/d/ghost");
    co_await vfs->Unlink("/nodir/ghost");
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();  // Must not throw or deadlock.
}

TEST(Ext2Edge, ReaddirOnFileReturnsAtEnd) {
  Fixture fx;
  fx.fs.AddFile("/f", 100);
  auto body = [](Vfs* vfs) -> Task<void> {
    const int fd = co_await vfs->Open("/f", false);
    const DirentBatch batch = co_await vfs->Readdir(fd);
    EXPECT_TRUE(batch.at_end);
    EXPECT_TRUE(batch.names.empty());
    co_await vfs->Close(fd);
  };
  fx.kernel.Spawn("t", body(&fx.fs));
  fx.kernel.RunUntilThreadsFinish();
}

}  // namespace
}  // namespace osfs
