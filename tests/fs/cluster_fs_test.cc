// ClusterFs tests: per-node mounts of one shared volume, cross-node
// coherence (a writer's generation bump invalidates the peer's cached
// pages on its next grant), fsync, and create/unlink through the DLM.

#include "src/fs/cluster_fs.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/net/dlm.h"
#include "src/net/fabric.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"

namespace osfs {
namespace {

osim::KernelConfig ClusterConfig(int nodes) {
  osim::KernelConfig cfg;
  cfg.num_cpus = 2 * nodes;
  cfg.num_nodes = nodes;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

// A two-node cluster with one shared file, ready to mount.
struct Fixture {
  explicit Fixture(int nodes = 2)
      : kernel(ClusterConfig(nodes)),
        disk(&kernel),
        fabric(&kernel),
        dlm(&kernel, &fabric),
        volume(&kernel, &disk) {
    volume.AddDir("/shared");
    volume.AddFile("/shared/data", 256 * 1024);
    for (int n = 0; n < nodes; ++n) {
      mounts.push_back(
          std::make_unique<ClusterFsNode>(&volume, &dlm, n));
    }
    dlm.Start();
  }

  // The standard join: the last finishing client task stops the DLM
  // daemons so RunUntilThreadsFinish can return.
  void ClientDone() {
    --remaining;
    if (remaining == 0) {
      dlm.Shutdown();
    }
  }

  osim::Kernel kernel;
  osim::SimDisk disk;
  osnet::Fabric fabric;
  osnet::Dlm dlm;
  ClusterVolume volume;
  std::vector<std::unique_ptr<ClusterFsNode>> mounts;
  int remaining = 0;
};

TEST(ClusterVolume, MkfsAndResolve) {
  osim::Kernel kernel(ClusterConfig(2));
  osim::SimDisk disk(&kernel);
  ClusterVolume volume(&kernel, &disk);
  volume.AddDir("/a");
  volume.AddDir("/a/b");
  const int f = volume.AddFile("/a/b/f", 4096);
  EXPECT_EQ(volume.ResolvePath("/a/b/f"), f);
  EXPECT_EQ(volume.ResolvePath("/a/missing"), -1);
  EXPECT_EQ(volume.ResolvePath("/"), 0);
}

osim::Task<void> WriteSlice(Fixture* fx, int node, std::uint64_t offset,
                            std::uint64_t bytes) {
  Vfs* fs = fx->mounts[static_cast<std::size_t>(node)].get();
  const int fd = co_await fs->Open("/shared/data", false);
  co_await fs->Llseek(fd, offset);
  const std::int64_t n = co_await fs->Write(fd, bytes);
  EXPECT_EQ(n, static_cast<std::int64_t>(bytes));
  co_await fs->Close(fd);
  fx->ClientDone();
}

osim::Task<void> ReadSlice(Fixture* fx, int node, osim::Cycles delay,
                           std::uint64_t offset, std::uint64_t bytes) {
  if (delay > 0) {
    co_await fx->kernel.Sleep(delay);
  }
  Vfs* fs = fx->mounts[static_cast<std::size_t>(node)].get();
  const int fd = co_await fs->Open("/shared/data", false);
  co_await fs->Llseek(fd, offset);
  const std::int64_t n = co_await fs->Read(fd, bytes);
  EXPECT_EQ(n, static_cast<std::int64_t>(bytes));
  co_await fs->Close(fd);
  fx->ClientDone();
}

TEST(ClusterFs, ReadAndWriteThroughOneNode) {
  Fixture fx;
  fx.remaining = 2;
  fx.kernel.SpawnOn(0, "w", WriteSlice(&fx, 0, 0, 16'384));
  fx.kernel.SpawnOn(0, "r",
                    ReadSlice(&fx, 0, 50'000'000, 0, 16'384));
  fx.kernel.RunUntilThreadsFinish();
  // Same node: the EX grant stays cached, nothing ever revokes it.
  EXPECT_EQ(fx.dlm.basts_sent(), 0u);
  EXPECT_EQ(fx.mounts[0]->invalidations(), 0u);
}

TEST(ClusterFs, ForeignWriteInvalidatesCachedPages) {
  Fixture fx;
  fx.remaining = 3;
  // Node 1 reads first (fills its cache), node 0 writes the same range,
  // node 1 reads again: the second read's grant sees the bumped
  // generation and drops node 1's stale clean pages.
  fx.kernel.SpawnOn(1, "r1", ReadSlice(&fx, 1, 0, 0, 32'768));
  fx.kernel.SpawnOn(0, "w", [](Fixture* f) -> osim::Task<void> {
    co_await f->kernel.Sleep(300'000'000);
    co_await WriteSlice(f, 0, 0, 32'768);
  }(&fx));
  fx.kernel.SpawnOn(1, "r2",
                    ReadSlice(&fx, 1, 600'000'000, 0, 32'768));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_GE(fx.mounts[1]->invalidations(), 1u);
  // The writer's EX revoked node 1's PR grant; the flush is the
  // downgrade hook's job (node 0 held only dirty pages after the write).
  EXPECT_GT(fx.dlm.basts_sent(), 0u);
}

TEST(ClusterFs, DowngradeFlushesDirtyPagesBeforeTheGrantMoves) {
  Fixture fx;
  fx.remaining = 2;
  fx.kernel.SpawnOn(0, "w", WriteSlice(&fx, 0, 0, 32'768));
  fx.kernel.SpawnOn(1, "r",
                    ReadSlice(&fx, 1, 400'000'000, 0, 32'768));
  fx.kernel.RunUntilThreadsFinish();
  // Node 0's dirty pages were written back by its downgrade hook, not
  // lost: the revoke path flushed before surrendering EX.
  EXPECT_GT(fx.mounts[0]->pages_flushed(), 0u);
  EXPECT_GE(fx.dlm.downgrades(), 1u);
}

osim::Task<void> FsyncAfterWrite(Fixture* fx) {
  Vfs* fs = fx->mounts[0].get();
  const int fd = co_await fs->Open("/shared/data", false);
  co_await fs->Write(fd, 16'384);
  co_await fs->Fsync(fd);
  co_await fs->Close(fd);
  fx->ClientDone();
}

TEST(ClusterFs, FsyncWritesBackDirtyPages) {
  Fixture fx;
  fx.remaining = 1;
  fx.kernel.SpawnOn(0, "w", FsyncAfterWrite(&fx));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_GT(fx.mounts[0]->pages_flushed(), 0u);
}

osim::Task<void> CreateWriteStatUnlink(Fixture* fx) {
  Vfs* fs = fx->mounts[0].get();
  const int fd = co_await fs->Create("/shared/new");
  co_await fs->Write(fd, 8'192);
  co_await fs->Close(fd);
  const FileAttr attr = co_await fs->Stat("/shared/new");
  EXPECT_FALSE(attr.is_dir);
  EXPECT_EQ(attr.size, 8'192u);
  co_await fs->Unlink("/shared/new");
  fx->ClientDone();
}

osim::Task<void> StatFromPeer(Fixture* fx, std::string path,
                              std::uint64_t expect_size) {
  co_await fx->kernel.Sleep(400'000'000);
  Vfs* fs = fx->mounts[1].get();
  const FileAttr attr = co_await fs->Stat(path);
  EXPECT_EQ(attr.size, expect_size);
  fx->ClientDone();
}

TEST(ClusterFs, CreateStatUnlinkRoundTrip) {
  Fixture fx;
  fx.remaining = 1;
  fx.kernel.SpawnOn(0, "c", CreateWriteStatUnlink(&fx));
  fx.kernel.RunUntilThreadsFinish();
  // Unlinked again: the peer would see ENOENT, and the directory's
  // generation moved twice (create + unlink).
  EXPECT_EQ(fx.volume.ResolvePath("/shared/new"), -1);
}

osim::Task<void> CreateOnly(Fixture* fx, std::string path,
                            std::uint64_t bytes) {
  Vfs* fs = fx->mounts[0].get();
  const int fd = co_await fs->Create(path);
  co_await fs->Write(fd, bytes);
  co_await fs->Close(fd);
  fx->ClientDone();
}

TEST(ClusterFs, CreateIsVisibleFromTheOtherNode) {
  Fixture fx;
  fx.remaining = 2;
  fx.kernel.SpawnOn(0, "c", CreateOnly(&fx, "/shared/peer", 12'288));
  fx.kernel.SpawnOn(1, "s", StatFromPeer(&fx, "/shared/peer", 12'288));
  fx.kernel.RunUntilThreadsFinish();
}

osim::Task<void> ReaddirAll(Fixture* fx, int node,
                            std::vector<std::string>* names) {
  co_await fx->kernel.Sleep(400'000'000);
  Vfs* fs = fx->mounts[static_cast<std::size_t>(node)].get();
  const int fd = co_await fs->Open("/shared", false);
  for (;;) {
    const DirentBatch batch = co_await fs->Readdir(fd);
    for (const std::string& n : batch.names) {
      names->push_back(n);
    }
    if (batch.at_end) {
      break;
    }
  }
  co_await fs->Close(fd);
  fx->ClientDone();
}

TEST(ClusterFs, ReaddirSeesPeerCreations) {
  Fixture fx;
  fx.remaining = 2;
  std::vector<std::string> names;
  fx.kernel.SpawnOn(0, "c", CreateOnly(&fx, "/shared/extra", 4'096));
  fx.kernel.SpawnOn(1, "d", ReaddirAll(&fx, 1, &names));
  fx.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(names,
            (std::vector<std::string>{"data", "extra"}));
}

}  // namespace
}  // namespace osfs
