#include "src/fs/page_cache.h"

#include <gtest/gtest.h>

namespace osfs {
namespace {

using osim::Kernel;
using osim::KernelConfig;
using osim::SimDisk;
using osim::Task;

KernelConfig QuietConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 1;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

TEST(PageCache, MissThenHit) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  PageCache cache(&k, &disk, 100);
  const PageKey key{1, 0};
  EXPECT_FALSE(cache.Contains(key));
  auto reader = [](Kernel& kk, PageCache& c, PageKey pk) -> Task<void> {
    c.StartRead(pk, 1000);
    co_await c.WaitForPage(pk);
    (void)kk;
  };
  k.Spawn("r", reader(k, cache, key));
  k.RunUntilThreadsFinish();
  EXPECT_TRUE(cache.Contains(key));
  EXPECT_EQ(cache.reads_started(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PageCache, DuplicateStartReadSubmitsOnce) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  PageCache cache(&k, &disk, 100);
  const PageKey key{1, 0};
  cache.StartRead(key, 1000);
  cache.StartRead(key, 1000);
  EXPECT_EQ(cache.reads_started(), 1u);
  EXPECT_TRUE(cache.IoInProgress(key));
  k.RunFor(osim::Cycles{1} << 32);
  EXPECT_FALSE(cache.IoInProgress(key));
}

TEST(PageCache, MultipleWaitersAllWake) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  PageCache cache(&k, &disk, 100);
  const PageKey key{1, 0};
  int woken = 0;
  auto waiter = [](PageCache& c, PageKey pk, int* count) -> Task<void> {
    co_await c.WaitForPage(pk);
    ++*count;
  };
  cache.StartRead(key, 1000);
  k.Spawn("w1", waiter(cache, key, &woken));
  k.Spawn("w2", waiter(cache, key, &woken));
  k.Spawn("w3", waiter(cache, key, &woken));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(woken, 3);
}

TEST(PageCache, WaitWithoutReadThrows) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  PageCache cache(&k, &disk, 100);
  auto waiter = [](PageCache& c) -> Task<void> {
    co_await c.WaitForPage(PageKey{9, 9});
  };
  k.Spawn("w", waiter(cache));
  EXPECT_THROW(k.RunUntilThreadsFinish(), std::logic_error);
}

TEST(PageCache, DirtyPagesFlushByAge) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  PageCache cache(&k, &disk, 100);
  cache.MarkDirty(PageKey{1, 0}, 1000);
  k.RunFor(1'000'000);
  cache.MarkDirty(PageKey{1, 1}, 1008);
  // Only the old page qualifies.
  EXPECT_EQ(cache.FlushOlderThan(500'000), 1);
  EXPECT_FALSE(cache.IsDirty(PageKey{1, 0}));
  EXPECT_TRUE(cache.IsDirty(PageKey{1, 1}));
  EXPECT_EQ(cache.FlushOlderThan(0), 1);  // Now the young one too.
}

TEST(PageCache, WriteBackClearsDirtySynchronously) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  PageCache cache(&k, &disk, 100);
  cache.MarkDirty(PageKey{1, 0}, 1000);
  auto syncer = [](PageCache& c) -> Task<void> {
    co_await c.WriteBack(PageKey{1, 0});
  };
  k.Spawn("s", syncer(cache));
  k.RunUntilThreadsFinish();
  EXPECT_FALSE(cache.IsDirty(PageKey{1, 0}));
  EXPECT_EQ(cache.writebacks(), 1u);
  EXPECT_EQ(disk.requests_completed(), 1u);
}

TEST(PageCache, LruEvictionPrefersColdPages) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  PageCache cache(&k, &disk, 3);
  cache.MarkValid(PageKey{1, 0}, 1000);
  cache.MarkValid(PageKey{1, 1}, 1008);
  cache.MarkValid(PageKey{1, 2}, 1016);
  EXPECT_TRUE(cache.Contains(PageKey{1, 0}));  // Touch 0: now hottest.
  cache.MarkValid(PageKey{1, 3}, 1024);        // Evicts page 1 (coldest).
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Contains(PageKey{1, 1}));
  EXPECT_TRUE(cache.Contains(PageKey{1, 0}));
  EXPECT_TRUE(cache.Contains(PageKey{1, 3}));
}

TEST(PageCache, EvictingDirtyPageWritesItBack) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  PageCache cache(&k, &disk, 1);
  cache.MarkDirty(PageKey{1, 0}, 1000);
  cache.MarkValid(PageKey{1, 1}, 1008);  // Evicts the dirty page.
  EXPECT_EQ(cache.writebacks(), 1u);
  k.RunFor(osim::Cycles{1} << 32);
  EXPECT_EQ(disk.requests_completed(), 1u);
}

TEST(PageCache, FlusherDaemonRunsPeriodically) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  PageCache cache(&k, &disk, 100);
  cache.SpawnFlusher(/*interval=*/1'000'000, /*min_age=*/0);
  cache.MarkDirty(PageKey{1, 0}, 1000);
  k.RunFor(3'000'000);
  EXPECT_FALSE(cache.IsDirty(PageKey{1, 0}));
  EXPECT_GE(cache.writebacks(), 1u);
}

TEST(PageCache, DropCleanKeepsDirty) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  PageCache cache(&k, &disk, 100);
  cache.MarkValid(PageKey{1, 0}, 1000);
  cache.MarkDirty(PageKey{1, 1}, 1008);
  cache.DropClean();
  EXPECT_FALSE(cache.Contains(PageKey{1, 0}));
  EXPECT_TRUE(cache.IsDirty(PageKey{1, 1}));
}

}  // namespace
}  // namespace osfs
