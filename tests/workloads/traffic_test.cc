// TrafficPhase edge cases for the open-loop generator: an empty curve, a
// zero-rate phase in the middle of a ramp, and the minimal single-session
// curve.  The generator's contract is exactness -- every configured
// session runs and issues exactly requests_per_session requests -- and
// these are the configurations where off-by-one slicing bugs would live.

#include "src/workloads/traffic.h"

#include <gtest/gtest.h>

#include "src/fs/ext2fs.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"

namespace osworkloads {
namespace {

using osfs::Ext2SimFs;
using osim::Kernel;
using osim::KernelConfig;
using osim::SimDisk;

KernelConfig QuietConfig(int cpus = 2) {
  KernelConfig cfg;
  cfg.num_cpus = cpus;
  cfg.seed = 5;
  return cfg;
}

TrafficConfig SmallPool() {
  TrafficConfig config;
  config.file_pool = 4;
  config.file_bytes = 8'192;
  config.requests_per_session = 6;
  return config;
}

TrafficStats Drive(const TrafficConfig& config) {
  Kernel kernel(QuietConfig());
  SimDisk disk(&kernel);
  Ext2SimFs fs(&kernel, &disk);
  CreateTrafficFiles(&fs, config);
  TrafficStats stats;
  kernel.Spawn("traffic", OpenLoopTraffic(&kernel, &fs, config, &stats));
  kernel.RunUntilThreadsFinish();
  return stats;
}

TEST(Traffic, EmptyPhaseListPlansAndDeliversNothing) {
  TrafficConfig config = SmallPool();
  config.phases = {};
  EXPECT_EQ(PlannedRequests(config), 0u);
  const TrafficStats stats = Drive(config);
  EXPECT_EQ(stats.sessions_started, 0u);
  EXPECT_EQ(stats.sessions_finished, 0u);
  EXPECT_EQ(stats.requests_completed, 0u);
  EXPECT_EQ(stats.peak_live_sessions, 0u);
}

TEST(Traffic, ZeroRatePhaseIsAQuietGapNotAStall) {
  // A 0-session phase models a lull between bursts: the driver must sleep
  // through it and still deliver both bursts exactly.
  TrafficConfig config = SmallPool();
  config.phases = {{3, osim::Cycles{400'000}},
                   {0, osim::Cycles{600'000}},
                   {2, osim::Cycles{400'000}}};
  EXPECT_EQ(PlannedRequests(config), 5u * 6u);
  const TrafficStats stats = Drive(config);
  EXPECT_EQ(stats.sessions_started, 5u);
  EXPECT_EQ(stats.sessions_finished, 5u);
  EXPECT_EQ(stats.requests_completed, 5u * 6u);
  EXPECT_EQ(stats.reads + stats.writes, stats.requests_completed);
}

TEST(Traffic, SingleSessionChurnRunsToCompletion) {
  TrafficConfig config = SmallPool();
  config.phases = {{1, osim::Cycles{100'000}}};
  EXPECT_EQ(PlannedRequests(config), 6u);
  const TrafficStats stats = Drive(config);
  EXPECT_EQ(stats.sessions_started, 1u);
  EXPECT_EQ(stats.sessions_finished, 1u);
  EXPECT_EQ(stats.requests_completed, 6u);
  EXPECT_EQ(stats.peak_live_sessions, 1u);
  EXPECT_GT(stats.bytes_read + stats.bytes_written, 0u);
}

TEST(Traffic, ZeroRequestSessionsStillChurn) {
  // Sessions that open and immediately close: the churn machinery
  // (spawn, open, close, exit) must survive an empty request loop.
  TrafficConfig config = SmallPool();
  config.requests_per_session = 0;
  config.phases = {{4, osim::Cycles{200'000}}};
  EXPECT_EQ(PlannedRequests(config), 0u);
  const TrafficStats stats = Drive(config);
  EXPECT_EQ(stats.sessions_started, 4u);
  EXPECT_EQ(stats.sessions_finished, 4u);
  EXPECT_EQ(stats.requests_completed, 0u);
}

}  // namespace
}  // namespace osworkloads
