#include "src/workloads/workloads.h"

#include <gtest/gtest.h>

#include "src/core/peaks.h"

namespace osworkloads {
namespace {

using osfs::Ext2Config;
using osfs::Ext2SimFs;
using osim::KernelConfig;
using osim::SimDisk;

KernelConfig QuietConfig(int cpus = 1) {
  KernelConfig cfg;
  cfg.num_cpus = cpus;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

TEST(BuildSourceTree, CreatesTheAdvertisedShape) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  Ext2SimFs fs(&k, &disk);
  TreeSpec spec;
  spec.top_dirs = 2;
  spec.subdirs_per_dir = 2;
  spec.depth = 2;
  spec.files_per_dir = 5;
  const BuiltTree tree = BuildSourceTree(&fs, "/linux", spec);
  // Dirs per top: 1 + 2 + 4 = 7; two tops = 14.
  EXPECT_EQ(tree.directories.size(), 14u);
  EXPECT_EQ(tree.files.size(), 14u * 5u);
  for (const std::string& f : tree.files) {
    EXPECT_TRUE(fs.Exists(f)) << f;
    EXPECT_GE(fs.FileSize(f), 64u);
  }
  EXPECT_GT(tree.total_bytes, 0u);
}

TEST(BuildSourceTree, DeterministicForSameSeed) {
  for (int run = 0; run < 2; ++run) {
    // (Separate kernels; sizes must match across runs.)
    Kernel k(QuietConfig());
    SimDisk disk(&k);
    Ext2SimFs fs(&k, &disk);
    TreeSpec spec;
    spec.top_dirs = 1;
    spec.files_per_dir = 3;
    static std::vector<std::uint64_t> first_sizes;
    const BuiltTree tree = BuildSourceTree(&fs, "/t", spec);
    std::vector<std::uint64_t> sizes;
    for (const std::string& f : tree.files) {
      sizes.push_back(fs.FileSize(f));
    }
    if (run == 0) {
      first_sizes = sizes;
    } else {
      EXPECT_EQ(sizes, first_sizes);
    }
  }
}

TEST(GrepWorkload, VisitsEveryFileAndDirectory) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  Ext2SimFs fs(&k, &disk);
  TreeSpec spec;
  spec.top_dirs = 2;
  spec.subdirs_per_dir = 1;
  spec.depth = 1;
  spec.files_per_dir = 4;
  spec.median_file_bytes = 2'000;
  const BuiltTree tree = BuildSourceTree(&fs, "/src", spec);
  GrepStats stats;
  k.Spawn("grep", GrepWorkload(&k, &fs, "/src", 0.5, &stats));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(stats.files_read, tree.files.size());
  // +1: the root itself.
  EXPECT_EQ(stats.directories_visited, tree.directories.size() + 1);
  EXPECT_EQ(stats.bytes_read, tree.total_bytes);
}

TEST(GrepWorkload, GeneratesTheFigure7OperationMix) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  Ext2SimFs fs(&k, &disk);
  TreeSpec spec;
  spec.top_dirs = 3;
  spec.files_per_dir = 10;
  BuildSourceTree(&fs, "/src", spec);
  osprofilers::SimProfiler prof(&k);
  fs.SetProfiler(&prof);
  GrepStats stats;
  k.Spawn("grep", GrepWorkload(&k, &fs, "/src", 0.5, &stats));
  k.RunUntilThreadsFinish();
  // The op mix: readdir (incl. past-EOF probes), stat, open, read,
  // readpage, close.
  for (const char* op :
       {"readdir", "stat", "open", "read", "readpage", "close"}) {
    ASSERT_NE(prof.profiles().Find(op), nullptr) << op;
    EXPECT_GT(prof.profiles().Find(op)->total_operations(), 0u) << op;
  }
  // Every directory produces at least one past-EOF readdir, which lands
  // in buckets 5-8.
  const osprof::Histogram& rd = prof.profiles().Find("readdir")->histogram();
  std::uint64_t eof_zone = 0;
  for (int b = 5; b <= 8; ++b) {
    eof_zone += rd.bucket(b);
  }
  EXPECT_GE(eof_zone, stats.directories_visited);
}

TEST(ZeroByteReadWorkload, IssuesExactRequestCount) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  Ext2SimFs fs(&k, &disk);
  fs.AddFile("/f", 4096);
  osprofilers::SimProfiler prof(&k);
  fs.SetProfiler(&prof);
  k.Spawn("z", ZeroByteReadWorkload(&k, &fs, "/f", 5'000, 100));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(prof.profiles().Find("read")->total_operations(), 5'000u);
  EXPECT_EQ(disk.requests_completed(), 0u);
}

TEST(RandomReadWorkload, UsesDirectIoAndSeeks) {
  Kernel k(QuietConfig(2));
  SimDisk disk(&k);
  Ext2SimFs fs(&k, &disk);
  fs.AddFile("/data", 8u << 20);
  osprofilers::SimProfiler prof(&k);
  fs.SetProfiler(&prof);
  k.Spawn("p", RandomReadWorkload(&k, &fs, "/data", 50, 99));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(prof.profiles().Find("llseek")->total_operations(), 50u);
  EXPECT_EQ(prof.profiles().Find("read")->total_operations(), 50u);
  EXPECT_GT(disk.requests_completed(), 0u);  // O_DIRECT hits the disk.
}

TEST(CloneWorkload, SingleProcessHasOnePeakFourHaveTwo) {
  // Figure 1 end to end.
  auto run = [](int processes) {
    // Real context-switch cost: a blocked clone pays wakeup + dispatch,
    // which is what pushes the contended mode visibly to the right.
    KernelConfig cfg = QuietConfig(2);
    cfg.context_switch_cost = 9'520;
    Kernel k(cfg);
    osim::SimSemaphore proc_lock(&k, 1, "proc_table");
    osprofilers::SimProfiler prof(&k);
    for (int p = 0; p < processes; ++p) {
      k.Spawn("proc" + std::to_string(p),
              CloneWorkload(&k, &proc_lock, &prof, 500, 4'000, 2'000, 10'000));
    }
    k.RunUntilThreadsFinish();
    return osprof::FindPeaks(prof.profiles().Find("clone")->histogram());
  };
  const auto one = run(1);
  ASSERT_EQ(one.size(), 1u);
  const auto four = run(4);
  ASSERT_GE(four.size(), 2u);
  // The contended mode sits to the right of the lock-free mode.
  EXPECT_GT(four.back().mode_bucket, one[0].mode_bucket);
}

TEST(PostmarkWorkload, RunsFullLifecycle) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  Ext2SimFs fs(&k, &disk);
  fs.AddDir("/postmark");
  PostmarkConfig cfg;
  cfg.initial_files = 50;
  cfg.transactions = 200;
  PostmarkStats stats;
  k.Spawn("postmark", PostmarkWorkload(&k, &fs, cfg, &stats));
  k.RunUntilThreadsFinish();
  EXPECT_GE(stats.creates, 50u);
  EXPECT_EQ(stats.creates, stats.deletes);  // Cleanup removes everything.
  EXPECT_GT(stats.reads + stats.appends, 0u);
  EXPECT_GT(stats.bytes_written, 0u);
}

TEST(CompileWorkload, CompilesEverySourceAndLinks) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  Ext2SimFs fs(&k, &disk);
  TreeSpec spec;
  spec.top_dirs = 2;
  spec.subdirs_per_dir = 1;
  spec.depth = 1;
  spec.files_per_dir = 5;
  const BuiltTree tree = BuildSourceTree(&fs, "/src", spec);
  fs.AddDir("/obj");
  CompileConfig cfg;
  cfg.sources = tree.files;
  CompileStats stats;
  k.Spawn("make", CompileWorkload(&k, &fs, cfg, &stats));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(stats.sources_compiled, tree.files.size());
  EXPECT_TRUE(fs.Exists("/obj/a.out"));
  EXPECT_TRUE(fs.Exists("/obj/o0.o"));
  // Read every source byte plus every object byte back for the link.
  EXPECT_EQ(stats.bytes_read,
            tree.total_bytes + tree.files.size() * cfg.object_bytes);
}

TEST(CompileWorkload, PhasesShowUpInSampledProfiles) {
  // §3.1: sampling is "useful when ... analyzing profiles generated by
  // non-monotonic workload generators (e.g., a program compilation)".
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  Ext2SimFs fs(&k, &disk);
  TreeSpec spec;
  spec.top_dirs = 3;
  spec.files_per_dir = 12;
  spec.median_file_bytes = 60'000;
  const BuiltTree tree = BuildSourceTree(&fs, "/src", spec);
  fs.AddDir("/obj");
  osprofilers::SimProfiler prof(&k);
  fs.SetProfiler(&prof);
  CompileConfig cfg;
  cfg.sources = tree.files;
  CompileStats stats;
  k.Spawn("make", CompileWorkload(&k, &fs, cfg, &stats));
  k.RunUntilThreadsFinish();
  const osprof::Cycles elapsed = k.now();
  // Re-run with sampling at ~1/8 of the elapsed time per epoch.
  Kernel k2(QuietConfig());
  SimDisk disk2(&k2);
  Ext2SimFs fs2(&k2, &disk2);
  BuildSourceTree(&fs2, "/src", spec);
  fs2.AddDir("/obj");
  osprofilers::SimProfiler prof2(&k2);
  prof2.EnableSampling(elapsed / 8 + 1);
  fs2.SetProfiler(&prof2);
  CompileStats stats2;
  k2.Spawn("make", CompileWorkload(&k2, &fs2, cfg, &stats2));
  k2.RunUntilThreadsFinish();
  // Writes concentrate in later epochs than reads: the write phase of
  // each compile plus the link tail.
  const osprof::SampledProfile* wr = prof2.sampled()->Find("write");
  const osprof::SampledProfile* rd = prof2.sampled()->Find("read");
  ASSERT_NE(wr, nullptr);
  ASSERT_NE(rd, nullptr);
  auto centroid = [](const osprof::SampledProfile* p) {
    double weighted = 0.0;
    double total = 0.0;
    for (int e = 0; e < p->num_epochs(); ++e) {
      const auto n = static_cast<double>(p->epoch(e).TotalOperations());
      weighted += n * e;
      total += n;
    }
    return weighted / total;
  };
  EXPECT_GT(centroid(wr), centroid(rd) * 0.9);
  EXPECT_GT(rd->num_epochs(), 3);
}

TEST(PostmarkWorkload, GeneratesEveryVfsOpForOverheadBench) {
  Kernel k(QuietConfig());
  SimDisk disk(&k);
  Ext2SimFs fs(&k, &disk);
  fs.AddDir("/postmark");
  osprofilers::SimProfiler prof(&k);
  fs.SetProfiler(&prof);
  PostmarkConfig cfg;
  cfg.initial_files = 30;
  cfg.transactions = 100;
  PostmarkStats stats;
  k.Spawn("postmark", PostmarkWorkload(&k, &fs, cfg, &stats));
  k.RunUntilThreadsFinish();
  for (const char* op : {"create", "write", "read", "open", "close", "unlink"}) {
    ASSERT_NE(prof.profiles().Find(op), nullptr) << op;
  }
}

}  // namespace
}  // namespace osworkloads
