// CIFS protocol edge cases: transaction sizing, attribute piggybacking,
// multi-stall transactions, tiny/empty directories.

#include <gtest/gtest.h>

#include "src/fs/ext2fs.h"
#include "src/net/cifs.h"
#include "src/profilers/sim_profiler.h"

namespace osnet {
namespace {

using osfs::Ext2SimFs;
using osim::Kernel;
using osim::KernelConfig;
using osim::SimDisk;
using osim::Task;

KernelConfig QuietConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 4;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

struct Harness {
  explicit Harness(CifsConfig cfg = {})
      : kernel(QuietConfig()),
        disk(&kernel),
        server_fs(&kernel, &disk),
        mount(&kernel, &server_fs, cfg) {}
  Kernel kernel;
  SimDisk disk;
  Ext2SimFs server_fs;
  CifsMount mount;
};

Task<void> ListAll(osfs::Vfs* vfs, std::string path, std::size_t* count) {
  const int fd = co_await vfs->Open(path, false);
  while (true) {
    const osfs::DirentBatch batch = co_await vfs->Readdir(fd);
    if (batch.names.empty()) {
      break;
    }
    *count += batch.names.size();
  }
  co_await vfs->Close(fd);
}

TEST(CifsEdge, EmptyDirectoryEnumeratesCleanly) {
  Harness h;
  h.server_fs.AddDir("/share");
  std::size_t count = 1;
  h.kernel.Spawn("c", ListAll(&h.mount, "/share", &count));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(count, 1u);  // Unchanged except init value.
}

TEST(CifsEdge, SingleBatchDirectoryHasNoStall) {
  CifsConfig cfg;
  cfg.client_os = ClientOs::kWindows;
  Harness h(cfg);
  h.server_fs.AddDir("/share");
  for (int i = 0; i < 10; ++i) {  // Fits in one 40-entry batch.
    h.server_fs.AddFile("/share/f" + std::to_string(i), 100);
  }
  std::size_t count = 0;
  h.kernel.Spawn("c", ListAll(&h.mount, "/share", &count));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(count, 10u);
  EXPECT_EQ(h.mount.delayed_ack_stalls(), 0u);
}

TEST(CifsEdge, ThreeBatchTransactionStallsTwice) {
  CifsConfig cfg;
  cfg.client_os = ClientOs::kWindows;
  cfg.batches_per_transaction = 3;
  Harness h(cfg);
  h.server_fs.AddDir("/share");
  for (int i = 0; i < 120; ++i) {  // Exactly three 40-entry batches.
    h.server_fs.AddFile("/share/f" + std::to_string(i), 100);
  }
  std::size_t count = 0;
  h.kernel.Spawn("c", ListAll(&h.mount, "/share", &count));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(count, 120u);
  // Two inter-burst gates blocked (between bursts 1-2 and 2-3).
  EXPECT_EQ(h.mount.delayed_ack_stalls(), 2u);
}

TEST(CifsEdge, FindRepliesPopulateTheAttrCache) {
  Harness h;
  h.server_fs.AddDir("/share");
  for (int i = 0; i < 20; ++i) {
    h.server_fs.AddFile("/share/f" + std::to_string(i), 1'234);
  }
  std::size_t count = 0;
  h.kernel.Spawn("c", ListAll(&h.mount, "/share", &count));
  h.kernel.RunUntilThreadsFinish();
  const std::uint64_t requests_after_list = h.mount.server_requests();

  // Stats of every listed file are now client-local: no new requests.
  auto stat_all = [](osfs::Vfs* vfs) -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      const osfs::FileAttr attr =
          co_await vfs->Stat("/share/f" + std::to_string(i));
      EXPECT_EQ(attr.size, 1'234u);
    }
  };
  h.kernel.Spawn("s", stat_all(&h.mount));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(h.mount.server_requests(), requests_after_list);
}

TEST(CifsEdge, LinuxClientIssuesOneFindNextPerBatch) {
  CifsConfig cfg;
  cfg.client_os = ClientOs::kLinux;
  Harness h(cfg);
  h.server_fs.AddDir("/share");
  for (int i = 0; i < 100; ++i) {  // 3 batches: 40+40+20.
    h.server_fs.AddFile("/share/f" + std::to_string(i), 100);
  }
  osprofilers::SimProfiler prof(&h.kernel);
  h.mount.SetProfiler(&prof);
  std::size_t count = 0;
  h.kernel.Spawn("c", ListAll(&h.mount, "/share", &count));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(count, 100u);
  EXPECT_EQ(prof.profiles().Find("findfirst")->total_operations(), 1u);
  EXPECT_EQ(prof.profiles().Find("findnext")->total_operations(), 2u);
}

TEST(CifsEdge, RereadingADirectoryIsClientLocal) {
  Harness h;
  h.server_fs.AddDir("/share");
  for (int i = 0; i < 30; ++i) {
    h.server_fs.AddFile("/share/f" + std::to_string(i), 100);
  }
  std::size_t count = 0;
  h.kernel.Spawn("c1", ListAll(&h.mount, "/share", &count));
  h.kernel.RunUntilThreadsFinish();
  const std::uint64_t requests = h.mount.server_requests();
  // A fresh fd re-fetches (the dir state is per-open), but attrs are
  // cached, so only Find traffic goes out -- no stat storm.
  std::size_t count2 = 0;
  h.kernel.Spawn("c2", ListAll(&h.mount, "/share", &count2));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(count2, 30u);
  EXPECT_GT(h.mount.server_requests(), requests);
  EXPECT_LE(h.mount.server_requests(), requests + 2);
}

}  // namespace
}  // namespace osnet
