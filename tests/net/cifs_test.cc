#include "src/net/cifs.h"

#include <gtest/gtest.h>

#include "src/fs/ext2fs.h"
#include "src/workloads/workloads.h"

namespace osnet {
namespace {

using osfs::Ext2SimFs;
using osim::Kernel;
using osim::KernelConfig;
using osim::SimDisk;

KernelConfig QuietConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 4;  // Client and server "machines".
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

struct Harness {
  explicit Harness(CifsConfig cifs_config = {})
      : kernel(QuietConfig()),
        disk(&kernel),
        server_fs(&kernel, &disk),
        mount(&kernel, &server_fs, cifs_config) {}
  Kernel kernel;
  SimDisk disk;
  Ext2SimFs server_fs;
  CifsMount mount;
};

void PopulateDir(Ext2SimFs* fs, const std::string& dir, int files) {
  fs->AddDir(dir);
  for (int i = 0; i < files; ++i) {
    fs->AddFile(dir + "/f" + std::to_string(i), 4'000);
  }
}

osim::Task<void> ListDir(osfs::Vfs* vfs, std::string path,
                         std::vector<std::string>* names) {
  const int fd = co_await vfs->Open(path, false);
  EXPECT_GE(fd, 0);
  while (true) {
    const osfs::DirentBatch batch = co_await vfs->Readdir(fd);
    if (batch.names.empty()) {
      break;
    }
    names->insert(names->end(), batch.names.begin(), batch.names.end());
  }
  co_await vfs->Close(fd);
}

TEST(CifsMount, EnumeratesRemoteDirectoryCompletely) {
  Harness h;
  PopulateDir(&h.server_fs, "/share", 100);
  std::vector<std::string> names;
  h.kernel.Spawn("client", ListDir(&h.mount, "/share", &names));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(names.size(), 100u);
}

TEST(CifsMount, WindowsClientStallsOnDelayedAcks) {
  CifsConfig cfg;
  cfg.client_os = ClientOs::kWindows;
  Harness h(cfg);
  PopulateDir(&h.server_fs, "/share", 100);
  osprofilers::SimProfiler prof(&h.kernel);
  h.mount.SetProfiler(&prof);
  std::vector<std::string> names;
  h.kernel.Spawn("client", ListDir(&h.mount, "/share", &names));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(names.size(), 100u);
  EXPECT_GT(h.mount.delayed_ack_stalls(), 0u);
  // FindFirst latency includes a 200ms stall: bucket >= 26.
  const osprof::Profile* ff = prof.profiles().Find("findfirst");
  ASSERT_NE(ff, nullptr);
  EXPECT_GE(ff->histogram().FirstNonEmpty(), 26);
  EXPECT_LE(ff->histogram().LastNonEmpty(), 30);
}

TEST(CifsMount, LinuxClientAvoidsStallsViaPiggybackedAcks) {
  CifsConfig cfg;
  cfg.client_os = ClientOs::kLinux;
  Harness h(cfg);
  PopulateDir(&h.server_fs, "/share", 100);
  osprofilers::SimProfiler prof(&h.kernel);
  h.mount.SetProfiler(&prof);
  std::vector<std::string> names;
  h.kernel.Spawn("client", ListDir(&h.mount, "/share", &names));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(names.size(), 100u);
  EXPECT_EQ(h.mount.delayed_ack_stalls(), 0u);
  // No Find operation waits anywhere near 200ms (bucket 26+).
  for (const char* op : {"findfirst", "findnext"}) {
    const osprof::Profile* p = prof.profiles().Find(op);
    if (p != nullptr && p->total_operations() > 0) {
      EXPECT_LT(p->histogram().LastNonEmpty(), 26) << op;
    }
  }
  EXPECT_GT(prof.profiles().Find("findnext")->total_operations(), 0u);
}

TEST(CifsMount, DisablingDelayedAckRemovesWindowsStalls) {
  // The registry-key experiment: the server's push gate may still block
  // for segments in flight (~hundreds of us) but never for the 200ms
  // delayed-ACK timeout, so no Find operation reaches bucket 26.
  CifsConfig cfg;
  cfg.client_os = ClientOs::kWindows;
  cfg.client_delayed_ack = false;
  Harness h(cfg);
  PopulateDir(&h.server_fs, "/share", 100);
  osprofilers::SimProfiler prof(&h.kernel);
  h.mount.SetProfiler(&prof);
  std::vector<std::string> names;
  h.kernel.Spawn("client", ListDir(&h.mount, "/share", &names));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(names.size(), 100u);
  EXPECT_EQ(h.mount.client_ack_policy().delayed_acks_fired(), 0u);
  for (const char* op : {"findfirst", "findnext"}) {
    const osprof::Profile* p = prof.profiles().Find(op);
    if (p != nullptr && p->total_operations() > 0) {
      EXPECT_LT(p->histogram().LastNonEmpty(), 26) << op;
    }
  }
}

osim::Task<void> ReadTwice(osfs::Vfs* vfs, std::string path,
                           osprof::Cycles* cold, osprof::Cycles* warm,
                           Kernel* k) {
  const int fd = co_await vfs->Open(path, false);
  osprof::Cycles t0 = k->ReadTsc();
  (void)co_await vfs->Read(fd, 4'000);
  *cold = k->ReadTsc() - t0;
  (void)co_await vfs->Llseek(fd, 0);
  t0 = k->ReadTsc();
  (void)co_await vfs->Read(fd, 4'000);
  *warm = k->ReadTsc() - t0;
  co_await vfs->Close(fd);
}

TEST(CifsMount, LocalRemoteBoundaryAtBucket18) {
  // §6.4: requests above ~168us (bucket 18) involve the server; cached
  // requests stay local and faster.
  Harness h;
  PopulateDir(&h.server_fs, "/share", 2);
  osprof::Cycles cold = 0;
  osprof::Cycles warm = 0;
  h.kernel.Spawn("client",
                 ReadTwice(&h.mount, "/share/f0", &cold, &warm, &h.kernel));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_GE(osprof::BucketIndex(cold), 18);  // Server round trip.
  EXPECT_LT(osprof::BucketIndex(warm), 18);  // Client cache.
}

TEST(CifsMount, PacketTraceShowsFigure11Timeline) {
  CifsConfig cfg;
  cfg.client_os = ClientOs::kWindows;
  Harness h(cfg);
  PopulateDir(&h.server_fs, "/share", 100);
  std::vector<std::string> names;
  h.kernel.Spawn("client", ListDir(&h.mount, "/share", &names));
  h.kernel.RunUntilThreadsFinish();
  const std::string timeline = h.mount.trace().Render(1.7e9);
  EXPECT_NE(timeline.find("FIND_FIRST request"), std::string::npos);
  EXPECT_NE(timeline.find("reply continuation"), std::string::npos);
  EXPECT_NE(timeline.find("transact continuation"), std::string::npos);
  EXPECT_NE(timeline.find("ACK (delayed 200ms)"), std::string::npos);
}

TEST(CifsMount, WriteThroughUpdatesServerFs) {
  Harness h;
  h.server_fs.AddDir("/share");
  auto body = [](osfs::Vfs* vfs) -> osim::Task<void> {
    const int fd = co_await vfs->Create("/share/new.txt");
    EXPECT_GE(fd, 0);
    (void)co_await vfs->Write(fd, 5'000);
    co_await vfs->Fsync(fd);
    co_await vfs->Close(fd);
  };
  h.kernel.Spawn("client", body(&h.mount));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_TRUE(h.server_fs.Exists("/share/new.txt"));
  EXPECT_EQ(h.server_fs.FileSize("/share/new.txt"), 5'000u);
}

TEST(CifsMount, UnlinkRemovesOnServer) {
  Harness h;
  PopulateDir(&h.server_fs, "/share", 1);
  auto body = [](osfs::Vfs* vfs) -> osim::Task<void> {
    co_await vfs->Unlink("/share/f0");
  };
  h.kernel.Spawn("client", body(&h.mount));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_FALSE(h.server_fs.Exists("/share/f0"));
}

TEST(CifsMount, GrepWorkloadRunsOverTheMount) {
  // The same workload code drives local and remote file systems.
  Harness h;
  osworkloads::TreeSpec spec;
  spec.top_dirs = 2;
  spec.subdirs_per_dir = 1;
  spec.depth = 1;
  spec.files_per_dir = 3;
  const osworkloads::BuiltTree tree =
      osworkloads::BuildSourceTree(&h.server_fs, "/export", spec);
  osworkloads::GrepStats stats;
  h.kernel.Spawn("grep", osworkloads::GrepWorkload(&h.kernel, &h.mount,
                                                   "/export", 0.5, &stats));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(stats.files_read, tree.files.size());
  EXPECT_EQ(stats.bytes_read, tree.total_bytes);
  EXPECT_GT(h.mount.server_requests(), 0u);
}

}  // namespace
}  // namespace osnet
