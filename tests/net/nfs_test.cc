#include "src/net/nfs.h"

#include <gtest/gtest.h>

#include "src/fs/ext2fs.h"
#include "src/workloads/workloads.h"

namespace osnet {
namespace {

using osfs::Ext2SimFs;
using osim::Kernel;
using osim::KernelConfig;
using osim::SimDisk;

KernelConfig QuietConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 4;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

struct Harness {
  explicit Harness(NfsConfig cfg = {})
      : kernel(QuietConfig()),
        disk(&kernel),
        server_fs(&kernel, &disk),
        mount(&kernel, &server_fs, cfg) {}
  Kernel kernel;
  SimDisk disk;
  Ext2SimFs server_fs;
  NfsMount mount;
};

osim::Task<void> ListDir(osfs::Vfs* vfs, std::string path,
                         std::vector<std::string>* names) {
  const int fd = co_await vfs->Open(path, false);
  EXPECT_GE(fd, 0);
  while (true) {
    const osfs::DirentBatch batch = co_await vfs->Readdir(fd);
    if (batch.names.empty()) {
      break;
    }
    names->insert(names->end(), batch.names.begin(), batch.names.end());
  }
  co_await vfs->Close(fd);
}

TEST(NfsMount, EnumeratesRemoteDirectory) {
  Harness h;
  h.server_fs.AddDir("/export");
  for (int i = 0; i < 150; ++i) {
    h.server_fs.AddFile("/export/f" + std::to_string(i), 2'000);
  }
  std::vector<std::string> names;
  h.kernel.Spawn("client", ListDir(&h.mount, "/export", &names));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(names.size(), 150u);
}

TEST(NfsMount, LookupStormWalksOneComponentPerRpc) {
  Harness h;
  h.server_fs.AddDir("/a");
  h.server_fs.AddDir("/a/b");
  h.server_fs.AddDir("/a/b/c");
  h.server_fs.AddFile("/a/b/c/f", 1'000);
  auto body = [](osfs::Vfs* vfs) -> osim::Task<void> {
    const int fd = co_await vfs->Open("/a/b/c/f", false);
    EXPECT_GE(fd, 0);
    co_await vfs->Close(fd);
  };
  h.kernel.Spawn("client", body(&h.mount));
  h.kernel.RunUntilThreadsFinish();
  // Four components = four LOOKUP RPCs; attributes come with the final
  // lookup, so no extra GETATTR.
  EXPECT_EQ(h.mount.lookup_rpcs(), 4u);

  // A second open of the same path hits the dentry/attr caches: no new
  // lookups.
  h.kernel.Spawn("client2", body(&h.mount));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(h.mount.lookup_rpcs(), 4u);
  EXPECT_GT(h.mount.attr_cache_hits(), 0u);
}

TEST(NfsMount, AttributeCacheExpiresAfterTimeout) {
  NfsConfig cfg;
  cfg.attr_cache_timeout = 1'000'000;  // Short ac-timeo.
  Harness h(cfg);
  h.server_fs.AddFile("/f", 1'000);
  auto stat_once = [](osfs::Vfs* vfs) -> osim::Task<void> {
    (void)co_await vfs->Stat("/f");
  };
  h.kernel.Spawn("s1", stat_once(&h.mount));
  h.kernel.RunUntilThreadsFinish();
  const std::uint64_t rpcs_first = h.mount.rpcs_sent();
  // Within the window: served from cache.
  h.kernel.Spawn("s2", stat_once(&h.mount));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(h.mount.rpcs_sent(), rpcs_first);
  // After expiry: a revalidation RPC goes out.
  h.kernel.RunFor(2'000'000);
  h.kernel.Spawn("s3", stat_once(&h.mount));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_GT(h.mount.rpcs_sent(), rpcs_first);
}

TEST(NfsMount, NoDelayedAckStallsEver) {
  // The structural contrast with the Windows CIFS client: every RPC reply
  // is consumed immediately and the next call acknowledges it, so no Find
  // operation can reach the 200ms bucket regardless of directory size.
  Harness h;
  h.server_fs.AddDir("/export");
  for (int i = 0; i < 300; ++i) {
    h.server_fs.AddFile("/export/f" + std::to_string(i), 500);
  }
  osprofilers::SimProfiler prof(&h.kernel);
  h.mount.SetProfiler(&prof);
  std::vector<std::string> names;
  h.kernel.Spawn("client", ListDir(&h.mount, "/export", &names));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(names.size(), 300u);
  const osprof::Profile* rd = prof.profiles().Find("nfs_readdir");
  ASSERT_NE(rd, nullptr);
  EXPECT_GT(rd->total_operations(), 1u);  // Multiple cookie rounds.
  EXPECT_LT(rd->histogram().LastNonEmpty(), 26);  // Never near 200ms.
}

TEST(NfsMount, ReadsAreCachedClientSide) {
  Harness h;
  h.server_fs.AddDir("/export");
  h.server_fs.AddFile("/export/f", 8'192);
  auto read_twice = [](osfs::Vfs* vfs, std::uint64_t* rpcs_between,
                       NfsMount* m) -> osim::Task<void> {
    const int fd = co_await vfs->Open("/export/f", false);
    std::int64_t got = 0;
    do {
      got = co_await vfs->Read(fd, 4'096);
    } while (got > 0);
    *rpcs_between = m->rpcs_sent();
    (void)co_await vfs->Llseek(fd, 0);
    do {
      got = co_await vfs->Read(fd, 4'096);
    } while (got > 0);
    co_await vfs->Close(fd);
  };
  std::uint64_t rpcs_after_first = 0;
  h.kernel.Spawn("client",
                 read_twice(&h.mount, &rpcs_after_first, &h.mount));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_GT(rpcs_after_first, 0u);
  EXPECT_EQ(h.mount.rpcs_sent(), rpcs_after_first);  // Second pass local.
}

TEST(NfsMount, WriteCreateUnlinkRoundTripToServer) {
  Harness h;
  h.server_fs.AddDir("/export");
  auto body = [](osfs::Vfs* vfs) -> osim::Task<void> {
    const int fd = co_await vfs->Create("/export/new");
    EXPECT_GE(fd, 0);
    (void)co_await vfs->Write(fd, 6'000);
    co_await vfs->Fsync(fd);
    co_await vfs->Close(fd);
    co_await vfs->Unlink("/export/new");
  };
  h.kernel.Spawn("client", body(&h.mount));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_FALSE(h.server_fs.Exists("/export/new"));
  EXPECT_GT(h.mount.rpcs_sent(), 3u);
}

TEST(NfsMount, GrepWorkloadRunsOverTheMount) {
  Harness h;
  osworkloads::TreeSpec spec;
  spec.top_dirs = 2;
  spec.subdirs_per_dir = 1;
  spec.depth = 1;
  spec.files_per_dir = 4;
  const osworkloads::BuiltTree tree =
      osworkloads::BuildSourceTree(&h.server_fs, "/export", spec);
  osworkloads::GrepStats stats;
  h.kernel.Spawn("grep", osworkloads::GrepWorkload(&h.kernel, &h.mount,
                                                   "/export", 0.5, &stats));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(stats.files_read, tree.files.size());
  EXPECT_EQ(stats.bytes_read, tree.total_bytes);
  EXPECT_GT(h.mount.lookup_rpcs(), tree.files.size());  // The lookup storm.
}

}  // namespace
}  // namespace osnet
