#include "src/net/net.h"

#include <gtest/gtest.h>

namespace osnet {
namespace {

using osim::KernelConfig;

KernelConfig QuietConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 2;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

TEST(NetPipe, DeliversAfterSerializationPlusLatency) {
  Kernel k(QuietConfig());
  NetConfig net;
  PacketTrace trace;
  NetPipe pipe(&k, net, "client", &trace);
  Cycles arrived = 0;
  pipe.Send(1460, PacketKind::kData, "pkt", [&] { arrived = k.now(); });
  k.RunFor(Cycles{1} << 32);
  const auto serialization =
      static_cast<Cycles>(1460.0 / net.bytes_per_cycle);
  EXPECT_NEAR(static_cast<double>(arrived),
              static_cast<double>(serialization + net.one_way_latency), 2.0);
  ASSERT_EQ(trace.records().size(), 1u);
  EXPECT_EQ(trace.records()[0].bytes, 1460u);
}

TEST(NetPipe, BackToBackPacketsSerializeFifo) {
  Kernel k(QuietConfig());
  NetConfig net;
  NetPipe pipe(&k, net, "s", nullptr);
  std::vector<int> order;
  Cycles first = 0;
  Cycles second = 0;
  pipe.Send(1460, PacketKind::kData, "a", [&] {
    order.push_back(1);
    first = k.now();
  });
  pipe.Send(1460, PacketKind::kData, "b", [&] {
    order.push_back(2);
    second = k.now();
  });
  k.RunFor(Cycles{1} << 32);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  const auto serialization =
      static_cast<Cycles>(1460.0 / net.bytes_per_cycle);
  // The second packet waits for the first to clear the link.
  EXPECT_NEAR(static_cast<double>(second - first),
              static_cast<double>(serialization), 2.0);
}

TEST(NetPipe, SegmentsLargePayloadsAtMss) {
  Kernel k(QuietConfig());
  NetConfig net;
  NetPipe pipe(&k, net, "s", nullptr);
  int segments = 0;
  int last_total = 0;
  const int n = pipe.SendSegmented(4000, "FIND_FIRST", [&](int i, int total) {
    EXPECT_EQ(i, segments);
    ++segments;
    last_total = total;
  });
  EXPECT_EQ(n, 3);  // 4000B / 1460 MSS.
  k.RunFor(Cycles{1} << 32);
  EXPECT_EQ(segments, 3);
  EXPECT_EQ(last_total, 3);
}

struct AckHarness {
  explicit AckHarness(Kernel* k)
      : ack_pipe(k, NetConfig{}, "client", nullptr),
        ledger(k),
        policy(k, NetConfig{}, &ack_pipe, &ledger) {}
  NetPipe ack_pipe;
  AckLedger ledger;
  DelayedAckPolicy policy;
};

TEST(DelayedAck, EverySecondSegmentAckedImmediately) {
  Kernel k(QuietConfig());
  AckHarness h(&k);
  h.ledger.OnSegmentSent();
  h.ledger.OnSegmentSent();
  h.policy.OnDataSegment();  // 1 unacked: delayed.
  EXPECT_EQ(h.policy.immediate_acks(), 0u);
  h.policy.OnDataSegment();  // 2 unacked: immediate ACK.
  EXPECT_EQ(h.policy.immediate_acks(), 1u);
  k.RunFor(NetConfig{}.one_way_latency * 2);
  EXPECT_TRUE(h.ledger.AllAcked());
}

TEST(DelayedAck, OddTrailingSegmentWaits200ms) {
  Kernel k(QuietConfig());
  AckHarness h(&k);
  h.ledger.OnSegmentSent();
  h.policy.OnDataSegment();  // 1 unacked: timer armed.
  k.RunFor(NetConfig{}.delayed_ack_timeout / 2);
  EXPECT_FALSE(h.ledger.AllAcked());  // Still waiting.
  k.RunFor(NetConfig{}.delayed_ack_timeout);
  EXPECT_TRUE(h.ledger.AllAcked());
  EXPECT_EQ(h.policy.delayed_acks_fired(), 1u);
}

TEST(DelayedAck, DisabledAcksEverything) {
  Kernel k(QuietConfig());
  AckHarness h(&k);
  h.policy.set_delayed_ack_enabled(false);
  h.ledger.OnSegmentSent();
  h.policy.OnDataSegment();
  k.RunFor(NetConfig{}.one_way_latency * 2);
  EXPECT_TRUE(h.ledger.AllAcked());
  EXPECT_EQ(h.policy.delayed_acks_fired(), 0u);
}

TEST(DelayedAck, PiggybackCancelsTimerAndCoversReceived) {
  Kernel k(QuietConfig());
  AckHarness h(&k);
  h.ledger.OnSegmentSent();
  h.policy.OnDataSegment();  // Timer armed.
  const std::uint64_t upto = h.policy.ConsumePendingAck();
  EXPECT_EQ(upto, 1u);
  h.ledger.OnAckReceived(upto);  // As if the request arrived.
  EXPECT_TRUE(h.ledger.AllAcked());
  // The cancelled timer must not fire a duplicate ACK.
  k.RunFor(NetConfig{}.delayed_ack_timeout * 2);
  EXPECT_EQ(h.policy.delayed_acks_fired(), 0u);
}

TEST(DelayedAck, NoPendingAckMeansNoPiggyback) {
  Kernel k(QuietConfig());
  AckHarness h(&k);
  EXPECT_EQ(h.policy.ConsumePendingAck(), 0u);
}

TEST(AckLedger, CumulativeAcksAndBlockedWaits) {
  Kernel k(QuietConfig());
  AckLedger ledger(&k);
  ledger.OnSegmentSent();
  ledger.OnSegmentSent();
  ledger.OnSegmentSent();
  ledger.OnAckReceived(2);
  EXPECT_FALSE(ledger.AllAcked());
  auto waiter = [](AckLedger* l, bool* done) -> Task<void> {
    co_await l->WaitAllAcked();
    *done = true;
  };
  bool done = false;
  k.Spawn("w", waiter(&ledger, &done));
  k.RunFor(1'000'000);
  EXPECT_FALSE(done);
  ledger.OnAckReceived(3);
  k.RunFor(1'000'000);
  EXPECT_TRUE(done);
  EXPECT_EQ(ledger.blocked_waits(), 1u);
}

TEST(PacketTrace, RendersTimeline) {
  PacketTrace trace;
  PacketRecord r;
  r.sent_at = 0;
  r.received_at = static_cast<Cycles>(0.020 * 1.7e9);  // 20ms.
  r.from = "server";
  r.label = "FIND_FIRST reply";
  r.kind = PacketKind::kData;
  r.bytes = 1460;
  trace.Record(r);
  const std::string rendered = trace.Render(1.7e9);
  EXPECT_NE(rendered.find("20.0ms"), std::string::npos);
  EXPECT_NE(rendered.find("FIND_FIRST reply"), std::string::npos);
  EXPECT_NE(rendered.find("DATA"), std::string::npos);
}

}  // namespace
}  // namespace osnet
