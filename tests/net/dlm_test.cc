// DLM tests: mode compatibility, grant caching, revoke ping-pong, the
// downgrade hook's pre-grant flush, and the cross-node lock-order merge
// (a two-node ABBA over DLM grants must land in the kernel's lock graph
// exactly like a local semaphore inversion).

#include "src/net/dlm.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/net/fabric.h"
#include "src/sim/kernel.h"

namespace osnet {
namespace {

osim::KernelConfig ClusterConfig(int nodes) {
  osim::KernelConfig cfg;
  cfg.num_cpus = 2 * nodes;
  cfg.num_nodes = nodes;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

struct Cluster {
  explicit Cluster(int nodes)
      : kernel(ClusterConfig(nodes)), fabric(&kernel), dlm(&kernel, &fabric) {}
  osim::Kernel kernel;
  Fabric fabric;
  Dlm dlm;
};

TEST(DlmMode, Compatibility) {
  EXPECT_TRUE(DlmCompatible(DlmMode::kProtectedRead, DlmMode::kProtectedRead));
  EXPECT_FALSE(DlmCompatible(DlmMode::kProtectedRead, DlmMode::kExclusive));
  EXPECT_FALSE(DlmCompatible(DlmMode::kExclusive, DlmMode::kExclusive));
  EXPECT_TRUE(DlmCompatible(DlmMode::kNull, DlmMode::kExclusive));
}

TEST(Dlm, MasterPlacementIsDeterministic) {
  Cluster c(4);
  const int m = c.dlm.MasterOf("inode:7");
  EXPECT_GE(m, 0);
  EXPECT_LT(m, 4);
  EXPECT_EQ(m, c.dlm.MasterOf("inode:7"));
}

osim::Task<void> AcquireNTimes(Cluster* c, std::string res,
                               DlmMode mode, int n, int* done) {
  for (int i = 0; i < n; ++i) {
    co_await c->dlm.Acquire(res, mode);
    co_await c->kernel.Cpu(1'000);
    c->dlm.Release(res, mode);
  }
  --(*done);
  if (*done == 0) {
    c->dlm.Shutdown();
  }
}

TEST(Dlm, RepeatedLocalAcquiresAreCacheHits) {
  Cluster c(2);
  c.dlm.Start();
  int done = 1;
  c.kernel.SpawnOn(0, "client",
                   AcquireNTimes(&c, "res", DlmMode::kExclusive, 10, &done));
  c.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(c.dlm.acquires(), 10u);
  // First acquire goes to the master; the grant stays cached (no revoke
  // ever arrives), so the other nine hit the node-local lock cache.
  EXPECT_EQ(c.dlm.cache_hits(), 9u);
  EXPECT_EQ(c.dlm.basts_sent(), 0u);
  EXPECT_EQ(c.dlm.downgrades(), 0u);
}

TEST(Dlm, SharedReadGrantsDontRevoke) {
  Cluster c(2);
  c.dlm.Start();
  int done = 2;
  for (int n = 0; n < 2; ++n) {
    c.kernel.SpawnOn(
        n, "reader" + std::to_string(n),
        AcquireNTimes(&c, "res", DlmMode::kProtectedRead, 5, &done));
  }
  c.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(c.dlm.acquires(), 10u);
  // PR grants are mutually compatible: both nodes cache one and no BAST
  // is ever sent.
  EXPECT_EQ(c.dlm.basts_sent(), 0u);
  EXPECT_EQ(c.dlm.downgrades(), 0u);
}

TEST(Dlm, ConflictingWritersPingPong) {
  Cluster c(2);
  c.dlm.Start();
  int done = 2;
  for (int n = 0; n < 2; ++n) {
    c.kernel.SpawnOn(
        n, "writer" + std::to_string(n),
        AcquireNTimes(&c, "res", DlmMode::kExclusive, 5, &done));
  }
  c.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(c.dlm.acquires(), 10u);
  // Every handoff between the nodes is a BAST-driven revoke.
  EXPECT_GT(c.dlm.basts_sent(), 0u);
  EXPECT_GT(c.dlm.downgrades(), 0u);
  EXPECT_GT(c.dlm.queued_waits(), 0u);
  EXPECT_GT(c.fabric.messages_sent(), 0u);
}

osim::Task<void> HoldThenRelease(Cluster* c, std::string res,
                                 osim::Cycles hold, int* done) {
  co_await c->dlm.Acquire(res, DlmMode::kExclusive);
  co_await c->kernel.Cpu(hold);
  c->dlm.Release(res, DlmMode::kExclusive);
  --(*done);
  if (*done == 0) {
    c->dlm.Shutdown();
  }
}

osim::Task<void> LateAcquire(Cluster* c, std::string res,
                             std::vector<std::string>* flushed, int* done) {
  co_await c->kernel.Sleep(1'000'000);
  co_await c->dlm.Acquire(res, DlmMode::kExclusive);
  // By grant time the previous holder's downgrade hook has run.
  EXPECT_EQ(flushed->size(), 1u);
  EXPECT_EQ((*flushed)[0], "res");
  c->dlm.Release(res, DlmMode::kExclusive);
  --(*done);
  if (*done == 0) {
    c->dlm.Shutdown();
  }
}

TEST(Dlm, DowngradeHookRunsBeforeTheGrantMoves) {
  Cluster c(2);
  std::vector<std::string> flushed;
  c.dlm.SetDowngradeHook(0, [&](const std::string& res) -> osim::Task<void> {
    flushed.push_back(res);
    co_return;
  });
  c.dlm.Start();
  int done = 2;
  c.kernel.SpawnOn(0, "holder", HoldThenRelease(&c, "res", 2'000'000, &done));
  c.kernel.SpawnOn(1, "waiter", LateAcquire(&c, "res", &flushed, &done));
  c.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(flushed.size(), 1u);
  EXPECT_EQ(c.dlm.downgrades(), 1u);
}

// The satellite's cross-node ABBA: node 0 takes dlm:A then dlm:B; node 1,
// staggered so the run cannot actually deadlock, takes dlm:B then dlm:A.
// Both orders flow through Kernel::NoteLockAcquired under the cluster-wide
// resource identity, so the merged lock graph shows the inversion.
osim::Task<void> GrabPair(Cluster* c, std::string first,
                          std::string second, osim::Cycles delay,
                          int* done) {
  if (delay > 0) {
    co_await c->kernel.Sleep(delay);
  }
  co_await c->dlm.Acquire(first, DlmMode::kExclusive);
  co_await c->kernel.Cpu(10'000);
  co_await c->dlm.Acquire(second, DlmMode::kExclusive);
  co_await c->kernel.Cpu(10'000);
  c->dlm.Release(second, DlmMode::kExclusive);
  c->dlm.Release(first, DlmMode::kExclusive);
  --(*done);
  if (*done == 0) {
    c->dlm.Shutdown();
  }
}

TEST(Dlm, CrossNodeAbbaLandsInTheMergedLockGraph) {
  Cluster c(2);
  c.kernel.lock_order().set_enabled(true);
  c.dlm.Start();
  int done = 2;
  c.kernel.SpawnOn(0, "t0", GrabPair(&c, "A", "B", 0, &done));
  c.kernel.SpawnOn(1, "t1", GrabPair(&c, "B", "A", 5'000'000, &done));
  c.kernel.RunUntilThreadsFinish();

  ASSERT_TRUE(c.kernel.lock_order().DeadlockCapable());
  const auto cycles = c.kernel.lock_order().FindCycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], (std::vector<std::string>{"dlm:A", "dlm:B"}));
}

TEST(Dlm, ConsistentCrossNodeOrderIsClean) {
  Cluster c(2);
  c.kernel.lock_order().set_enabled(true);
  c.dlm.Start();
  int done = 2;
  c.kernel.SpawnOn(0, "t0", GrabPair(&c, "A", "B", 0, &done));
  c.kernel.SpawnOn(1, "t1", GrabPair(&c, "A", "B", 5'000'000, &done));
  c.kernel.RunUntilThreadsFinish();
  EXPECT_FALSE(c.kernel.lock_order().DeadlockCapable());
}

}  // namespace
}  // namespace osnet
