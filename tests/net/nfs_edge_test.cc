// NFS edge cases: empty directories, missing files, cookie continuation,
// concurrent clients.

#include <gtest/gtest.h>

#include "src/fs/ext2fs.h"
#include "src/net/nfs.h"

namespace osnet {
namespace {

using osfs::Ext2SimFs;
using osim::Kernel;
using osim::KernelConfig;
using osim::SimDisk;
using osim::Task;

KernelConfig QuietConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 4;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

struct Harness {
  explicit Harness(NfsConfig cfg = {})
      : kernel(QuietConfig()),
        disk(&kernel),
        server_fs(&kernel, &disk),
        mount(&kernel, &server_fs, cfg) {}
  Kernel kernel;
  SimDisk disk;
  Ext2SimFs server_fs;
  NfsMount mount;
};

TEST(NfsEdge, EmptyDirectoryYieldsImmediateEof) {
  Harness h;
  h.server_fs.AddDir("/export");
  auto body = [](osfs::Vfs* vfs) -> Task<void> {
    const int fd = co_await vfs->Open("/export", false);
    const osfs::DirentBatch batch = co_await vfs->Readdir(fd);
    EXPECT_TRUE(batch.at_end);
    EXPECT_TRUE(batch.names.empty());
    co_await vfs->Close(fd);
  };
  h.kernel.Spawn("c", body(&h.mount));
  h.kernel.RunUntilThreadsFinish();
}

TEST(NfsEdge, StatOfMissingFileReturnsEmptyAttr) {
  Harness h;
  auto body = [](osfs::Vfs* vfs) -> Task<void> {
    const osfs::FileAttr attr = co_await vfs->Stat("/nope");
    EXPECT_EQ(attr.size, 0u);
    EXPECT_FALSE(attr.is_dir);
  };
  h.kernel.Spawn("c", body(&h.mount));
  h.kernel.RunUntilThreadsFinish();
}

TEST(NfsEdge, CookieContinuationSpansManyRpcs) {
  NfsConfig cfg;
  cfg.entries_per_readdir = 16;
  Harness h(cfg);
  h.server_fs.AddDir("/export");
  for (int i = 0; i < 100; ++i) {
    h.server_fs.AddFile("/export/f" + std::to_string(i), 64);
  }
  osprofilers::SimProfiler prof(&h.kernel);
  h.mount.SetProfiler(&prof);
  std::size_t count = 0;
  auto body = [](osfs::Vfs* vfs, std::size_t* n) -> Task<void> {
    const int fd = co_await vfs->Open("/export", false);
    while (true) {
      const osfs::DirentBatch batch = co_await vfs->Readdir(fd);
      if (batch.names.empty()) {
        break;
      }
      *n += batch.names.size();
    }
    co_await vfs->Close(fd);
  };
  h.kernel.Spawn("c", body(&h.mount, &count));
  h.kernel.RunUntilThreadsFinish();
  EXPECT_EQ(count, 100u);
  // ceil(100/16) = 7 READDIR RPCs.
  EXPECT_EQ(prof.profiles().Find("nfs_readdir")->total_operations(), 7u);
}

TEST(NfsEdge, TwoClientsShareOneMountSafely) {
  Harness h;
  h.server_fs.AddDir("/export");
  h.server_fs.AddFile("/export/a", 8'192);
  h.server_fs.AddFile("/export/b", 8'192);
  auto reader = [](osfs::Vfs* vfs, std::string path) -> Task<void> {
    for (int round = 0; round < 3; ++round) {
      const int fd = co_await vfs->Open(path, false);
      std::int64_t got = 0;
      do {
        got = co_await vfs->Read(fd, 4'096);
      } while (got > 0);
      co_await vfs->Close(fd);
    }
  };
  h.kernel.Spawn("c1", reader(&h.mount, "/export/a"));
  h.kernel.Spawn("c2", reader(&h.mount, "/export/b"));
  h.kernel.RunUntilThreadsFinish();
  // Each file's pages were fetched once, then served from the client
  // cache across all remaining rounds.
  EXPECT_GE(h.mount.rpcs_sent(), 4u);
}

TEST(NfsEdge, CreateInMissingDirectoryFails) {
  Harness h;
  auto body = [](osfs::Vfs* vfs) -> Task<void> {
    EXPECT_EQ(co_await vfs->Create("/nodir/f"), -1);
  };
  h.kernel.Spawn("c", body(&h.mount));
  h.kernel.RunUntilThreadsFinish();
}

}  // namespace
}  // namespace osnet
