// FoSgen tests, built around the paper's own example (Figure 4): Ext2's
// directory operations, where readdir/ioctl/fsync have local
// implementations and read uses the kernel's generic_read_dir export.

#include "src/tools/fosgen.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ostools {
namespace {

// The paper's Figure 4, fleshed out with plausible 2.6-era bodies.
constexpr const char* kExt2Dir = R"(
/* ext2 directory handling */
static int ext2_readdir(struct file *filp, void *dirent, filldir_t filldir)
{
	loff_t pos = filp->f_pos;
	if (pos > inode->i_size - EXT2_DIR_REC_LEN(1))
		return 0;
	while (!error && filp->f_pos < inode->i_size) {
		error = ext2_fill_dir(filp, dirent, filldir);
	}
	return error;
}

static int ext2_ioctl(struct inode *inode, struct file *filp,
		unsigned int cmd, unsigned long arg)
{
	switch (cmd) {
	case EXT2_IOC_GETFLAGS:
		return put_user(flags, (int *) arg);
	default:
		return -ENOTTY;
	}
}

static int ext2_sync_file(struct file *file, struct dentry *dentry,
		int datasync)
{
	int err = ext2_fsync_inode(dentry->d_inode, datasync);
	return err;
}

struct file_operations ext2_dir_operations = {
	read: generic_read_dir,
	readdir: ext2_readdir,
	ioctl: ext2_ioctl,
	fsync: ext2_sync_file,
};
)";

TEST(Fosgen, InstrumentsThePaperFigure4Example) {
  const FosgenResult result = FosgenInstrument(kExt2Dir);

  // The three local implementations were instrumented...
  EXPECT_EQ(result.instrumented.size(), 3u);
  EXPECT_NE(std::find(result.instrumented.begin(), result.instrumented.end(),
                      "readdir:ext2_readdir"),
            result.instrumented.end());
  // ...and the generic export got a wrapper, exactly the paper's example.
  ASSERT_EQ(result.wrapped.size(), 1u);
  EXPECT_EQ(result.wrapped[0], "read:generic_read_dir");

  // Entry probes at the top of each body.
  EXPECT_NE(result.source.find("FSPROF_PRE(readdir);"), std::string::npos);
  EXPECT_NE(result.source.find("FSPROF_PRE(ioctl);"), std::string::npos);
  EXPECT_NE(result.source.find("FSPROF_PRE(fsync);"), std::string::npos);
  EXPECT_NE(result.source.find("FSPROF_PRE(read);"), std::string::npos);

  // The wrapper exists and the vector now points at it.
  EXPECT_NE(result.source.find("static ssize_t fsprof_generic_read_dir("),
            std::string::npos);
  EXPECT_NE(result.source.find("read: fsprof_generic_read_dir,"),
            std::string::npos);

  // The header include was prepended.
  EXPECT_EQ(result.source.rfind("#include \"fsprof.h\"", 0), 0u);
}

TEST(Fosgen, TransformsNonVoidReturnsLikeThePaper) {
  const FosgenResult result = FosgenInstrument(kExt2Dir);
  // `return error;` became the temporary-variable pattern from §4.
  EXPECT_NE(
      result.source.find("int tmp_return_variable = error; "
                         "FSPROF_POST(readdir); return tmp_return_variable;"),
      std::string::npos);
  // A return with a call expression is transformed whole.
  EXPECT_NE(result.source.find(
                "int tmp_return_variable = put_user(flags, (int *) arg);"),
            std::string::npos);
  // Every return path of every instrumented function got a POST.
  int posts = 0;
  for (std::size_t pos = result.source.find("FSPROF_POST(");
       pos != std::string::npos;
       pos = result.source.find("FSPROF_POST(", pos + 1)) {
    ++posts;
  }
  EXPECT_EQ(posts, 6);  // readdir x2, ioctl x2, fsync x1, wrapper x1.
}

TEST(Fosgen, IsIdempotent) {
  const FosgenResult once = FosgenInstrument(kExt2Dir);
  const FosgenResult twice = FosgenInstrument(once.source);
  EXPECT_EQ(twice.source, once.source);
  EXPECT_TRUE(twice.instrumented.empty());
  EXPECT_EQ(twice.insertions, 0);
}

TEST(Fosgen, HandlesC99DesignatedInitializers) {
  const std::string src = R"(
static loff_t myfs_llseek(struct file *file, loff_t offset, int origin)
{
	return offset;
}
struct file_operations myfs_file_operations = {
	.llseek = myfs_llseek,
	.read = generic_file_read,
};
)";
  const FosgenResult result = FosgenInstrument(src);
  ASSERT_EQ(result.instrumented.size(), 1u);
  EXPECT_EQ(result.instrumented[0], "llseek:myfs_llseek");
  ASSERT_EQ(result.wrapped.size(), 1u);
  EXPECT_EQ(result.wrapped[0], "read:generic_file_read");
  EXPECT_NE(result.source.find(".read = fsprof_generic_file_read,"),
            std::string::npos);
  EXPECT_NE(result.source.find("FSPROF_PRE(llseek);"), std::string::npos);
}

TEST(Fosgen, VoidFunctionsGetPostBeforeFallOffTheEnd) {
  const std::string src = R"(
static void myfs_truncate(struct inode *inode)
{
	if (!inode)
		return;
	do_truncate(inode);
}
struct inode_operations myfs_inode_operations = {
	truncate: myfs_truncate,
};
)";
  const FosgenResult result = FosgenInstrument(src);
  ASSERT_EQ(result.instrumented.size(), 1u);
  // Early return and fall-off-the-end both get a POST.
  EXPECT_NE(result.source.find("{ FSPROF_POST(truncate); return ; }"),
            std::string::npos);
  int posts = 0;
  for (std::size_t pos = result.source.find("FSPROF_POST(truncate)");
       pos != std::string::npos;
       pos = result.source.find("FSPROF_POST(truncate)", pos + 1)) {
    ++posts;
  }
  EXPECT_EQ(posts, 2);
}

TEST(Fosgen, IgnoresReturnsInCommentsAndStrings) {
  const std::string src = R"(
static int myfs_open(struct inode *inode, struct file *file)
{
	/* early return is handled above */
	printk("no return here\n");
	return 0;
}
struct file_operations myfs_ops = {
	open: myfs_open,
};
)";
  const FosgenResult result = FosgenInstrument(src);
  int posts = 0;
  for (std::size_t pos = result.source.find("FSPROF_POST(open)");
       pos != std::string::npos;
       pos = result.source.find("FSPROF_POST(open)", pos + 1)) {
    ++posts;
  }
  EXPECT_EQ(posts, 1);  // Only the real return.
  // Comment and string text are untouched.
  EXPECT_NE(result.source.find("/* early return is handled above */"),
            std::string::npos);
  EXPECT_NE(result.source.find("\"no return here\\n\""), std::string::npos);
}

TEST(Fosgen, SharedImplementationInstrumentedOnce) {
  const std::string src = R"(
static int myfs_fsync(struct file *file, struct dentry *dentry, int datasync)
{
	return 0;
}
struct file_operations a_ops = {
	fsync: myfs_fsync,
};
struct file_operations b_ops = {
	fsync: myfs_fsync,
};
)";
  const FosgenResult result = FosgenInstrument(src);
  EXPECT_EQ(result.instrumented.size(), 1u);
  int pres = 0;
  for (std::size_t pos = result.source.find("FSPROF_PRE(");
       pos != std::string::npos;
       pos = result.source.find("FSPROF_PRE(", pos + 1)) {
    ++pres;
  }
  EXPECT_EQ(pres, 1);
}

TEST(Fosgen, UnknownGenericOpsAreLeftAlone) {
  const std::string src = R"(
struct super_operations myfs_super_operations = {
	put_super: generic_shutdown_super,
};
)";
  const FosgenResult result = FosgenInstrument(src);
  EXPECT_TRUE(result.wrapped.empty());
  EXPECT_NE(result.source.find("put_super: generic_shutdown_super,"),
            std::string::npos);
}

TEST(Fosgen, SourceWithoutVectorsPassesThrough) {
  const std::string src = "int main(void) { return 0; }\n";
  const FosgenResult result = FosgenInstrument(src);
  EXPECT_TRUE(result.instrumented.empty());
  EXPECT_EQ(result.insertions, 0);
  // Only the header include was added.
  EXPECT_NE(result.source.find("int main(void) { return 0; }"),
            std::string::npos);
}

}  // namespace
}  // namespace ostools
