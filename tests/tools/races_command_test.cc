// `osprof_tool races`: exit-code contract (0 clean / 1 usage / 2 runtime
// / 3 races found), report text, and the osprof-races-v1 JSON document.

#include "src/tools/races_command.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace ostools {
namespace {

class RacesCommandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* tmpdir = ::getenv("TMPDIR");
    const std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    json_path_ = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                 "/osprof_races_" + tag + ".json";
  }

  void TearDown() override { std::remove(json_path_.c_str()); }

  int Run(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return RunRacesCommand(args, out_, err_);
  }

  std::string ReadJson() {
    std::ifstream in(json_path_);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  std::string json_path_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(RacesCommandTest, HelpAndUsageErrors) {
  EXPECT_EQ(Run({"--help"}), 0);
  EXPECT_NE(out_.str().find("usage:"), std::string::npos);
  EXPECT_EQ(Run({}), 1);  // Missing scenario.
  EXPECT_NE(err_.str().find("usage:"), std::string::npos);
  EXPECT_EQ(Run({"race_fixture_counter", "--no-such-flag"}), 1);
  EXPECT_EQ(Run({"race_fixture_counter", "--trials=abc"}), 1);
  EXPECT_EQ(Run({"race_fixture_counter", "--trials=0"}), 1);
  EXPECT_EQ(Run({"two", "scenarios"}), 1);
}

TEST_F(RacesCommandTest, UnknownScenarioIsARuntimeError) {
  EXPECT_EQ(Run({"no_such_scenario"}), 2);
  EXPECT_NE(err_.str().find("unknown scenario"), std::string::npos);
}

TEST_F(RacesCommandTest, SeededFixtureExitsThreeWithAttributedReports) {
  EXPECT_EQ(Run({"race_fixture_counter"}), 3);
  const std::string text = out_.str();
  EXPECT_NE(text.find("data race"), std::string::npos);
  // Attribution: the cell, the access site, and the profiled op.
  EXPECT_NE(text.find("fixture.cell@RaceIncrementOnce"), std::string::npos);
  EXPECT_NE(text.find("op increment"), std::string::npos);
  EXPECT_NE(text.find("shared accesses checked"), std::string::npos);
}

TEST_F(RacesCommandTest, LockedControlFixtureIsClean) {
  EXPECT_EQ(Run({"race_control_locked"}), 0);
  EXPECT_NE(out_.str().find("no data races"), std::string::npos);
}

TEST_F(RacesCommandTest, JsonDocumentCarriesTheVerdict) {
  EXPECT_EQ(Run({"race_fixture_readers", "--trials=2",
                 "--json=" + json_path_}), 3);
  const std::string doc = ReadJson();
  EXPECT_NE(doc.find("\"schema\": \"osprof-races-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"scenario\": \"race_fixture_readers\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"races_found\": true"), std::string::npos);
  EXPECT_NE(doc.find("RaceScanOnce"), std::string::npos);
  EXPECT_NE(doc.find("\"race_accesses_checked\""), std::string::npos);

  EXPECT_EQ(Run({"race_control_locked", "--json=" + json_path_}), 0);
  EXPECT_NE(ReadJson().find("\"races_found\": false"), std::string::npos);
}

TEST_F(RacesCommandTest, UnwritableJsonPathIsARuntimeError) {
  EXPECT_EQ(Run({"race_control_locked", "--json=/no/such/dir/out.json"}), 2);
  EXPECT_NE(err_.str().find("cannot write"), std::string::npos);
}

}  // namespace
}  // namespace ostools
