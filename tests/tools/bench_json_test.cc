// The bench JSON reporter, exercised the way a bench binary uses it:
// point OSPROF_BENCH_JSON_DIR at a scratch directory, record some
// checks/metrics/profiles, Finish(), and inspect BENCH_<name>.json.

#include "bench/bench_util.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/core/profile.h"

namespace osbench {
namespace {

class BenchJsonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* tmpdir = ::getenv("TMPDIR");
    dir_ = std::string(tmpdir != nullptr ? tmpdir : "/tmp");
    ::setenv("OSPROF_BENCH_JSON_DIR", dir_.c_str(), 1);
  }

  void TearDown() override {
    ::unsetenv("OSPROF_BENCH_JSON_DIR");
    std::remove((dir_ + "/BENCH_unit_bench.json").c_str());
    std::remove((dir_ + "/BENCH_unit_bench.fs.prof").c_str());
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  std::string dir_;
};

TEST_F(BenchJsonTest, WritesWellFormedReport) {
  JsonReport report("unit_bench");
  report.AddSimCycles(1'000'000);
  report.AddOps(500);
  EXPECT_TRUE(report.Check("always_true", true));
  EXPECT_FALSE(report.Check("always_false", false));
  report.Metric("elapsed_s", 1.25);

  osprof::ProfileSet set(1);
  for (int i = 0; i < 100; ++i) {
    set.Add("read", 1 << 10);
  }
  const std::string prof_path = report.WriteProfileSet(set, "fs");
  EXPECT_EQ(prof_path, dir_ + "/BENCH_unit_bench.fs.prof");

  EXPECT_EQ(report.Finish(), 0);

  const std::string json = Slurp(dir_ + "/BENCH_unit_bench.json");
  EXPECT_NE(json.find("\"schema\": \"osprof-bench-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"unit_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_cycles\": 1000000"), std::string::npos);
  EXPECT_NE(json.find("\"total_ops\": 500"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"ops_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"always_true\""), std::string::npos);
  EXPECT_NE(json.find("\"checks_failed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"elapsed_s\": 1.25"), std::string::npos);
  EXPECT_NE(json.find("BENCH_unit_bench.fs.prof"), std::string::npos);

  // The serialized profile set round-trips.
  std::ifstream prof(prof_path);
  const osprof::ProfileSet parsed = osprof::ProfileSet::Parse(prof);
  EXPECT_EQ(parsed.TotalOperations(), 100u);
}

TEST_F(BenchJsonTest, EmptyDirEnvWritesToCwd) {
  ::setenv("OSPROF_BENCH_JSON_DIR", "", 1);
  JsonReport report("unit_bench");
  EXPECT_EQ(report.Finish(), 0);
  // With no directory override the report lands in the working directory.
  std::ifstream in("BENCH_unit_bench.json");
  EXPECT_TRUE(in.good());
  in.close();
  std::remove("BENCH_unit_bench.json");
}

TEST_F(BenchJsonTest, ChecksFailedCountsOnlyFailures) {
  JsonReport report("unit_bench");
  report.Check("a", true);
  report.Check("b", true);
  EXPECT_EQ(report.Finish(), 0);
  const std::string json = Slurp(dir_ + "/BENCH_unit_bench.json");
  EXPECT_NE(json.find("\"checks_failed\": 0"), std::string::npos);
}

}  // namespace
}  // namespace osbench
