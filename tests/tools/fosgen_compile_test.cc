// The full FoSgen loop, end to end: instrument a C file-system source,
// COMPILE it with the real C compiler against fsprof.h, run it, and parse
// the dumped profile with the C++ ProfileSet machinery -- proving the C
// aggregate-stats library, the instrumenter and the offline tooling all
// speak the same language.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/core/profile.h"
#include "src/tools/fosgen.h"

namespace ostools {
namespace {

#ifndef OSPROF_SOURCE_DIR
#define OSPROF_SOURCE_DIR "."
#endif

std::string TempPath(const std::string& name) {
  const char* dir = ::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

// A miniature "file system" whose ops do measurable busy work, plus a
// main() that exercises them and dumps the profiles.
constexpr const char* kMockFs = R"(
#include <stdio.h>

static volatile unsigned long sink;

static int myfs_open(struct inode *inode, struct file *file)
{
	unsigned long i;
	for (i = 0; i < 50; i++)
		sink += i;
	return 0;
}

static int myfs_fsync(struct file *file, struct dentry *dentry, int datasync)
{
	unsigned long i;
	for (i = 0; i < 5000; i++)
		sink += i;
	return 0;
}

struct file_operations myfs_ops = {
	open: myfs_open,
	fsync: myfs_fsync,
};

int main(void)
{
	int i;
	for (i = 0; i < 1000; i++) {
		myfs_open(0, 0);
		myfs_fsync(0, 0, 0);
	}
	fsprof_dump(stdout);
	return fsprof_check();
}
)";

TEST(FosgenCompile, InstrumentedSourceCompilesRunsAndProfiles) {
  // `struct inode` etc. are opaque in the mock; give the compiler stubs
  // plus a matching operations-vector type.
  const std::string prelude =
      "struct inode; struct file; struct dentry;\n"
      "typedef int filldir_t;\n"
      "struct file_operations {\n"
      "\tint (*open)(struct inode *, struct file *);\n"
      "\tint (*fsync)(struct file *, struct dentry *, int);\n"
      "};\n";
  const FosgenResult result = FosgenInstrument(kMockFs);
  ASSERT_EQ(result.instrumented.size(), 2u);

  const std::string c_path = TempPath("osprof_fosgen_mockfs.c");
  const std::string bin_path = TempPath("osprof_fosgen_mockfs");
  const std::string out_path = TempPath("osprof_fosgen_mockfs.prof");
  {
    std::ofstream out(c_path);
    // fsprof.h first (the instrumenter prepends its include; we inline
    // the include path resolution by just splicing the prelude after it).
    const std::string include_line = "#include \"fsprof.h\"\n";
    ASSERT_EQ(result.source.rfind(include_line, 0), 0u);
    out << include_line << prelude
        << result.source.substr(include_line.size());
  }
  const std::string compile = "cc -std=gnu99 -O1 -I " OSPROF_SOURCE_DIR
                              "/src/tools -o " +
                              bin_path + " " + c_path + " 2>/dev/null";
  ASSERT_EQ(std::system(compile.c_str()), 0) << compile;

  const std::string run = bin_path + " > " + out_path;
  ASSERT_EQ(std::system(run.c_str()), 0);  // fsprof_check() returned 0.

  std::ifstream in(out_path);
  ASSERT_TRUE(in.good());
  const osprof::ProfileSet set = osprof::ProfileSet::Parse(in);
  ASSERT_NE(set.Find("open"), nullptr);
  ASSERT_NE(set.Find("fsync"), nullptr);
  EXPECT_EQ(set.Find("open")->total_operations(), 1'000u);
  EXPECT_EQ(set.Find("fsync")->total_operations(), 1'000u);
  EXPECT_TRUE(set.CheckConsistency());
  // fsync does 100x the work of open; its profile must sit to the right.
  EXPECT_GT(set.Find("fsync")->histogram().MeanLatency(),
            set.Find("open")->histogram().MeanLatency());

  std::remove(c_path.c_str());
  std::remove(bin_path.c_str());
  std::remove(out_path.c_str());
}

}  // namespace
}  // namespace ostools
