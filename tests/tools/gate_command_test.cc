#include "src/tools/gate_command.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/histogram.h"
#include "src/core/profile.h"

namespace ostools {
namespace {

// All tests gate fig06 (llseek contention): it is the fastest scenario
// that exercises several operations in one "fs"-layer profile set.
constexpr const char* kScenario = "fig06";
constexpr const char* kLayerSuffix = ".fs.prof";

class GateCommandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* tmpdir = ::getenv("TMPDIR");
    base_ = std::string(tmpdir != nullptr ? tmpdir : "/tmp");
    // Suffix paths with the test name: ctest -jN runs cases of this
    // fixture concurrently, and a shared prefix lets them clobber each
    // other's baselines mid-gate.
    const std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    prefix_ = base_ + "/osprof_gate_golden_" + tag;
    perturbed_prefix_ = base_ + "/osprof_gate_perturbed_" + tag;
    json_path_ = base_ + "/osprof_gate_verdict_" + tag + ".json";
  }

  void TearDown() override {
    std::remove((prefix_ + kLayerSuffix).c_str());
    std::remove((prefix_ + ".layers").c_str());
    std::remove((perturbed_prefix_ + kLayerSuffix).c_str());
    std::remove((perturbed_prefix_ + ".layers").c_str());
    std::remove(json_path_.c_str());
  }

  // Copies one baseline file between the fixture's two prefixes.
  static void CopyFile(const std::string& from, const std::string& to) {
    std::ifstream in(from);
    ASSERT_TRUE(in.good()) << from;
    std::ofstream out(to);
    out << in.rdbuf();
  }

  int Run(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return RunGateCommand(args, out_, err_);
  }

  std::string base_;
  std::string prefix_;
  std::string perturbed_prefix_;
  std::string json_path_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(GateCommandTest, UsageErrors) {
  EXPECT_EQ(Run({}), 1);
  EXPECT_NE(err_.str().find("usage:"), std::string::npos);
  EXPECT_EQ(Run({kScenario, "--threshold=abc"}), 1);
  EXPECT_EQ(Run({kScenario, "--raters=emd,bogus"}), 1);
  EXPECT_NE(err_.str().find("unknown rater"), std::string::npos);
  EXPECT_EQ(Run({kScenario, "--trials=0"}), 1);
  EXPECT_EQ(Run({kScenario, "--no-such-flag"}), 1);
}

TEST_F(GateCommandTest, ListPrintsScenarios) {
  EXPECT_EQ(Run({"--list"}), 0);
  EXPECT_NE(out_.str().find(kScenario), std::string::npos);
  EXPECT_NE(out_.str().find("fig07_cifs"), std::string::npos);
}

TEST_F(GateCommandTest, UnknownScenarioExits2) {
  EXPECT_EQ(Run({"no_such_scenario"}), 2);
  EXPECT_NE(err_.str().find("unknown scenario"), std::string::npos);
}

TEST_F(GateCommandTest, MissingBaselineExits2) {
  EXPECT_EQ(Run({kScenario, "--baseline=" + prefix_ + "_absent"}), 2);
  EXPECT_NE(err_.str().find("missing baseline"), std::string::npos);
  EXPECT_NE(err_.str().find("--update"), std::string::npos);
}

TEST_F(GateCommandTest, CorruptBaselineExits2) {
  std::ofstream(prefix_ + kLayerSuffix) << "this is not a profile set\n";
  EXPECT_EQ(Run({kScenario, "--baseline=" + prefix_}), 2);
  EXPECT_NE(err_.str().find("corrupt baseline"), std::string::npos);
}

TEST_F(GateCommandTest, UpdateRoundTripThenCleanGatePasses) {
  ASSERT_EQ(Run({kScenario, "--update", "--baseline=" + prefix_}), 0);
  EXPECT_NE(out_.str().find("updated"), std::string::npos);

  // The written golden parses back to a non-empty set.
  std::ifstream golden_file(prefix_ + kLayerSuffix);
  ASSERT_TRUE(golden_file.good());
  const osprof::ProfileSet golden = osprof::ProfileSet::Parse(golden_file);
  EXPECT_GT(golden.size(), 0u);
  EXPECT_GT(golden.TotalOperations(), 0u);

  // Re-running the deterministic scenario scores distance 0 everywhere.
  EXPECT_EQ(Run({kScenario, "--baseline=" + prefix_}), 0);
  EXPECT_NE(out_.str().find("gate PASS"), std::string::npos);
  EXPECT_EQ(out_.str().find("REGRESSION"), std::string::npos);
}

TEST_F(GateCommandTest, JsonVerdictSchema) {
  ASSERT_EQ(Run({kScenario, "--update", "--baseline=" + prefix_}), 0);
  ASSERT_EQ(Run({kScenario, "--baseline=" + prefix_,
                 "--json=" + json_path_}),
            0);
  std::ifstream json_file(json_path_);
  ASSERT_TRUE(json_file.good());
  std::stringstream buffer;
  buffer << json_file.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"schema\": \"osprof-gate-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"fig06\""), std::string::npos);
  EXPECT_NE(json.find("\"pass\": true"), std::string::npos);
  EXPECT_NE(json.find("\"layers\""), std::string::npos);
  EXPECT_NE(json.find("\"layered\""), std::string::npos);
  EXPECT_NE(json.find("\"mismatch_count\""), std::string::npos);
  EXPECT_NE(json.find("\"raters\""), std::string::npos);
  EXPECT_NE(json.find("\"max_score\""), std::string::npos);
  EXPECT_NE(json.find("\"flagged_ops\""), std::string::npos);
  for (const char* rater : {"emd", "chi2", "ops", "latency"}) {
    EXPECT_NE(json.find(std::string("\"rater\": \"") + rater + "\""),
              std::string::npos)
        << rater;
  }
}

// §5.3's calibration idea in reverse: perturb the golden by shifting every
// peak up three buckets AND tripling its mass.  The shift moves the peaks
// (EMD, Chi-square), the scaling changes the totals (total-ops,
// total-latency) -- so every rater, run alone, must flag the regression.
TEST_F(GateCommandTest, PerturbedBaselineFlaggedByEveryRater) {
  ASSERT_EQ(Run({kScenario, "--update", "--baseline=" + prefix_}), 0);
  std::ifstream golden_file(prefix_ + kLayerSuffix);
  const osprof::ProfileSet golden = osprof::ProfileSet::Parse(golden_file);

  osprof::ProfileSet perturbed(golden.resolution());
  for (const auto& [name, profile] : golden) {
    const osprof::Histogram& h = profile.histogram();
    osprof::Histogram& p = perturbed[name].histogram();
    std::uint64_t recorded = 0;
    osprof::Cycles total_latency = 0;
    for (int b = 0; b < h.num_buckets(); ++b) {
      if (h.bucket(b) == 0) {
        continue;
      }
      const int shifted = std::min(b + 3, h.num_buckets() - 1);
      const std::uint64_t count = h.bucket(b) * 3;
      p.set_bucket(shifted, p.bucket(shifted) + count);
      recorded += count;
      total_latency +=
          count * osprof::BucketLowerBound(shifted, golden.resolution());
    }
    p.SetTotals(recorded, total_latency);
  }
  std::ofstream perturbed_file(perturbed_prefix_ + kLayerSuffix);
  perturbed.Serialize(perturbed_file);
  perturbed_file.close();
  // The layered golden rides along unchanged: only the profile raters
  // should fire here.
  CopyFile(prefix_ + ".layers", perturbed_prefix_ + ".layers");

  for (const char* rater : {"emd", "chi2", "ops", "latency"}) {
    EXPECT_EQ(Run({kScenario, "--baseline=" + perturbed_prefix_,
                   std::string("--raters=") + rater}),
              3)
        << "rater " << rater << " missed the perturbation\n"
        << out_.str();
    EXPECT_NE(out_.str().find("gate REGRESSION"), std::string::npos) << rater;
    EXPECT_NE(out_.str().find("flagged:"), std::string::npos) << rater;
  }

  // All four together, of course, also fail -- and the JSON says so.
  EXPECT_EQ(Run({kScenario, "--baseline=" + perturbed_prefix_,
                 "--json=" + json_path_}),
            3);
  std::ifstream json_file(json_path_);
  std::stringstream buffer;
  buffer << json_file.rdbuf();
  EXPECT_NE(buffer.str().find("\"pass\": false"), std::string::npos);
}

// The layered decomposition is scored for exactness: tampering with one
// component's cycle count in the .layers golden fails the gate even when
// every profile rater passes.
TEST_F(GateCommandTest, LayersDecompositionDriftFailsGate) {
  ASSERT_EQ(Run({kScenario, "--update", "--baseline=" + prefix_}), 0);
  CopyFile(prefix_ + kLayerSuffix, perturbed_prefix_ + kLayerSuffix);
  std::string layers_text;
  {
    std::ifstream in(prefix_ + ".layers");
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    layers_text = buffer.str();
  }
  const std::size_t pos = layers_text.find(" self ");
  ASSERT_NE(pos, std::string::npos);
  layers_text.insert(pos + 6, "9");  // Prepend a digit: cycles change.
  std::ofstream(perturbed_prefix_ + ".layers") << layers_text;

  EXPECT_EQ(Run({kScenario, "--baseline=" + perturbed_prefix_}), 3);
  EXPECT_NE(out_.str().find("DECOMPOSITION DRIFT"), std::string::npos);
  EXPECT_NE(out_.str().find("gate REGRESSION"), std::string::npos);

  // The JSON verdict carries the mismatch.
  EXPECT_EQ(Run({kScenario, "--baseline=" + perturbed_prefix_,
                 "--json=" + json_path_}),
            3);
  std::ifstream json_file(json_path_);
  std::stringstream buffer;
  buffer << json_file.rdbuf();
  EXPECT_NE(buffer.str().find("\"layered\""), std::string::npos);
  EXPECT_NE(buffer.str().find("\"mismatches\""), std::string::npos);
}

// A scenario that records layered data cannot gate without its .layers
// golden: profiles alone no longer prove the run matches.
TEST_F(GateCommandTest, MissingLayersBaselineExits2) {
  ASSERT_EQ(Run({kScenario, "--update", "--baseline=" + prefix_}), 0);
  std::remove((prefix_ + ".layers").c_str());
  EXPECT_EQ(Run({kScenario, "--baseline=" + prefix_}), 2);
  EXPECT_NE(err_.str().find("missing baseline"), std::string::npos);
  EXPECT_NE(err_.str().find(".layers"), std::string::npos);
}

// The committed corpus under tests/golden/ must pass: this is the same
// invariant the CI gate job enforces, checked here so `ctest` catches a
// stale golden before a push does.
TEST_F(GateCommandTest, CommittedGoldenCorpusPasses) {
  const std::string golden_dir = std::string(OSPROF_SOURCE_DIR) +
                                 "/tests/golden/";
  for (const char* scenario : {"fig01", "fig06"}) {
    EXPECT_EQ(Run({scenario, "--baseline=" + golden_dir + scenario}), 0)
        << scenario << ":\n"
        << out_.str() << err_.str();
  }
}

// The [races] verdict: a seeded fixture must race -- and that is its
// passing state -- a clean scenario must not, and --no-races skips the
// check while gating the identical profiles against the same goldens
// (tracking consumes no simulated time).
TEST_F(GateCommandTest, RacesVerdictCoversFixturesCleanRunsAndOptOut) {
  const std::string golden_dir = std::string(OSPROF_SOURCE_DIR) +
                                 "/tests/golden/";
  const std::string fixture = "race_fixture_counter";
  EXPECT_EQ(Run({fixture, "--baseline=" + golden_dir + fixture,
                 "--json=" + json_path_}),
            0)
      << out_.str() << err_.str();
  EXPECT_NE(out_.str().find("[races] fixture raced as designed:"),
            std::string::npos);
  std::ifstream json_file(json_path_);
  ASSERT_TRUE(json_file.good());
  std::stringstream buffer;
  buffer << json_file.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"races\""), std::string::npos);
  EXPECT_NE(json.find("\"expected\": true"), std::string::npos);
  EXPECT_NE(json.find("\"found\": true"), std::string::npos);
  EXPECT_NE(json.find("RaceIncrementOnce"), std::string::npos);

  EXPECT_EQ(Run({fixture, "--baseline=" + golden_dir + fixture,
                 "--no-races"}),
            0)
      << out_.str() << err_.str();
  EXPECT_NE(out_.str().find("[races] tracking disabled; skipped"),
            std::string::npos);

  EXPECT_EQ(Run({kScenario, "--baseline=" + golden_dir + kScenario}), 0)
      << out_.str() << err_.str();
  EXPECT_NE(out_.str().find("[races] no data races"), std::string::npos);
}

}  // namespace
}  // namespace ostools
