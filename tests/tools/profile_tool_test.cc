#include "src/tools/profile_tool.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/profile.h"
#include "src/core/sampling.h"

namespace ostools {
namespace {

class ProfileToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* tmpdir = ::getenv("TMPDIR");
    base_ = std::string(tmpdir != nullptr ? tmpdir : "/tmp");
    path_a_ = base_ + "/osprof_tool_a.prof";
    path_b_ = base_ + "/osprof_tool_b.prof";

    osprof::ProfileSet a(1);
    for (int i = 0; i < 1'000; ++i) {
      a.Add("read", 100);
      a.Add("llseek", 400);
    }
    WriteSet(path_a_, a);

    osprof::ProfileSet b(1);
    for (int i = 0; i < 1'000; ++i) {
      b.Add("read", 100);
      // llseek grew a contended mode.
      b.Add("llseek", i % 4 == 0 ? 3'000'000 : 400);
    }
    WriteSet(path_b_, b);
  }

  void TearDown() override {
    std::remove(path_a_.c_str());
    std::remove(path_b_.c_str());
  }

  static void WriteSet(const std::string& path, const osprof::ProfileSet& s) {
    std::ofstream out(path);
    s.Serialize(out);
  }

  int Run(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return RunProfileTool(args, out_, err_);
  }

  std::string base_;
  std::string path_a_;
  std::string path_b_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(ProfileToolTest, HelpAndUsage) {
  EXPECT_EQ(Run({"help"}), 0);
  EXPECT_NE(out_.str().find("usage:"), std::string::npos);
  EXPECT_EQ(Run({}), 1);
  EXPECT_EQ(Run({"bogus"}), 1);
  EXPECT_NE(err_.str().find("usage:"), std::string::npos);
}

TEST_F(ProfileToolTest, RenderAllOps) {
  EXPECT_EQ(Run({"render", path_a_}), 0);
  EXPECT_NE(out_.str().find("read"), std::string::npos);
  EXPECT_NE(out_.str().find("llseek"), std::string::npos);
  EXPECT_NE(out_.str().find('#'), std::string::npos);
}

TEST_F(ProfileToolTest, RenderSingleOp) {
  EXPECT_EQ(Run({"render", path_a_, "read"}), 0);
  EXPECT_NE(out_.str().find("read"), std::string::npos);
  EXPECT_EQ(out_.str().find("llseek"), std::string::npos);
}

TEST_F(ProfileToolTest, RenderUnknownOpFails) {
  EXPECT_EQ(Run({"render", path_a_, "nosuch"}), 2);
  EXPECT_NE(err_.str().find("no operation"), std::string::npos);
}

TEST_F(ProfileToolTest, MissingFileFails) {
  EXPECT_EQ(Run({"render", base_ + "/definitely_not_here.prof"}), 2);
  EXPECT_NE(err_.str().find("cannot open"), std::string::npos);
}

TEST_F(ProfileToolTest, MalformedFileFails) {
  const std::string bad = base_ + "/osprof_tool_bad.prof";
  {
    std::ofstream out(bad);
    out << "this is not a profile\n";
  }
  EXPECT_EQ(Run({"render", bad}), 2);
  EXPECT_NE(err_.str().find("parse error"), std::string::npos);
  std::remove(bad.c_str());
}

TEST_F(ProfileToolTest, RankOrdersByLatency) {
  EXPECT_EQ(Run({"rank", path_a_}), 0);
  // llseek (400 cycles x 1000) outweighs read (100 x 1000).
  const std::string text = out_.str();
  EXPECT_LT(text.find("llseek"), text.find("read"));
  EXPECT_NE(text.find("%"), std::string::npos);
}

TEST_F(ProfileToolTest, PeaksReportsStructure) {
  EXPECT_EQ(Run({"peaks", path_b_, "llseek"}), 0);
  EXPECT_NE(out_.str().find("2 peaks"), std::string::npos);
}

TEST_F(ProfileToolTest, CompareFlagsTheChangedOp) {
  EXPECT_EQ(Run({"compare", path_a_, path_b_}), 0);
  const std::string text = out_.str();
  EXPECT_NE(text.find("llseek"), std::string::npos);
  EXPECT_NE(text.find("selected 1 of 2"), std::string::npos);
}

TEST_F(ProfileToolTest, CompareWithExplicitMethod) {
  EXPECT_EQ(Run({"compare", path_a_, path_b_, "--method", "chi-square"}), 0);
  EXPECT_NE(out_.str().find("method: chi-square"), std::string::npos);
}

TEST_F(ProfileToolTest, CompareRejectsUnknownMethod) {
  EXPECT_EQ(Run({"compare", path_a_, path_b_, "--method", "psychic"}), 1);
}

TEST_F(ProfileToolTest, GnuplotEmitsScript) {
  EXPECT_EQ(Run({"gnuplot", path_a_, "read"}), 0);
  EXPECT_NE(out_.str().find("set logscale y"), std::string::npos);
  EXPECT_NE(out_.str().find("with boxes"), std::string::npos);
}

TEST_F(ProfileToolTest, CheckPassesConsistentSets) {
  EXPECT_EQ(Run({"check", path_a_}), 0);
  EXPECT_NE(out_.str().find("all profiles consistent"), std::string::npos);
}

TEST_F(ProfileToolTest, OutliersFlagsTheDeviantFile) {
  // Three healthy copies of set A, one deviant set B.
  const std::string c = base_ + "/osprof_tool_c.prof";
  const std::string d = base_ + "/osprof_tool_d.prof";
  osprof::ProfileSet healthy(1);
  for (int i = 0; i < 1'000; ++i) {
    healthy.Add("read", 100);
  }
  WriteSet(c, healthy);
  WriteSet(d, healthy);
  EXPECT_EQ(Run({"outliers", path_a_, c, d, path_b_}), 0);
  EXPECT_NE(out_.str().find("OUTLIER"), std::string::npos);
  EXPECT_NE(out_.str().find("osprof_tool_b.prof"), std::string::npos);
  std::remove(c.c_str());
  std::remove(d.c_str());
}

TEST_F(ProfileToolTest, OutliersIdenticalFleetIsClean) {
  const std::string c = base_ + "/osprof_tool_c.prof";
  osprof::ProfileSet healthy(1);
  healthy.Add("read", 100);
  WriteSet(c, healthy);
  EXPECT_EQ(Run({"outliers", c, c, c}), 0);
  EXPECT_NE(out_.str().find("no outliers"), std::string::npos);
  std::remove(c.c_str());
}

TEST_F(ProfileToolTest, CompareIdenticalSetsSelectsNothing) {
  EXPECT_EQ(Run({"compare", path_a_, path_a_}), 0);
  EXPECT_NE(out_.str().find("selected 0 of"), std::string::npos);
}

TEST_F(ProfileToolTest, GridAndPlot3DRenderSampledFiles) {
  const std::string path = base_ + "/osprof_tool_sampled.sprof";
  osprof::SampledProfileSet sampled(1'000, 1);
  for (int i = 0; i < 500; ++i) {
    sampled.Add("read", 0, 128);
  }
  for (int i = 0; i < 50; ++i) {
    sampled.Add("read", 1'500, 1 << 20);
  }
  {
    std::ofstream out(path);
    sampled.Serialize(out);
  }
  EXPECT_EQ(Run({"grid", path, "read", "5", "25"}), 0);
  EXPECT_NE(out_.str().find("epoch 0"), std::string::npos);
  EXPECT_NE(out_.str().find('#'), std::string::npos);
  EXPECT_EQ(Run({"plot3d", path, "read"}), 0);
  EXPECT_NE(out_.str().find("Elapsed time"), std::string::npos);
  EXPECT_EQ(Run({"grid", path, "ghost"}), 0);  // Missing op: "(no data)".
  EXPECT_NE(out_.str().find("no data"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ProfileToolTest, CheckFlagsTamperedSets) {
  // Corrupt the recorded= checksum of one profile.
  std::ifstream in(path_a_);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  const auto pos = text.find("recorded=1000");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 13, "recorded=1001");
  const std::string tampered = base_ + "/osprof_tool_tampered.prof";
  {
    std::ofstream out(tampered);
    out << text;
  }
  EXPECT_EQ(Run({"check", tampered}), 2);
  EXPECT_NE(out_.str().find("BROKEN"), std::string::npos);
  std::remove(tampered.c_str());
}

}  // namespace
}  // namespace ostools
