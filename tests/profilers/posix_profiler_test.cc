#include "src/profilers/posix_profiler.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>

namespace osprofilers {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = ::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

TEST(PosixProfiler, ProfilesRealSyscallLifecycle) {
  PosixProfiler prof;
  const std::string path = TempPath("osprof_posix_test");
  const int fd = prof.Open(path, O_CREAT | O_RDWR | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  char buf[512] = {};
  EXPECT_EQ(prof.Write(fd, buf, sizeof(buf)), 512);
  EXPECT_EQ(prof.Lseek(fd, 0, SEEK_SET), 0);
  EXPECT_EQ(prof.Read(fd, buf, sizeof(buf)), 512);
  EXPECT_EQ(prof.Read(fd, buf, 0), 0);  // The zero-byte read probe.
  EXPECT_EQ(prof.Fsync(fd), 0);
  EXPECT_EQ(prof.Close(fd), 0);
  EXPECT_EQ(prof.Unlink(path), 0);

  const osprof::ProfileSet& p = prof.profiles();
  EXPECT_EQ(p.Find("open")->total_operations(), 1u);
  EXPECT_EQ(p.Find("write")->total_operations(), 1u);
  EXPECT_EQ(p.Find("read")->total_operations(), 2u);
  EXPECT_EQ(p.Find("llseek")->total_operations(), 1u);
  EXPECT_EQ(p.Find("fsync")->total_operations(), 1u);
  EXPECT_EQ(p.Find("close")->total_operations(), 1u);
  EXPECT_EQ(p.Find("unlink")->total_operations(), 1u);
  EXPECT_TRUE(p.CheckConsistency());
  // Real syscalls take nonzero time.
  EXPECT_GT(p.Find("read")->total_latency(), 0u);
}

TEST(PosixProfiler, ErrorsStillGetProfiled) {
  PosixProfiler prof;
  EXPECT_LT(prof.Open("/nonexistent/definitely/missing", O_RDONLY), 0);
  EXPECT_EQ(prof.profiles().Find("open")->total_operations(), 1u);
}

TEST(PosixProfiler, StatAndMkdirWrappers) {
  PosixProfiler prof;
  const std::string dir = TempPath("osprof_posix_dir");
  ::rmdir(dir.c_str());
  EXPECT_EQ(prof.Mkdir(dir, 0755), 0);
  struct stat st;
  EXPECT_EQ(prof.Stat(dir, &st), 0);
  EXPECT_TRUE(S_ISDIR(st.st_mode));
  ::rmdir(dir.c_str());
  EXPECT_EQ(prof.profiles().Find("stat")->total_operations(), 1u);
  EXPECT_EQ(prof.profiles().Find("mkdir")->total_operations(), 1u);
}

TEST(PosixProfiler, MeasureRecordsCustomOps) {
  PosixProfiler prof;
  const int v = prof.Measure("custom", [] { return 42; });
  EXPECT_EQ(v, 42);
  EXPECT_EQ(prof.profiles().Find("custom")->total_operations(), 1u);
}

TEST(PosixProfiler, ManyZeroByteReadsProduceTightProfile) {
  // A sanity slice of the paper's Figure 3 workload on the real host: the
  // profile must be non-degenerate and consistent (no shape assertions --
  // host-dependent).
  PosixProfiler prof;
  const std::string path = TempPath("osprof_zero_read");
  const int fd = prof.Open(path, O_CREAT | O_RDWR | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  char c = 0;
  for (int i = 0; i < 10'000; ++i) {
    prof.Read(fd, &c, 0);
  }
  prof.Close(fd);
  prof.Unlink(path);
  const osprof::Profile* read = prof.profiles().Find("read");
  EXPECT_EQ(read->total_operations(), 10'000u);
  EXPECT_GE(read->histogram().FirstNonEmpty(), 0);
  EXPECT_TRUE(read->histogram().CheckConsistency());
}

}  // namespace
}  // namespace osprofilers
