// The sharded-arena invariant of profile_shards.h: for ANY shard count,
// ANY epoch slicing, and ANY record interleaving, the flushed base sets
// serialize byte-identically to unsharded recording.  This is the property
// that lets scenarios turn per-CPU sharding on without moving a byte of
// the committed golden corpus.

#include "src/profilers/profile_shards.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/core/layered.h"
#include "src/core/profile.h"
#include "src/profilers/sim_profiler.h"

namespace osprofilers {
namespace {

using osprof::LayeredProfileSet;
using osprof::ProbeHandle;
using osprof::ProfileSet;

// A deterministic pseudo-workload: op index, latency and a layered bucket
// for each record, reproducible in any shard/epoch arrangement.
struct Rec {
  int op;
  Cycles latency;
};

std::vector<Rec> MakeRecords(int count) {
  std::vector<Rec> recs;
  recs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    recs.push_back(Rec{i % 3, static_cast<Cycles>(37 + 113 * (i % 97))});
  }
  return recs;
}

const char* OpName(int op) {
  static const char* kNames[] = {"read", "write", "llseek"};
  return kNames[op];
}

std::string LayeredString(const LayeredProfileSet& set) {
  std::map<std::string, LayeredProfileSet> layers;
  layers.emplace("fs", set);
  return osprof::LayersToString(layers);
}

// Records `recs` round-robin over `num_shards` shards, flushing every
// `epoch` records (0 = only at the end).  Returns the serialized base.
std::pair<std::string, std::string> RunSharded(const std::vector<Rec>& recs,
                                               int num_shards, int epoch) {
  ProfileSet base(1);
  LayeredProfileSet base_layered(1);
  ShardedProfileArena arena(&base, &base_layered, num_shards);
  std::vector<ProbeHandle> handles;
  for (int op = 0; op < 3; ++op) {
    handles.push_back(base.Resolve(OpName(op)));
    arena.OnResolve(OpName(op));
  }
  int since_flush = 0;
  int shard = 0;
  for (const Rec& r : recs) {
    const ProbeHandle& h = handles[static_cast<std::size_t>(r.op)];
    arena.AddById(shard, h.id(), r.latency);
    arena.AddLayeredSelfOnly(shard, h.id(),
                             osprof::BucketIndex(r.latency),
                             r.latency);
    shard = (shard + 1) % num_shards;
    if (epoch > 0 && ++since_flush == epoch) {
      arena.FlushShards();
      since_flush = 0;
    }
  }
  arena.FlushShards();
  return {base.ToString(), LayeredString(base_layered)};
}

// The unsharded reference: the same records straight into the base sets.
std::pair<std::string, std::string> RunUnsharded(const std::vector<Rec>& recs) {
  ProfileSet base(1);
  LayeredProfileSet base_layered(1);
  for (const Rec& r : recs) {
    const ProbeHandle h = base.Resolve(OpName(r.op));
    base.AddById(h.id(), r.latency);
    base_layered.Slot(OpName(r.op))
        ->AddSelfOnly(osprof::BucketIndex(r.latency), r.latency);
  }
  return {base.ToString(), LayeredString(base_layered)};
}

TEST(ShardedProfileArena, ByteIdenticalForAnyShardCount) {
  const std::vector<Rec> recs = MakeRecords(4000);
  const auto reference = RunUnsharded(recs);
  for (const int shards : {1, 4, 64}) {
    const auto sharded = RunSharded(recs, shards, 0);
    EXPECT_EQ(sharded.first, reference.first) << shards << " shards";
    EXPECT_EQ(sharded.second, reference.second) << shards << " shards";
  }
}

TEST(ShardedProfileArena, ByteIdenticalForAnyEpochLength) {
  const std::vector<Rec> recs = MakeRecords(4000);
  const auto reference = RunUnsharded(recs);
  for (const int epoch : {1, 7, 100, 4000}) {
    const auto sharded = RunSharded(recs, 8, epoch);
    EXPECT_EQ(sharded.first, reference.first) << "epoch " << epoch;
    EXPECT_EQ(sharded.second, reference.second) << "epoch " << epoch;
  }
}

TEST(ShardedProfileArena, MergeIsCommutativeOverShardAssignment) {
  // The same multiset of records, dealt to shards in opposite orders and
  // recorded back-to-front: totals are sums, so the bytes cannot move.
  const std::vector<Rec> recs = MakeRecords(1000);
  ProfileSet base_a(1), base_b(1);
  LayeredProfileSet layered_a(1), layered_b(1);
  ShardedProfileArena arena_a(&base_a, &layered_a, 4);
  ShardedProfileArena arena_b(&base_b, &layered_b, 4);
  for (int op = 0; op < 3; ++op) {
    base_a.Resolve(OpName(op));
    arena_a.OnResolve(OpName(op));
    base_b.Resolve(OpName(op));
    arena_b.OnResolve(OpName(op));
  }
  const int n = static_cast<int>(recs.size());
  for (int i = 0; i < n; ++i) {
    const Rec& fwd = recs[static_cast<std::size_t>(i)];
    const Rec& rev = recs[static_cast<std::size_t>(n - 1 - i)];
    arena_a.AddById(i % 4, base_a.Resolve(OpName(fwd.op)).id(), fwd.latency);
    arena_b.AddById(3 - i % 4, base_b.Resolve(OpName(rev.op)).id(),
                    rev.latency);
  }
  arena_a.FlushShards();
  arena_b.FlushShards();
  EXPECT_EQ(base_a.ToString(), base_b.ToString());
}

TEST(ShardedProfileArena, ResidueMergeIsNonDestructiveAndExact) {
  ProfileSet base(1);
  LayeredProfileSet base_layered(1);
  ShardedProfileArena arena(&base, &base_layered, 2);
  const ProbeHandle read = base.Resolve("read");
  arena.OnResolve("read");
  arena.AddById(0, read.id(), 100);
  arena.AddById(1, read.id(), 200);

  ProfileSet snap1 = base;
  arena.MergeResidueInto(&snap1);
  ProfileSet snap2 = base;
  arena.MergeResidueInto(&snap2);
  // Two residue merges from untouched shards agree with each other and
  // with the eventual flush.
  EXPECT_EQ(snap1.ToString(), snap2.ToString());
  EXPECT_EQ(snap1.Find("read")->total_operations(), 2u);
  EXPECT_EQ(snap1.Find("read")->total_latency(), 300u);
  EXPECT_TRUE(base.empty());  // Residue merging never touched the base.

  arena.FlushShards();
  EXPECT_EQ(base.ToString(), snap1.ToString());
  EXPECT_EQ(arena.flushes(), 1u);
}

TEST(ShardedProfileArena, LateResolvePropagatesToAllShards) {
  ProfileSet base(1);
  LayeredProfileSet base_layered(1);
  const ProbeHandle early = base.Resolve("early");
  // Arena attached after `early` was interned; `late` arrives afterwards.
  ShardedProfileArena arena(&base, &base_layered, 3);
  const ProbeHandle late = base.Resolve("late");
  arena.OnResolve("late");
  arena.AddById(0, early.id(), 10);
  arena.AddById(2, late.id(), 20);
  arena.FlushShards();
  EXPECT_EQ(base.Find("early")->total_latency(), 10u);
  EXPECT_EQ(base.Find("late")->total_latency(), 20u);
}

// End to end through SimProfiler: a multi-CPU simulation with sharding on
// collects the same bytes as the identical simulation with sharding off,
// with and without epoch flushing.
TEST(ShardedProfileArena, SimProfilerShardedCollectMatchesUnsharded) {
  const auto run = [](bool sharded, Cycles epoch) {
    osim::KernelConfig cfg;
    cfg.num_cpus = 4;
    cfg.context_switch_cost = 120;
    cfg.seed = 9;
    osim::Kernel kernel(cfg);
    SimProfiler prof(&kernel);
    if (sharded) {
      prof.EnableSharding(epoch);
    }
    const ProbeHandle op = prof.Resolve("op");
    for (int t = 0; t < 8; ++t) {
      kernel.Spawn("w", [](osim::Kernel* k, SimProfiler* p,
                           ProbeHandle h) -> osim::Task<void> {
        for (int i = 0; i < 200; ++i) {
          co_await p->Wrap(h, [](osim::Kernel* kk) -> osim::Task<void> {
            co_await kk->Cpu(700);
          }(k));
        }
      }(&kernel, &prof, op));
    }
    kernel.RunUntilThreadsFinish();
    const Collected collected = prof.Collect(CollectRequest{});
    std::map<std::string, LayeredProfileSet> layers;
    layers.emplace("fs", *collected.layered);
    return collected.profiles.ToString() + osprof::LayersToString(layers);
  };
  const std::string reference = run(false, 0);
  EXPECT_EQ(run(true, 0), reference);
  EXPECT_EQ(run(true, 50'000), reference);
  EXPECT_EQ(run(true, 1'000'000), reference);
}

}  // namespace
}  // namespace osprofilers
