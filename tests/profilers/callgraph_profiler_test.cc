#include "src/profilers/callgraph_profiler.h"

#include <gtest/gtest.h>

#include "src/fs/ext2fs.h"
#include "src/sim/disk.h"
#include "src/workloads/workloads.h"

namespace osprofilers {
namespace {

using osim::Kernel;
using osim::KernelConfig;
using osim::Task;

KernelConfig QuietConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 2;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

Task<void> Leaf(Kernel* k, Cycles cycles) { co_await k->Cpu(cycles); }

Task<void> Parent(Kernel* k, CallGraphProfiler* cg) {
  co_await k->Cpu(1'000);
  const osprof::ProbeHandle leaf = cg->Resolve("leaf");
  co_await cg->Wrap(leaf, Leaf(k, 500));
  co_await cg->Wrap(leaf, Leaf(k, 500));
}

Task<void> Root(Kernel* k, CallGraphProfiler* cg) {
  const osprof::ProbeHandle parent = cg->Resolve("parent");
  co_await cg->Wrap(parent, Parent(k, cg));
}

TEST(CallGraphProfiler, SplitsSelfAndChildTime) {
  Kernel k(QuietConfig());
  CallGraphProfiler cg(&k);
  k.Spawn("t", Root(&k, &cg));
  k.RunUntilThreadsFinish();

  // Flat totals.
  EXPECT_EQ(cg.flat().Find("parent")->total_operations(), 1u);
  EXPECT_EQ(cg.flat().Find("leaf")->total_operations(), 2u);
  EXPECT_EQ(cg.flat().Find("parent")->total_latency(), 2'000u);
  EXPECT_EQ(cg.flat().Find("leaf")->total_latency(), 1'000u);

  // Edges: "-"->parent once, parent->leaf twice.
  EXPECT_EQ(cg.edges().Find("-->parent")->total_operations(), 1u);
  EXPECT_EQ(cg.edges().Find("parent->leaf")->total_operations(), 2u);

  // The report attributes half of parent's time to its children.
  const std::string report = cg.Report(osprof::kPaperCpuHz);
  EXPECT_NE(report.find("parent"), std::string::npos);
  EXPECT_NE(report.find("parent -> leaf: 2 calls"), std::string::npos);
}

TEST(CallGraphProfiler, EdgeSummariesSortByWeight) {
  Kernel k(QuietConfig());
  CallGraphProfiler cg(&k);
  auto body = [](Kernel* kk, CallGraphProfiler* c) -> Task<void> {
    const osprof::ProbeHandle heavy = c->Resolve("heavy");
    const osprof::ProbeHandle light = c->Resolve("light");
    co_await c->Wrap(heavy, Leaf(kk, 100'000));
    co_await c->Wrap(light, Leaf(kk, 100));
  };
  k.Spawn("t", body(&k, &cg));
  k.RunUntilThreadsFinish();
  const auto edges = cg.EdgeSummaries();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].callee, "heavy");
  EXPECT_EQ(edges[1].callee, "light");
}

TEST(CallGraphProfiler, PerThreadStacksDoNotCrossTalk) {
  Kernel k(QuietConfig());
  CallGraphProfiler cg(&k);
  auto body = [](Kernel* kk, CallGraphProfiler* c,
                 osprof::ProbeHandle outer) -> Task<void> {
    for (int i = 0; i < 50; ++i) {
      co_await c->Wrap(outer, Root(kk, c));
    }
  };
  k.Spawn("a", body(&k, &cg, cg.Resolve("opA")));
  k.Spawn("b", body(&k, &cg, cg.Resolve("opB")));
  k.RunUntilThreadsFinish();
  // Every leaf call attributes to "parent", never to opA/opB directly.
  EXPECT_EQ(cg.edges().Find("parent->leaf")->total_operations(), 200u);
  EXPECT_EQ(cg.edges().Find("opA->leaf"), nullptr);
  EXPECT_EQ(cg.edges().Find("opB->leaf"), nullptr);
  EXPECT_EQ(cg.edges().Find("opA->parent")->total_operations(), 50u);
  EXPECT_EQ(cg.edges().Find("opB->parent")->total_operations(), 50u);
}

TEST(CallGraphProfiler, CapturesReaddirReadpageNesting) {
  // The paper's own example: Ext2 readdir calls readpage for cold pages.
  Kernel k(QuietConfig());
  osim::SimDisk disk(&k);
  osfs::Ext2SimFs fs(&k, &disk);
  fs.AddDir("/d");
  for (int i = 0; i < 80; ++i) {
    fs.AddFile("/d/f" + std::to_string(i), 200);
  }
  CallGraphProfiler cg(&k);
  fs.SetCallGraphProfiler(&cg);
  auto body = [](osfs::Vfs* vfs) -> Task<void> {
    const int fd = co_await vfs->Open("/d", false);
    while (true) {
      const osfs::DirentBatch batch = co_await vfs->Readdir(fd);
      if (batch.names.empty()) {
        break;
      }
    }
    co_await vfs->Close(fd);
  };
  k.Spawn("r", body(&fs));
  k.RunUntilThreadsFinish();

  const osprof::Profile* edge = cg.edges().Find("readdir->readpage");
  ASSERT_NE(edge, nullptr);
  EXPECT_GT(edge->total_operations(), 0u);
  // No readpage happened outside readdir.
  EXPECT_EQ(cg.edges().Find("-->readpage"), nullptr);
  // And readdir itself is a top-level op here.
  EXPECT_NE(cg.edges().Find("-->readdir"), nullptr);
}

// Reset() drops the collected data but keeps the interned op table and
// the packed edge-id cache: handles resolved before the reset keep
// recording into the same slots, and re-run edges reuse their ids
// (their names are built exactly once per process, not once per run).
TEST(CallGraphProfiler, ResetKeepsHandlesAndEdgeIdsButClearsCounts) {
  Kernel k(QuietConfig());
  CallGraphProfiler cg(&k);
  const osprof::ProbeHandle parent = cg.Resolve("parent");
  const osprof::ProbeHandle leaf = cg.Resolve("leaf");
  auto body = [](Kernel* kk, CallGraphProfiler* c, osprof::ProbeHandle outer,
                 osprof::ProbeHandle inner) -> Task<void> {
    co_await c->Wrap(outer, c->Wrap(inner, Leaf(kk, 500)));
  };
  k.Spawn("t", body(&k, &cg, parent, leaf));
  k.RunUntilThreadsFinish();
  ASSERT_NE(cg.edges().Find("parent->leaf"), nullptr);
  ASSERT_FALSE(cg.CollectLayered()->empty());

  cg.Reset();
  // Counts are gone everywhere (ops turn invisible until they record
  // again -- their slots and ids stay)...
  EXPECT_EQ(cg.flat().Find("parent"), nullptr);
  EXPECT_EQ(cg.edges().Find("parent->leaf"), nullptr);
  EXPECT_TRUE(cg.CollectLayered()->empty());
  EXPECT_TRUE(cg.EdgeSummaries().empty());

  // ...but the pre-reset handles still record into the same ops, and the
  // edge resolves to the same interned name.
  EXPECT_EQ(cg.Resolve("parent").id(), parent.id());
  EXPECT_EQ(cg.Resolve("leaf").id(), leaf.id());
  k.Spawn("t2", body(&k, &cg, parent, leaf));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(cg.flat().Find("parent")->total_operations(), 1u);
  EXPECT_EQ(cg.edges().Find("parent->leaf")->total_operations(), 1u);
  EXPECT_FALSE(cg.CollectLayered()->empty());
}

TEST(CallGraphProfiler, ResetWhileInFlightThrows) {
  Kernel k(QuietConfig());
  CallGraphProfiler cg(&k);
  auto body = [](Kernel* kk, CallGraphProfiler* c) -> Task<void> {
    const osprof::ProbeHandle op = c->Resolve("op");
    co_await c->Wrap(op,
                     [](Kernel* kkk, CallGraphProfiler* cc) -> Task<void> {
                       EXPECT_THROW(cc->Reset(), std::logic_error);
                       co_await kkk->Cpu(1);
                     }(kk, c));
  };
  k.Spawn("t", body(&k, &cg));
  k.RunUntilThreadsFinish();
  // After the span closed normally, Reset is legal again.
  cg.Reset();
}

TEST(CallGraphProfiler, OutsideThreadContextThrows) {
  Kernel k(QuietConfig());
  CallGraphProfiler cg(&k);
  const osprof::ProbeHandle op = cg.Resolve("op");
  osim::Task<void> wrapped = cg.Wrap(op, Leaf(&k, 1));
  // Driving the coroutine outside a simulated thread must fail loudly
  // (the exception is stored in the promise and rethrown on inspection).
  wrapped.handle().resume();
  EXPECT_THROW(wrapped.RethrowIfFailed(), std::logic_error);
}

}  // namespace
}  // namespace osprofilers
