// End-to-end test of the LD_PRELOAD interposition profiler: inject it
// into an unmodified system binary, then parse the dumped profile set.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/core/profile.h"

// Under AddressSanitizer the preload library links the asan runtime, and
// injecting it into an uninstrumented system binary trips asan's
// "runtime must load first" check -- the interposition mechanism itself
// is incompatible with that build, so skip rather than fail.
#if defined(__SANITIZE_ADDRESS__)
#define OSPROF_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define OSPROF_ASAN 1
#endif
#endif

#ifdef OSPROF_ASAN
#define OSPROF_SKIP_IF_PRELOAD_INCOMPATIBLE() \
  GTEST_SKIP() << "LD_PRELOAD interposition is incompatible with asan"
#else
#define OSPROF_SKIP_IF_PRELOAD_INCOMPATIBLE() \
  do {                                        \
  } while (false)
#endif

namespace {

#ifndef OSPROF_PRELOAD_PATH
#define OSPROF_PRELOAD_PATH ""
#endif

std::string PreloadPath() { return OSPROF_PRELOAD_PATH; }

std::string TempPath(const std::string& name) {
  const char* dir = ::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

TEST(PreloadProfiler, ProfilesAnUnmodifiedBinary) {
  OSPROF_SKIP_IF_PRELOAD_INCOMPATIBLE();
  const std::string lib = PreloadPath();
  ASSERT_FALSE(lib.empty());
  ASSERT_EQ(::access(lib.c_str(), R_OK), 0) << lib;

  const std::string out = TempPath("osprof_preload_test.prof");
  std::remove(out.c_str());
  const std::string cmd = "OSPROF_OUT=" + out + " LD_PRELOAD=" + lib +
                          " /bin/cat /etc/hostname > /dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0);

  std::ifstream in(out);
  ASSERT_TRUE(in.good()) << out;
  const osprof::ProfileSet set = osprof::ProfileSet::Parse(in);
  // cat reads its input and writes it out.
  ASSERT_NE(set.Find("read"), nullptr);
  EXPECT_GT(set.Find("read")->total_operations(), 0u);
  EXPECT_GT(set.Find("read")->total_latency(), 0u);
  EXPECT_TRUE(set.CheckConsistency());
  std::remove(out.c_str());
}

TEST(PreloadProfiler, DumpIsParseableAfterHeavyIo) {
  OSPROF_SKIP_IF_PRELOAD_INCOMPATIBLE();
  const std::string lib = PreloadPath();
  ASSERT_FALSE(lib.empty());
  const std::string out = TempPath("osprof_preload_heavy.prof");
  const std::string data = TempPath("osprof_preload_data");
  std::remove(out.c_str());
  // dd generates a long read/write stream through the hooks.
  const std::string cmd =
      "OSPROF_OUT=" + out + " LD_PRELOAD=" + lib +
      " dd if=/dev/zero of=" + data +
      " bs=4096 count=200 > /dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  std::ifstream in(out);
  ASSERT_TRUE(in.good());
  const osprof::ProfileSet set = osprof::ProfileSet::Parse(in);
  ASSERT_NE(set.Find("write"), nullptr);
  EXPECT_GE(set.Find("write")->total_operations(), 200u);
  std::remove(out.c_str());
  std::remove(data.c_str());
}

}  // namespace
