#include "src/profilers/sim_profiler.h"

#include <gtest/gtest.h>

#include "src/core/peaks.h"

namespace osprofilers {
namespace {

using osim::KernelConfig;
using osim::Task;

KernelConfig QuietConfig() {
  KernelConfig cfg;
  cfg.num_cpus = 1;
  cfg.context_switch_cost = 0;
  cfg.timer_tick_period = 0;
  return cfg;
}

Task<int> Burn(Kernel* k, Cycles cycles) {
  co_await k->Cpu(cycles);
  co_return 7;
}

TEST(SimProfiler, WrapMeasuresSimulatedLatency) {
  Kernel k(QuietConfig());
  SimProfiler prof(&k);
  const osprof::ProbeHandle op_h = prof.Resolve("op");
  auto body = [](Kernel* kk, SimProfiler* p, osprof::ProbeHandle op) -> Task<void> {
    const int v = co_await p->Wrap(op, Burn(kk, 1000));
    EXPECT_EQ(v, 7);
  };
  k.Spawn("t", body(&k, &prof, op_h));
  k.RunUntilThreadsFinish();
  const osprof::Profile* op = prof.profiles().Find("op");
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->total_operations(), 1u);
  EXPECT_EQ(op->total_latency(), 1000u);  // Exact: no overhead charging.
}

TEST(SimProfiler, OverheadChargingAddsCostsAndFloor) {
  Kernel k(QuietConfig());
  SimProfiler prof(&k);
  prof.set_charge_overhead(true);
  const osprof::ProbeHandle noop_h = prof.Resolve("noop");
  auto body = [](Kernel* kk, SimProfiler* p, osprof::ProbeHandle op) -> Task<void> {
    (void)co_await p->Wrap(op, Burn(kk, 0));
  };
  k.Spawn("t", body(&k, &prof, noop_h));
  k.RunUntilThreadsFinish();
  const osprof::Profile* op = prof.profiles().Find("noop");
  ASSERT_NE(op, nullptr);
  // The measured window contains exactly the inside-TSC costs: the
  // 40-cycle floor of §5.2, i.e. bucket 5.
  EXPECT_EQ(op->total_latency(), prof.costs().MeasuredFloor());
  EXPECT_EQ(op->histogram().FirstNonEmpty(), 5);
  // The simulation consumed the full per-op instrumentation cost.
  EXPECT_EQ(k.now(), prof.costs().Total());
}

TEST(SimProfiler, DefaultCostsMatchPaperDecomposition) {
  // §5.2 pins three facts: ~200 cycles total per probed operation, a
  // 40-cycle floor between the TSC reads (the smallest recordable value,
  // bucket 5), and sort/store accounting for half the overhead (2.0% of
  // the 4.0% total).
  InstrumentationCosts costs;
  EXPECT_NEAR(static_cast<double>(costs.Total()), 200.0, 25.0);
  EXPECT_EQ(costs.MeasuredFloor(), 40u);
  // The §5.2 component ratio: calls : TSC : store = 1.5% : 0.5% : 2.0%.
  EXPECT_NEAR(static_cast<double>(costs.CallTotal()) /
                  static_cast<double>(costs.TscTotal()),
              3.0, 0.1);
  EXPECT_NEAR(static_cast<double>(costs.store) /
                  static_cast<double>(costs.TscTotal()),
              4.0, 0.1);
}

TEST(SimProfiler, SamplingSplitsEpochs) {
  Kernel k(QuietConfig());
  SimProfiler prof(&k);
  prof.EnableSampling(10'000);
  const osprof::ProbeHandle op_h = prof.Resolve("op");
  auto body = [](Kernel* kk, SimProfiler* p, osprof::ProbeHandle op) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      (void)co_await p->Wrap(op, Burn(kk, 4'000));
    }
  };
  k.Spawn("t", body(&k, &prof, op_h));
  k.RunUntilThreadsFinish();
  const osprof::SampledProfile* sp = prof.sampled()->Find("op");
  ASSERT_NE(sp, nullptr);
  EXPECT_GE(sp->num_epochs(), 2);
  EXPECT_EQ(sp->Flatten().TotalOperations(), 5u);
}

TEST(SimProfiler, CorrelatorReceivesValues) {
  Kernel k(QuietConfig());
  SimProfiler prof(&k);
  osprof::Peak fast;
  fast.first_bucket = 0;
  fast.last_bucket = 11;
  osprof::Peak slow;
  slow.first_bucket = 12;
  slow.last_bucket = 40;
  osprof::ValueCorrelator corr("flag", {fast, slow});
  prof.AttachCorrelator("op", &corr);
  const osprof::ProbeHandle op = prof.Resolve("op");
  prof.RecordWithValue(op, 100, 1024);     // Fast peak, flag set.
  prof.RecordWithValue(op, 100'000, 0);    // Slow peak, flag clear.
  EXPECT_EQ(corr.peak_values(0).bucket(10), 1u);
  EXPECT_EQ(corr.peak_values(1).bucket(0), 1u);
}

TEST(SimProfiler, ResetClearsDataKeepsConfig) {
  Kernel k(QuietConfig());
  SimProfiler prof(&k);
  prof.EnableSampling(1'000);
  const osprof::ProbeHandle op = prof.Resolve("op");
  prof.Record(op, 100);
  prof.Reset();
  EXPECT_TRUE(prof.profiles().empty());
  ASSERT_NE(prof.sampled(), nullptr);
  EXPECT_EQ(prof.sampled()->OperationNames().size(), 0u);
}

TEST(SimProfiler, ResolveOrderDoesNotAffectSerialization) {
  Kernel k(QuietConfig());
  SimProfiler forward(&k);
  SimProfiler reverse(&k);
  // Intern the same ops in opposite orders: the dense ids differ, but the
  // serialized sets must not (iteration is by sorted name, not by id).
  const osprof::ProbeHandle fwd_a = forward.Resolve("alpha");
  const osprof::ProbeHandle fwd_b = forward.Resolve("beta");
  const osprof::ProbeHandle rev_b = reverse.Resolve("beta");
  const osprof::ProbeHandle rev_a = reverse.Resolve("alpha");
  EXPECT_NE(fwd_a.id(), rev_a.id());
  for (int i = 0; i < 50; ++i) {
    const Cycles latency = static_cast<Cycles>(80 + 113 * i);
    forward.Record(fwd_a, latency);
    forward.Record(fwd_b, latency * 2);
    reverse.Record(rev_a, latency);
    reverse.Record(rev_b, latency * 2);
  }
  EXPECT_EQ(forward.profiles().ToString(), reverse.profiles().ToString());
}

TEST(SimProfiler, HandlesSurviveReset) {
  Kernel k(QuietConfig());
  SimProfiler prof(&k);
  const osprof::ProbeHandle op = prof.Resolve("op");
  prof.Record(op, 100);
  prof.Record(op, 200);
  ASSERT_NE(prof.profiles().Find("op"), nullptr);
  EXPECT_EQ(prof.profiles().Find("op")->total_operations(), 2u);

  prof.Reset();
  EXPECT_TRUE(prof.profiles().empty());

  // The same pre-Reset handle keeps recording into the same op; counts
  // reflect only post-Reset measurements.
  prof.Record(op, 300);
  ASSERT_NE(prof.profiles().Find("op"), nullptr);
  EXPECT_EQ(prof.profiles().Find("op")->total_operations(), 1u);
  EXPECT_EQ(prof.profiles().Find("op")->total_latency(), 300u);
  // Re-resolving after Reset yields the identical id.
  EXPECT_EQ(prof.Resolve("op").id(), op.id());
}

TEST(SimProfiler, ResolvedButUnrecordedOpsInvisibleInCollect) {
  Kernel k(QuietConfig());
  SimProfiler prof(&k);
  (void)prof.Resolve("never_fired");
  const osprof::ProbeHandle fired = prof.Resolve("fired");
  prof.Record(fired, 100);
  const osprof::ProfileSet snapshot = prof.Collect();
  EXPECT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot.Find("never_fired"), nullptr);
  ASSERT_NE(snapshot.Find("fired"), nullptr);
}

TEST(SimProfiler, HandleWrapRecordsAndSamplesAfterReset) {
  Kernel k(QuietConfig());
  SimProfiler prof(&k);
  prof.EnableSampling(10'000);
  const osprof::ProbeHandle op = prof.Resolve("op");
  auto body = [](Kernel* kk, SimProfiler* p,
                 osprof::ProbeHandle h) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      (void)co_await p->Wrap(h, Burn(kk, 4'000));
    }
  };
  k.Spawn("t1", body(&k, &prof, op));
  k.RunUntilThreadsFinish();
  ASSERT_NE(prof.profiles().Find("op"), nullptr);
  EXPECT_EQ(prof.profiles().Find("op")->total_operations(), 3u);
  ASSERT_NE(prof.sampled()->Find("op"), nullptr);
  EXPECT_EQ(prof.sampled()->Find("op")->Flatten().TotalOperations(), 3u);

  // After Reset the cached sampled-slot pointers are stale-proof: the
  // handle keeps working against the fresh sampled set.
  prof.Reset();
  k.Spawn("t2", body(&k, &prof, op));
  k.RunUntilThreadsFinish();
  EXPECT_EQ(prof.profiles().Find("op")->total_operations(), 3u);
  ASSERT_NE(prof.sampled()->Find("op"), nullptr);
  EXPECT_EQ(prof.sampled()->Find("op")->Flatten().TotalOperations(), 3u);
}

TEST(SimProfiler, CorrelatorRoutesThroughHandles) {
  Kernel k(QuietConfig());
  SimProfiler prof(&k);
  osprof::Peak fast;
  fast.first_bucket = 0;
  fast.last_bucket = 11;
  osprof::Peak slow;
  slow.first_bucket = 12;
  slow.last_bucket = 40;
  osprof::ValueCorrelator corr("flag", {fast, slow});
  // Resolve before attach: AttachCorrelator must hit the same slot.
  const osprof::ProbeHandle op = prof.Resolve("op");
  prof.AttachCorrelator("op", &corr);
  prof.RecordWithValue(op, 100, 1024);
  prof.RecordWithValue(op, 100'000, 0);
  EXPECT_EQ(corr.peak_values(0).bucket(10), 1u);
  EXPECT_EQ(corr.peak_values(1).bucket(0), 1u);
  // An op without a correlator attached is a no-op routing-wise.
  const osprof::ProbeHandle other = prof.Resolve("other");
  prof.RecordWithValue(other, 50, 7);
  ASSERT_NE(prof.profiles().Find("other"), nullptr);
}

TEST(DriverProfiler, SeesReadsAndWritesWithQueueing) {
  Kernel k(QuietConfig());
  osim::SimDisk disk(&k);
  DriverProfiler driver(&k, &disk);
  disk.Submit(osim::DiskOp::kRead, 1'000, 8, nullptr);
  disk.Submit(osim::DiskOp::kWrite, 500'000, 8, nullptr);
  k.RunFor(Cycles{1} << 33);
  const osprof::ProfileSet& p = driver.profiles();
  ASSERT_NE(p.Find("disk_read"), nullptr);
  ASSERT_NE(p.Find("disk_write"), nullptr);
  EXPECT_EQ(p.Find("disk_read")->total_operations(), 1u);
  EXPECT_EQ(p.Find("disk_write")->total_operations(), 1u);
  // The write queued behind the read.
  EXPECT_GT(p.Find("disk_write_queue")->total_latency(), 0u);
}

}  // namespace
}  // namespace osprofilers
