// Contention hunt: the paper's §6.1 investigation as a workflow.
//
// 1. Capture a complete profile of a random-read workload with ONE
//    process, and again with TWO processes.
// 2. Let the automated analyzer (§3.2) select the interesting profiles.
// 3. Inspect the flagged llseek profile: its new peak lines up with the
//    READ profile (differential analysis + prior knowledge).
// 4. Apply the fix (llseek without i_sem) and re-measure: the peak is
//    gone and the mean drops ~70%.
//
//   $ ./contention_hunt

#include <cstdio>

#include "src/core/analysis.h"
#include "src/core/peaks.h"
#include "src/core/report.h"
#include "src/fs/ext2fs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/workloads.h"

namespace {

osprof::ProfileSet Capture(int processes, bool patched) {
  osim::KernelConfig kcfg;
  kcfg.num_cpus = 2;
  kcfg.seed = 101;
  osim::Kernel kernel(kcfg);
  osim::SimDisk disk(&kernel);
  osfs::Ext2Config fcfg;
  fcfg.llseek_takes_i_sem = !patched;
  osfs::Ext2SimFs fs(&kernel, &disk, fcfg);
  fs.AddFile("/data", 64ull << 20);
  osprofilers::SimProfiler profiler(&kernel);
  fs.SetProfiler(&profiler);
  for (int p = 0; p < processes; ++p) {
    kernel.Spawn("proc" + std::to_string(p),
                 osworkloads::RandomReadWorkload(&kernel, &fs, "/data", 1'000,
                                                 200 + p));
  }
  kernel.RunUntilThreadsFinish();
  return profiler.profiles();
}

}  // namespace

int main() {
  std::printf("Step 1: capture profiles (1 process, then 2 processes)\n");
  const osprof::ProfileSet one = Capture(1, /*patched=*/false);
  const osprof::ProfileSet two = Capture(2, /*patched=*/false);

  std::printf("\nStep 2: automated analysis selects what changed\n");
  const osprof::AnalysisReport report = osprof::CompareProfileSets(one, two);
  std::printf("%s", report.Summary().c_str());

  std::printf("\nStep 3: inspect the flagged profiles\n");
  for (const osprof::PairReport* pair : report.Interesting()) {
    std::printf("%s",
                osprof::RenderAscii(*two.Find(pair->op_name)).c_str());
    std::printf("  peaks: %s\n\n",
                osprof::DescribePeaks(pair->peaks_b).c_str());
  }
  std::printf("observation: llseek's new right-hand peak sits in the same\n"
              "buckets as READ -- llseek is waiting on something a read\n"
              "holds (the inode semaphore, held across O_DIRECT I/O).\n");

  std::printf("\nStep 4: apply the fix (llseek without i_sem), re-measure\n");
  const osprof::ProfileSet fixed = Capture(2, /*patched=*/true);
  std::printf("%s", osprof::RenderAscii(*fixed.Find("llseek")).c_str());
  const double before = two.Find("llseek")->histogram().MeanLatency();
  const double after = fixed.Find("llseek")->histogram().MeanLatency();
  std::printf("\nllseek mean latency: %.0f -> %.0f cycles (%.0f%% reduction)\n",
              before, after, 100.0 * (1.0 - after / before));
  return 0;
}
