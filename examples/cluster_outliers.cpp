// Cluster-scale profiling: the paper's §7 future-work direction, working.
//
// Simulates a small fleet of machines running the same grep workload --
// one of them with a degraded disk (slow seeks) and one with a
// lock-contended llseek -- ships each machine's compact profile set to an
// aggregation point, and uses the leave-one-out outlier detector to find
// the sick machines automatically.
//
//   $ ./cluster_outliers

#include <cstdio>

#include "src/core/analysis.h"
#include "src/core/cluster.h"
#include "src/core/report.h"
#include "src/fs/ext2fs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/workloads.h"

namespace {

struct MachineSpec {
  std::string name;
  bool slow_disk = false;
  bool llseek_bug = false;
};

osprof::MachineProfile RunMachine(const MachineSpec& spec,
                                  std::uint64_t seed) {
  osim::KernelConfig kcfg;
  kcfg.num_cpus = 2;
  kcfg.seed = seed;
  osim::Kernel kernel(kcfg);
  osim::DiskConfig dcfg;
  if (spec.slow_disk) {
    // A dying drive: the servo retries make seeks an order of magnitude
    // slower and the spindle has dropped to a quarter speed.
    dcfg.track_to_track_seek *= 16;
    dcfg.full_stroke_seek *= 16;
    dcfg.full_rotation *= 4;
  }
  osim::SimDisk disk(&kernel, dcfg);
  osfs::Ext2Config fcfg;
  fcfg.llseek_takes_i_sem = spec.llseek_bug;
  osfs::Ext2SimFs fs(&kernel, &disk, fcfg);

  osworkloads::TreeSpec tree;
  tree.top_dirs = 4;
  tree.files_per_dir = 10;
  osworkloads::BuildSourceTree(&fs, "/srv", tree);
  fs.AddFile("/srv/shared.db", 16u << 20);

  osprofilers::SimProfiler profiler(&kernel);
  fs.SetProfiler(&profiler);
  // Ship the driver-level profile too (Figure 2's lowest layer): cached
  // activity dominates the fs-level read profile, so a sick disk is far
  // easier to spot in the pure request-latency stream.
  osprofilers::DriverProfiler driver(&kernel, &disk);

  osworkloads::GrepStats stats;
  kernel.Spawn("grep",
               osworkloads::GrepWorkload(&kernel, &fs, "/srv", 0.5, &stats));
  for (int p = 0; p < 2; ++p) {
    kernel.Spawn("db" + std::to_string(p),
                 osworkloads::RandomReadWorkload(&kernel, &fs,
                                                 "/srv/shared.db", 600,
                                                 seed * 10 + p));
  }
  kernel.RunUntilThreadsFinish();

  // Combine both layers under one set, then round-trip through the wire
  // format (in a real deployment this text is what machines ship).
  osprof::ProfileSet combined = profiler.profiles();
  for (const auto& [name, profile] : driver.profiles()) {
    combined["driver." + name].histogram().Merge(profile.histogram());
  }
  const std::string wire = combined.ToString();
  return osprof::MachineProfile{spec.name,
                                osprof::ProfileSet::ParseString(wire)};
}

}  // namespace

int main() {
  const MachineSpec fleet_spec[] = {
      {"web01", false, false},
      {"web02", false, false},
      {"web03", /*slow_disk=*/true, false},  // The failing drive.
      {"web04", false, false},
      {"web05", false, /*llseek_bug=*/true},  // Unpatched kernel.
      {"web06", false, false},
  };

  std::printf("profiling 6 machines (same workload, two of them sick)...\n");
  std::vector<osprof::MachineProfile> fleet;
  std::uint64_t seed = 1;
  for (const MachineSpec& spec : fleet_spec) {
    fleet.push_back(RunMachine(spec, seed++));
    std::printf("  %s: %zu ops profiled, %zu bytes on the wire\n",
                spec.name.c_str(), fleet.back().profiles.size(),
                fleet.back().profiles.ToString().size());
  }

  std::printf("\nfleet-wide merged profile (busiest ops):\n");
  const osprof::ProfileSet merged = osprof::MergeCluster(fleet);
  int shown = 0;
  for (const osprof::RankedOp& op : osprof::RankByLatency(merged)) {
    std::printf("  %-10s %10llu ops  %5.1f%% of fleet latency\n",
                op.op_name.c_str(),
                static_cast<unsigned long long>(op.total_ops),
                op.latency_fraction * 100.0);
    if (++shown == 5) {
      break;
    }
  }

  std::printf("\nleave-one-out outlier detection (top deviations):\n");
  const auto deviations = osprof::FindOutliers(fleet);
  shown = 0;
  for (const osprof::MachineDeviation& d : deviations) {
    if (!d.outlier && d.score < 0.05) {
      continue;
    }
    std::printf("  %-8s %-14s score %.3f%s\n", d.machine.c_str(),
                d.op_name.c_str(), d.score, d.outlier ? "  <-- OUTLIER" : "");
    if (++shown == 8) {
      break;
    }
  }
  if (shown == 0) {
    std::printf("  (none)\n");
  }
  std::printf("\nexpected: web03 deviates on the driver-level disk ops (slow\n"
              "seeks), web05 on llseek (the unpatched i_sem contention).\n");
  return 0;
}
