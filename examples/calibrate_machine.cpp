// Gray-box calibration: measuring a machine's characteristic times with
// simple workloads (paper §3.1: "For any test setup, these and many other
// characteristic times can be measured in advance by proling simple
// workloads that are known to show peaks corresponding to these times").
//
// This example builds a PriorKnowledge table for the *simulated* machine
// purely from profiles -- without reading any configuration -- and checks
// it against the machine's actual constants:
//
//   * scheduling quantum: two CPU-bound processes on one CPU; the
//     preempted-request peak sits at bucket log2(Q);
//   * full disk rotation / seek ceiling: random single-block reads; the
//     mechanical peak's right edge tracks seek+rotation;
//   * timer tick cost: zero-byte reads; the small secondary peak is the
//     stolen IRQ service time;
//   * context switch: semaphore ping-pong between two threads; the
//     blocked thread's wakeup adds the switch cost.
//
//   $ ./calibrate_machine

#include <cstdio>

#include "src/core/peaks.h"
#include "src/core/prior.h"
#include "src/core/report.h"
#include "src/fs/ext2fs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/sim/sync.h"
#include "src/workloads/workloads.h"

namespace {

using osprof::Cycles;

osim::KernelConfig MachineUnderTest() {
  osim::KernelConfig cfg;  // The "unknown" machine: all defaults.
  cfg.seed = 77;
  return cfg;
}

// Measures the scheduling quantum: the rightmost peak of a zero-byte-read
// profile under CPU contention sits at ~log2(Q).
Cycles MeasureQuantum() {
  osim::Kernel kernel(MachineUnderTest());
  osim::SimDisk disk(&kernel);
  osfs::Ext2SimFs fs(&kernel, &disk);
  fs.AddFile("/probe", 4096);
  osprofilers::SimProfiler prof(&kernel);
  fs.SetProfiler(&prof);
  for (int p = 0; p < 2; ++p) {
    kernel.Spawn("p" + std::to_string(p),
                 osworkloads::ZeroByteReadWorkload(&kernel, &fs, "/probe",
                                                   800'000, 120));
  }
  kernel.RunUntilThreadsFinish();
  const auto peaks =
      osprof::FindPeaks(prof.profiles().Find("read")->histogram());
  return osprof::BucketLowerBound(peaks.back().mode_bucket);
}

// Measures the timer-tick service cost: the secondary peak of the same
// probe on an idle system.
Cycles MeasureTimerIrq() {
  osim::Kernel kernel(MachineUnderTest());
  osim::SimDisk disk(&kernel);
  osfs::Ext2SimFs fs(&kernel, &disk);
  fs.AddFile("/probe", 4096);
  osprofilers::SimProfiler prof(&kernel);
  fs.SetProfiler(&prof);
  kernel.Spawn("p", osworkloads::ZeroByteReadWorkload(&kernel, &fs, "/probe",
                                                      800'000, 120));
  kernel.RunUntilThreadsFinish();
  const auto peaks =
      osprof::FindPeaks(prof.profiles().Find("read")->histogram());
  // The rightmost small peak is a request that absorbed one tick.
  return static_cast<Cycles>(peaks.back().mean_latency);
}

// Measures the mechanical disk ceiling: random far reads; the right edge
// of the I/O peak is ~full seek + full rotation.
Cycles MeasureDiskCeiling() {
  osim::Kernel kernel(MachineUnderTest());
  osim::SimDisk disk(&kernel);
  osfs::Ext2Config fcfg;
  fcfg.fragmentation = 1.0;  // Spread the file fragments across the disk.
  osfs::Ext2SimFs fs(&kernel, &disk, fcfg);
  fs.AddFile("/data", 256u << 20);
  osprofilers::SimProfiler prof(&kernel);
  fs.SetProfiler(&prof);
  kernel.Spawn("p",
               osworkloads::RandomReadWorkload(&kernel, &fs, "/data", 800, 5));
  kernel.RunUntilThreadsFinish();
  const osprof::Histogram& h = prof.profiles().Find("read")->histogram();
  return osprof::BucketUpperBound(h.LastNonEmpty());
}

// Measures the context-switch cost with a semaphore ping-pong.
Cycles MeasureContextSwitch() {
  osim::Kernel kernel(MachineUnderTest());
  osim::SimSemaphore ping(&kernel, 0, "ping");
  osim::SimSemaphore pong(&kernel, 0, "pong");
  osprof::Histogram rtt(1);
  auto ponger = [](osim::SimSemaphore* in,
                   osim::SimSemaphore* out) -> osim::Task<void> {
    for (int i = 0; i < 2'000; ++i) {
      co_await in->Acquire();
      out->Release();
    }
  };
  auto pinger = [](osim::Kernel* k, osim::SimSemaphore* out,
                   osim::SimSemaphore* in,
                   osprof::Histogram* h) -> osim::Task<void> {
    for (int i = 0; i < 2'000; ++i) {
      const Cycles t0 = k->ReadTsc();
      out->Release();
      co_await in->Acquire();
      h->Add(k->ReadTsc() - t0);
    }
  };
  kernel.Spawn("ponger", ponger(&ping, &pong));
  kernel.Spawn("pinger", pinger(&kernel, &ping, &pong, &rtt));
  kernel.RunUntilThreadsFinish();
  // One round trip = two wakeups = two context switches (single CPU would
  // be exact; on the default machine both threads hold CPUs, so the
  // round trip is dominated by the two dispatch delays).
  return static_cast<Cycles>(rtt.MeanLatency() / 2.0);
}

void Report(const char* what, Cycles measured, Cycles actual) {
  const int mb = osprof::BucketIndex(measured);
  const int ab = osprof::BucketIndex(actual);
  std::printf("  %-24s measured %-10s actual %-10s bucket %d vs %d  %s\n",
              what,
              osprof::FormatCycles(measured, osprof::kPaperCpuHz).c_str(),
              osprof::FormatCycles(actual, osprof::kPaperCpuHz).c_str(), mb,
              ab, std::abs(mb - ab) <= 1 ? "OK" : "off");
}

}  // namespace

int main() {
  std::printf("calibrating the simulated machine from profiles alone...\n\n");
  const osim::KernelConfig actual = MachineUnderTest();
  const osim::DiskConfig disk_actual;

  Report("scheduling quantum", MeasureQuantum(), actual.quantum);
  Report("timer IRQ service", MeasureTimerIrq(), actual.timer_irq_cost);
  Report("disk ceiling (seek+rot)", MeasureDiskCeiling(),
         disk_actual.full_stroke_seek + disk_actual.full_rotation);
  Report("context switch", MeasureContextSwitch(),
         actual.context_switch_cost);

  std::printf("\nThese measurements are what populates a PriorKnowledge\n"
              "table for a new machine -- the same table the benches use\n"
              "to annotate peaks (PriorKnowledge::PaperTestbed()).\n");
  return 0;
}
