// Quickstart: profile a simulated workload in ~40 lines.
//
// Builds a small file tree on an Ext2-like simulated file system,
// instruments the file system (FoSgen-style), runs a grep-like scan, and
// prints the resulting latency profiles the way the paper's figures do.
//
//   $ ./quickstart

#include <cstdio>

#include "src/core/report.h"
#include "src/fs/ext2fs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/workloads.h"

int main() {
  // A simulated machine: 1 CPU at the paper's 1.7 GHz, default quantum,
  // timer interrupts, and one disk.
  osim::Kernel kernel(osim::KernelConfig{});
  osim::SimDisk disk(&kernel);

  // An Ext2-like file system with a kernel-source-like tree on it.
  osfs::Ext2SimFs fs(&kernel, &disk);
  osworkloads::TreeSpec spec;
  spec.top_dirs = 4;
  spec.files_per_dir = 10;
  osworkloads::BuildSourceTree(&fs, "/src", spec);

  // Attach the profiler: every VFS operation now records its latency into
  // log2 buckets.
  osprofilers::SimProfiler profiler(&kernel);
  fs.SetProfiler(&profiler);

  // Run the workload to completion.
  osworkloads::GrepStats stats;
  kernel.Spawn("grep",
               osworkloads::GrepWorkload(&kernel, &fs, "/src", 0.5, &stats));
  kernel.RunUntilThreadsFinish();

  std::printf("grep read %llu files, %llu bytes, in %s of simulated time\n\n",
              static_cast<unsigned long long>(stats.files_read),
              static_cast<unsigned long long>(stats.bytes_read),
              osprof::FormatSeconds(static_cast<double>(kernel.now()) /
                                    osprof::kPaperCpuHz)
                  .c_str());

  // Render every profile, busiest first, exactly like the paper's plots.
  std::printf("%s", osprof::RenderAsciiSet(profiler.profiles()).c_str());

  // Profiles serialize to a /proc-style text format for offline analysis.
  std::printf("serialized profile set: %zu bytes\n",
              profiler.profiles().ToString().size());
  return 0;
}
