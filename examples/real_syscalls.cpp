// Real-OS profiling: the paper's user-level POSIX profiler on the host.
//
// Interposes actual system calls with TSC timing -- the same path the
// paper used on Linux, FreeBSD and Windows -- and prints the latency
// profiles.  Run it on different kernels or storage and compare shapes:
// zero-byte reads are pure syscall overhead; the file-writing loop shows
// page-cache vs flush costs; the reread loop shows cache hits.
//
//   $ ./real_syscalls [iterations]

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/analysis.h"
#include "src/core/report.h"
#include "src/profilers/posix_profiler.h"

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 50'000;
  const double hz = osprof::EstimateTscHz();
  std::printf("estimated TSC frequency: %.2f GHz\n", hz / 1e9);

  osprofilers::PosixProfiler prof;
  const char* tmpdir = ::getenv("TMPDIR");
  const std::string path =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/osprof_demo";

  const int fd = prof.Open(path, O_CREAT | O_RDWR | O_TRUNC, 0644);
  if (fd < 0) {
    std::perror("open");
    return 1;
  }

  // Workload 1: zero-byte reads (the paper's §3.3 probe).
  char buffer[4096];
  for (int i = 0; i < iterations; ++i) {
    prof.Read(fd, buffer, 0);
  }

  // Workload 2: write a file through the page cache, then fsync.
  for (int i = 0; i < 256; ++i) {
    prof.Write(fd, buffer, sizeof(buffer));
  }
  prof.Fsync(fd);

  // Workload 3: seek + reread (cache hits vs first touch).
  for (int i = 0; i < iterations / 10; ++i) {
    prof.Lseek(fd, (i % 256) * 4096L, SEEK_SET);
    prof.Read(fd, buffer, sizeof(buffer));
  }

  prof.Close(fd);
  prof.Unlink(path);

  osprof::RenderOptions opts;
  opts.cpu_hz = hz;
  std::printf("\n%s", osprof::RenderAsciiSet(prof.profiles(), opts).c_str());

  std::printf("operations by total latency:\n");
  for (const osprof::RankedOp& op : osprof::RankByLatency(prof.profiles())) {
    std::printf("  %-8s %8llu ops  %5.1f%% of total latency\n",
                op.op_name.c_str(),
                static_cast<unsigned long long>(op.total_ops),
                op.latency_fraction * 100.0);
  }
  std::printf("\nprofile consistency (checksums): %s\n",
              prof.profiles().CheckConsistency() ? "OK" : "BROKEN");
  return 0;
}
