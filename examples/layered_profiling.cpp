// Layered profiling: the paper's Figure 2 infrastructure.
//
// Three profilers observe the same workload at different depths:
//   * a user-level layer (ProfiledVfs) stacked above the file system, like
//     the paper's instrumented applications;
//   * FoSgen-style instrumentation inside the file system itself
//     (including the internal readpage operation);
//   * a driver-level profiler on the disk, where asynchronous write
//     latency is visible.
// Comparing the layers isolates where time is spent: user-layer minus
// fs-layer is boundary overhead, and only the driver layer sees writeback.
//
//   $ ./layered_profiling

#include <cstdio>

#include "src/core/report.h"
#include "src/fs/ext2fs.h"
#include "src/fs/profiled_vfs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/workloads.h"

int main() {
  osim::KernelConfig kcfg;
  kcfg.seed = 17;
  osim::Kernel kernel(kcfg);
  osim::SimDisk disk(&kernel);
  osfs::Ext2SimFs fs(&kernel, &disk);
  fs.AddDir("/postmark");

  // Layer 3: driver-level profiler.
  osprofilers::DriverProfiler driver(&kernel, &disk);
  // Layer 2: in-fs instrumentation.
  osprofilers::SimProfiler fs_prof(&kernel);
  fs.SetProfiler(&fs_prof);
  // Layer 1: user-level profiler stacked on the VFS boundary.
  osprofilers::SimProfiler user_prof(&kernel);
  osfs::ProfiledVfs user_layer(&fs, &user_prof, "user.");

  osworkloads::PostmarkConfig pcfg;
  pcfg.initial_files = 200;
  pcfg.transactions = 1'000;
  osworkloads::PostmarkStats stats;
  kernel.Spawn("postmark", osworkloads::PostmarkWorkload(&kernel, &user_layer,
                                                         pcfg, &stats));
  kernel.RunUntilThreadsFinish();

  std::printf("postmark: %llu creates, %llu deletes, %llu reads, %llu appends\n\n",
              static_cast<unsigned long long>(stats.creates),
              static_cast<unsigned long long>(stats.deletes),
              static_cast<unsigned long long>(stats.reads),
              static_cast<unsigned long long>(stats.appends));

  std::printf("=== user level (syscall boundary) ===\n");
  std::printf("%s", osprof::RenderAscii(*user_prof.profiles().Find("user.write")).c_str());
  std::printf("\n=== file-system level (in-fs instrumentation) ===\n");
  std::printf("%s", osprof::RenderAscii(*fs_prof.profiles().Find("write")).c_str());
  std::printf("\n=== driver level (only here is async write I/O visible) ===\n");
  const osprof::Profile* dw = driver.profiles().Find("disk_write");
  if (dw != nullptr) {
    std::printf("%s", osprof::RenderAscii(*dw).c_str());
  }

  // The point of layering, in numbers.
  const double user_write =
      user_prof.profiles().Find("user.write")->histogram().MeanLatency();
  const double fs_write =
      fs_prof.profiles().Find("write")->histogram().MeanLatency();
  std::printf("\nmean write latency: user layer %.0f cycles, fs layer %.0f "
              "cycles (boundary cost %.0f)\n",
              user_write, fs_write, user_write - fs_write);
  if (dw != nullptr) {
    std::printf("async disk writes completed: %llu, mean %s -- invisible to "
                "both upper layers\n",
                static_cast<unsigned long long>(dw->total_operations()),
                osprof::FormatSeconds(dw->histogram().MeanLatency() /
                                      osprof::kPaperCpuHz)
                    .c_str());
  }
  return 0;
}
