#!/usr/bin/env bash
# Verifies that every C++ file in the repo is clang-format clean.
#
#   scripts/check_format.sh          check; non-zero exit + diff on drift
#   scripts/check_format.sh --fix    rewrite files in place
#
# Uses $CLANG_FORMAT when set (CI pins a version there), else clang-format
# from PATH.

set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"

if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "error: $CLANG_FORMAT not found (set \$CLANG_FORMAT or install it)" >&2
  exit 2
fi

mapfile -t files < <(git ls-files '*.cc' '*.cpp' '*.h')

if [[ "${1:-}" == "--fix" ]]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "formatted ${#files[@]} files"
  exit 0
fi

status=0
for f in "${files[@]}"; do
  if ! diff -u --label "$f (repo)" --label "$f (clang-format)" \
      "$f" <("$CLANG_FORMAT" "$f"); then
    status=1
  fi
done

if [[ $status -ne 0 ]]; then
  echo >&2
  echo "format drift detected: run scripts/check_format.sh --fix" >&2
else
  echo "all ${#files[@]} files clang-format clean"
fi
exit $status
