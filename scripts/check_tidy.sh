#!/usr/bin/env bash
# Runs clang-tidy (config in .clang-tidy) over every C++ file in the repo.
#
#   scripts/check_tidy.sh [build-dir]    default build dir: build
#
# Findings are split into two tiers:
#
#   blocking  bugprone-use-after-move, bugprone-dangling-handle and the
#             performance-* set -- checks that flag real defects with
#             near-zero false positives on this tree.  Any hit exits 1,
#             and CI fails the tidy job on it.
#   advisory  everything else in .clang-tidy (naming conventions, the
#             wider bugprone set): surfaced in the log, never fails the
#             run.
#
# Needs a configured build dir for the compilation database; configures one
# with CMAKE_EXPORT_COMPILE_COMMANDS if compile_commands.json is missing.
# Uses $CLANG_TIDY when set (CI pins a version there), else clang-tidy from
# PATH.  Exits 0 with a notice when clang-tidy is not installed, so local
# environments without LLVM degrade gracefully; CI always installs it.

set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
BUILD_DIR="${1:-build}"

# clang-tidy tags every warning line with its check names in brackets;
# a finding is blocking when any of these appears among them.
BLOCKING_RE='\[(|[a-z0-9-]+,)*(bugprone-use-after-move|bugprone-dangling-handle|performance-[a-z0-9-]+)[],]'

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "notice: $CLANG_TIDY not found; skipping tidy check" \
       "(set \$CLANG_TIDY or install clang-tidy)" >&2
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "no compile database in $BUILD_DIR; configuring one" >&2
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t files < <(git ls-files 'src/*.cc' 'src/*.cpp' 'bench/*.cpp')

log="$(mktemp)"
trap 'rm -f "$log"' EXIT

tool_failed=0
for f in "${files[@]}"; do
  "$CLANG_TIDY" -p "$BUILD_DIR" --quiet "$f" >>"$log" 2>&1 || tool_failed=1
done

cat "$log"

blocking=$(grep -E -c "warning:.*$BLOCKING_RE" "$log" || true)
advisory=$(($(grep -c 'warning:' "$log" || true) - blocking))

if [[ $blocking -gt 0 ]]; then
  echo >&2
  echo "clang-tidy: $blocking blocking finding(s)" \
       "(bugprone-use-after-move / bugprone-dangling-handle /" \
       "performance-*):" >&2
  grep -E "warning:.*$BLOCKING_RE" "$log" >&2
  exit 1
fi
if [[ $tool_failed -ne 0 ]]; then
  echo >&2
  echo "clang-tidy: tool errors (stale compile database?); see log above" >&2
  exit 1
fi
if [[ $advisory -gt 0 ]]; then
  echo "clang-tidy: no blocking findings;" \
       "$advisory advisory finding(s) (see .clang-tidy)"
else
  echo "all ${#files[@]} files clang-tidy clean"
fi
exit 0
