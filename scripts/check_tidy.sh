#!/usr/bin/env bash
# Runs clang-tidy (config in .clang-tidy) over every C++ file in the repo.
#
#   scripts/check_tidy.sh [build-dir]    default build dir: build
#
# Needs a configured build dir for the compilation database; configures one
# with CMAKE_EXPORT_COMPILE_COMMANDS if compile_commands.json is missing.
# Uses $CLANG_TIDY when set (CI pins a version there), else clang-tidy from
# PATH.  Exits 0 with a notice when clang-tidy is not installed, so local
# environments without LLVM degrade gracefully; CI always installs it.

set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
BUILD_DIR="${1:-build}"

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "notice: $CLANG_TIDY not found; skipping tidy check" \
       "(set \$CLANG_TIDY or install clang-tidy)" >&2
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "no compile database in $BUILD_DIR; configuring one" >&2
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t files < <(git ls-files 'src/*.cc' 'src/*.cpp' 'bench/*.cpp')

status=0
for f in "${files[@]}"; do
  "$CLANG_TIDY" -p "$BUILD_DIR" --quiet "$f" || status=1
done

if [[ $status -ne 0 ]]; then
  echo >&2
  echo "clang-tidy reported findings (advisory; see .clang-tidy)" >&2
else
  echo "all ${#files[@]} files clang-tidy clean"
fi
exit $status
