#!/usr/bin/env bash
# Bench-trajectory gate: compare every BENCH_*.json `checks` block in a
# directory against the committed baseline (tests/bench_baseline/).
#
# A bench REGRESSES -- and this script exits nonzero -- when:
#   * a check that passed at baseline fails now, or
#   * a check recorded at baseline is missing from the new report, or
#   * a bench with a committed baseline produced no JSON at all.
#
# New benches and new checks are improvements: reported, never fatal,
# and folded into the baseline on the next --update.  Timing metrics are
# deliberately NOT compared -- they move with the host machine; the
# perf-sensitive figures each bench cares about are expressed as checks
# (e.g. sim_throughput's ns/Wrap floor), which is what trajectory means.
#
# Usage:
#   scripts/check_bench.sh <bench-json-dir> [baseline-dir]
#   scripts/check_bench.sh --update <bench-json-dir> [baseline-dir]
set -u

update=0
if [ "${1:-}" = "--update" ]; then
  update=1
  shift
fi
json_dir="${1:?usage: check_bench.sh [--update] <bench-json-dir> [baseline-dir]}"
baseline_dir="${2:-$(dirname "$0")/../tests/bench_baseline}"

# Flatten one bench JSON into sorted "check_name pass" lines.
checks_of() {
  python3 - "$1" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for c in sorted(doc.get("checks", []), key=lambda c: c["name"]):
    print(c["name"], "pass" if c["pass"] else "FAIL")
EOF
}

if [ "$update" = 1 ]; then
  mkdir -p "$baseline_dir"
  for f in "$json_dir"/BENCH_*.json; do
    [ -e "$f" ] || { echo "no BENCH_*.json in $json_dir" >&2; exit 1; }
    bench="$(basename "$f" .json)"
    checks_of "$f" > "$baseline_dir/${bench}.checks"
    echo "baselined: ${bench} ($(wc -l < "$baseline_dir/${bench}.checks") checks)"
  done
  exit 0
fi

status=0
for base in "$baseline_dir"/BENCH_*.checks; do
  [ -e "$base" ] || { echo "no baseline in $baseline_dir" >&2; exit 1; }
  bench="$(basename "$base" .checks)"
  f="$json_dir/${bench}.json"
  if [ ! -f "$f" ]; then
    echo "REGRESSION: ${bench}: no JSON emitted (baseline expects it)"
    status=1
    continue
  fi
  now="$(checks_of "$f")"
  while read -r name verdict; do
    current="$(printf '%s\n' "$now" | awk -v n="$name" '$1 == n {print $2}')"
    if [ -z "$current" ]; then
      echo "REGRESSION: ${bench}: check '${name}' disappeared"
      status=1
    elif [ "$verdict" = "pass" ] && [ "$current" != "pass" ]; then
      echo "REGRESSION: ${bench}: check '${name}' was passing, now fails"
      status=1
    fi
  done < "$base"
  new_checks="$(printf '%s\n' "$now" | awk '{print $1}' |
    grep -vxF -f <(awk '{print $1}' "$base") || true)"
  [ -n "$new_checks" ] &&
    echo "note: ${bench}: new checks (not in baseline): ${new_checks}" | tr '\n' ' ' && echo
done

for f in "$json_dir"/BENCH_*.json; do
  [ -e "$f" ] || continue
  bench="$(basename "$f" .json)"
  [ -f "$baseline_dir/${bench}.checks" ] ||
    echo "note: new bench ${bench} (no baseline yet; run --update to adopt)"
done

if [ "$status" = 0 ]; then
  echo "bench trajectory ok: $(ls "$baseline_dir"/BENCH_*.checks | wc -l) baselines held"
fi
exit "$status"
