// Profilers for the simulated OS (Figure 2's three layers).
//
// SimProfiler is the aggregate-stats front end used by all in-simulation
// instrumentation: operations record their latency (measured with the
// simulated per-CPU TSC) into a ProfileSet, optionally into a sampled
// (time-sliced) profile set, and optionally into per-peak value
// correlators (§3.1's "direct profile and value correlation").
//
// Instrumentation cost model (§5.2): when `charge_overhead` is set, every
// probe consumes simulated CPU exactly like the paper's FSPROF_PRE/POST
// macros: a function-call cost outside the measured window, half the TSC
// read cost inside it on each side (so the measured latency has the same
// ~40-cycle floor the paper reports), and the bucket-sort/store cost after
// the second read.
//
// DriverProfiler attaches to a SimDisk and profiles the request stream at
// the driver level, where write and asynchronous I/O latencies are visible
// (the paper instruments a SCSI driver for the same reason).

#ifndef OSPROF_SRC_PROFILERS_SIM_PROFILER_H_
#define OSPROF_SRC_PROFILERS_SIM_PROFILER_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/correlate.h"
#include "src/core/op_table.h"
#include "src/core/profile.h"
#include "src/core/sampling.h"
#include "src/profilers/profiler_sink.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/sim/task.h"

namespace osprofilers {

using osim::Cycles;
using osim::Kernel;
using osim::SimDisk;
using osim::Task;

// Per-probe CPU costs, in cycles.  The defaults reproduce both §5.2
// observations at once: the component decomposition (function calls :
// TSC reads : sort/store = 1.5% : 0.5% : 2.0% of system time, i.e.
// 75 : 25 : 100 cycles of the ~200-cycle total) and the ~40-cycle floor
// between the two TSC reads.  Part of the call overhead (returning from
// the pre hook, entering the post hook) and roughly half of each TSC read
// land *inside* the measured window, which is how both can be true.
struct InstrumentationCosts {
  // Function-call overhead of the pre/post hooks.
  Cycles call_outside_pre = 37;   // Entering the pre hook.
  Cycles call_inside_pre = 15;    // Returning from it, inside the window.
  Cycles call_inside_post = 15;   // Calling the post hook, inside.
  Cycles call_outside_post = 8;   // Returning from it.
  // TSC reads: about half of each read's cost sits inside the window.
  Cycles tsc_inside_pre = 5;
  Cycles tsc_inside_post = 5;
  Cycles tsc_outside = 15;
  // Bucket sort + store, after the second read.
  Cycles store = 100;

  Cycles CallTotal() const {
    return call_outside_pre + call_inside_pre + call_inside_post +
           call_outside_post;
  }
  Cycles TscTotal() const {
    return tsc_inside_pre + tsc_inside_post + tsc_outside;
  }
  Cycles Total() const { return CallTotal() + TscTotal() + store; }
  // The smallest value a probe can record (bucket 5 at the defaults).
  Cycles MeasuredFloor() const {
    return call_inside_pre + call_inside_post + tsc_inside_pre +
           tsc_inside_post;
  }

  Cycles InsidePre() const { return call_inside_pre + tsc_inside_pre; }
  Cycles InsidePost() const { return call_inside_post + tsc_inside_post; }
  Cycles OutsidePre() const { return call_outside_pre; }
  Cycles OutsidePost() const {
    return call_outside_post + tsc_outside + store;
  }
};

class SimProfiler : public ProfilerSink {
 public:
  explicit SimProfiler(Kernel* kernel, int resolution = 1)
      : kernel_(kernel),
        profiles_(resolution),
        resolution_(resolution),
        layered_(resolution) {}

  Kernel* kernel() const { return kernel_; }

  // --- ProfilerSink ------------------------------------------------------
  // Defaults to "fs" because SimProfiler usually attaches as the FoSgen-
  // style in-file-system instrumentation; scenarios that record at the
  // syscall boundary relabel it "user".
  const std::string& layer() const override { return layer_; }
  void set_layer(std::string layer) {
    layer_ = std::move(layer);
    component_ = ComponentForLayer(layer_);
  }
  int resolution() const override { return resolution_; }
  osprof::ProfileSet Collect() const override { return profiles_; }
  const osprof::LayeredProfileSet* CollectLayered() const override {
    return &layered_;
  }

  // The exact per-(op, bucket) decomposition recorded by Wrap (empty for
  // record-only consumers that never wrap).
  const osprof::LayeredProfileSet& layered() const { return layered_; }

  // When true, probes consume simulated CPU per `costs()` -- for overhead
  // experiments.  Off by default so behavioural profiles are undisturbed.
  void set_charge_overhead(bool charge) { charge_overhead_ = charge; }
  bool charge_overhead() const { return charge_overhead_; }
  InstrumentationCosts& costs() { return costs_; }

  // Starts splitting profiles into epochs of `epoch_cycles` (Figure 9).
  void EnableSampling(Cycles epoch_cycles);
  const osprof::SampledProfileSet* sampled() const { return sampled_.get(); }

  // Interns `op` and returns the handle instrumentation should cache at
  // attach time (constructor / SetProfiler).  Resolving is idempotent and
  // does not make the operation visible in collected profiles; handles
  // stay valid across Reset().
  osprof::ProbeHandle Resolve(std::string_view op);

  // Routes (latency, value) pairs of `op` into a ValueCorrelator
  // (Figure 8).  The correlator must outlive the profiler's use.
  void AttachCorrelator(std::string_view op, osprof::ValueCorrelator* c);

  // The hot record path: indexed load, bucket index, increment -- no
  // allocation, no string compare, no tree walk (ISSUE 3 / §5.2's
  // ~100-cycle sort-and-store budget).
  void Record(osprof::ProbeHandle op, Cycles latency) {
    profiles_.AddById(op.id(), latency);
    if (sampled_ != nullptr) {
      SampledRecord(op, latency);
    }
  }
  void RecordWithValue(osprof::ProbeHandle op, Cycles latency,
                       std::uint64_t value) {
    Record(op, latency);
    osprof::ValueCorrelator* c =
        correlators_[static_cast<std::size_t>(op.id())];
    if (c != nullptr) {
      c->Record(latency, value);
    }
  }

  // String-keyed convenience forms: thin resolve-then-dispatch wrappers
  // for call sites that fire rarely or haven't cached a handle.
  void Record(std::string_view op, Cycles latency) {
    Record(Resolve(op), latency);
  }
  void RecordWithValue(std::string_view op, Cycles latency,
                       std::uint64_t value) {
    RecordWithValue(Resolve(op), latency, value);
  }

  // Split form of Wrap for coroutine bodies that time themselves with
  // manual ReadTsc() windows around their co_awaits (the CIFS client):
  // BeginSpan opens a frame on the kernel's request context so waits are
  // attributed to the operation, and EndSpan records the latency exactly
  // like Record and pops the frame into the layered decomposition.  Both
  // are plain bookkeeping -- zero simulated time, profiles unchanged.
  // Calls must nest per simulated thread, like Wrap activations do.
  void BeginSpan(osprof::ProbeHandle op) {
    const int tid =
        kernel_->current() != nullptr ? kernel_->current()->id() : -1;
    if (tid >= 0) {
      kernel_->context().Push(tid, this, &profiles_.ops(), op.id(),
                              component_, kernel_->now());
    }
  }
  void EndSpan(osprof::ProbeHandle op, Cycles latency) {
    Record(op, latency);
    const int tid =
        kernel_->current() != nullptr ? kernel_->current()->id() : -1;
    if (tid >= 0) {
      RecordLayered(op, latency,
                    kernel_->context().Pop(tid, kernel_->now(), latency));
    }
  }

  // Wraps an operation coroutine with a latency probe:
  //
  //   co_return co_await profiler->Wrap(read_handle, ReadImpl(fd, n));
  //
  // Charges instrumentation CPU when charge_overhead() is on.  The probe
  // reads the simulated TSC of whatever CPU the thread is on at entry and
  // exit, so clock skew and migration behave as on real SMP (§3.4).
  template <typename T>
  Task<T> Wrap(osprof::ProbeHandle op, Task<T> inner) {
    // Open a span on the kernel's shared request context: the scheduler
    // and sync primitives attribute waits to it, the lock-order tracker
    // annotates edges from it, and popping it yields the exact layered
    // decomposition.  Plain bookkeeping -- zero simulated time.
    const int tid =
        kernel_->current() != nullptr ? kernel_->current()->id() : -1;
    if (tid >= 0) {
      kernel_->context().Push(tid, this, &profiles_.ops(), op.id(),
                              component_, kernel_->now());
    }
    if (charge_overhead_ && costs_.OutsidePre() > 0) {
      co_await kernel_->Cpu(costs_.OutsidePre());
    }
    const Cycles start = kernel_->ReadTsc();
    if (charge_overhead_ && costs_.InsidePre() > 0) {
      co_await kernel_->Cpu(costs_.InsidePre());
    }
    if constexpr (std::is_void_v<T>) {
      co_await std::move(inner);
      if (charge_overhead_ && costs_.InsidePost() > 0) {
        co_await kernel_->Cpu(costs_.InsidePost());
      }
      const Cycles end = kernel_->ReadTsc();
      if (charge_overhead_ && costs_.OutsidePost() > 0) {
        co_await kernel_->Cpu(costs_.OutsidePost());
      }
      const Cycles latency = end >= start ? end - start : 0;
      Record(op, latency);
      if (tid >= 0) {
        RecordLayered(op, latency,
                      kernel_->context().Pop(tid, kernel_->now(), latency));
      }
    } else {
      T result = co_await std::move(inner);
      if (charge_overhead_ && costs_.InsidePost() > 0) {
        co_await kernel_->Cpu(costs_.InsidePost());
      }
      const Cycles end = kernel_->ReadTsc();
      if (charge_overhead_ && costs_.OutsidePost() > 0) {
        co_await kernel_->Cpu(costs_.OutsidePost());
      }
      const Cycles latency = end >= start ? end - start : 0;
      Record(op, latency);
      if (tid >= 0) {
        RecordLayered(op, latency,
                      kernel_->context().Pop(tid, kernel_->now(), latency));
      }
      co_return std::move(result);
    }
  }

  // String-keyed Wrap: resolves then dispatches to the handle form.
  // Deliberately NOT a coroutine -- the name is consumed before the first
  // suspension, so a string_view argument cannot dangle.
  template <typename T>
  Task<T> Wrap(std::string_view op, Task<T> inner) {
    return Wrap(Resolve(op), std::move(inner));
  }

  // Like Wrap, but additionally records *`value` (read after the inner
  // operation completes) into the op's attached ValueCorrelator -- the
  // §3.1 "direct profile and value correlation" hook.  `value` must stay
  // valid until the inner operation finishes (typically a local in the
  // caller's coroutine frame that the inner operation fills in).
  template <typename T>
  Task<T> WrapWithValue(osprof::ProbeHandle op, Task<T> inner,
                        const std::uint64_t* value) {
    const int tid =
        kernel_->current() != nullptr ? kernel_->current()->id() : -1;
    if (tid >= 0) {
      kernel_->context().Push(tid, this, &profiles_.ops(), op.id(),
                              component_, kernel_->now());
    }
    if (charge_overhead_ && costs_.OutsidePre() > 0) {
      co_await kernel_->Cpu(costs_.OutsidePre());
    }
    const Cycles start = kernel_->ReadTsc();
    if (charge_overhead_ && costs_.InsidePre() > 0) {
      co_await kernel_->Cpu(costs_.InsidePre());
    }
    T result = co_await std::move(inner);
    if (charge_overhead_ && costs_.InsidePost() > 0) {
      co_await kernel_->Cpu(costs_.InsidePost());
    }
    const Cycles end = kernel_->ReadTsc();
    if (charge_overhead_ && costs_.OutsidePost() > 0) {
      co_await kernel_->Cpu(costs_.OutsidePost());
    }
    const Cycles latency = end >= start ? end - start : 0;
    RecordWithValue(op, latency, *value);
    if (tid >= 0) {
      RecordLayered(op, latency,
                    kernel_->context().Pop(tid, kernel_->now(), latency));
    }
    co_return std::move(result);
  }

  template <typename T>
  Task<T> WrapWithValue(std::string_view op, Task<T> inner,
                        const std::uint64_t* value) {
    return WrapWithValue(Resolve(op), std::move(inner), value);
  }

  const osprof::ProfileSet& profiles() const { return profiles_; }

  // Clears collected data (not configuration).  Keeps the op table, so
  // every previously resolved ProbeHandle stays valid and continues to
  // index the same operation.
  void Reset() override;

 private:
  // Cold path of Record when sampling is enabled: the per-op sampled slot
  // is looked up by name once and cached by OpId thereafter.
  void SampledRecord(osprof::ProbeHandle op, Cycles latency);

  // Records a popped span's decomposition under the op's own latency
  // bucket; slots are looked up by name once and cached by OpId.
  void RecordLayered(osprof::ProbeHandle op, Cycles latency,
                     const osim::RequestContext::PopResult& span);

  // The component class a layer tag's spans charge to their parents:
  // "fs" -> kLayerFs, "driver" -> kLayerDriver, "cifs"/"nfs"/"net" ->
  // kLayerNet, anything else ("user") is transparent (kLayerSelf).
  static osprof::LayerComponent ComponentForLayer(const std::string& layer);

  Kernel* kernel_;
  std::string layer_ = "fs";
  osprof::LayerComponent component_ = osprof::kLayerFs;
  osprof::ProfileSet profiles_;
  int resolution_;
  bool charge_overhead_ = false;
  InstrumentationCosts costs_;
  std::unique_ptr<osprof::SampledProfileSet> sampled_;
  osprof::LayeredProfileSet layered_;
  // Indexed by OpId, parallel to profiles_.ops(); grown by Resolve().
  std::vector<osprof::ValueCorrelator*> correlators_;
  std::vector<osprof::SampledProfile*> sampled_slots_;
  std::vector<osprof::LayeredProfile*> layered_slots_;
  Cycles sampling_epoch_ = 0;
};

// Driver-level profiler: profiles every disk request's total latency under
// "disk_read" / "disk_write", and the queueing component separately under
// "disk_read_queue" / "disk_write_queue".
class DriverProfiler : public ProfilerSink {
 public:
  DriverProfiler(Kernel* kernel, SimDisk* disk, int resolution = 1);

  const osprof::ProfileSet& profiles() const { return profiler_.profiles(); }
  SimProfiler& profiler() { return profiler_; }

  // --- ProfilerSink ------------------------------------------------------
  const std::string& layer() const override { return layer_; }
  int resolution() const override { return profiler_.resolution(); }
  osprof::ProfileSet Collect() const override { return profiler_.Collect(); }
  // Empty by construction: the disk observer records completed requests
  // from kernel context, outside any request span.
  const osprof::LayeredProfileSet* CollectLayered() const override {
    return profiler_.CollectLayered();
  }
  void Reset() override { profiler_.Reset(); }

 private:
  std::string layer_ = "driver";
  SimProfiler profiler_;
};

}  // namespace osprofilers

#endif  // OSPROF_SRC_PROFILERS_SIM_PROFILER_H_
