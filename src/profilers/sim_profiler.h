// Profilers for the simulated OS (Figure 2's three layers).
//
// SimProfiler is the aggregate-stats front end used by all in-simulation
// instrumentation: operations record their latency (measured with the
// simulated per-CPU TSC) into a ProfileSet, optionally into a sampled
// (time-sliced) profile set, and optionally into per-peak value
// correlators (§3.1's "direct profile and value correlation").
//
// Instrumentation cost model (§5.2): when `charge_overhead` is set, every
// probe consumes simulated CPU exactly like the paper's FSPROF_PRE/POST
// macros: a function-call cost outside the measured window, half the TSC
// read cost inside it on each side (so the measured latency has the same
// ~40-cycle floor the paper reports), and the bucket-sort/store cost after
// the second read.
//
// DriverProfiler attaches to a SimDisk and profiles the request stream at
// the driver level, where write and asynchronous I/O latencies are visible
// (the paper instruments a SCSI driver for the same reason).

#ifndef OSPROF_SRC_PROFILERS_SIM_PROFILER_H_
#define OSPROF_SRC_PROFILERS_SIM_PROFILER_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/correlate.h"
#include "src/core/op_table.h"
#include "src/core/profile.h"
#include "src/core/sampling.h"
#include "src/profilers/profile_shards.h"
#include "src/profilers/profiler_sink.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/sim/task.h"

namespace osprofilers {

using osim::Cycles;
using osim::Kernel;
using osim::SimDisk;
using osim::Task;

// Per-probe CPU costs, in cycles.  The defaults reproduce both §5.2
// observations at once: the component decomposition (function calls :
// TSC reads : sort/store = 1.5% : 0.5% : 2.0% of system time, i.e.
// 75 : 25 : 100 cycles of the ~200-cycle total) and the ~40-cycle floor
// between the two TSC reads.  Part of the call overhead (returning from
// the pre hook, entering the post hook) and roughly half of each TSC read
// land *inside* the measured window, which is how both can be true.
struct InstrumentationCosts {
  // Function-call overhead of the pre/post hooks.
  Cycles call_outside_pre = 37;   // Entering the pre hook.
  Cycles call_inside_pre = 15;    // Returning from it, inside the window.
  Cycles call_inside_post = 15;   // Calling the post hook, inside.
  Cycles call_outside_post = 8;   // Returning from it.
  // TSC reads: about half of each read's cost sits inside the window.
  Cycles tsc_inside_pre = 5;
  Cycles tsc_inside_post = 5;
  Cycles tsc_outside = 15;
  // Bucket sort + store, after the second read.
  Cycles store = 100;

  Cycles CallTotal() const {
    return call_outside_pre + call_inside_pre + call_inside_post +
           call_outside_post;
  }
  Cycles TscTotal() const {
    return tsc_inside_pre + tsc_inside_post + tsc_outside;
  }
  Cycles Total() const { return CallTotal() + TscTotal() + store; }
  // The smallest value a probe can record (bucket 5 at the defaults).
  Cycles MeasuredFloor() const {
    return call_inside_pre + call_inside_post + tsc_inside_pre +
           tsc_inside_post;
  }

  Cycles InsidePre() const { return call_inside_pre + tsc_inside_pre; }
  Cycles InsidePost() const { return call_inside_post + tsc_inside_post; }
  Cycles OutsidePre() const { return call_outside_pre; }
  Cycles OutsidePost() const {
    return call_outside_post + tsc_outside + store;
  }
};

template <typename T>
class WrapAwaitable;

class SimProfiler : public ProfilerSink {
 public:
  explicit SimProfiler(Kernel* kernel, int resolution = 1)
      : kernel_(kernel),
        profiles_(resolution),
        resolution_(resolution),
        layered_(resolution) {
    span_owner_.ops = &profiles_.ops();
    span_owner_.cls = component_;
  }

  Kernel* kernel() const { return kernel_; }

  // --- ProfilerSink ------------------------------------------------------
  // Defaults to "fs" because SimProfiler usually attaches as the FoSgen-
  // style in-file-system instrumentation; scenarios that record at the
  // syscall boundary relabel it "user".
  const std::string& layer() const override { return layer_; }
  void set_layer(std::string layer) {
    layer_ = std::move(layer);
    component_ = ComponentForLayer(layer_);
    span_owner_.cls = component_;
  }
  int resolution() const override { return resolution_; }
  using ProfilerSink::Collect;
  // With sharding enabled, collection folds the shards' post-epoch residue
  // into the returned copies without disturbing the live shards (Collect is
  // an observer): totals are identical to unsharded recording because shard
  // merging is pure integer addition.
  Collected Collect(const CollectRequest& request) const override {
    Collected out;
    if (request.profiles) {
      out.profiles = profiles_;
      if (shards_raw_ != nullptr) {
        shards_raw_->MergeResidueInto(&out.profiles);
      }
    }
    if (request.layered) {
      if (shards_raw_ != nullptr) {
        layered_snapshot_ = layered_;
        shards_raw_->MergeLayeredResidueInto(&layered_snapshot_);
        out.layered = &layered_snapshot_;
      } else {
        out.layered = &layered_;
      }
    }
    return out;
  }

  // The exact per-(op, bucket) decomposition recorded by Wrap (empty for
  // record-only consumers that never wrap).
  const osprof::LayeredProfileSet& layered() const { return layered_; }

  // When true, probes consume simulated CPU per `costs()` -- for overhead
  // experiments.  Off by default so behavioural profiles are undisturbed.
  void set_charge_overhead(bool charge) { charge_overhead_ = charge; }
  bool charge_overhead() const { return charge_overhead_; }
  InstrumentationCosts& costs() { return costs_; }

  // Starts splitting profiles into epochs of `epoch_cycles` (Figure 9).
  void EnableSampling(Cycles epoch_cycles);
  const osprof::SampledProfileSet* sampled() const { return sampled_.get(); }

  // Switches recording to per-CPU shards (one ProfileSet/LayeredProfileSet
  // pair per simulated CPU, paper §3.4's per-CPU update policy at arena
  // scale).  A task records only into the shard of the CPU it is currently
  // running on -- lock-free by construction -- and shards fold into the
  // base sets every `epoch_cycles` of simulated time (0 = only at
  // collection).  Because the fold is the associative/commutative integer
  // Merge, collected profiles are byte-identical to unsharded recording
  // for any CPU count and any epoch length.  Safe to call after probes
  // were resolved; idempotent reconfiguration replaces the shards.
  void EnableSharding(Cycles epoch_cycles = 0);
  const ShardedProfileArena* shards() const { return shards_raw_; }

  // Folds all shard residue into the base sets now (epoch boundaries do
  // this automatically; tests and end-of-run paths can force it).
  void FlushShards() {
    if (shards_raw_ != nullptr) {
      shards_raw_->FlushShards();
    }
  }

  // Interns `op` and returns the handle instrumentation should cache at
  // attach time (constructor / SetProfiler).  Resolving is idempotent and
  // does not make the operation visible in collected profiles; handles
  // stay valid across Reset().
  osprof::ProbeHandle Resolve(std::string_view op);

  // Routes (latency, value) pairs of `op` into a ValueCorrelator
  // (Figure 8).  The correlator must outlive the profiler's use.
  void AttachCorrelator(std::string_view op, osprof::ValueCorrelator* c);

  // The hot record path: indexed load, bucket index, increment -- no
  // allocation, no string compare, no tree walk (ISSUE 3 / §5.2's
  // ~100-cycle sort-and-store budget).
  void Record(osprof::ProbeHandle op, Cycles latency) {
    if (shards_raw_ != nullptr) {
      MaybeFlushEpoch();
      shards_raw_->AddById(CurrentShard(), op.id(), latency);
    } else {
      profiles_.AddById(op.id(), latency);
    }
    if (sampled_ != nullptr) {
      SampledRecord(op, latency);
    }
  }
  void RecordWithValue(osprof::ProbeHandle op, Cycles latency,
                       std::uint64_t value) {
    Record(op, latency);
    osprof::ValueCorrelator* c =
        correlators_[static_cast<std::size_t>(op.id())];
    if (c != nullptr) {
      c->Record(latency, value);
    }
  }

  // Split form of Wrap for coroutine bodies that time themselves with
  // manual ReadTsc() windows around their co_awaits (the CIFS client):
  // BeginSpan opens a frame on the kernel's request context so waits are
  // attributed to the operation, and EndSpan records the latency exactly
  // like Record and pops the frame into the layered decomposition.  Both
  // are plain bookkeeping -- zero simulated time, profiles unchanged.
  // Calls must nest per simulated thread, like Wrap activations do.
  void BeginSpan(osprof::ProbeHandle op) {
    const int tid =
        kernel_->current() != nullptr ? kernel_->current()->id() : -1;
    if (tid >= 0) {
      kernel_->context().Push(tid, &span_owner_, op.id(), kernel_->now());
    }
  }
  void EndSpan(osprof::ProbeHandle op, Cycles latency) {
    const int tid =
        kernel_->current() != nullptr ? kernel_->current()->id() : -1;
    FinishSpan(op, tid, latency, kernel_->now());
  }

  // Wraps an operation coroutine with a latency probe:
  //
  //   co_return co_await profiler->Wrap(read_handle, ReadImpl(fd, n));
  //
  // Returns an awaitable, not a Task: the probe itself allocates no
  // coroutine frame.  Awaiting it opens a span on the kernel's shared
  // request context, starts `inner` in place, and runs the record/pop
  // bookkeeping when the inner operation completes -- all plain C++
  // between awaits, zero simulated time.  Charges instrumentation CPU
  // when charge_overhead() is on (that path routes through a coroutine:
  // burning simulated CPU requires co_awaits).  The probe reads the
  // simulated TSC of whatever CPU the thread is on at entry and exit, so
  // clock skew and migration behave as on real SMP (§3.4).
  template <typename T>
  WrapAwaitable<T> Wrap(osprof::ProbeHandle op, Task<T> inner) {
    return WrapAwaitable<T>(this, op, std::move(inner));
  }

  // Like Wrap, but additionally records *`value` (read after the inner
  // operation completes) into the op's attached ValueCorrelator -- the
  // §3.1 "direct profile and value correlation" hook.  `value` must stay
  // valid until the inner operation finishes (typically a local in the
  // caller's coroutine frame that the inner operation fills in).
  template <typename T>
  Task<T> WrapWithValue(osprof::ProbeHandle op, Task<T> inner,
                        const std::uint64_t* value) {
    const int tid =
        kernel_->current() != nullptr ? kernel_->current()->id() : -1;
    const osprof::ClockSample entry = kernel_->SampleClocks();
    if (tid >= 0) {
      kernel_->context().Push(tid, &span_owner_, op.id(), entry.now);
    }
    Cycles start = entry.tsc;
    if (charge_overhead_) {
      if (costs_.OutsidePre() > 0) {
        co_await kernel_->Cpu(costs_.OutsidePre());
        start = kernel_->ReadTsc();
      }
      if (costs_.InsidePre() > 0) {
        co_await kernel_->Cpu(costs_.InsidePre());
      }
    }
    T result = co_await std::move(inner);
    osprof::ClockSample exit = kernel_->SampleClocks();
    if (charge_overhead_) {
      if (costs_.InsidePost() > 0) {
        co_await kernel_->Cpu(costs_.InsidePost());
      }
      exit = kernel_->SampleClocks();
      if (costs_.OutsidePost() > 0) {
        co_await kernel_->Cpu(costs_.OutsidePost());
        exit.now = kernel_->now();
      }
    }
    const Cycles latency = exit.tsc >= start ? exit.tsc - start : 0;
    FinishSpan(op, tid, latency, exit.now);
    osprof::ValueCorrelator* c =
        correlators_[static_cast<std::size_t>(op.id())];
    if (c != nullptr) {
      c->Record(latency, *value);
    }
    co_return std::move(result);
  }

  const osprof::ProfileSet& profiles() const { return profiles_; }

  // Clears collected data (not configuration).  Keeps the op table, so
  // every previously resolved ProbeHandle stays valid and continues to
  // index the same operation.
  void Reset() override;

 private:
  template <typename U>
  friend class WrapAwaitable;

  // The overhead-charging Wrap body (§5.2): every burn is a co_await, so
  // this variant is a real coroutine.  WrapAwaitable substitutes it for
  // the payload when charge_overhead() is on.
  //
  // Clocks are sampled in batches (one ClockSample per side instead of a
  // now() plus a ReadTsc()); the TSC is re-read after each burn so the
  // measured window is exactly the uncharged one plus the inside costs,
  // cycle for cycle.
  template <typename T>
  Task<T> WrapCharged(osprof::ProbeHandle op, Task<T> inner) {
    const int tid =
        kernel_->current() != nullptr ? kernel_->current()->id() : -1;
    const osprof::ClockSample entry = kernel_->SampleClocks();
    if (tid >= 0) {
      kernel_->context().Push(tid, &span_owner_, op.id(), entry.now);
    }
    Cycles start = entry.tsc;
    if (costs_.OutsidePre() > 0) {
      co_await kernel_->Cpu(costs_.OutsidePre());
      start = kernel_->ReadTsc();
    }
    if (costs_.InsidePre() > 0) {
      co_await kernel_->Cpu(costs_.InsidePre());
    }
    if constexpr (std::is_void_v<T>) {
      co_await std::move(inner);
      if (costs_.InsidePost() > 0) {
        co_await kernel_->Cpu(costs_.InsidePost());
      }
      osprof::ClockSample exit = kernel_->SampleClocks();
      if (costs_.OutsidePost() > 0) {
        co_await kernel_->Cpu(costs_.OutsidePost());
        exit.now = kernel_->now();
      }
      const Cycles latency = exit.tsc >= start ? exit.tsc - start : 0;
      FinishSpan(op, tid, latency, exit.now);
    } else {
      T result = co_await std::move(inner);
      if (costs_.InsidePost() > 0) {
        co_await kernel_->Cpu(costs_.InsidePost());
      }
      osprof::ClockSample exit = kernel_->SampleClocks();
      if (costs_.OutsidePost() > 0) {
        co_await kernel_->Cpu(costs_.OutsidePost());
        exit.now = kernel_->now();
      }
      const Cycles latency = exit.tsc >= start ? exit.tsc - start : 0;
      FinishSpan(op, tid, latency, exit.now);
      co_return std::move(result);
    }
  }

  // Cold path of Record when sampling is enabled: the per-op sampled slot
  // is looked up by name once and cached by OpId thereafter.
  void SampledRecord(osprof::ProbeHandle op, Cycles latency);

  // Records a popped span's decomposition under the op's own latency
  // bucket, so each peak reads as a stack of components.  Inline so the
  // PopResult flows straight from Pop into the slot without a trip
  // through memory; the first sighting of an op fills its cached slot
  // out of line.
  void RecordLayered(osprof::ProbeHandle op, int bucket,
                     const osim::RequestContext::PopResult& span) {
    osprof::LayeredProfile* slot =
        layered_slots_[static_cast<std::size_t>(op.id())];
    if (slot == nullptr) {
      slot = LayeredSlot(op);
    }
    if (span.self_only) {
      slot->AddSelfOnly(bucket,
                        span.components[osprof::kLayerSelf]);
    } else {
      slot->Add(bucket, span.components);
    }
  }

  // Cold path of RecordLayered: resolves and caches the op's slot.
  osprof::LayeredProfile* LayeredSlot(osprof::ProbeHandle op);

  // Shared span-exit tail of Wrap / WrapWithValue / EndSpan: one
  // BucketIndex computation feeds both the flat histogram and the layered
  // decomposition, and the frame pops only when a span was actually
  // opened (tid >= 0).
  void FinishSpan(osprof::ProbeHandle op, int tid, Cycles latency,
                  Cycles pop_now) {
    const int bucket = osprof::BucketIndex(latency, resolution_);
    if (shards_raw_ != nullptr) {
      ShardedFinishSpan(op, tid, latency, pop_now, bucket);
      return;
    }
    profiles_.AddById(op.id(), bucket, latency);
    if (sampled_ != nullptr) {
      SampledRecord(op, latency);
    }
    if (tid >= 0) {
      RecordLayered(op, bucket,
                    kernel_->context().Pop(tid, pop_now, latency));
    }
  }

  // FinishSpan with per-CPU sharding on: identical bookkeeping, but the
  // flat increment and the layered decomposition land in the current
  // CPU's private shard.  Out of the unsharded path's way so goldens run
  // the exact code they always did.
  void ShardedFinishSpan(osprof::ProbeHandle op, int tid, Cycles latency,
                         Cycles pop_now, int bucket) {
    MaybeFlushEpoch();
    const int shard = CurrentShard();
    shards_raw_->AddById(shard, op.id(), bucket, latency);
    if (sampled_ != nullptr) {
      SampledRecord(op, latency);
    }
    if (tid >= 0) {
      const osim::RequestContext::PopResult span =
          kernel_->context().Pop(tid, pop_now, latency);
      if (span.self_only) {
        shards_raw_->AddLayeredSelfOnly(shard, op.id(), bucket,
                                        span.components[osprof::kLayerSelf]);
      } else {
        shards_raw_->AddLayered(shard, op.id(), bucket, span.components);
      }
    }
  }

  // The shard a record lands in: the current thread's CPU, or shard 0 for
  // records made from kernel context (e.g. DriverProfiler's completion
  // observer firing during interrupt handling).
  int CurrentShard() const {
    const osim::SimThread* t = kernel_->current();
    if (t == nullptr) {
      return 0;
    }
    const int cpu = t->cpu();
    return cpu >= 0 ? cpu : 0;
  }

  // Epoch boundary check, run before every sharded record: folding at the
  // deadline (rather than on a timer thread) keeps the merge on the single
  // real thread and adds one compare to the hot path.
  void MaybeFlushEpoch() {
    if (shard_epoch_ > 0 && kernel_->now() >= next_epoch_flush_) {
      shards_raw_->FlushShards();
      next_epoch_flush_ = kernel_->now() + shard_epoch_;
    }
  }

  // The component class a layer tag's spans charge to their parents:
  // "fs" -> kLayerFs, "driver" -> kLayerDriver, "cifs"/"nfs"/"net" ->
  // kLayerNet, anything else ("user") is transparent (kLayerSelf).
  static osprof::LayerComponent ComponentForLayer(const std::string& layer);

  Kernel* kernel_;
  std::string layer_ = "fs";
  osprof::LayerComponent component_ = osprof::kLayerFs;
  // Pushed with every span frame; identity, op table, and charge class
  // in one pointer (see osim::SpanOwner).
  osim::SpanOwner span_owner_;
  osprof::ProfileSet profiles_;
  int resolution_;
  bool charge_overhead_ = false;
  InstrumentationCosts costs_;
  std::unique_ptr<osprof::SampledProfileSet> sampled_;
  osprof::LayeredProfileSet layered_;
  // Indexed by OpId, parallel to profiles_.ops(); grown by Resolve().
  std::vector<osprof::ValueCorrelator*> correlators_;
  std::vector<osprof::SampledProfile*> sampled_slots_;
  std::vector<osprof::LayeredProfile*> layered_slots_;
  Cycles sampling_epoch_ = 0;
  // Per-CPU sharding (EnableSharding): null means the classic unsharded
  // paths above run untouched.  shards_raw_ mirrors shards_.get() so the
  // hot-path branch is one pointer load, no unique_ptr indirection.
  std::unique_ptr<ShardedProfileArena> shards_;
  ShardedProfileArena* shards_raw_ = nullptr;
  Cycles shard_epoch_ = 0;
  Cycles next_epoch_flush_ = 0;
  // Collect()-time scratch: base layered plus shard residue, handed out as
  // Collected.layered ("valid until the next Reset()" per the sink
  // contract -- the snapshot lives until the next Collect or Reset).
  mutable osprof::LayeredProfileSet layered_snapshot_;
};

// The awaitable returned by SimProfiler::Wrap.  The uncharged fast path
// allocates nothing: await_ready does the span-entry bookkeeping (clock
// sample, frame push) and await_suspend starts the inner task by symmetric
// transfer -- one indirect jump, no extra resume/done round trip -- so the
// first inner instruction runs with the span already open.  await_resume
// records the latency and pops the frame once the inner task has
// completed.  When overhead charging is on, the payload is replaced by the
// WrapCharged coroutine (which does its own bookkeeping) and awaited like
// any Task.
//
// The execution order is exactly the old coroutine Wrap's: entry
// bookkeeping before the inner operation's first instruction, exit
// bookkeeping after its last at the same simulated instant, and an
// escaping exception skips the record/pop (the span stays open), so
// committed goldens are byte-identical.
template <typename T>
class [[nodiscard]] WrapAwaitable {
 public:
  WrapAwaitable(SimProfiler* profiler, osprof::ProbeHandle op, Task<T> inner)
      : profiler_(profiler), op_(op), inner_(std::move(inner)) {}

  [[gnu::always_inline]] inline bool await_ready() {
    if (profiler_->charge_overhead_) {
      inner_ = profiler_->WrapCharged(op_, std::move(inner_));
      charged_ = true;
      return false;  // The charged wrapper does its own bookkeeping.
    }
    Kernel* kernel = profiler_->kernel_;
    tid_ = kernel->current() != nullptr ? kernel->current()->id() : -1;
    const osprof::ClockSample entry = kernel->SampleClocks();
    if (tid_ >= 0) {
      kernel->context().Push(tid_, &profiler_->span_owner_, op_.id(),
                             entry.now);
    }
    start_ = entry.tsc;
    return false;
  }

  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<> awaiting) noexcept {
    const auto handle = inner_.handle();
    handle.promise().continuation = awaiting;
    // Symmetric transfer into the payload (charged or not); its final
    // awaiter transfers straight back to `awaiting` on completion.
    return handle;
  }

  [[gnu::always_inline]] inline T await_resume() {
    auto& promise = inner_.handle().promise();
    if (promise.exception) {
      std::rethrow_exception(promise.exception);
    }
    if (!charged_) {
      Kernel* kernel = profiler_->kernel_;
      const osprof::ClockSample exit = kernel->SampleClocks();
      const Cycles latency = exit.tsc >= start_ ? exit.tsc - start_ : 0;
      profiler_->FinishSpan(op_, tid_, latency, exit.now);
    }
    if constexpr (!std::is_void_v<T>) {
      return std::move(inner_.handle().promise().value);
    }
  }

 private:
  SimProfiler* profiler_;
  osprof::ProbeHandle op_;
  Task<T> inner_;
  int tid_ = -1;
  Cycles start_ = 0;
  bool charged_ = false;
};

// Driver-level profiler: profiles every disk request's total latency under
// "disk_read" / "disk_write", and the queueing component separately under
// "disk_read_queue" / "disk_write_queue".
class DriverProfiler : public ProfilerSink {
 public:
  DriverProfiler(Kernel* kernel, SimDisk* disk, int resolution = 1);

  const osprof::ProfileSet& profiles() const { return profiler_.profiles(); }
  SimProfiler& profiler() { return profiler_; }

  // --- ProfilerSink ------------------------------------------------------
  const std::string& layer() const override { return layer_; }
  int resolution() const override { return profiler_.resolution(); }
  using ProfilerSink::Collect;
  // The layered set is empty by construction: the disk observer records
  // completed requests from kernel context, outside any request span.
  Collected Collect(const CollectRequest& request) const override {
    return profiler_.Collect(request);
  }
  void Reset() override { profiler_.Reset(); }

 private:
  std::string layer_ = "driver";
  SimProfiler profiler_;
};

}  // namespace osprofilers

#endif  // OSPROF_SRC_PROFILERS_SIM_PROFILER_H_
