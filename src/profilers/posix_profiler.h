// The real-OS user-level profiler: POSIX syscall interposition.
//
// This is the paper's user-level profiling path, unchanged in spirit: each
// system call is replaced by a wrapper that reads the TSC, executes the
// call, reads the TSC again, and sorts the latency into a log2 bucket
// (paper §4, "POSIX user-level profilers").  Because only the interface is
// instrumented, the kernel runs unmodified; the per-call overhead is two
// TSC reads and a bucket store.
//
// Used by examples/real_syscalls.cpp to profile the host OS.  Tests only
// assert mechanics (counts, op names), never latency shapes -- those are
// host-dependent.

#ifndef OSPROF_SRC_PROFILERS_POSIX_PROFILER_H_
#define OSPROF_SRC_PROFILERS_POSIX_PROFILER_H_

#include <sys/stat.h>
#include <sys/types.h>

#include <cstddef>
#include <string>
#include <string_view>

#include "src/core/clock.h"
#include "src/core/op_table.h"
#include "src/core/profile.h"
#include "src/profilers/profiler_sink.h"

namespace osprofilers {

class PosixProfiler : public ProfilerSink {
 public:
  explicit PosixProfiler(int resolution = 1)
      : profiles_(resolution), resolution_(resolution) {
    // Pre-resolve every syscall probe once, here, so the wrappers never
    // touch a string-keyed lookup on the measured path.
    open_ = Resolve("open");
    read_ = Resolve("read");
    write_ = Resolve("write");
    llseek_ = Resolve("llseek");
    close_ = Resolve("close");
    stat_ = Resolve("stat");
    fsync_ = Resolve("fsync");
    unlink_ = Resolve("unlink");
    mkdir_ = Resolve("mkdir");
  }

  // --- ProfilerSink ------------------------------------------------------
  const std::string& layer() const override { return layer_; }
  int resolution() const override { return resolution_; }
  using ProfilerSink::Collect;
  // No layered decomposition: there is no simulated kernel underneath to
  // attribute waits, so only the flat profiles are collectable.
  Collected Collect(const CollectRequest& request) const override {
    Collected out;
    if (request.profiles) {
      out.profiles = profiles_;
    }
    return out;
  }
  // Clears counts in place; pre-resolved handles stay valid.
  void Reset() override { profiles_.ClearCounts(); }

  // Interns `op` and returns a cacheable probe handle (survives Reset()).
  osprof::ProbeHandle Resolve(std::string_view op) {
    return profiles_.Resolve(op);
  }

  // Instrumented wrappers.  Same return values and errno behaviour as the
  // raw syscalls; the measurement covers the call itself.
  int Open(const std::string& path, int flags);
  int Open(const std::string& path, int flags, mode_t mode);
  long Read(int fd, void* buf, std::size_t count);
  long Write(int fd, const void* buf, std::size_t count);
  long Lseek(int fd, long offset, int whence);
  int Close(int fd);
  int Stat(const std::string& path, struct stat* out);
  int Fsync(int fd);
  int Unlink(const std::string& path);
  int Mkdir(const std::string& path, mode_t mode);

  const osprof::ProfileSet& profiles() const { return profiles_; }

  // Measures a user-supplied callable under a pre-resolved handle; the
  // record after the second TSC read is a bucket store, nothing else.
  template <typename Fn>
  auto Measure(osprof::ProbeHandle op, Fn&& fn) -> decltype(fn()) {
    const osprof::Cycles start = osprof::ReadTsc();
    auto result = fn();
    const osprof::Cycles end = osprof::ReadTsc();
    profiles_.AddById(op.id(), end >= start ? end - start : 0);
    return result;
  }

  // String-keyed convenience form (for workloads whose interesting unit is
  // larger than one syscall): resolve, then dispatch.
  template <typename Fn>
  auto Measure(std::string_view op, Fn&& fn) -> decltype(fn()) {
    return Measure(Resolve(op), std::forward<Fn>(fn));
  }

 private:
  std::string layer_ = "posix";
  osprof::ProfileSet profiles_;
  int resolution_;
  // Handles for the instrumented wrappers, resolved at construction.
  osprof::ProbeHandle open_, read_, write_, llseek_, close_, stat_, fsync_,
      unlink_, mkdir_;
};

}  // namespace osprofilers

#endif  // OSPROF_SRC_PROFILERS_POSIX_PROFILER_H_
