// The real-OS user-level profiler: POSIX syscall interposition.
//
// This is the paper's user-level profiling path, unchanged in spirit: each
// system call is replaced by a wrapper that reads the TSC, executes the
// call, reads the TSC again, and sorts the latency into a log2 bucket
// (paper §4, "POSIX user-level prolers").  Because only the interface is
// instrumented, the kernel runs unmodified; the per-call overhead is two
// TSC reads and a bucket store.
//
// Used by examples/real_syscalls.cpp to profile the host OS.  Tests only
// assert mechanics (counts, op names), never latency shapes -- those are
// host-dependent.

#ifndef OSPROF_SRC_PROFILERS_POSIX_PROFILER_H_
#define OSPROF_SRC_PROFILERS_POSIX_PROFILER_H_

#include <sys/stat.h>
#include <sys/types.h>

#include <cstddef>
#include <string>

#include "src/core/clock.h"
#include "src/core/profile.h"
#include "src/profilers/profiler_sink.h"

namespace osprofilers {

class PosixProfiler : public ProfilerSink {
 public:
  explicit PosixProfiler(int resolution = 1)
      : profiles_(resolution), resolution_(resolution) {}

  // --- ProfilerSink ------------------------------------------------------
  const std::string& layer() const override { return layer_; }
  int resolution() const override { return resolution_; }
  osprof::ProfileSet Collect() const override { return profiles_; }
  void Reset() override { profiles_ = osprof::ProfileSet(resolution_); }

  // Instrumented wrappers.  Same return values and errno behaviour as the
  // raw syscalls; the measurement covers the call itself.
  int Open(const std::string& path, int flags);
  int Open(const std::string& path, int flags, mode_t mode);
  long Read(int fd, void* buf, std::size_t count);
  long Write(int fd, const void* buf, std::size_t count);
  long Lseek(int fd, long offset, int whence);
  int Close(int fd);
  int Stat(const std::string& path, struct stat* out);
  int Fsync(int fd);
  int Unlink(const std::string& path);
  int Mkdir(const std::string& path, mode_t mode);

  const osprof::ProfileSet& profiles() const { return profiles_; }
  [[deprecated(
      "direct ProfileSet& plumbing is deprecated; collect snapshots via "
      "the ProfilerSink interface (Collect())")]] osprof::ProfileSet&
  mutable_profiles() {
    return profiles_;
  }

  // Measures a user-supplied callable under an operation name (for
  // workloads whose interesting unit is larger than one syscall).
  template <typename Fn>
  auto Measure(const std::string& op, Fn&& fn) -> decltype(fn()) {
    const osprof::Cycles start = osprof::ReadTsc();
    auto result = fn();
    const osprof::Cycles end = osprof::ReadTsc();
    profiles_.Add(op, end >= start ? end - start : 0);
    return result;
  }

 private:
  std::string layer_ = "posix";
  osprof::ProfileSet profiles_;
  int resolution_;
};

}  // namespace osprofilers

#endif  // OSPROF_SRC_PROFILERS_POSIX_PROFILER_H_
