#include "src/profilers/callgraph_profiler.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/core/clock.h"

namespace osprofilers {

void CallGraphProfiler::Reset() {
  for (const auto& [tid, stack] : stacks_) {
    if (!stack.empty()) {
      throw std::logic_error(
          "CallGraphProfiler::Reset with operations still in flight");
    }
  }
  flat_ = osprof::ProfileSet(resolution_);
  edges_ = osprof::ProfileSet(1);
  stacks_.clear();
  child_time_.clear();
  child_totals_.clear();
}

int CallGraphProfiler::CurrentThreadId() const {
  const osim::SimThread* t = kernel_->current();
  if (t == nullptr) {
    throw std::logic_error("CallGraphProfiler used outside thread context");
  }
  return t->id();
}

void CallGraphProfiler::Push(int tid, const std::string& op) {
  (void)op;
  stacks_[tid].push_back(op);
  child_time_[tid].push_back(0);
}

void CallGraphProfiler::Pop(int tid, const std::string& op,
                            osim::Cycles latency) {
  std::vector<std::string>& stack = stacks_[tid];
  std::vector<osim::Cycles>& child = child_time_[tid];
  if (stack.empty() || stack.back() != op) {
    throw std::logic_error("CallGraphProfiler: mismatched Pop for " + op);
  }
  stack.pop_back();
  const osim::Cycles my_children = child.back();
  child.pop_back();
  child_totals_[op] += my_children;

  flat_.Add(op, latency);
  const std::string caller = stack.empty() ? "-" : stack.back();
  edges_.Add(caller + "->" + op, latency);
  if (!child.empty()) {
    child.back() += latency;  // My whole latency is my caller's child time.
  }
}

std::vector<CallGraphProfiler::EdgeSummary>
CallGraphProfiler::EdgeSummaries() const {
  std::vector<EdgeSummary> out;
  for (const auto& [key, profile] : edges_) {
    const auto arrow = key.find("->");
    EdgeSummary e;
    e.caller = key.substr(0, arrow);
    e.callee = key.substr(arrow + 2);
    e.calls = profile.total_operations();
    e.total_latency = profile.total_latency();
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const EdgeSummary& a, const EdgeSummary& b) {
              return a.total_latency > b.total_latency;
            });
  return out;
}

std::string CallGraphProfiler::Report(double cpu_hz) const {
  std::ostringstream os;
  os << "call-graph profile (gprof-style)\n";
  os << "  operation        calls        total        self       children\n";
  for (const std::string& op : flat_.ByTotalLatency()) {
    const osprof::Profile* p = flat_.Find(op);
    const osim::Cycles total = p->total_latency();
    auto it = child_totals_.find(op);
    const osim::Cycles children = it == child_totals_.end() ? 0 : it->second;
    const osim::Cycles self = total > children ? total - children : 0;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-16s %-12llu %-12s %-12s %-12s\n", op.c_str(),
                  static_cast<unsigned long long>(p->total_operations()),
                  osprof::FormatSeconds(static_cast<double>(total) / cpu_hz)
                      .c_str(),
                  osprof::FormatSeconds(static_cast<double>(self) / cpu_hz)
                      .c_str(),
                  osprof::FormatSeconds(static_cast<double>(children) / cpu_hz)
                      .c_str());
    os << line;
  }
  os << "  edges (heaviest first):\n";
  for (const EdgeSummary& e : EdgeSummaries()) {
    char line[160];
    std::snprintf(
        line, sizeof(line), "    %s -> %s: %llu calls, %s\n",
        e.caller.c_str(), e.callee.c_str(),
        static_cast<unsigned long long>(e.calls),
        osprof::FormatSeconds(static_cast<double>(e.total_latency) / cpu_hz)
            .c_str());
    os << line;
  }
  return os.str();
}

}  // namespace osprofilers
