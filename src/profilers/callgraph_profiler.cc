#include "src/profilers/callgraph_profiler.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/core/clock.h"
#include "src/core/histogram.h"

namespace osprofilers {

void CallGraphProfiler::Reset() {
  if (in_flight_ != 0) {
    throw std::logic_error(
        "CallGraphProfiler::Reset with operations still in flight");
  }
  flat_.ClearCounts();
  edges_.ClearCounts();
  layered_.ClearCounts();
  std::fill(child_totals_.begin(), child_totals_.end(), 0);
}

osprof::ProbeHandle CallGraphProfiler::Resolve(std::string_view op) {
  const osprof::ProbeHandle handle = flat_.Resolve(op);
  if (child_totals_.size() < flat_.ops().size()) {
    child_totals_.resize(flat_.ops().size(), 0);
    layered_slots_.resize(flat_.ops().size(), nullptr);
  }
  return handle;
}

int CallGraphProfiler::CurrentThreadId() const {
  const osim::SimThread* t = kernel_->current();
  if (t == nullptr) {
    throw std::logic_error("CallGraphProfiler used outside thread context");
  }
  return t->id();
}

osprof::OpId CallGraphProfiler::EdgeId(osprof::OpId caller,
                                       osprof::OpId callee) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(caller) << 32) | callee;
  const auto it = edge_ids_.find(key);
  if (it != edge_ids_.end()) {
    return it->second;
  }
  // First sighting of this edge: build its name once.
  const std::string name =
      (caller == osprof::kInvalidOpId ? std::string("-")
                                      : flat_.ops().Name(caller)) +
      "->" + flat_.ops().Name(callee);
  const osprof::OpId id = edges_.Resolve(name).id();
  edge_ids_.emplace(key, id);
  return id;
}

void CallGraphProfiler::Finish(int tid, osprof::OpId op,
                               osim::Cycles latency) {
  const osim::RequestContext::PopResult span =
      kernel_->context().Pop(tid, kernel_->now(), latency);
  --in_flight_;
  // owner_children is the summed latency of profiled operations that ran
  // directly under this one (lineage is scoped to this profiler, so other
  // layers' interleaved frames don't leak in).
  child_totals_[static_cast<std::size_t>(op)] += span.owner_children;

  flat_.AddById(op, latency);
  edges_.AddById(EdgeId(span.caller, op), latency);

  osprof::LayeredProfile*& slot =
      layered_slots_[static_cast<std::size_t>(op)];
  if (slot == nullptr) {
    slot = layered_.Slot(flat_.ops().Name(op));
  }
  const int bucket = osprof::BucketIndex(latency, resolution_);
  if (span.self_only) {
    slot->AddSelfOnly(bucket, span.components[osprof::kLayerSelf]);
  } else {
    slot->Add(bucket, span.components);
  }
}

std::vector<CallGraphProfiler::EdgeSummary>
CallGraphProfiler::EdgeSummaries() const {
  std::vector<EdgeSummary> out;
  for (const auto& [key, profile] : edges_) {
    const auto arrow = key.find("->");
    EdgeSummary e;
    e.caller = key.substr(0, arrow);
    e.callee = key.substr(arrow + 2);
    e.calls = profile.total_operations();
    e.total_latency = profile.total_latency();
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const EdgeSummary& a, const EdgeSummary& b) {
              return a.total_latency > b.total_latency;
            });
  return out;
}

std::string CallGraphProfiler::Report(double cpu_hz) const {
  std::ostringstream os;
  os << "call-graph profile (gprof-style)\n";
  os << "  operation        calls        total        self       children\n";
  for (const std::string& op : flat_.ByTotalLatency()) {
    const osprof::Profile* p = flat_.Find(op);
    const osim::Cycles total = p->total_latency();
    const osprof::OpId id = flat_.ops().Find(op);
    const osim::Cycles children =
        id < child_totals_.size() ? child_totals_[id] : 0;
    const osim::Cycles self = total > children ? total - children : 0;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-16s %-12llu %-12s %-12s %-12s\n", op.c_str(),
                  static_cast<unsigned long long>(p->total_operations()),
                  osprof::FormatSeconds(static_cast<double>(total) / cpu_hz)
                      .c_str(),
                  osprof::FormatSeconds(static_cast<double>(self) / cpu_hz)
                      .c_str(),
                  osprof::FormatSeconds(static_cast<double>(children) / cpu_hz)
                      .c_str());
    os << line;
  }
  os << "  edges (heaviest first):\n";
  for (const EdgeSummary& e : EdgeSummaries()) {
    char line[160];
    std::snprintf(
        line, sizeof(line), "    %s -> %s: %llu calls, %s\n",
        e.caller.c_str(), e.callee.c_str(),
        static_cast<unsigned long long>(e.calls),
        osprof::FormatSeconds(static_cast<double>(e.total_latency) / cpu_hz)
            .c_str());
    os << line;
  }
  return os.str();
}

}  // namespace osprofilers
