#include "src/profilers/noise_profiler.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace osprofilers {

using osim::Cycles;
using osim::InterferenceEvent;
using osim::InterferenceKind;

NoiseProfiler::NoiseProfiler(osim::Kernel* kernel, int resolution)
    : kernel_(kernel), resolution_(resolution), profiles_(resolution) {
  kernel_->channel().Subscribe(this);
}

NoiseProfiler::~NoiseProfiler() { kernel_->channel().Unsubscribe(this); }

osim::Task<void> NoiseProfiler::NoiseTask(int index, std::uint64_t samples,
                                          Cycles burst) {
  // Size the state eagerly, before any body runs: coroutines are lazy,
  // and a later NoiseTask call must not reallocate tasks_/ops_ while an
  // earlier body holds a slot.
  const std::size_t slot = static_cast<std::size_t>(index);
  if (tasks_.size() <= slot) {
    tasks_.resize(slot + 1);
    ops_.resize(slot + 1);
  }
  tasks_[slot].name = "noise" + std::to_string(index);
  ops_[slot] = profiles_.Resolve(tasks_[slot].name);
  return RunNoiseTask(slot, samples, burst);
}

osim::Task<void> NoiseProfiler::RunNoiseTask(std::size_t slot,
                                             std::uint64_t samples,
                                             Cycles burst) {
  // First resume: latch the thread id so OnInterference can route this
  // thread's events here.  (The dispatch that started this very resume
  // predates the latch and is deliberately not counted -- it is spawn
  // cost, not noise within a sample.)
  tasks_[slot].thread_id = kernel_->current()->id();
  tasks_[slot].last_cpu = kernel_->current()->cpu();
  for (std::uint64_t i = 0; i < samples; ++i) {
    const Cycles before = kernel_->now();
    co_await kernel_->Cpu(burst);
    const Cycles wall = kernel_->now() - before;
    const Cycles gap = wall > burst ? wall - burst : 0;
    NoiseTaskStats& stats = tasks_[slot];
    ++stats.samples;
    stats.runtime += wall;
    stats.noise += gap;
    stats.max_single = std::max(stats.max_single, gap);
    profiles_.AddById(ops_[slot].id(), wall);
  }
}

NoiseTaskStats* NoiseProfiler::SlotFor(int thread_id) {
  for (NoiseTaskStats& stats : tasks_) {
    if (stats.thread_id == thread_id) {
      return &stats;
    }
  }
  return nullptr;
}

void NoiseProfiler::OnInterference(const InterferenceEvent& event) {
  NoiseTaskStats* stats = SlotFor(event.thread_id);
  if (stats == nullptr) {
    return;
  }
  switch (event.kind) {
    case InterferenceKind::kDispatch:
      stats->runq_cycles += event.cycles;
      stats->last_cpu = event.cpu;
      break;
    case InterferenceKind::kMigrate:
      ++stats->migrations;
      break;
    case InterferenceKind::kPreempt:
      ++stats->preemptions;
      break;
    case InterferenceKind::kTimerTick:
      stats->timer_ticks += event.count;
      stats->stolen_cycles += event.cycles;
      break;
    case InterferenceKind::kLockHandoff:
      ++stats->lock_handoffs;
      stats->lock_cycles += event.cycles;
      break;
    case InterferenceKind::kWakeup:
      if (event.component == osprof::kLayerLockWait) {
        stats->lock_cycles += event.cycles;
      }
      break;
    case InterferenceKind::kPark:
      break;
  }
}

void NoiseProfiler::Reset() {
  profiles_.ClearCounts();
  for (NoiseTaskStats& stats : tasks_) {
    const std::string name = stats.name;
    const int tid = stats.thread_id;
    stats = NoiseTaskStats{};
    stats.name = name;
    stats.thread_id = tid;
  }
}

std::uint64_t NoiseProfiler::TotalSamples() const {
  std::uint64_t total = 0;
  for (const NoiseTaskStats& s : tasks_) total += s.samples;
  return total;
}

std::uint64_t NoiseProfiler::TotalPreemptions() const {
  std::uint64_t total = 0;
  for (const NoiseTaskStats& s : tasks_) total += s.preemptions;
  return total;
}

std::uint64_t NoiseProfiler::TotalMigrations() const {
  std::uint64_t total = 0;
  for (const NoiseTaskStats& s : tasks_) total += s.migrations;
  return total;
}

std::uint64_t NoiseProfiler::TotalTimerTicks() const {
  std::uint64_t total = 0;
  for (const NoiseTaskStats& s : tasks_) total += s.timer_ticks;
  return total;
}

Cycles NoiseProfiler::TotalRuntime() const {
  Cycles total = 0;
  for (const NoiseTaskStats& s : tasks_) total += s.runtime;
  return total;
}

Cycles NoiseProfiler::TotalNoise() const {
  Cycles total = 0;
  for (const NoiseTaskStats& s : tasks_) total += s.noise;
  return total;
}

Cycles NoiseProfiler::TotalStolen() const {
  Cycles total = 0;
  for (const NoiseTaskStats& s : tasks_) total += s.stolen_cycles;
  return total;
}

Cycles NoiseProfiler::TotalRunQueue() const {
  Cycles total = 0;
  for (const NoiseTaskStats& s : tasks_) total += s.runq_cycles;
  return total;
}

std::uint64_t NoiseProfiler::TotalLockHandoffs() const {
  std::uint64_t total = 0;
  for (const NoiseTaskStats& s : tasks_) total += s.lock_handoffs;
  return total;
}

Cycles NoiseProfiler::MaxSingle() const {
  Cycles max = 0;
  for (const NoiseTaskStats& s : tasks_) max = std::max(max, s.max_single);
  return max;
}

std::string NoiseProfiler::RenderSummary() const {
  std::ostringstream out;
  out << "OS noise summary (cycles; noise = wall - nominal burst)\n";
  out << std::left << std::setw(10) << "TASK" << std::right << std::setw(5)
      << "THR" << std::setw(5) << "CPU" << std::setw(14) << "RUNTIME"
      << std::setw(12) << "NOISE" << std::setw(9) << "%AVAIL" << std::setw(12)
      << "MAXSINGLE" << std::setw(9) << "PREEMPT" << std::setw(9) << "MIGRATE"
      << std::setw(7) << "TICKS" << std::setw(12) << "IRQSTOLEN"
      << std::setw(12) << "RUNQWAIT" << std::setw(9) << "HANDOFF" << "\n";
  NoiseTaskStats total;
  total.name = "TOTAL";
  for (const NoiseTaskStats& s : tasks_) {
    out << std::left << std::setw(10) << s.name << std::right << std::setw(5)
        << s.thread_id << std::setw(5) << s.last_cpu << std::setw(14)
        << s.runtime << std::setw(12) << s.noise << std::setw(9) << std::fixed
        << std::setprecision(4) << s.PercentAvailable() << std::setw(12)
        << s.max_single << std::setw(9) << s.preemptions << std::setw(9)
        << s.migrations << std::setw(7) << s.timer_ticks << std::setw(12)
        << s.stolen_cycles << std::setw(12) << s.runq_cycles << std::setw(9)
        << s.lock_handoffs << "\n";
    total.samples += s.samples;
    total.runtime += s.runtime;
    total.noise += s.noise;
    total.max_single = std::max(total.max_single, s.max_single);
    total.preemptions += s.preemptions;
    total.migrations += s.migrations;
    total.timer_ticks += s.timer_ticks;
    total.stolen_cycles += s.stolen_cycles;
    total.runq_cycles += s.runq_cycles;
    total.lock_handoffs += s.lock_handoffs;
  }
  out << std::left << std::setw(10) << total.name << std::right << std::setw(5)
      << "-" << std::setw(5) << "-" << std::setw(14) << total.runtime
      << std::setw(12) << total.noise << std::setw(9) << std::fixed
      << std::setprecision(4) << total.PercentAvailable() << std::setw(12)
      << total.max_single << std::setw(9) << total.preemptions << std::setw(9)
      << total.migrations << std::setw(7) << total.timer_ticks << std::setw(12)
      << total.stolen_cycles << std::setw(12) << total.runq_cycles
      << std::setw(9) << total.lock_handoffs << "\n";
  return out.str();
}

}  // namespace osprofilers
