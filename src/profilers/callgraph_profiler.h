// Function-granularity layered profiling (paper §3.1: "Layered proling
// can be extended even to the granularity of a single function call.
// This way, one can capture proles for many functions even if these
// functions call each other", via gcc -p style entry/exit hooks).
//
// CallGraphProfiler augments SimProfiler-style latency recording with a
// per-thread operation stack: every profiled operation knows which
// profiled operation (if any) it executed under, yielding
//
//  * a latency profile per (caller -> callee) edge, and
//  * gprof-like caller attribution: readdir's latency splits into "time
//    under readdir itself" vs "time in readpage called by readdir".
//
// The paper's own example is exactly this nesting: Ext2 readdir calling
// readpage when directory pages are cold (§3.1, §6.2).

#ifndef OSPROF_SRC_PROFILERS_CALLGRAPH_PROFILER_H_
#define OSPROF_SRC_PROFILERS_CALLGRAPH_PROFILER_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/profile.h"
#include "src/profilers/profiler_sink.h"
#include "src/sim/kernel.h"
#include "src/sim/task.h"

namespace osprofilers {

class CallGraphProfiler : public ProfilerSink {
 public:
  explicit CallGraphProfiler(osim::Kernel* kernel, int resolution = 1)
      : kernel_(kernel), resolution_(resolution), flat_(resolution) {}

  // --- ProfilerSink ------------------------------------------------------
  // Collect() returns the flat per-operation view (the edge profiles stay
  // available through edges() for call-graph-aware consumers).
  const std::string& layer() const override { return layer_; }
  int resolution() const override { return resolution_; }
  osprof::ProfileSet Collect() const override { return flat_; }
  // Clears collected profiles and caller attribution.  Must not be called
  // while profiled operations are still on any thread's stack.
  void Reset() override;

  // Wraps an operation, recording both its flat profile and the
  // (caller -> callee) edge profile.  Safe to nest arbitrarily deep; each
  // simulated thread has its own call stack.
  template <typename T>
  osim::Task<T> Wrap(std::string op, osim::Task<T> inner) {
    const int tid = CurrentThreadId();
    Push(tid, op);
    const osim::Cycles start = kernel_->ReadTsc();
    if constexpr (std::is_void_v<T>) {
      co_await std::move(inner);
      const osim::Cycles latency = kernel_->ReadTsc() - start;
      Pop(tid, op, latency);
    } else {
      T result = co_await std::move(inner);
      const osim::Cycles latency = kernel_->ReadTsc() - start;
      Pop(tid, op, latency);
      co_return std::move(result);
    }
  }

  // The flat per-operation profile (as SimProfiler would record).
  const osprof::ProfileSet& flat() const { return flat_; }

  // Edge profiles: key "caller->callee"; top-level ops use caller "-".
  const osprof::ProfileSet& edges() const { return edges_; }

  struct EdgeSummary {
    std::string caller;
    std::string callee;
    std::uint64_t calls = 0;
    osim::Cycles total_latency = 0;
  };
  // All edges, heaviest (by total latency) first.
  std::vector<EdgeSummary> EdgeSummaries() const;

  // gprof-style report: for each operation, total time and how much of it
  // was spent inside profiled children.
  std::string Report(double cpu_hz) const;

 private:
  int CurrentThreadId() const;
  void Push(int tid, const std::string& op);
  void Pop(int tid, const std::string& op, osim::Cycles latency);

  osim::Kernel* kernel_;
  std::string layer_ = "callgraph";
  int resolution_;
  osprof::ProfileSet flat_;
  osprof::ProfileSet edges_{1};
  // Per-thread stack of active operation names.
  std::map<int, std::vector<std::string>> stacks_;
  // Child time accumulated under each (thread, op) activation; parallel to
  // stacks_ (one slot per stack level, tracking profiled-child latency).
  std::map<int, std::vector<osim::Cycles>> child_time_;
  // op -> total time spent in profiled children, for the report.
  std::map<std::string, osim::Cycles> child_totals_;
};

}  // namespace osprofilers

#endif  // OSPROF_SRC_PROFILERS_CALLGRAPH_PROFILER_H_
