// Function-granularity layered profiling (paper §3.1: "Layered proling
// can be extended even to the granularity of a single function call.
// This way, one can capture profiles for many functions even if these
// functions call each other", via gcc -p style entry/exit hooks).
//
// CallGraphProfiler augments SimProfiler-style latency recording with
// caller lineage read off the kernel-owned RequestContext span stack:
// every profiled operation knows which profiled operation (if any) it
// executed under, yielding
//
//  * a latency profile per (caller -> callee) edge, and
//  * gprof-like caller attribution: readdir's latency splits into "time
//    under readdir itself" vs "time in readpage called by readdir".
//
// The paper's own example is exactly this nesting: Ext2 readdir calling
// readpage when directory pages are cold (§3.1, §6.2).
//
// Like SimProfiler, the record path works on pre-resolved ProbeHandles:
// the shared stack holds dense OpIds, caller attribution indexes a vector
// by OpId, and each (caller -> callee) edge's name is built exactly once,
// the first time that edge fires (subsequent pops find it through a packed
// integer key -- no string concatenation, no string-keyed lookup).

#ifndef OSPROF_SRC_PROFILERS_CALLGRAPH_PROFILER_H_
#define OSPROF_SRC_PROFILERS_CALLGRAPH_PROFILER_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/op_table.h"
#include "src/core/profile.h"
#include "src/profilers/profiler_sink.h"
#include "src/sim/kernel.h"
#include "src/sim/task.h"

namespace osprofilers {

class CallGraphProfiler : public ProfilerSink {
 public:
  explicit CallGraphProfiler(osim::Kernel* kernel, int resolution = 1)
      : kernel_(kernel),
        resolution_(resolution),
        flat_(resolution),
        layered_(resolution) {
    span_owner_.ops = &flat_.ops();
    span_owner_.cls = osprof::kLayerFs;
  }

  // --- ProfilerSink ------------------------------------------------------
  // Collect() returns the flat per-operation view (the edge profiles stay
  // available through edges() for call-graph-aware consumers).
  const std::string& layer() const override { return layer_; }
  int resolution() const override { return resolution_; }
  using ProfilerSink::Collect;
  Collected Collect(const CollectRequest& request) const override {
    Collected out;
    if (request.profiles) {
      out.profiles = flat_;
    }
    if (request.layered) {
      out.layered = &layered_;
    }
    return out;
  }
  // Clears collected profiles and caller attribution.  Must not be called
  // while profiled operations are still in flight.  Keeps the op and edge
  // tables (and the packed edge-id cache), so outstanding ProbeHandles --
  // and first-sighting edge names -- stay valid across runs.
  void Reset() override;

  // Interns `op` into the flat profile set and returns the handle call
  // sites should cache at attach time.  Idempotent; survives Reset().
  osprof::ProbeHandle Resolve(std::string_view op);

  // Wraps an operation, recording both its flat profile and the
  // (caller -> callee) edge profile.  Safe to nest arbitrarily deep; each
  // simulated thread has its own call stack.
  template <typename T>
  osim::Task<T> Wrap(osprof::ProbeHandle op, osim::Task<T> inner) {
    const int tid = CurrentThreadId();
    kernel_->context().Push(tid, &span_owner_, op.id(), kernel_->now());
    ++in_flight_;
    const osim::Cycles start = kernel_->ReadTsc();
    if constexpr (std::is_void_v<T>) {
      co_await std::move(inner);
      Finish(tid, op.id(), kernel_->ReadTsc() - start);
    } else {
      T result = co_await std::move(inner);
      Finish(tid, op.id(), kernel_->ReadTsc() - start);
      co_return std::move(result);
    }
  }

  // The flat per-operation profile (as SimProfiler would record).
  const osprof::ProfileSet& flat() const { return flat_; }

  // Edge profiles: key "caller->callee"; top-level ops use caller "-".
  const osprof::ProfileSet& edges() const { return edges_; }

  struct EdgeSummary {
    std::string caller;
    std::string callee;
    std::uint64_t calls = 0;
    osim::Cycles total_latency = 0;
  };
  // All edges, heaviest (by total latency) first.
  std::vector<EdgeSummary> EdgeSummaries() const;

  // gprof-style report: for each operation, total time and how much of it
  // was spent inside profiled children.
  std::string Report(double cpu_hz) const;

 private:
  int CurrentThreadId() const;
  // Closes the span on the shared context and records flat, edge, and
  // layered data from its PopResult.
  void Finish(int tid, osprof::OpId op, osim::Cycles latency);
  // Get-or-create the edge profile id for (caller -> callee); builds the
  // "caller->callee" name only on first sighting of the edge.
  osprof::OpId EdgeId(osprof::OpId caller, osprof::OpId callee);

  osim::Kernel* kernel_;
  // Pushed with every span frame; identity, op table, and charge class
  // in one pointer (see osim::SpanOwner).
  osim::SpanOwner span_owner_;
  std::string layer_ = "callgraph";
  int resolution_;
  osprof::ProfileSet flat_;
  osprof::ProfileSet edges_{1};
  osprof::LayeredProfileSet layered_;
  // (caller << 32 | callee) -> edge op id in edges_.  kInvalidOpId works
  // as a caller key (top-level ops) because OpIds are dense and never
  // reach 2^32 - 1.
  std::map<std::uint64_t, osprof::OpId> edge_ids_;
  // Spans opened on the shared context but not yet popped (guards Reset).
  int in_flight_ = 0;
  // Indexed by OpId: total time spent in profiled children, for the report.
  std::vector<osim::Cycles> child_totals_;
  // Indexed by OpId: cached layered_ slots, mirroring SimProfiler.
  std::vector<osprof::LayeredProfile*> layered_slots_;
};

}  // namespace osprofilers

#endif  // OSPROF_SRC_PROFILERS_CALLGRAPH_PROFILER_H_
