#include "src/profilers/profile_shards.h"

#include <string_view>

namespace osprofilers {

ShardedProfileArena::ShardedProfileArena(osprof::ProfileSet* base,
                                         osprof::LayeredProfileSet* base_layered,
                                         int num_shards)
    : base_(base), base_layered_(base_layered) {
  if (num_shards < 1) {
    num_shards = 1;
  }
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards_.emplace_back(base_->resolution());
  }
  // Replay the base table into every shard in id order, so ids already
  // handed out as ProbeHandles index the shards too.  Resolve() interns
  // without declaring, so replay leaves the shards serially empty.
  const osprof::OpTable& ops = base_->ops();
  for (osprof::OpId id = 0; id < static_cast<osprof::OpId>(ops.size());
       ++id) {
    const std::string& name = ops.Name(id);
    for (Shard& shard : shards_) {
      shard.profiles.Resolve(name);
      shard.layered_slots.push_back(nullptr);
    }
  }
}

void ShardedProfileArena::OnResolve(std::string_view op) {
  for (Shard& shard : shards_) {
    shard.profiles.Resolve(op);
    shard.layered_slots.resize(base_->ops().size(), nullptr);
  }
}

void ShardedProfileArena::FlushShards() {
  for (Shard& shard : shards_) {
    base_->Merge(shard.profiles);
    shard.profiles.ClearCounts();
    base_layered_->Merge(shard.layered);
    shard.layered.ClearCounts();
  }
  ++flushes_;
}

void ShardedProfileArena::MergeResidueInto(osprof::ProfileSet* profiles) const {
  for (const Shard& shard : shards_) {
    profiles->Merge(shard.profiles);
  }
}

void ShardedProfileArena::MergeLayeredResidueInto(
    osprof::LayeredProfileSet* layered) const {
  for (const Shard& shard : shards_) {
    layered->Merge(shard.layered);
  }
}

void ShardedProfileArena::ClearCounts() {
  for (Shard& shard : shards_) {
    shard.profiles.ClearCounts();
    shard.layered.ClearCounts();
  }
}

std::size_t ShardedProfileArena::ApproxBytes() const {
  // Dominated by the dense per-op storage: one Histogram's bucket plane per
  // flat profile, seven planes (counts + six components) per layered slot.
  const std::size_t ops = base_->ops().size();
  const std::size_t res = static_cast<std::size_t>(base_->resolution());
  const std::size_t buckets =
      static_cast<std::size_t>(osprof::kMaxLog2Buckets) * res;
  const std::size_t per_flat = sizeof(osprof::Profile) +
                               buckets * sizeof(std::uint64_t);
  const std::size_t per_layered =
      sizeof(osprof::LayeredProfile) +
      buckets * (sizeof(std::uint64_t) + sizeof(std::uint8_t) +
                 static_cast<std::size_t>(osprof::kNumLayerComponents) *
                     sizeof(Cycles));
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += ops * (per_flat + sizeof(osprof::LayeredProfile*));
    std::size_t layered_slots = 0;
    for (const osprof::LayeredProfile* slot : shard.layered_slots) {
      if (slot != nullptr) {
        ++layered_slots;
      }
    }
    total += layered_slots * per_layered;
  }
  return total;
}

}  // namespace osprofilers
