// Per-CPU profile shards with epoch-boundary merging (paper §4's lock-free
// per-thread update policies, scaled to real sharded arenas).
//
// A ShardedProfileArena gives every simulated CPU a private ProfileSet +
// LayeredProfileSet shard.  A task records only on the CPU it is currently
// running on, and the whole simulation lives on one host thread, so shard
// updates are lock-free by construction: no CAS, no atomics, no false
// sharing between simulated CPUs' counters.  Shards fold into the base
// sets through the existing associative/commutative Merge at epoch
// boundaries (and at collection), exactly the Atys-style "cheap per-CPU
// aggregation merged off the hot path".
//
// Identity discipline: all interning goes through Resolve(), which interns
// into the base set and every shard in the same order, so one dense OpId
// indexes all of them.  Because histogram and layered-component merging is
// pure integer addition, the flushed base sets -- and therefore their
// serialized bytes -- are identical to unsharded recording for ANY shard
// count and ANY epoch length.  That invariant is what keeps the committed
// golden corpus byte-stable when scenarios turn sharding on, and it is
// asserted directly by tests/profilers/profile_shards_test.cc.

#ifndef OSPROF_SRC_PROFILERS_PROFILE_SHARDS_H_
#define OSPROF_SRC_PROFILERS_PROFILE_SHARDS_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "src/core/layered.h"
#include "src/core/op_table.h"
#include "src/core/profile.h"

namespace osprofilers {

using osprof::Cycles;

class ShardedProfileArena {
 public:
  // Shards record on behalf of externally-owned base sets (the profiler's
  // own ProfileSet/LayeredProfileSet); both must outlive the arena.  Ops
  // already interned in `base` are re-interned into every shard in id
  // order, so arenas can be attached after probe handles were resolved.
  ShardedProfileArena(osprof::ProfileSet* base,
                      osprof::LayeredProfileSet* base_layered, int num_shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }

  // Mirrors a base-set interning into every shard.  Must be called (by the
  // owning profiler) for every op before it is recorded under its id.
  void OnResolve(std::string_view op);

  // --- Hot paths: one indexed shard, no locks ----------------------------

  void AddById(int shard, osprof::OpId id, Cycles latency) {
    shards_[static_cast<std::size_t>(shard)].profiles.AddById(id, latency);
  }

  void AddById(int shard, osprof::OpId id, int bucket, Cycles latency) {
    shards_[static_cast<std::size_t>(shard)].profiles.AddById(id, bucket,
                                                              latency);
  }

  void AddLayered(int shard, osprof::OpId id, int bucket,
                  const Cycles components[osprof::kNumLayerComponents]) {
    LayeredSlot(shard, id)->Add(bucket, components);
  }

  void AddLayeredSelfOnly(int shard, osprof::OpId id, int bucket,
                          Cycles self) {
    LayeredSlot(shard, id)->AddSelfOnly(bucket, self);
  }

  // --- Epoch boundary ----------------------------------------------------

  // Folds every shard into the base sets and zeroes the shards in place
  // (cached slot pointers stay valid).  Safe to call at any frequency:
  // merging is pure integer addition, so the base totals after the final
  // flush do not depend on how many epochs the run was sliced into.
  void FlushShards();

  // Number of FlushShards() calls so far (epoch accounting for tests and
  // memory reports).
  std::uint64_t flushes() const { return flushes_; }

  // Non-destructive residue merge: adds everything recorded since the last
  // flush into `profiles` / `layered` without touching the shards.  Used
  // by Collect(), which must not mutate the profiler's state.
  void MergeResidueInto(osprof::ProfileSet* profiles) const;
  void MergeLayeredResidueInto(osprof::LayeredProfileSet* layered) const;

  // Zeroes all shards without merging (profiler Reset).
  void ClearCounts();

  // Approximate heap footprint of the shard sets, for the kernel-level
  // memory accounting surfaced by the scale bench.
  std::size_t ApproxBytes() const;

 private:
  struct Shard {
    osprof::ProfileSet profiles;
    osprof::LayeredProfileSet layered;
    // OpId -> cached layered slot (node-stable; survives ClearCounts).
    std::vector<osprof::LayeredProfile*> layered_slots;

    explicit Shard(int resolution)
        : profiles(resolution), layered(resolution) {}
  };

  osprof::LayeredProfile* LayeredSlot(int shard, osprof::OpId id) {
    Shard& s = shards_[static_cast<std::size_t>(shard)];
    osprof::LayeredProfile*& slot =
        s.layered_slots[static_cast<std::size_t>(id)];
    if (slot == nullptr) {
      slot = s.layered.Slot(base_->ops().Name(id));
    }
    return slot;
  }

  osprof::ProfileSet* base_;
  osprof::LayeredProfileSet* base_layered_;
  std::vector<Shard> shards_;
  std::uint64_t flushes_ = 0;
};

}  // namespace osprofilers

#endif  // OSPROF_SRC_PROFILERS_PROFILE_SHARDS_H_
