#include "src/profilers/posix_profiler.h"

#include <fcntl.h>
#include <unistd.h>

namespace osprofilers {

int PosixProfiler::Open(const std::string& path, int flags) {
  return Measure(open_, [&] { return ::open(path.c_str(), flags); });
}

int PosixProfiler::Open(const std::string& path, int flags, mode_t mode) {
  return Measure(open_, [&] { return ::open(path.c_str(), flags, mode); });
}

long PosixProfiler::Read(int fd, void* buf, std::size_t count) {
  return Measure(read_,
                 [&] { return static_cast<long>(::read(fd, buf, count)); });
}

long PosixProfiler::Write(int fd, const void* buf, std::size_t count) {
  return Measure(write_,
                 [&] { return static_cast<long>(::write(fd, buf, count)); });
}

long PosixProfiler::Lseek(int fd, long offset, int whence) {
  return Measure(llseek_, [&] {
    return static_cast<long>(::lseek(fd, static_cast<off_t>(offset), whence));
  });
}

int PosixProfiler::Close(int fd) {
  return Measure(close_, [&] { return ::close(fd); });
}

int PosixProfiler::Stat(const std::string& path, struct stat* out) {
  return Measure(stat_, [&] { return ::stat(path.c_str(), out); });
}

int PosixProfiler::Fsync(int fd) {
  return Measure(fsync_, [&] { return ::fsync(fd); });
}

int PosixProfiler::Unlink(const std::string& path) {
  return Measure(unlink_, [&] { return ::unlink(path.c_str()); });
}

int PosixProfiler::Mkdir(const std::string& path, mode_t mode) {
  return Measure(mkdir_, [&] { return ::mkdir(path.c_str(), mode); });
}

}  // namespace osprofilers
