// OS-noise profiler: the rtla/osnoise workload, run against the simulated
// kernel's interference channel (ROADMAP item 3).
//
// Each noise task reads the simulated clock in a tight loop of fixed CPU
// bursts; any excess of a burst's wall-clock duration over its nominal
// length is operating-system noise -- time stolen by timer-interrupt
// service, forced preemption (plus the run-queue wait that follows),
// migration, and lock handoff.  Where Linux's osnoise tracer infers the
// culprit from tracepoints, this profiler *subscribes* to the
// InterferenceChannel and attributes every stolen interval to the exact
// event that took it, per task:
//
//            wall = burst + timer service + preemption displacement
//
// The flat histogram of burst wall-clock durations doubles as the §3.3
// validation: the main peak sits at the burst's bucket, and the samples
// displaced near bucket log2(Q) appear at exactly the rate Equation 3
// predicts for a request of tcpu = burst under quantum Q -- the gate's
// noise rater checks measured preemptions against that prediction.
//
// The profiler is a ProfilerSink ("noise" layer) so the runner collects
// it like any other layer, and RenderSummary() prints the per-task
// osnoise-style table shown by `osprof_tool noise`.

#ifndef OSPROF_SRC_PROFILERS_NOISE_PROFILER_H_
#define OSPROF_SRC_PROFILERS_NOISE_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/profile.h"
#include "src/profilers/profiler_sink.h"
#include "src/sim/interference.h"
#include "src/sim/kernel.h"
#include "src/sim/task.h"

namespace osprofilers {

// Everything one noise task observed: its own loop measurements plus the
// interference events the channel delivered for its thread.
struct NoiseTaskStats {
  std::string name;
  int thread_id = -1;  // Latched at the task's first resume.
  int last_cpu = -1;   // CPU of the most recent dispatch.
  std::uint64_t samples = 0;
  osim::Cycles runtime = 0;     // Sum of burst wall-clock durations.
  osim::Cycles noise = 0;       // Sum of (wall - burst) excesses.
  osim::Cycles max_single = 0;  // Largest single-sample excess.
  // Interference counters, from the channel.
  std::uint64_t preemptions = 0;
  std::uint64_t migrations = 0;
  std::uint64_t timer_ticks = 0;
  osim::Cycles stolen_cycles = 0;  // Timer-IRQ service time.
  osim::Cycles runq_cycles = 0;    // Runnable-to-running intervals.
  std::uint64_t lock_handoffs = 0;
  osim::Cycles lock_cycles = 0;  // Spin handoffs + sleeping-lock waits.

  // Fraction of the task's wall time it actually computed.
  double PercentAvailable() const {
    return runtime == 0
               ? 100.0
               : 100.0 * static_cast<double>(runtime - noise) /
                     static_cast<double>(runtime);
  }
};

class NoiseProfiler : public ProfilerSink,
                      public osim::InterferenceSubscriber {
 public:
  explicit NoiseProfiler(osim::Kernel* kernel, int resolution = 1);
  ~NoiseProfiler() override;

  NoiseProfiler(const NoiseProfiler&) = delete;
  NoiseProfiler& operator=(const NoiseProfiler&) = delete;

  // Returns the noise-task body for slot `index` (spawn it on the
  // kernel): `samples` bursts of `burst` cycles each, recording each
  // burst's wall-clock duration under op "noise<index>".  Create all
  // tasks before the simulation runs.
  osim::Task<void> NoiseTask(int index, std::uint64_t samples,
                             osim::Cycles burst);

  // --- InterferenceSubscriber --------------------------------------------
  void OnInterference(const osim::InterferenceEvent& event) override;

  // --- ProfilerSink ------------------------------------------------------
  const std::string& layer() const override { return layer_; }
  int resolution() const override { return resolution_; }
  using ProfilerSink::Collect;
  // No layered decomposition: noise tasks never open request spans (the
  // whole point is to observe the kernel from outside any request).
  Collected Collect(const CollectRequest& request) const override {
    Collected out;
    if (request.profiles) {
      out.profiles = profiles_;
    }
    return out;
  }
  void Reset() override;

  const std::vector<NoiseTaskStats>& tasks() const { return tasks_; }

  // Aggregates over all tasks (the runner's counters).
  std::uint64_t TotalSamples() const;
  std::uint64_t TotalPreemptions() const;
  std::uint64_t TotalMigrations() const;
  std::uint64_t TotalTimerTicks() const;
  osim::Cycles TotalRuntime() const;
  osim::Cycles TotalNoise() const;
  osim::Cycles TotalStolen() const;
  osim::Cycles TotalRunQueue() const;
  std::uint64_t TotalLockHandoffs() const;
  osim::Cycles MaxSingle() const;

  // The per-task summary table, rtla-osnoise style.
  std::string RenderSummary() const;

 private:
  // The coroutine behind NoiseTask: separated because coroutine bodies
  // run lazily -- NoiseTask sizes tasks_ eagerly so later NoiseTask calls
  // cannot reallocate state out from under a running body, and the body
  // itself only ever indexes.
  osim::Task<void> RunNoiseTask(std::size_t slot, std::uint64_t samples,
                                osim::Cycles burst);

  // The stats slot for a channel event's thread, or nullptr for threads
  // that are not noise tasks (linear scan; task counts are single-digit).
  NoiseTaskStats* SlotFor(int thread_id);

  osim::Kernel* kernel_;
  std::string layer_ = "noise";
  int resolution_;
  osprof::ProfileSet profiles_;
  std::vector<NoiseTaskStats> tasks_;
  std::vector<osprof::ProbeHandle> ops_;
};

}  // namespace osprofilers

#endif  // OSPROF_SRC_PROFILERS_NOISE_PROFILER_H_
