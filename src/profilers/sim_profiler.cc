#include "src/profilers/sim_profiler.h"

namespace osprofilers {

void SimProfiler::EnableSampling(Cycles epoch_cycles) {
  sampling_epoch_ = epoch_cycles;
  sampled_ = std::make_unique<osprof::SampledProfileSet>(epoch_cycles,
                                                         resolution_);
}

void SimProfiler::AttachCorrelator(const std::string& op,
                                   osprof::ValueCorrelator* c) {
  correlators_[op] = c;
}

void SimProfiler::Record(const std::string& op, Cycles latency) {
  profiles_.Add(op, latency);
  if (sampled_ != nullptr) {
    sampled_->Add(op, kernel_->now(), latency);
  }
}

void SimProfiler::RecordWithValue(const std::string& op, Cycles latency,
                                  std::uint64_t value) {
  Record(op, latency);
  auto it = correlators_.find(op);
  if (it != correlators_.end()) {
    it->second->Record(latency, value);
  }
}

void SimProfiler::Reset() {
  profiles_ = osprof::ProfileSet(resolution_);
  if (sampled_ != nullptr) {
    sampled_ = std::make_unique<osprof::SampledProfileSet>(sampling_epoch_,
                                                           resolution_);
  }
}

DriverProfiler::DriverProfiler(Kernel* kernel, SimDisk* disk, int resolution)
    : profiler_(kernel, resolution) {
  disk->SetRequestObserver([this](const osim::DiskRequestInfo& info) {
    const bool read = info.op == osim::DiskOp::kRead;
    profiler_.Record(read ? "disk_read" : "disk_write", info.total_latency());
    profiler_.Record(read ? "disk_read_queue" : "disk_write_queue",
                     info.queue_latency());
  });
}

}  // namespace osprofilers
