#include "src/profilers/sim_profiler.h"

#include <algorithm>

#include "src/core/histogram.h"

namespace osprofilers {

void SimProfiler::EnableSampling(Cycles epoch_cycles) {
  sampling_epoch_ = epoch_cycles;
  sampled_ = std::make_unique<osprof::SampledProfileSet>(epoch_cycles,
                                                         resolution_);
  std::fill(sampled_slots_.begin(), sampled_slots_.end(), nullptr);
}

osprof::ProbeHandle SimProfiler::Resolve(std::string_view op) {
  const osprof::ProbeHandle handle = profiles_.Resolve(op);
  if (correlators_.size() < profiles_.ops().size()) {
    correlators_.resize(profiles_.ops().size(), nullptr);
    sampled_slots_.resize(profiles_.ops().size(), nullptr);
    layered_slots_.resize(profiles_.ops().size(), nullptr);
    if (shards_raw_ != nullptr) {
      shards_raw_->OnResolve(op);
    }
  }
  return handle;
}

void SimProfiler::EnableSharding(Cycles epoch_cycles) {
  shards_ = std::make_unique<ShardedProfileArena>(
      &profiles_, &layered_, kernel_->config().num_cpus);
  shards_raw_ = shards_.get();
  shard_epoch_ = epoch_cycles;
  next_epoch_flush_ = epoch_cycles > 0 ? kernel_->now() + epoch_cycles : 0;
}

osprof::LayerComponent SimProfiler::ComponentForLayer(
    const std::string& layer) {
  if (layer == "fs") {
    return osprof::kLayerFs;
  }
  if (layer == "driver") {
    return osprof::kLayerDriver;
  }
  if (layer == "net" || layer == "cifs" || layer == "nfs") {
    return osprof::kLayerNet;
  }
  return osprof::kLayerSelf;  // "user" and friends: transparent.
}

osprof::LayeredProfile* SimProfiler::LayeredSlot(osprof::ProbeHandle op) {
  osprof::LayeredProfile*& slot =
      layered_slots_[static_cast<std::size_t>(op.id())];
  slot = layered_.Slot(profiles_.ops().Name(op.id()));
  return slot;
}

void SimProfiler::AttachCorrelator(std::string_view op,
                                   osprof::ValueCorrelator* c) {
  const osprof::ProbeHandle handle = Resolve(op);
  correlators_[static_cast<std::size_t>(handle.id())] = c;
}

void SimProfiler::SampledRecord(osprof::ProbeHandle op, Cycles latency) {
  osprof::SampledProfile*& slot =
      sampled_slots_[static_cast<std::size_t>(op.id())];
  if (slot == nullptr) {
    slot = sampled_->Slot(profiles_.ops().Name(op.id()));
  }
  slot->Add(kernel_->now(), latency);
}

void SimProfiler::Reset() {
  profiles_.ClearCounts();
  layered_.ClearCounts();  // In place: cached layered_slots_ stay valid.
  if (shards_raw_ != nullptr) {
    shards_raw_->ClearCounts();
    next_epoch_flush_ =
        shard_epoch_ > 0 ? kernel_->now() + shard_epoch_ : 0;
  }
  if (sampled_ != nullptr) {
    sampled_ = std::make_unique<osprof::SampledProfileSet>(sampling_epoch_,
                                                           resolution_);
    std::fill(sampled_slots_.begin(), sampled_slots_.end(), nullptr);
  }
}

DriverProfiler::DriverProfiler(Kernel* kernel, SimDisk* disk, int resolution)
    : profiler_(kernel, resolution) {
  // Pre-resolve the four disk keys once; the observer fires per request
  // and must not rebuild std::string keys on that path.
  const osprof::ProbeHandle read = profiler_.Resolve("disk_read");
  const osprof::ProbeHandle write = profiler_.Resolve("disk_write");
  const osprof::ProbeHandle read_queue = profiler_.Resolve("disk_read_queue");
  const osprof::ProbeHandle write_queue =
      profiler_.Resolve("disk_write_queue");
  disk->SetRequestObserver([this, read, write, read_queue,
                            write_queue](const osim::DiskRequestInfo& info) {
    const bool is_read = info.op == osim::DiskOp::kRead;
    profiler_.Record(is_read ? read : write, info.total_latency());
    profiler_.Record(is_read ? read_queue : write_queue,
                     info.queue_latency());
  });
}

}  // namespace osprofilers
