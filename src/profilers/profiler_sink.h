// The unified profiler-sink interface.
//
// Every profiler in this tree -- the simulated-kernel layers of Figure 2
// (user / file-system / driver), the function-granularity call-graph
// profiler, and the real-OS POSIX interposition profiler -- ultimately
// collects one ProfileSet.  ProfilerSink is that common surface: a layer
// tag, the profile resolution, a snapshot of everything recorded so far,
// and a reset.  Orchestration code (src/runner) collects from any layer
// through this interface without knowing which profiler produced the data,
// exactly as the paper's analysis tooling consumes /proc profile dumps
// from any instrumentation level.

#ifndef OSPROF_SRC_PROFILERS_PROFILER_SINK_H_
#define OSPROF_SRC_PROFILERS_PROFILER_SINK_H_

#include <string>

#include "src/core/layered.h"
#include "src/core/profile.h"

namespace osprofilers {

class ProfilerSink {
 public:
  virtual ~ProfilerSink() = default;

  // Short tag naming the instrumentation layer this sink collects at
  // ("user", "fs", "driver", "callgraph", "posix", ...).
  virtual const std::string& layer() const = 0;

  // Bucket resolution of the collected profiles.
  virtual int resolution() const = 0;

  // Snapshot of everything recorded so far.  Safe to call repeatedly; the
  // returned set is independent of future recording.
  virtual osprof::ProfileSet Collect() const = 0;

  // The exact layered decomposition of this sink's operations, or nullptr
  // (the default) for sinks that cannot decompose -- observer-style
  // profilers that record outside any request span, and real-OS profilers
  // with no simulated kernel underneath.  The returned set stays owned by
  // the sink.
  virtual const osprof::LayeredProfileSet* CollectLayered() const {
    return nullptr;
  }

  // Clears collected measurements (configuration is kept).
  virtual void Reset() = 0;
};

}  // namespace osprofilers

#endif  // OSPROF_SRC_PROFILERS_PROFILER_SINK_H_
