// The unified profiler-sink interface.
//
// Every profiler in this tree -- the simulated-kernel layers of Figure 2
// (user / file-system / driver), the function-granularity call-graph
// profiler, and the real-OS POSIX interposition profiler -- ultimately
// collects one ProfileSet.  ProfilerSink is that common surface: a layer
// tag, the profile resolution, a snapshot of everything recorded so far,
// and a reset.  Orchestration code (src/runner) collects from any layer
// through this interface without knowing which profiler produced the data,
// exactly as the paper's analysis tooling consumes /proc profile dumps
// from any instrumentation level.
//
// Collection goes through one virtual entry point taking a CollectRequest
// struct, so adding a new kind of collected data extends the request and
// result structs instead of growing the interface by another virtual per
// kind.  The per-kind methods survive as thin non-virtual wrappers for one
// PR; new code should call Collect(CollectRequest).

#ifndef OSPROF_SRC_PROFILERS_PROFILER_SINK_H_
#define OSPROF_SRC_PROFILERS_PROFILER_SINK_H_

#include <string>

#include "src/core/layered.h"
#include "src/core/profile.h"

namespace osprofilers {

// What one Collect call should gather.  Defaults request everything, so
// `Collect(CollectRequest{})` is the full snapshot; orchestration that
// needs only one kind clears the others and the sink skips the copy.
struct CollectRequest {
  bool profiles = true;
  bool layered = true;
};

// The gathered data.  Fields for kinds that were not requested (or that
// the sink cannot produce) are empty / null.
struct Collected {
  // Snapshot of everything recorded so far; independent of future
  // recording.  Empty unless `request.profiles`.
  osprof::ProfileSet profiles;
  // The exact layered decomposition of this sink's operations, or nullptr
  // for sinks that cannot decompose -- observer-style profilers that
  // record outside any request span, and real-OS profilers with no
  // simulated kernel underneath.  Owned by the sink, valid until the next
  // Reset().  Null unless `request.layered`.
  const osprof::LayeredProfileSet* layered = nullptr;
};

class ProfilerSink {
 public:
  virtual ~ProfilerSink() = default;

  // Short tag naming the instrumentation layer this sink collects at
  // ("user", "fs", "driver", "callgraph", "posix", ...).
  virtual const std::string& layer() const = 0;

  // Bucket resolution of the collected profiles.
  virtual int resolution() const = 0;

  // Gathers the requested kinds of collected data.  Safe to call
  // repeatedly.
  virtual Collected Collect(const CollectRequest& request) const = 0;

  // --- Compatibility wrappers (pre-CollectRequest surface) ---------------
  // Derived classes bring these into scope with `using
  // ProfilerSink::Collect;` next to their Collect(CollectRequest)
  // override.

  // Snapshot of everything recorded so far.
  osprof::ProfileSet Collect() const {
    return Collect(CollectRequest{/*profiles=*/true, /*layered=*/false})
        .profiles;
  }

  // The layered decomposition, or nullptr for sinks without one.
  const osprof::LayeredProfileSet* CollectLayered() const {
    return Collect(CollectRequest{/*profiles=*/false, /*layered=*/true})
        .layered;
  }

  // Clears collected measurements (configuration is kept).
  virtual void Reset() = 0;
};

}  // namespace osprofilers

#endif  // OSPROF_SRC_PROFILERS_PROFILER_SINK_H_
