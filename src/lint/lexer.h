// A minimal C++ tokenizer for osprof_lint (src/lint/lint.h).
//
// The invariant rules need exactly four things a regex grep cannot give
// reliably: (1) identifiers as whole tokens ("cpu_time" must not match a
// ban on "time"), (2) string/char literals and comments excluded from
// matching (a rule table naming "rand" is not a call to rand), (3) the
// one-token lookback/lookahead that separates `clock(100)` the
// declaration from `clock(...)` the libc call, and (4) preprocessor
// directives as units (header guards, banned includes).  That is the
// whole feature list; this is a lexer, not a parser -- no preprocessing,
// no template disambiguation, no semantic analysis.

#ifndef OSPROF_SRC_LINT_LEXER_H_
#define OSPROF_SRC_LINT_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace oslint {

enum class TokKind {
  kIdentifier,  // Identifiers and keywords alike; rules distinguish.
  kNumber,      // Numeric literal, digit separators included.
  kString,      // "...", R"(...)", with encoding prefixes.
  kChar,        // '...'
  kPunct,       // One punctuator; "::" and "->" arrive as single tokens.
  kDirective,   // A whole preprocessor line, text without the leading '#'.
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character.
};

// Comments are kept separately: they never participate in rule matching,
// but carry the `osprof-lint: allow(...)` suppressions.
struct Comment {
  std::string text;
  int line = 0;      // First line.
  int end_line = 0;  // Last line (block comments span several).
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

// Tokenizes C/C++ source.  Never fails: unterminated literals and other
// malformed input degrade to best-effort tokens (the linter's job is to
// scan a tree that compiles, not to validate syntax).
LexResult Lex(std::string_view source);

}  // namespace oslint

#endif  // OSPROF_SRC_LINT_LEXER_H_
