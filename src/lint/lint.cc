#include "src/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/lint/lexer.h"

namespace oslint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Rule tables.

// determinism: identifiers whose mere mention is a nondeterminism source.
const std::unordered_set<std::string>& AlwaysBannedIdents() {
  static const std::unordered_set<std::string> kSet = {
      "steady_clock",
      "system_clock",
      "high_resolution_clock",
      "random_device",
  };
  return kSet;
}

// determinism: identifiers banned only in call position (`name(`), because
// the bare words are common ("time", "clock") as members and local names.
const std::unordered_set<std::string>& CallBannedIdents() {
  static const std::unordered_set<std::string> kSet = {
      "rand",         "srand",    "time",   "clock", "clock_gettime",
      "gettimeofday", "localtime", "gmtime", "mktime",
  };
  return kSet;
}

// Keywords that can legitimately precede a call (`return time(...)`).
// Any other identifier directly before `name(` makes it a declaration
// (`FakeClock clock(100)`), which is not a call.
const std::unordered_set<std::string>& CallContextKeywords() {
  static const std::unordered_set<std::string> kSet = {
      "return", "co_return", "co_await", "co_yield", "case",
      "if",     "while",     "for",      "switch",   "do",
      "else",   "throw",     "not",      "and",      "or",
  };
  return kSet;
}

// determinism: the two sanctioned homes for nondeterminism.  rng.h owns
// seeded pseudo-randomness; clock.* owns wall-clock reads (WallTimer).
bool DeterminismAllowlisted(const std::string& path) {
  return path.ends_with("src/sim/rng.h") || path.ends_with("src/core/clock.h") ||
         path.ends_with("src/core/clock.cc") || path == "rng.h" ||
         path == "clock.h" || path == "clock.cc";
}

// probe-discipline: record-path entry points that must take ProbeHandles
// (or pre-resolved ids), never string literals, at call sites.
const std::unordered_set<std::string>& RecordEntryPoints() {
  static const std::unordered_set<std::string> kSet = {
      "Record",
      "RecordWithValue",
      "Wrap",
      "WrapWithValue",
  };
  return kSet;
}

// probe-discipline: the profiling spine that is allowed to touch the
// kernel's RequestContext.  Span frames are pushed/popped only inside
// SimProfiler::Wrap / BeginSpan / EndSpan (and consumed by the callgraph
// and lock-order layers); workload or filesystem code must never
// manipulate frames by hand, or the layered decomposition stops being
// exact.
bool RequestContextAllowlisted(const std::string& path) {
  static const std::vector<std::string> kSpine = {
      "src/sim/request_context.h",      "src/sim/request_context.cc",
      "src/sim/kernel.h",               "src/sim/kernel.cc",
      "src/sim/interference.h",         "src/sim/interference.cc",
      "src/sim/lock_order.h",           "src/sim/lock_order.cc",
      "src/sim/race_tracker.h",         "src/sim/race_tracker.cc",
      "src/profilers/sim_profiler.h",   "src/profilers/sim_profiler.cc",
      "src/profilers/callgraph_profiler.h",
      "src/profilers/callgraph_profiler.cc",
      // The context's own unit tests drive frames by hand, by design.
      "tests/sim/request_context_test.cc",
      "tests/sim/scale_arena_test.cc",
  };
  for (const std::string& allowed : kSpine) {
    if (path.ends_with(allowed)) {
      return true;
    }
    // Bare file names, for lint runs from inside the directory.
    const std::size_t slash = allowed.rfind('/');
    if (path == allowed.substr(slash + 1)) {
      return true;
    }
  }
  return false;
}

// locking: std:: members that imply real threads or real blocking inside
// the simulation.  Simulated code must use osim::SimSemaphore /
// SimSpinlock so that blocking advances simulated -- not host -- time.
const std::unordered_set<std::string>& BannedStdSyncIdents() {
  static const std::unordered_set<std::string> kSet = {
      "mutex",        "thread",       "jthread",
      "condition_variable",           "condition_variable_any",
      "shared_mutex", "shared_lock",  "recursive_mutex",
      "timed_mutex",  "lock_guard",   "unique_lock",
      "scoped_lock",  "future",       "promise",
      "async",        "packaged_task",
  };
  return kSet;
}

const std::vector<std::string>& BannedSyncHeaders() {
  static const std::vector<std::string> kList = {
      "<mutex>", "<thread>", "<condition_variable>", "<shared_mutex>",
      "<future>",
  };
  return kList;
}

// locking is scoped: only code that runs under the simulated kernel.
bool InLockingScope(const std::string& path) {
  return path.find("src/sim/") != std::string::npos ||
         path.find("src/fs/") != std::string::npos ||
         path.find("src/net/") != std::string::npos;
}

bool IsHeaderPath(const std::string& path) { return path.ends_with(".h"); }

// ---------------------------------------------------------------------------
// Suppressions.
//
//   // osprof-lint: allow(rule[, rule...])
//
// covers every line the comment spans plus the line below it, so the
// comment works both trailing the offending line and on its own line
// above it.  Suppressions are parsed into a structured form first so the
// suppression-hygiene rule can audit each one against the raw findings.

struct SuppressionComment {
  int line = 0;      // First covered line (the comment's first line).
  int end_line = 0;  // Last comment line; coverage extends one line past.
  std::vector<std::string> rules;  // As written, in order.
};

using SuppressionMap = std::unordered_map<int, std::set<std::string>>;

std::vector<SuppressionComment> ParseSuppressionComments(
    const std::vector<Comment>& comments) {
  std::vector<SuppressionComment> parsed;
  for (const Comment& comment : comments) {
    const std::string& text = comment.text;
    const std::size_t marker = text.find("osprof-lint:");
    if (marker == std::string::npos) {
      continue;
    }
    const std::size_t open = text.find("allow(", marker);
    if (open == std::string::npos) {
      continue;
    }
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) {
      continue;
    }
    SuppressionComment entry;
    entry.line = comment.line;
    entry.end_line = comment.end_line;
    std::string rules = text.substr(open + 6, close - open - 6);
    std::stringstream ss(rules);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      const std::size_t first = rule.find_first_not_of(" \t");
      if (first == std::string::npos) {
        continue;
      }
      const std::size_t last = rule.find_last_not_of(" \t");
      std::string name = rule.substr(first, last - first + 1);
      // Rule names are kebab-case identifiers.  Anything else (the
      // `allow(rule[, rule...])` placeholders in documentation, say) is
      // not a suppression and must not reach the hygiene audit.
      const bool well_formed =
          !name.empty() &&
          std::all_of(name.begin(), name.end(), [](char c) {
            return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                   c == '-';
          });
      if (well_formed) {
        entry.rules.push_back(std::move(name));
      }
    }
    if (!entry.rules.empty()) {
      parsed.push_back(std::move(entry));
    }
  }
  return parsed;
}

SuppressionMap BuildSuppressionMap(
    const std::vector<SuppressionComment>& comments) {
  SuppressionMap map;
  for (const SuppressionComment& comment : comments) {
    for (const std::string& rule : comment.rules) {
      for (int line = comment.line; line <= comment.end_line + 1; ++line) {
        map[line].insert(rule);
      }
    }
  }
  return map;
}

bool Suppressed(const SuppressionMap& map, const std::string& rule, int line) {
  const auto it = map.find(line);
  return it != map.end() && it->second.count(rule) > 0;
}

// ---------------------------------------------------------------------------
// Directive helpers.

// Splits "include <mutex>" into ("include", "<mutex>"), trimming blanks.
std::pair<std::string, std::string> SplitDirective(const std::string& text) {
  std::size_t i = 0;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  std::size_t j = i;
  while (j < text.size() &&
         !std::isspace(static_cast<unsigned char>(text[j]))) {
    ++j;
  }
  const std::string keyword = text.substr(i, j - i);
  while (j < text.size() &&
         std::isspace(static_cast<unsigned char>(text[j]))) {
    ++j;
  }
  std::size_t end = text.size();
  while (end > j &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return {keyword, text.substr(j, end - j)};
}

// ---------------------------------------------------------------------------
// The rules.  Each walks the shared token stream; findings are filtered
// against the suppression map by the caller.

void CheckDeterminism(const std::string& path,
                      const std::vector<Token>& tokens,
                      std::vector<Finding>* findings) {
  if (DeterminismAllowlisted(path)) {
    return;
  }
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != TokKind::kIdentifier) {
      continue;
    }
    if (AlwaysBannedIdents().count(tok.text) > 0) {
      findings->push_back(Finding{
          kRuleDeterminism, path, tok.line,
          "nondeterminism source '" + tok.text +
              "' outside src/sim/rng.h and src/core/clock.* (use "
              "osprof::WallTimer for wall-clock timing)"});
      continue;
    }
    if (CallBannedIdents().count(tok.text) == 0) {
      continue;
    }
    // Call position only: `name` directly followed by `(`.
    if (i + 1 >= tokens.size() || tokens[i + 1].kind != TokKind::kPunct ||
        tokens[i + 1].text != "(") {
      continue;
    }
    if (i > 0) {
      const Token& prev = tokens[i - 1];
      // `obj.time(...)` / `ptr->clock(...)`: a member, not libc.
      if (prev.kind == TokKind::kPunct &&
          (prev.text == "." || prev.text == "->")) {
        continue;
      }
      // `FakeClock clock(100)`: a declaration, not a call.
      if (prev.kind == TokKind::kIdentifier &&
          CallContextKeywords().count(prev.text) == 0) {
        continue;
      }
    }
    findings->push_back(Finding{
        kRuleDeterminism, path, tok.line,
        "call to wall-clock/random function '" + tok.text +
            "()' outside src/sim/rng.h and src/core/clock.*"});
  }
}

void CheckProbeDiscipline(const std::string& path,
                          const std::vector<Token>& tokens,
                          std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != TokKind::kIdentifier) {
      continue;
    }
    if (tok.text == "mutable_profiles") {
      findings->push_back(Finding{
          kRuleProbeDiscipline, path, tok.line,
          "'mutable_profiles' was removed when op names were interned; "
          "use ProfileSet::Resolve / AddById"});
      continue;
    }
    // RequestContext frames belong to the profiling spine.  Outside it,
    // naming the type -- or calling `.Push(` / `->Pop(` on anything --
    // is manual frame manipulation and breaks the exactness guarantee.
    if (!RequestContextAllowlisted(path)) {
      if (tok.text == "RequestContext") {
        findings->push_back(Finding{
            kRuleProbeDiscipline, path, tok.line,
            "direct RequestContext use outside the profiling spine; span "
            "frames are pushed/popped only by SimProfiler::Wrap/"
            "BeginSpan/EndSpan"});
        continue;
      }
      if ((tok.text == "Push" || tok.text == "Pop") && i >= 1 &&
          i + 1 < tokens.size() && tokens[i - 1].kind == TokKind::kPunct &&
          (tokens[i - 1].text == "." || tokens[i - 1].text == "->") &&
          tokens[i + 1].kind == TokKind::kPunct && tokens[i + 1].text == "(") {
        findings->push_back(Finding{
            kRuleProbeDiscipline, path, tok.line,
            "manual span-frame " + tok.text +
                "() outside the profiling spine; only SimProfiler::Wrap/"
                "BeginSpan/EndSpan may manipulate RequestContext frames"});
        continue;
      }
    }
    // `Record("name", ...)` and friends: a string-keyed op name on the
    // record path re-introduces the per-record string lookup the
    // ProbeHandle redesign removed.  The deprecated string shims are gone,
    // so the rule applies tree-wide (tests included): a string literal
    // anywhere in the first argument (including concatenations like
    // `prefix + "read"`) is a violation.
    if (RecordEntryPoints().count(tok.text) == 0) {
      continue;
    }
    if (i + 1 >= tokens.size() || tokens[i + 1].kind != TokKind::kPunct ||
        tokens[i + 1].text != "(") {
      continue;
    }
    int depth = 0;
    for (std::size_t j = i + 1; j < tokens.size(); ++j) {
      const Token& arg = tokens[j];
      if (arg.kind == TokKind::kPunct) {
        if (arg.text == "(" || arg.text == "[" || arg.text == "{") {
          ++depth;
        } else if (arg.text == ")" || arg.text == "]" || arg.text == "}") {
          if (--depth == 0) {
            break;  // Call closed before any argument.
          }
        } else if (arg.text == "," && depth == 1) {
          break;  // End of the first argument.
        }
        continue;
      }
      if (arg.kind == TokKind::kString) {
        findings->push_back(Finding{
            kRuleProbeDiscipline, path, tok.line,
            "string-keyed op name at " + tok.text +
                "() call site; resolve a ProbeHandle at attach time instead"});
        break;
      }
    }
  }
}

void CheckLocking(const std::string& path, const std::vector<Token>& tokens,
                  std::vector<Finding>* findings) {
  if (!InLockingScope(path)) {
    return;
  }
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind == TokKind::kDirective) {
      const auto [keyword, arg] = SplitDirective(tok.text);
      if (keyword == "include") {
        for (const std::string& banned : BannedSyncHeaders()) {
          if (arg == banned) {
            findings->push_back(Finding{
                kRuleLocking, path, tok.line,
                "#include " + banned +
                    " in simulated code; use src/sim/sync.h primitives"});
          }
        }
      }
      continue;
    }
    // `std :: <banned>` as three consecutive tokens.
    if (tok.kind == TokKind::kIdentifier && tok.text == "std" &&
        i + 2 < tokens.size() && tokens[i + 1].kind == TokKind::kPunct &&
        tokens[i + 1].text == "::" &&
        tokens[i + 2].kind == TokKind::kIdentifier &&
        BannedStdSyncIdents().count(tokens[i + 2].text) > 0) {
      findings->push_back(Finding{
          kRuleLocking, path, tok.line,
          "std::" + tokens[i + 2].text +
              " in simulated code; real blocking desynchronizes simulated "
              "time (use osim::SimSemaphore / SimSpinlock)"});
    }
  }
}

void CheckHeaderHygiene(const std::string& path,
                        const std::vector<Token>& tokens,
                        std::vector<Finding>* findings) {
  if (!IsHeaderPath(path) || tokens.empty()) {
    return;
  }
  bool has_pragma_once = false;
  bool has_ifndef = false;
  bool has_define = false;
  for (const Token& tok : tokens) {
    if (tok.kind != TokKind::kDirective) {
      continue;
    }
    const auto [keyword, arg] = SplitDirective(tok.text);
    if (keyword == "pragma" && arg.starts_with("once")) {
      has_pragma_once = true;
    } else if (keyword == "ifndef") {
      has_ifndef = true;
    } else if (keyword == "define" && has_ifndef) {
      has_define = true;
    }
  }
  if (!has_pragma_once && !(has_ifndef && has_define)) {
    findings->push_back(Finding{
        kRuleHeaderHygiene, path, 1,
        "header has no include guard (#pragma once or #ifndef/#define)"});
  }
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind == TokKind::kIdentifier && tokens[i].text == "using" &&
        tokens[i + 1].kind == TokKind::kIdentifier &&
        tokens[i + 1].text == "namespace") {
      findings->push_back(Finding{
          kRuleHeaderHygiene, path, tokens[i].line,
          "'using namespace' in a header leaks into every includer"});
    }
  }
}

// shared-state: mutable static/thread_local data in simulated code must
// be an osim::Shared<T> cell so SimRace observes every access.  A lexer
// cannot see scopes, so the rule triggers on the storage keywords and
// then classifies the declaration by scanning ahead: a '(' directly
// after an identifier means a function declaration (skipped); const/
// constexpr/constinit or a Shared wrapper anywhere before the terminator
// means the data is immutable or already checked (skipped).
void CheckSharedState(const std::string& path,
                      const std::vector<Token>& tokens,
                      std::vector<Finding>* findings) {
  if (!InLockingScope(path)) {
    return;
  }
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != TokKind::kIdentifier ||
        (tok.text != "static" && tok.text != "thread_local")) {
      continue;
    }
    // `static thread_local` / `thread_local static`: treat as one
    // declaration, anchored at the first keyword.
    std::size_t j = i + 1;
    if (j < tokens.size() && tokens[j].kind == TokKind::kIdentifier &&
        (tokens[j].text == "static" || tokens[j].text == "thread_local")) {
      ++j;
    }
    bool is_mutable_data = true;
    int depth = 0;
    // Bounded scan: a declaration that runs longer than this is not
    // something a lexer should classify; give it the benefit of doubt.
    const std::size_t limit = std::min(tokens.size(), j + 64);
    for (; j < limit; ++j) {
      const Token& ahead = tokens[j];
      if (ahead.kind == TokKind::kDirective) {
        break;  // Preprocessor boundary: stop guessing.
      }
      if (ahead.kind == TokKind::kIdentifier) {
        if (ahead.text == "const" || ahead.text == "constexpr" ||
            ahead.text == "constinit" || ahead.text == "consteval" ||
            ahead.text == "Shared") {
          is_mutable_data = false;
          break;
        }
        continue;
      }
      if (ahead.kind != TokKind::kPunct) {
        continue;
      }
      if (ahead.text == "<" || ahead.text == "[") {
        ++depth;
      } else if (ahead.text == ">" || ahead.text == "]") {
        --depth;
      } else if (depth == 0 && ahead.text == "(") {
        // `static Ret Name(...)`: a function declaration, not data.
        is_mutable_data = j > 0 && tokens[j - 1].kind == TokKind::kIdentifier
                              ? false
                              : is_mutable_data;
        break;
      } else if (depth == 0 &&
                 (ahead.text == ";" || ahead.text == "=" ||
                  ahead.text == "{")) {
        break;  // Variable terminator reached with no exemption.
      }
    }
    if (is_mutable_data && j < limit) {
      findings->push_back(Finding{
          kRuleSharedState, path, tok.line,
          "mutable " + tok.text +
              " data in simulated code; wrap it in an osim::Shared<T> "
              "race-checked cell (src/sim/race_tracker.h) so SimRace "
              "observes every access"});
    }
  }
}

// suppression-hygiene: audits every allow(...) against the raw findings
// (before suppression filtering).  A suppression naming a rule that does
// not fire on its covered lines is dead weight that silently rots; a
// misspelled rule name suppresses nothing while looking like it does.
// These findings are themselves unsuppressible.
void CheckSuppressionHygiene(
    const std::string& path,
    const std::vector<SuppressionComment>& suppressions,
    const std::vector<Finding>& raw, std::vector<Finding>* findings) {
  const std::vector<std::string> known = AllRules();
  for (const SuppressionComment& comment : suppressions) {
    for (const std::string& rule : comment.rules) {
      if (rule == kRuleSuppressionHygiene) {
        findings->push_back(Finding{
            kRuleSuppressionHygiene, path, comment.line,
            "allow(" + rule + "): suppression-hygiene findings cannot "
            "be suppressed"});
        continue;
      }
      if (std::find(known.begin(), known.end(), rule) == known.end()) {
        findings->push_back(Finding{
            kRuleSuppressionHygiene, path, comment.line,
            "allow(" + rule + ") names an unknown rule; known rules are "
            "listed by `osprof_tool lint --help`"});
        continue;
      }
      bool fires = false;
      for (const Finding& f : raw) {
        if (f.rule == rule && f.line >= comment.line &&
            f.line <= comment.end_line + 1) {
          fires = true;
          break;
        }
      }
      if (!fires) {
        findings->push_back(Finding{
            kRuleSuppressionHygiene, path, comment.line,
            "allow(" + rule + ") suppresses nothing: the rule reports no "
            "finding on the lines this comment covers"});
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.

std::vector<std::string> AllRules() {
  return {kRuleDeterminism,  kRuleProbeDiscipline,    kRuleLocking,
          kRuleHeaderHygiene, kRuleSharedState,
          kRuleSuppressionHygiene};
}

bool LintConfig::RuleEnabled(std::string_view rule) const {
  if (rules.empty()) {
    return true;
  }
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

std::vector<Finding> LintText(const std::string& path,
                              std::string_view source,
                              const LintConfig& config) {
  const LexResult lexed = Lex(source);

  const std::vector<SuppressionComment> suppression_comments =
      ParseSuppressionComments(lexed.comments);
  const SuppressionMap suppressions =
      BuildSuppressionMap(suppression_comments);

  // Raw findings are computed for every base rule regardless of the
  // config's filter: suppression-hygiene must judge an allow(locking)
  // against the locking findings even when only hygiene is requested.
  std::vector<Finding> raw;
  CheckDeterminism(path, lexed.tokens, &raw);
  CheckProbeDiscipline(path, lexed.tokens, &raw);
  CheckLocking(path, lexed.tokens, &raw);
  CheckHeaderHygiene(path, lexed.tokens, &raw);
  CheckSharedState(path, lexed.tokens, &raw);

  std::vector<Finding> findings;
  if (config.RuleEnabled(kRuleSuppressionHygiene)) {
    // Hygiene findings bypass the suppression filter by construction;
    // they are emitted before `raw` is consumed below.
    CheckSuppressionHygiene(path, suppression_comments, raw, &findings);
  }
  for (Finding& f : raw) {
    if (config.RuleEnabled(f.rule) && !Suppressed(suppressions, f.rule, f.line)) {
      findings.push_back(std::move(f));
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) {
                return a.line < b.line;
              }
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> LintFile(const std::string& path,
                              const LintConfig& config) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Finding{"io-error", path, 0, "cannot read file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintText(path, buffer.str(), config);
}

LintRun LintPaths(const std::vector<std::string>& paths,
                  const LintConfig& config) {
  std::vector<std::string> files;
  LintRun run;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (auto it = fs::recursive_directory_iterator(
               path, fs::directory_options::skip_permission_denied, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file(ec)) {
          continue;
        }
        const std::string p = it->path().generic_string();
        if (p.ends_with(".h") || p.ends_with(".cc") || p.ends_with(".cpp")) {
          files.push_back(p);
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      run.findings.push_back(
          Finding{"io-error", path, 0, "no such file or directory"});
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  for (const std::string& file : files) {
    std::vector<Finding> found = LintFile(file, config);
    run.findings.insert(run.findings.end(),
                        std::make_move_iterator(found.begin()),
                        std::make_move_iterator(found.end()));
    ++run.files_scanned;
  }
  return run;
}

std::string RenderFindings(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  return out;
}

osjson::Value FindingsJson(const LintRun& run) {
  osjson::Value doc = osjson::Value::Object();
  doc.Set("schema", osjson::Value::Str("osprof-lint-v1"));
  doc.Set("files_scanned", osjson::Value::Int(run.files_scanned));
  doc.Set("finding_count",
          osjson::Value::Int(static_cast<std::int64_t>(run.findings.size())));

  std::map<std::string, int> counts;
  for (const std::string& rule : AllRules()) {
    counts[rule] = 0;
  }
  for (const Finding& f : run.findings) {
    ++counts[f.rule];
  }
  osjson::Value by_rule = osjson::Value::Object();
  for (const auto& [rule, count] : counts) {
    by_rule.Set(rule, osjson::Value::Int(count));
  }
  doc.Set("counts", std::move(by_rule));

  osjson::Value list = osjson::Value::Array();
  for (const Finding& f : run.findings) {
    osjson::Value entry = osjson::Value::Object();
    entry.Set("rule", osjson::Value::Str(f.rule));
    entry.Set("file", osjson::Value::Str(f.file));
    entry.Set("line", osjson::Value::Int(f.line));
    entry.Set("message", osjson::Value::Str(f.message));
    list.Append(std::move(entry));
  }
  doc.Set("findings", std::move(list));
  return doc;
}

}  // namespace oslint
