#include "src/lint/lexer.h"

#include <algorithm>
#include <cctype>

namespace oslint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// The lexer proper: a single forward pass with one character of state.
class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  LexResult Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        BlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        Directive();
        continue;
      }
      at_line_start_ = false;
      if (IsIdentStart(c)) {
        Identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        Number();
        continue;
      }
      if (c == '"') {
        StringLiteral(/*raw=*/false);
        continue;
      }
      if (c == '\'') {
        CharLiteral();
        continue;
      }
      Punct();
    }
    return std::move(result_);
  }

 private:
  char Peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Emit(TokKind kind, std::size_t begin, int line) {
    result_.tokens.push_back(
        Token{kind, std::string(src_.substr(begin, pos_ - begin)), line});
  }

  void LineComment() {
    const std::size_t begin = pos_;
    const int begin_line = line_;
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      ++pos_;
    }
    std::size_t end = pos_;
    if (end > begin && src_[end - 1] == '\r') {
      --end;  // CRLF: the '\r' belongs to the line ending, not the text.
    }
    result_.comments.push_back(
        Comment{std::string(src_.substr(begin, end - begin)), begin_line,
                begin_line});
  }

  void BlockComment() {
    const std::size_t begin = pos_;
    const int begin_line = line_;
    pos_ += 2;
    while (pos_ < src_.size() && !(src_[pos_] == '*' && Peek(1) == '/')) {
      if (src_[pos_] == '\n') {
        ++line_;
      }
      ++pos_;
    }
    pos_ = pos_ + 2 <= src_.size() ? pos_ + 2 : src_.size();
    result_.comments.push_back(
        Comment{std::string(src_.substr(begin, pos_ - begin)), begin_line,
                line_});
  }

  // A whole preprocessor line including backslash continuations.  Comments
  // inside the directive are left in its text; the directive-consuming
  // rules only do prefix matching, so that is harmless.
  void Directive() {
    const int begin_line = line_;
    ++pos_;  // Skip '#'.
    const std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      // Backslash continuations, in both LF and CRLF encodings: the
      // directive swallows the newline and later tokens keep correct
      // line numbers.
      if (src_[pos_] == '\\' && Peek(1) == '\n') {
        ++line_;
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\\' && Peek(1) == '\r' && Peek(2) == '\n') {
        ++line_;
        pos_ += 3;
        continue;
      }
      if (src_[pos_] == '\n') {
        break;
      }
      // A // comment ends the directive's interesting part.
      if (src_[pos_] == '/' && Peek(1) == '/') {
        break;
      }
      ++pos_;
    }
    result_.tokens.push_back(Token{
        TokKind::kDirective, std::string(src_.substr(begin, pos_ - begin)),
        begin_line});
    at_line_start_ = false;
  }

  void Identifier() {
    const std::size_t begin = pos_;
    const int begin_line = line_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) {
      ++pos_;
    }
    const std::string_view text = src_.substr(begin, pos_ - begin);
    // Raw / prefixed string literals: R"...", u8R"...", L"...", etc.
    if (pos_ < src_.size() && src_[pos_] == '"') {
      const bool raw = !text.empty() && text.back() == 'R' &&
                       (text == "R" || text == "LR" || text == "uR" ||
                        text == "UR" || text == "u8R");
      const bool prefix = raw || text == "L" || text == "u" || text == "U" ||
                          text == "u8";
      if (prefix) {
        StringLiteral(raw);
        // The prefix is folded into the string token conceptually; the
        // emitted string token text just lacks it, which no rule cares
        // about.
        return;
      }
    }
    Emit(TokKind::kIdentifier, begin, begin_line);
  }

  void Number() {
    const std::size_t begin = pos_;
    const int begin_line = line_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        ++pos_;
        continue;
      }
      // Exponent signs: 1e+9, 0x1p-3.
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    Emit(TokKind::kNumber, begin, begin_line);
  }

  void StringLiteral(bool raw) {
    const std::size_t begin = pos_;
    const int begin_line = line_;
    ++pos_;  // Skip opening quote.
    if (raw) {
      // R"delim( ... )delim"
      std::string delim;
      while (pos_ < src_.size() && src_[pos_] != '(') {
        delim.push_back(src_[pos_++]);
      }
      const std::string closer = ")" + delim + "\"";
      while (pos_ < src_.size() &&
             src_.substr(pos_, closer.size()) != closer) {
        if (src_[pos_] == '\n') {
          ++line_;
        }
        ++pos_;
      }
      pos_ = std::min(pos_ + closer.size(), src_.size());
    } else {
      while (pos_ < src_.size() && src_[pos_] != '"' && src_[pos_] != '\n') {
        if (src_[pos_] == '\\') {
          ++pos_;
        }
        ++pos_;
      }
      if (pos_ < src_.size() && src_[pos_] == '"') {
        ++pos_;
      }
    }
    Emit(TokKind::kString, begin, begin_line);
  }

  void CharLiteral() {
    const std::size_t begin = pos_;
    const int begin_line = line_;
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'' && src_[pos_] != '\n') {
      if (src_[pos_] == '\\') {
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') {
      ++pos_;
    }
    Emit(TokKind::kChar, begin, begin_line);
  }

  void Punct() {
    const std::size_t begin = pos_;
    const int begin_line = line_;
    const char c = src_[pos_];
    // Multi-character punctuators the rules look back through.
    if ((c == ':' && Peek(1) == ':') || (c == '-' && Peek(1) == '>')) {
      pos_ += 2;
    } else {
      ++pos_;
    }
    Emit(TokKind::kPunct, begin, begin_line);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexResult result_;
};

}  // namespace

LexResult Lex(std::string_view source) { return Lexer(source).Run(); }

}  // namespace oslint
