// osprof_lint: the in-tree static-analysis pass over this repository's
// own sources.
//
// Every profiling guarantee this codebase makes rests on invariants that
// used to be enforced only by code review:
//
//  * determinism   -- byte-identical golden serialization requires that
//                     nothing outside src/sim/rng.h and src/core/clock.*
//                     observes a nondeterminism source (wall clocks,
//                     rand(), std::random_device);
//  * probe-discipline -- the ISSUE-3 hot-path contract: no string-literal
//                     op names at Record/RecordWithValue/Wrap/
//                     WrapWithValue call sites (those must resolve a
//                     ProbeHandle at attach time), and no resurrection of
//                     removed accessors (mutable_profiles);
//  * locking       -- simulated task code in src/sim, src/fs and src/net
//                     must block through the sim/sync primitives, never
//                     real std::mutex / std::thread (which would desync
//                     simulated time);
//  * header-hygiene -- every header carries a guard (#pragma once or
//                     #ifndef/#define) and no header writes
//                     `using namespace`;
//  * shared-state  -- mutable static/thread_local data in src/sim, src/fs
//                     and src/net must be wrapped in an osim::Shared<T>
//                     race-checked cell (src/sim/race_tracker.h) or carry
//                     an explicit allow, so SimRace sees every access;
//  * suppression-hygiene -- every `osprof-lint: allow(...)` must name
//                     known rules that actually fire on the lines the
//                     comment covers; stale or misspelled suppressions
//                     are findings themselves and cannot be suppressed.
//
// Rules are individually suppressible at the offending line with
//   // osprof-lint: allow(rule[, rule...])
// on the same line or the line directly above.  Findings serialize as
// osprof-lint-v1 JSON (osjson) for CI, and as file:line text for humans.

#ifndef OSPROF_SRC_LINT_LINT_H_
#define OSPROF_SRC_LINT_LINT_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/jsonw.h"

namespace oslint {

// Stable rule identifiers; these are the names used in suppression
// comments, --rules= filters and JSON output.
inline constexpr const char* kRuleDeterminism = "determinism";
inline constexpr const char* kRuleProbeDiscipline = "probe-discipline";
inline constexpr const char* kRuleLocking = "locking";
inline constexpr const char* kRuleHeaderHygiene = "header-hygiene";
inline constexpr const char* kRuleSharedState = "shared-state";
inline constexpr const char* kRuleSuppressionHygiene = "suppression-hygiene";

// All rules, in reporting order.
std::vector<std::string> AllRules();

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

struct LintConfig {
  // Empty means every rule.  Unknown names are rejected by the CLI before
  // a config is built.
  std::vector<std::string> rules;

  bool RuleEnabled(std::string_view rule) const;
};

// Lints one in-memory source.  `path` determines per-rule scoping (the
// determinism allowlist, the locking rule's src/sim|fs|net scope, the
// header rules' *.h scope) and is echoed into findings; it does not need
// to exist on disk.
std::vector<Finding> LintText(const std::string& path,
                              std::string_view source,
                              const LintConfig& config = {});

// Lints one file from disk.  I/O failures produce a finding with rule
// "io-error" so a vanished file cannot silently pass.
std::vector<Finding> LintFile(const std::string& path,
                              const LintConfig& config = {});

struct LintRun {
  std::vector<Finding> findings;
  int files_scanned = 0;
};

// Lints files and directories (recursively; *.h, *.cc, *.cpp).  Paths are
// visited in sorted order so output is deterministic.
LintRun LintPaths(const std::vector<std::string>& paths,
                  const LintConfig& config = {});

// file:line: [rule] message, one per finding.
std::string RenderFindings(const std::vector<Finding>& findings);

// The osprof-lint-v1 document: schema, files_scanned, per-rule counts,
// and the findings array.
osjson::Value FindingsJson(const LintRun& run);

}  // namespace oslint

#endif  // OSPROF_SRC_LINT_LINT_H_
