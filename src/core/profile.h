// Profiles and profile sets.
//
// A Profile is the latency histogram of one OS operation (e.g. "read",
// "llseek", "readdir").  A ProfileSet is a "complete profile" in the
// paper's terms: the collection of per-operation profiles captured during
// one workload run, at one layer (user / file-system / driver).
//
// ProfileSet serializes to a line-oriented text format modelled on the
// paper's /proc reporting interface, and parses it back, so profiles can be
// captured in one process and analyzed in another.

#ifndef OSPROF_SRC_CORE_PROFILE_H_
#define OSPROF_SRC_CORE_PROFILE_H_

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/histogram.h"

namespace osprof {

// The latency profile of a single operation.
class Profile {
 public:
  Profile() : Profile("", 1) {}
  explicit Profile(std::string op_name, int resolution = 1)
      : op_name_(std::move(op_name)), histogram_(resolution) {}
  Profile(std::string op_name, Histogram histogram)
      : op_name_(std::move(op_name)), histogram_(std::move(histogram)) {}

  const std::string& op_name() const { return op_name_; }
  Histogram& histogram() { return histogram_; }
  const Histogram& histogram() const { return histogram_; }

  void Add(Cycles latency) { histogram_.Add(latency); }

  // Merges another profile's measurements into this one (resolution-checked
  // by Histogram::Merge).  The operation name of `this` is kept, so sharded
  // or per-trial profiles of the same operation can be combined regardless
  // of how the shards were labelled.
  void Merge(const Profile& other) { histogram_.Merge(other.histogram_); }

  std::uint64_t total_operations() const {
    return histogram_.TotalOperations();
  }
  Cycles total_latency() const { return histogram_.total_latency(); }

 private:
  std::string op_name_;
  Histogram histogram_;
};

// A complete profile: one Profile per operation name.
class ProfileSet {
 public:
  explicit ProfileSet(int resolution = 1) : resolution_(resolution) {}

  // Returns the profile for `op`, creating it if absent.
  Profile& operator[](const std::string& op);

  // Returns the profile for `op` or nullptr.
  const Profile* Find(const std::string& op) const;

  void Add(const std::string& op, Cycles latency) { (*this)[op].Add(latency); }

  // Merges every profile of `other` into this set, summing histograms of
  // operations present in both (paper §3.4: shards collected concurrently
  // are combined afterwards; §7: per-machine sets merge into a fleet view).
  // Throws std::invalid_argument if the resolutions differ.  Merge is
  // associative and commutative, so any merge tree over the same shards
  // yields an identical set.
  void Merge(const ProfileSet& other);

  bool empty() const { return profiles_.empty(); }
  std::size_t size() const { return profiles_.size(); }
  int resolution() const { return resolution_; }

  // Operation names present, sorted lexicographically.
  std::vector<std::string> OperationNames() const;

  // Operation names sorted by descending total latency: the paper's profile
  // preprocessing step ("select profiles ... that contribute the most to the
  // total latency").
  std::vector<std::string> ByTotalLatency() const;

  // Sum of total_latency over all operations.
  Cycles TotalLatency() const;
  std::uint64_t TotalOperations() const;

  // Iteration (sorted by name, since std::map).
  auto begin() const { return profiles_.begin(); }
  auto end() const { return profiles_.end(); }

  // Text serialization.
  void Serialize(std::ostream& os) const;
  std::string ToString() const;
  // Parses a serialized set; throws std::runtime_error on malformed input.
  static ProfileSet Parse(std::istream& is);
  static ProfileSet ParseString(const std::string& text);

  // True iff every contained histogram passes its checksum test.
  bool CheckConsistency() const;

 private:
  int resolution_;
  std::map<std::string, Profile> profiles_;
};

}  // namespace osprof

#endif  // OSPROF_SRC_CORE_PROFILE_H_
