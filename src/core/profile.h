// Profiles and profile sets.
//
// A Profile is the latency histogram of one OS operation (e.g. "read",
// "llseek", "readdir").  A ProfileSet is a "complete profile" in the
// paper's terms: the collection of per-operation profiles captured during
// one workload run, at one layer (user / file-system / driver).
//
// Storage is a flat std::vector<Profile> indexed by dense OpId (see
// op_table.h): the hot path -- AddById(handle.id(), latency) -- is one
// indexed load plus a histogram increment, with no allocation and no
// string-keyed lookup.  Iteration and text serialization go through the
// table's sorted name index, so output stays sorted-by-name and
// byte-identical regardless of the order operations were interned in.
//
// A slot can be interned without being *declared*: Resolve() pre-creates
// the slot for a probe handle but keeps it invisible to size()/iteration/
// serialization until something is recorded into it (or it is declared via
// operator[] / Parse / Merge).  This is what lets layers pre-resolve every
// probe they might fire at attach time without phantom empty profiles
// leaking into golden outputs.
//
// ProfileSet serializes to a line-oriented text format modelled on the
// paper's /proc reporting interface, and parses it back, so profiles can be
// captured in one process and analyzed in another.

#ifndef OSPROF_SRC_CORE_PROFILE_H_
#define OSPROF_SRC_CORE_PROFILE_H_

#include <cstddef>
#include <iosfwd>
#include <iterator>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/histogram.h"
#include "src/core/op_table.h"

namespace osprof {

// The latency profile of a single operation.  The histogram is the first
// member so the record path's loads land at offset zero, ahead of the cold
// operation name.
class Profile {
 public:
  Profile() : Profile("", 1) {}
  explicit Profile(std::string op_name, int resolution = 1)
      : histogram_(resolution), op_name_(std::move(op_name)) {}
  Profile(std::string op_name, Histogram histogram)
      : histogram_(std::move(histogram)), op_name_(std::move(op_name)) {}

  const std::string& op_name() const { return op_name_; }
  Histogram& histogram() { return histogram_; }
  const Histogram& histogram() const { return histogram_; }

  void Add(Cycles latency) { histogram_.Add(latency); }
  void AddInBucket(int bucket, Cycles latency) {
    histogram_.AddInBucket(bucket, latency);
  }

  // Merges another profile's measurements into this one (resolution-checked
  // by Histogram::Merge).  The operation name of `this` is kept, so sharded
  // or per-trial profiles of the same operation can be combined regardless
  // of how the shards were labelled.
  void Merge(const Profile& other) { histogram_.Merge(other.histogram_); }

  std::uint64_t total_operations() const {
    return histogram_.TotalOperations();
  }
  Cycles total_latency() const { return histogram_.total_latency(); }

 private:
  Histogram histogram_;
  std::string op_name_;
};

// A complete profile: one Profile per operation name.
class ProfileSet {
 public:
  explicit ProfileSet(int resolution = 1) : resolution_(resolution) {}

  // Interns `op` and returns a handle for the hot path.  Resolving does
  // NOT declare the operation: until something is recorded under the
  // handle, the slot stays invisible to size()/Find/iteration/Serialize.
  ProbeHandle Resolve(std::string_view op);

  // Slot access by pre-resolved id.  The reference is invalidated by the
  // next Resolve()/operator[]/Merge/Parse (vector growth); ids themselves
  // stay valid for the set's lifetime.
  Profile& ById(OpId id) { return profiles_[static_cast<std::size_t>(id)]; }
  const Profile& ById(OpId id) const {
    return profiles_[static_cast<std::size_t>(id)];
  }

  // The allocation- and lookup-free record path: indexed load, bucket
  // index, increment.
  void AddById(OpId id, Cycles latency) {
    profiles_[static_cast<std::size_t>(id)].Add(latency);
  }

  // Same, with the bucket precomputed by the caller (shared with the
  // layered decomposition's Add).
  void AddById(OpId id, int bucket, Cycles latency) {
    profiles_[static_cast<std::size_t>(id)].AddInBucket(bucket, latency);
  }

  // Returns the profile for `op`, creating (and declaring) it if absent.
  Profile& operator[](std::string_view op);

  // Returns the profile for `op`, or nullptr if it was never declared or
  // recorded into (pre-resolved but unfired probes don't count).
  const Profile* Find(std::string_view op) const;

  void Add(std::string_view op, Cycles latency) { (*this)[op].Add(latency); }

  // Merges every profile of `other` into this set, summing histograms of
  // operations present in both (paper §3.4: shards collected concurrently
  // are combined afterwards; §7: per-machine sets merge into a fleet view).
  // Throws std::invalid_argument if the resolutions differ.  Merge is
  // associative and commutative, so any merge tree over the same shards
  // yields an identical set.
  void Merge(const ProfileSet& other);

  // Zeroes every histogram and un-declares every slot in place, keeping
  // the op table (and therefore every outstanding ProbeHandle) valid.
  void ClearCounts();

  bool empty() const { return size() == 0; }
  std::size_t size() const;
  int resolution() const { return resolution_; }

  // The interning table backing this set (ids, names, sorted index).
  const OpTable& ops() const { return table_; }

  // Operation names present, sorted lexicographically.
  std::vector<std::string> OperationNames() const;

  // Operation names sorted by descending total latency: the paper's profile
  // preprocessing step ("select profiles ... that contribute the most to the
  // total latency").
  std::vector<std::string> ByTotalLatency() const;

  // Sum of total_latency over all operations.
  Cycles TotalLatency() const;
  std::uint64_t TotalOperations() const;

  // Iteration (sorted by name via the table's index; invisible slots --
  // resolved but never recorded or declared -- are skipped).  Dereferences
  // to a pair<const string&, const Profile&>, so structured-binding loops
  // written against the old map backing keep working unchanged.
  class const_iterator {
   public:
    using value_type = std::pair<const std::string&, const Profile&>;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    value_type operator*() const {
      return {it_->first, set_->ById(it_->second)};
    }
    const_iterator& operator++() {
      ++it_;
      SkipInvisible();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++*this;
      return copy;
    }
    bool operator==(const const_iterator& other) const {
      return it_ == other.it_;
    }
    bool operator!=(const const_iterator& other) const {
      return it_ != other.it_;
    }

   private:
    friend class ProfileSet;
    const_iterator(const ProfileSet* set, OpTable::NameMap::const_iterator it)
        : set_(set), it_(it) {
      SkipInvisible();
    }
    void SkipInvisible();

    const ProfileSet* set_ = nullptr;
    OpTable::NameMap::const_iterator it_;
  };

  const_iterator begin() const {
    return const_iterator(this, table_.by_name().begin());
  }
  const_iterator end() const {
    return const_iterator(this, table_.by_name().end());
  }

  // Text serialization.
  void Serialize(std::ostream& os) const;
  std::string ToString() const;
  // Parses a serialized set; throws std::runtime_error on malformed input.
  static ProfileSet Parse(std::istream& is);
  static ProfileSet ParseString(const std::string& text);

  // True iff every contained histogram passes its checksum test.
  bool CheckConsistency() const;

 private:
  // A slot participates in size()/iteration/serialization iff it was
  // declared (operator[]/Parse/Merge) or has recorded at least one latency.
  bool Visible(OpId id) const {
    return declared_[static_cast<std::size_t>(id)] ||
           profiles_[static_cast<std::size_t>(id)].histogram().recorded() != 0;
  }

  int resolution_;
  OpTable table_;
  std::vector<Profile> profiles_;  // Indexed by OpId, parallel to table_.
  std::vector<bool> declared_;     // Indexed by OpId.
};

}  // namespace osprof

#endif  // OSPROF_SRC_CORE_PROFILE_H_
