#include "src/core/cluster.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "src/core/analysis.h"

namespace osprof {

ProfileSet MergeCluster(const std::vector<MachineProfile>& machines) {
  if (machines.empty()) {
    return ProfileSet(1);
  }
  ProfileSet merged(machines.front().profiles.resolution());
  for (const MachineProfile& m : machines) {
    merged.Merge(m.profiles);  // Resolution-checked by ProfileSet::Merge.
  }
  return merged;
}

ProfileSet PrefixOperations(const ProfileSet& set, const std::string& prefix) {
  ProfileSet out(set.resolution());
  for (const auto& [name, profile] : set) {
    out[prefix + name].Merge(profile);
  }
  return out;
}

std::vector<MachineDeviation> FindOutliers(
    const std::vector<MachineProfile>& machines, CompareMethod method) {
  std::vector<MachineDeviation> out;
  if (machines.size() < 2) {
    return out;
  }
  const int resolution = machines.front().profiles.resolution();
  const double threshold = DefaultThreshold(method);

  std::set<std::string> ops;
  for (const MachineProfile& m : machines) {
    for (const auto& [name, profile] : m.profiles) {
      ops.insert(name);
    }
  }

  const Histogram kEmpty(resolution);
  auto histogram_of = [&kEmpty](const MachineProfile& m,
                                const std::string& op) -> const Histogram& {
    const Profile* p = m.profiles.Find(op);
    return p != nullptr ? p->histogram() : kEmpty;
  };

  for (const std::string& op : ops) {
    for (std::size_t i = 0; i < machines.size(); ++i) {
      const Histogram& mine = histogram_of(machines[i], op);
      std::vector<double> distances;
      distances.reserve(machines.size() - 1);
      for (std::size_t j = 0; j < machines.size(); ++j) {
        if (j == i) {
          continue;
        }
        const Histogram& theirs = histogram_of(machines[j], op);
        if (mine.empty() != theirs.empty()) {
          distances.push_back(1.0);  // Op runs on one side only.
        } else if (mine.empty()) {
          distances.push_back(0.0);
        } else {
          distances.push_back(Distance(method, mine, theirs));
        }
      }
      // Lower median: with a strict minority of sick machines, a healthy
      // node's median distance pairs it with another healthy node.
      const std::size_t mid = (distances.size() - 1) / 2;
      std::nth_element(distances.begin(),
                       distances.begin() + static_cast<std::ptrdiff_t>(mid),
                       distances.end());
      MachineDeviation d;
      d.machine = machines[i].machine;
      d.op_name = op;
      d.score = distances[mid];
      d.outlier = d.score >= threshold;
      out.push_back(std::move(d));
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const MachineDeviation& a, const MachineDeviation& b) {
                     return a.score > b.score;
                   });
  return out;
}

}  // namespace osprof
