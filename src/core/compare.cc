#include "src/core/compare.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace osprof {
namespace {

void RequireSameShape(const Histogram& a, const Histogram& b) {
  if (a.resolution() != b.resolution()) {
    throw std::invalid_argument("cannot compare histograms of different resolution");
  }
}

}  // namespace

double ChiSquareDistance(const Histogram& a, const Histogram& b) {
  RequireSameShape(a, b);
  const std::vector<double> pa = a.Normalized();
  const std::vector<double> pb = b.Normalized();
  double sum = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const double denom = pa[i] + pb[i];
    if (denom > 0.0) {
      const double d = pa[i] - pb[i];
      sum += d * d / denom;
    }
  }
  return sum;
}

double MinkowskiDistance(const Histogram& a, const Histogram& b, double p) {
  RequireSameShape(a, b);
  if (p < 1.0) {
    throw std::invalid_argument("Minkowski order must be >= 1");
  }
  const std::vector<double> pa = a.Normalized();
  const std::vector<double> pb = b.Normalized();
  double sum = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    sum += std::pow(std::abs(pa[i] - pb[i]), p);
  }
  return std::pow(sum, 1.0 / p);
}

double IntersectionDistance(const Histogram& a, const Histogram& b) {
  RequireSameShape(a, b);
  if (a.TotalOperations() == 0 && b.TotalOperations() == 0) {
    return 0.0;  // Two empty profiles are identical.
  }
  const std::vector<double> pa = a.Normalized();
  const std::vector<double> pb = b.Normalized();
  double overlap = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    overlap += std::min(pa[i], pb[i]);
  }
  return 1.0 - overlap;
}

double JeffreyDivergence(const Histogram& a, const Histogram& b) {
  RequireSameShape(a, b);
  // Smooth with a small epsilon so empty bins do not produce infinities.
  constexpr double kEpsilon = 1e-12;
  const std::vector<double> pa = a.Normalized();
  const std::vector<double> pb = b.Normalized();
  double sum = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const double x = pa[i] + kEpsilon;
    const double y = pb[i] + kEpsilon;
    const double m = (x + y) / 2.0;
    sum += x * std::log(x / m) + y * std::log(y / m);
  }
  return std::max(sum, 0.0);
}

double EarthMoversWork(const Histogram& a, const Histogram& b) {
  RequireSameShape(a, b);
  // In one dimension with unit adjacent-bucket distance, the minimum-work
  // transport plan moves the running surplus one bucket at a time, so the
  // total work is the L1 distance between the cumulative distributions.
  const std::vector<double> pa = a.Normalized();
  const std::vector<double> pb = b.Normalized();
  double carried = 0.0;
  double work = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    carried += pa[i] - pb[i];
    work += std::abs(carried);
  }
  return work;
}

double EarthMoversDistance(const Histogram& a, const Histogram& b) {
  // Normalize the transport work by a fixed "significant shift" of 3
  // buckets: with log2 buckets, moving a whole profile 3 buckets is
  // nearly an order of magnitude in latency -- unmistakably a behavioural
  // change -- while sampling noise drifts mass at most one bucket.
  constexpr double kSignificantShiftBuckets = 3.0;
  const double work = EarthMoversWork(a, b);
  return std::min(1.0, work / kSignificantShiftBuckets);
}

double TotalOpsDifference(const Histogram& a, const Histogram& b) {
  const double na = static_cast<double>(a.TotalOperations());
  const double nb = static_cast<double>(b.TotalOperations());
  const double mx = std::max(na, nb);
  if (mx == 0.0) {
    return 0.0;
  }
  return std::abs(na - nb) / mx;
}

double TotalLatencyDifference(const Histogram& a, const Histogram& b) {
  const double la = static_cast<double>(a.total_latency());
  const double lb = static_cast<double>(b.total_latency());
  const double mx = std::max(la, lb);
  if (mx == 0.0) {
    return 0.0;
  }
  return std::abs(la - lb) / mx;
}

std::string CompareMethodName(CompareMethod method) {
  switch (method) {
    case CompareMethod::kChiSquare:
      return "chi-square";
    case CompareMethod::kTotalOps:
      return "total-ops";
    case CompareMethod::kTotalLatency:
      return "total-latency";
    case CompareMethod::kEarthMovers:
      return "earth-movers";
    case CompareMethod::kIntersection:
      return "intersection";
    case CompareMethod::kJeffrey:
      return "jeffrey";
    case CompareMethod::kMinkowskiL1:
      return "minkowski-l1";
    case CompareMethod::kMinkowskiL2:
      return "minkowski-l2";
  }
  return "unknown";
}

double Distance(CompareMethod method, const Histogram& a, const Histogram& b) {
  switch (method) {
    case CompareMethod::kChiSquare:
      return ChiSquareDistance(a, b);
    case CompareMethod::kTotalOps:
      return TotalOpsDifference(a, b);
    case CompareMethod::kTotalLatency:
      return TotalLatencyDifference(a, b);
    case CompareMethod::kEarthMovers:
      return EarthMoversDistance(a, b);
    case CompareMethod::kIntersection:
      return IntersectionDistance(a, b);
    case CompareMethod::kJeffrey:
      return JeffreyDivergence(a, b);
    case CompareMethod::kMinkowskiL1:
      return MinkowskiDistance(a, b, 1.0);
    case CompareMethod::kMinkowskiL2:
      return MinkowskiDistance(a, b, 2.0);
  }
  throw std::invalid_argument("unknown CompareMethod");
}

}  // namespace osprof
