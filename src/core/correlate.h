// Direct profile and value correlation (paper §3.1, Figure 8).
//
// After a latency profile reveals peaks, the profiler can be re-armed to
// correlate an internal variable with the peaks: for every request, the
// value of the variable is bucketed into a *separate* histogram per peak,
// selected by which peak the request's measured latency falls into.  The
// paper's Figure 8 proves the first readdir peak is past-EOF reads by
// correlating `readdir_past_EOF * 1024` with the peaks this way.

#ifndef OSPROF_SRC_CORE_CORRELATE_H_
#define OSPROF_SRC_CORE_CORRELATE_H_

#include <string>
#include <vector>

#include "src/core/histogram.h"
#include "src/core/peaks.h"

namespace osprof {

// Correlates a value with the latency peaks of one operation.
class ValueCorrelator {
 public:
  // `peaks` are the latency-bucket ranges to classify against (from
  // FindPeaks on a previously captured profile).  Requests whose latency
  // matches none of the ranges go to the overflow histogram.
  ValueCorrelator(std::string value_name, std::vector<Peak> peaks,
                  int resolution = 1);

  // Records one request: which peak `latency` belongs to, and the log2
  // histogram of `value` for that peak.
  void Record(Cycles latency, std::uint64_t value);

  const std::string& value_name() const { return value_name_; }
  int num_peaks() const { return static_cast<int>(peaks_.size()); }
  const Peak& peak(int i) const { return peaks_[i]; }

  // The value histogram of requests whose latency fell in peak `i`.
  const Histogram& peak_values(int i) const { return per_peak_[i]; }
  // Requests that matched no configured peak.
  const Histogram& unmatched_values() const { return unmatched_; }

  // Merges the value histograms of every peak except `i` (the paper's
  // "other peaks" profile in Figure 8).
  Histogram OtherPeaksValues(int i) const;

 private:
  std::string value_name_;
  std::vector<Peak> peaks_;
  std::vector<Histogram> per_peak_;
  Histogram unmatched_;
};

}  // namespace osprof

#endif  // OSPROF_SRC_CORE_CORRELATE_H_
