#include "src/core/layered.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/core/histogram.h"

namespace osprof {
namespace {

// Serialization keys, indexed by LayerComponent.  Shorter than the display
// names where it keeps bucket lines readable.
constexpr const char* kComponentKeys[kNumLayerComponents] = {
    "self", "fs", "driver", "net", "lock", "runq",
};

constexpr const char* kComponentNames[kNumLayerComponents] = {
    "self", "fs", "driver", "net", "lock_wait", "run_queue",
};

// Bar glyph per component for the stacked ASCII view.
constexpr char kComponentGlyphs[kNumLayerComponents] = {'#', 'f', 'D',
                                                        'N', 'L', 'r'};

constexpr int kBarWidth = 32;

}  // namespace

const char* LayerComponentName(LayerComponent c) {
  return kComponentNames[static_cast<int>(c)];
}

LayeredProfile::LayeredProfile(int resolution)
    : resolution_(resolution),
      // BucketBounds validates the resolution range; the planes cover every
      // bucket BucketIndex can produce at this resolution.
      num_buckets_(static_cast<int>(BucketBounds(resolution).size()) - 1),
      stride_(static_cast<std::size_t>(num_buckets_)),
      counts_(stride_, 0),
      forced_(stride_, 0),
      cycles_(stride_ * kNumLayerComponents, 0) {}

void LayeredProfile::SetBucket(int bucket, const LayeredBucket& data) {
  if (bucket < 0 || bucket >= num_buckets_) {
    throw std::out_of_range("LayeredProfile::SetBucket: bucket " +
                            std::to_string(bucket) + " out of range");
  }
  const auto b = static_cast<std::size_t>(bucket);
  counts_[b] = data.count;
  forced_[b] = 1;
  for (int c = 0; c < kNumLayerComponents; ++c) {
    cycles_[static_cast<std::size_t>(c) * stride_ + b] = data.cycles[c];
  }
}

void LayeredProfile::Merge(const LayeredProfile& other) {
  const int n = std::min(num_buckets_, other.num_buckets_);
  for (std::size_t b = 0; b < static_cast<std::size_t>(n); ++b) {
    if (!other.Occupied(b)) {
      continue;
    }
    counts_[b] += other.counts_[b];
    // Keep explicitly-installed zero-count buckets visible across merges.
    forced_[b] |= other.forced_[b];
    for (int c = 0; c < kNumLayerComponents; ++c) {
      cycles_[static_cast<std::size_t>(c) * stride_ + b] +=
          other.cycles_[static_cast<std::size_t>(c) * stride_ + b];
    }
  }
}

void LayeredProfile::ClearCounts() {
  std::fill(counts_.begin(), counts_.end(), 0);
  std::fill(forced_.begin(), forced_.end(), 0);
  std::fill(cycles_.begin(), cycles_.end(), 0);
}

bool LayeredProfile::empty() const {
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (Occupied(b)) {
      return false;
    }
  }
  return true;
}

std::map<int, LayeredBucket> LayeredProfile::buckets() const {
  std::map<int, LayeredBucket> out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (!Occupied(b)) {
      continue;
    }
    LayeredBucket data;
    data.count = counts_[b];
    for (int c = 0; c < kNumLayerComponents; ++c) {
      data.cycles[c] = cycles_[static_cast<std::size_t>(c) * stride_ + b];
    }
    out.emplace(static_cast<int>(b), data);
  }
  return out;
}

void LayeredProfileSet::Merge(const LayeredProfileSet& other) {
  if (other.resolution_ != resolution_) {
    throw std::invalid_argument(
        "LayeredProfileSet::Merge: sets differ in resolution");
  }
  for (const auto& [name, profile] : other.profiles_) {
    if (!profile.empty()) {
      Slot(name)->Merge(profile);
    }
  }
}

void SerializeLayers(const std::map<std::string, LayeredProfileSet>& layers,
                     std::ostream& os) {
  os << "# osprof layers v1\n";
  for (const auto& [layer, set] : layers) {
    if (set.empty()) {
      continue;
    }
    os << "layer " << layer << " resolution " << set.resolution() << "\n";
    for (const auto& [op, profile] : set) {
      if (profile.empty()) {
        continue;
      }
      os << "op " << op << "\n";
      for (const auto& [bucket, data] : profile.buckets()) {
        os << "  bucket " << bucket << " count " << data.count;
        for (int c = 0; c < kNumLayerComponents; ++c) {
          os << " " << kComponentKeys[c] << " " << data.cycles[c];
        }
        os << "\n";
      }
      os << "end op\n";
    }
    os << "end layer\n";
  }
}

std::string LayersToString(
    const std::map<std::string, LayeredProfileSet>& layers) {
  std::ostringstream os;
  SerializeLayers(layers, os);
  return os.str();
}

std::map<std::string, LayeredProfileSet> ParseLayers(std::istream& is) {
  std::map<std::string, LayeredProfileSet> out;
  std::string line;
  int lineno = 0;
  LayeredProfileSet* set = nullptr;
  LayeredProfile* profile = nullptr;

  auto fail = [&lineno](const std::string& msg) {
    throw std::runtime_error("ParseLayers line " + std::to_string(lineno) +
                             ": " + msg);
  };

  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok) || tok[0] == '#') {
      continue;
    }
    if (tok == "layer") {
      if (set != nullptr) {
        fail("nested layer block");
      }
      std::string name;
      std::string key;
      int resolution = 0;
      if (!(ls >> name >> key >> resolution) || key != "resolution" ||
          resolution < 1) {
        fail("malformed layer line");
      }
      set = &out.emplace(name, LayeredProfileSet(resolution)).first->second;
    } else if (tok == "op") {
      if (set == nullptr || profile != nullptr) {
        fail("op outside layer block");
      }
      std::string name;
      if (!(ls >> name)) {
        fail("op line missing name");
      }
      profile = set->Slot(name);
    } else if (tok == "bucket") {
      if (profile == nullptr) {
        fail("bucket outside op block");
      }
      int bucket = 0;
      std::string key;
      LayeredBucket data;
      if (!(ls >> bucket >> key >> data.count) || key != "count" ||
          bucket < 0) {
        fail("malformed bucket line");
      }
      for (int c = 0; c < kNumLayerComponents; ++c) {
        if (!(ls >> key >> data.cycles[c]) || key != kComponentKeys[c]) {
          fail("malformed component list");
        }
      }
      profile->SetBucket(bucket, data);
    } else if (tok == "end") {
      std::string what;
      if (!(ls >> what)) {
        fail("bare end");
      }
      if (what == "op") {
        if (profile == nullptr) {
          fail("end op outside op block");
        }
        profile = nullptr;
      } else if (what == "layer") {
        if (set == nullptr || profile != nullptr) {
          fail("end layer outside layer block");
        }
        set = nullptr;
      } else {
        fail("unknown end: " + what);
      }
    } else {
      fail("unknown directive: " + tok);
    }
  }
  if (set != nullptr || profile != nullptr) {
    fail("unterminated block");
  }
  return out;
}

std::map<std::string, LayeredProfileSet> ParseLayersString(
    const std::string& text) {
  std::istringstream is(text);
  return ParseLayers(is);
}

std::string RenderLayers(
    const std::map<std::string, LayeredProfileSet>& layers) {
  std::ostringstream os;
  for (const auto& [layer, set] : layers) {
    if (set.empty()) {
      continue;
    }
    os << "layer " << layer << " (resolution " << set.resolution() << ")\n";
    for (const auto& [op, profile] : set) {
      if (profile.empty()) {
        continue;
      }
      os << "  " << op << "\n";
      for (const auto& [bucket, data] : profile.buckets()) {
        const Cycles total = data.TotalCycles();
        char bar[kBarWidth + 1];
        for (int i = 0; i < kBarWidth; ++i) {
          bar[i] = ' ';
        }
        bar[kBarWidth] = '\0';
        if (total > 0) {
          // Cumulative proportional positions: component c fills columns
          // [cum_before * W / total, cum_after * W / total) -- integer
          // arithmetic, sums to exactly W, deterministic.
          Cycles cum = 0;
          int col = 0;
          for (int c = 0; c < kNumLayerComponents; ++c) {
            cum += data.cycles[c];
            const int next =
                static_cast<int>(cum * static_cast<Cycles>(kBarWidth) / total);
            for (; col < next; ++col) {
              bar[col] = kComponentGlyphs[c];
            }
          }
        }
        char line[192];
        std::snprintf(line, sizeof(line),
                      "    bucket %2d  x%-8llu |%s|", bucket,
                      static_cast<unsigned long long>(data.count), bar);
        os << line;
        for (int c = 0; c < kNumLayerComponents; ++c) {
          if (data.cycles[c] == 0) {
            continue;
          }
          const std::uint64_t pct =
              total > 0 ? data.cycles[c] * 100 / total : 0;
          os << " " << kComponentNames[c] << "=" << pct << "%";
        }
        os << "\n";
      }
    }
  }
  os << "legend: ";
  for (int c = 0; c < kNumLayerComponents; ++c) {
    os << (c > 0 ? "  " : "") << kComponentGlyphs[c] << "="
       << kComponentNames[c];
  }
  os << "\n";
  return os.str();
}

}  // namespace osprof
