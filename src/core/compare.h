// Histogram comparison algorithms (paper §3.2).
//
// The automated analysis tool needs to rate how different two profiles are.
// The paper evaluates bin-by-bin methods (Chi-square, Minkowski-form
// distance, histogram intersection, Kullback-Leibler / Jeffrey divergence)
// against the cross-bin Earth Mover's Distance, plus two trivial raters
// (normalized difference of total operations and of total latency), and
// finds EMD the most accurate (2% misclassification, §5.3).
//
// All pairwise distances operate on the *normalized* bucket densities, so a
// profile with 10x the operations but the same shape compares as equal;
// TotalOpsDifference / TotalLatencyDifference are the raters that look at
// magnitude instead of shape.

#ifndef OSPROF_SRC_CORE_COMPARE_H_
#define OSPROF_SRC_CORE_COMPARE_H_

#include <string>
#include <vector>

#include "src/core/histogram.h"

namespace osprof {

// Chi-squared statistic: sum_i (a_i - b_i)^2 / (a_i + b_i), over normalized
// densities.  Range [0, 2]; 0 means identical.
double ChiSquareDistance(const Histogram& a, const Histogram& b);

// Minkowski-form distance of order p over normalized densities.
double MinkowskiDistance(const Histogram& a, const Histogram& b, double p);

// Histogram intersection *distance*: 1 - sum_i min(a_i, b_i).  Range [0, 1].
double IntersectionDistance(const Histogram& a, const Histogram& b);

// Jeffrey divergence (symmetrized, smoothed Kullback-Leibler).  >= 0.
double JeffreyDivergence(const Histogram& a, const Histogram& b);

// Earth Mover's Distance with unit ground distance between adjacent
// buckets.  For one-dimensional histograms this is exactly the L1 distance
// between the cumulative distributions; normalized by the number of buckets
// spanned so the result is comparable across profiles.  Range [0, 1].
double EarthMoversDistance(const Histogram& a, const Histogram& b);

// Raw (unnormalized) EMD in units of "operation-mass x buckets moved".
double EarthMoversWork(const Histogram& a, const Histogram& b);

// Normalized difference of operation counts: |na - nb| / max(na, nb).
double TotalOpsDifference(const Histogram& a, const Histogram& b);

// Normalized difference of total latency: |la - lb| / max(la, lb).
double TotalLatencyDifference(const Histogram& a, const Histogram& b);

// The rating methods the automated analyzer can use (§3.2, §5.3).
enum class CompareMethod {
  kChiSquare,
  kTotalOps,
  kTotalLatency,
  kEarthMovers,
  kIntersection,
  kJeffrey,
  kMinkowskiL1,
  kMinkowskiL2,
};

std::string CompareMethodName(CompareMethod method);

// Dispatches to the chosen distance.  All methods return 0 for identical
// profiles and grow with dissimilarity; ranges differ per method, so
// thresholds are per-method (see analysis.h).
double Distance(CompareMethod method, const Histogram& a, const Histogram& b);

}  // namespace osprof

#endif  // OSPROF_SRC_CORE_COMPARE_H_
