// Operation-name interning (the record-path counterpart of DTrace-style
// probe-site resolution).
//
// The paper's aggregate-stats library sorts and stores a latency in ~100
// cycles; anything string-shaped on that path (building "prefix" + "read",
// walking a string-keyed std::map) costs an order of magnitude more than
// the measurement itself.  OpTable interns each operation name exactly
// once into a dense OpId, and a ProbeHandle carries that id as a
// trivially-copyable token.  Instrumentation resolves its handles at
// attach time (constructor / SetProfiler), so the steady-state record path
// is: read TSC, bucket-index, increment -- no allocation, no string
// compare, no tree walk.
//
// Ids are per-table: a handle resolved against one profiler's ProfileSet
// indexes that set only.  Ids are stable for the table's lifetime,
// including across SimProfiler::Reset() (which clears counts but keeps the
// table), so long-lived layers resolve once and record forever.

#ifndef OSPROF_SRC_CORE_OP_TABLE_H_
#define OSPROF_SRC_CORE_OP_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace osprof {

// Dense operation id: index into the owning table (and into any structure
// the owner keeps parallel to it).
using OpId = std::uint32_t;

inline constexpr OpId kInvalidOpId = static_cast<OpId>(-1);

// Interns operation names into dense ids.  Insertion order assigns ids;
// by_name() iterates lexicographically, which is what keeps serialized
// profile sets byte-identical regardless of the order operations were
// first recorded (or pre-resolved) in.
class OpTable {
 public:
  // Sorted name -> id view (std::less<> enables string_view lookups).
  using NameMap = std::map<std::string, OpId, std::less<>>;

  // Returns the id of `name`, interning it if new.
  OpId Intern(std::string_view name) {
    const auto it = index_.find(name);
    if (it != index_.end()) {
      return it->second;
    }
    const OpId id = static_cast<OpId>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  // Returns the id of `name`, or kInvalidOpId if it was never interned.
  OpId Find(std::string_view name) const {
    const auto it = index_.find(name);
    return it == index_.end() ? kInvalidOpId : it->second;
  }

  const std::string& Name(OpId id) const {
    return names_[static_cast<std::size_t>(id)];
  }

  std::size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  const NameMap& by_name() const { return index_; }

 private:
  std::vector<std::string> names_;  // id -> name, in interning order.
  NameMap index_;                   // name -> id, sorted.
};

// A pre-resolved probe site: the token instrumentation holds instead of an
// operation-name string.  8 bytes, trivially copyable, cheap to store in
// coroutine frames.  Obtain one from the owning profiler's (or
// ProfileSet's) Resolve(); a default-constructed handle is invalid.
class ProbeHandle {
 public:
  constexpr ProbeHandle() = default;
  constexpr explicit ProbeHandle(OpId id) : id_(id) {}

  constexpr OpId id() const { return id_; }
  constexpr bool valid() const { return id_ != kInvalidOpId; }

 private:
  OpId id_ = kInvalidOpId;
};

}  // namespace osprof

#endif  // OSPROF_SRC_CORE_OP_TABLE_H_
