#include "src/core/correlate.h"

namespace osprof {

ValueCorrelator::ValueCorrelator(std::string value_name,
                                 std::vector<Peak> peaks, int resolution)
    : value_name_(std::move(value_name)),
      peaks_(std::move(peaks)),
      unmatched_(resolution) {
  per_peak_.reserve(peaks_.size());
  for (std::size_t i = 0; i < peaks_.size(); ++i) {
    per_peak_.emplace_back(resolution);
  }
}

void ValueCorrelator::Record(Cycles latency, std::uint64_t value) {
  const int bucket = BucketIndex(latency, unmatched_.resolution());
  for (std::size_t i = 0; i < peaks_.size(); ++i) {
    if (peaks_[i].Contains(bucket)) {
      per_peak_[i].Add(value);
      return;
    }
  }
  unmatched_.Add(value);
}

Histogram ValueCorrelator::OtherPeaksValues(int i) const {
  Histogram out(unmatched_.resolution());
  for (int j = 0; j < num_peaks(); ++j) {
    if (j != i) {
      out.Merge(per_peak_[j]);
    }
  }
  return out;
}

}  // namespace osprof
