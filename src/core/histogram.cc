#include "src/core/histogram.h"

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace osprof {
namespace {

int BucketCountFor(int resolution) {
  if (resolution < 1 || resolution > 16) {
    throw std::invalid_argument("histogram resolution must be in [1, 16]");
  }
  return kMaxLog2Buckets * resolution;
}

// Builds the exact boundary table for one resolution.  Entry b is the
// smallest integer latency x with x^r >= 2^b, found by binary search over
// the exact predicate; entries at or beyond 2^64 saturate.
std::vector<Cycles> BuildBucketBounds(int resolution) {
  const int buckets = BucketCountFor(resolution);
  std::vector<Cycles> bounds(static_cast<std::size_t>(buckets) + 1, 0);
  for (int b = 1; b <= buckets; ++b) {
    if (b >= kMaxLog2Buckets * resolution) {
      // The bound would be 2^64, which Cycles cannot represent.
      bounds[static_cast<std::size_t>(b)] = ~Cycles{0};
      continue;
    }
    Cycles lo = 1;
    Cycles hi = ~Cycles{0};
    while (lo < hi) {
      const Cycles mid = lo + (hi - lo) / 2;
      if (internal::PowAtLeast(mid, resolution, b)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    bounds[static_cast<std::size_t>(b)] = lo;
  }
  return bounds;
}

}  // namespace

namespace internal {

bool PowAtLeast(Cycles latency, int resolution, int exponent) {
  if (latency == 0) {
    return false;  // 0^r is 0, never >= 2^b.
  }
  // Compute latency^resolution exactly in 64-bit limbs (resolution <= 16,
  // so at most 16 limbs) and compare bit lengths: v >= 2^e iff v has at
  // least e + 1 bits.
  std::uint64_t limbs[17] = {1};
  int n = 1;
  for (int i = 0; i < resolution; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < n; ++j) {
      const unsigned __int128 v =
          static_cast<unsigned __int128>(limbs[j]) * latency + carry;
      limbs[j] = static_cast<std::uint64_t>(v);
      carry = v >> 64;
    }
    if (carry != 0) {
      limbs[n++] = static_cast<std::uint64_t>(carry);
    }
  }
  const int bit_length = 64 * (n - 1) + 64 - __builtin_clzll(limbs[n - 1]);
  return bit_length >= exponent + 1;
}

}  // namespace internal

const std::vector<Cycles>& BucketBounds(int resolution) {
  BucketCountFor(resolution);  // Validates the range.
  static const auto* tables = [] {
    auto* t = new std::vector<std::vector<Cycles>>(17);
    for (int r = 1; r <= 16; ++r) {
      (*t)[static_cast<std::size_t>(r)] = BuildBucketBounds(r);
    }
    return t;
  }();
  return (*tables)[static_cast<std::size_t>(resolution)];
}

Histogram::Histogram(int resolution)
    : resolution_(resolution),
      buckets_(static_cast<std::size_t>(BucketCountFor(resolution)), 0) {}

void Histogram::Merge(const Histogram& other) {
  if (other.resolution_ != resolution_) {
    throw std::invalid_argument("cannot merge histograms of different resolution");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  recorded_ += other.recorded_;
  total_latency_ += other.total_latency_;
}

void Histogram::set_bucket(int i, std::uint64_t count) {
  const std::uint64_t old = buckets_[static_cast<std::size_t>(i)];
  buckets_[static_cast<std::size_t>(i)] = count;
  // Keep the checksum and latency estimate coherent for synthetic profiles.
  recorded_ += count;
  recorded_ -= old;
  const double mid = BucketMidLatency(i, resolution_);
  total_latency_ += static_cast<Cycles>(mid * static_cast<double>(count));
  total_latency_ -= static_cast<Cycles>(mid * static_cast<double>(old));
}

std::uint64_t Histogram::TotalOperations() const {
  return std::accumulate(buckets_.begin(), buckets_.end(), std::uint64_t{0});
}

int Histogram::FirstNonEmpty() const {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int Histogram::LastNonEmpty() const {
  for (std::size_t i = buckets_.size(); i-- > 0;) {
    if (buckets_[i] != 0) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

double Histogram::MeanLatency() const {
  const std::uint64_t n = TotalOperations();
  if (n == 0) {
    return 0.0;
  }
  return static_cast<double>(total_latency_) / static_cast<double>(n);
}

double Histogram::BucketedMeanLatency() const {
  const std::uint64_t n = TotalOperations();
  if (n == 0) {
    return 0.0;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) {
      sum += static_cast<double>(buckets_[i]) *
             BucketMidLatency(static_cast<int>(i), resolution_);
    }
  }
  return sum / static_cast<double>(n);
}

std::vector<double> Histogram::Normalized() const {
  std::vector<double> out(buckets_.size(), 0.0);
  const std::uint64_t n = TotalOperations();
  if (n == 0) {
    return out;
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = static_cast<double>(buckets_[i]) / static_cast<double>(n);
  }
  return out;
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  recorded_ = 0;
  total_latency_ = 0;
}

AtomicHistogram::AtomicHistogram(int resolution)
    : resolution_(resolution),
      buckets_(static_cast<std::size_t>(BucketCountFor(resolution))) {}

Histogram AtomicHistogram::Snapshot() const {
  Histogram out(resolution_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out.set_bucket(static_cast<int>(i),
                   buckets_[i].load(std::memory_order_relaxed));
  }
  // set_bucket() estimated the totals from bucket mid-points; the atomic
  // counters carry the exact values.
  out.SetTotals(recorded_.load(std::memory_order_relaxed),
                total_latency_.load(std::memory_order_relaxed));
  return out;
}

namespace {
// Each ShardedHistogram instance gets a process-unique id so the
// thread-local shard cache can never resolve to a stale instance that was
// destroyed and re-allocated at the same address.
std::atomic<std::uint64_t> g_sharded_histogram_ids{1};

struct ShardKey {
  std::uint64_t id;
  bool operator==(const ShardKey& o) const { return id == o.id; }
};

struct ShardKeyHash {
  std::size_t operator()(const ShardKey& k) const {
    return std::hash<std::uint64_t>{}(k.id);
  }
};
}  // namespace

Histogram* ShardedHistogram::Local() {
  thread_local std::unordered_map<ShardKey, Histogram*, ShardKeyHash> cache;
  if (id_ == 0) {
    // Lazily assign the unique id (constructor is constexpr-light).
    std::uint64_t expected = 0;
    std::uint64_t fresh =
        g_sharded_histogram_ids.fetch_add(1, std::memory_order_relaxed);
    id_.compare_exchange_strong(expected, fresh, std::memory_order_relaxed);
  }
  const ShardKey key{id_.load(std::memory_order_relaxed)};
  auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second;
  }
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Histogram>(resolution_));
  Histogram* shard = shards_.back().get();
  cache.emplace(key, shard);
  return shard;
}

Histogram ShardedHistogram::Merge() const {
  Histogram out(resolution_);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    out.Merge(*shard);
  }
  return out;
}

int ShardedHistogram::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(shards_.size());
}

}  // namespace osprof
