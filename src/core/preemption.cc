#include "src/core/preemption.h"

#include <cmath>
#include <stdexcept>

namespace osprof {

double ForcedPreemptionProbability(const PreemptionParams& params) {
  if (params.tperiod <= 0.0 || params.quantum <= 0.0) {
    throw std::invalid_argument("tperiod and quantum must be positive");
  }
  if (params.yield_probability < 0.0 || params.yield_probability > 1.0) {
    throw std::invalid_argument("yield probability must be in [0, 1]");
  }
  const double busy_fraction = params.tcpu / params.tperiod;
  const double exponent = params.quantum / params.tperiod;
  const double no_yield =
      std::pow(1.0 - params.yield_probability, exponent);
  const double pr = busy_fraction * no_yield;
  return std::min(1.0, std::max(0.0, pr));
}

double ExpectedPreemptedRequests(const Histogram& profile, double quantum) {
  if (quantum <= 0.0) {
    throw std::invalid_argument("quantum must be positive");
  }
  double expected = 0.0;
  for (int b = 0; b < profile.num_buckets(); ++b) {
    const std::uint64_t n = profile.bucket(b);
    if (n != 0) {
      expected += static_cast<double>(n) *
                  BucketMidLatency(b, profile.resolution()) / quantum;
    }
  }
  return expected;
}

int PreemptionBucket(double quantum, int resolution) {
  return BucketIndex(static_cast<Cycles>(quantum), resolution);
}

}  // namespace osprof
