#include "src/core/sampling.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "src/core/compare.h"

namespace osprof {

void SampledProfile::Add(Cycles now, Cycles latency) {
  if (epoch_cycles_ == 0) {
    throw std::invalid_argument("epoch_cycles must be positive");
  }
  const std::size_t epoch = static_cast<std::size_t>(now / epoch_cycles_);
  while (epochs_.size() <= epoch) {
    epochs_.emplace_back(resolution_);
  }
  epochs_[epoch].Add(latency);
}

Histogram* SampledProfile::MutableEpoch(int i) {
  while (epochs_.size() <= static_cast<std::size_t>(i)) {
    epochs_.emplace_back(resolution_);
  }
  return &epochs_[static_cast<std::size_t>(i)];
}

Histogram SampledProfile::Flatten() const {
  Histogram out(resolution_);
  for (const Histogram& h : epochs_) {
    out.Merge(h);
  }
  return out;
}

SampledProfile* SampledProfileSet::Slot(std::string_view op) {
  const OpId existing = table_.Find(op);
  if (existing != kInvalidOpId) {
    return &profiles_[static_cast<std::size_t>(existing)];
  }
  const OpId id = table_.Intern(op);
  profiles_.emplace_back(std::string(op), epoch_cycles_, resolution_);
  return &profiles_[static_cast<std::size_t>(id)];
}

const SampledProfile* SampledProfileSet::Find(std::string_view op) const {
  const OpId id = table_.Find(op);
  return id == kInvalidOpId ? nullptr
                            : &profiles_[static_cast<std::size_t>(id)];
}

std::vector<std::string> SampledProfileSet::OperationNames() const {
  std::vector<std::string> names;
  names.reserve(table_.size());
  for (const auto& [name, id] : table_.by_name()) {
    names.push_back(name);
  }
  return names;
}

std::string SampledProfileSet::RenderGrid(const std::string& op,
                                          int first_bucket,
                                          int last_bucket) const {
  const SampledProfile* p = Find(op);
  std::ostringstream os;
  os << op << " sampled every " << epoch_cycles_ << " cycles\n";
  if (p == nullptr) {
    os << "  (no data)\n";
    return os.str();
  }
  for (int e = 0; e < p->num_epochs(); ++e) {
    os << "  epoch " << e << " |";
    const Histogram& h = p->epoch(e);
    for (int b = first_bucket; b <= last_bucket; ++b) {
      const std::uint64_t c = h.bucket(b);
      char cell = '.';
      if (c > 100) {
        cell = '#';
      } else if (c > 10) {
        cell = '2';
      } else if (c > 0) {
        cell = '1';
      }
      os << cell;
    }
    os << "|\n";
  }
  return os.str();
}

std::vector<EpochChange> FindEpochChanges(const SampledProfile& profile,
                                          double threshold) {
  std::vector<EpochChange> changes;
  int previous = -1;
  for (int e = 0; e < profile.num_epochs(); ++e) {
    if (profile.epoch(e).empty()) {
      continue;
    }
    if (previous >= 0) {
      const double score =
          EarthMoversDistance(profile.epoch(previous), profile.epoch(e));
      if (score >= threshold) {
        changes.push_back(EpochChange{e, score});
      }
    }
    previous = e;
  }
  return changes;
}

void SampledProfileSet::Serialize(std::ostream& os) const {
  os << "# osprof sampled profile set v1\n";
  os << "resolution " << resolution_ << "\n";
  os << "epoch_cycles " << epoch_cycles_ << "\n";
  for (const auto& [name, id] : table_.by_name()) {
    const SampledProfile& profile = profiles_[static_cast<std::size_t>(id)];
    for (int e = 0; e < profile.num_epochs(); ++e) {
      const Histogram& h = profile.epoch(e);
      if (h.recorded() == 0 && h.TotalOperations() == 0) {
        continue;
      }
      os << "sampled " << name << " epoch=" << e
         << " recorded=" << h.recorded()
         << " total_latency=" << h.total_latency() << "\n";
      for (int b = 0; b < h.num_buckets(); ++b) {
        if (h.bucket(b) != 0) {
          os << "  bucket " << b << " " << h.bucket(b) << "\n";
        }
      }
      os << "end\n";
    }
  }
}

std::string SampledProfileSet::ToString() const {
  std::ostringstream os;
  Serialize(os);
  return os.str();
}

SampledProfileSet SampledProfileSet::Parse(std::istream& is) {
  std::string line;
  int lineno = 0;
  auto fail = [&lineno](const std::string& msg) {
    throw std::runtime_error("SampledProfileSet::Parse line " +
                             std::to_string(lineno) + ": " + msg);
  };
  int resolution = 1;
  Cycles epoch_cycles = 1;
  SampledProfileSet set(1, 1);
  bool configured = false;
  Histogram* current = nullptr;
  std::uint64_t current_recorded = 0;
  std::uint64_t current_total = 0;

  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok) || tok[0] == '#') {
      continue;
    }
    if (tok == "resolution") {
      if (!(ls >> resolution)) {
        fail("malformed resolution");
      }
    } else if (tok == "epoch_cycles") {
      if (!(ls >> epoch_cycles)) {
        fail("malformed epoch_cycles");
      }
    } else if (tok == "sampled") {
      if (!configured) {
        set = SampledProfileSet(epoch_cycles, resolution);
        configured = true;
      }
      std::string name;
      if (!(ls >> name)) {
        fail("sampled line missing op name");
      }
      int epoch = -1;
      current_recorded = 0;
      current_total = 0;
      std::string kv;
      while (ls >> kv) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos) {
          fail("malformed key=value: " + kv);
        }
        const std::string key = kv.substr(0, eq);
        const std::uint64_t value = std::stoull(kv.substr(eq + 1));
        if (key == "epoch") {
          epoch = static_cast<int>(value);
        } else if (key == "recorded") {
          current_recorded = value;
        } else if (key == "total_latency") {
          current_total = value;
        } else {
          fail("unknown attribute: " + key);
        }
      }
      if (epoch < 0) {
        fail("sampled block missing epoch=");
      }
      // Materialize the profile (Add-like path) then grab the epoch.
      current = set.Slot(name)->MutableEpoch(epoch);
    } else if (tok == "bucket") {
      if (current == nullptr) {
        fail("bucket outside sampled block");
      }
      int index = 0;
      std::uint64_t count = 0;
      if (!(ls >> index >> count)) {
        fail("malformed bucket line");
      }
      if (index < 0 || index >= current->num_buckets()) {
        fail("bucket index out of range");
      }
      current->set_bucket(index, count);
    } else if (tok == "end") {
      if (current == nullptr) {
        fail("end outside sampled block");
      }
      current->SetTotals(current_recorded, current_total);
      current = nullptr;
    } else {
      fail("unknown directive: " + tok);
    }
  }
  if (current != nullptr) {
    fail("unterminated sampled block");
  }
  return set;
}

SampledProfileSet SampledProfileSet::ParseString(const std::string& text) {
  std::istringstream is(text);
  return Parse(is);
}

std::string SampledProfileSet::RenderGnuplot3D(const std::string& op,
                                               double cpu_hz) const {
  const SampledProfile* p = Find(op);
  std::ostringstream os;
  os << "# gnuplot script generated by osprof (sampled/3-D profile)\n";
  os << "set title '" << op << "'\n";
  os << "set xlabel 'Bucket number: floor(log2(latency in CPU cycles))'\n";
  os << "set ylabel 'Elapsed time (sec)'\n";
  if (p == nullptr) {
    os << "# (no data)\n";
    return os.str();
  }
  os << "plot '-' using 1:2 with points pt 7 ps 0.4 title '1-10 Operations', \\\n"
     << "     '-' using 1:2 with points pt 7 ps 0.8 title '11-100 Operations', \\\n"
     << "     '-' using 1:2 with points pt 5 ps 1.2 title '> 100 Operations'\n";
  // Three data blocks, one per density class.
  for (int klass = 0; klass < 3; ++klass) {
    for (int e = 0; e < p->num_epochs(); ++e) {
      const double t =
          static_cast<double>(e) * static_cast<double>(epoch_cycles_) / cpu_hz;
      const Histogram& h = p->epoch(e);
      for (int b = 0; b < h.num_buckets(); ++b) {
        const std::uint64_t c = h.bucket(b);
        const bool in_class = (klass == 0 && c >= 1 && c <= 10) ||
                              (klass == 1 && c > 10 && c <= 100) ||
                              (klass == 2 && c > 100);
        if (in_class) {
          os << b << " " << t << "\n";
        }
      }
    }
    os << "e\n";
  }
  return os.str();
}

}  // namespace osprof
