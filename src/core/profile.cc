#include "src/core/profile.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace osprof {

void ProfileSet::const_iterator::SkipInvisible() {
  const auto end = set_->table_.by_name().end();
  while (it_ != end && !set_->Visible(it_->second)) {
    ++it_;
  }
}

ProbeHandle ProfileSet::Resolve(std::string_view op) {
  const OpId existing = table_.Find(op);
  if (existing != kInvalidOpId) {
    return ProbeHandle(existing);
  }
  const OpId id = table_.Intern(op);
  profiles_.emplace_back(std::string(op), resolution_);
  declared_.push_back(false);
  return ProbeHandle(id);
}

Profile& ProfileSet::operator[](std::string_view op) {
  const OpId id = Resolve(op).id();
  declared_[static_cast<std::size_t>(id)] = true;
  return ById(id);
}

const Profile* ProfileSet::Find(std::string_view op) const {
  const OpId id = table_.Find(op);
  if (id == kInvalidOpId || !Visible(id)) {
    return nullptr;
  }
  return &ById(id);
}

void ProfileSet::Merge(const ProfileSet& other) {
  if (other.resolution_ != resolution_) {
    throw std::invalid_argument(
        "ProfileSet::Merge: profile sets differ in resolution");
  }
  for (const auto& [name, profile] : other) {
    (*this)[name].Merge(profile);
  }
}

void ProfileSet::ClearCounts() {
  for (Profile& profile : profiles_) {
    profile.histogram().Clear();
  }
  declared_.assign(declared_.size(), false);
}

std::size_t ProfileSet::size() const {
  std::size_t count = 0;
  for (OpId id = 0; id < static_cast<OpId>(profiles_.size()); ++id) {
    if (Visible(id)) {
      ++count;
    }
  }
  return count;
}

std::vector<std::string> ProfileSet::OperationNames() const {
  std::vector<std::string> names;
  names.reserve(table_.size());
  for (const auto& [name, profile] : *this) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> ProfileSet::ByTotalLatency() const {
  std::vector<std::string> names = OperationNames();
  std::sort(names.begin(), names.end(),
            [this](const std::string& a, const std::string& b) {
              const Cycles la = Find(a)->total_latency();
              const Cycles lb = Find(b)->total_latency();
              if (la != lb) {
                return la > lb;
              }
              return a < b;
            });
  return names;
}

Cycles ProfileSet::TotalLatency() const {
  Cycles sum = 0;
  for (const auto& [name, profile] : *this) {
    sum += profile.total_latency();
  }
  return sum;
}

std::uint64_t ProfileSet::TotalOperations() const {
  std::uint64_t sum = 0;
  for (const auto& [name, profile] : *this) {
    sum += profile.total_operations();
  }
  return sum;
}

void ProfileSet::Serialize(std::ostream& os) const {
  os << "# osprof profile set v1\n";
  os << "resolution " << resolution_ << "\n";
  for (const auto& [name, profile] : *this) {
    const Histogram& h = profile.histogram();
    os << "profile " << name << " recorded=" << h.recorded()
       << " total_latency=" << h.total_latency() << "\n";
    for (int b = 0; b < h.num_buckets(); ++b) {
      if (h.bucket(b) != 0) {
        os << "  bucket " << b << " " << h.bucket(b) << "\n";
      }
    }
    os << "end\n";
  }
}

std::string ProfileSet::ToString() const {
  std::ostringstream os;
  Serialize(os);
  return os.str();
}

ProfileSet ProfileSet::Parse(std::istream& is) {
  std::string line;
  int resolution = 1;
  ProfileSet set(1);
  // Parse by id, not Profile*: operator[] growth may reallocate the slots.
  OpId current = kInvalidOpId;
  std::uint64_t current_recorded = 0;
  std::uint64_t current_total_latency = 0;
  bool saw_resolution = false;
  int lineno = 0;

  auto fail = [&lineno](const std::string& msg) {
    throw std::runtime_error("ProfileSet::Parse line " +
                             std::to_string(lineno) + ": " + msg);
  };

  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok) || tok[0] == '#') {
      continue;
    }
    if (tok == "resolution") {
      if (!(ls >> resolution)) {
        fail("malformed resolution");
      }
      if (saw_resolution) {
        fail("duplicate resolution line");
      }
      saw_resolution = true;
      set = ProfileSet(resolution);
      current = kInvalidOpId;
    } else if (tok == "profile") {
      std::string name;
      if (!(ls >> name)) {
        fail("profile line missing name");
      }
      set[name];  // Declare, so empty profiles round-trip byte-identically.
      current = set.table_.Find(name);
      current_recorded = 0;
      current_total_latency = 0;
      std::string kv;
      while (ls >> kv) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos) {
          fail("malformed key=value: " + kv);
        }
        const std::string key = kv.substr(0, eq);
        const std::uint64_t value = std::stoull(kv.substr(eq + 1));
        if (key == "recorded") {
          current_recorded = value;
        } else if (key == "total_latency") {
          current_total_latency = value;
        } else {
          fail("unknown profile attribute: " + key);
        }
      }
    } else if (tok == "bucket") {
      if (current == kInvalidOpId) {
        fail("bucket outside profile block");
      }
      int index = 0;
      std::uint64_t count = 0;
      if (!(ls >> index >> count)) {
        fail("malformed bucket line");
      }
      Histogram& h = set.ById(current).histogram();
      if (index < 0 || index >= h.num_buckets()) {
        fail("bucket index out of range");
      }
      h.set_bucket(index, count);
    } else if (tok == "end") {
      if (current == kInvalidOpId) {
        fail("end outside profile block");
      }
      set.ById(current).histogram().SetTotals(current_recorded,
                                              current_total_latency);
      current = kInvalidOpId;
    } else {
      fail("unknown directive: " + tok);
    }
  }
  if (current != kInvalidOpId) {
    fail("unterminated profile block");
  }
  return set;
}

ProfileSet ProfileSet::ParseString(const std::string& text) {
  std::istringstream is(text);
  return Parse(is);
}

bool ProfileSet::CheckConsistency() const {
  for (const Profile& profile : profiles_) {
    if (!profile.histogram().CheckConsistency()) {
      return false;
    }
  }
  return true;
}

}  // namespace osprof
