#include "src/core/profile.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace osprof {

Profile& ProfileSet::operator[](const std::string& op) {
  auto it = profiles_.find(op);
  if (it == profiles_.end()) {
    it = profiles_.emplace(op, Profile(op, resolution_)).first;
  }
  return it->second;
}

const Profile* ProfileSet::Find(const std::string& op) const {
  auto it = profiles_.find(op);
  return it == profiles_.end() ? nullptr : &it->second;
}

void ProfileSet::Merge(const ProfileSet& other) {
  if (other.resolution_ != resolution_) {
    throw std::invalid_argument(
        "ProfileSet::Merge: profile sets differ in resolution");
  }
  for (const auto& [name, profile] : other.profiles_) {
    (*this)[name].Merge(profile);
  }
}

std::vector<std::string> ProfileSet::OperationNames() const {
  std::vector<std::string> names;
  names.reserve(profiles_.size());
  for (const auto& [name, profile] : profiles_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> ProfileSet::ByTotalLatency() const {
  std::vector<std::string> names = OperationNames();
  std::sort(names.begin(), names.end(),
            [this](const std::string& a, const std::string& b) {
              const Cycles la = profiles_.at(a).total_latency();
              const Cycles lb = profiles_.at(b).total_latency();
              if (la != lb) {
                return la > lb;
              }
              return a < b;
            });
  return names;
}

Cycles ProfileSet::TotalLatency() const {
  Cycles sum = 0;
  for (const auto& [name, profile] : profiles_) {
    sum += profile.total_latency();
  }
  return sum;
}

std::uint64_t ProfileSet::TotalOperations() const {
  std::uint64_t sum = 0;
  for (const auto& [name, profile] : profiles_) {
    sum += profile.total_operations();
  }
  return sum;
}

void ProfileSet::Serialize(std::ostream& os) const {
  os << "# osprof profile set v1\n";
  os << "resolution " << resolution_ << "\n";
  for (const auto& [name, profile] : profiles_) {
    const Histogram& h = profile.histogram();
    os << "profile " << name << " recorded=" << h.recorded()
       << " total_latency=" << h.total_latency() << "\n";
    for (int b = 0; b < h.num_buckets(); ++b) {
      if (h.bucket(b) != 0) {
        os << "  bucket " << b << " " << h.bucket(b) << "\n";
      }
    }
    os << "end\n";
  }
}

std::string ProfileSet::ToString() const {
  std::ostringstream os;
  Serialize(os);
  return os.str();
}

ProfileSet ProfileSet::Parse(std::istream& is) {
  std::string line;
  int resolution = 1;
  ProfileSet set(1);
  Profile* current = nullptr;
  std::uint64_t current_recorded = 0;
  std::uint64_t current_total_latency = 0;
  bool saw_resolution = false;
  int lineno = 0;

  auto fail = [&lineno](const std::string& msg) {
    throw std::runtime_error("ProfileSet::Parse line " +
                             std::to_string(lineno) + ": " + msg);
  };

  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok) || tok[0] == '#') {
      continue;
    }
    if (tok == "resolution") {
      if (!(ls >> resolution)) {
        fail("malformed resolution");
      }
      if (saw_resolution) {
        fail("duplicate resolution line");
      }
      saw_resolution = true;
      set = ProfileSet(resolution);
      current = nullptr;
    } else if (tok == "profile") {
      std::string name;
      if (!(ls >> name)) {
        fail("profile line missing name");
      }
      current = &set[name];
      current_recorded = 0;
      current_total_latency = 0;
      std::string kv;
      while (ls >> kv) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos) {
          fail("malformed key=value: " + kv);
        }
        const std::string key = kv.substr(0, eq);
        const std::uint64_t value = std::stoull(kv.substr(eq + 1));
        if (key == "recorded") {
          current_recorded = value;
        } else if (key == "total_latency") {
          current_total_latency = value;
        } else {
          fail("unknown profile attribute: " + key);
        }
      }
    } else if (tok == "bucket") {
      if (current == nullptr) {
        fail("bucket outside profile block");
      }
      int index = 0;
      std::uint64_t count = 0;
      if (!(ls >> index >> count)) {
        fail("malformed bucket line");
      }
      if (index < 0 || index >= current->histogram().num_buckets()) {
        fail("bucket index out of range");
      }
      current->histogram().set_bucket(index, count);
    } else if (tok == "end") {
      if (current == nullptr) {
        fail("end outside profile block");
      }
      current->histogram().SetTotals(current_recorded, current_total_latency);
      current = nullptr;
    } else {
      fail("unknown directive: " + tok);
    }
  }
  if (current != nullptr) {
    fail("unterminated profile block");
  }
  return set;
}

ProfileSet ProfileSet::ParseString(const std::string& text) {
  std::istringstream is(text);
  return Parse(is);
}

bool ProfileSet::CheckConsistency() const {
  for (const auto& [name, profile] : profiles_) {
    if (!profile.histogram().CheckConsistency()) {
      return false;
    }
  }
  return true;
}

}  // namespace osprof
