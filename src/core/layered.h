// Exact layered latency decomposition (paper §3.2, made per-request).
//
// The paper compares profiles captured at two layers only in aggregate:
// subtract the FS-level profile from the user-level one and attribute the
// difference to the lower layers.  With a kernel-owned request context
// (src/sim/request_context.h) every wrapped operation knows, at pop time,
// exactly how its latency decomposes:
//
//   self       CPU spent in the operation itself (and transparent layers)
//   fs         time inside nested file-system-layer operations
//   driver     disk waits (request queue + mechanical I/O, page locks)
//   net        network waits (RPC round trips, send-window stalls)
//   lock_wait  sleeping-lock and spinlock waits
//   run_queue  time spent runnable but not running (incl. switch cost)
//
// LayeredProfile keys that six-way split by the operation's own latency
// bucket, so each peak of the ordinary profile can be read as a stack of
// components ("peak 4 of readdir is 99% driver").  The sum of the six
// components of a bucket always equals the total cycles decomposed into it.
//
// Everything is integer arithmetic over deterministic simulated cycles:
// Merge is associative and commutative, iteration is sorted by name, and
// serialization (one `.layers` file carrying every instrumented layer of a
// scenario) is byte-stable.

#ifndef OSPROF_SRC_CORE_LAYERED_H_
#define OSPROF_SRC_CORE_LAYERED_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/clock.h"

namespace osprof {

// The components a wrapped operation's latency decomposes into.  A plain
// enum: components index fixed-size arrays throughout.
enum LayerComponent {
  kLayerSelf = 0,   // Own CPU (plus anything nobody below claimed).
  kLayerFs,         // Nested FS-layer operations' own CPU.
  kLayerDriver,     // Disk waits: queueing, mechanical I/O, page locks.
  kLayerNet,        // Network waits: RPC round trips, window stalls.
  kLayerLockWait,   // Semaphore sleeps and spinlock spins.
  kLayerRunQueue,   // Runnable-but-not-running (includes switch cost).
  kNumLayerComponents,
};

// Short stable name of a component ("self", "fs", "driver", "net",
// "lock_wait", "run_queue") -- used in serialization and JSON.
const char* LayerComponentName(LayerComponent c);

// One latency bucket's decomposition: how many operations landed in it and
// how their combined cycles split across the components.
struct LayeredBucket {
  std::uint64_t count = 0;
  Cycles cycles[kNumLayerComponents] = {};

  Cycles TotalCycles() const {
    Cycles sum = 0;
    for (int c = 0; c < kNumLayerComponents; ++c) {
      sum += cycles[c];
    }
    return sum;
  }
};

// Per-operation decomposition, keyed by the operation's own latency bucket
// (same BucketIndex as the ordinary profile, so peaks line up).
//
// Storage is structure-of-arrays over preallocated dense planes: one count
// per bucket plus one component-major cycles plane, so the record path is
// seven indexed increments with no tree walk and no allocation (the
// std::map<int, LayeredBucket> it replaced cost an ordered lookup per
// component update).  The map view survives as the materializing buckets()
// accessor for the cold serialization/rendering paths.
class LayeredProfile {
 public:
  explicit LayeredProfile(int resolution = 1);

  int resolution() const { return resolution_; }
  int num_buckets() const { return num_buckets_; }

  // Adds one operation's decomposition to `bucket`.  The hot path: runs at
  // every profiled span exit.
  void Add(int bucket, const Cycles components[kNumLayerComponents]) {
    const auto b = static_cast<std::size_t>(bucket);
    ++counts_[b];
    Cycles* plane = cycles_.data() + b;
    for (int c = 0; c < kNumLayerComponents; ++c) {
      plane[static_cast<std::size_t>(c) * stride_] += components[c];
    }
  }

  // Fast path of Add for spans whose whole duration is self-CPU (no
  // attributed waits, the common case): equivalent to Add with every
  // other component zero, touching one plane instead of six.
  void AddSelfOnly(int bucket, Cycles self) {
    const auto b = static_cast<std::size_t>(bucket);
    ++counts_[b];
    cycles_[static_cast<std::size_t>(kLayerSelf) * stride_ + b] += self;
  }

  // Deserialization path: installs a bucket's totals wholesale.  The bucket
  // stays visible to buckets()/serialization even when `data` is all zero,
  // matching the old map backing.  Throws std::out_of_range for buckets the
  // resolution cannot produce.
  void SetBucket(int bucket, const LayeredBucket& data);

  void Merge(const LayeredProfile& other);

  // Zeroes all buckets in place (no deallocation).
  void ClearCounts();

  bool empty() const;

  // The sparse ascending-bucket view, materialized by value.  Callers that
  // keep references into it must copy the map first; range-for over the
  // temporary is safe (lifetime-extended).
  std::map<int, LayeredBucket> buckets() const;

  std::uint64_t total_count() const {
    std::uint64_t sum = 0;
    for (int b = 0; b < num_buckets_; ++b) {
      sum += counts_[static_cast<std::size_t>(b)];
    }
    return sum;
  }

 private:
  // A bucket participates in buckets()/empty() iff it has counted an
  // operation or was installed explicitly via SetBucket.
  bool Occupied(std::size_t b) const {
    return counts_[b] != 0 || forced_[b] != 0;
  }

  int resolution_;
  int num_buckets_;       // Dense plane size: kMaxLog2Buckets * resolution.
  std::size_t stride_;    // Distance between component planes in cycles_.
  std::vector<std::uint64_t> counts_;  // Indexed by bucket.
  std::vector<std::uint8_t> forced_;   // SetBucket occupancy, by bucket.
  std::vector<Cycles> cycles_;         // [component * stride_ + bucket].
};

// A set of per-operation decompositions, one per instrumented operation of
// a layer.  Slot() returns node-stable pointers (std::map), so recording
// paths can cache them per OpId the way SimProfiler caches sampled slots.
class LayeredProfileSet {
 public:
  explicit LayeredProfileSet(int resolution = 1) : resolution_(resolution) {}

  int resolution() const { return resolution_; }

  // The decomposition slot for `op`, created empty on first use.  The
  // returned pointer stays valid for the set's lifetime (including across
  // ClearCounts), so callers may cache it.
  LayeredProfile* Slot(std::string_view op) {
    const auto it = profiles_.find(op);
    if (it != profiles_.end()) {
      return &it->second;
    }
    return &profiles_.emplace(std::string(op), LayeredProfile(resolution_))
                .first->second;
  }

  const LayeredProfile* Find(std::string_view op) const {
    const auto it = profiles_.find(op);
    return it == profiles_.end() ? nullptr : &it->second;
  }

  // Integer sums per (op, bucket, component): associative and commutative,
  // so trial-order merging is bit-identical regardless of --jobs.
  void Merge(const LayeredProfileSet& other);

  // Zeroes all recorded data in place; cached Slot() pointers stay valid.
  void ClearCounts() {
    for (auto& [name, profile] : profiles_) {
      profile.ClearCounts();
    }
  }

  // True when no operation has any recorded bucket (pre-created empty
  // slots do not count, mirroring ProfileSet's visibility rule).
  bool empty() const {
    for (const auto& [name, profile] : profiles_) {
      if (!profile.empty()) {
        return false;
      }
    }
    return true;
  }

  // Sorted-by-name iteration over (name, profile); includes empty slots --
  // serialization and rendering skip those themselves.
  using const_iterator = std::map<std::string, LayeredProfile,
                                  std::less<>>::const_iterator;
  const_iterator begin() const { return profiles_.begin(); }
  const_iterator end() const { return profiles_.end(); }

 private:
  int resolution_;
  std::map<std::string, LayeredProfile, std::less<>> profiles_;
};

// --- Serialization ---------------------------------------------------------
// One `.layers` file carries every instrumented layer of a scenario:
//
//   # osprof layers v1
//   layer fs resolution 1
//   op readdir
//     bucket 23 count 7 self 210 fs 90 driver 58000000 net 0 lock 0 runq 19040
//   end op
//   end layer
//
// Layers and ops appear sorted by name, buckets ascending: byte-stable.

void SerializeLayers(const std::map<std::string, LayeredProfileSet>& layers,
                     std::ostream& os);
std::string LayersToString(
    const std::map<std::string, LayeredProfileSet>& layers);

// Throws std::runtime_error on malformed input.
std::map<std::string, LayeredProfileSet> ParseLayers(std::istream& is);
std::map<std::string, LayeredProfileSet> ParseLayersString(
    const std::string& text);

// --- Rendering -------------------------------------------------------------
// ASCII stacked view: per layer and operation, one row per bucket with the
// component split drawn as a fixed-width stacked bar plus percentages.
// Deterministic integer rounding (cumulative proportional positions).
std::string RenderLayers(
    const std::map<std::string, LayeredProfileSet>& layers);

}  // namespace osprof

#endif  // OSPROF_SRC_CORE_LAYERED_H_
