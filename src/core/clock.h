// Cycle-counter clock abstractions.
//
// OSprof measures request latency in CPU cycles (paper §4): the TSC has a
// resolution of tens of nanoseconds and costs a single instruction to read.
// All latencies in this library are expressed in cycles; conversion helpers
// translate to human-readable units for reports.

#ifndef OSPROF_SRC_CORE_CLOCK_H_
#define OSPROF_SRC_CORE_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace osprof {

// Latency and timestamps are always in CPU cycles, like the paper.
using Cycles = std::uint64_t;

// The paper's test machine: a 1.7 GHz Pentium 4.  Simulated scenarios use
// this frequency so bucket numbers line up with the figures (bucket 13 is
// ~4.8us, bucket 18 is ~154us, bucket 26 is ~39ms, ...).
inline constexpr double kPaperCpuHz = 1.7e9;

// Reads the hardware timestamp counter.  Falls back to a steady-clock
// nanosecond count on non-x86 targets; the value is still monotone and
// cycle-like (about 1ns granularity), which is all the histograms need.
inline Cycles ReadTsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<Cycles>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

// Two clock reads taken at the same instant: the skew-free global time and
// the per-CPU timestamp counter (which includes that CPU's skew).  Span
// entry/exit paths take one sample instead of separate now()/ReadTsc()
// calls, halving the clock traffic on the Wrap fast path.
struct ClockSample {
  Cycles now = 0;
  Cycles tsc = 0;
};

// Estimates the TSC frequency by spinning against the steady clock for
// `sample_ms` milliseconds.  Used only by reporting code on real hardware;
// simulated profiles carry their own frequency.
double EstimateTscHz(int sample_ms = 20);

inline double CyclesToSeconds(Cycles cycles, double hz) {
  return static_cast<double>(cycles) / hz;
}

inline Cycles SecondsToCycles(double seconds, double hz) {
  return static_cast<Cycles>(seconds * hz);
}

// Formats a duration like the paper's figure labels: "28ns", "903ns",
// "28us", "925us", "29ms", "947ms", "30s".
std::string FormatSeconds(double seconds);

// Convenience: formats the representative (mid) latency of `cycles` at `hz`.
std::string FormatCycles(Cycles cycles, double hz);

// Host wall-clock stopwatch for reporting and benchmarking code.
//
// This header is the one sanctioned home for wall-clock reads (enforced
// by osprof_lint's `determinism` rule): simulated code must never observe
// host time, and everything that legitimately needs it -- the runner's
// wall_seconds, the bench timers -- goes through this class instead of
// touching std::chrono directly.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  double Nanos() const {
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// A manually-advanced clock for unit tests and deterministic simulation.
class FakeClock {
 public:
  explicit FakeClock(Cycles start = 0) : now_(start) {}

  Cycles Now() const { return now_; }
  void Advance(Cycles cycles) { now_ += cycles; }
  void Set(Cycles now) { now_ = now; }

 private:
  Cycles now_;
};

}  // namespace osprof

#endif  // OSPROF_SRC_CORE_CLOCK_H_
