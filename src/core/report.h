// Profile rendering: ASCII plots like the paper's figures, and gnuplot
// script generation (paper §4, "Representing results").

#ifndef OSPROF_SRC_CORE_REPORT_H_
#define OSPROF_SRC_CORE_REPORT_H_

#include <string>

#include "src/core/profile.h"

namespace osprof {

struct RenderOptions {
  // CPU frequency for the human-readable latency labels above the plot.
  double cpu_hz = kPaperCpuHz;
  // Bucket range to show; -1 auto-fits to the occupied range (with one
  // bucket of margin, clamped to >= first_bucket floor 0).
  int first_bucket = -1;
  int last_bucket = -1;
  // Height of the plot in character rows; the Y axis is log10 like the
  // paper's figures.
  int height = 8;
};

// Renders one profile as an ASCII log-log plot:
//
//   CLONE                                          28ns ... 947ms
//   10^4 |        #
//   10^3 |        ##            #
//   ...
//        +5----10----15----20----25----30
//
std::string RenderAscii(const Profile& profile, const RenderOptions& options = {});

// Renders every profile of a set, busiest (by total latency) first.
std::string RenderAsciiSet(const ProfileSet& set, const RenderOptions& options = {});

// Emits a self-contained gnuplot script reproducing the paper's plot style
// (logscale y, boxes, bucket number on x, latency labels on top).
std::string RenderGnuplot(const Profile& profile, const RenderOptions& options = {});

// One-line textual summary: ops, total latency, mean, occupied range.
std::string SummarizeProfile(const Profile& profile, double cpu_hz = kPaperCpuHz);

}  // namespace osprof

#endif  // OSPROF_SRC_CORE_REPORT_H_
