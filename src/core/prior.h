// Prior-knowledge-based peak analysis (paper §3.1).
//
// Many OS operations have characteristic times that can be measured once
// per test setup: the paper's machines have a ~5.6us context switch, ~8ms
// full-stroke seek, ~4ms full disk rotation, ~112us network round trip and
// a ~58ms scheduling quantum.  When a profile peak lands near one of these
// times, the analyst can hypothesize its cause immediately.  This module
// keeps a table of characteristic times and annotates peaks with matches.

#ifndef OSPROF_SRC_CORE_PRIOR_H_
#define OSPROF_SRC_CORE_PRIOR_H_

#include <optional>
#include <string>
#include <vector>

#include "src/core/histogram.h"
#include "src/core/peaks.h"

namespace osprof {

// A named characteristic time of the profiled system.
struct CharacteristicTime {
  std::string name;      // e.g. "full disk rotation".
  Cycles cycles = 0;     // Typical duration.
  // A peak matches if its mode bucket is within this many buckets of the
  // characteristic time's bucket (log scale tolerance).
  int bucket_tolerance = 1;
};

// The table of known times for one machine/configuration.
class PriorKnowledge {
 public:
  PriorKnowledge() = default;

  void Add(std::string name, Cycles cycles, int bucket_tolerance = 1);

  // The paper's test-bed table (§3.1) at 1.7 GHz: context switch 5.6us,
  // full-stroke seek 8ms, track-to-track seek 0.3ms, full rotation 4ms,
  // network RTT 112us, scheduling quantum ~58ms, timer tick 4ms.
  static PriorKnowledge PaperTestbed();

  const std::vector<CharacteristicTime>& entries() const { return entries_; }

  // Names of all characteristic times whose bucket is within tolerance of
  // `bucket` (empty if none).
  std::vector<std::string> MatchBucket(int bucket, int resolution = 1) const;

  // Annotates each peak with its matching characteristic times.
  struct AnnotatedPeak {
    Peak peak;
    std::vector<std::string> hypotheses;
  };
  std::vector<AnnotatedPeak> Annotate(const std::vector<Peak>& peaks,
                                      int resolution = 1) const;

 private:
  std::vector<CharacteristicTime> entries_;
};

}  // namespace osprof

#endif  // OSPROF_SRC_CORE_PRIOR_H_
