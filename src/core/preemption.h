// The forcible-preemption model (paper §3.3, Equation 3).
//
// Early code profilers rejected latency as a metric because a multitasking
// OS can reschedule a process at an arbitrary point.  The paper shows that
// for typical workloads the probability of being *forcibly* preempted while
// inside a profiled request is negligible:
//
//     Pr(fp) = tcpu / tperiod * (1 - Y)^(Q / tperiod)              (Eq. 3)
//
// where tcpu is the request's CPU time, tperiod the average CPU time
// (user + system) between request arrivals, Y the probability that the
// process voluntarily yields during a request, and Q the scheduling
// quantum.  The model also predicts how many preempted requests a profile
// with a given bucket population should show: a request from bucket b has
// tcpu = 3/2 * 2^b, so the expected count of preempted requests is
// sum_b n_b * (3/2 * 2^b) / Q, and they surface near bucket log2(Q).

#ifndef OSPROF_SRC_CORE_PREEMPTION_H_
#define OSPROF_SRC_CORE_PREEMPTION_H_

#include "src/core/histogram.h"

namespace osprof {

struct PreemptionParams {
  double tcpu = 0.0;     // CPU time of the profiled request, cycles.
  double tperiod = 0.0;  // Average CPU time between requests, cycles.
  double yield_probability = 0.0;  // Y: chance of a voluntary yield.
  double quantum = 0.0;  // Q: scheduling quantum, cycles.
};

// Evaluates Equation 3.  Returns a probability in [0, 1].
double ForcedPreemptionProbability(const PreemptionParams& params);

// Expected number of forcibly preempted requests for a captured profile of
// a non-yielding workload (Y = 0): sum over buckets of
// n_b * BucketMid(b) / quantum.  This is the paper's "expected 388 +- 33%
// elements in the 26th bucket" computation for Figure 3.
double ExpectedPreemptedRequests(const Histogram& profile, double quantum);

// The bucket where preempted requests surface: preemption adds a wait of
// roughly one quantum, so floor(log2(Q)).
int PreemptionBucket(double quantum, int resolution = 1);

}  // namespace osprof

#endif  // OSPROF_SRC_CORE_PREEMPTION_H_
