// Cluster-scale profile aggregation (the paper's future work, §7:
// "Because of the compactness of our profiles, we believe that OSprof is
// suitable for clusters and distributed systems").
//
// Profile sets are tiny and text-serializable, so a fleet can ship one
// per machine to an aggregation point.  This module merges them, and --
// the operationally interesting part -- finds *outlier machines*: nodes
// whose per-operation latency distribution deviates from the fleet
// consensus (a failing disk, a mis-tuned kernel, a hot shard).

#ifndef OSPROF_SRC_CORE_CLUSTER_H_
#define OSPROF_SRC_CORE_CLUSTER_H_

#include <string>
#include <vector>

#include "src/core/compare.h"
#include "src/core/profile.h"

namespace osprof {

struct MachineProfile {
  std::string machine;
  ProfileSet profiles;
};

// Merges per-machine profile sets into one fleet-wide set (histograms of
// the same operation are summed).  All sets must share a resolution.
ProfileSet MergeCluster(const std::vector<MachineProfile>& machines);

// Prefixes every operation name ("web03." + "read" -> "web03.read"), so
// per-machine profiles can coexist in one set for the standard analysis
// tooling.
ProfileSet PrefixOperations(const ProfileSet& set, const std::string& prefix);

// One machine's deviation from the rest of the fleet for one operation.
struct MachineDeviation {
  std::string machine;
  std::string op_name;
  // Median of the machine's pairwise distances to every other machine's
  // histogram for this operation.  The median (not a merge or a mean)
  // keeps a minority of sick machines from contaminating the consensus:
  // a healthy node's median distance is to another healthy node.
  double score = 0.0;
  bool outlier = false;  // Score above the method's default threshold.
};

// Scores every (machine, operation) pair; sorted by descending score.
// A machine missing an operation that its peer has is at distance 1 from
// that peer.
std::vector<MachineDeviation> FindOutliers(
    const std::vector<MachineProfile>& machines,
    CompareMethod method = CompareMethod::kEarthMovers);

}  // namespace osprof

#endif  // OSPROF_SRC_CORE_CLUSTER_H_
