#include "src/core/analysis.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

namespace osprof {

double DefaultThreshold(CompareMethod method) {
  switch (method) {
    case CompareMethod::kChiSquare:
      return 0.25;
    case CompareMethod::kTotalOps:
      return 0.22;
    case CompareMethod::kTotalLatency:
      return 0.30;
    case CompareMethod::kEarthMovers:
      return 0.2;
    case CompareMethod::kIntersection:
      return 0.25;
    case CompareMethod::kJeffrey:
      return 0.20;
    case CompareMethod::kMinkowskiL1:
      return 0.40;
    case CompareMethod::kMinkowskiL2:
      return 0.25;
  }
  return 0.2;
}

std::vector<const PairReport*> AnalysisReport::Interesting() const {
  std::vector<const PairReport*> out;
  for (const PairReport& p : pairs) {
    if (p.interesting) {
      out.push_back(&p);
    }
  }
  return out;
}

std::string AnalysisReport::Summary() const {
  std::ostringstream os;
  int selected = 0;
  for (const PairReport& p : pairs) {
    selected += p.interesting ? 1 : 0;
  }
  os << "selected " << selected << " of " << pairs.size() << " profile pairs\n";
  for (const PairReport& p : pairs) {
    if (!p.interesting) {
      continue;
    }
    os.precision(3);
    os << "  " << p.op_name << " score=" << p.score << " (" << p.reason
       << "); peaks " << p.peak_diff.peaks_a << " vs " << p.peak_diff.peaks_b
       << "\n";
  }
  return os.str();
}

AnalysisReport CompareProfileSets(const ProfileSet& a, const ProfileSet& b,
                                  const AnalysisOptions& options) {
  AnalysisReport report;

  // The significance yardstick: the busiest profile on either side.
  Cycles max_latency = 0;
  std::uint64_t max_ops = 0;
  for (const ProfileSet* set : {&a, &b}) {
    for (const auto& [name, profile] : *set) {
      max_latency = std::max(max_latency, profile.total_latency());
      max_ops = std::max(max_ops, profile.total_operations());
    }
  }

  std::set<std::string> ops;
  for (const auto& [name, profile] : a) {
    ops.insert(name);
  }
  for (const auto& [name, profile] : b) {
    ops.insert(name);
  }

  static const Histogram kEmpty(1);
  for (const std::string& op : ops) {
    PairReport pr;
    pr.op_name = op;
    const Profile* pa = a.Find(op);
    const Profile* pb = b.Find(op);
    const Histogram& ha = pa != nullptr ? pa->histogram() : kEmpty;
    const Histogram& hb = pb != nullptr ? pb->histogram() : kEmpty;
    pr.ops_a = ha.TotalOperations();
    pr.ops_b = hb.TotalOperations();
    pr.latency_a = ha.total_latency();
    pr.latency_b = hb.total_latency();

    // Operations missing on one side are execution paths that appeared or
    // vanished -- always interesting (if they carry any weight at all).
    if (pa == nullptr || pb == nullptr) {
      pr.score = 1.0;
      pr.interesting = true;
      pr.reason = pa == nullptr ? "only in second set" : "only in first set";
      pr.peaks_a = FindPeaks(ha, options.peak_options);
      pr.peaks_b = FindPeaks(hb, options.peak_options);
      pr.peak_diff =
          DiffPeaks(pr.peaks_a, pr.peaks_b, options.peak_mode_tolerance);
      report.pairs.push_back(std::move(pr));
      continue;
    }

    // Phase 1: insignificance filter.
    const double lat_frac =
        max_latency == 0
            ? 0.0
            : static_cast<double>(std::max(pr.latency_a, pr.latency_b)) /
                  static_cast<double>(max_latency);
    const double ops_frac =
        max_ops == 0 ? 0.0
                     : static_cast<double>(std::max(pr.ops_a, pr.ops_b)) /
                           static_cast<double>(max_ops);
    if (lat_frac < options.insignificance_fraction &&
        ops_frac < options.insignificance_fraction) {
      pr.reason = "insignificant (latency and ops below threshold)";
      report.pairs.push_back(std::move(pr));
      continue;
    }

    // Phase 2: peak structure.
    pr.peaks_a = FindPeaks(ha, options.peak_options);
    pr.peaks_b = FindPeaks(hb, options.peak_options);
    pr.peak_diff =
        DiffPeaks(pr.peaks_a, pr.peaks_b, options.peak_mode_tolerance);

    // Phase 3: rate the difference.
    pr.score = Distance(options.method, ha, hb);

    const double rel_latency_delta = TotalLatencyDifference(ha, hb);
    if (rel_latency_delta <= options.similar_latency_tolerance &&
        pr.score < options.score_threshold && pr.peak_diff.SameStructure()) {
      pr.reason = "similar totals and shape";
      report.pairs.push_back(std::move(pr));
      continue;
    }
    if (pr.score >= options.score_threshold) {
      pr.interesting = true;
      pr.reason = "score above threshold";
    } else if (!pr.peak_diff.SameStructure()) {
      pr.interesting = true;
      pr.reason = "peak structure changed";
    } else {
      pr.reason = "below threshold";
    }
    report.pairs.push_back(std::move(pr));
  }

  std::stable_sort(report.pairs.begin(), report.pairs.end(),
                   [](const PairReport& x, const PairReport& y) {
                     if (x.interesting != y.interesting) {
                       return x.interesting;
                     }
                     return x.score > y.score;
                   });
  return report;
}

std::vector<RankedOp> RankByLatency(const ProfileSet& set) {
  std::vector<RankedOp> out;
  const Cycles total = set.TotalLatency();
  for (const std::string& name : set.ByTotalLatency()) {
    const Profile* p = set.Find(name);
    RankedOp r;
    r.op_name = name;
    r.total_latency = p->total_latency();
    r.total_ops = p->total_operations();
    r.latency_fraction =
        total == 0 ? 0.0
                   : static_cast<double>(r.total_latency) /
                         static_cast<double>(total);
    out.push_back(r);
  }
  double cum = 0.0;
  for (RankedOp& r : out) {
    cum += r.latency_fraction;
    r.cumulative_fraction = cum;
  }
  return out;
}

}  // namespace osprof
