// Peak detection on log-bucket latency profiles.
//
// Different internal OS activities create different peaks on a latency
// distribution (paper §3): a two-peak clone profile means one lock-free and
// one contended path; readdir's four peaks are past-EOF returns, page-cache
// hits, disk-cache hits, and mechanical disk accesses.  The automated
// analysis tool (§3.2 phase two) segments profiles into peaks and reports
// differences in their number and location.
//
// Segmentation works on log10 of the bucket counts -- the same transform the
// paper's figures use for the Y axis -- because a peak that is visually
// obvious on the published plots spans orders of magnitude in raw counts.

#ifndef OSPROF_SRC_CORE_PEAKS_H_
#define OSPROF_SRC_CORE_PEAKS_H_

#include <string>
#include <vector>

#include "src/core/histogram.h"

namespace osprof {

// One detected peak: a contiguous bucket range.
struct Peak {
  int first_bucket = 0;     // Inclusive.
  int last_bucket = 0;      // Inclusive.
  int mode_bucket = 0;      // Bucket with the largest count.
  std::uint64_t count = 0;  // Total operations in the peak.
  double mass = 0.0;        // count / total operations in the histogram.
  double mean_latency = 0.0;  // Estimated from bucket mid-points, cycles.

  bool Contains(int bucket) const {
    return bucket >= first_bucket && bucket <= last_bucket;
  }
};

struct PeakOptions {
  // Buckets whose count is below this fraction of the tallest bucket are
  // treated as noise floor (they still belong to an adjacent peak if
  // contiguous with it, but cannot form a peak on their own).
  double noise_floor_fraction = 0.0;
  // A local minimum splits a run into two peaks if, on the log10 scale,
  // both neighbouring maxima rise at least this many decades above it.
  double min_valley_depth_decades = 0.5;
  // Peaks with fewer operations than this are dropped.
  std::uint64_t min_count = 1;
};

// Segments `h` into peaks.  Returned peaks are ordered left to right.
std::vector<Peak> FindPeaks(const Histogram& h, const PeakOptions& options = {});

// Difference report between the peak structures of two profiles (phase two
// of the automated analysis tool).
struct PeakDiff {
  int peaks_a = 0;
  int peaks_b = 0;
  // Mode buckets present in one profile with no mode within +-tolerance in
  // the other.
  std::vector<int> only_in_a;
  std::vector<int> only_in_b;
  // Largest |mass_a - mass_b| among matched peaks.
  double max_matched_mass_delta = 0.0;

  bool SameStructure() const {
    return peaks_a == peaks_b && only_in_a.empty() && only_in_b.empty();
  }
};

PeakDiff DiffPeaks(const std::vector<Peak>& a, const std::vector<Peak>& b,
                   int mode_tolerance_buckets = 1);

// Human-readable one-line summary, e.g. "2 peaks: [5-9]@7 mass=0.75, ...".
std::string DescribePeaks(const std::vector<Peak>& peaks);

}  // namespace osprof

#endif  // OSPROF_SRC_CORE_PEAKS_H_
