// The aggregate-stats library: logarithmic latency histograms.
//
// This is the heart of OSprof (paper §3, §4).  A latency is sorted at run
// time into bucket b = floor(r * log2(latency)), where r is the profile
// resolution (the paper always uses r = 1; r = 2 doubles bucket density for
// a negligible CPU cost).  Logarithmic filtering keeps only the dominant
// latency contributor of each execution path visible, so different internal
// OS activities form distinct peaks.
//
// Three update policies mirror the paper's §3.4 "Profile Locking"
// discussion:
//   * Histogram        - plain counters; single writer, or few CPUs where a
//                        small fraction of lost updates is acceptable.
//   * AtomicHistogram  - atomic counters; never loses updates but each
//                        increment locks the cache line.
//   * ShardedHistogram - one plain histogram per thread, merged on demand;
//                        the paper's recommendation for many-CPU systems.
//
// Every histogram maintains a separate checksum of the number of recorded
// measurements; CheckConsistency() compares it with the sum over buckets and
// catches both lost updates and instrumentation errors (paper §4,
// "Representing results").

#ifndef OSPROF_SRC_CORE_HISTOGRAM_H_
#define OSPROF_SRC_CORE_HISTOGRAM_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/clock.h"

namespace osprof {

// With a 64-bit cycle counter, floor(log2(latency)) < 64; resolution r
// multiplies the bucket count.
inline constexpr int kMaxLog2Buckets = 64;

namespace internal {
// Exact predicate: latency^resolution >= 2^exponent, evaluated with a small
// stack big-integer (no floating point).  This is the ground truth behind
// bucket boundaries: floor(r * log2(x)) >= b  <=>  x^r >= 2^b.
bool PowAtLeast(Cycles latency, int resolution, int exponent);
}  // namespace internal

// The exact bucket boundary table for `resolution`: entry b is the smallest
// latency whose bucket is >= b (entry 0 is 0; the one-past-the-end entry
// saturates to the maximum Cycles value).  Built once per process by binary
// search over the exact PowAtLeast predicate, so boundaries never suffer
// floating-point drift.
const std::vector<Cycles>& BucketBounds(int resolution);

// Returns floor(r * log2(latency)).  Latencies of 0 and 1 cycles land in
// bucket 0.
inline int BucketIndex(Cycles latency, int resolution = 1) {
  if (latency <= 1) {
    return 0;
  }
  const int log2_floor = 63 - __builtin_clzll(latency);
  if (resolution == 1) {
    return log2_floor;
  }
  // Floating-point first guess, then exact correction against the integer
  // boundary table: log2 rounding can disagree with the true floor exactly
  // at bucket boundaries, which would put BucketLowerBound(b) in bucket
  // b - 1 or b + 1 depending on the rounding direction.
  const std::vector<Cycles>& lb = BucketBounds(resolution);
  const int max_bucket = static_cast<int>(lb.size()) - 2;
  int b = static_cast<int>(static_cast<double>(resolution) *
                           std::log2(static_cast<double>(latency)));
  if (b < 0) {
    b = 0;
  } else if (b > max_bucket) {
    b = max_bucket;
  }
  while (b > 0 && lb[static_cast<std::size_t>(b)] > latency) {
    --b;
  }
  while (b < max_bucket && lb[static_cast<std::size_t>(b) + 1] <= latency) {
    ++b;
  }
  return b;
}

// The smallest latency that maps to `bucket` (inverse of BucketIndex).
// Provably lands in `bucket`: BucketIndex(BucketLowerBound(b, r), r) == b
// whenever bucket b contains any integer latency at all (at high
// resolutions the lowest few buckets cover sub-integer ranges only).
inline Cycles BucketLowerBound(int bucket, int resolution = 1) {
  if (bucket <= 0) {
    return 0;
  }
  if (resolution == 1) {
    return bucket >= kMaxLog2Buckets ? ~Cycles{0} : Cycles{1} << bucket;
  }
  const std::vector<Cycles>& lb = BucketBounds(resolution);
  if (bucket >= static_cast<int>(lb.size())) {
    return ~Cycles{0};
  }
  return lb[static_cast<std::size_t>(bucket)];
}

// One past the largest latency that maps to `bucket` (saturates at the
// maximum representable latency for the last bucket).
inline Cycles BucketUpperBound(int bucket, int resolution = 1) {
  return BucketLowerBound(bucket + 1, resolution);
}

// The representative ("average") latency of a bucket.  The paper uses the
// arithmetic mid-point of the bucket range: for r = 1 this is
// 3/2 * 2^b (paper §3.3 computes expected preemptions with tcpu = 3/2 2^b).
inline double BucketMidLatency(int bucket, int resolution = 1) {
  const double lo = std::exp2(static_cast<double>(bucket) / resolution);
  const double hi = std::exp2(static_cast<double>(bucket + 1) / resolution);
  return (lo + hi) / 2.0;
}

// A plain (single-writer) log-bucket histogram.
class Histogram {
 public:
  explicit Histogram(int resolution = 1);

  // Sorts `latency` (cycles) into its bucket.  ~a handful of instructions:
  // this is the code that runs on every profiled OS request.
  void Add(Cycles latency) {
    ++recorded_;
    total_latency_ += latency;
    ++buckets_[BucketIndex(latency, resolution_)];
  }

  // Record path for callers that already computed BucketIndex (the flat and
  // layered profiles of one span share a single bucket computation).
  void AddInBucket(int bucket, Cycles latency) {
    ++recorded_;
    total_latency_ += latency;
    ++buckets_[static_cast<std::size_t>(bucket)];
  }

  // Merges counts from another histogram of the same resolution.
  void Merge(const Histogram& other);

  int resolution() const { return resolution_; }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  std::uint64_t bucket(int i) const { return buckets_[i]; }

  // Direct bucket access for deserialization and synthetic profiles.
  void set_bucket(int i, std::uint64_t count);

  // Overrides the checksum and exact latency sum.  Only for deserialization
  // and atomic snapshots, where the exact totals are known out of band.
  void SetTotals(std::uint64_t recorded, Cycles total_latency) {
    recorded_ = recorded;
    total_latency_ = total_latency;
  }

  // Total number of Add() calls (the checksum counter).
  std::uint64_t recorded() const { return recorded_; }
  // Sum of all bucket counts; equals recorded() iff no updates were lost.
  std::uint64_t TotalOperations() const;
  // Sum of the raw (unbucketed) latencies, in cycles.
  Cycles total_latency() const { return total_latency_; }

  bool empty() const { return TotalOperations() == 0; }

  // First/last non-empty bucket, or -1 if the histogram is empty.
  int FirstNonEmpty() const;
  int LastNonEmpty() const;

  // Arithmetic mean of the recorded latencies (exact, from total_latency).
  double MeanLatency() const;

  // Mean latency as estimated from bucket mid-points only; this is what an
  // analyst can compute from a published profile.
  double BucketedMeanLatency() const;

  // True iff the bucket sum matches the recorded-measurement checksum.
  bool CheckConsistency() const { return TotalOperations() == recorded_; }

  // Normalized bucket densities (sums to 1); empty histogram yields zeros.
  std::vector<double> Normalized() const;

  void Clear();

 private:
  int resolution_;
  std::uint64_t recorded_ = 0;
  Cycles total_latency_ = 0;
  std::vector<std::uint64_t> buckets_;
};

// A histogram with atomic bucket updates: no lost counts at the price of a
// locked increment per operation (the "naive solution" of §3.4, provided
// because it is sometimes the right tradeoff).
class AtomicHistogram {
 public:
  explicit AtomicHistogram(int resolution = 1);

  void Add(Cycles latency) {
    recorded_.fetch_add(1, std::memory_order_relaxed);
    total_latency_.fetch_add(latency, std::memory_order_relaxed);
    buckets_[BucketIndex(latency, resolution_)].fetch_add(
        1, std::memory_order_relaxed);
  }

  int resolution() const { return resolution_; }

  // Snapshots the atomic counters into a plain Histogram.
  Histogram Snapshot() const;

 private:
  int resolution_;
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<Cycles> total_latency_{0};
  std::vector<std::atomic<std::uint64_t>> buckets_;
};

// Per-thread sharded histogram: each registered thread updates a private
// histogram, so no increments are ever lost and no cache lines ping-pong
// (§3.4's recommendation for systems with many CPUs).
class ShardedHistogram {
 public:
  explicit ShardedHistogram(int resolution = 1) : resolution_(resolution) {}

  // Returns this thread's shard, creating it on first use.  The pointer
  // stays valid for the lifetime of the ShardedHistogram.
  Histogram* Local();

  // Merges all shards.  Safe to call while other threads keep adding; the
  // result is then a momentary snapshot.
  Histogram Merge() const;

  int resolution() const { return resolution_; }
  int shard_count() const;

 private:
  int resolution_;
  // Process-unique id used to key the thread-local shard cache; assigned on
  // first Local() call.
  mutable std::atomic<std::uint64_t> id_{0};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Histogram>> shards_;
};

}  // namespace osprof

#endif  // OSPROF_SRC_CORE_HISTOGRAM_H_
