#include "src/core/prior.h"

#include <cmath>
#include <cstdlib>

namespace osprof {

void PriorKnowledge::Add(std::string name, Cycles cycles,
                         int bucket_tolerance) {
  entries_.push_back(
      CharacteristicTime{std::move(name), cycles, bucket_tolerance});
}

PriorKnowledge PriorKnowledge::PaperTestbed() {
  PriorKnowledge pk;
  const double hz = kPaperCpuHz;
  pk.Add("context switch", SecondsToCycles(5.6e-6, hz));
  pk.Add("track-to-track seek", SecondsToCycles(0.3e-3, hz));
  pk.Add("full disk rotation", SecondsToCycles(4e-3, hz));
  pk.Add("full-stroke seek", SecondsToCycles(8e-3, hz));
  pk.Add("network round trip", SecondsToCycles(112e-6, hz));
  pk.Add("scheduling quantum", SecondsToCycles(58e-3, hz));
  pk.Add("timer tick", SecondsToCycles(4e-3, hz));
  pk.Add("delayed ACK timeout", SecondsToCycles(200e-3, hz));
  return pk;
}

std::vector<std::string> PriorKnowledge::MatchBucket(int bucket,
                                                     int resolution) const {
  std::vector<std::string> matches;
  for (const CharacteristicTime& ct : entries_) {
    const int ct_bucket = BucketIndex(ct.cycles, resolution);
    if (std::abs(ct_bucket - bucket) <= ct.bucket_tolerance * resolution) {
      matches.push_back(ct.name);
    }
  }
  return matches;
}

std::vector<PriorKnowledge::AnnotatedPeak> PriorKnowledge::Annotate(
    const std::vector<Peak>& peaks, int resolution) const {
  std::vector<AnnotatedPeak> out;
  out.reserve(peaks.size());
  for (const Peak& p : peaks) {
    out.push_back(AnnotatedPeak{p, MatchBucket(p.mode_bucket, resolution)});
  }
  return out;
}

}  // namespace osprof
