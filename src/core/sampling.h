// Profile sampling: three-dimensional (time-sliced) profiles (paper §3.1,
// Figure 9).
//
// Instead of adding every latency of a run into one histogram, a sampled
// profiler starts a fresh set of buckets every `epoch_cycles`, producing a
// time series of histograms per operation.  This exposes periodic
// interactions -- e.g. Reiserfs write_super grabbing a coarse lock every
// five seconds and right-shifting concurrent reads -- and supports
// non-monotonic workload generators such as compiles.

#ifndef OSPROF_SRC_CORE_SAMPLING_H_
#define OSPROF_SRC_CORE_SAMPLING_H_

#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/histogram.h"
#include "src/core/op_table.h"

namespace osprof {

// The time series of histograms for one operation.
class SampledProfile {
 public:
  SampledProfile(std::string op_name, Cycles epoch_cycles, int resolution)
      : op_name_(std::move(op_name)),
        epoch_cycles_(epoch_cycles),
        resolution_(resolution) {}

  // Records a latency observed at absolute time `now` (cycles since the
  // sampling run began).
  void Add(Cycles now, Cycles latency);

  const std::string& op_name() const { return op_name_; }
  Cycles epoch_cycles() const { return epoch_cycles_; }

  // Number of epochs spanned so far (trailing empty epochs included only if
  // a later Add created them).
  int num_epochs() const { return static_cast<int>(epochs_.size()); }

  // Histogram of epoch `i` (empty histogram if nothing was recorded).
  const Histogram& epoch(int i) const { return epochs_[i]; }

  // Merges all epochs into a single flat histogram.
  Histogram Flatten() const;

  // Direct epoch access for deserialization; extends the series with
  // empty epochs as needed.
  Histogram* MutableEpoch(int i);

 private:
  std::string op_name_;
  Cycles epoch_cycles_;
  int resolution_;
  std::vector<Histogram> epochs_;
};

// A set of sampled profiles, one per operation, sharing an epoch length.
class SampledProfileSet {
 public:
  explicit SampledProfileSet(Cycles epoch_cycles, int resolution = 1)
      : epoch_cycles_(epoch_cycles), resolution_(resolution) {}

  // Get-or-create the sampled profile of `op`.  The pointer is stable for
  // the set's lifetime (deque backing), so profilers cache it per OpId and
  // keep the steady-state record path free of string lookups.
  SampledProfile* Slot(std::string_view op);

  void Add(std::string_view op, Cycles now, Cycles latency) {
    Slot(op)->Add(now, latency);
  }

  const SampledProfile* Find(std::string_view op) const;
  Cycles epoch_cycles() const { return epoch_cycles_; }
  std::vector<std::string> OperationNames() const;

  // Renders the density grid of one operation like Figure 9: rows are
  // epochs (oldest first), columns are buckets, cells are density classes
  // ('.': 0, '1': 1-10 ops, '2': 11-100, '#': >100).
  std::string RenderGrid(const std::string& op, int first_bucket,
                         int last_bucket) const;

  // Emits a gnuplot script reproducing the paper's 3-D sampled-profile
  // plots (Figure 9): x = bucket number, y = elapsed time (epoch), point
  // classes by operation count, matching the figure's legend
  // (1-10 / 11-100 / >100 operations).
  std::string RenderGnuplot3D(const std::string& op, double cpu_hz) const;

  // Text serialization (an extension of the ProfileSet format: one
  // "sampled <op> epoch=<i>" block per non-empty epoch), so sampled
  // profiles can ship to the offline tooling like flat ones.
  void Serialize(std::ostream& os) const;
  std::string ToString() const;
  static SampledProfileSet Parse(std::istream& is);
  static SampledProfileSet ParseString(const std::string& text);

 private:
  Cycles epoch_cycles_;
  int resolution_;
  OpTable table_;
  // Indexed by OpId; deque so Slot() pointers survive later interning.
  std::deque<SampledProfile> profiles_;
};

// Change-point detection over a sampled profile (§3.1: "In this case we
// are also comparing one set of profiles against another, as they progress
// in time").  An epoch is a change point when its histogram's distance
// from the previous non-empty epoch exceeds `threshold` under the Earth
// Mover's Distance -- the same rater the automated tool trusts most.
struct EpochChange {
  int epoch = 0;        // The epoch where the behaviour changed.
  double score = 0.0;   // EMD from the previous non-empty epoch.
};

std::vector<EpochChange> FindEpochChanges(const SampledProfile& profile,
                                          double threshold = 0.2);

}  // namespace osprof

#endif  // OSPROF_SRC_CORE_SAMPLING_H_
