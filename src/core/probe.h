// Latency probes: the FSPROF_PRE / FSPROF_POST pair of the paper as a C++
// RAII guard, for profiling real code paths (the simulated kernel has its
// own probes that read simulated time).

#ifndef OSPROF_SRC_CORE_PROBE_H_
#define OSPROF_SRC_CORE_PROBE_H_

#include "src/core/clock.h"
#include "src/core/histogram.h"
#include "src/core/profile.h"

namespace osprof {

// Measures the TSC latency of a scope and adds it to a histogram:
//
//   void MyOp() {
//     LatencyProbe probe(&histogram);
//     ...  // profiled code
//   }       // <- latency recorded here
//
// The probe costs two TSC reads plus one bucket sort (~40 cycles between
// the reads on the paper's hardware, §5.2), so only the fastest operations
// are perturbed.
class LatencyProbe {
 public:
  explicit LatencyProbe(Histogram* histogram)
      : histogram_(histogram), start_(ReadTsc()) {}
  explicit LatencyProbe(Profile* profile)
      : LatencyProbe(&profile->histogram()) {}

  LatencyProbe(const LatencyProbe&) = delete;
  LatencyProbe& operator=(const LatencyProbe&) = delete;

  ~LatencyProbe() {
    if (histogram_ != nullptr) {
      const Cycles end = ReadTsc();
      histogram_->Add(end >= start_ ? end - start_ : 0);
    }
  }

  // Abandons the measurement (e.g. the operation failed in a way that
  // should not pollute the profile).
  void Cancel() { histogram_ = nullptr; }

 private:
  Histogram* histogram_;
  Cycles start_;
};

// Times a callable and records its latency; returns the callable's result.
template <typename Fn>
auto Timed(Histogram* histogram, Fn&& fn) -> decltype(fn()) {
  LatencyProbe probe(histogram);
  return fn();
}

}  // namespace osprof

#endif  // OSPROF_SRC_CORE_PROBE_H_
