#include "src/core/clock.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace osprof {

double EstimateTscHz(int sample_ms) {
  const auto wall_start = std::chrono::steady_clock::now();
  const Cycles tsc_start = ReadTsc();
  const auto deadline = wall_start + std::chrono::milliseconds(sample_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    // Busy-wait: the sample window is tiny and we want cycle fidelity.
  }
  const Cycles tsc_end = ReadTsc();
  const auto wall_end = std::chrono::steady_clock::now();
  const double elapsed_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  if (elapsed_s <= 0.0) {
    return kPaperCpuHz;
  }
  return static_cast<double>(tsc_end - tsc_start) / elapsed_s;
}

std::string FormatSeconds(double seconds) {
  struct Unit {
    double scale;
    const char* suffix;
  };
  static constexpr std::array<Unit, 4> kUnits = {{
      {1e-9, "ns"},
      {1e-6, "us"},
      {1e-3, "ms"},
      {1.0, "s"},
  }};
  // Pick the largest unit in which the value is >= 1, like the paper's
  // figure labels (28ns, 903ns, 28us, ...).
  const Unit* chosen = &kUnits[0];
  for (const Unit& u : kUnits) {
    if (seconds >= u.scale) {
      chosen = &u;
    }
  }
  const double value = seconds / chosen->scale;
  char buf[32];
  if (value >= 100.0 || value == std::floor(value)) {
    std::snprintf(buf, sizeof(buf), "%.0f%s", value, chosen->suffix);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g%s", value, chosen->suffix);
  }
  return buf;
}

std::string FormatCycles(Cycles cycles, double hz) {
  return FormatSeconds(CyclesToSeconds(cycles, hz));
}

}  // namespace osprof
