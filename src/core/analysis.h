// The automated profile analysis tool (paper §3.2).
//
// Given two complete profile sets (e.g. "one process" vs "two processes",
// or "before patch" vs "after patch"), the tool selects the small set of
// interesting profiles a person should look at.  It operates in three
// phases:
//   1. Ignore pairs whose total latency and operation counts are tiny
//      compared to the rest, or whose totals are nearly identical
//      (configurable thresholds).
//   2. Segment both profiles into peaks and report differences in peak
//      count and location.
//   3. Rate the remaining pairs with one of the comparison methods and
//      rank by score.
//
// The same machinery also ranks a single profile set by total latency
// (profile preprocessing, §3.1).

#ifndef OSPROF_SRC_CORE_ANALYSIS_H_
#define OSPROF_SRC_CORE_ANALYSIS_H_

#include <string>
#include <vector>

#include "src/core/compare.h"
#include "src/core/peaks.h"
#include "src/core/profile.h"

namespace osprof {

struct AnalysisOptions {
  CompareMethod method = CompareMethod::kEarthMovers;
  // Phase 1: drop a pair when both sides contribute less than this fraction
  // of the busiest profile's total latency AND operation count.
  double insignificance_fraction = 0.01;
  // Phase 1: drop a pair whose total latencies agree within this relative
  // tolerance AND whose distance score is below `score_threshold`.
  double similar_latency_tolerance = 0.05;
  // Phase 3: pairs scoring >= this are reported as interesting.  The range
  // of scores is method-dependent; see DefaultThreshold().
  double score_threshold = 0.2;
  // Peak segmentation knobs (phase 2).
  PeakOptions peak_options;
  int peak_mode_tolerance = 1;
};

// A sensible score threshold per method, calibrated on the synthetic corpus
// used by the §5.3 accuracy benchmark.
double DefaultThreshold(CompareMethod method);

// The verdict for one operation's pair of profiles.
struct PairReport {
  std::string op_name;
  double score = 0.0;          // Distance under the chosen method.
  bool interesting = false;    // Selected for manual analysis.
  std::string reason;          // Why it was selected / dropped.
  PeakDiff peak_diff;
  std::vector<Peak> peaks_a;
  std::vector<Peak> peaks_b;
  std::uint64_t ops_a = 0;
  std::uint64_t ops_b = 0;
  Cycles latency_a = 0;
  Cycles latency_b = 0;
};

struct AnalysisReport {
  // All operation pairs, interesting ones first, then by descending score.
  std::vector<PairReport> pairs;

  // Convenience view of the selected subset.
  std::vector<const PairReport*> Interesting() const;
  std::string Summary() const;
};

// Compares two complete profile sets and selects interesting pairs.
// Operations present in only one set are always interesting (a path that
// appeared or vanished).
AnalysisReport CompareProfileSets(const ProfileSet& a, const ProfileSet& b,
                                  const AnalysisOptions& options = {});

// Ranks one profile set: operations by descending total latency, with the
// cumulative latency fraction.  (Profile preprocessing, §3.1.)
struct RankedOp {
  std::string op_name;
  Cycles total_latency = 0;
  std::uint64_t total_ops = 0;
  double latency_fraction = 0.0;
  double cumulative_fraction = 0.0;
};
std::vector<RankedOp> RankByLatency(const ProfileSet& set);

}  // namespace osprof

#endif  // OSPROF_SRC_CORE_ANALYSIS_H_
