// A minimal JSON emitter for machine-readable reports.
//
// The bench binaries (bench/bench_util.h) and the regression gate
// (src/tools/gate_command.cc) both emit small JSON documents for CI to
// consume.  The repo deliberately has no third-party JSON dependency, so
// this header provides the 20% of JSON that those writers need: objects
// and arrays with insertion-ordered keys, strings, bools, finite doubles
// and 64-bit integers, with correct string escaping.  There is no parser;
// consumers are external tools (python -m json.tool, jq, CI scripts).

#ifndef OSPROF_SRC_CORE_JSONW_H_
#define OSPROF_SRC_CORE_JSONW_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace osjson {

// One JSON value; build with the typed factories / mutators below and
// render with Dump().  Object keys keep insertion order so emitted
// documents are deterministic and diffable.
class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}

  static Value Bool(bool b) {
    Value v(Kind::kBool);
    v.bool_ = b;
    return v;
  }
  static Value Int(std::int64_t i) {
    Value v(Kind::kInt);
    v.int_ = i;
    return v;
  }
  static Value Uint(std::uint64_t u) {
    // JSON has no unsigned type; 2^63 and up would need a string anyway,
    // and no counter in this codebase gets there.
    return Int(static_cast<std::int64_t>(u));
  }
  static Value Double(double d) {
    Value v(Kind::kDouble);
    v.double_ = d;
    return v;
  }
  static Value Str(std::string s) {
    Value v(Kind::kString);
    v.string_ = std::move(s);
    return v;
  }
  static Value Array() { return Value(Kind::kArray); }
  static Value Object() { return Value(Kind::kObject); }

  Kind kind() const { return kind_; }

  // Object mutation: sets `key` (replacing an existing entry in place).
  Value& Set(const std::string& key, Value value) {
    for (auto& [k, v] : members_) {
      if (k == key) {
        v = std::move(value);
        return *this;
      }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
  }

  // Array mutation.
  Value& Append(Value value) {
    elements_.push_back(std::move(value));
    return *this;
  }

  // Serializes with two-space indentation and a stable member order.
  std::string Dump() const {
    std::string out;
    DumpTo(&out, 0);
    out.push_back('\n');
    return out;
  }

 private:
  explicit Value(Kind kind) : kind_(kind) {}

  static void AppendEscaped(std::string* out, const std::string& s) {
    out->push_back('"');
    for (const char c : s) {
      switch (c) {
        case '"':
          *out += "\\\"";
          break;
        case '\\':
          *out += "\\\\";
          break;
        case '\n':
          *out += "\\n";
          break;
        case '\t':
          *out += "\\t";
          break;
        case '\r':
          *out += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            *out += buf;
          } else {
            out->push_back(c);
          }
      }
    }
    out->push_back('"');
  }

  void DumpTo(std::string* out, int indent) const {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string inner_pad(static_cast<std::size_t>(indent + 1) * 2, ' ');
    char buf[64];
    switch (kind_) {
      case Kind::kNull:
        *out += "null";
        break;
      case Kind::kBool:
        *out += bool_ ? "true" : "false";
        break;
      case Kind::kInt:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(int_));
        *out += buf;
        break;
      case Kind::kDouble:
        if (!std::isfinite(double_)) {
          *out += "null";  // JSON cannot express inf/nan.
        } else {
          std::snprintf(buf, sizeof(buf), "%.17g", double_);
          *out += buf;
        }
        break;
      case Kind::kString:
        AppendEscaped(out, string_);
        break;
      case Kind::kArray: {
        if (elements_.empty()) {
          *out += "[]";
          break;
        }
        *out += "[\n";
        for (std::size_t i = 0; i < elements_.size(); ++i) {
          *out += inner_pad;
          elements_[i].DumpTo(out, indent + 1);
          *out += i + 1 < elements_.size() ? ",\n" : "\n";
        }
        *out += pad + "]";
        break;
      }
      case Kind::kObject: {
        if (members_.empty()) {
          *out += "{}";
          break;
        }
        *out += "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
          *out += inner_pad;
          AppendEscaped(out, members_[i].first);
          *out += ": ";
          members_[i].second.DumpTo(out, indent + 1);
          *out += i + 1 < members_.size() ? ",\n" : "\n";
        }
        *out += pad + "}";
        break;
      }
    }
  }

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> elements_;                          // kArray
  std::vector<std::pair<std::string, Value>> members_;   // kObject
};

}  // namespace osjson

#endif  // OSPROF_SRC_CORE_JSONW_H_
