#include "src/core/peaks.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace osprof {
namespace {

// Builds a Peak over buckets [first, last] of `h`.
Peak MakePeak(const Histogram& h, int first, int last, std::uint64_t total) {
  Peak p;
  p.first_bucket = first;
  p.last_bucket = last;
  std::uint64_t best = 0;
  double latency_sum = 0.0;
  for (int b = first; b <= last; ++b) {
    const std::uint64_t c = h.bucket(b);
    p.count += c;
    latency_sum += static_cast<double>(c) * BucketMidLatency(b, h.resolution());
    if (c > best) {
      best = c;
      p.mode_bucket = b;
    }
  }
  p.mass = total == 0 ? 0.0
                      : static_cast<double>(p.count) / static_cast<double>(total);
  p.mean_latency = p.count == 0 ? 0.0 : latency_sum / static_cast<double>(p.count);
  return p;
}

}  // namespace

std::vector<Peak> FindPeaks(const Histogram& h, const PeakOptions& options) {
  std::vector<Peak> peaks;
  const std::uint64_t total = h.TotalOperations();
  if (total == 0) {
    return peaks;
  }
  std::uint64_t tallest = 0;
  for (int b = 0; b < h.num_buckets(); ++b) {
    tallest = std::max(tallest, h.bucket(b));
  }
  const double noise_floor =
      options.noise_floor_fraction * static_cast<double>(tallest);

  int run_start = -1;
  auto flush_run = [&](int run_end) {
    // Split the contiguous run [run_start, run_end] at significant valleys
    // using hysteresis on the log10 scale: a split happens where the counts
    // dip at least `min_valley_depth_decades` below the maxima on both
    // sides of the dip.
    const double depth = options.min_valley_depth_decades;
    int seg_start = run_start;
    double seg_max = -1.0;        // Max log-count since segment start.
    double valley = 1e300;        // Min log-count since seg_max was set.
    int valley_bucket = run_start;
    for (int b = run_start; b <= run_end; ++b) {
      const double logc = std::log10(static_cast<double>(h.bucket(b)));
      if (logc > seg_max) {
        seg_max = logc;
        valley = logc;
        valley_bucket = b;
      }
      if (logc < valley) {
        valley = logc;
        valley_bucket = b;
      }
      const bool deep_on_left = seg_max - valley >= depth;
      const bool rising_on_right = logc - valley >= depth;
      if (deep_on_left && rising_on_right && valley_bucket > seg_start) {
        peaks.push_back(MakePeak(h, seg_start, valley_bucket, total));
        seg_start = valley_bucket + 1;
        seg_max = logc;
        valley = logc;
        valley_bucket = b;
      }
    }
    if (seg_start <= run_end) {
      peaks.push_back(MakePeak(h, seg_start, run_end, total));
    }
  };

  for (int b = 0; b < h.num_buckets(); ++b) {
    if (h.bucket(b) != 0) {
      if (run_start < 0) {
        run_start = b;
      }
    } else if (run_start >= 0) {
      flush_run(b - 1);
      run_start = -1;
    }
  }
  if (run_start >= 0) {
    flush_run(h.num_buckets() - 1);
  }

  // Drop noise-floor-only and tiny peaks.
  std::vector<Peak> kept;
  for (const Peak& p : peaks) {
    if (p.count < options.min_count) {
      continue;
    }
    if (static_cast<double>(h.bucket(p.mode_bucket)) <= noise_floor) {
      continue;
    }
    kept.push_back(p);
  }
  return kept;
}

PeakDiff DiffPeaks(const std::vector<Peak>& a, const std::vector<Peak>& b,
                   int mode_tolerance_buckets) {
  PeakDiff diff;
  diff.peaks_a = static_cast<int>(a.size());
  diff.peaks_b = static_cast<int>(b.size());
  std::vector<bool> b_matched(b.size(), false);
  for (const Peak& pa : a) {
    bool matched = false;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (b_matched[j]) {
        continue;
      }
      if (std::abs(pa.mode_bucket - b[j].mode_bucket) <= mode_tolerance_buckets) {
        b_matched[j] = true;
        matched = true;
        diff.max_matched_mass_delta = std::max(
            diff.max_matched_mass_delta, std::abs(pa.mass - b[j].mass));
        break;
      }
    }
    if (!matched) {
      diff.only_in_a.push_back(pa.mode_bucket);
    }
  }
  for (std::size_t j = 0; j < b.size(); ++j) {
    if (!b_matched[j]) {
      diff.only_in_b.push_back(b[j].mode_bucket);
    }
  }
  return diff;
}

std::string DescribePeaks(const std::vector<Peak>& peaks) {
  std::ostringstream os;
  os << peaks.size() << (peaks.size() == 1 ? " peak: " : " peaks: ");
  for (std::size_t i = 0; i < peaks.size(); ++i) {
    if (i != 0) {
      os << ", ";
    }
    const Peak& p = peaks[i];
    os << "[" << p.first_bucket << "-" << p.last_bucket << "]@" << p.mode_bucket;
    os.precision(3);
    os << " mass=" << p.mass;
  }
  return os.str();
}

}  // namespace osprof
