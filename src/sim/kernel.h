// The simulated OS kernel: CPUs, threads, scheduler, timer interrupts.
//
// This is the substrate on which every profile in the paper is reproduced.
// It models exactly the mechanisms whose interactions OSprof observes:
//
//  * N CPUs with a round-robin run queue, a scheduling quantum Q, and a
//    context-switch cost (the paper's machine: ~5.6us switch, Q = 2^26
//    cycles ~ 39ms at 1.7 GHz).
//  * Optional in-kernel preemption (Linux 2.6 CONFIG_PREEMPT vs the
//    non-preemptive Linux 2.4 / FreeBSD 5.2 behaviour of §3.3): a thread
//    executing in kernel mode is forcibly preempted at quantum expiry only
//    if kernel preemption is enabled; in user mode it is always
//    preemptible.
//  * Periodic timer interrupts that steal CPU from whatever request is
//    running -- the source of the small 4ms-spaced peaks in Figure 3.
//  * Per-CPU TSC offsets (clock skew, §3.4): ReadTsc() returns the current
//    CPU's counter, so a thread migrating between probe reads observes the
//    skew.
//
// Simulated code advances time only through awaitables (Cpu, CpuUser,
// Sleep, Yield and the sync/disk primitives); the C++ code between awaits
// is zero simulated time.  The kernel is single-real-threaded and
// deterministic.
//
// One Kernel event loop can simulate an N-node cluster: KernelConfig
// partitions the CPUs into `num_nodes` contiguous slices, each owned by an
// osim::Node with its own run queue, so threads never migrate across node
// boundaries and per-node scheduling is independent -- while the single
// event queue keeps the whole cluster deterministic.  Cross-node traffic
// (DLM grants, RPC) goes over the osnet fabric, never through the
// scheduler.  With num_nodes == 1 (the default) the node layer is
// invisible and scheduling is byte-identical to the pre-node kernel.

#ifndef OSPROF_SRC_SIM_KERNEL_H_
#define OSPROF_SRC_SIM_KERNEL_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/clock.h"
#include "src/sim/event_queue.h"
#include "src/sim/interference.h"
#include "src/sim/lock_order.h"
#include "src/sim/race_tracker.h"
#include "src/sim/request_context.h"
#include "src/sim/rng.h"
#include "src/sim/run_queue.h"
#include "src/sim/task.h"

namespace osim {

using osprof::Cycles;

class Kernel;

// Whether a CPU burst executes in user or kernel mode; preemption policy
// differs (§3.3).
enum class ExecMode { kUser, kKernel };

enum class ThreadState {
  kCreated,   // Spawned, never dispatched.
  kRunnable,  // In the run queue.
  kRunning,   // Executing C++ code right now (inside a resume).
  kOnBurst,   // Occupying a CPU for a timed burst.
  kSpinning,  // Occupying a CPU, busy-waiting on a spinlock.
  kBlocked,   // Off-CPU: sleeping, waiting on a semaphore or I/O.
  kFinished,
};

// A simulated thread of execution (a process, from the profiler's point of
// view; the simulated kernel does not distinguish).
class SimThread {
 public:
  SimThread(int id, std::string name) : id_(id), name_(std::move(name)) {}

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  ThreadState state() const { return state_; }
  int cpu() const { return cpu_; }
  // The node this thread is pinned to (threads never cross nodes).
  int node() const { return node_; }

  // Lifetime statistics.
  Cycles cpu_time() const { return cpu_time_; }
  // CPU time split by execution mode (spin waits count as system time).
  Cycles user_time() const { return user_time_; }
  Cycles system_time() const { return cpu_time_ - user_time_; }
  std::uint64_t forced_preemptions() const { return forced_preemptions_; }
  std::uint64_t voluntary_switches() const { return voluntary_switches_; }
  Cycles sem_wait_time() const { return sem_wait_time_; }
  Cycles spin_wait_time() const { return spin_wait_time_; }

 private:
  friend class Kernel;
  friend class SimSemaphore;
  friend class SimSpinlock;
  friend class WaitQueue;

  int id_;
  std::string name_;
  Task<void> body_;
  std::coroutine_handle<> resume_point_;
  ThreadState state_ = ThreadState::kCreated;
  int node_ = 0;
  int cpu_ = -1;
  // Last CPU this thread ran on; a dispatch to a different one is a
  // migration (reported on the interference channel).
  int last_cpu_ = -1;

  // Current CPU burst, if any.
  Cycles burst_remaining_ = 0;
  Cycles slice_in_flight_ = 0;
  ExecMode burst_mode_ = ExecMode::kKernel;
  Cycles quantum_remaining_ = 0;

  // Bookkeeping for spinlock waits.
  Cycles spin_started_ = 0;

  // Locks this thread currently holds, for the lock-order tracker.
  // Embedded here so the tracker's hot paths need no thread-id lookup.
  HeldLockStack held_locks_;

  // Wait attribution for the request context: when the thread last became
  // runnable, when it last parked, and which LayerComponent (or -1 for an
  // unattributed park, e.g. Sleep) that park charges at wakeup.
  Cycles runnable_since_ = 0;
  Cycles blocked_since_ = 0;
  int blocked_component_ = -1;

  // Statistics.
  Cycles cpu_time_ = 0;
  Cycles user_time_ = 0;
  std::uint64_t forced_preemptions_ = 0;
  std::uint64_t voluntary_switches_ = 0;
  Cycles sem_wait_time_ = 0;
  Cycles spin_wait_time_ = 0;
};

struct KernelConfig {
  int num_cpus = 1;
  // Nodes the machine's CPUs are partitioned into (a cluster simulated by
  // one event loop).  num_cpus must divide evenly; node i owns the
  // contiguous CPUs [i*per_node, (i+1)*per_node).  1 = the classic
  // single-machine kernel, byte-identical to the pre-node scheduler.
  int num_nodes = 1;
  double cpu_hz = osprof::kPaperCpuHz;
  // Scheduling quantum Q.  The paper measures ~58ms and models Q = 2^26
  // cycles (~39ms at 1.7 GHz); we use 2^26 so Figure 3's preempted
  // requests land in bucket 26.
  Cycles quantum = Cycles{1} << 26;
  bool kernel_preemption = true;
  // Context switch: ~5.6us at 1.7 GHz.
  Cycles context_switch_cost = 9520;
  // Timer interrupt: every 4ms; servicing one costs ~5us of stolen CPU,
  // which is what pushes a hit request into bucket ~13 (Figure 3).
  Cycles timer_tick_period = 6'800'000;
  Cycles timer_irq_cost = 8'500;
  // Per-CPU TSC offsets (clock skew, §3.4).  Sized/expanded to num_cpus.
  std::vector<std::int64_t> tsc_skew;
  std::uint64_t seed = 42;
  // Free a thread's SimThread + coroutine frame the moment it finishes
  // (its lifetime statistics are folded into kernel aggregates first).
  // Required for million-task churn workloads, where keeping every dead
  // thread would grow memory without bound; off by default because
  // tests/tools that inspect threads() post-mortem expect the objects to
  // survive.  Thread ids stay monotonic either way.
  bool reap_finished = false;
};

// Heap footprint of the simulation substrate, surfaced through the kernel
// so scale workloads can assert memory stays bounded (ROADMAP item 2).
// All figures are approximations computed from container capacities --
// cheap enough to sample mid-run.
struct KernelMemoryStats {
  int live_threads = 0;
  std::uint64_t spawned_threads = 0;
  std::uint64_t reaped_threads = 0;
  // Live SimThread objects plus the id-indexed slot vector's capacity.
  std::size_t thread_bytes = 0;
  // Scheduler queue: chunks held (including recycled ones) and the
  // deepest the queue has ever been.
  std::size_t run_queue_bytes = 0;
  std::size_t run_queue_peak_depth = 0;
  // Calendar event queue: bucket arrays plus queued events.
  std::size_t event_queue_bytes = 0;
  std::size_t events_pending = 0;
  // Request-context span arena: frame pool plus per-thread tops.
  std::size_t context_bytes = 0;
  std::size_t context_pool_frames = 0;

  std::size_t TotalBytes() const {
    return thread_bytes + run_queue_bytes + event_queue_bytes +
           context_bytes;
  }
};

// A kernel-owned node identity: one simulated machine of the cluster.  A
// node bundles a contiguous slice of the kernel's CPUs with its own run
// queue; the osnet fabric gives each node a NIC endpoint addressed by the
// node id, and cluster file systems instantiate their per-node state
// (page cache, fd table, DLM endpoint) against the same id.  Threads are
// pinned to the node that spawned them: the scheduler dispatches a node's
// run queue onto that node's CPUs only.
class Node {
 public:
  int id() const { return id_; }
  int first_cpu() const { return first_cpu_; }
  int num_cpus() const { return num_cpus_; }
  // Runnable threads currently queued on this node.
  std::size_t queue_depth() const { return run_queue_.size(); }

 private:
  friend class Kernel;
  int id_ = 0;
  int first_cpu_ = 0;
  int num_cpus_ = 0;
  // CPUs of this node with no running thread and no switch in flight:
  // a wakeup skips the per-CPU scan entirely when this is zero (the
  // common case under load; the scan was O(num_cpus) per wakeup).
  int idle_cpus_ = 0;
  ChunkedQueue<SimThread*> run_queue_;
};

class Kernel {
 public:
  explicit Kernel(KernelConfig config = {});

  const KernelConfig& config() const { return config_; }
  EventQueue& events() { return events_; }
  Cycles now() const { return events_.now(); }
  Rng& rng() { return rng_; }

  // Lock-order analysis (lockdep-style); disabled by default, see
  // src/sim/lock_order.h.  The sync primitives report acquisitions here.
  LockOrderTracker& lock_order() { return lock_order_; }
  const LockOrderTracker& lock_order() const { return lock_order_; }

  // Happens-before race detection over simulated tasks; disabled by
  // default, see src/sim/race_tracker.h.  The scheduler and sync
  // primitives feed it edges through the interference channel.
  RaceTracker& races() { return race_tracker_; }
  const RaceTracker& races() const { return race_tracker_; }

  // The per-task span stack shared by every profiling consumer (see
  // src/sim/request_context.h).  Profilers push/pop frames; the scheduler
  // and sync primitives attribute waits to the innermost active span.
  RequestContext& context() { return context_; }
  const RequestContext& context() const { return context_; }

  // The single emission point for every scheduling/interference event the
  // kernel produces (see src/sim/interference.h).  Analyzers such as the
  // noise profiler subscribe here instead of hooking individual call
  // sites.
  InterferenceChannel& channel() { return channel_; }
  const InterferenceChannel& channel() const { return channel_; }

  // Reads the TSC of the CPU the current thread runs on (includes that
  // CPU's skew).  Callable from thread context only.  Inline: this is a
  // per-probe call on the Wrap fast path.
  Cycles ReadTsc() const {
    const Cycles base = events_.now();
    if (current_ != nullptr && current_->cpu_ >= 0) {
      const std::int64_t skew =
          config_.tsc_skew[static_cast<std::size_t>(current_->cpu_)];
      return static_cast<Cycles>(static_cast<std::int64_t>(base) + skew);
    }
    return base;
  }

  // Samples the global clock and the current CPU's TSC together; the span
  // entry/exit paths take one sample instead of two clock calls.
  osprof::ClockSample SampleClocks() const {
    const Cycles base = events_.now();
    osprof::ClockSample s{base, base};
    if (current_ != nullptr && current_->cpu_ >= 0) {
      s.tsc = static_cast<Cycles>(
          static_cast<std::int64_t>(base) +
          config_.tsc_skew[static_cast<std::size_t>(current_->cpu_)]);
    }
    return s;
  }

  // The thread whose code is executing right now, or nullptr when the
  // kernel itself (event callbacks) runs.
  SimThread* current() const { return current_; }

  // Creates a thread running `body`.  The body coroutine must have been
  // created suspended (all Task<void> coroutines are).  Threads become
  // runnable immediately, on the spawner's node (node 0 from kernel
  // context) -- like fork, a child starts where its parent runs.
  SimThread* Spawn(std::string name, Task<void> body);

  // Spawn pinned to a specific node (multi-node scenarios place their
  // per-node clients and daemons explicitly).
  SimThread* SpawnOn(int node, std::string name, Task<void> body);

  // --- Cluster topology -------------------------------------------------

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  int node_of_cpu(int cpu) const {
    return node_of_cpu_[static_cast<std::size_t>(cpu)];
  }
  // Node of the currently executing thread, or -1 in kernel context.
  int current_node() const {
    return current_ != nullptr ? current_->node_ : -1;
  }

  // --- Lock bookkeeping for primitives outside src/sim ------------------
  // Records an acquisition/release of a lock-like object by the current
  // thread with the lock-order and race trackers, exactly as the in-tree
  // primitives (SimSemaphore, SimSpinlock) do.  The DLM (src/net/dlm.h)
  // reports its cluster-wide resource locks here so cross-node
  // acquired-while-held edges land in one merged lock graph and grants
  // order data accesses for SimRace.  `name` must stay alive until the
  // matching release; both calls are no-ops in kernel context.
  void NoteLockAcquired(const void* lock, const std::string& name);
  void NoteLockReleased(const void* lock);

  // --- Awaitables usable inside thread coroutines -----------------------

  // Consumes `cycles` of CPU in kernel mode.  May be forcibly preempted at
  // quantum expiry if kernel preemption is enabled.
  auto Cpu(Cycles cycles) { return CpuAwaitable{this, cycles, ExecMode::kKernel}; }
  // Consumes CPU in user mode (always preemptible at quantum expiry).
  auto CpuUser(Cycles cycles) { return CpuAwaitable{this, cycles, ExecMode::kUser}; }
  // Blocks off-CPU for `cycles` (e.g. a daemon sleeping between runs).
  auto Sleep(Cycles cycles) { return SleepAwaitable{this, cycles}; }
  // Voluntarily yields the CPU, going to the back of the run queue.
  auto Yield() { return YieldAwaitable{this}; }

  // --- Driving the simulation -------------------------------------------

  // Runs until all spawned threads have finished (daemon-style infinite
  // threads would make this spin; use RunFor for those scenarios).
  void RunUntilThreadsFinish();
  // Runs the event queue until simulated time `until`.
  void RunFor(Cycles duration);
  void RunUntil(Cycles until);

  // Number of threads not yet finished.
  int live_threads() const { return live_threads_; }

  std::uint64_t total_forced_preemptions() const;
  std::uint64_t context_switches() const { return context_switches_; }
  std::uint64_t timer_interrupts_delivered() const { return timer_irqs_; }

  // Id-indexed thread slots.  With reap_finished set, a finished thread's
  // slot is null; callers iterating post-mortem must skip nulls then.
  const std::vector<std::unique_ptr<SimThread>>& threads() const {
    return threads_;
  }

  // Threads ever spawned / reaped (monotonic; reaped is 0 unless
  // config().reap_finished).
  std::uint64_t spawned_threads() const { return spawned_threads_; }
  std::uint64_t reaped_threads() const { return reaped_threads_; }

  // Snapshot of the substrate's heap footprint; see KernelMemoryStats.
  KernelMemoryStats MemoryStats() const;

 private:
  friend class SimSemaphore;
  friend class SimSpinlock;
  friend class WaitQueue;
  friend class SimDisk;

  struct CpuState {
    SimThread* running = nullptr;
    bool switching = false;
  };

  struct CpuAwaitable {
    Kernel* kernel;
    Cycles cycles;
    ExecMode mode;
    bool await_ready() const noexcept { return cycles == 0; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  struct SleepAwaitable {
    Kernel* kernel;
    Cycles cycles;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  struct YieldAwaitable {
    Kernel* kernel;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  SimThread* SpawnImpl(int node, std::string name, Task<void> body);

  // Scheduler internals.  Dispatch and preemption are per-node: a node's
  // run queue feeds that node's CPUs only.
  void MakeRunnable(SimThread* t);
  void DispatchIdle(Node& node);
  void BeginSwitch(Node& node, int cpu);
  void CompleteSwitch(int cpu);
  void ResumeThread(SimThread* t);
  void StartBurst(SimThread* t, Cycles cycles, ExecMode mode);
  void ScheduleSlice(SimThread* t);
  void OnSliceEnd(SimThread* t);
  void ReleaseCpuOf(SimThread* t);
  bool BurstPreemptible(const SimThread* t) const;
  // Wall-clock duration of `t`'s CPU slice including timer-interrupt
  // service time stolen within it.
  Cycles WallClockFor(const SimThread* t, Cycles start, Cycles slice);

  // Used by sync primitives: park the current thread (state kBlocked is
  // handled by the caller via awaitable) / wake a parked thread.
  void Wake(SimThread* t) { MakeRunnable(t); }
  // Resume a spinlock waiter on its own CPU after charging the spin time.
  void GrantSpin(SimThread* t);

  // Folds a finishing thread's lifetime statistics into the kernel-level
  // aggregates and frees its slot (reap_finished only).
  void ReapThread(SimThread* t);

  KernelConfig config_;
  EventQueue events_;
  Rng rng_;
  LockOrderTracker lock_order_;
  RaceTracker race_tracker_;
  RequestContext context_;
  InterferenceChannel channel_;
  std::vector<CpuState> cpus_;
  // Per-node scheduling state (run queue + idle-CPU count), deque because
  // Node embeds a non-movable ChunkedQueue.  Sized once at construction.
  std::deque<Node> nodes_;
  std::vector<int> node_of_cpu_;
  std::vector<std::unique_ptr<SimThread>> threads_;
  SimThread* current_ = nullptr;
  int live_threads_ = 0;
  std::uint64_t context_switches_ = 0;
  std::uint64_t timer_irqs_ = 0;
  std::uint64_t spawned_threads_ = 0;
  std::uint64_t reaped_threads_ = 0;
  // Statistics of reaped threads, folded in at reap time so kernel-wide
  // totals survive the SimThread objects.
  std::uint64_t reaped_forced_preemptions_ = 0;
  std::uint64_t reaped_voluntary_switches_ = 0;
  Cycles reaped_cpu_time_ = 0;
  Cycles reaped_user_time_ = 0;
};

}  // namespace osim

#endif  // OSPROF_SRC_SIM_KERNEL_H_
