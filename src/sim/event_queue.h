// The discrete-event engine driving the simulated OS.
//
// Time is measured in CPU cycles of the simulated machine (1.7 GHz by
// default, matching the paper's hardware).  Events at equal timestamps run
// in insertion order, which keeps the simulation deterministic.

#ifndef OSPROF_SRC_SIM_EVENT_QUEUE_H_
#define OSPROF_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/core/clock.h"

namespace osim {

using osprof::Cycles;

class EventQueue {
 public:
  using Action = std::function<void()>;

  Cycles now() const { return now_; }

  // Schedules `action` to run at absolute time `when` (>= now).
  void At(Cycles when, Action action);

  // Schedules `action` to run `delay` cycles from now.
  void After(Cycles delay, Action action) { At(now_ + delay, std::move(action)); }

  // Schedules `action` at the current time, after already-queued
  // same-timestamp events.
  void Now(Action action) { At(now_, std::move(action)); }

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  // Runs the next event, advancing time.  Returns false if none remain.
  bool Step();

  // Runs events until the queue is empty or time would exceed `until`.
  // Returns the number of events executed.
  std::uint64_t RunUntil(Cycles until);

  // Runs events until the queue drains.
  std::uint64_t RunAll();

 private:
  struct Event {
    Cycles when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  Cycles now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace osim

#endif  // OSPROF_SRC_SIM_EVENT_QUEUE_H_
