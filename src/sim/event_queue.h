// The discrete-event engine driving the simulated OS.
//
// Time is measured in CPU cycles of the simulated machine (1.7 GHz by
// default, matching the paper's hardware).  Events at equal timestamps run
// in insertion order, which keeps the simulation deterministic.
//
// The scheduler is a calendar queue (Brown, CACM 1988): events hash into
// power-of-two-width day buckets by `when >> width_log2`, a cursor walks
// the current year bucket by bucket, and extraction scans only the events
// of the current day.  With the width resized to track the mean event gap,
// insert and extract-min are O(1) amortized -- the std::priority_queue it
// replaced cost O(log n) per operation and a full heap's cache misses
// (ISSUE 6).  Ordering is exactly the old comparator's: ascending `when`,
// ties in ascending insertion sequence.

#ifndef OSPROF_SRC_SIM_EVENT_QUEUE_H_
#define OSPROF_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/clock.h"

namespace osim {

using osprof::Cycles;

class EventQueue {
 public:
  using Action = std::function<void()>;

  EventQueue();

  Cycles now() const { return now_; }

  // Schedules `action` to run at absolute time `when` (>= now).
  void At(Cycles when, Action action);

  // Schedules `action` to run `delay` cycles from now.
  void After(Cycles delay, Action action) { At(now_ + delay, std::move(action)); }

  // Schedules `action` at the current time, after already-queued
  // same-timestamp events.
  void Now(Action action) { At(now_, std::move(action)); }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // Runs the next event, advancing time.  Returns false if none remain.
  bool Step();

  // Runs events until the queue is empty or time would exceed `until`.
  // Returns the number of events executed.
  std::uint64_t RunUntil(Cycles until);

  // Runs events until the queue drains.
  std::uint64_t RunAll();

  // Approximate heap footprint: the calendar's bucket arrays plus queued
  // events (std::function targets are counted at their inline size).
  std::size_t ApproxBytes() const {
    std::size_t bytes = buckets_.capacity() * sizeof(buckets_[0]);
    for (const auto& bucket : buckets_) {
      bytes += bucket.capacity() * sizeof(Event);
    }
    return bytes;
  }

 private:
  struct Event {
    Cycles when;
    std::uint64_t seq;
    Action action;
  };

  // Heap comparator: `a` sorts after `b`.  std::push_heap et al. build a
  // max-heap under this, so a heaped bucket's front() is the earliest
  // (when, seq) -- the same unique total order the linear scan selects by.
  static bool LaterEvent(const Event& a, const Event& b) {
    return a.when > b.when || (a.when == b.when && a.seq > b.seq);
  }

  Cycles width() const { return Cycles{1} << width_log2_; }
  std::size_t BucketFor(Cycles when) const {
    return static_cast<std::size_t>(when >> width_log2_) &
           (buckets_.size() - 1);
  }
  // Points the cursor at the day containing `when`.
  void SeekTo(Cycles when) {
    cursor_bucket_ = BucketFor(when);
    cursor_day_end_ = (when >> width_log2_ << width_log2_) + width();
  }
  // Locates the minimum (when, seq) event and caches its position in
  // (min_bucket_, min_index_).  Requires size_ > 0.
  void FindMin();
  // Rebuilds the calendar with `nbuckets` buckets and a width matched to
  // the current event population's span.
  void Resize(std::size_t nbuckets);
  // Converts a bucket that outgrew the scan threshold into a min-heap on
  // (when, seq); see kHeapThreshold in event_queue.cc.
  void HeapifyBucket(std::size_t b);

  Cycles now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;

  int width_log2_ = 14;
  std::vector<std::vector<Event>> buckets_;
  // Per-bucket representation flag.  A bucket is normally an unordered
  // array scanned on extraction -- optimal while the width keeps days
  // near one event.  But events piling onto one timestamp all hash to a
  // single day no matter the width (a million wakeups scheduled for the
  // same instant), and rescanning that day per extraction degenerates to
  // O(n^2).  Past a threshold the bucket flips to a min-heap on
  // (when, seq): front() is the day minimum (O(1) peek, O(log n)
  // push/pop), and because (when, seq) is a unique total order the
  // extraction sequence is bit-for-bit the scan's.  The flag persists
  // until the next Resize redistributes the calendar.
  std::vector<std::uint8_t> heaped_;
  // The cursor year: the bucket being scanned and the exclusive end of
  // its current day.  Invariant: no queued event is earlier than the
  // current day's start.
  std::size_t cursor_bucket_ = 0;
  Cycles cursor_day_end_ = 0;
  // Cached position of the minimum event (valid until insert/extract), so
  // RunUntil's peek-then-step pattern scans each day once.
  bool min_valid_ = false;
  std::size_t min_bucket_ = 0;
  std::size_t min_index_ = 0;
  // Empty-year fallbacks since the last width re-profile (see FindMin).
  int global_scans_ = 0;
};

}  // namespace osim

#endif  // OSPROF_SRC_SIM_EVENT_QUEUE_H_
