#include "src/sim/kernel.h"

#include <algorithm>
#include <stdexcept>

namespace osim {
namespace {

Cycles SaturatingSub(Cycles a, Cycles b) { return a > b ? a - b : 0; }

}  // namespace

Kernel::Kernel(KernelConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  if (config_.num_cpus < 1) {
    throw std::invalid_argument("Kernel needs at least one CPU");
  }
  if (config_.quantum == 0) {
    throw std::invalid_argument("quantum must be positive");
  }
  if (config_.num_nodes < 1 || config_.num_nodes > config_.num_cpus ||
      config_.num_cpus % config_.num_nodes != 0) {
    throw std::invalid_argument(
        "num_nodes must divide num_cpus (contiguous even partition)");
  }
  cpus_.resize(static_cast<std::size_t>(config_.num_cpus));
  config_.tsc_skew.resize(static_cast<std::size_t>(config_.num_cpus), 0);
  const int per_node = config_.num_cpus / config_.num_nodes;
  nodes_.resize(static_cast<std::size_t>(config_.num_nodes));
  node_of_cpu_.resize(static_cast<std::size_t>(config_.num_cpus));
  for (int n = 0; n < config_.num_nodes; ++n) {
    Node& node = nodes_[static_cast<std::size_t>(n)];
    node.id_ = n;
    node.first_cpu_ = n * per_node;
    node.num_cpus_ = per_node;
    node.idle_cpus_ = per_node;
    for (int c = node.first_cpu_; c < node.first_cpu_ + per_node; ++c) {
      node_of_cpu_[static_cast<std::size_t>(c)] = n;
    }
  }
  lock_order_.set_context(&context_);
  race_tracker_.set_context(&context_);
  race_tracker_.BindKernel(this);
  channel_.Bind(&context_, &lock_order_, &race_tracker_);
}

void Kernel::NoteLockAcquired(const void* lock, const std::string& name) {
  if (current_ != nullptr) {
    channel_.LockAcquired(lock, name, current_->held_locks_, current_->id_);
  }
}

void Kernel::NoteLockReleased(const void* lock) {
  if (current_ != nullptr) {
    channel_.LockReleased(lock, current_->held_locks_, current_->id_);
  }
}

SimThread* Kernel::Spawn(std::string name, Task<void> body) {
  // A child starts on its parent's node (node 0 from kernel context), so
  // single-node code never names a node and multi-node workloads fan out
  // naturally from one SpawnOn'd root per node.
  return SpawnImpl(current_ != nullptr ? current_->node_ : 0, std::move(name),
                   std::move(body));
}

SimThread* Kernel::SpawnOn(int node, std::string name, Task<void> body) {
  if (node < 0 || node >= num_nodes()) {
    throw std::invalid_argument("SpawnOn: no such node");
  }
  return SpawnImpl(node, std::move(name), std::move(body));
}

SimThread* Kernel::SpawnImpl(int node, std::string name, Task<void> body) {
  const int id = static_cast<int>(threads_.size());
  threads_.push_back(std::make_unique<SimThread>(id, std::move(name)));
  SimThread* t = threads_.back().get();
  t->node_ = node;
  t->body_ = std::move(body);
  if (!t->body_.valid()) {
    throw std::invalid_argument("Spawn requires a valid coroutine body");
  }
  t->resume_point_ = t->body_.handle();
  ++live_threads_;
  ++spawned_threads_;
  channel_.TaskSpawned(current_ != nullptr ? current_->id_ : -1, id);
  MakeRunnable(t);
  return t;
}

void Kernel::MakeRunnable(SimThread* t) {
  if (t->blocked_component_ >= 0) {
    // The park that blocked this thread was tagged (lock, disk, net):
    // the channel charges the blocked interval to the thread's innermost
    // active span.
    channel_.Wakeup(
        t->id_, static_cast<osprof::LayerComponent>(t->blocked_component_),
        events_.now() - t->blocked_since_, events_.now(), t->node_);
    t->blocked_component_ = -1;
  }
  channel_.TaskWoken(current_ != nullptr ? current_->id_ : -1, t->id_);
  t->runnable_since_ = events_.now();
  t->state_ = ThreadState::kRunnable;
  Node& node = nodes_[static_cast<std::size_t>(t->node_)];
  node.run_queue_.push_back(t);
  DispatchIdle(node);
}

void Kernel::DispatchIdle(Node& node) {
  // Fast path: under load every CPU is busy, and a wakeup must not pay an
  // O(num_cpus) scan to learn that (million-task churn makes this the
  // hottest scheduler branch).  The counter only skips the scan; when a
  // CPU is free the scan below runs in the same ascending order as
  // always, so thread placement -- and with it per-CPU TSC skew -- is
  // unchanged.  The scan covers only this node's CPU slice: a node's run
  // queue never feeds another node's CPUs.
  if (node.idle_cpus_ == 0) {
    return;
  }
  for (int c = node.first_cpu_; c < node.first_cpu_ + node.num_cpus_; ++c) {
    if (node.run_queue_.empty()) {
      return;
    }
    CpuState& cpu = cpus_[static_cast<std::size_t>(c)];
    if (cpu.running == nullptr && !cpu.switching) {
      BeginSwitch(node, c);
    }
  }
}

void Kernel::BeginSwitch(Node& node, int c) {
  cpus_[static_cast<std::size_t>(c)].switching = true;
  --node.idle_cpus_;
  ++context_switches_;
  events_.After(config_.context_switch_cost, [this, c] { CompleteSwitch(c); });
}

void Kernel::CompleteSwitch(int c) {
  CpuState& cpu = cpus_[static_cast<std::size_t>(c)];
  Node& node = nodes_[static_cast<std::size_t>(
      node_of_cpu_[static_cast<std::size_t>(c)])];
  cpu.switching = false;
  if (node.run_queue_.empty()) {
    ++node.idle_cpus_;
    return;  // Everyone found a CPU elsewhere; stay idle.
  }
  SimThread* t = node.run_queue_.front();
  node.run_queue_.pop_front();
  // Runnable-to-running interval (queue wait plus the switch itself) is
  // run-queue wait from the profiled request's point of view (§3.3).
  const bool migrated = t->last_cpu_ >= 0 && t->last_cpu_ != c;
  channel_.Dispatch(t->id_, events_.now() - t->runnable_since_, c, migrated,
                    events_.now(), t->node_);
  t->last_cpu_ = c;
  t->cpu_ = c;
  cpu.running = t;
  t->quantum_remaining_ = config_.quantum;
  if (t->burst_remaining_ > 0) {
    // The thread was preempted mid-burst; continue the burst rather than
    // resuming the coroutine.
    t->state_ = ThreadState::kOnBurst;
    ScheduleSlice(t);
  } else {
    ResumeThread(t);
  }
}

void Kernel::ResumeThread(SimThread* t) {
  t->state_ = ThreadState::kRunning;
  SimThread* const prev = current_;
  current_ = t;
  t->resume_point_.resume();
  current_ = prev;
  if (t->body_.done()) {
    t->state_ = ThreadState::kFinished;
    --live_threads_;
    ReleaseCpuOf(t);
    // Propagate escaped exceptions to the simulation driver: a crashed
    // simulated thread is a bug in the scenario, not something to swallow.
    t->body_.RethrowIfFailed();
    channel_.TaskExited(t->id_);
    if (config_.reap_finished) {
      ReapThread(t);
    }
    return;
  }
  // Otherwise the awaitable that suspended the thread has already moved it
  // to its next state (kOnBurst, kBlocked, kSpinning or kRunnable) and
  // performed the CPU bookkeeping.
}

void Kernel::ReleaseCpuOf(SimThread* t) {
  if (t->cpu_ >= 0) {
    cpus_[static_cast<std::size_t>(t->cpu_)].running = nullptr;
    t->cpu_ = -1;
    Node& node = nodes_[static_cast<std::size_t>(t->node_)];
    ++node.idle_cpus_;
    DispatchIdle(node);
  }
}

bool Kernel::BurstPreemptible(const SimThread* t) const {
  return t->burst_mode_ == ExecMode::kUser || config_.kernel_preemption;
}

void Kernel::StartBurst(SimThread* t, Cycles cycles, ExecMode mode) {
  t->burst_remaining_ = cycles;
  t->burst_mode_ = mode;
  t->state_ = ThreadState::kOnBurst;
  ScheduleSlice(t);
}

void Kernel::ScheduleSlice(SimThread* t) {
  const bool preemptible = BurstPreemptible(t);
  Node& node = nodes_[static_cast<std::size_t>(t->node_)];
  if (t->quantum_remaining_ == 0) {
    if (preemptible && !node.run_queue_.empty()) {
      // Forced preemption: the quantum is gone and someone on this node
      // is waiting.
      ++t->forced_preemptions_;
      channel_.Preempt(t->id_, t->cpu_, events_.now(), t->node_);
      t->runnable_since_ = events_.now();
      t->state_ = ThreadState::kRunnable;
      node.run_queue_.push_back(t);
      ReleaseCpuOf(t);
      return;
    }
    t->quantum_remaining_ = config_.quantum;
  }
  Cycles slice = t->burst_remaining_;
  if (preemptible && slice > t->quantum_remaining_) {
    slice = t->quantum_remaining_;
  }
  t->slice_in_flight_ = slice;
  const Cycles wall = WallClockFor(t, events_.now(), slice);
  events_.After(wall, [this, t] { OnSliceEnd(t); });
}

void Kernel::OnSliceEnd(SimThread* t) {
  const Cycles slice = t->slice_in_flight_;
  t->slice_in_flight_ = 0;
  t->burst_remaining_ -= slice;
  t->quantum_remaining_ = SaturatingSub(t->quantum_remaining_, slice);
  t->cpu_time_ += slice;
  if (t->burst_mode_ == ExecMode::kUser) {
    t->user_time_ += slice;
  }
  if (t->burst_remaining_ > 0) {
    // Quantum expired mid-burst; ScheduleSlice preempts or refreshes.
    ScheduleSlice(t);
    return;
  }
  ResumeThread(t);
}

Cycles Kernel::WallClockFor(const SimThread* t, Cycles start, Cycles slice) {
  const Cycles period = config_.timer_tick_period;
  const Cycles irq_cost = config_.timer_irq_cost;
  if (period == 0 || irq_cost == 0 || slice == 0) {
    return slice;
  }
  // Interrupt service time stretches the slice, which can pull in further
  // ticks; iterate to the fixed point (converges immediately because
  // irq_cost << period).
  Cycles wall = slice;
  std::uint64_t ticks = 0;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t n = (start + wall) / period - start / period;
    const Cycles next = slice + n * irq_cost;
    ticks = n;
    if (next == wall) {
      break;
    }
    wall = next;
  }
  timer_irqs_ += ticks;
  if (ticks > 0) {
    channel_.TimerTicks(t->id_, ticks, ticks * irq_cost, start, t->node_);
  }
  return wall;
}

void Kernel::GrantSpin(SimThread* t) {
  const Cycles spun = events_.now() - t->spin_started_;
  channel_.LockHandoff(t->id_, spun, events_.now(), t->node_);
  t->spin_wait_time_ += spun;
  t->cpu_time_ += spun;
  // Spinning burns quantum; kernel spinlock sections are not preemption
  // points, so expiry is handled at the next burst boundary.
  t->quantum_remaining_ = SaturatingSub(t->quantum_remaining_, spun);
  ResumeThread(t);
}

void Kernel::RunUntilThreadsFinish() {
  while (live_threads_ > 0) {
    if (!events_.Step()) {
      throw std::logic_error(
          "Kernel: event queue drained with live threads (deadlock in the "
          "simulated scenario)");
    }
  }
}

void Kernel::RunFor(Cycles duration) { RunUntil(events_.now() + duration); }

void Kernel::RunUntil(Cycles until) { events_.RunUntil(until); }

void Kernel::ReapThread(SimThread* t) {
  reaped_forced_preemptions_ += t->forced_preemptions_;
  reaped_voluntary_switches_ += t->voluntary_switches_;
  reaped_cpu_time_ += t->cpu_time_;
  reaped_user_time_ += t->user_time_;
  ++reaped_threads_;
  // Destroying the SimThread destroys its Task<void> body, releasing the
  // coroutine frame -- the dominant per-task allocation.  The id-indexed
  // slot stays (null) so ids remain stable and monotonic.
  threads_[static_cast<std::size_t>(t->id_)].reset();
}

std::uint64_t Kernel::total_forced_preemptions() const {
  std::uint64_t total = reaped_forced_preemptions_;
  for (const auto& t : threads_) {
    if (t != nullptr) {
      total += t->forced_preemptions_;
    }
  }
  return total;
}

KernelMemoryStats Kernel::MemoryStats() const {
  KernelMemoryStats stats;
  stats.live_threads = live_threads_;
  stats.spawned_threads = spawned_threads_;
  stats.reaped_threads = reaped_threads_;
  stats.thread_bytes = threads_.capacity() * sizeof(threads_[0]);
  for (const auto& t : threads_) {
    if (t != nullptr) {
      stats.thread_bytes += sizeof(SimThread);
    }
  }
  stats.run_queue_bytes = 0;
  stats.run_queue_peak_depth = 0;
  for (const Node& node : nodes_) {
    stats.run_queue_bytes += node.run_queue_.ApproxBytes();
    stats.run_queue_peak_depth =
        std::max(stats.run_queue_peak_depth, node.run_queue_.peak_size());
  }
  stats.event_queue_bytes = events_.ApproxBytes();
  stats.events_pending = events_.size();
  stats.context_bytes = context_.ApproxBytes();
  stats.context_pool_frames = context_.pool_frames();
  return stats;
}

// --- Awaitable implementations ---------------------------------------------

void Kernel::CpuAwaitable::await_suspend(std::coroutine_handle<> h) {
  SimThread* t = kernel->current();
  if (t == nullptr) {
    throw std::logic_error("Cpu awaited outside thread context");
  }
  t->resume_point_ = h;
  kernel->StartBurst(t, cycles, mode);
}

void Kernel::SleepAwaitable::await_suspend(std::coroutine_handle<> h) {
  SimThread* t = kernel->current();
  if (t == nullptr) {
    throw std::logic_error("Sleep awaited outside thread context");
  }
  t->resume_point_ = h;
  t->state_ = ThreadState::kBlocked;
  kernel->ReleaseCpuOf(t);
  Kernel* k = kernel;
  k->events_.After(cycles, [k, t] { k->Wake(t); });
}

void Kernel::YieldAwaitable::await_suspend(std::coroutine_handle<> h) {
  SimThread* t = kernel->current();
  if (t == nullptr) {
    throw std::logic_error("Yield awaited outside thread context");
  }
  t->resume_point_ = h;
  ++t->voluntary_switches_;
  kernel->ReleaseCpuOf(t);
  kernel->MakeRunnable(t);
}

}  // namespace osim
