#include "src/sim/sync.h"

#include <stdexcept>

namespace osim {

bool SimSemaphore::TryAcquire() {
  if (count_ > 0) {
    --count_;
    ++acquisitions_;
    NoteAcquired();
    return true;
  }
  return false;
}

void SimSemaphore::NoteAcquired() {
  SimThread* t = kernel_->current();
  if (t != nullptr) {
    kernel_->channel().LockAcquired(this, name_, t->held_locks_, t->id());
  }
}

void SimSemaphore::NoteReleased() {
  SimThread* t = kernel_->current();
  if (t != nullptr) {
    kernel_->channel().LockReleased(this, t->held_locks_, t->id());
  }
}

void SimSemaphore::ParkAwaitable::await_suspend(std::coroutine_handle<> h) {
  SimSemaphore* s = sem;
  SimThread* t = s->kernel_->current();
  if (t == nullptr) {
    throw std::logic_error("SimSemaphore::Acquire outside thread context");
  }
  t->resume_point_ = h;
  t->state_ = ThreadState::kBlocked;
  t->blocked_since_ = s->kernel_->now();
  t->blocked_component_ = static_cast<int>(osprof::kLayerLockWait);
  s->kernel_->channel().Park(t->id(), osprof::kLayerLockWait,
                             s->kernel_->now(), t->node());
  s->waiters_.push_back(t);
  s->kernel_->ReleaseCpuOf(t);
}

Task<void> SimSemaphore::Acquire() {
  if (TryAcquire()) {
    co_return;
  }
  const Cycles started = kernel_->now();
  ++contended_;
  // Competitive wakeup: park, then race for the count when woken; a
  // barging acquirer may win, in which case park again (Release always
  // wakes another waiter, so no wakeup is lost).
  do {
    co_await ParkAwaitable{this};
  } while (!TryAcquire());
  const Cycles waited = kernel_->now() - started;
  total_wait_ += waited;
  kernel_->current()->sem_wait_time_ += waited;
}

void SimSemaphore::Release() {
  NoteReleased();
  ++count_;
  if (!waiters_.empty()) {
    SimThread* t = waiters_.front();
    waiters_.pop_front();
    kernel_->Wake(t);
  }
}

void SimSpinlock::LockAwaitable::await_suspend(std::coroutine_handle<> h) {
  SimSpinlock* l = lock;
  SimThread* t = l->kernel_->current();
  if (t == nullptr) {
    throw std::logic_error("SimSpinlock::Lock outside thread context");
  }
  t->resume_point_ = h;
  t->state_ = ThreadState::kSpinning;
  t->spin_started_ = l->kernel_->now();
  l->waiters_.push_back(t);
  ++l->contended_;
  // The thread keeps its CPU: it is burning cycles in the spin loop.
}

void SimSpinlock::Unlock() {
  if (!held_) {
    throw std::logic_error("SimSpinlock::Unlock of a free lock");
  }
  NoteReleased();
  if (!waiters_.empty()) {
    SimThread* t = waiters_.front();
    waiters_.pop_front();
    ++acquisitions_;
    total_spin_ += kernel_->now() - t->spin_started_;
    // Ownership passes directly to the spinner: from the lock graph's
    // point of view, `t` acquires here.
    NoteHandoff(t);
    // The lock stays held; resume the spinner via the event queue to keep
    // resumption non-reentrant.
    Kernel* k = kernel_;
    k->events_.Now([k, t] { k->GrantSpin(t); });
    return;
  }
  held_ = false;
}

void SimSpinlock::NoteAcquired() {
  SimThread* t = kernel_->current();
  if (t != nullptr) {
    kernel_->channel().LockAcquired(this, name_, t->held_locks_, t->id());
  }
}

void SimSpinlock::NoteHandoff(SimThread* to) {
  kernel_->channel().LockAcquired(this, name_, to->held_locks_, to->id());
}

void SimSpinlock::NoteReleased() {
  SimThread* t = kernel_->current();
  if (t != nullptr) {
    kernel_->channel().LockReleased(this, t->held_locks_, t->id());
  }
}

void WaitQueue::WaitAwaitable::await_suspend(std::coroutine_handle<> h) {
  WaitQueue* q = queue;
  SimThread* t = q->kernel_->current();
  if (t == nullptr) {
    throw std::logic_error("WaitQueue::Wait outside thread context");
  }
  t->resume_point_ = h;
  t->state_ = ThreadState::kBlocked;
  if (q->tag_ >= 0) {
    t->blocked_since_ = q->kernel_->now();
    t->blocked_component_ = q->tag_;
    q->kernel_->channel().Park(t->id(),
                               static_cast<osprof::LayerComponent>(q->tag_),
                               q->kernel_->now(), t->node());
  }
  q->waiters_.push_back(t);
  q->kernel_->ReleaseCpuOf(t);
}

void WaitQueue::WakeOne() {
  if (!waiters_.empty()) {
    SimThread* t = waiters_.front();
    waiters_.pop_front();
    kernel_->Wake(t);
  }
}

void WaitQueue::WakeAll() {
  while (!waiters_.empty()) {
    WakeOne();
  }
}

}  // namespace osim
