// Deterministic random number generation for the simulated OS.
//
// Every simulated scenario owns a seeded xoshiro256++ generator, so
// profiles, benches and tests reproduce bit-for-bit.  (std::mt19937 would
// work, but xoshiro is the idiom in event simulators: tiny state, fast,
// and splittable via SplitMix64 seeding.)

#ifndef OSPROF_SRC_SIM_RNG_H_
#define OSPROF_SRC_SIM_RNG_H_

#include <cmath>
#include <cstdint>

namespace osim {

// SplitMix64: seeds the main generator and derives independent streams.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256++ by Blackman & Vigna (public domain reference construction).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound), bound > 0.  Uses 128-bit multiply-shift
  // (Lemire); the modulo bias is negligible for simulation purposes.
  std::uint64_t Below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  bool Chance(double probability) { return Uniform() < probability; }

  // Standard normal via Box-Muller (one value per call; simple and fine at
  // simulation rates).
  double Normal() {
    double u1 = Uniform();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    const double u2 = Uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Log-normal distribution specified by the median and a log-space sigma;
  // natural for code-path execution times, which are multiplicatively
  // noisy (cache hits/misses, branch behaviour).
  double LogNormal(double median, double sigma) {
    return median * std::exp(sigma * Normal());
  }

  // Derives an independent generator (for per-component streams).
  Rng Split() { return Rng(Next() ^ 0xD2B74407B1CE6E93ULL); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace osim

#endif  // OSPROF_SRC_SIM_RNG_H_
