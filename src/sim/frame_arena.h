// Slab arena for coroutine frames (ISSUE 6: no per-Wrap heap traffic).
//
// Every simulated operation is a Task<T> coroutine, and every
// SimProfiler::Wrap adds a second coroutine frame around it, so the
// ~80 ns/Wrap measured in BENCH_micro_core.json was dominated by two
// malloc/free pairs per wrapped operation.  FrameArena replaces them with
// a size-class free list carved out of 64 KiB slabs: steady-state
// allocation is "pop a node", deallocation is "push a node", and the
// general-purpose allocator is touched only when a size class sees a new
// high-water mark.
//
// The arena is thread-local.  A kernel and all of its tasks live on one
// host thread (the runner gives every trial a whole kernel per worker;
// tests and tools are single-threaded), so frames are always freed on the
// thread that allocated them and the free lists need no locking.  Frames
// must not outlive the thread that created them -- true for every Task in
// the tree, whose lifetime is bounded by its kernel's run loop.
//
// Each block carries a 16-byte header recording its size class, so both
// the sized and unsized operator delete forms work, and blocks that
// outgrow the largest class fall through to the global heap transparently.

#ifndef OSPROF_SRC_SIM_FRAME_ARENA_H_
#define OSPROF_SRC_SIM_FRAME_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace osim::detail {

class FrameArena {
 public:
  // Header granularity and block alignment.  Coroutine frames assume at
  // most alignof(max_align_t); slabs come 16-aligned from operator new
  // and block sizes are multiples of 64, so payloads stay 16-aligned.
  static constexpr std::size_t kHeaderBytes = 16;
  static constexpr std::size_t kGranularity = 64;
  // Largest arena-served block; bigger frames use the global heap.
  static constexpr std::size_t kMaxBlockBytes = 8192;
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  static void* Allocate(std::size_t bytes) {
    return Local().AllocateImpl(bytes);
  }

  static void Deallocate(void* payload) noexcept {
    char* raw = static_cast<char*>(payload) - kHeaderBytes;
    const std::uint32_t cls = reinterpret_cast<Header*>(raw)->size_class;
    if (cls == kHeapClass) {
      ::operator delete(raw);
      return;
    }
    Local().Release(raw, cls);
  }

 private:
  struct Header {
    std::uint32_t size_class;
  };
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr std::size_t kNumClasses = kMaxBlockBytes / kGranularity;
  static constexpr std::uint32_t kHeapClass = 0xffffffffu;

  static FrameArena& Local() {
    // The coroutine-frame allocator itself: below the level SimRace
    // instruments, and per-real-thread by construction.
    // osprof-lint: allow(shared-state)
    thread_local FrameArena arena;
    return arena;
  }

  void* AllocateImpl(std::size_t bytes) {
    const std::size_t need = bytes + kHeaderBytes;
    if (need > kMaxBlockBytes) {
      char* raw = static_cast<char*>(::operator new(need));
      reinterpret_cast<Header*>(raw)->size_class = kHeapClass;
      return raw + kHeaderBytes;
    }
    const std::uint32_t cls =
        static_cast<std::uint32_t>((need - 1) / kGranularity);
    char* raw;
    if (free_lists_[cls] != nullptr) {
      FreeNode* node = free_lists_[cls];
      free_lists_[cls] = node->next;
      raw = reinterpret_cast<char*>(node);
    } else {
      const std::size_t block = (cls + 1) * kGranularity;
      if (slab_remaining_ < block) {
        NewSlab();
      }
      raw = slab_cursor_;
      slab_cursor_ += block;
      slab_remaining_ -= block;
    }
    reinterpret_cast<Header*>(raw)->size_class = cls;
    return raw + kHeaderBytes;
  }

  void Release(char* raw, std::uint32_t cls) noexcept {
    // The header is dead until the block is reissued; reuse its bytes as
    // the free-list link.
    FreeNode* node = reinterpret_cast<FreeNode*>(raw);
    node->next = free_lists_[cls];
    free_lists_[cls] = node;
  }

  void NewSlab() {
    slabs_.push_back(std::make_unique<char[]>(kSlabBytes));
    slab_cursor_ = slabs_.back().get();
    slab_remaining_ = kSlabBytes;
  }

  FreeNode* free_lists_[kNumClasses] = {};
  char* slab_cursor_ = nullptr;
  std::size_t slab_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> slabs_;
};

}  // namespace osim::detail

#endif  // OSPROF_SRC_SIM_FRAME_ARENA_H_
