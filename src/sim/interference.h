// The kernel's single interference-event channel.
//
// Every scheduling/interference event the simulated kernel produces --
// wait-queue park and wakeup, dispatch, migration, forced preemption,
// timer-tick service, spinlock handoff -- is emitted exactly once, here.
// The scheduler and the sync primitives call the emit methods below
// instead of reaching into individual consumers, so a new analyzer taps
// the same stream by subscribing rather than by adding another special
// case to kernel.cc ("one kernel event channel, many analyzers", the
// LTTng/Software-Performance-Analysis design).
//
// Two consumers are structural and therefore hardwired rather than
// subscribed:
//
//  * RequestContext -- the wakeup/dispatch/handoff emits carry the waited
//    interval and its LayerComponent, and the channel charges them to the
//    thread's innermost active span exactly as the scattered call sites
//    used to.  Hardwiring keeps the single-consumer fast path free of any
//    virtual dispatch, so committed goldens are byte-identical to the
//    pre-channel kernel.
//  * LockOrderTracker -- acquisition/release hooks forward unconditionally
//    because held-lock stack upkeep is mandatory bookkeeping, not
//    analysis (see src/sim/lock_order.h).
//  * RaceTracker -- the happens-before engine consumes the same stream
//    (task lifecycle, wakeups, lock transfers) as vector-clock edges;
//    hardwired for the same reason as the lock tracker, and every hook is
//    an inline enabled-flag test when detection is off (see
//    src/sim/race_tracker.h).
//
// Everything else subscribes.  With no subscribers an emit is the same
// inline RequestContext call as before plus one vector-empty test; with
// subscribers the event is materialized once and fanned out in
// subscription order, which is deterministic and -- because publishing
// consumes no simulated time -- cannot perturb the simulation itself.

#ifndef OSPROF_SRC_SIM_INTERFERENCE_H_
#define OSPROF_SRC_SIM_INTERFERENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/clock.h"
#include "src/core/layered.h"
#include "src/sim/lock_order.h"
#include "src/sim/race_tracker.h"
#include "src/sim/request_context.h"

namespace osim {

using osprof::Cycles;

enum class InterferenceKind {
  kPark,         // A thread parked on a tagged wait (component = tag).
  kWakeup,       // A tagged park ended (cycles = blocked interval).
  kDispatch,     // A runnable thread got a CPU (cycles = run-queue wait).
  kMigrate,      // That dispatch moved the thread to a different CPU.
  kPreempt,      // Forced preemption at quantum expiry.
  kTimerTick,    // Timer IRQs serviced within one slice (count = ticks,
                 // cycles = stolen service time).
  kLockHandoff,  // A spinlock passed to a spinner (cycles = spin time).
};

// The name used in reports and tests ("park", "wakeup", ...).
const char* InterferenceKindName(InterferenceKind kind);

struct InterferenceEvent {
  InterferenceKind kind;
  Cycles now = 0;
  int thread_id = -1;
  int cpu = -1;  // CPU involved (dispatch/migrate target), -1 elsewhere.
  // The wait component of park/wakeup/dispatch/handoff events.
  osprof::LayerComponent component = osprof::kLayerSelf;
  Cycles cycles = 0;        // Interval; meaning depends on `kind`.
  std::uint64_t count = 0;  // Tick count of a kTimerTick.
  int node = -1;            // Node the thread belongs to, -1 if unknown.
};

class InterferenceSubscriber {
 public:
  virtual ~InterferenceSubscriber() = default;
  virtual void OnInterference(const InterferenceEvent& event) = 0;
};

class InterferenceChannel {
 public:
  // Installs the hardwired consumers (called once, by the owning Kernel's
  // constructor, before any emit).
  void Bind(RequestContext* context, LockOrderTracker* lock_order,
            RaceTracker* races) {
    context_ = context;
    lock_order_ = lock_order;
    races_ = races;
  }

  // Subscribers receive events in subscription order.  Subscribing is
  // idempotent; both calls are setup-time operations, not hot paths.
  //
  // Mutation during publish is defined (and locked in by tests): a
  // subscriber added from inside a callback does not see the event being
  // fanned out (only later ones); unsubscribing -- yourself or a peer --
  // from inside a callback takes effect immediately (the removed
  // subscriber receives no further callbacks for the current event) and
  // never disturbs delivery to the remaining subscribers.
  void Subscribe(InterferenceSubscriber* subscriber);
  void Unsubscribe(InterferenceSubscriber* subscriber);
  bool has_subscribers() const { return !subscribers_.empty(); }

  // --- Emit points ------------------------------------------------------
  // Called by the scheduler (src/sim/kernel.cc) and the sync primitives
  // (src/sim/sync.cc); tagged WaitQueue users in disk, page cache and the
  // net stack reach them through those primitives.  All inline: with no
  // subscribers each is the pre-channel consumer call plus one branch.

  // A thread parked on a component-tagged wait (semaphore, tagged
  // WaitQueue).  The matching wakeup charges the blocked interval.
  void Park(int thread_id, osprof::LayerComponent component, Cycles now,
            int node = -1) {
    if (!subscribers_.empty()) {
      Publish({InterferenceKind::kPark, now, thread_id, -1, component, 0, 0,
               node});
    }
  }

  // A tagged park ended: charge the blocked interval to the thread's
  // innermost active span as `component`.
  void Wakeup(int thread_id, osprof::LayerComponent component, Cycles waited,
              Cycles now, int node = -1) {
    context_->AttributeWait(thread_id, component, waited);
    if (!subscribers_.empty()) {
      Publish({InterferenceKind::kWakeup, now, thread_id, -1, component,
               waited, 0, node});
    }
  }

  // A runnable thread was placed on CPU `cpu`; `queued` is its
  // runnable-to-running interval (run-queue wait plus the switch itself,
  // §3.3), charged as kLayerRunQueue.
  void Dispatch(int thread_id, Cycles queued, int cpu, bool migrated,
                Cycles now, int node = -1) {
    context_->AttributeWait(thread_id, osprof::kLayerRunQueue, queued);
    if (!subscribers_.empty()) {
      Publish({InterferenceKind::kDispatch, now, thread_id, cpu,
               osprof::kLayerRunQueue, queued, 0, node});
      if (migrated) {
        Publish({InterferenceKind::kMigrate, now, thread_id, cpu,
                 osprof::kLayerSelf, 0, 0, node});
      }
    }
  }

  // Forced preemption at quantum expiry (the event Equation 3 predicts).
  void Preempt(int thread_id, int cpu, Cycles now, int node = -1) {
    if (!subscribers_.empty()) {
      Publish({InterferenceKind::kPreempt, now, thread_id, cpu,
               osprof::kLayerSelf, 0, 0, node});
    }
  }

  // `ticks` timer IRQs will be serviced within the slice starting at
  // `now`, stealing `stolen` cycles from `thread_id`.
  void TimerTicks(int thread_id, std::uint64_t ticks, Cycles stolen,
                  Cycles now, int node = -1) {
    if (!subscribers_.empty()) {
      Publish({InterferenceKind::kTimerTick, now, thread_id, -1,
               osprof::kLayerSelf, stolen, ticks, node});
    }
  }

  // A spinlock was handed to a spinning waiter after `spun` cycles of
  // busy-waiting, charged as lock wait.
  void LockHandoff(int thread_id, Cycles spun, Cycles now, int node = -1) {
    context_->AttributeWait(thread_id, osprof::kLayerLockWait, spun);
    if (!subscribers_.empty()) {
      Publish({InterferenceKind::kLockHandoff, now, thread_id, -1,
               osprof::kLayerLockWait, spun, 0, node});
    }
  }

  // --- Lock graph hooks -------------------------------------------------
  // Forwarded to the trackers unconditionally: the held-lock stacks must
  // stay consistent whether or not anyone analyzes them, and the race
  // tracker's hooks are inline flag tests while disabled.  A lock
  // transfer is also a happens-before edge: release joins the holder's
  // clock into the lock, acquire joins the lock's clock into the taker.

  void LockAcquired(const void* lock, const std::string& name,
                    HeldLockStack& held, int thread_id) {
    lock_order_->OnAcquired(lock, name, held, thread_id);
    races_->OnAcquire(lock, thread_id);
  }

  void LockReleased(const void* lock, HeldLockStack& held, int thread_id) {
    lock_order_->OnReleased(lock, held);
    races_->OnRelease(lock, thread_id);
  }

  // --- Task lifecycle hooks (race detection) ----------------------------
  // Spawn/exit/wake are the scheduler-level happens-before edges: a child
  // inherits its spawner's history, an exit folds into the root clock,
  // a wake carries the waker's history to the wakee.  Negative ids mean
  // kernel context (event callbacks, host code).

  void TaskSpawned(int parent_id, int child_id) {
    races_->OnSpawn(parent_id, child_id);
  }

  void TaskExited(int thread_id) { races_->OnExit(thread_id); }

  void TaskWoken(int waker_id, int wakee_id) {
    races_->OnWake(waker_id, wakee_id);
  }

 private:
  // Out-of-line fan-out; only reached when subscribers exist.
  void Publish(const InterferenceEvent& event);

  RequestContext* context_ = nullptr;
  LockOrderTracker* lock_order_ = nullptr;
  RaceTracker* races_ = nullptr;
  // May hold nullptr tombstones while a publish is in flight (mid-publish
  // unsubscription); compacted when the outermost publish returns.
  std::vector<InterferenceSubscriber*> subscribers_;
  int publish_depth_ = 0;
  bool needs_compaction_ = false;
};

}  // namespace osim

#endif  // OSPROF_SRC_SIM_INTERFERENCE_H_
