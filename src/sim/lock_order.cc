#include "src/sim/lock_order.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "src/sim/request_context.h"

namespace osim {

void LockOrderTracker::AcquiredSlow(const void* lock, const std::string& name,
                                    HeldLockStack& held, int thread_id) {
  if (enabled_) {
    // The innermost profiled span of the acquiring thread, resolved once
    // per acquisition from the shared context (no per-Wrap string copies).
    const osprof::OpTable* ops = nullptr;
    osprof::OpId op = osprof::kInvalidOpId;
    const bool in_span = context_ != nullptr && held.depth > 0 &&
                         context_->TopOp(thread_id, &ops, &op);
    for (std::uint32_t i = 0; i < held.depth; ++i) {
      const HeldLock& h = held.At(i);
      if (h.lock == lock) {
        // Recursive acquisition of a counted semaphore: same instance, no
        // ordering information.
        continue;
      }
      Edge& e = edges_[{*h.name, name}];
      e.from = *h.name;
      e.to = name;
      ++e.count;
      if (in_span) {
        e.ops.insert(ops->Name(op));
      }
    }
  }
  if (held.depth < HeldLockStack::kInlineDepth) {
    held.frames[held.depth] = HeldLock{lock, &name};
  } else {
    held.spill.push_back(HeldLock{lock, &name});
  }
  ++held.depth;
}

void LockOrderTracker::ReleasedSlow(const void* lock, HeldLockStack& held) {
  // Most-recent first: matches nested acquire/release; out-of-order
  // release still finds its entry.
  for (std::uint32_t i = held.depth; i > 0; --i) {
    if (held.At(i - 1).lock != lock) {
      continue;
    }
    for (std::uint32_t j = i; j < held.depth; ++j) {
      held.At(j - 1) = held.At(j);
    }
    if (held.depth > HeldLockStack::kInlineDepth) {
      held.spill.pop_back();
    }
    --held.depth;
    return;
  }
}

std::vector<LockOrderTracker::Edge> LockOrderTracker::Edges() const {
  std::vector<Edge> out;
  out.reserve(edges_.size());
  for (const auto& [key, edge] : edges_) {
    out.push_back(edge);
  }
  return out;  // Map order: already sorted by (from, to).
}

std::vector<std::vector<std::string>> LockOrderTracker::FindCycles() const {
  // Adjacency over lock names, in deterministic order.
  std::map<std::string, std::vector<std::string>> adj;
  std::set<std::string> self_loops;
  for (const auto& [key, edge] : edges_) {
    adj[edge.from].push_back(edge.to);
    adj[edge.to];  // Ensure the node exists.
    if (edge.from == edge.to) {
      self_loops.insert(edge.from);
    }
  }

  // Tarjan's SCC algorithm, iterative over the recursion with an explicit
  // lambda (graphs here are tiny; recursion depth is not a concern).
  std::map<std::string, int> index;
  std::map<std::string, int> lowlink;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  int next_index = 0;
  std::vector<std::vector<std::string>> sccs;

  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack.insert(v);
        for (const std::string& w : adj[v]) {
          if (index.find(w) == index.end()) {
            strongconnect(w);
            lowlink[v] = std::min(lowlink[v], lowlink[w]);
          } else if (on_stack.count(w) > 0) {
            lowlink[v] = std::min(lowlink[v], index[w]);
          }
        }
        if (lowlink[v] == index[v]) {
          std::vector<std::string> scc;
          while (true) {
            const std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            scc.push_back(w);
            if (w == v) {
              break;
            }
          }
          if (scc.size() > 1 ||
              (scc.size() == 1 && self_loops.count(scc[0]) > 0)) {
            std::sort(scc.begin(), scc.end());
            sccs.push_back(std::move(scc));
          }
        }
      };
  for (const auto& [node, targets] : adj) {
    if (index.find(node) == index.end()) {
      strongconnect(node);
    }
  }
  std::sort(sccs.begin(), sccs.end());
  return sccs;
}

std::vector<LockOrderTracker::Edge> LockOrderTracker::Inversions() const {
  std::vector<Edge> out;
  for (const auto& [key, edge] : edges_) {
    if (edge.from >= edge.to) {
      continue;  // Report each unordered pair once.
    }
    const auto reverse = edges_.find({edge.to, edge.from});
    if (reverse == edges_.end()) {
      continue;
    }
    Edge merged = edge;
    merged.count += reverse->second.count;
    merged.ops.insert(reverse->second.ops.begin(), reverse->second.ops.end());
    out.push_back(std::move(merged));
  }
  return out;
}

std::vector<std::string> LockOrderTracker::CycleDescriptions() const {
  std::vector<std::string> out;
  for (const std::vector<std::string>& cycle : FindCycles()) {
    // Ops from every edge internal to the cycle.
    std::set<std::string> in_cycle(cycle.begin(), cycle.end());
    std::set<std::string> ops;
    for (const auto& [key, edge] : edges_) {
      if (in_cycle.count(edge.from) > 0 && in_cycle.count(edge.to) > 0) {
        ops.insert(edge.ops.begin(), edge.ops.end());
      }
    }
    std::ostringstream os;
    for (const std::string& lock : cycle) {
      os << lock << " -> ";
    }
    os << cycle.front();
    if (!ops.empty()) {
      os << " (ops:";
      for (const std::string& op : ops) {
        os << " " << op;
      }
      os << ")";
    }
    out.push_back(os.str());
  }
  return out;
}

std::string LockOrderTracker::Report() const {
  std::ostringstream os;
  os << "lock-order edges:\n";
  for (const Edge& e : Edges()) {
    os << "  " << e.from << " -> " << e.to << " x" << e.count;
    if (!e.ops.empty()) {
      os << " (ops:";
      for (const std::string& op : e.ops) {
        os << " " << op;
      }
      os << ")";
    }
    os << "\n";
  }
  const std::vector<std::string> cycles = CycleDescriptions();
  if (cycles.empty()) {
    os << "no deadlock-capable cycles\n";
  } else {
    os << "DEADLOCK-CAPABLE cycles:\n";
    for (const std::string& c : cycles) {
      os << "  " << c << "\n";
    }
  }
  return os.str();
}

void LockOrderTracker::Reset() { edges_.clear(); }

}  // namespace osim
