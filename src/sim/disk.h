// The disk model.
//
// Reproduces the mechanical and caching behaviour behind Figure 7's third
// and fourth readdir peaks:
//
//  * seeking: track-to-track 0.3ms up to full-stroke 8ms, linear in track
//    distance (the paper's Maxtor Atlas 15k RPM drive);
//  * rotational delay: uniform in [0, 4ms) (15,000 RPM);
//  * an on-disk segment cache with readahead: sequential requests that hit
//    it cost only controller + bus transfer time (~40-80us -> buckets
//    16-17), while mechanical accesses land in buckets 18-23;
//  * FIFO request queue with one request in service at a time, so
//    concurrent I/O exhibits queueing delays.
//
// Requests complete via callback (the form used by the page cache and by
// asynchronous writes, whose latency is only visible to a driver-level
// profiler) or via the awaitable SyncRead/SyncWrite, which block the
// calling simulated thread.
//
// Driver-level profiling (Figure 2's lowest layer) attaches through
// SetRequestObserver, which sees every request with its queue and service
// latencies.

#ifndef OSPROF_SRC_SIM_DISK_H_
#define OSPROF_SRC_SIM_DISK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>

#include "src/sim/kernel.h"
#include "src/sim/sync.h"

namespace osim {

// Request-queue scheduling policy.
//
//  * kFifo     -- serve requests in arrival order (the paper-era default
//                 for simple drivers).
//  * kElevator -- C-LOOK: serve the request with the smallest LBA at or
//                 above the head, sweeping upward; jump back to the
//                 lowest pending LBA when the sweep ends.  This is the
//                 I/O-scheduler behaviour OSprof can expose via latency
//                 profiles (queue latencies redistribute: sequential
//                 streams win, far-away requests wait longer).
enum class DiskSchedPolicy { kFifo, kElevator };

struct DiskConfig {
  DiskSchedPolicy sched = DiskSchedPolicy::kFifo;
  std::uint64_t num_blocks = 4'000'000;    // 512-byte logical blocks.
  std::uint64_t blocks_per_track = 1'000;
  // All times in cycles at the paper's 1.7 GHz.
  Cycles track_to_track_seek = 510'000;    // 0.3 ms.
  Cycles full_stroke_seek = 13'600'000;    // 8 ms.
  Cycles full_rotation = 6'800'000;        // 4 ms (15k RPM).
  Cycles controller_overhead = 30'000;     // ~18 us command processing.
  Cycles transfer_per_block = 6'000;       // ~3.5 us/512B over the bus.
  // On-disk cache: segments of readahead_blocks; total capacity in blocks.
  std::uint64_t cache_blocks = 16'384;
  std::uint64_t readahead_blocks = 64;
};

enum class DiskOp { kRead, kWrite };

// What a driver-level profiler observes per request.
struct DiskRequestInfo {
  DiskOp op = DiskOp::kRead;
  std::uint64_t lba = 0;
  std::uint64_t count = 0;
  bool cache_hit = false;
  Cycles queued_at = 0;
  Cycles started_at = 0;
  Cycles completed_at = 0;

  Cycles queue_latency() const { return started_at - queued_at; }
  Cycles service_latency() const { return completed_at - started_at; }
  Cycles total_latency() const { return completed_at - queued_at; }
};

class SimDisk {
 public:
  using Completion = std::function<void(const DiskRequestInfo&)>;
  using Observer = std::function<void(const DiskRequestInfo&)>;

  SimDisk(Kernel* kernel, DiskConfig config = {});

  const DiskConfig& config() const { return config_; }

  // Asynchronous request; `done` runs at completion time (may be null).
  void Submit(DiskOp op, std::uint64_t lba, std::uint64_t count,
              Completion done);

  // Awaitable wrappers: block the calling simulated thread until the
  // request completes.
  Task<DiskRequestInfo> SyncRead(std::uint64_t lba, std::uint64_t count);
  Task<DiskRequestInfo> SyncWrite(std::uint64_t lba, std::uint64_t count);

  // Driver-level profiler hook: called once per completed request.
  void SetRequestObserver(Observer observer) { observer_ = std::move(observer); }

  // Statistics.
  std::uint64_t requests_completed() const { return completed_; }
  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t mechanical_accesses() const { return mechanical_; }
  std::uint64_t current_head() const { return head_; }

  // Drops the on-disk cache (for experiments needing cold state).
  void DropCache();

 private:
  struct Request {
    DiskOp op;
    std::uint64_t lba;
    std::uint64_t count;
    Completion done;
    Cycles queued_at;
    // Submitter's happens-before history, adopted around `done` so work
    // the completion triggers inherits it (empty when tracking is off).
    RaceClock token;
  };

  void StartNext();
  // Removes and returns the next request per the scheduling policy.
  Request PopNext();
  Cycles ServiceTime(const Request& request, bool* cache_hit);
  void InsertCacheRun(std::uint64_t lba, std::uint64_t count);
  bool CacheContains(std::uint64_t lba, std::uint64_t count) const;

  Kernel* kernel_;
  DiskConfig config_;
  std::deque<Request> queue_;
  bool busy_ = false;
  std::uint64_t head_ = 0;
  // Cached block numbers plus FIFO eviction order (runs are inserted
  // whole; eviction drops the oldest run).
  std::unordered_set<std::uint64_t> cache_;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> cache_runs_;
  std::uint64_t cached_blocks_ = 0;
  Observer observer_;
  std::uint64_t completed_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t mechanical_ = 0;
};

}  // namespace osim

#endif  // OSPROF_SRC_SIM_DISK_H_
