// Simulated kernel synchronization primitives.
//
// The case studies of the paper hinge on these: the clone profile's second
// peak (Figure 1) is a sleeping-lock contention, the llseek pathology
// (Figure 6) is the shared i_sem inode semaphore, and Reiserfs' stripes
// (Figure 9) come from write_super holding a coarse lock.
//
//  * SimSemaphore -- a counted sleeping semaphore (count 1 == a kernel
//    mutex like Linux's i_sem).  Waiters block off-CPU; their wait time is
//    pure twait.
//  * SimSpinlock -- waiters burn CPU while waiting; their wait time counts
//    into tcpu, exactly the paper's Equation 1 decomposition.
//  * WaitQueue -- bare parking lot for condition-style waits (page locks,
//    I/O completion).
//
// Like real kernel primitives these are *not* RAII by default -- simulated
// code acquires and releases explicitly, which keeps the profiled critical
// sections visible -- but a ScopedSemaphore helper exists for exception
// safety in straight-line paths.

#ifndef OSPROF_SRC_SIM_SYNC_H_
#define OSPROF_SRC_SIM_SYNC_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>

#include "src/sim/kernel.h"

namespace osim {

// A counted sleeping semaphore.  Acquire is an awaitable coroutine;
// Release is a plain call (never blocks).
//
// Wakeup is competitive ("barging"), like Linux semaphores and FreeBSD
// sleep mutexes: Release increments the count and wakes the first waiter,
// but a running thread that calls Acquire before the woken waiter is
// scheduled may take the semaphore first.  Direct FIFO handoff would let
// a woken-but-unscheduled waiter hold the lock across its entire
// run-queue wait, forming convoys no real kernel exhibits.
class SimSemaphore {
 public:
  SimSemaphore(Kernel* kernel, int count, std::string name = "sem")
      : kernel_(kernel), count_(count), name_(std::move(name)) {}

  SimSemaphore(const SimSemaphore&) = delete;
  SimSemaphore& operator=(const SimSemaphore&) = delete;

  // co_await sem.Acquire(): takes the semaphore, blocking off-CPU while
  // the count is exhausted.
  Task<void> Acquire();

  // Non-blocking attempt; returns true on success.
  bool TryAcquire();

  void Release();

  int count() const { return count_; }
  int waiters() const { return static_cast<int>(waiters_.size()); }
  const std::string& name() const { return name_; }

  // Contention statistics.
  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t contended_acquisitions() const { return contended_; }
  Cycles total_wait_time() const { return total_wait_; }

 private:
  // Parks the calling thread on the wait list until a Release wakes it.
  struct ParkAwaitable {
    SimSemaphore* sem;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  // Held-lock stack upkeep for the lock-order tracker (no-ops outside
  // thread context; edge recording further gated by the tracker's
  // enabled flag).
  void NoteAcquired();
  void NoteReleased();

  Kernel* kernel_;
  int count_;
  std::string name_;
  std::deque<SimThread*> waiters_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t contended_ = 0;
  Cycles total_wait_ = 0;
};

// RAII guard over a SimSemaphore for coroutine scopes:
//   ScopedSemaphore guard(&sem);
//   co_await guard.Lock();
//   ...                        // released when guard leaves scope
class ScopedSemaphore {
 public:
  explicit ScopedSemaphore(SimSemaphore* sem) : sem_(sem) {}
  ScopedSemaphore(const ScopedSemaphore&) = delete;
  ScopedSemaphore& operator=(const ScopedSemaphore&) = delete;
  ~ScopedSemaphore() {
    if (held_) {
      sem_->Release();
    }
  }

  [[nodiscard]] auto Lock() {
    held_ = true;
    return sem_->Acquire();
  }

  void Unlock() {
    if (held_) {
      held_ = false;
      sem_->Release();
    }
  }

 private:
  SimSemaphore* sem_;
  bool held_ = false;
};

// A spinlock: contended waiters keep their CPU and burn cycles until the
// holder releases.  Spin time is charged to the waiter's CPU time and
// quantum, making it part of tcpu as in Equation 1.
class SimSpinlock {
 public:
  explicit SimSpinlock(Kernel* kernel, std::string name = "spinlock")
      : kernel_(kernel), name_(std::move(name)) {}

  SimSpinlock(const SimSpinlock&) = delete;
  SimSpinlock& operator=(const SimSpinlock&) = delete;

  auto Lock() { return LockAwaitable{this}; }
  void Unlock();

  bool held() const { return held_; }
  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t contended_acquisitions() const { return contended_; }
  Cycles total_spin_time() const { return total_spin_; }

 private:
  struct LockAwaitable {
    SimSpinlock* lock;
    bool await_ready() const {
      if (!lock->held_) {
        lock->held_ = true;
        ++lock->acquisitions_;
        lock->NoteAcquired();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  // Lock-order tracking hooks; see SimSemaphore.
  void NoteAcquired();
  void NoteHandoff(SimThread* to);
  void NoteReleased();

  Kernel* kernel_;
  std::string name_;
  bool held_ = false;
  std::deque<SimThread*> waiters_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t contended_ = 0;
  Cycles total_spin_ = 0;
};

// A parking lot for condition-style waits.  Callers loop on their
// predicate:  while (!ready) co_await queue.Wait();
//
// A queue constructed with a LayerComponent tag charges its parks to the
// waiter's innermost profiled span as that component (disk completion
// queues tag kLayerDriver, RPC reply queues tag kLayerNet); untagged
// queues leave the wait in the span's self time.
class WaitQueue {
 public:
  explicit WaitQueue(Kernel* kernel) : kernel_(kernel) {}
  WaitQueue(Kernel* kernel, osprof::LayerComponent tag)
      : kernel_(kernel), tag_(static_cast<int>(tag)) {}

  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  auto Wait() { return WaitAwaitable{this}; }

  void WakeOne();
  void WakeAll();

  int waiters() const { return static_cast<int>(waiters_.size()); }

 private:
  struct WaitAwaitable {
    WaitQueue* queue;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  Kernel* kernel_;
  int tag_ = -1;
  std::deque<SimThread*> waiters_;
};

}  // namespace osim

#endif  // OSPROF_SRC_SIM_SYNC_H_
