#include "src/sim/interference.h"

#include <algorithm>

namespace osim {

const char* InterferenceKindName(InterferenceKind kind) {
  switch (kind) {
    case InterferenceKind::kPark:
      return "park";
    case InterferenceKind::kWakeup:
      return "wakeup";
    case InterferenceKind::kDispatch:
      return "dispatch";
    case InterferenceKind::kMigrate:
      return "migrate";
    case InterferenceKind::kPreempt:
      return "preempt";
    case InterferenceKind::kTimerTick:
      return "timer_tick";
    case InterferenceKind::kLockHandoff:
      return "lock_handoff";
  }
  return "unknown";
}

void InterferenceChannel::Subscribe(InterferenceSubscriber* subscriber) {
  if (std::find(subscribers_.begin(), subscribers_.end(), subscriber) ==
      subscribers_.end()) {
    subscribers_.push_back(subscriber);
  }
}

void InterferenceChannel::Unsubscribe(InterferenceSubscriber* subscriber) {
  subscribers_.erase(
      std::remove(subscribers_.begin(), subscribers_.end(), subscriber),
      subscribers_.end());
}

void InterferenceChannel::Publish(const InterferenceEvent& event) {
  for (InterferenceSubscriber* s : subscribers_) {
    s->OnInterference(event);
  }
}

}  // namespace osim
