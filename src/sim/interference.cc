#include "src/sim/interference.h"

#include <algorithm>

namespace osim {

const char* InterferenceKindName(InterferenceKind kind) {
  switch (kind) {
    case InterferenceKind::kPark:
      return "park";
    case InterferenceKind::kWakeup:
      return "wakeup";
    case InterferenceKind::kDispatch:
      return "dispatch";
    case InterferenceKind::kMigrate:
      return "migrate";
    case InterferenceKind::kPreempt:
      return "preempt";
    case InterferenceKind::kTimerTick:
      return "timer_tick";
    case InterferenceKind::kLockHandoff:
      return "lock_handoff";
  }
  return "unknown";
}

void InterferenceChannel::Subscribe(InterferenceSubscriber* subscriber) {
  if (std::find(subscribers_.begin(), subscribers_.end(), subscriber) ==
      subscribers_.end()) {
    subscribers_.push_back(subscriber);
  }
}

void InterferenceChannel::Unsubscribe(InterferenceSubscriber* subscriber) {
  if (publish_depth_ > 0) {
    // Mid-publish removal (a subscriber dropping itself -- or a peer --
    // from inside OnInterference): tombstone the slot so the fan-out
    // loop, which indexes the vector, neither skips a survivor nor
    // touches the removed subscriber again.  Compacted after the
    // outermost publish returns.
    for (InterferenceSubscriber*& s : subscribers_) {
      if (s == subscriber) {
        s = nullptr;
        needs_compaction_ = true;
      }
    }
    return;
  }
  subscribers_.erase(
      std::remove(subscribers_.begin(), subscribers_.end(), subscriber),
      subscribers_.end());
}

void InterferenceChannel::Publish(const InterferenceEvent& event) {
  // Bounded by the size at entry: a subscriber added from inside a
  // callback joins the list but does not see the event being published
  // (it sees the next one).  Tombstoned entries are skipped.
  ++publish_depth_;
  const std::size_t bound = subscribers_.size();
  for (std::size_t i = 0; i < bound; ++i) {
    InterferenceSubscriber* s = subscribers_[i];
    if (s != nullptr) {
      s->OnInterference(event);
    }
  }
  if (--publish_depth_ == 0 && needs_compaction_) {
    needs_compaction_ = false;
    subscribers_.erase(
        std::remove(subscribers_.begin(), subscribers_.end(), nullptr),
        subscribers_.end());
  }
}

}  // namespace osim
