// Chunked FIFO for scheduler-scale queues (ROADMAP item 2: sustain
// O(10^6) runnable tasks).
//
// Semantically a std::deque<T>: strict FIFO, push_back / front /
// pop_front, same ordering for any interleaving -- which is what keeps
// committed goldens byte-identical after the kernel switched to it.  The
// representation differs where scale hurts: elements live in fixed-size
// chunks linked into a list, a drained chunk is recycled onto a free list
// instead of being returned to the allocator, and the queue remembers its
// high-water depth for the kernel's memory accounting.  Steady-state
// push/pop touch one chunk header each -- no per-element allocation, no
// deque map reallocation, and a burst of a million runnable threads costs
// exactly ceil(1e6 / kChunkCapacity) chunk allocations, reused forever
// after.
//
// Single-real-threaded like the rest of the sim: no locks by construction.

#ifndef OSPROF_SRC_SIM_RUN_QUEUE_H_
#define OSPROF_SRC_SIM_RUN_QUEUE_H_

#include <cstddef>
#include <utility>

namespace osim {

template <typename T, std::size_t kChunkCapacity = 512>
class ChunkedQueue {
 public:
  ChunkedQueue() = default;
  ChunkedQueue(const ChunkedQueue&) = delete;
  ChunkedQueue& operator=(const ChunkedQueue&) = delete;
  ~ChunkedQueue() {
    FreeList(head_);
    FreeList(free_);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(T value) {
    if (tail_ == nullptr || tail_->tail == kChunkCapacity) {
      Chunk* chunk = TakeChunk();
      if (tail_ == nullptr) {
        head_ = chunk;
      } else {
        tail_->next = chunk;
      }
      tail_ = chunk;
    }
    tail_->items[tail_->tail++] = std::move(value);
    ++size_;
    if (size_ > peak_size_) {
      peak_size_ = size_;
    }
  }

  T& front() { return head_->items[head_->head]; }
  const T& front() const { return head_->items[head_->head]; }

  void pop_front() {
    ++head_->head;
    --size_;
    if (head_->head == head_->tail) {
      // Drained chunk: recycle it unless it is also the tail (then just
      // rewind, keeping the one hot chunk in place).
      if (head_ == tail_) {
        head_->head = 0;
        head_->tail = 0;
      } else {
        Chunk* drained = head_;
        head_ = drained->next;
        RecycleChunk(drained);
      }
    }
  }

  // Deepest the queue has ever been (for memory/scale reporting).
  std::size_t peak_size() const { return peak_size_; }

  // Chunks currently held, counting the free list (they are never
  // returned to the allocator before destruction).
  std::size_t chunk_count() const { return chunk_count_; }

  std::size_t ApproxBytes() const {
    return chunk_count_ * sizeof(Chunk) + sizeof(*this);
  }

 private:
  struct Chunk {
    T items[kChunkCapacity];
    std::size_t head = 0;
    std::size_t tail = 0;
    Chunk* next = nullptr;
  };

  Chunk* TakeChunk() {
    if (free_ != nullptr) {
      Chunk* chunk = free_;
      free_ = chunk->next;
      chunk->head = 0;
      chunk->tail = 0;
      chunk->next = nullptr;
      return chunk;
    }
    ++chunk_count_;
    return new Chunk();
  }

  void RecycleChunk(Chunk* chunk) {
    chunk->next = free_;
    free_ = chunk;
  }

  void FreeList(Chunk* chunk) {
    while (chunk != nullptr) {
      Chunk* next = chunk->next;
      delete chunk;
      chunk = next;
    }
  }

  Chunk* head_ = nullptr;
  Chunk* tail_ = nullptr;
  Chunk* free_ = nullptr;
  std::size_t size_ = 0;
  std::size_t peak_size_ = 0;
  std::size_t chunk_count_ = 0;
};

}  // namespace osim

#endif  // OSPROF_SRC_SIM_RUN_QUEUE_H_
