#include "src/sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace osim {

void EventQueue::At(Cycles when, Action action) {
  if (when < now_) {
    throw std::logic_error("EventQueue: scheduling into the past");
  }
  events_.push(Event{when, next_seq_++, std::move(action)});
}

bool EventQueue::Step() {
  if (events_.empty()) {
    return false;
  }
  // priority_queue::top() is const; move out via const_cast is the standard
  // workaround, safe because we pop immediately.
  Event event = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  now_ = event.when;
  event.action();
  return true;
}

std::uint64_t EventQueue::RunUntil(Cycles until) {
  std::uint64_t executed = 0;
  while (!events_.empty() && events_.top().when <= until) {
    Step();
    ++executed;
  }
  if (now_ < until) {
    now_ = until;
  }
  return executed;
}

std::uint64_t EventQueue::RunAll() {
  std::uint64_t executed = 0;
  while (Step()) {
    ++executed;
  }
  return executed;
}

}  // namespace osim
