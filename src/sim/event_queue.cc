#include "src/sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

namespace osim {
namespace {

// Calendar sizing bounds.  64 buckets is plenty for an idle queue; the
// upper bound keeps a resize from allocating absurdly for huge backlogs.
constexpr std::size_t kMinBuckets = 64;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
// Widths above 2^40 cycles (~11 min simulated) add nothing: the global-
// minimum fallback handles arbitrarily sparse queues.
constexpr int kMaxWidthLog2 = 40;

// After this many consecutive empty-year scans, the width no longer
// matches the event population; re-profile the calendar in place.
constexpr int kMaxGlobalScans = 4;

// A day longer than this flips from scan-on-extract to a min-heap (see
// heaped_ in event_queue.h).  Resizing keeps typical days near one event,
// so only same-timestamp pileups -- which no width can spread -- cross it.
constexpr std::size_t kHeapThreshold = 64;

}  // namespace

EventQueue::EventQueue() : buckets_(kMinBuckets), heaped_(kMinBuckets, 0) {
  cursor_day_end_ = width();
}

void EventQueue::HeapifyBucket(std::size_t b) {
  std::make_heap(buckets_[b].begin(), buckets_[b].end(), LaterEvent);
  heaped_[b] = 1;
}

void EventQueue::At(Cycles when, Action action) {
  if (when < now_) {
    throw std::logic_error("EventQueue: scheduling into the past");
  }
  const bool was_empty = size_ == 0;
  const std::size_t b = BucketFor(when);
  std::vector<Event>& day = buckets_[b];
  day.push_back(Event{when, next_seq_++, std::move(action)});
  if (heaped_[b]) {
    std::push_heap(day.begin(), day.end(), LaterEvent);
  } else if (day.size() > kHeapThreshold) {
    HeapifyBucket(b);
  }
  ++size_;
  min_valid_ = false;
  if (was_empty || when < cursor_day_end_ - width()) {
    // The new event is the earliest (or the queue restarted): snap the
    // cursor to its day so the invariant -- nothing before the current
    // day -- holds without scanning.
    SeekTo(when);
  }
  if (size_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
    Resize(buckets_.size() * 2);
  }
}

void EventQueue::FindMin() {
  if (min_valid_) {
    return;
  }
  std::size_t nbuckets = buckets_.size();
  std::size_t scanned = 0;
  while (true) {
    const std::vector<Event>& day = buckets_[cursor_bucket_];
    std::size_t best = day.size();
    if (heaped_[cursor_bucket_]) {
      // front() is the bucket's global minimum; if it lies in a later
      // year, so does every event here and the day is empty.
      if (!day.empty() && day.front().when < cursor_day_end_) {
        best = 0;
      }
    } else {
      for (std::size_t i = 0; i < day.size(); ++i) {
        const Event& e = day[i];
        if (e.when >= cursor_day_end_) {
          continue;  // Same bucket, a later year.
        }
        if (best == day.size() || e.when < day[best].when ||
            (e.when == day[best].when && e.seq < day[best].seq)) {
          best = i;
        }
      }
    }
    if (best != day.size()) {
      min_bucket_ = cursor_bucket_;
      min_index_ = best;
      min_valid_ = true;
      return;
    }
    cursor_bucket_ = (cursor_bucket_ + 1) & (nbuckets - 1);
    cursor_day_end_ += width();
    if (++scanned < nbuckets) {
      continue;
    }
    // A whole year without an event: the population is sparse relative to
    // the year span.  Find the global minimum directly and jump the
    // cursor to its day; if this keeps happening, the width is stale --
    // re-profile the calendar and retry (the rebuilt cursor starts at the
    // minimum's day, so the next scan hits immediately).
    if (++global_scans_ >= kMaxGlobalScans) {
      global_scans_ = 0;
      Resize(buckets_.size());
      nbuckets = buckets_.size();
      scanned = 0;
      continue;
    }
    std::size_t gb = 0;
    std::size_t gi = 0;
    bool found = false;
    for (std::size_t b = 0; b < nbuckets; ++b) {
      for (std::size_t i = 0; i < buckets_[b].size(); ++i) {
        const Event& e = buckets_[b][i];
        if (!found || e.when < buckets_[gb][gi].when ||
            (e.when == buckets_[gb][gi].when &&
             e.seq < buckets_[gb][gi].seq)) {
          gb = b;
          gi = i;
          found = true;
        }
      }
    }
    // size_ > 0, so the scan found something.
    SeekTo(buckets_[gb][gi].when);
    min_bucket_ = gb;
    min_index_ = gi;
    min_valid_ = true;
    return;
  }
}

void EventQueue::Resize(std::size_t nbuckets) {
  std::vector<std::vector<Event>> old = std::move(buckets_);
  buckets_.assign(nbuckets, {});
  heaped_.assign(nbuckets, 0);
  if (size_ == 0) {
    SeekTo(now_);
    min_valid_ = false;
    return;
  }
  // Width tracks the mean event gap (rounded up to a power of two for
  // shift indexing): about one event per day keeps extraction scans O(1).
  Cycles min_when = ~Cycles{0};
  Cycles max_when = 0;
  for (const std::vector<Event>& day : old) {
    for (const Event& e : day) {
      min_when = e.when < min_when ? e.when : min_when;
      max_when = e.when > max_when ? e.when : max_when;
    }
  }
  const Cycles gap = (max_when - min_when) / size_;
  int log2 = static_cast<int>(std::bit_width(gap));
  width_log2_ = log2 > kMaxWidthLog2 ? kMaxWidthLog2 : log2;
  for (std::vector<Event>& day : old) {
    for (Event& e : day) {
      buckets_[BucketFor(e.when)].push_back(std::move(e));
    }
  }
  for (std::size_t b = 0; b < nbuckets; ++b) {
    if (buckets_[b].size() > kHeapThreshold) {
      HeapifyBucket(b);
    }
  }
  SeekTo(min_when);
  min_valid_ = false;
}

bool EventQueue::Step() {
  if (size_ == 0) {
    return false;
  }
  FindMin();
  std::vector<Event>& day = buckets_[min_bucket_];
  Event event;
  if (heaped_[min_bucket_]) {
    // FindMin on a heaped bucket always selects front().
    std::pop_heap(day.begin(), day.end(), LaterEvent);
    event = std::move(day.back());
  } else {
    event = std::move(day[min_index_]);
    if (min_index_ != day.size() - 1) {
      day[min_index_] = std::move(day.back());
    }
  }
  day.pop_back();
  --size_;
  min_valid_ = false;
  now_ = event.when;
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 4) {
    Resize(buckets_.size() / 2);
  }
  event.action();
  return true;
}

std::uint64_t EventQueue::RunUntil(Cycles until) {
  std::uint64_t executed = 0;
  while (size_ > 0) {
    FindMin();
    if (buckets_[min_bucket_][min_index_].when > until) {
      break;
    }
    Step();  // Reuses the cached minimum.
    ++executed;
  }
  if (now_ < until) {
    now_ = until;
  }
  return executed;
}

std::uint64_t EventQueue::RunAll() {
  std::uint64_t executed = 0;
  while (Step()) {
    ++executed;
  }
  return executed;
}

}  // namespace osim
