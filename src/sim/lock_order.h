// Lock-order analysis for the simulated kernel, in the style of Linux's
// lockdep.
//
// The simulator already reproduces the paper's lock-contention pathologies
// (the Figure 1 clone peak, the Figure 6 i_sem convoy); this tracker
// detects the pathology one step worse than contention: acquisition-order
// cycles that make a deadlock *possible* even when the observed run
// happened not to interleave fatally.
//
// The sync primitives (src/sim/sync.h) report every acquisition and
// release here.  Nodes are lock names -- instance-qualified names like
// "i_sem:5" come from the callers, so two inodes' semaphores are distinct
// nodes while every trial names them identically (deterministic graphs).
// When a simulated task acquires B while holding A, the directed edge
// A -> B is recorded together with the profiled operation(s) in whose
// dynamic extent the acquisition happened (read off the kernel-owned
// RequestContext span stack that SimProfiler::Wrap maintains).  A cycle in
// the resulting graph is a deadlock-capable lock order; a 2-cycle is the
// classic ABBA inversion.
//
// Tracking is off by default: with the tracker disabled every hook is a
// single branch, and enabling it never advances simulated time, so golden
// profiles are byte-identical either way.

#ifndef OSPROF_SRC_SIM_LOCK_ORDER_H_
#define OSPROF_SRC_SIM_LOCK_ORDER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace osim {

class RequestContext;

class LockOrderTracker {
 public:
  // One observed ordering: some task acquired `to` while holding `from`.
  struct Edge {
    std::string from;
    std::string to;
    std::uint64_t count = 0;        // How many acquisitions added it.
    std::set<std::string> ops;      // Profiled ops active at those times.
  };

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // --- Hooks called by the sync primitives -------------------------------
  // `lock` identifies the instance (self-acquisition of a counted
  // semaphore adds no edge); `name` is the graph node and must stay
  // alive until the matching OnReleased (callers pass the primitive's
  // own name member; the tracker holds a pointer, not a copy).

  void OnAcquired(const void* lock, const std::string& name, int thread_id);
  void OnReleased(const void* lock, int thread_id);

  // --- Op context --------------------------------------------------------
  // The kernel installs its RequestContext at construction; edges are
  // annotated from the acquiring thread's innermost active span.

  void set_context(const RequestContext* context) { context_ = context; }

  // --- Analysis ----------------------------------------------------------

  // All edges, sorted by (from, to).
  std::vector<Edge> Edges() const;

  // Strongly connected components with more than one lock, plus self-loop
  // nodes: each is a deadlock-capable set of locks.  Every cycle's node
  // list is sorted; the list of cycles is sorted too, so output is
  // deterministic.
  std::vector<std::vector<std::string>> FindCycles() const;

  // The 2-cycles (A -> B and B -> A both observed), reported once per
  // unordered pair as the lexically smaller direction.
  std::vector<Edge> Inversions() const;

  bool DeadlockCapable() const { return !FindCycles().empty(); }

  // One line per cycle: "a -> b -> a (ops: x, y)".
  std::vector<std::string> CycleDescriptions() const;

  // Human-readable edge list plus cycle verdicts.
  std::string Report() const;

  // Drops all recorded state (not the enabled flag).
  void Reset();

 private:
  struct Held {
    const void* lock;
    // Points at the sync primitive's own name member: a lock outlives
    // every Held entry for it (entries are erased on release), so the
    // hot path never copies a string.
    const std::string* name;
  };

  bool enabled_ = false;
  const RequestContext* context_ = nullptr;
  // Indexed by thread id (small dense ints from the kernel), grown on
  // demand; each slot is that thread's stack of held locks (erased by
  // instance on release, so out-of-order release is fine).
  std::vector<std::vector<Held>> held_;
  // (from, to) -> edge data.  std::map keeps iteration deterministic.
  std::map<std::pair<std::string, std::string>, Edge> edges_;
};

}  // namespace osim

#endif  // OSPROF_SRC_SIM_LOCK_ORDER_H_
