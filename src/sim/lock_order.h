// Lock-order analysis for the simulated kernel, in the style of Linux's
// lockdep.
//
// The simulator already reproduces the paper's lock-contention pathologies
// (the Figure 1 clone peak, the Figure 6 i_sem convoy); this tracker
// detects the pathology one step worse than contention: acquisition-order
// cycles that make a deadlock *possible* even when the observed run
// happened not to interleave fatally.
//
// The sync primitives (src/sim/sync.h) report every acquisition and
// release here.  Nodes are lock names -- instance-qualified names like
// "i_sem:5" come from the callers, so two inodes' semaphores are distinct
// nodes while every trial names them identically (deterministic graphs).
// When a simulated task acquires B while holding A, the directed edge
// A -> B is recorded together with the profiled operation(s) in whose
// dynamic extent the acquisition happened (read off the kernel-owned
// RequestContext span stack that SimProfiler::Wrap maintains).  A cycle in
// the resulting graph is a deadlock-capable lock order; a 2-cycle is the
// classic ABBA inversion.
//
// Edge recording is off by default.  The held-lock stacks themselves are
// maintained unconditionally -- they are a property of the sync
// primitives, not of the analysis -- so enabling the tracker mid-run sees
// a consistent picture of what every thread already holds, and the cost
// of *enabling* it is confined to nested acquisitions (where edges are
// recorded).  Flat acquire/release paths never even read the enabled
// flag.  Nothing here advances simulated time, so golden profiles are
// byte-identical with recording on or off.

#ifndef OSPROF_SRC_SIM_LOCK_ORDER_H_
#define OSPROF_SRC_SIM_LOCK_ORDER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace osim {

class RequestContext;

// One held-lock record.  `name` points at the sync primitive's own name
// member: a lock outlives every record for it (records are erased on
// release), so the hot path never copies a string.
struct HeldLock {
  const void* lock;
  const std::string* name;
};

// One thread's stack of held locks, embedded in its SimThread so the
// tracker's hot paths reach it with zero table lookups.  The first
// kInlineDepth entries live in a fixed array so the common cases --
// acquiring with nothing held, releasing the top of the stack -- are an
// indexed store or a counter decrement with no vector size/capacity
// traffic; nesting deeper than kInlineDepth spills to a heap vector
// (entries kInlineDepth..depth-1).
struct HeldLockStack {
  static constexpr std::uint32_t kInlineDepth = 8;
  HeldLock frames[kInlineDepth];
  std::uint32_t depth = 0;
  std::vector<HeldLock> spill;

  HeldLock& At(std::uint32_t i) {
    return i < kInlineDepth ? frames[i] : spill[i - kInlineDepth];
  }
  const HeldLock& At(std::uint32_t i) const {
    return i < kInlineDepth ? frames[i] : spill[i - kInlineDepth];
  }
};

class LockOrderTracker {
 public:
  // One observed ordering: some task acquired `to` while holding `from`.
  struct Edge {
    std::string from;
    std::string to;
    std::uint64_t count = 0;        // How many acquisitions added it.
    std::set<std::string> ops;      // Profiled ops active at those times.
  };

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // --- Hooks called by the sync primitives -------------------------------
  // `lock` identifies the instance (self-acquisition of a counted
  // semaphore adds no edge); `name` is the graph node and must stay
  // alive until the matching OnReleased (callers pass the primitive's
  // own name member; the tracker holds a pointer, not a copy).  `held` is
  // the acquiring thread's own stack (SimThread::held_locks_); passing it
  // in keeps the hot paths free of any thread-id table lookup.

  // Both hooks are inline fast paths over out-of-line slow tails, and the
  // stack upkeep runs whether or not recording is enabled: the common
  // cases -- acquiring with nothing held, releasing the most recent
  // acquisition -- are one load and a store or two on the thread's
  // embedded stack, and the enabled flag is only consulted on the nested
  // path.  Enabling the tracker therefore costs nothing on flat locking.

  void OnAcquired(const void* lock, const std::string& name,
                  HeldLockStack& held, int thread_id) {
    if (held.depth != 0) {
      AcquiredSlow(lock, name, held, thread_id);
      return;
    }
    // Nothing held: no ordering edges to record either way.
    held.frames[0] = HeldLock{lock, &name};
    held.depth = 1;
  }

  void OnReleased(const void* lock, HeldLockStack& held) {
    const std::uint32_t d = held.depth;
    if (d != 0 && d <= HeldLockStack::kInlineDepth &&
        held.frames[d - 1].lock == lock) {
      held.depth = d - 1;
      return;
    }
    ReleasedSlow(lock, held);
  }

  // --- Op context --------------------------------------------------------
  // The kernel installs its RequestContext at construction; edges are
  // annotated from the acquiring thread's innermost active span.

  void set_context(const RequestContext* context) { context_ = context; }

  // --- Analysis ----------------------------------------------------------

  // All edges, sorted by (from, to).
  std::vector<Edge> Edges() const;

  // Strongly connected components with more than one lock, plus self-loop
  // nodes: each is a deadlock-capable set of locks.  Every cycle's node
  // list is sorted; the list of cycles is sorted too, so output is
  // deterministic.
  std::vector<std::vector<std::string>> FindCycles() const;

  // The 2-cycles (A -> B and B -> A both observed), reported once per
  // unordered pair as the lexically smaller direction.
  std::vector<Edge> Inversions() const;

  bool DeadlockCapable() const { return !FindCycles().empty(); }

  // One line per cycle: "a -> b -> a (ops: x, y)".
  std::vector<std::string> CycleDescriptions() const;

  // Human-readable edge list plus cycle verdicts.
  std::string Report() const;

  // Drops all recorded edges (not the enabled flag).  Held-lock stacks
  // live on the threads themselves and empty out as locks are released.
  void Reset();

 private:
  // Slow tails of the hooks: nested acquisitions (edge recording) and
  // out-of-order releases.
  void AcquiredSlow(const void* lock, const std::string& name,
                    HeldLockStack& held, int thread_id);
  void ReleasedSlow(const void* lock, HeldLockStack& held);

  bool enabled_ = false;
  const RequestContext* context_ = nullptr;
  // (from, to) -> edge data.  std::map keeps iteration deterministic.
  std::map<std::pair<std::string, std::string>, Edge> edges_;
};

}  // namespace osim

#endif  // OSPROF_SRC_SIM_LOCK_ORDER_H_
