// Happens-before race detection for simulated tasks (SimRace).
//
// The simulator runs every task on one real thread, so ThreadSanitizer is
// structurally blind to simulated races: a coroutine that mutates shared
// FS/net state across a yield point without holding a sim lock corrupts
// profiles silently.  This tracker closes that gap with a FastTrack-style
// vector-clock happens-before engine over simulated tasks.
//
// Happens-before edges come from the same InterferenceChannel choke point
// the noise profiler taps (src/sim/interference.h): task spawn/exit,
// wait-queue and semaphore wakeups, and lock acquire/release pairs (each
// lock carries a clock that release joins into and acquire joins from).
// Asynchronous completions -- disk-request callbacks, network deliveries
// -- carry *causality tokens*: the submitter's clock is captured at
// submit/send time (Capture) and adopted around the completion callback
// (Adopt/Drop), so a task spawned or woken by a delivery inherits the
// sender's history instead of appearing causally detached.
//
// Accesses are checked only in task context.  Kernel-context code (event
// callbacks, mkfs-style setup, host-side introspection) runs atomically
// with respect to the scheduler and is exempt; between two awaits a
// task's code is likewise atomic, which is why single-turn structures
// (e.g. fd-table allocators) are deliberately not annotated.  What *is*
// annotated -- via osim::Shared<T> cells and the OSIM_SHARED_RW/RO
// macros below -- are the structures whose access protocol spans awaits
// and therefore requires real synchronization: inode tables, the page
// cache, journal state, the CIFS caches, the ack ledger.
//
// Reports name both racing accesses -- cell@function plus the profiled op
// and its layer read off the kernel's RequestContext span stack -- and
// dedupe by the (site, op) pair of both sides, so one racy loop yields
// one report.  They surface through `osprof_tool races`, the gate's
// [races] verdict, and the runner's race_* counters.
//
// Cost model (the LockOrderTracker contract): detection is plain C++
// between awaits -- zero simulated time, so golden profiles are
// byte-identical with tracking on or off.  Disabled, every hook is one
// inline flag test and Capture returns an empty token without touching
// the heap; the scale scenarios additionally run with tracking off so
// their callback hot paths skip token capture entirely.

#ifndef OSPROF_SRC_SIM_RACE_TRACKER_H_
#define OSPROF_SRC_SIM_RACE_TRACKER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/core/layered.h"
#include "src/core/op_table.h"

namespace osim {

class Kernel;
class RequestContext;

// A captured vector clock, carried by value through asynchronous
// completion callbacks (disk submit -> completion, net send -> delivery).
// Empty when the tracker is disabled.
using RaceClock = std::vector<std::uint32_t>;

// One recorded access to a shared cell: who, at which epoch, from which
// function, under which profiled op.  The op table pointer stays valid
// for the run (profilers outlive the kernel they instrument); report
// strings are materialized the moment a race is found.
struct RaceAccess {
  int tid = -1;
  std::uint32_t clock = 0;
  bool is_write = false;
  const char* func = nullptr;
  const osprof::OpTable* ops = nullptr;
  osprof::OpId op = osprof::kInvalidOpId;
  osprof::LayerComponent cls = osprof::kLayerSelf;
};

// Per-cell detector state, embedded in each Shared<T>.  `generation`
// lets a tracker Reset() invalidate stale epochs without enumerating
// cells (the cell self-clears on its next access).
struct RaceCellState {
  std::uint32_t generation = 0;
  bool registered = false;
  bool has_write = false;
  RaceAccess last_write;
  // Latest read per thread since the last non-racing write.
  std::vector<RaceAccess> reads;
};

class RaceTracker {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // The kernel installs both at construction: the context annotates
  // reports with the accessor's innermost op, the kernel answers "which
  // task is executing right now" (task-context test).
  void set_context(const RequestContext* context) { context_ = context; }
  void BindKernel(const Kernel* kernel) { kernel_ = kernel; }

  // --- Happens-before edges (forwarded by InterferenceChannel) ----------
  // All inline no-ops while disabled.  Negative ids mean kernel context;
  // kernel-context spawns and wakes join from the root clock plus any
  // adopted tokens instead of a parent task's clock.

  void OnSpawn(int parent, int child) {
    if (enabled_) {
      SpawnSlow(parent, child);
    }
  }
  void OnExit(int tid) {
    if (enabled_) {
      ExitSlow(tid);
    }
  }
  void OnWake(int waker, int wakee) {
    if (enabled_ && waker != wakee) {
      WakeSlow(waker, wakee);
    }
  }
  void OnAcquire(const void* lock, int tid) {
    if (enabled_ && tid >= 0) {
      AcquireSlow(lock, tid);
    }
  }
  void OnRelease(const void* lock, int tid) {
    if (enabled_ && tid >= 0) {
      ReleaseSlow(lock, tid);
    }
  }

  // --- Causality tokens -------------------------------------------------
  // Capture the current history (task clock, or root+adopted in kernel
  // context) at submit/send time; Adopt/Drop bracket the completion
  // callback so everything it spawns or wakes inherits that history.

  RaceClock Capture() {
    if (!enabled_) {
      return {};
    }
    return CaptureSlow();
  }
  void Adopt(const RaceClock& token) {
    if (enabled_ && !token.empty()) {
      adopted_.push_back(token);
    }
  }
  void Drop() {
    if (enabled_ && !adopted_.empty()) {
      adopted_.pop_back();
    }
  }

  // --- Shared-cell accesses (called by Shared<T>, enabled-checked there).

  void OnSharedAccess(RaceCellState* cell, const char* cell_name,
                      const char* func, bool is_write);

  // --- Analysis ---------------------------------------------------------

  // One line per deduped race: "data race on <cell>: <access> vs
  // <access>", each access "write cell@func (op name [layer])".  Sorted;
  // identical across trials that find the same races, so the runner's
  // set-union merge dedupes cleanly.
  std::vector<std::string> ReportDescriptions() const;

  bool RacesFound() const { return !reports_.empty(); }

  // Counters for the runner's race_* surface.
  std::uint64_t report_count() const { return reports_.size(); }
  std::uint64_t racy_accesses() const { return racy_accesses_; }
  std::uint64_t accesses_checked() const { return accesses_checked_; }
  std::uint64_t cells_tracked() const { return cells_tracked_; }

  // Drops all clocks, tokens and reports (not the enabled flag).  Cell
  // states invalidate lazily via the generation counter.
  void Reset();

 private:
  using VectorClock = std::vector<std::uint32_t>;

  // Out-of-line slow tails of the edge hooks.
  void SpawnSlow(int parent, int child);
  void ExitSlow(int tid);
  void WakeSlow(int waker, int wakee);
  void AcquireSlow(const void* lock, int tid);
  void ReleaseSlow(const void* lock, int tid);
  RaceClock CaptureSlow();

  // The id of the task executing right now, or -1 in kernel context.
  int CurrentTid() const;

  // The clock of task `tid`, sized and seeded on first sight.
  VectorClock& ClockOf(int tid);

  // Joins root_ plus every adopted token into `out`.
  void KernelClockInto(VectorClock& out) const;

  static void Join(VectorClock& into, const VectorClock& from);

  // True when `access` happened-before the accessor whose clock is `now`.
  static bool OrderedBefore(const RaceAccess& access, int tid,
                            const VectorClock& now);

  RaceAccess MakeAccess(int tid, const char* func, bool is_write) const;
  void Report(const char* cell_name, const RaceAccess& prior,
              const RaceAccess& current);

  bool enabled_ = false;
  const RequestContext* context_ = nullptr;
  const Kernel* kernel_ = nullptr;
  std::uint32_t generation_ = 0;

  // Per-task clocks, indexed by dense thread id.
  std::vector<VectorClock> clocks_;
  // The root clock: history of every exited task, joined at exit so
  // later host-context spawns are ordered after completed phases.
  VectorClock root_;
  // Adopted causality tokens (a stack: completions can nest).
  std::vector<VectorClock> adopted_;
  // Per-lock clocks: release joins in, acquire joins out.
  std::map<const void*, VectorClock> locks_;

  // Deduped reports keyed by the sorted pair of access descriptors
  // (site + op of both sides).  std::map keeps output deterministic.
  std::map<std::pair<std::string, std::string>, std::uint64_t> reports_;

  std::uint64_t racy_accesses_ = 0;
  std::uint64_t accesses_checked_ = 0;
  std::uint64_t cells_tracked_ = 0;
};

// The kernel's tracker, by reference.  Out-of-line so this header (which
// kernel.h reaches through interference.h) never needs kernel.h.
RaceTracker& RaceTrackerOf(Kernel& kernel);

// A race-checked shared cell.  Wraps the value and funnels every access
// through the tracker via the OSIM_SHARED_RW/RO macros; with tracking
// disabled an access is one flag test.  The lint `shared-state` rule
// requires mutable file-scope/static data in src/{sim,fs,net} to be
// wrapped in one of these (or carry an explicit allow).
template <typename T>
class Shared {
 public:
  Shared(Kernel& kernel, const char* name)
      : tracker_(&RaceTrackerOf(kernel)), name_(name) {}
  Shared(Kernel& kernel, const char* name, T value)
      : value_(std::move(value)), tracker_(&RaceTrackerOf(kernel)),
        name_(name) {}

  T& Write(const char* func) {
    if (tracker_->enabled()) {
      tracker_->OnSharedAccess(&state_, name_, func, true);
    }
    return value_;
  }
  const T& Read(const char* func) const {
    if (tracker_->enabled()) {
      tracker_->OnSharedAccess(&state_, name_, func, false);
    }
    return value_;
  }

 private:
  T value_{};
  RaceTracker* tracker_;
  const char* name_;
  mutable RaceCellState state_;
};

}  // namespace osim

// Annotation points: OSIM_SHARED_RW(cell) yields a mutable reference and
// records a write; OSIM_SHARED_RO(cell) yields a const reference and
// records a read.  __func__ gives the report its site name for free.
#define OSIM_SHARED_RW(cell) ((cell).Write(__func__))
#define OSIM_SHARED_RO(cell) ((cell).Read(__func__))

#endif  // OSPROF_SRC_SIM_RACE_TRACKER_H_
