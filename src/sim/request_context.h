// The kernel-owned per-task span stack: one cross-layer spine for
// call-graph derivation, lock-order op annotation, and exact layered
// latency decomposition (ReLayTracer-style request slicing on an
// LTTng-style kernel-owned context).
//
// Every SimProfiler::Wrap / CallGraphProfiler::Wrap pushes a frame at
// entry and pops it at exit.  While a frame is on top of its thread's
// stack, the kernel attributes that thread's waits to it (run-queue time
// at dispatch, lock waits at wakeup/handoff, tagged WaitQueue parks for
// driver and network waits).  At pop time the frame's duration splits
// exactly into self-CPU plus the attributed waits; waits propagate to the
// enclosing frame, and an opaque child's self-CPU is charged to the
// parent's component for that child's layer class, so a user-level op's
// decomposition accounts for every cycle below it.
//
// Frames also carry enough lineage for the consumers that used to keep
// private stacks: Pop() reports the nearest enclosing frame of the same
// owner (the caller, for CallGraphProfiler's edges) and the latency its
// same-owner children recorded under it (gprof-style child time), and
// TopOp() exposes the innermost active op for LockOrderTracker's edge
// annotations.
//
// All bookkeeping is plain C++ between awaits: zero simulated time, so
// committed goldens are byte-identical with or without consumers attached.
// Only SimProfiler / CallGraphProfiler may push or pop frames -- enforced
// by osprof_lint's probe-discipline rule.
//
// Storage is a per-kernel free-list arena: every frame lives in one
// contiguous pool, each thread's stack is an index chain through it, and
// a freed slot is recycled through a free list.  Push and Pop are O(1)
// index moves with no steady-state heap traffic (ISSUE 6), and the pool
// only ever grows to the high-water mark of simultaneously open spans.

#ifndef OSPROF_SRC_SIM_REQUEST_CONTEXT_H_
#define OSPROF_SRC_SIM_REQUEST_CONTEXT_H_

#include <cstdint>
#include <vector>

#include "src/core/clock.h"
#include "src/core/layered.h"
#include "src/core/op_table.h"

namespace osim {

using osprof::Cycles;

// Per-profiler span descriptor, pushed (by address) with every frame: the
// address is the owner identity that scopes caller/child lineage, `ops`
// names the owner's OpIds, and `cls` is the component class the owner's
// spans charge to their parents (kLayerSelf = transparent).  One pointer
// store per Push instead of three fields.
struct SpanOwner {
  const osprof::OpTable* ops = nullptr;
  osprof::LayerComponent cls = osprof::kLayerSelf;
};

class RequestContext {
 public:
  // Everything a consumer needs at frame exit.
  struct PopResult {
    // Frame duration by the global clock (skew-free).
    Cycles duration = 0;
    // Exact decomposition; components sum to `duration`.
    Cycles components[osprof::kNumLayerComponents] = {};
    // Op of the nearest enclosing frame pushed by the same owner, or
    // kInvalidOpId for a top-level operation of that owner.
    osprof::OpId caller = osprof::kInvalidOpId;
    // Total latency recorded by same-owner frames directly under this one.
    Cycles owner_children = 0;
    // True when no wait was attributed to the span: components[kLayerSelf]
    // equals duration and every other component is zero, so consumers can
    // record the one non-zero component instead of all six.
    bool self_only = true;
  };

  // Opens a span for thread `tid` on behalf of `owner` (which must
  // outlive the span).  Inline: runs at every span entry.
  void Push(int tid, const SpanOwner* owner, osprof::OpId op, Cycles now) {
    if (tid < 0) {
      return;
    }
    const auto index = static_cast<std::size_t>(tid);
    if (index >= tops_.size()) {
      GrowTops(index);
    }
    std::uint32_t slot = free_head_;
    if (slot != kNilFrame) {
      free_head_ = pool_[slot].below;
    } else {
      slot = GrowPool();
    }
    Frame& frame = pool_[slot];
    frame.owner = owner;
    frame.op = op;
    frame.entry = now;
    // comp[] stays garbage until the first attributed wait zeroes it
    // (TouchWaits); most spans never wait, and skipping the six zero
    // stores here and the six reads at Pop is most of the span cost.
    frame.has_waits = false;
    frame.owner_child_latency = 0;
    frame.below = tops_[index];
    tops_[index] = slot;
  }

  // Closes the innermost span of `tid`.  `recorded_latency` is what the
  // owner records for this span (its TSC-measured latency); it feeds the
  // same-owner parent's child-time, not the decomposition.  Inline: runs
  // at every span exit, and inlining lets the caller keep the whole
  // PopResult in registers instead of bouncing it through a hidden
  // return slot.
  PopResult Pop(int tid, Cycles now, Cycles recorded_latency) {
    if (tid < 0 || static_cast<std::size_t>(tid) >= tops_.size() ||
        tops_[static_cast<std::size_t>(tid)] == kNilFrame) {
      ThrowNoActiveSpan();
    }
    PopResult r;
    const std::uint32_t slot = tops_[static_cast<std::size_t>(tid)];
    Frame& frame = pool_[slot];

    r.duration = now >= frame.entry ? now - frame.entry : 0;
    if (frame.has_waits) {
      Cycles waits = 0;
      for (int c = osprof::kLayerSelf + 1; c < osprof::kNumLayerComponents;
           ++c) {
        r.components[c] = frame.comp[c];
        waits += frame.comp[c];
      }
      // Self-CPU is what no wait accounted for.  Clamped: an untagged
      // park inside the span cannot make self negative.
      r.components[osprof::kLayerSelf] =
          r.duration > waits ? r.duration - waits : 0;
      r.self_only = false;
    } else {
      // No waits: the whole duration is self-CPU and the default-zero
      // components stand.  r.self_only stays true.
      r.components[osprof::kLayerSelf] = r.duration;
    }
    r.owner_children = frame.owner_child_latency;

    if (frame.below != kNilFrame) {
      // Nested span: bubble waits and lineage to the enclosing frames.
      PopNested(frame, r, recorded_latency);
    }
    // Unlink and recycle the slot.
    tops_[static_cast<std::size_t>(tid)] = frame.below;
    frame.below = free_head_;
    free_head_ = slot;
    return r;
  }

  // Charges `cycles` of `component` wait to the innermost active span of
  // `tid`.  No-op when the thread has no active span (unprofiled code)
  // or the wait is zero cycles (an uncontended dispatch: charging zero
  // would only force the span onto the slow decomposition path).
  void AttributeWait(int tid, osprof::LayerComponent component,
                     Cycles cycles) {
    if (cycles == 0 || tid < 0 ||
        static_cast<std::size_t>(tid) >= tops_.size()) {
      return;
    }
    const std::uint32_t top = tops_[static_cast<std::size_t>(tid)];
    if (top == kNilFrame) {
      return;
    }
    Frame& frame = pool_[top];
    TouchWaits(frame);
    frame.comp[component] += cycles;
  }

  // The innermost active op of `tid`, if any.
  bool TopOp(int tid, const osprof::OpTable** ops, osprof::OpId* op) const {
    if (tid < 0 || static_cast<std::size_t>(tid) >= tops_.size()) {
      return false;
    }
    const std::uint32_t top = tops_[static_cast<std::size_t>(tid)];
    if (top == kNilFrame) {
      return false;
    }
    *ops = pool_[top].owner->ops;
    *op = pool_[top].op;
    return true;
  }

  // TopOp plus the owner's layer class, for consumers (the race tracker)
  // that tag reports with the layer the op belongs to.
  bool TopSpan(int tid, const osprof::OpTable** ops, osprof::OpId* op,
               osprof::LayerComponent* cls) const {
    if (tid < 0 || static_cast<std::size_t>(tid) >= tops_.size()) {
      return false;
    }
    const std::uint32_t top = tops_[static_cast<std::size_t>(tid)];
    if (top == kNilFrame) {
      return false;
    }
    *ops = pool_[top].owner->ops;
    *op = pool_[top].op;
    *cls = pool_[top].owner->cls;
    return true;
  }

  // Drops all frames (between runs; never while spans are active).
  void Reset();

  // Frames in the pool (the high-water mark of simultaneously open spans;
  // frames are recycled, never released).
  std::size_t pool_frames() const { return pool_.size(); }

  // Approximate heap footprint: frame pool plus the per-thread tops.
  std::size_t ApproxBytes() const {
    return pool_.capacity() * sizeof(Frame) +
           tops_.capacity() * sizeof(std::uint32_t);
  }

 private:
  // Index of "no frame", for both stack bottoms and the free-list end.
  static constexpr std::uint32_t kNilFrame = 0xffffffffu;

  struct Frame;

  // First attributed wait of a span: zeroes the garbage comp[] exactly
  // once (deferred from Push, so wait-free spans never touch it).
  static void TouchWaits(Frame& frame) {
    if (frame.has_waits) {
      return;
    }
    for (int c = 0; c < osprof::kNumLayerComponents; ++c) {
      frame.comp[c] = 0;
    }
    frame.has_waits = true;
  }

  // Cold paths of Push: first sighting of a thread id / a deeper
  // high-water mark of simultaneously open spans.
  void GrowTops(std::size_t index);
  std::uint32_t GrowPool();

  // Out-of-line tail of Pop for nested spans: charges the popped frame's
  // waits and opaque self-CPU to the parent and walks the lineage chain
  // for the same-owner caller and child-time.  Top-level pops (the common
  // case) never call it.
  void PopNested(Frame& frame, PopResult& r, Cycles recorded_latency);

  [[noreturn]] static void ThrowNoActiveSpan();

  struct Frame {
    const SpanOwner* owner;
    osprof::OpId op;
    // False until the first AttributeWait / parent charge; while false,
    // comp[] is uninitialized garbage and must not be read.
    bool has_waits;
    Cycles entry;
    // Attributed waits (index kLayerSelf unused until Pop computes it).
    // Valid only when has_waits; zeroed lazily by TouchWaits.
    Cycles comp[osprof::kNumLayerComponents];
    Cycles owner_child_latency;
    // Pool index of the frame below this one on the same thread's stack
    // (kNilFrame at the bottom); doubles as the free-list link.
    std::uint32_t below;
  };

  // All frames, live and free, in one allocation.
  std::vector<Frame> pool_;
  // Head of the free-slot chain through Frame::below.
  std::uint32_t free_head_ = kNilFrame;
  // Indexed by dense thread id: pool index of the innermost frame.
  std::vector<std::uint32_t> tops_;
};

}  // namespace osim

#endif  // OSPROF_SRC_SIM_REQUEST_CONTEXT_H_
