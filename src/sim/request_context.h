// The kernel-owned per-task span stack: one cross-layer spine for
// call-graph derivation, lock-order op annotation, and exact layered
// latency decomposition (ReLayTracer-style request slicing on an
// LTTng-style kernel-owned context).
//
// Every SimProfiler::Wrap / CallGraphProfiler::Wrap pushes a frame at
// entry and pops it at exit.  While a frame is on top of its thread's
// stack, the kernel attributes that thread's waits to it (run-queue time
// at dispatch, lock waits at wakeup/handoff, tagged WaitQueue parks for
// driver and network waits).  At pop time the frame's duration splits
// exactly into self-CPU plus the attributed waits; waits propagate to the
// enclosing frame, and an opaque child's self-CPU is charged to the
// parent's component for that child's layer class, so a user-level op's
// decomposition accounts for every cycle below it.
//
// Frames also carry enough lineage for the consumers that used to keep
// private stacks: Pop() reports the nearest enclosing frame of the same
// owner (the caller, for CallGraphProfiler's edges) and the latency its
// same-owner children recorded under it (gprof-style child time), and
// TopOp() exposes the innermost active op for LockOrderTracker's edge
// annotations.
//
// All bookkeeping is plain C++ between awaits: zero simulated time, so
// committed goldens are byte-identical with or without consumers attached.
// Only SimProfiler / CallGraphProfiler may push or pop frames -- enforced
// by osprof_lint's probe-discipline rule.

#ifndef OSPROF_SRC_SIM_REQUEST_CONTEXT_H_
#define OSPROF_SRC_SIM_REQUEST_CONTEXT_H_

#include <vector>

#include "src/core/clock.h"
#include "src/core/layered.h"
#include "src/core/op_table.h"

namespace osim {

using osprof::Cycles;

class RequestContext {
 public:
  // Everything a consumer needs at frame exit.
  struct PopResult {
    // Frame duration by the global clock (skew-free).
    Cycles duration = 0;
    // Exact decomposition; components sum to `duration`.
    Cycles components[osprof::kNumLayerComponents] = {};
    // Op of the nearest enclosing frame pushed by the same owner, or
    // kInvalidOpId for a top-level operation of that owner.
    osprof::OpId caller = osprof::kInvalidOpId;
    // Total latency recorded by same-owner frames directly under this one.
    Cycles owner_children = 0;
  };

  // Opens a span for thread `tid`.  `owner` scopes caller/child lineage to
  // one profiler; `ops` names `op`; `cls` is the layer class charged to
  // the parent for this span's self-CPU (kLayerSelf = transparent).
  void Push(int tid, const void* owner, const osprof::OpTable* ops,
            osprof::OpId op, osprof::LayerComponent cls, Cycles now);

  // Closes the innermost span of `tid`.  `recorded_latency` is what the
  // owner records for this span (its TSC-measured latency); it feeds the
  // same-owner parent's child-time, not the decomposition.
  PopResult Pop(int tid, Cycles now, Cycles recorded_latency);

  // Charges `cycles` of `component` wait to the innermost active span of
  // `tid`.  No-op when the thread has no active span (unprofiled code).
  void AttributeWait(int tid, osprof::LayerComponent component, Cycles cycles);

  // The innermost active op of `tid`, if any.
  bool TopOp(int tid, const osprof::OpTable** ops, osprof::OpId* op) const;

  // Drops all frames (between runs; never while spans are active).
  void Reset();

 private:
  struct Frame {
    const void* owner;
    const osprof::OpTable* ops;
    osprof::OpId op;
    osprof::LayerComponent cls;
    Cycles entry;
    // Attributed waits (index kLayerSelf unused until Pop computes it).
    Cycles comp[osprof::kNumLayerComponents];
    Cycles owner_child_latency;
  };

  // Indexed by dense thread id; grown on demand.
  std::vector<std::vector<Frame>> stacks_;
};

}  // namespace osim

#endif  // OSPROF_SRC_SIM_REQUEST_CONTEXT_H_
