#include "src/sim/race_tracker.h"

#include <algorithm>

#include "src/sim/kernel.h"
#include "src/sim/request_context.h"

namespace osim {
namespace {

// Renders one side of a report: "write cell@func (op name [layer])", or
// "(no op)" for accesses outside any profiled span.
std::string Describe(const char* cell_name, const RaceAccess& access) {
  std::string s = access.is_write ? "write " : "read ";
  s += cell_name;
  s += '@';
  s += access.func != nullptr ? access.func : "?";
  if (access.ops != nullptr && access.op != osprof::kInvalidOpId) {
    s += " (op ";
    s += access.ops->Name(access.op);
    s += " [";
    s += osprof::LayerComponentName(access.cls);
    s += "])";
  } else {
    s += " (no op)";
  }
  return s;
}

}  // namespace

RaceTracker& RaceTrackerOf(Kernel& kernel) { return kernel.races(); }

int RaceTracker::CurrentTid() const {
  if (kernel_ == nullptr) {
    return -1;
  }
  const SimThread* t = kernel_->current();
  return t != nullptr ? t->id() : -1;
}

void RaceTracker::Join(VectorClock& into, const VectorClock& from) {
  if (from.size() > into.size()) {
    into.resize(from.size(), 0);
  }
  for (std::size_t i = 0; i < from.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

RaceTracker::VectorClock& RaceTracker::ClockOf(int tid) {
  const auto index = static_cast<std::size_t>(tid);
  if (index >= clocks_.size()) {
    clocks_.resize(index + 1);
  }
  VectorClock& c = clocks_[index];
  if (index >= c.size()) {
    c.resize(index + 1, 0);
  }
  if (c[index] == 0) {
    // First sighting (a task spawned before the tracker was enabled):
    // seed its epoch so accesses are distinguishable from "never ran".
    c[index] = 1;
  }
  return c;
}

void RaceTracker::KernelClockInto(VectorClock& out) const {
  Join(out, root_);
  for (const VectorClock& token : adopted_) {
    Join(out, token);
  }
}

void RaceTracker::SpawnSlow(int parent, int child) {
  if (child < 0) {
    return;
  }
  VectorClock base;
  if (parent >= 0) {
    VectorClock& p = ClockOf(parent);
    base = p;
    // The spawn is a send: the parent's later work is not ordered before
    // anything the child does.
    ++p[static_cast<std::size_t>(parent)];
  } else {
    // Kernel/host context: the child inherits everything that finished
    // plus whatever completion history was adopted around this callback.
    KernelClockInto(base);
  }
  VectorClock& c = ClockOf(child);
  Join(c, base);
}

void RaceTracker::ExitSlow(int tid) {
  if (static_cast<std::size_t>(tid) < clocks_.size()) {
    Join(root_, clocks_[static_cast<std::size_t>(tid)]);
  }
}

void RaceTracker::WakeSlow(int waker, int wakee) {
  if (wakee < 0) {
    return;
  }
  VectorClock& c = ClockOf(wakee);
  if (waker >= 0) {
    VectorClock& w = ClockOf(waker);
    Join(c, w);
    ++w[static_cast<std::size_t>(waker)];
  } else {
    VectorClock base;
    KernelClockInto(base);
    Join(c, base);
  }
}

void RaceTracker::AcquireSlow(const void* lock, int tid) {
  auto it = locks_.find(lock);
  if (it != locks_.end()) {
    Join(ClockOf(tid), it->second);
  }
}

void RaceTracker::ReleaseSlow(const void* lock, int tid) {
  VectorClock& c = ClockOf(tid);
  Join(locks_[lock], c);
  ++c[static_cast<std::size_t>(tid)];
}

RaceClock RaceTracker::CaptureSlow() {
  const int tid = CurrentTid();
  if (tid >= 0) {
    VectorClock& c = ClockOf(tid);
    RaceClock token = c;
    // The capture is a send: post-submit work must not look ordered
    // before the completion that adopts this token.
    ++c[static_cast<std::size_t>(tid)];
    return token;
  }
  // Kernel context (a completion chaining into another submit): forward
  // the already-adopted history.
  VectorClock token;
  KernelClockInto(token);
  return token;
}

bool RaceTracker::OrderedBefore(const RaceAccess& access, int tid,
                                const VectorClock& now) {
  if (access.tid == tid) {
    return true;  // Program order.
  }
  const auto index = static_cast<std::size_t>(access.tid);
  return index < now.size() && access.clock <= now[index];
}

RaceAccess RaceTracker::MakeAccess(int tid, const char* func,
                                   bool is_write) const {
  RaceAccess access;
  access.tid = tid;
  access.clock = 0;  // Filled by the caller from the task's own epoch.
  access.is_write = is_write;
  access.func = func;
  if (context_ != nullptr) {
    context_->TopSpan(tid, &access.ops, &access.op, &access.cls);
  }
  return access;
}

void RaceTracker::Report(const char* cell_name, const RaceAccess& prior,
                         const RaceAccess& current) {
  ++racy_accesses_;
  std::string a = Describe(cell_name, prior);
  std::string b = Describe(cell_name, current);
  if (b < a) {
    std::swap(a, b);
  }
  ++reports_[{std::move(a), std::move(b)}];
}

void RaceTracker::OnSharedAccess(RaceCellState* cell, const char* cell_name,
                                 const char* func, bool is_write) {
  const int tid = CurrentTid();
  if (tid < 0) {
    // Kernel context: event callbacks and host-side setup/introspection
    // are scheduler-atomic by construction, never racy.
    return;
  }
  if (cell->generation != generation_) {
    *cell = RaceCellState{};
    cell->generation = generation_;
  }
  if (!cell->registered) {
    cell->registered = true;
    ++cells_tracked_;
  }
  ++accesses_checked_;

  const VectorClock& now = ClockOf(tid);
  RaceAccess current = MakeAccess(tid, func, is_write);
  current.clock = now[static_cast<std::size_t>(tid)];

  if (cell->has_write && !OrderedBefore(cell->last_write, tid, now)) {
    Report(cell_name, cell->last_write, current);
  }
  if (is_write) {
    for (const RaceAccess& read : cell->reads) {
      if (!OrderedBefore(read, tid, now)) {
        Report(cell_name, read, current);
      }
    }
    cell->last_write = current;
    cell->has_write = true;
    cell->reads.clear();
    return;
  }
  // A read: remember the latest read per thread since the last write.
  for (RaceAccess& read : cell->reads) {
    if (read.tid == tid) {
      read = current;
      return;
    }
  }
  cell->reads.push_back(current);
}

std::vector<std::string> RaceTracker::ReportDescriptions() const {
  std::vector<std::string> out;
  out.reserve(reports_.size());
  for (const auto& [key, count] : reports_) {
    out.push_back("data race: " + key.first + " vs " + key.second);
  }
  return out;
}

void RaceTracker::Reset() {
  clocks_.clear();
  root_.clear();
  adopted_.clear();
  locks_.clear();
  reports_.clear();
  racy_accesses_ = 0;
  accesses_checked_ = 0;
  cells_tracked_ = 0;
  ++generation_;
}

}  // namespace osim
