#include "src/sim/request_context.h"

#include <stdexcept>

namespace osim {

void RequestContext::PopNested(Frame& frame, PopResult& r,
                               Cycles recorded_latency) {
  // Waits bubble up verbatim; an opaque child's self-CPU is charged to
  // the parent's component for the child's layer class.  A transparent
  // child (kLayerSelf, e.g. the user layer re-wrapping an FS op) lets
  // its self-CPU flow into the parent's self implicitly.  The popped
  // components live in `r` (zero when the child never waited), so this
  // never reads the child's possibly-uninitialized comp[].
  Frame& parent = pool_[frame.below];
  const osprof::LayerComponent cls = frame.owner->cls;
  const bool charges_class =
      cls != osprof::kLayerSelf && r.components[osprof::kLayerSelf] != 0;
  if (!r.self_only || charges_class) {
    TouchWaits(parent);
    for (int c = osprof::kLayerSelf + 1; c < osprof::kNumLayerComponents;
         ++c) {
      parent.comp[c] += r.components[c];
    }
    if (cls != osprof::kLayerSelf) {
      parent.comp[cls] += r.components[osprof::kLayerSelf];
    }
  }
  // Lineage is per-owner: the caller edge and child-time must skip frames
  // interleaved by other profilers.
  for (std::uint32_t below = frame.below; below != kNilFrame;
       below = pool_[below].below) {
    if (pool_[below].owner == frame.owner) {
      r.caller = pool_[below].op;
      pool_[below].owner_child_latency += recorded_latency;
      break;
    }
  }
}

void RequestContext::GrowTops(std::size_t index) {
  tops_.resize(index + 1, kNilFrame);
}

std::uint32_t RequestContext::GrowPool() {
  const auto slot = static_cast<std::uint32_t>(pool_.size());
  pool_.emplace_back();
  return slot;
}

void RequestContext::ThrowNoActiveSpan() {
  throw std::logic_error("RequestContext::Pop with no active span");
}

void RequestContext::Reset() {
  pool_.clear();
  tops_.clear();
  free_head_ = kNilFrame;
}

}  // namespace osim
