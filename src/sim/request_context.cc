#include "src/sim/request_context.h"

#include <stdexcept>

namespace osim {

void RequestContext::Push(int tid, const void* owner,
                          const osprof::OpTable* ops, osprof::OpId op,
                          osprof::LayerComponent cls, Cycles now) {
  if (tid < 0) {
    return;
  }
  const auto index = static_cast<std::size_t>(tid);
  if (index >= stacks_.size()) {
    stacks_.resize(index + 1);
  }
  stacks_[index].push_back(Frame{owner, ops, op, cls, now, {}, 0});
}

RequestContext::PopResult RequestContext::Pop(int tid, Cycles now,
                                              Cycles recorded_latency) {
  PopResult r;
  if (tid < 0 || static_cast<std::size_t>(tid) >= stacks_.size() ||
      stacks_[static_cast<std::size_t>(tid)].empty()) {
    throw std::logic_error("RequestContext::Pop with no active span");
  }
  std::vector<Frame>& stack = stacks_[static_cast<std::size_t>(tid)];
  const Frame frame = stack.back();
  stack.pop_back();

  r.duration = now >= frame.entry ? now - frame.entry : 0;
  Cycles waits = 0;
  for (int c = osprof::kLayerSelf + 1; c < osprof::kNumLayerComponents; ++c) {
    r.components[c] = frame.comp[c];
    waits += frame.comp[c];
  }
  // Self-CPU is what no wait accounted for.  Clamped: an untagged park
  // inside the span cannot make self negative.
  r.components[osprof::kLayerSelf] =
      r.duration > waits ? r.duration - waits : 0;
  r.owner_children = frame.owner_child_latency;

  if (!stack.empty()) {
    // Waits bubble up verbatim; an opaque child's self-CPU is charged to
    // the parent's component for the child's layer class.  A transparent
    // child (kLayerSelf, e.g. the user layer re-wrapping an FS op) lets
    // its self-CPU flow into the parent's self implicitly.
    Frame& parent = stack.back();
    for (int c = osprof::kLayerSelf + 1; c < osprof::kNumLayerComponents;
         ++c) {
      parent.comp[c] += frame.comp[c];
    }
    if (frame.cls != osprof::kLayerSelf) {
      parent.comp[frame.cls] += r.components[osprof::kLayerSelf];
    }
  }
  // Lineage is per-owner: the caller edge and child-time must skip frames
  // interleaved by other profilers.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->owner == frame.owner) {
      r.caller = it->op;
      it->owner_child_latency += recorded_latency;
      break;
    }
  }
  return r;
}

void RequestContext::AttributeWait(int tid, osprof::LayerComponent component,
                                   Cycles cycles) {
  if (tid < 0 || static_cast<std::size_t>(tid) >= stacks_.size()) {
    return;
  }
  std::vector<Frame>& stack = stacks_[static_cast<std::size_t>(tid)];
  if (stack.empty()) {
    return;
  }
  stack.back().comp[component] += cycles;
}

bool RequestContext::TopOp(int tid, const osprof::OpTable** ops,
                           osprof::OpId* op) const {
  if (tid < 0 || static_cast<std::size_t>(tid) >= stacks_.size()) {
    return false;
  }
  const std::vector<Frame>& stack = stacks_[static_cast<std::size_t>(tid)];
  if (stack.empty()) {
    return false;
  }
  *ops = stack.back().ops;
  *op = stack.back().op;
  return true;
}

void RequestContext::Reset() { stacks_.clear(); }

}  // namespace osim
