#include "src/sim/disk.h"

#include <stdexcept>

namespace osim {

SimDisk::SimDisk(Kernel* kernel, DiskConfig config)
    : kernel_(kernel), config_(config) {
  if (config_.blocks_per_track == 0 || config_.num_blocks == 0) {
    throw std::invalid_argument("disk geometry must be non-zero");
  }
}

void SimDisk::Submit(DiskOp op, std::uint64_t lba, std::uint64_t count,
                     Completion done) {
  if (count == 0 || lba + count > config_.num_blocks) {
    throw std::out_of_range("disk request outside device");
  }
  queue_.push_back(Request{op, lba, count, std::move(done), kernel_->now(),
                           kernel_->races().Capture()});
  if (!busy_) {
    StartNext();
  }
}

SimDisk::Request SimDisk::PopNext() {
  std::size_t chosen = 0;
  if (config_.sched == DiskSchedPolicy::kElevator && queue_.size() > 1) {
    // C-LOOK: smallest LBA at or above the head; if the upward sweep is
    // exhausted, restart from the smallest pending LBA.
    bool found_above = false;
    std::uint64_t best_above = 0;
    std::size_t best_above_idx = 0;
    std::uint64_t best_low = ~std::uint64_t{0};
    std::size_t best_low_idx = 0;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const std::uint64_t lba = queue_[i].lba;
      if (lba >= head_ && (!found_above || lba < best_above)) {
        found_above = true;
        best_above = lba;
        best_above_idx = i;
      }
      if (lba < best_low) {
        best_low = lba;
        best_low_idx = i;
      }
    }
    chosen = found_above ? best_above_idx : best_low_idx;
  }
  Request request = std::move(queue_[chosen]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(chosen));
  return request;
}

void SimDisk::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Request request = PopNext();

  DiskRequestInfo info;
  info.op = request.op;
  info.lba = request.lba;
  info.count = request.count;
  info.queued_at = request.queued_at;
  info.started_at = kernel_->now();

  bool cache_hit = false;
  const Cycles service = ServiceTime(request, &cache_hit);
  info.cache_hit = cache_hit;

  Completion done = std::move(request.done);
  if (kernel_->races().enabled()) {
    // Tracking path: adopt the submitter's history around the completion
    // so tasks it wakes or spawns are ordered after the submit.  Kept
    // separate so the common path's closure never carries the token.
    kernel_->events().After(service, [this, info, done = std::move(done),
                                      token = std::move(request.token)]() mutable {
      DiskRequestInfo completed = info;
      completed.completed_at = kernel_->now();
      ++completed_;
      if (observer_) {
        observer_(completed);
      }
      kernel_->races().Adopt(token);
      if (done) {
        done(completed);
      }
      kernel_->races().Drop();
      StartNext();
    });
    return;
  }
  kernel_->events().After(service, [this, info, done = std::move(done)]() mutable {
    DiskRequestInfo completed = info;
    completed.completed_at = kernel_->now();
    ++completed_;
    if (observer_) {
      observer_(completed);
    }
    if (done) {
      done(completed);
    }
    StartNext();
  });
}

Cycles SimDisk::ServiceTime(const Request& request, bool* cache_hit) {
  const Cycles transfer = config_.transfer_per_block * request.count;
  if (request.op == DiskOp::kRead &&
      CacheContains(request.lba, request.count)) {
    *cache_hit = true;
    ++cache_hits_;
    return config_.controller_overhead + transfer;
  }
  *cache_hit = false;
  ++mechanical_;

  // Seek: linear interpolation between track-to-track and full stroke.
  const std::uint64_t track_now = head_ / config_.blocks_per_track;
  const std::uint64_t track_target = request.lba / config_.blocks_per_track;
  const std::uint64_t distance =
      track_now > track_target ? track_now - track_target : track_target - track_now;
  Cycles seek = 0;
  if (distance > 0) {
    const std::uint64_t total_tracks =
        config_.num_blocks / config_.blocks_per_track;
    const double frac =
        static_cast<double>(distance) / static_cast<double>(total_tracks);
    seek = config_.track_to_track_seek +
           static_cast<Cycles>(
               frac * static_cast<double>(config_.full_stroke_seek -
                                          config_.track_to_track_seek));
  }

  // Rotational delay: uniform over a revolution.
  const Cycles rotation =
      static_cast<Cycles>(kernel_->rng().Below(config_.full_rotation));

  head_ = request.lba + request.count;

  if (request.op == DiskOp::kRead) {
    // Firmware readahead: the rest of the segment streams into the disk
    // cache, so sequential successors become cache hits (Figure 7's third
    // peak).
    InsertCacheRun(request.lba, config_.readahead_blocks);
  } else {
    // Writes invalidate overlapping cached data; keep it simple and treat
    // the written run as cached afterwards (write-through segment reuse).
    InsertCacheRun(request.lba, request.count);
  }

  return config_.controller_overhead + seek + rotation + transfer;
}

void SimDisk::InsertCacheRun(std::uint64_t lba, std::uint64_t count) {
  if (lba + count > config_.num_blocks) {
    count = config_.num_blocks - lba;
  }
  for (std::uint64_t b = lba; b < lba + count; ++b) {
    if (cache_.insert(b).second) {
      ++cached_blocks_;
    }
  }
  cache_runs_.emplace_back(lba, count);
  while (cached_blocks_ > config_.cache_blocks && !cache_runs_.empty()) {
    const auto [run_lba, run_count] = cache_runs_.front();
    cache_runs_.pop_front();
    for (std::uint64_t b = run_lba; b < run_lba + run_count; ++b) {
      if (cache_.erase(b) != 0) {
        --cached_blocks_;
      }
    }
  }
}

bool SimDisk::CacheContains(std::uint64_t lba, std::uint64_t count) const {
  for (std::uint64_t b = lba; b < lba + count; ++b) {
    if (cache_.find(b) == cache_.end()) {
      return false;
    }
  }
  return true;
}

void SimDisk::DropCache() {
  cache_.clear();
  cache_runs_.clear();
  cached_blocks_ = 0;
}

Task<DiskRequestInfo> SimDisk::SyncRead(std::uint64_t lba, std::uint64_t count) {
  WaitQueue done(kernel_, osprof::kLayerDriver);
  DiskRequestInfo result;
  bool complete = false;
  Submit(DiskOp::kRead, lba, count, [&result, &complete, &done](const DiskRequestInfo& info) {
    result = info;
    complete = true;
    done.WakeAll();
  });
  while (!complete) {
    co_await done.Wait();
  }
  co_return result;
}

Task<DiskRequestInfo> SimDisk::SyncWrite(std::uint64_t lba, std::uint64_t count) {
  WaitQueue done(kernel_, osprof::kLayerDriver);
  DiskRequestInfo result;
  bool complete = false;
  Submit(DiskOp::kWrite, lba, count, [&result, &complete, &done](const DiskRequestInfo& info) {
    result = info;
    complete = true;
    done.WakeAll();
  });
  while (!complete) {
    co_await done.Wait();
  }
  co_return result;
}

}  // namespace osim
