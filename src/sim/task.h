// Coroutine task types for simulated kernel code.
//
// Simulated OS code (file system operations, workload processes, kernel
// daemons) is written as C++20 coroutines over Task<T>:
//
//   Task<int64_t> Ext2Fs::Read(OpenFile& f, std::uint64_t len) {
//     co_await kernel().Cpu(kReadCpuCost);
//     co_await inode.sem.Acquire();
//     ...
//     co_return bytes;
//   }
//
// Task<T> is lazy (suspends at initial_suspend) and resumes its awaiter by
// symmetric transfer when it completes, so arbitrarily deep call chains
// cost no native stack.  The simulated kernel owns all resumption: a task
// only ever advances while Kernel::current() points at its thread.

#ifndef OSPROF_SRC_SIM_TASK_H_
#define OSPROF_SRC_SIM_TASK_H_

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "src/sim/frame_arena.h"

namespace osim {

template <typename T>
class Task;

namespace detail {

template <typename T>
struct TaskPromise;

template <typename Promise>
struct FinalAwaiter {
  bool await_ready() noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    std::coroutine_handle<> continuation = h.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }
  void await_resume() noexcept {}
};

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }

  // Coroutine frames come from the thread-local slab arena: a Wrap'd
  // no-op used to cost two malloc/free pairs (the Wrap frame plus the
  // inner task's), which dominated its ~80 ns round trip.
  static void* operator new(std::size_t bytes) {
    return FrameArena::Allocate(bytes);
  }
  static void operator delete(void* frame) noexcept {
    FrameArena::Deallocate(frame);
  }
  static void operator delete(void* frame, std::size_t) noexcept {
    FrameArena::Deallocate(frame);
  }
};

template <typename T>
struct TaskPromise : TaskPromiseBase {
  // Default-constructed storage; assigned by return_value.  T must be
  // default-constructible and movable, which holds for all sim result
  // types (integers, small structs).
  T value{};

  Task<T> get_return_object();
  FinalAwaiter<TaskPromise> final_suspend() noexcept { return {}; }
  void return_value(T v) { value = std::move(v); }
};

template <>
struct TaskPromise<void> : TaskPromiseBase {
  Task<void> get_return_object();
  FinalAwaiter<TaskPromise> final_suspend() noexcept { return {}; }
  void return_void() {}
};

}  // namespace detail

// A lazily-started coroutine returning T.  Move-only; owns the frame.
template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle handle) : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  Handle handle() const { return handle_; }
  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return !handle_ || handle_.done(); }

  // Awaiting a Task starts it (symmetric transfer into the child) and
  // resumes the awaiter when the child runs to completion.
  auto operator co_await() const noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;
      }
      T await_resume() {
        if (handle.promise().exception) {
          std::rethrow_exception(handle.promise().exception);
        }
        if constexpr (!std::is_void_v<T>) {
          return std::move(handle.promise().value);
        }
      }
    };
    return Awaiter{handle_};
  }

  // For top-level tasks driven by the kernel: rethrows any escaped
  // exception after completion.
  void RethrowIfFailed() const {
    if (handle_ && handle_.done() && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_{};
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace osim

#endif  // OSPROF_SRC_SIM_TASK_H_
